/**
 * @file
 * Shared helpers for the paper-reproduction bench harness. Every bench
 * binary prints the rows/series of one table or figure from the paper,
 * computed from freshly built traces with fixed seeds.
 */

#ifndef PHI_BENCH_BENCH_UTIL_HH
#define PHI_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/baselines.hh"
#include "sim/phi_sim.hh"
#include "snn/trace.hh"

namespace phi::bench
{

/**
 * True when this bench binary was compiled with NDEBUG (Release /
 * RelWithDebInfo). Recorded baselines must come from optimised builds
 * — the original BENCH_micro.json was accidentally captured from a
 * debug build — so the JSON writers below refuse to run otherwise.
 */
#ifdef NDEBUG
inline constexpr bool kReleaseBuild = true;
#else
inline constexpr bool kReleaseBuild = false;
#endif

/** Die unless this binary may write benchmark JSON (Release only). */
inline void
requireReleaseForJson(const std::string& path)
{
    if (kReleaseBuild)
        return;
    std::cerr << "refusing to write benchmark JSON '" << path
              << "': this binary was built without NDEBUG "
                 "(non-Release). Rebuild with "
                 "-DCMAKE_BUILD_TYPE=Release to record baselines.\n";
    std::exit(1);
}

/**
 * Guard for google-benchmark binaries: refuse --benchmark_out in
 * non-Release builds before benchmark::Initialize consumes the flags.
 */
inline void
guardJsonOutput(int argc, char** argv)
{
    if (kReleaseBuild)
        return;
    for (int i = 1; i < argc; ++i) {
        // Match only the output-file flag itself — not its siblings
        // like --benchmark_out_format, which write nothing.
        if (std::strcmp(argv[i], "--benchmark_out") == 0 ||
            std::strncmp(argv[i], "--benchmark_out=",
                         std::strlen("--benchmark_out=")) == 0)
            requireReleaseForJson(argv[i]);
    }
}

/** Trace options shared by all benches (fixed seeds, bounded k-means). */
inline TraceOptions
standardTraceOptions()
{
    TraceOptions opt;
    opt.seed = 2025;
    opt.calibSamples = 2;
    opt.calib.k = 16;
    opt.calib.q = 128;
    opt.calib.kmeans.maxIters = 12;
    opt.calib.kmeans.maxDistinct = 1536;
    return opt;
}

/** Build a trace with progress output on stderr. */
inline ModelTrace
buildTrace(const ModelSpec& spec, TraceOptions opt = standardTraceOptions())
{
    std::cerr << "[trace] building " << modelName(spec.model) << "/"
              << datasetName(spec.dataset)
              << (opt.paft ? " (PAFT)" : "") << "...\n";
    return buildModelTrace(spec, opt);
}

/** Short workload label, e.g. "VGG16/CIFAR100". */
inline std::string
workloadName(const ModelSpec& spec)
{
    return modelName(spec.model) + "/" + datasetName(spec.dataset);
}

/** Geometric mean of positive values. */
inline double
geomean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double log_sum = 0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

/** Header banner shared by all bench binaries. */
inline void
banner(const std::string& title, const std::string& paper_ref)
{
    std::cout << "\n================================================"
                 "====================\n"
              << title << "\n(reproduces " << paper_ref
              << " of the Phi paper, ISCA 2025)\n"
              << "================================================"
                 "====================\n\n";
}

} // namespace phi::bench

#endif // PHI_BENCH_BENCH_UTIL_HH
