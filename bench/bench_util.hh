/**
 * @file
 * Shared helpers for the paper-reproduction bench harness. Every bench
 * binary prints the rows/series of one table or figure from the paper,
 * computed from freshly built traces with fixed seeds.
 */

#ifndef PHI_BENCH_BENCH_UTIL_HH
#define PHI_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/baselines.hh"
#include "sim/phi_sim.hh"
#include "snn/trace.hh"

namespace phi::bench
{

/** Trace options shared by all benches (fixed seeds, bounded k-means). */
inline TraceOptions
standardTraceOptions()
{
    TraceOptions opt;
    opt.seed = 2025;
    opt.calibSamples = 2;
    opt.calib.k = 16;
    opt.calib.q = 128;
    opt.calib.kmeans.maxIters = 12;
    opt.calib.kmeans.maxDistinct = 1536;
    return opt;
}

/** Build a trace with progress output on stderr. */
inline ModelTrace
buildTrace(const ModelSpec& spec, TraceOptions opt = standardTraceOptions())
{
    std::cerr << "[trace] building " << modelName(spec.model) << "/"
              << datasetName(spec.dataset)
              << (opt.paft ? " (PAFT)" : "") << "...\n";
    return buildModelTrace(spec, opt);
}

/** Short workload label, e.g. "VGG16/CIFAR100". */
inline std::string
workloadName(const ModelSpec& spec)
{
    return modelName(spec.model) + "/" + datasetName(spec.dataset);
}

/** Geometric mean of positive values. */
inline double
geomean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double log_sum = 0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

/** Header banner shared by all bench binaries. */
inline void
banner(const std::string& title, const std::string& paper_ref)
{
    std::cout << "\n================================================"
                 "====================\n"
              << title << "\n(reproduces " << paper_ref
              << " of the Phi paper, ISCA 2025)\n"
              << "================================================"
                 "====================\n\n";
}

} // namespace phi::bench

#endif // PHI_BENCH_BENCH_UTIL_HH
