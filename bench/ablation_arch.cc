/**
 * @file
 * Architectural ablations of design choices DESIGN.md calls out (not a
 * paper figure): straightforward vs perfect L1 zero-skipping
 * (Sec. 4.4's claim that naive skipping loses little), packer window
 * count, partial-sum bank count, and matcher lane throughput.
 */

#include "bench/bench_util.hh"

using namespace phi;
using namespace phi::bench;

namespace
{

double
computeCycles(const SimResult& r)
{
    double c = 0;
    for (const auto& l : r.layers)
        c += l.breakdown.compute;
    return c;
}

} // namespace

int
main()
{
    banner("Ablations: L1 skipping, packer windows, psum banks, "
           "matcher lanes", "design choices in Secs. 4.2-4.4");

    ModelTrace trace =
        buildTrace(makeModel(ModelId::VGG16, DatasetId::CIFAR100));

    // --- L1 zero-skipping policy ---
    {
        PhiArchConfig naive;
        PhiArchConfig perfect = naive;
        perfect.perfectL1Skip = true;
        const double c_naive =
            computeCycles(PhiSimulator(naive).run(trace));
        const double c_perfect =
            computeCycles(PhiSimulator(perfect).run(trace));
        Table t({"L1 skip policy", "ComputeCycles", "vs perfect"});
        t.addRow({"straightforward (paper)", Table::fmt(c_naive, 0),
                  Table::fmtX(c_naive / c_perfect, 3)});
        t.addRow({"perfect", Table::fmt(c_perfect, 0),
                  Table::fmtX(1.0, 3)});
        t.print(std::cout);
        std::cout << "\nPaper claim (Sec. 4.4): the ~50% index density"
                     " makes straightforward\nskipping nearly free vs "
                     "perfect skipping.\n\n";
    }

    // --- Packer windows ---
    {
        const std::vector<int> sweep{1, 2, 4, 8};
        std::vector<double> l2_cycles;
        for (int w : sweep) {
            PhiArchConfig cfg;
            cfg.packer.windows = w;
            SimResult r = PhiSimulator(cfg).run(trace);
            double l2 = 0;
            for (const auto& l : r.layers)
                l2 += l.breakdown.l2;
            l2_cycles.push_back(l2);
        }
        const double ref = l2_cycles[2]; // 4 windows (paper default)
        Table t({"Packer windows", "L2 cycles", "vs 4 windows"});
        for (size_t i = 0; i < sweep.size(); ++i)
            t.addRow({std::to_string(sweep[i]),
                      Table::fmt(l2_cycles[i], 0),
                      Table::fmtX(l2_cycles[i] / ref, 3)});
        t.print(std::cout);
        std::cout << "\nMore windows raise pack occupancy (fewer "
                     "packs) until bank conflicts\nstop being the "
                     "bottleneck.\n\n";
    }

    // --- Partial-sum banks ---
    {
        Table t({"Psum banks", "L2 cycles"});
        for (int banks : {2, 4, 8, 16}) {
            PhiArchConfig cfg;
            cfg.packer.psumBanks = banks;
            SimResult r = PhiSimulator(cfg).run(trace);
            double l2 = 0;
            for (const auto& l : r.layers)
                l2 += l.breakdown.l2;
            t.addRow({std::to_string(banks), Table::fmt(l2, 0)});
        }
        t.print(std::cout);
        std::cout << "\nFewer banks force conflict-driven evictions "
                     "and emptier packs.\n\n";
    }

    // --- Matcher lanes ---
    {
        Table t({"Matcher lanes", "Preproc-bound layers",
                 "TotalCycles"});
        for (int lanes : {1, 2, 4, 8, 16}) {
            PhiArchConfig cfg;
            cfg.matcherLanes = lanes;
            SimResult r = PhiSimulator(cfg).run(trace);
            int bound = 0;
            for (const auto& l : r.layers)
                if (l.breakdown.preprocess >= l.breakdown.bound - 1e-9)
                    ++bound;
            t.addRow({std::to_string(lanes), std::to_string(bound),
                      Table::fmt(r.cycles, 0)});
        }
        t.print(std::cout);
        std::cout << "\nEnough lanes hide preprocessing behind "
                     "compute entirely (Sec. 4.2).\n";
    }
    return 0;
}
