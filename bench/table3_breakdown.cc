/**
 * @file
 * Table 3 reproduction: Phi area and power breakdown per component.
 */

#include "bench/bench_util.hh"
#include "sim/energy_model.hh"

using namespace phi;
using namespace phi::bench;

int
main()
{
    banner("Table 3: Phi area and power breakdown", "Table 3");

    PhiAreaPowerModel model{PhiArchConfig{}};
    const double paper_area[] = {0.099, 0.074, 0.027, 0.011, 0.452};
    const double paper_power[] = {22.5, 68.2, 25.6, 9.4, 220.8};

    Table t({"Component", "Area(mm2)", "paper", "Power(mW)", "paper"});
    auto rows = model.breakdown();
    for (size_t i = 0; i < rows.size(); ++i) {
        t.addRow({rows[i].name, Table::fmt(rows[i].areaMm2, 3),
                  Table::fmt(paper_area[i], 3),
                  Table::fmt(rows[i].powerMw, 1),
                  Table::fmt(paper_power[i], 1)});
    }
    t.addRow({"Total", Table::fmt(model.totalAreaMm2(), 3), "0.662",
              Table::fmt(model.totalPowerMw(), 1), "346.6"});
    t.print(std::cout);
    return 0;
}
