/**
 * @file
 * Sec. 6.2 extension bench: Phi applied to bit-sliced multi-bit DNN
 * activations. For an 8-bit ReLU-style activation matrix, reports the
 * per-plane bit density and Phi L2 density, and the end-to-end
 * operation reduction vs dense and vs plane-wise bit-serial
 * processing — quantifying the generalisation the paper sketches.
 */

#include "bench/bench_util.hh"
#include "core/bitslice.hh"

using namespace phi;
using namespace phi::bench;

namespace
{

Matrix<uint8_t>
dnnActivations(size_t m, size_t k, uint64_t seed)
{
    // ReLU output: ~55% exact zeros, heavy-tailed 8-bit magnitudes.
    Rng rng(seed);
    Matrix<uint8_t> acts(m, k, 0);
    for (size_t r = 0; r < m; ++r)
        for (size_t c = 0; c < k; ++c) {
            if (rng.bernoulli(0.55))
                continue;
            double g = std::abs(rng.gaussian()) * 64.0;
            acts(r, c) =
                static_cast<uint8_t>(std::min(255.0, g));
        }
    return acts;
}

} // namespace

int
main()
{
    banner("Extension: Phi on bit-sliced DNN activations", "Sec. 6.2");

    const size_t m = 2048;
    const size_t k = 256;
    Matrix<uint8_t> calib = dnnActivations(m, k, 1);
    Matrix<uint8_t> run = dnnActivations(m, k, 2);

    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 128;
    cfg.kmeans.maxIters = 12;
    cfg.kmeans.maxDistinct = 1536;
    BitSliceDecomposition dec = decomposeBitSliced(
        sliceActivations(calib), sliceActivations(run), cfg);

    Table t({"Plane", "BitDensity", "L2Density", "OverBitSerial"});
    for (size_t b = 0; b < dec.stats.size(); ++b) {
        const auto& s = dec.stats[b];
        t.addRow({"bit " + std::to_string(b),
                  Table::fmtPct(s.bitDensity, 1),
                  Table::fmtPct(s.l2Density(), 1),
                  Table::fmtX(s.speedupOverBit(), 1)});
    }
    t.print(std::cout);

    std::cout << "\nWhole-tensor operation counts (per output "
                 "column):\n"
              << "  dense (8-bit MACs as 8 planes): "
              << dec.denseOps() << "\n"
              << "  bit-serial (one AC per one-bit): "
              << dec.totalBitOps() << "\n"
              << "  Phi online (L2 corrections):     "
              << dec.totalL2Ops() << "\n"
              << "  Phi over bit-serial: "
              << Table::fmtX(dec.speedupOverBitSerial(), 2)
              << ", over dense: "
              << Table::fmtX(dec.denseOps() / dec.totalL2Ops(), 2)
              << "\n\nThe paper's Sec. 6.2 hypothesis holds: binary "
                 "bit planes of quantised DNN\nactivations carry "
                 "exploitable patterns, with high-order (sparser) "
                 "planes\nbenefiting most.\n";
    return 0;
}
