/**
 * @file
 * Fig. 12 reproduction: DRAM traffic reduction.
 *   (a) activation traffic: dense vs Phi without vs with the compact
 *       data structure, normalised by dense;
 *   (b) weight(+PWP) traffic: dense vs Phi without vs with the PWP
 *       prefetcher, normalised by dense.
 */

#include "bench/bench_util.hh"
#include "core/pwp.hh"

using namespace phi;
using namespace phi::bench;

/** Total PWP resident bytes of a trace at one storage tier, weighting
 *  each unique layer by its structural repetition count. */
static double
traceResidency(const ModelTrace& trace, PwpTier tier)
{
    double bytes = 0;
    for (const LayerTrace& lt : trace.layers)
        bytes += static_cast<double>(
                     pwpTierFootprint(lt.table, lt.spec.n).at(tier)) *
                 static_cast<double>(lt.spec.count);
    return bytes;
}

int
main()
{
    banner("Fig. 12: memory traffic reduction", "Fig. 12");

    std::vector<ModelSpec> specs = {
        makeModel(ModelId::VGG16, DatasetId::CIFAR100),
        makeModel(ModelId::ResNet18, DatasetId::CIFAR100),
        makeModel(ModelId::Spikformer, DatasetId::CIFAR100),
        makeModel(ModelId::SDT, DatasetId::CIFAR100),
        makeModel(ModelId::SpikeBERT, DatasetId::SST2),
        makeModel(ModelId::SpikingBERT, DatasetId::SST2),
    };

    Table a({"Model", "Dense", "Phi w/o compress", "Phi w compress"});
    Table b({"Model", "Dense", "Phi w/o prefetch", "Phi w prefetch"});
    Table c({"Model", "int32 MB", "int16 MB", "int8 MB",
             "traffic int16/int32", "traffic int8/int32"});
    std::vector<double> act_wo, act_w, wt_wo, wt_w, usage;
    std::vector<double> tier16, tier8;

    for (const auto& spec : specs) {
        ModelTrace trace = buildTrace(spec);

        PhiArchConfig base;
        PhiArchConfig no_compress = base;
        no_compress.compressActs = false;
        PhiArchConfig no_prefetch = base;
        no_prefetch.prefetchPwp = false;

        SimResult with = PhiSimulator(base).run(trace);
        SimResult wo_c = PhiSimulator(no_compress).run(trace);
        SimResult wo_p = PhiSimulator(no_prefetch).run(trace);

        // Dense references: binary activation bitmap; 16-bit weights
        // streamed per m-tile (the Spiking Eyeriss pattern).
        EyerissSim eyeriss;
        SimResult dense = eyeriss.run(trace);

        const double act_dense = dense.traffic.activationBytes;
        const double wt_dense = dense.traffic.weightBytes;

        a.addRow({workloadName(spec), "1.00",
                  Table::fmt(wo_c.traffic.activationBytes / act_dense,
                             2),
                  Table::fmt(with.traffic.activationBytes / act_dense,
                             2)});
        const double phi_wt_wo = (wo_p.traffic.weightBytes +
                                  wo_p.traffic.pwpBytes) /
                                 wt_dense;
        const double phi_wt_w = (with.traffic.weightBytes +
                                 with.traffic.pwpBytes) /
                                wt_dense;
        b.addRow({workloadName(spec), "1.00", Table::fmt(phi_wt_wo, 2),
                  Table::fmt(phi_wt_w, 2)});

        act_wo.push_back(wo_c.traffic.activationBytes / act_dense);
        act_w.push_back(with.traffic.activationBytes / act_dense);
        wt_wo.push_back(phi_wt_wo);
        wt_w.push_back(phi_wt_w);

        // Panel (c): the quantized PWP tier. Resident footprint per
        // tier from the calibrated tables, and simulated PWP DRAM
        // traffic with the element width narrowed to match.
        PhiArchConfig w32 = base, w8 = base;
        w32.pwpElemBytes = 4;
        w8.pwpElemBytes = 1;
        const double t32 = PhiSimulator(w32).run(trace).traffic.pwpBytes;
        const double t16 = with.traffic.pwpBytes; // default: 2 bytes
        const double t8 = PhiSimulator(w8).run(trace).traffic.pwpBytes;
        c.addRow({workloadName(spec),
                  Table::fmt(traceResidency(trace, PwpTier::Int32) / 1e6,
                             2),
                  Table::fmt(traceResidency(trace, PwpTier::Int16) / 1e6,
                             2),
                  Table::fmt(traceResidency(trace, PwpTier::Int8) / 1e6,
                             2),
                  Table::fmt(t16 / t32, 2), Table::fmt(t8 / t32, 2)});
        tier16.push_back(t16 / t32);
        tier8.push_back(t8 / t32);
    }

    std::cout << "--- Fig. 12a: activation traffic (normalised by "
                 "dense) ---\n\n";
    a.addRow({"Geomean", "1.00", Table::fmt(geomean(act_wo), 2),
              Table::fmt(geomean(act_w), 2)});
    a.print(std::cout);
    std::cout << "\nPaper shape: w/o compression > dense; with "
                 "compression ~0.5-0.6x dense.\n";

    std::cout << "\n--- Fig. 12b: weight+PWP traffic (normalised by "
                 "dense weights) ---\n\n";
    b.addRow({"Geomean", "1.00", Table::fmt(geomean(wt_wo), 2),
              Table::fmt(geomean(wt_w), 2)});
    b.print(std::cout);
    std::cout << "\nPaper shape: w/o prefetch = 9x dense (q/k = 8 plus "
                 "weights); with\nprefetch ~3x (27.73% of PWPs used on "
                 "average).\n";

    std::cout << "\n--- Fig. 12c: quantized PWP tier — resident "
                 "footprint and PWP traffic ---\n\n";
    c.addRow({"Geomean", "-", "-", "-", Table::fmt(geomean(tier16), 2),
              Table::fmt(geomean(tier8), 2)});
    c.print(std::cout);
    std::cout << "\nTiers are exact (lossless) whenever the PWP values "
                 "fit the width; the\nserving path falls back per layer "
                 "otherwise, so these are upper bounds\non the win.\n";
    return 0;
}
