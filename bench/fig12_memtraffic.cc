/**
 * @file
 * Fig. 12 reproduction: DRAM traffic reduction.
 *   (a) activation traffic: dense vs Phi without vs with the compact
 *       data structure, normalised by dense;
 *   (b) weight(+PWP) traffic: dense vs Phi without vs with the PWP
 *       prefetcher, normalised by dense.
 */

#include "bench/bench_util.hh"

using namespace phi;
using namespace phi::bench;

int
main()
{
    banner("Fig. 12: memory traffic reduction", "Fig. 12");

    std::vector<ModelSpec> specs = {
        makeModel(ModelId::VGG16, DatasetId::CIFAR100),
        makeModel(ModelId::ResNet18, DatasetId::CIFAR100),
        makeModel(ModelId::Spikformer, DatasetId::CIFAR100),
        makeModel(ModelId::SDT, DatasetId::CIFAR100),
        makeModel(ModelId::SpikeBERT, DatasetId::SST2),
        makeModel(ModelId::SpikingBERT, DatasetId::SST2),
    };

    Table a({"Model", "Dense", "Phi w/o compress", "Phi w compress"});
    Table b({"Model", "Dense", "Phi w/o prefetch", "Phi w prefetch"});
    std::vector<double> act_wo, act_w, wt_wo, wt_w, usage;

    for (const auto& spec : specs) {
        ModelTrace trace = buildTrace(spec);

        PhiArchConfig base;
        PhiArchConfig no_compress = base;
        no_compress.compressActs = false;
        PhiArchConfig no_prefetch = base;
        no_prefetch.prefetchPwp = false;

        SimResult with = PhiSimulator(base).run(trace);
        SimResult wo_c = PhiSimulator(no_compress).run(trace);
        SimResult wo_p = PhiSimulator(no_prefetch).run(trace);

        // Dense references: binary activation bitmap; 16-bit weights
        // streamed per m-tile (the Spiking Eyeriss pattern).
        EyerissSim eyeriss;
        SimResult dense = eyeriss.run(trace);

        const double act_dense = dense.traffic.activationBytes;
        const double wt_dense = dense.traffic.weightBytes;

        a.addRow({workloadName(spec), "1.00",
                  Table::fmt(wo_c.traffic.activationBytes / act_dense,
                             2),
                  Table::fmt(with.traffic.activationBytes / act_dense,
                             2)});
        const double phi_wt_wo = (wo_p.traffic.weightBytes +
                                  wo_p.traffic.pwpBytes) /
                                 wt_dense;
        const double phi_wt_w = (with.traffic.weightBytes +
                                 with.traffic.pwpBytes) /
                                wt_dense;
        b.addRow({workloadName(spec), "1.00", Table::fmt(phi_wt_wo, 2),
                  Table::fmt(phi_wt_w, 2)});

        act_wo.push_back(wo_c.traffic.activationBytes / act_dense);
        act_w.push_back(with.traffic.activationBytes / act_dense);
        wt_wo.push_back(phi_wt_wo);
        wt_w.push_back(phi_wt_w);
    }

    std::cout << "--- Fig. 12a: activation traffic (normalised by "
                 "dense) ---\n\n";
    a.addRow({"Geomean", "1.00", Table::fmt(geomean(act_wo), 2),
              Table::fmt(geomean(act_w), 2)});
    a.print(std::cout);
    std::cout << "\nPaper shape: w/o compression > dense; with "
                 "compression ~0.5-0.6x dense.\n";

    std::cout << "\n--- Fig. 12b: weight+PWP traffic (normalised by "
                 "dense weights) ---\n\n";
    b.addRow({"Geomean", "1.00", Table::fmt(geomean(wt_wo), 2),
              Table::fmt(geomean(wt_w), 2)});
    b.print(std::cout);
    std::cout << "\nPaper shape: w/o prefetch = 9x dense (q/k = 8 plus "
                 "weights); with\nprefetch ~3x (27.73% of PWPs used on "
                 "average).\n";
    return 0;
}
