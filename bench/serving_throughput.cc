/**
 * @file
 * Serving-runtime micro-benchmark: requests/sec and p50/p99 latency of
 * PhiEngine batched serving, swept over batch size and thread count.
 *
 * The workload is the steady-state serving loop the compile/serve split
 * exists for: one compiled layer (K=256, N=256, 128 patterns/partition),
 * a stream of M=1024-row activation requests, PWPs reused across every
 * request. The per-request work is sized so that spreading a batch
 * across pool threads amortises dispatch: a request is ~16x the work
 * of the original 256-row/64-column bench, whose requests were so
 * small that 8-thread serving lost to 1-thread on dispatch overhead.
 * Results (the computed matrices) are bit-identical across all
 * configurations; only the timing varies.
 *
 * Two scenarios are swept:
 *
 * - sync:  the single-caller PhiEngine loop (threads x batch size),
 *   the steady-state numbers recorded since PR 2.
 * - async: N producer threads streaming the same request set through
 *   AsyncPhiEngine::submit() while the dispatcher coalesces
 *   micro-batches (producers x maxBatch) — the multi-producer serving
 *   shape the async frontend exists for. Throughput is reported over
 *   the monotonic first-to-last-flush window, so overlapping
 *   producer/dispatcher work is never double-counted.
 * - resilience: a deliberately saturated queue (producers submit a
 *   burst far above service capacity into a deep queue), once without
 *   deadlines — every request is served, so client-observed p99 grows
 *   with queue position — and once with a per-request deadline, where
 *   the dispatcher drops expired entries before compute and the p99 of
 *   the requests actually admitted stays bounded near the deadline.
 * - network (Linux only): the same model served through the epoll TCP
 *   frontend on loopback, swept over concurrent connections. Each
 *   connection is a synchronous request/response client, so this
 *   measures the full wire path — encode, kernel socket hop, frame
 *   parse, engine dispatch, encode back — against the in-process
 *   async numbers above it.
 * - sessions: stateful temporal serving. S concurrent sessions on a
 *   two-layer model (K=256 -> 128 -> 64) each stream T spike frames
 *   through SessionManager in 8-frame step calls; the pump batches
 *   co-resident sessions' timesteps into shared engine submits per
 *   layer. Reports aggregate temporal steps/sec and the p50/p99
 *   latency of one pump round (one timestep through both layers).
 *
 * Usage:  serving_throughput [out.json]
 *         writes a BENCH_serving.json-style report when a path is given.
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/pipeline.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "numeric/simd.hh"
#include "runtime/async_engine.hh"
#include "runtime/engine.hh"
#include "runtime/registry.hh"
#include "runtime/session.hh"
#include "snn/activation_gen.hh"

using namespace phi;

namespace
{

/** Workload constants; emitted into the JSON report so the recorded
 *  metadata always matches what was measured. */
constexpr size_t kRequestRows = 1024;
constexpr size_t kReductionK = 256;
constexpr size_t kOutputN = 256;
constexpr int kPatternsQ = 128;
constexpr size_t kNumRequests = 64;

struct Result
{
    int threads;
    size_t batch;
    uint64_t requests;
    double rps;
    double rowsPerSec;
    double p50Ms;
    double p99Ms;
    double meanMs;
};

struct AsyncResult
{
    int producers;
    size_t maxBatch;
    uint64_t requests;
    double rps;
    double rowsPerSec;
    double p50Ms;
    double p99Ms;
    double meanMs;
    double meanQueueDepth;
    double meanLingerUs;
    uint64_t dispatches;
    uint64_t rejected;
};

struct NetworkResult
{
    int connections;
    uint64_t requests;
    double rps;
    double rowsPerSec;
    double p50Ms;
    double p99Ms;
    uint64_t errors;
};

struct SessionResult
{
    size_t sessions;
    size_t stepsPerSession;
    uint64_t totalSteps;
    double stepsPerSec;
    double p50StepMs;
    double p99StepMs;
};

struct ResilienceResult
{
    const char* mode;
    double deadlineMs; // 0 = none
    uint64_t offered;
    uint64_t served;
    uint64_t expired;
    double p99ServedMs; // client-observed submit->get of served reqs
    double maxServedMs;
};

CompiledModel
buildModel()
{
    ClusterGenConfig gen_cfg;
    gen_cfg.bitDensity = 0.10;
    gen_cfg.l2DensityTarget = 0.02;
    ClusteredSpikeGenerator gen(gen_cfg, kReductionK, /*seed=*/7);
    Rng rng(1);
    BinaryMatrix train = gen.generate(2048, rng);

    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = kPatternsQ;
    Pipeline pipe(cfg);
    LayerPipeline& layer = pipe.addLayer("serve", {&train});

    Rng wrng(2);
    Matrix<int16_t> weights(kReductionK, kOutputN);
    for (size_t r = 0; r < weights.rows(); ++r)
        for (size_t c = 0; c < weights.cols(); ++c)
            weights(r, c) = static_cast<int16_t>(wrng.uniformInt(-64, 63));
    layer.bindWeights(weights);
    return pipe.compile();
}

std::vector<BinaryMatrix>
buildRequests(size_t count)
{
    ClusterGenConfig gen_cfg;
    gen_cfg.bitDensity = 0.10;
    gen_cfg.l2DensityTarget = 0.02;
    ClusteredSpikeGenerator gen(gen_cfg, kReductionK, /*seed=*/9);
    Rng rng(3);
    std::vector<BinaryMatrix> reqs;
    reqs.reserve(count);
    for (size_t i = 0; i < count; ++i)
        reqs.push_back(gen.generate(kRequestRows, rng));
    return reqs;
}

Result
runConfig(const CompiledModel& model,
          const std::vector<BinaryMatrix>& requests, int threads,
          size_t batch)
{
    ExecutionConfig exec;
    exec.threads = threads;
    PhiEngine engine(model, exec);

    // Warm-up batch (pattern memo caches, pool spin-up) then the
    // measured stream.
    engine.serve(0, requests[0]);
    engine.resetStats();

    size_t i = 0;
    while (i < requests.size()) {
        const size_t end = std::min(requests.size(), i + batch);
        for (; i < end; ++i)
            engine.enqueue(0, requests[i]);
        engine.flush();
    }

    const ServingStats& s = engine.stats();
    return {threads,
            batch,
            s.requests,
            s.throughputRps(),
            s.rowThroughputRps(),
            s.latencyPercentileMs(50),
            s.latencyPercentileMs(99),
            s.meanLatencyMs()};
}

/**
 * The multi-producer scenario: @p producers threads each stream their
 * slice of the request set through submit(), the dispatcher coalesces
 * up to @p maxBatch requests per flush. Runs after the sync sweep, so
 * the pool and allocator caches are already warm.
 */
AsyncResult
runAsyncConfig(const CompiledModel& model,
               const std::vector<BinaryMatrix>& requests, int producers,
               size_t maxBatch)
{
    ExecutionConfig exec;
    exec.threads = 4;
    AsyncEngineConfig cfg;
    cfg.maxBatch = maxBatch;
    cfg.maxLingerMicros = 200;
    AsyncPhiEngine engine(model, exec, cfg);

    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
            std::vector<std::future<EngineResponse>> futures;
            for (size_t i = p; i < requests.size();
                 i += static_cast<size_t>(producers))
                futures.push_back(engine.submit(0, requests[i]));
            for (auto& f : futures)
                f.get();
        });
    }
    for (auto& t : threads)
        t.join();
    engine.drain();

    const ServingStats s = engine.stats();
    return {producers,
            maxBatch,
            s.requests,
            s.throughputRps(),
            s.rowThroughputRps(),
            s.latencyPercentileMs(50),
            s.latencyPercentileMs(99),
            s.meanLatencyMs(),
            s.meanQueueDepth(),
            s.meanLingerMicros(),
            s.dispatches,
            s.rejected};
}

/**
 * The saturated-queue scenario behind the resilience layer: four
 * producers dump @p offered requests into a deep queue all at once —
 * far above what the dispatcher can serve during the burst — and every
 * producer timestamps its own submit->get() window (the latency a
 * client would see, queue wait included). Without deadlines the tail
 * request waits behind the whole backlog; with one, expired entries
 * are dropped at dispatch and the served tail stays near the deadline.
 */
ResilienceResult
runResilienceConfig(const CompiledModel& model,
                    const std::vector<BinaryMatrix>& requests,
                    size_t offered, double deadlineMs)
{
    using Clock = std::chrono::steady_clock;
    ExecutionConfig exec;
    exec.threads = 4;
    AsyncEngineConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxLingerMicros = 200;
    cfg.maxQueueDepth = 4096; // deep enough that nothing is rejected
    AsyncPhiEngine engine(model, exec, cfg);
    engine.submit(0, requests[0]).get(); // warm-up

    constexpr int kProducers = 4;
    std::vector<std::vector<double>> servedMs(kProducers);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            std::vector<std::future<EngineResponse>> futures;
            std::vector<Clock::time_point> starts;
            for (size_t i = static_cast<size_t>(p); i < offered;
                 i += kProducers) {
                SubmitOptions opts;
                const auto start = Clock::now();
                if (deadlineMs > 0.0)
                    opts.deadline =
                        start + std::chrono::microseconds(
                                    static_cast<int64_t>(deadlineMs *
                                                         1000.0));
                starts.push_back(start);
                futures.push_back(engine.submit(
                    0, requests[i % requests.size()], opts));
            }
            for (size_t i = 0; i < futures.size(); ++i) {
                try {
                    futures[i].get();
                    servedMs[p].push_back(
                        std::chrono::duration<double, std::milli>(
                            Clock::now() - starts[i])
                            .count());
                } catch (const EngineError&) {
                    // expired (or shed); counted from engine stats
                }
            }
        });
    }
    for (auto& t : producers)
        t.join();
    engine.drain();

    std::vector<double> all;
    for (const auto& v : servedMs)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    const double p99 =
        all.empty()
            ? 0.0
            : all[static_cast<size_t>(0.99 *
                                      static_cast<double>(all.size() - 1))];
    const ServingStats s = engine.stats();
    return {deadlineMs > 0.0 ? "deadline" : "no_deadline",
            deadlineMs,
            static_cast<uint64_t>(offered),
            static_cast<uint64_t>(all.size()),
            s.expired,
            p99,
            all.empty() ? 0.0 : all.back()};
}

/** The temporal chain the session sweep serves: K -> 128 -> 64. */
CompiledModel
buildSessionModel()
{
    ClusterGenConfig gen_cfg;
    gen_cfg.bitDensity = 0.10;
    gen_cfg.l2DensityTarget = 0.02;
    ClusteredSpikeGenerator gen0(gen_cfg, kReductionK, /*seed=*/21);
    ClusteredSpikeGenerator gen1(gen_cfg, 128, /*seed=*/22);
    Rng rng(23);
    BinaryMatrix train0 = gen0.generate(1024, rng);
    BinaryMatrix train1 = gen1.generate(1024, rng);

    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 64;
    Pipeline pipe(cfg);
    Rng wrng(24);
    Matrix<int16_t> w0(kReductionK, 128), w1(128, 64);
    for (size_t r = 0; r < w0.rows(); ++r)
        for (size_t c = 0; c < w0.cols(); ++c)
            w0(r, c) = static_cast<int16_t>(wrng.uniformInt(-64, 63));
    for (size_t r = 0; r < w1.rows(); ++r)
        for (size_t c = 0; c < w1.cols(); ++c)
            w1(r, c) = static_cast<int16_t>(wrng.uniformInt(-64, 63));
    pipe.addLayer("l0", {&train0}).bindWeights(w0);
    pipe.addLayer("l1", {&train1}).bindWeights(w1);
    return pipe.compile();
}

/**
 * The stateful-session scenario: @p sessions concurrent streams each
 * advance @p steps timesteps in 8-frame step() calls. At most 16
 * driver threads submit for their owned sessions and wait the round,
 * so the pump always sees many co-resident sessions to batch into
 * shared per-layer submits. Step latency is the pump's per-round
 * recording: one timestep through the whole layer chain.
 */
SessionResult
runSessionConfig(const std::shared_ptr<ModelRegistry>& registry,
                 size_t sessions, size_t steps)
{
    using Clock = std::chrono::steady_clock;
    ExecutionConfig exec;
    exec.threads = 4;
    AsyncPhiEngine engine(registry, exec);
    SessionConfig scfg;
    scfg.maxSessions = sessions;
    SessionManager mgr(engine, scfg);

    constexpr size_t kChunk = 8;
    Rng rng(31);
    const BinaryMatrix chunk =
        BinaryMatrix::random(kChunk, kReductionK, 0.10, rng);

    std::vector<uint64_t> sids(sessions);
    for (size_t i = 0; i < sessions; ++i)
        sids[i] = mgr.open("sess");

    const size_t workers = std::min<size_t>(sessions, 16);
    const auto wallStart = Clock::now();
    std::vector<std::thread> drivers;
    drivers.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
        drivers.emplace_back([&, w] {
            for (size_t done = 0; done < steps; done += kChunk) {
                std::vector<std::future<SessionStepResult>> futures;
                for (size_t i = w; i < sessions; i += workers)
                    futures.push_back(mgr.step(sids[i], chunk));
                for (auto& f : futures)
                    f.get();
            }
        });
    }
    for (auto& t : drivers)
        t.join();
    const double wallSec =
        std::chrono::duration<double>(Clock::now() - wallStart).count();

    const ServingStats s = mgr.stats();
    for (uint64_t sid : sids)
        mgr.close(sid);
    const uint64_t total = static_cast<uint64_t>(sessions) * steps;
    return {sessions,
            steps,
            total,
            wallSec > 0.0 ? static_cast<double>(total) / wallSec : 0.0,
            s.latencyPercentileMs(50),
            s.latencyPercentileMs(99)};
}

#ifdef __linux__
/**
 * The wire-path capacity scenario: the compiled model is hosted behind
 * a PhiServer on loopback, and @p connections synchronous clients each
 * stream @p perConnection requests through their own socket. Achieved
 * throughput is the total served over the slowest client's window —
 * the number an operator sizing connection counts against a single
 * server process actually gets.
 */
NetworkResult
runNetworkConfig(const CompiledModel& model,
                 const std::vector<BinaryMatrix>& requests,
                 int connections, size_t perConnection)
{
    using Clock = std::chrono::steady_clock;
    auto registry = std::make_shared<ModelRegistry>();
    registry->load("bench", model);

    ExecutionConfig exec;
    exec.threads = 4;
    AsyncEngineConfig cfg;
    cfg.maxBatch = 8;
    cfg.maxLingerMicros = 200;
    cfg.maxQueueDepth = 1024;
    cfg.backpressure = AsyncEngineConfig::Backpressure::Reject;
    net::PhiServer server(registry, exec, cfg, net::PhiServerConfig{});
    server.start();

    std::vector<std::vector<double>> latencies(
        static_cast<size_t>(connections));
    std::atomic<uint64_t> errors{0};
    const auto wallStart = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(connections));
    for (int c = 0; c < connections; ++c) {
        clients.emplace_back([&, c] {
            net::PhiClient client("127.0.0.1", server.port());
            for (size_t i = 0; i < perConnection; ++i) {
                const BinaryMatrix& acts =
                    requests[(static_cast<size_t>(c) * perConnection +
                              i) %
                             requests.size()];
                const auto start = Clock::now();
                try {
                    client.request("bench", 0, acts);
                    latencies[static_cast<size_t>(c)].push_back(
                        std::chrono::duration<double, std::milli>(
                            Clock::now() - start)
                            .count());
                } catch (const std::exception&) {
                    ++errors;
                }
            }
        });
    }
    for (auto& t : clients)
        t.join();
    const double wallSec =
        std::chrono::duration<double>(Clock::now() - wallStart).count();
    server.requestDrain();
    server.waitUntilStopped();

    std::vector<double> all;
    for (const auto& v : latencies)
        all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    auto pct = [&](double p) {
        return all.empty()
                   ? 0.0
                   : all[static_cast<size_t>(
                         p * static_cast<double>(all.size() - 1))];
    };
    const uint64_t served = static_cast<uint64_t>(all.size());
    return {connections,
            served,
            wallSec > 0.0 ? static_cast<double>(served) / wallSec : 0.0,
            wallSec > 0.0 ? static_cast<double>(served * kRequestRows) /
                                wallSec
                          : 0.0,
            pct(0.50),
            pct(0.99),
            errors.load()};
}
#endif // __linux__

void
writeJson(const std::string& path, const std::vector<Result>& results,
          const std::vector<AsyncResult>& asyncResults,
          const std::vector<ResilienceResult>& resilience,
          const std::vector<NetworkResult>& network,
          const std::vector<SessionResult>& sessionResults)
{
    std::ofstream out(path);
    out << "{\n  \"benchmark\": \"serving_throughput\",\n"
        << "  \"build_type\": \""
        << (phi::bench::kReleaseBuild ? "release" : "debug")
        << "\",\n  \"simd\": \"" << simdIsaName(simd::activeIsa())
        << "\",\n"
        << "  \"workload\": {\"layers\": 1, \"m\": " << kRequestRows
        << ", \"k\": " << kReductionK << ", \"n\": " << kOutputN
        << ", \"q\": " << kPatternsQ << ", \"requests\": "
        << kNumRequests << "},\n"
        << "  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const Result& r = results[i];
        out << "    {\"threads\": " << r.threads
            << ", \"batch\": " << r.batch
            << ", \"requests\": " << r.requests
            << ", \"rps\": " << r.rps
            << ", \"rows_per_sec\": " << r.rowsPerSec
            << ", \"p50_ms\": " << r.p50Ms
            << ", \"p99_ms\": " << r.p99Ms
            << ", \"mean_ms\": " << r.meanMs << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"async_results\": [\n";
    for (size_t i = 0; i < asyncResults.size(); ++i) {
        const AsyncResult& r = asyncResults[i];
        out << "    {\"producers\": " << r.producers
            << ", \"max_batch\": " << r.maxBatch
            << ", \"requests\": " << r.requests
            << ", \"rps\": " << r.rps
            << ", \"rows_per_sec\": " << r.rowsPerSec
            << ", \"p50_ms\": " << r.p50Ms
            << ", \"p99_ms\": " << r.p99Ms
            << ", \"mean_ms\": " << r.meanMs
            << ", \"mean_queue_depth\": " << r.meanQueueDepth
            << ", \"mean_linger_us\": " << r.meanLingerUs
            << ", \"dispatches\": " << r.dispatches
            << ", \"rejected\": " << r.rejected << "}"
            << (i + 1 < asyncResults.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"resilience\": [\n";
    for (size_t i = 0; i < resilience.size(); ++i) {
        const ResilienceResult& r = resilience[i];
        out << "    {\"mode\": \"" << r.mode
            << "\", \"deadline_ms\": " << r.deadlineMs
            << ", \"offered\": " << r.offered
            << ", \"served\": " << r.served
            << ", \"expired\": " << r.expired
            << ", \"p99_served_ms\": " << r.p99ServedMs
            << ", \"max_served_ms\": " << r.maxServedMs << "}"
            << (i + 1 < resilience.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"network\": [\n";
    for (size_t i = 0; i < network.size(); ++i) {
        const NetworkResult& r = network[i];
        out << "    {\"connections\": " << r.connections
            << ", \"requests\": " << r.requests
            << ", \"rps\": " << r.rps
            << ", \"rows_per_sec\": " << r.rowsPerSec
            << ", \"p50_ms\": " << r.p50Ms
            << ", \"p99_ms\": " << r.p99Ms
            << ", \"errors\": " << r.errors << "}"
            << (i + 1 < network.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"sessions\": [\n";
    for (size_t i = 0; i < sessionResults.size(); ++i) {
        const SessionResult& r = sessionResults[i];
        out << "    {\"sessions\": " << r.sessions
            << ", \"steps_per_session\": " << r.stepsPerSession
            << ", \"total_steps\": " << r.totalSteps
            << ", \"steps_per_sec\": " << r.stepsPerSec
            << ", \"p50_step_ms\": " << r.p50StepMs
            << ", \"p99_step_ms\": " << r.p99StepMs << "}"
            << (i + 1 < sessionResults.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int
main(int argc, char** argv)
{
    std::cerr << "building compiled model (K=" << kReductionK << ", N="
              << kOutputN << ", q=" << kPatternsQ << ")...\n";
    const CompiledModel model = buildModel();
    const std::vector<BinaryMatrix> requests = buildRequests(kNumRequests);

    std::vector<Result> results;
    Table t({"Threads", "Batch", "Req/s", "kRows/s", "p50 ms", "p99 ms",
             "mean ms"});
    for (int threads : {1, 2, 4, 8}) {
        for (size_t batch : {size_t{1}, size_t{8}, size_t{32}}) {
            Result r = runConfig(model, requests, threads, batch);
            results.push_back(r);
            t.addRow({std::to_string(r.threads), std::to_string(r.batch),
                      Table::fmt(r.rps, 1), Table::fmt(r.rowsPerSec / 1e3, 1),
                      Table::fmt(r.p50Ms, 3), Table::fmt(r.p99Ms, 3),
                      Table::fmt(r.meanMs, 3)});
            std::cerr << "  threads=" << threads << " batch=" << batch
                      << " done\n";
        }
    }
    t.print(std::cout);

    // Multi-producer async frontend: the same request stream pushed by
    // concurrent submitters through the coalescing dispatcher.
    std::vector<AsyncResult> asyncResults;
    Table at({"Producers", "MaxBatch", "Req/s", "kRows/s", "p50 ms",
              "p99 ms", "QDepth", "Linger us"});
    for (int producers : {1, 4, 8}) {
        for (size_t maxBatch : {size_t{1}, size_t{8}, size_t{32}}) {
            AsyncResult r =
                runAsyncConfig(model, requests, producers, maxBatch);
            asyncResults.push_back(r);
            at.addRow({std::to_string(r.producers),
                       std::to_string(r.maxBatch), Table::fmt(r.rps, 1),
                       Table::fmt(r.rowsPerSec / 1e3, 1),
                       Table::fmt(r.p50Ms, 3), Table::fmt(r.p99Ms, 3),
                       Table::fmt(r.meanQueueDepth, 2),
                       Table::fmt(r.meanLingerUs, 1)});
            std::cerr << "  async producers=" << producers
                      << " maxBatch=" << maxBatch << " done\n";
        }
    }
    std::cout << "\nAsync frontend (engine threads=4, linger=200us):\n";
    at.print(std::cout);

    // Saturated-queue resilience: the same burst with and without a
    // per-request deadline. The contrast the resilience entry records:
    // without deadlines the served p99 includes the whole queue wait;
    // with one, expired requests are shed before compute and the p99
    // of admitted requests stays near the deadline.
    constexpr size_t kBurst = 160;
    constexpr double kDeadlineMs = 50.0;
    std::vector<ResilienceResult> resilience;
    resilience.push_back(
        runResilienceConfig(model, requests, kBurst, 0.0));
    std::cerr << "  resilience no_deadline done\n";
    resilience.push_back(
        runResilienceConfig(model, requests, kBurst, kDeadlineMs));
    std::cerr << "  resilience deadline done\n";
    Table rt({"Mode", "Deadline ms", "Offered", "Served", "Expired",
              "p99 srv ms", "max srv ms"});
    for (const ResilienceResult& r : resilience)
        rt.addRow({r.mode, Table::fmt(r.deadlineMs, 0),
                   std::to_string(r.offered), std::to_string(r.served),
                   std::to_string(r.expired), Table::fmt(r.p99ServedMs, 2),
                   Table::fmt(r.maxServedMs, 2)});
    std::cout << "\nSaturated queue (4 producers, depth 4096, "
                 "client-observed latency of served requests):\n";
    rt.print(std::cout);

    // Wire-path capacity: the same model behind the TCP frontend on
    // loopback, swept over concurrent synchronous connections.
    std::vector<NetworkResult> network;
#ifdef __linux__
    Table nt({"Conns", "Req/s", "kRows/s", "p50 ms", "p99 ms",
              "Errors"});
    for (int conns : {1, 4, 8, 16}) {
        NetworkResult r = runNetworkConfig(model, requests, conns,
                                           /*perConnection=*/32);
        network.push_back(r);
        nt.addRow({std::to_string(r.connections), Table::fmt(r.rps, 1),
                   Table::fmt(r.rowsPerSec / 1e3, 1),
                   Table::fmt(r.p50Ms, 3), Table::fmt(r.p99Ms, 3),
                   std::to_string(r.errors)});
        std::cerr << "  network conns=" << conns << " done\n";
    }
    std::cout << "\nTCP frontend on loopback (engine threads=4, "
                 "synchronous clients):\n";
    nt.print(std::cout);
#endif

    // Stateful sessions: S concurrent temporal streams on a two-layer
    // chain, batched per round by the session pump.
    std::cerr << "building session model (K=" << kReductionK
              << " -> 128 -> 64)...\n";
    auto sessionRegistry = std::make_shared<ModelRegistry>();
    sessionRegistry->load("sess", buildSessionModel());
    constexpr size_t kSessionSteps = 32;
    std::vector<SessionResult> sessionResults;
    Table st({"Sessions", "Steps", "Steps/s", "p50 step ms",
              "p99 step ms"});
    for (size_t s : {size_t{1}, size_t{8}, size_t{64}, size_t{256}}) {
        SessionResult r =
            runSessionConfig(sessionRegistry, s, kSessionSteps);
        sessionResults.push_back(r);
        st.addRow({std::to_string(r.sessions),
                   std::to_string(r.stepsPerSession),
                   Table::fmt(r.stepsPerSec, 1),
                   Table::fmt(r.p50StepMs, 3),
                   Table::fmt(r.p99StepMs, 3)});
        std::cerr << "  sessions=" << s << " done\n";
    }
    std::cout << "\nStateful sessions (two-layer temporal chain, "
                 "engine threads=4):\n";
    st.print(std::cout);

    if (argc > 1) {
        phi::bench::requireReleaseForJson(argv[1]);
        writeJson(argv[1], results, asyncResults, resilience, network,
                  sessionResults);
        std::cerr << "wrote " << argv[1] << "\n";
    }
    return 0;
}
