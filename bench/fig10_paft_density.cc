/**
 * @file
 * Fig. 10 reproduction: Level 2 element density with and without PAFT
 * across the Table-4 model/dataset pairs.
 */

#include "bench/bench_util.hh"

using namespace phi;
using namespace phi::bench;

int
main()
{
    banner("Fig. 10: element density with and without PAFT",
           "Fig. 10");

    Table t({"Model", "Dataset", "Density w/o PAFT", "Density w PAFT",
             "Reduction"});
    double sum_ratio = 0;
    int n = 0;
    for (const auto& spec : table4Models()) {
        if (spec.model == ModelId::SpikingBERT)
            continue; // Fig. 10 plots the four vision models only
        ModelTrace plain = buildTrace(spec);
        TraceOptions opt = standardTraceOptions();
        opt.paft = true;
        ModelTrace tuned = buildTrace(spec, opt);
        const double d0 = plain.aggregate().l2Density();
        const double d1 = tuned.aggregate().l2Density();
        t.addRow({modelName(spec.model), datasetName(spec.dataset),
                  Table::fmtPct(d0, 2), Table::fmtPct(d1, 2),
                  Table::fmtX(d0 / d1, 2)});
        sum_ratio += d0 / d1;
        ++n;
    }
    t.print(std::cout);
    std::cout << "\nMean density reduction: "
              << Table::fmtX(sum_ratio / n, 2)
              << "\nExpected shape: PAFT lowers element density on "
                 "every workload (paper:\nelement densities drop from "
                 "the 2-5% range toward 1-3%).\n";
    return 0;
}
