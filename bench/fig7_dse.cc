/**
 * @file
 * Fig. 7 reproduction: design space exploration on VGG16/CIFAR100.
 *   (a) element/vector/total density vs K tile size
 *   (b) compute cycles (normalised by bit sparsity) vs K tile size
 *   (c) compute cycles and memory access vs number of patterns
 *   (d) normalised DRAM power and buffer area/power vs buffer size
 */

#include "bench/bench_util.hh"
#include "arch/buffer.hh"
#include "sim/energy_model.hh"

using namespace phi;
using namespace phi::bench;

namespace
{

struct SweepPoint
{
    SparsityBreakdown agg;
    double phiComputeCycles = 0;
    double optimalCycles = 0;
    double bitCycles = 0;
    double memAccessBytes = 0;
    double denseWeightBytes = 0;
};

SweepPoint
evaluate(const ModelSpec& spec, int k, int q)
{
    TraceOptions opt = standardTraceOptions();
    opt.calib.k = k;
    opt.calib.q = q;
    ModelTrace trace = buildTrace(spec, opt);

    PhiSimulator sim;
    SimResult r = sim.run(trace);

    SweepPoint pt;
    pt.agg = trace.aggregate();
    for (const auto& l : r.layers)
        pt.phiComputeCycles += l.breakdown.compute;
    pt.memAccessBytes = r.traffic.weightBytes + r.traffic.pwpBytes;

    // Bit sparsity cycles: raw one-bits through the same 8-channel x
    // 32-SIMD datapath; optimal: ideal scheduling of Phi's own ops.
    for (const auto& l : trace.layers) {
        const double n_tiles =
            std::ceil(static_cast<double>(l.spec.n) / 32.0);
        const double c = static_cast<double>(l.spec.count);
        pt.bitCycles += static_cast<double>(l.stats.bitOnes) / 8.0 *
                        n_tiles * c;
        const double l1_ideal =
            static_cast<double>(l.stats.assigned) / 8.0 * n_tiles;
        const double l2_ideal =
            static_cast<double>(l.dec.totalL2Nnz()) / 8.0 * n_tiles;
        pt.optimalCycles += std::max(l1_ideal, l2_ideal) * c;
        pt.denseWeightBytes += static_cast<double>(l.spec.k) *
                               l.spec.n * 2.0 * c /
                               static_cast<double>(
                                   PhiArchConfig{}.batchSize);
    }
    return pt;
}

} // namespace

int
main()
{
    ModelSpec spec = makeModel(ModelId::VGG16, DatasetId::CIFAR100);

    // ------------------------------------------------------- (a)+(b)
    banner("Fig. 7a/7b: density and compute cycles vs K tile size",
           "Fig. 7a and 7b");
    Table ab({"k", "ElementDensity", "VectorDensity", "TotalDensity",
              "BitCycles(norm)", "PhiCycles(norm)", "Optimal(norm)"});
    for (int k : {4, 8, 16, 32, 64}) {
        SweepPoint pt = evaluate(spec, k, 128);
        ab.addRow({std::to_string(k),
                   Table::fmt(pt.agg.l2Density(), 4),
                   Table::fmt(pt.agg.vectorDensity, 4),
                   Table::fmt(pt.agg.totalComputeDensity(), 4),
                   Table::fmt(1.0, 2),
                   Table::fmt(pt.phiComputeCycles / pt.bitCycles, 3),
                   Table::fmt(pt.optimalCycles / pt.bitCycles, 3)});
    }
    ab.print(std::cout);
    std::cout << "\nExpected shape: total density is minimised near "
                 "k=16 where element and\nvector densities cross "
                 "(paper Sec. 5.2.1).\n";

    // ----------------------------------------------------------- (c)
    banner("Fig. 7c: cycles and memory access vs number of patterns",
           "Fig. 7c");
    Table c({"q", "PhiCycles(norm)", "Optimal(norm)",
             "MemAccess(norm. dense weights)"});
    for (int q : {8, 16, 32, 64, 128, 256, 512}) {
        SweepPoint pt = evaluate(spec, 16, q);
        c.addRow({std::to_string(q),
                  Table::fmt(pt.phiComputeCycles / pt.bitCycles, 3),
                  Table::fmt(pt.optimalCycles / pt.bitCycles, 3),
                  Table::fmt(pt.memAccessBytes / pt.denseWeightBytes,
                             2)});
    }
    c.print(std::cout);
    std::cout << "\nExpected shape: cycles approach optimal as q grows"
                 " while memory access\nrises; q=128 balances the two "
                 "(paper Sec. 5.2.2).\n";

    // ----------------------------------------------------------- (d)
    banner("Fig. 7d: DRAM power and buffer area/power vs buffer size",
           "Fig. 7d");
    ModelTrace trace = buildTrace(spec);
    Table d({"Buffer(KB)", "NormDramPower", "NormBufferArea",
             "NormBufferPower"});
    const PhiArchConfig base;
    auto run_with = [&](size_t kb) {
        PhiArchConfig cfg = base.withTotalBufferBytes(kb * 1024);
        PhiSimulator sim(cfg);
        SimResult r = sim.run(trace);
        const double dram_power =
            r.energy.dram / r.seconds(); // pJ/s = pW
        const double buf_kib = static_cast<double>(
                                   cfg.totalBufferBytes()) /
                               1024.0;
        return std::tuple<double, double, double>{
            dram_power, SramModel::areaMm2(buf_kib),
            r.energy.buffer / r.seconds()};
    };
    auto [dram240, area240, buf240] = run_with(240);
    for (size_t kb : {120, 160, 240, 400, 720}) {
        auto [dram, area, buf] = run_with(kb);
        d.addRow({std::to_string(kb), Table::fmt(dram / dram240, 2),
                  Table::fmt(area / area240, 2),
                  Table::fmt(buf / buf240, 2)});
    }
    d.print(std::cout);
    std::cout << "\nExpected shape: DRAM power falls then flattens "
                 "once buffers hold the\nworking set; buffer area/power"
                 " grow monotonically. 240 KB balances both\n(paper "
                 "Sec. 5.2.3).\n";
    return 0;
}
