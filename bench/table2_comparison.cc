/**
 * @file
 * Table 2 reproduction: Phi vs Spiking Eyeriss, SpinalFlow, SATO, PTB
 * and Stellar on VGG-16 / CIFAR100 — throughput (GOP/s), energy
 * efficiency (GOP/J) and area efficiency (GOP/s/mm^2), with the
 * paper's reported multipliers printed alongside for comparison.
 */

#include "bench/bench_util.hh"
#include "core/pwp.hh"
#include "sim/energy_model.hh"

using namespace phi;
using namespace phi::bench;

int
main()
{
    banner("Table 2: comparison of Phi with baselines (VGG16/CIFAR100)",
           "Table 2");

    ModelTrace trace =
        buildTrace(makeModel(ModelId::VGG16, DatasetId::CIFAR100));

    struct Row
    {
        std::string name;
        double area;
        SimResult result;
        double paperThroughputX;
        double paperEnergyX;
        double paperAreaEffX;
    };

    PhiArchConfig phi_cfg;
    PhiSimulator phi_sim(phi_cfg);
    PhiAreaPowerModel area_model(phi_cfg);

    std::vector<Row> rows;
    auto baselines = makeBaselines();
    const double paper_tx[] = {1.00, 6.29, 3.96, 1.99, 6.39};
    const double paper_ex[] = {1.00, 18.57, 10.32, 2.06, 11.96};
    const double paper_ax[] = {1.00, 3.22, 3.74, 0.0, 8.89};
    for (size_t i = 0; i < baselines.size(); ++i) {
        rows.push_back({baselines[i]->name(), baselines[i]->areaMm2(),
                        baselines[i]->run(trace), paper_tx[i],
                        paper_ex[i], paper_ax[i]});
    }
    rows.push_back({"Phi", area_model.totalAreaMm2(), phi_sim.run(trace),
                    26.70, 55.41, 43.06});

    const SimResult& eyeriss = rows.front().result;

    Table t({"Arch", "Area(mm2)", "GOP/s", "vs Eyeriss",
             "paper", "GOP/J", "vs Eyeriss", "paper",
             "GOP/s/mm2", "vs Eyeriss", "paper"});
    for (const auto& r : rows) {
        const double tx = r.result.gops() / eyeriss.gops();
        const double ex =
            r.result.gopsPerJoule() / eyeriss.gopsPerJoule();
        const double ax = r.result.areaEfficiency(r.area) /
                          eyeriss.areaEfficiency(rows.front().area);
        t.addRow({r.name, Table::fmt(r.area, 3),
                  Table::fmt(r.result.gops(), 2), Table::fmtX(tx, 2),
                  r.paperThroughputX > 0
                      ? Table::fmtX(r.paperThroughputX, 2)
                      : "-",
                  Table::fmt(r.result.gopsPerJoule(), 2),
                  Table::fmtX(ex, 2),
                  r.paperEnergyX > 0 ? Table::fmtX(r.paperEnergyX, 2)
                                     : "-",
                  Table::fmt(r.result.areaEfficiency(r.area), 2),
                  Table::fmtX(ax, 2),
                  r.paperAreaEffX > 0 ? Table::fmtX(r.paperAreaEffX, 2)
                                      : "-"});
    }
    t.print(std::cout);

    std::cout << "\nEnergy breakdown (uJ):\n";
    Table eb({"Arch", "Core", "Buffer", "Dram", "Total"});
    for (const auto& r : rows) {
        eb.addRow({r.name, Table::fmt(r.result.energy.core * 1e-6, 1),
                   Table::fmt(r.result.energy.buffer * 1e-6, 1),
                   Table::fmt(r.result.energy.dram * 1e-6, 1),
                   Table::fmt(r.result.energy.total() * 1e-6, 1)});
    }
    eb.print(std::cout);

    const double phi_vs_stellar =
        rows.back().result.gops() / rows[4].result.gops();
    const double phi_vs_stellar_e = rows.back().result.gopsPerJoule() /
                                    rows[4].result.gopsPerJoule();
    // On-chip/DRAM PWP residency at each storage tier: the quantized
    // tiers shrink the dominant serving-side footprint 2x/4x with no
    // accuracy cost (tiers are exact or fall back per layer).
    PwpTierFootprint total{};
    for (const LayerTrace& lt : trace.layers)
        for (PwpTier tier : {PwpTier::Int32, PwpTier::Int16,
                             PwpTier::Int8})
            total.bytes[static_cast<size_t>(tier)] +=
                pwpTierFootprint(lt.table, lt.spec.n).at(tier) *
                lt.spec.count;
    std::cout << "\nPWP residency by storage tier: int32 "
              << Table::fmt(total.at(PwpTier::Int32) / 1e6, 2)
              << " MB, int16 "
              << Table::fmt(total.at(PwpTier::Int16) / 1e6, 2)
              << " MB, int8 "
              << Table::fmt(total.at(PwpTier::Int8) / 1e6, 2)
              << " MB\n";

    std::cout << "\nHeadline: Phi vs Stellar speedup "
              << Table::fmtX(phi_vs_stellar, 2) << " (paper: 3.45x), "
              << "energy efficiency "
              << Table::fmtX(phi_vs_stellar_e, 2)
              << " (paper: 4.93x)\n";
    return 0;
}
