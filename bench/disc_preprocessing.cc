/**
 * @file
 * Sec. 6.1 reproduction: benefit vs cost of Phi preprocessing. The
 * matcher performs q+1 pattern comparisons per activation row-tile;
 * the saved accumulations are the difference between bit-sparse work
 * and Phi's L1+L2 work. The paper reports savings of 75.5x the
 * preprocessing energy, averaged over all SNN models.
 */

#include "bench/bench_util.hh"
#include "sim/energy_model.hh"

using namespace phi;
using namespace phi::bench;

int
main()
{
    banner("Sec. 6.1: benefit and cost of Phi preprocessing",
           "Sec. 6.1");

    OpEnergies e = defaultOpEnergies();
    Table t({"Workload", "PreprocEnergy(uJ)", "SavedEnergy(uJ)",
             "Benefit/Cost"});
    std::vector<double> ratios;

    for (const auto& spec : allEvaluatedModels()) {
        ModelTrace trace = buildTrace(spec);
        double preproc_pj = 0;
        double saved_pj = 0;
        for (const auto& l : trace.layers) {
            const double c = static_cast<double>(l.spec.count);
            const double partitions =
                static_cast<double>(l.dec.numPartitions());
            const double q =
                static_cast<double>(l.table.partition(0).size()) + 1.0;
            preproc_pj += static_cast<double>(l.spec.m) * partitions *
                          q * e.patternCompare * c;

            const double bit_accs =
                static_cast<double>(l.stats.bitOnes) *
                static_cast<double>(l.spec.n);
            const double phi_accs =
                (static_cast<double>(l.stats.assigned) +
                 static_cast<double>(l.dec.totalL2Nnz())) *
                static_cast<double>(l.spec.n);
            saved_pj += (bit_accs - phi_accs) * e.add16 * c;
        }
        const double ratio = saved_pj / preproc_pj;
        ratios.push_back(ratio);
        t.addRow({workloadName(spec), Table::fmt(preproc_pj * 1e-6, 2),
                  Table::fmt(saved_pj * 1e-6, 2),
                  Table::fmtX(ratio, 1)});
    }
    t.print(std::cout);
    std::cout << "\nMean benefit/cost ratio: "
              << Table::fmtX(geomean(ratios), 1)
              << " (paper: 75.5x averaged over all SNN models)\n";
    return 0;
}
