/**
 * @file
 * Fig. 9 (and Fig. 1c) reproduction: t-SNE embeddings of VGG16 conv
 * activations — train vs test overlap (9a) and PAFT's effect on
 * cluster structure (9b vs 9c) — plus the quantitative cluster
 * metrics behind the pictures. Embedding coordinates are written to
 * CSV files for plotting.
 */

#include "analysis/cluster_metrics.hh"
#include "analysis/tsne.hh"
#include "bench/bench_util.hh"
#include "core/paft.hh"

using namespace phi;
using namespace phi::bench;

namespace
{

/** Sample `n` distinct rows (stride sampling) into a compact matrix. */
BinaryMatrix
sampleRows(const BinaryMatrix& acts, size_t n)
{
    const size_t stride = std::max<size_t>(1, acts.rows() / n);
    BinaryMatrix out(std::min(n, acts.rows()), acts.cols());
    for (size_t i = 0; i < out.rows(); ++i)
        for (size_t c = 0; c < acts.cols(); ++c)
            if (acts.get(i * stride, c))
                out.set(i, c, true);
    return out;
}

void
writeEmbedding(const std::string& path, const std::vector<Point2>& pts,
               const std::string& label)
{
    Table t({"x", "y", "set"});
    for (const auto& p : pts)
        t.addRow({Table::fmt(p.x, 4), Table::fmt(p.y, 4), label});
    t.writeCsv(path);
}

} // namespace

int
main()
{
    banner("Fig. 9: t-SNE cluster analysis of VGG16/CIFAR100 "
           "activations", "Fig. 9 (and Fig. 1c)");

    // First convolution layer of VGG16 on CIFAR100, as in the paper.
    ModelSpec spec = makeModel(ModelId::VGG16, DatasetId::CIFAR100);
    spec.layers = {spec.layers[1]}; // conv1_2: first layer with K=576

    ModelTrace plain = buildTrace(spec);
    TraceOptions paft_opt = standardTraceOptions();
    paft_opt.paft = true;
    paft_opt.paftStrength = 0.8;
    ModelTrace tuned = buildTrace(spec, paft_opt);

    const LayerTrace& layer = plain.layers[0];
    const LayerTrace& layer_ft = tuned.layers[0];

    // --- Fig. 9a: train vs test pattern-usage consistency ---
    ClusterGenConfig gen_cfg =
        ClusterGenConfig::fromProfile(spec.profile, 16);
    double tv_sum = 0;
    size_t parts = std::min<size_t>(8, layer.table.numPartitions());
    for (size_t p = 0; p < parts; ++p) {
        // "Train" = calibration draw; rebuild one via the trace seed
        // convention is internal, so draw two fresh independent sets.
        auto usage_test =
            patternUsage(layer.acts, p, layer.table.partition(p));
        auto usage_train = patternUsage(
            layer_ft.acts, p, layer.table.partition(p));
        tv_sum += totalVariation(usage_test, usage_train);
    }
    (void)gen_cfg;

    // --- Quantitative cluster metrics (Fig. 9b vs 9c) ---
    Table metrics({"Variant", "MeanHamming", "AssignedFrac",
                   "EffectiveClusters", "Silhouette"});
    auto add_metrics = [&](const std::string& name,
                           const BinaryMatrix& acts,
                           const PatternTable& table) {
        double dist = 0;
        double assigned = 0;
        double eff = 0;
        double sil = 0;
        for (size_t p = 0; p < parts; ++p) {
            ClusterMetrics m =
                computeClusterMetrics(acts, p, table.partition(p));
            dist += m.meanDistance;
            assigned += m.assignedFraction;
            eff += m.effectiveClusters;
            sil += m.silhouette;
        }
        const double np = static_cast<double>(parts);
        metrics.addRow({name, Table::fmt(dist / np, 3),
                        Table::fmtPct(assigned / np, 1),
                        Table::fmt(eff / np, 1),
                        Table::fmt(sil / np, 3)});
    };
    add_metrics("Test w/o PAFT (Fig. 9b)", layer.acts, layer.table);
    add_metrics("Test with PAFT (Fig. 9c)", layer_ft.acts,
                layer_ft.table);
    metrics.print(std::cout);
    std::cout
        << "\nExpected shape: PAFT lowers the mean Hamming distance "
           "and effective\ncluster count (fewer, denser clusters — "
           "Fig. 9c vs 9b).\n";

    // --- t-SNE embeddings exported for plotting ---
    const size_t n_points = 384;
    TsneConfig cfg;
    cfg.iterations = 300;
    cfg.perplexity = 25;

    BinaryMatrix pts_test = sampleRows(layer.acts, n_points);
    BinaryMatrix pts_ft = sampleRows(layer_ft.acts, n_points);
    writeEmbedding("fig9_test_no_paft.csv",
                   tsneBinaryRows(pts_test, cfg), "test");
    writeEmbedding("fig9_test_with_paft.csv",
                   tsneBinaryRows(pts_ft, cfg), "test+paft");

    // Random baseline for Fig. 1a.
    Rng rng(99);
    BinaryMatrix noise =
        BinaryMatrix::random(n_points, layer.acts.cols(),
                             layer.acts.density(), rng);
    writeEmbedding("fig1_random_noise.csv", tsneBinaryRows(noise, cfg),
                    "noise");

    std::cout << "\nWrote t-SNE embeddings: fig9_test_no_paft.csv, "
                 "fig9_test_with_paft.csv,\nfig1_random_noise.csv "
                 "(x,y per row; plot to compare cluster structure "
                 "with\nFig. 1/9 of the paper).\n";
    return 0;
}
