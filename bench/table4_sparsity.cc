/**
 * @file
 * Table 4 reproduction: Phi hierarchical sparsity breakdown across the
 * ten model/dataset pairs plus random matrices at 5/10/20/50% density.
 * For every entry we report Bit / L1 / L2(+1) / L2(-1) densities and
 * the theoretical speedups over bit sparsity and dense computation,
 * with the paper's values alongside.
 */

#include "bench/bench_util.hh"
#include "core/calibration.hh"
#include "core/stats.hh"
#include "snn/activation_gen.hh"

using namespace phi;
using namespace phi::bench;

namespace
{

struct PaperRow
{
    double bit, l1, l2p, l2n, over_b, over_d;
};

void
addRow(Table& t, const std::string& model, const std::string& ds,
       const SparsityBreakdown& b, const PaperRow& paper)
{
    t.addRow({model, ds, Table::fmtPct(b.bitDensity, 1),
              Table::fmtPct(paper.bit / 100.0, 1),
              Table::fmtPct(b.l1Density, 1),
              Table::fmtPct(paper.l1 / 100.0, 1),
              Table::fmtPct(b.l2PosDensity, 1),
              Table::fmtPct(paper.l2p / 100.0, 1),
              Table::fmtPct(b.l2NegDensity, 1),
              Table::fmtPct(paper.l2n / 100.0, 1),
              Table::fmtX(b.speedupOverBit(), 1),
              Table::fmtX(paper.over_b, 1),
              Table::fmtX(b.speedupOverDense(), 1),
              Table::fmtX(paper.over_d, 1)});
}

} // namespace

int
main()
{
    banner("Table 4: Phi sparsity breakdown analysis", "Table 4");

    Table t({"Model", "Dataset", "Bit", "(p)", "L1", "(p)", "L2:+1",
             "(p)", "L2:-1", "(p)", "OverBit", "(p)", "OverDense",
             "(p)"});

    // Paper values in the Table 4 row order.
    const std::vector<PaperRow> paper = {
        {8.7, 7.5, 1.4, 0.1, 5.8, 66.5},
        {10.6, 9.1, 1.6, 0.2, 5.8, 54.6},
        {7.4, 5.8, 1.8, 0.2, 3.7, 49.6},
        {7.0, 5.7, 1.6, 0.3, 3.7, 52.8},
        {20.3, 18.0, 3.2, 0.8, 5.0, 24.8},
        {21.0, 18.7, 3.2, 1.0, 5.0, 23.8},
        {11.9, 10.1, 2.2, 0.3, 4.8, 39.9},
        {14.2, 11.6, 3.3, 0.7, 3.5, 24.6},
        {11.2, 9.6, 1.7, 0.1, 6.1, 54.6},
        {15.2, 11.8, 4.1, 0.7, 3.2, 20.9},
    };

    auto models = table4Models();
    for (size_t i = 0; i < models.size(); ++i) {
        ModelTrace trace = buildTrace(models[i]);
        addRow(t, modelName(models[i].model),
               datasetName(models[i].dataset), trace.aggregate(),
               paper[i]);
    }

    // Random binary matrices (paper's generalisability check).
    const std::vector<std::pair<double, PaperRow>> random_rows = {
        {0.05, {5.0, 2.4, 2.6, 0.0, 2.0, 39.2}},
        {0.10, {10.0, 6.6, 3.4, 0.0, 2.9, 29.6}},
        {0.20, {19.9, 13.9, 6.4, 0.4, 2.9, 14.8}},
        {0.50, {50.0, 49.8, 7.9, 7.7, 3.2, 6.4}},
    };
    CalibrationConfig ccfg;
    ccfg.k = 16;
    ccfg.q = 128;
    ccfg.kmeans.maxIters = 12;
    ccfg.kmeans.maxDistinct = 1536;
    for (const auto& [density, paper_row] : random_rows) {
        Rng rng(static_cast<uint64_t>(density * 1000));
        BinaryMatrix train = randomActivations(4096, 256, density, rng);
        BinaryMatrix test = randomActivations(4096, 256, density, rng);
        PatternTable table = calibrateLayer(train, ccfg);
        LayerDecomposition dec = decomposeLayer(test, table);
        SparsityBreakdown b = computeBreakdown(test, dec, table);
        addRow(t, "Random", Table::fmtPct(density, 0), b, paper_row);
    }

    t.print(std::cout);
    std::cout << "\n(p) = value reported in the paper. SNN rows use the"
                 " clustered generator\ncalibrated per DESIGN.md; "
                 "random rows are iid Bernoulli matrices.\n";
    return 0;
}
