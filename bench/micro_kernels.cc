/**
 * @file
 * google-benchmark micro-benchmarks of the performance-critical
 * kernels: k-means calibration, pattern assignment, decomposition,
 * matching, packing, the reconfigurable adder tree and the GEMM paths.
 * These quantify the simulator's own throughput, not the modelled
 * hardware.
 *
 * The parallel kernels take the thread count as the trailing benchmark
 * argument (1 = the sequential baseline identical to the seed scalar
 * path); speedup at t threads is the ratio of the two times at equal
 * problem size.
 */

#include <benchmark/benchmark.h>

#include "arch/adder_tree.hh"
#include "arch/packer.hh"
#include "arch/pattern_matcher.hh"
#include "bench/bench_util.hh"
#include "common/rng.hh"
#include "core/calibration.hh"
#include "core/pwp.hh"
#include "numeric/simd.hh"
#include "snn/activation_gen.hh"

namespace phi
{
namespace
{

BinaryMatrix
clusteredActs(size_t rows, size_t cols, uint64_t seed)
{
    ClusterGenConfig cfg;
    cfg.bitDensity = 0.12;
    cfg.l2DensityTarget = 0.025;
    ClusteredSpikeGenerator gen(cfg, cols, seed);
    Rng rng(seed + 1);
    return gen.generate(rows, rng);
}

/** Engine config for the benchmark's trailing threads argument. */
ExecutionConfig
benchExec(const benchmark::State& state)
{
    ExecutionConfig exec;
    exec.threads = static_cast<int>(state.range(1));
    return exec;
}

void
BM_KMeansCalibration(benchmark::State& state)
{
    BinaryMatrix acts =
        clusteredActs(static_cast<size_t>(state.range(0)), 256, 1);
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 128;
    cfg.kmeans.maxIters = 12;
    cfg.exec = benchExec(state);
    for (auto _ : state) {
        PatternTable t = calibrateLayer(acts, cfg);
        benchmark::DoNotOptimize(t);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 16);
}
BENCHMARK(BM_KMeansCalibration)
    ->ArgsProduct({{1024, 4096}, {1, 2, 4, 8}});

void
BM_DecomposeLayer(benchmark::State& state)
{
    BinaryMatrix acts =
        clusteredActs(static_cast<size_t>(state.range(0)), 256, 2);
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 128;
    PatternTable table = calibrateLayer(acts, cfg);
    const ExecutionConfig exec = benchExec(state);
    for (auto _ : state) {
        LayerDecomposition dec = decomposeLayer(acts, table, exec);
        benchmark::DoNotOptimize(dec);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 16);
}
BENCHMARK(BM_DecomposeLayer)->ArgsProduct({{1024, 4096}, {1, 2, 4, 8}});

void
BM_PatternMatch(benchmark::State& state)
{
    Rng rng(3);
    std::vector<uint64_t> pats;
    for (int i = 0; i < 128; ++i)
        pats.push_back((rng.next() & 0xffff) | 0b11);
    PatternMatcher matcher(PatternSet(16, pats));
    uint64_t row = 0xBEEF;
    for (auto _ : state) {
        RowAssignment a = matcher.match(row);
        benchmark::DoNotOptimize(a);
        row = (row * 2862933555777941757ull + 1) & 0xffff;
    }
    state.SetItemsProcessed(state.iterations() * 129);
}
BENCHMARK(BM_PatternMatch);

void
BM_PatternMatchAll(benchmark::State& state)
{
    Rng rng(3);
    std::vector<uint64_t> pats;
    for (int i = 0; i < 128; ++i)
        pats.push_back((rng.next() & 0xffff) | 0b11);
    PatternMatcher matcher(PatternSet(16, pats));
    std::vector<uint64_t> rows(16384);
    for (auto& r : rows)
        r = rng.next() & 0xffff;
    const ExecutionConfig exec = benchExec(state);
    for (auto _ : state) {
        auto out = matcher.matchAll(rows, exec);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(rows.size()) * 129);
}
BENCHMARK(BM_PatternMatchAll)->ArgsProduct({{0}, {1, 2, 4, 8}});

void
BM_PackerThroughput(benchmark::State& state)
{
    Rng rng(4);
    std::vector<CompressedRow> rows;
    for (int i = 0; i < 4096; ++i) {
        CompressedRow r;
        r.rowId = static_cast<uint32_t>(rng.nextBounded(256));
        r.partition = static_cast<uint32_t>(rng.nextBounded(16));
        r.needsPsum = rng.bernoulli(0.4);
        int nnz = 1 + static_cast<int>(rng.nextBounded(3));
        for (int e = 0; e < nnz; ++e)
            r.entries.emplace_back(static_cast<uint16_t>(e),
                                   int8_t{1});
        rows.push_back(r);
    }
    for (auto _ : state) {
        size_t packs = 0;
        Packer packer({4, 8}, [&](Pack&&) { ++packs; });
        for (const auto& r : rows)
            packer.push(r);
        packer.flush();
        benchmark::DoNotOptimize(packs);
    }
    state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_PackerThroughput);

void
BM_AdderTreeReduce(benchmark::State& state)
{
    ReconfigurableAdderTree tree(32);
    Rng rng(5);
    Matrix<int32_t> inputs(8, 32);
    for (size_t r = 0; r < 8; ++r)
        for (size_t c = 0; c < 32; ++c)
            inputs(r, c) = static_cast<int32_t>(rng.uniformInt(-9, 9));
    const std::vector<int> segs{3, 3, 2};
    for (auto _ : state) {
        auto out = tree.reduce(inputs, segs);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * 8 * 32);
}
BENCHMARK(BM_AdderTreeReduce);

void
BM_SpikeGemm(benchmark::State& state)
{
    BinaryMatrix acts =
        clusteredActs(static_cast<size_t>(state.range(0)), 256, 6);
    Rng rng(7);
    Matrix<int16_t> w(256, 64);
    for (size_t r = 0; r < w.rows(); ++r)
        for (size_t c = 0; c < w.cols(); ++c)
            w(r, c) = static_cast<int16_t>(rng.uniformInt(-40, 40));
    const ExecutionConfig exec = benchExec(state);
    for (auto _ : state) {
        Matrix<int32_t> out = spikeGemm(acts, w, exec);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_SpikeGemm)->ArgsProduct({{256, 1024}, {1, 2, 4, 8}});

void
BM_SpikeGemmF(benchmark::State& state)
{
    BinaryMatrix acts =
        clusteredActs(static_cast<size_t>(state.range(0)), 256, 10);
    Rng rng(11);
    Matrix<float> w(256, 64);
    for (size_t r = 0; r < w.rows(); ++r)
        for (size_t c = 0; c < w.cols(); ++c)
            w(r, c) = static_cast<float>(rng.uniform()) - 0.5f;
    const ExecutionConfig exec = benchExec(state);
    for (auto _ : state) {
        Matrix<float> out = spikeGemmF(acts, w, exec);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_SpikeGemmF)->ArgsProduct({{256, 1024}, {1, 2, 4, 8}});

/**
 * Shared setup for the PWP serving benchmarks: a calibrated,
 * decomposed layer with bound weights, its per-partition PWPs and
 * every serving representation derived from them. @p wmax bounds the
 * weight magnitude so the quantized tiers are exercised honestly:
 * +/-40 weights over k=16 partitions keep PWP values in int16 but
 * beyond int8; +/-4 fits int8.
 */
struct ServeFixture
{
    BinaryMatrix acts;
    PatternTable table;
    LayerDecomposition dec;
    Matrix<int16_t> w;
    std::vector<Matrix<int32_t>> pwps;

    ServeFixture(size_t m, size_t n, uint64_t seed, int wmax = 40)
        : acts(clusteredActs(m, 256, seed)), w(256, n)
    {
        CalibrationConfig cfg;
        cfg.k = 16;
        cfg.q = 128;
        table = calibrateLayer(acts, cfg);
        dec = decomposeLayer(acts, table);
        Rng rng(seed + 1);
        for (size_t r = 0; r < w.rows(); ++r)
            for (size_t c = 0; c < w.cols(); ++c)
                w(r, c) = static_cast<int16_t>(
                    rng.uniformInt(-wmax, wmax));
        pwps = computeLayerPwps(table, w);
    }

    /** Level 1 bytes the serving loop reads per output row at a given
     *  element width (the bandwidth the layout work attacks). */
    double
    l1BytesPerRow(size_t elemBytes) const
    {
        size_t rows = 0;
        for (const auto& t : dec.tiles)
            for (uint16_t id : t.patternIds)
                rows += id != 0 ? 1 : 0;
        return static_cast<double>(rows * w.cols() * elemBytes) /
               static_cast<double>(dec.m);
    }
};

void
BM_PhiGemm(benchmark::State& state)
{
    // Steady-state serving: PWPs are bound once (arena form, as the
    // engine serves them) and activation batches stream through — the
    // shape of the runtime hot path. Decomposition and PWP compute
    // have their own benchmarks above.
    ServeFixture fx(static_cast<size_t>(state.range(0)), 64, 8);
    PwpArena arena(fx.pwps, fx.w.cols());
    Matrix<int32_t> out(fx.dec.m, fx.w.cols());
    const ExecutionConfig exec = benchExec(state);
    for (auto _ : state) {
        phiGemmWithArenaInto(out, fx.dec, arena, fx.w, exec);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) *
                            static_cast<int64_t>(fx.w.cols()));
}
BENCHMARK(BM_PhiGemm)->ArgsProduct({{256, 1024}, {1, 2, 4, 8}});

/**
 * PWP-layout ablation: the same serving problem through each storage
 * scheme, so a regression report can attribute the end-to-end gain.
 * Counters report the Level 1 bytes each layout streams per output
 * row and the resident PWP bytes.
 *
 *   legacy   — per-partition Matrix scatter, column-block kernel
 *   arena32  — contiguous int32 arena, permuted visit, gather kernel
 *   natural  — arena32 without the pattern-locality permutation
 *   arena16  — quantized int16 arena (lossless for these weights)
 */
void
serveAblation(benchmark::State& state, int mode)
{
    ServeFixture fx(1024, 64, 8);
    LayerDecomposition natural;
    const LayerDecomposition* dec = &fx.dec;
    if (mode == 2) {
        natural = fx.dec;
        natural.serveOrder.clear();
        dec = &natural;
    }
    const PwpTier quant =
        mode == 3 ? PwpTier::Int16 : PwpTier::Int32;
    PwpArena arena(fx.pwps, fx.w.cols(), quant);
    Matrix<int32_t> out(fx.dec.m, fx.w.cols());
    const ExecutionConfig exec = benchExec(state);
    for (auto _ : state) {
        if (mode == 0)
            phiGemmWithPwpsInto(out, fx.dec, fx.pwps, fx.w, exec);
        else
            phiGemmWithArenaInto(out, *dec, arena, fx.w, exec);
        benchmark::DoNotOptimize(out.data());
    }
    const size_t elemBytes =
        mode == 0 ? 4 : pwpTierBytes(arena.tier());
    state.counters["l1_bytes_per_row"] =
        benchmark::Counter(fx.l1BytesPerRow(elemBytes));
    state.counters["pwp_resident_bytes"] = benchmark::Counter(
        static_cast<double>(mode == 0 ? pwpBytes(fx.table, fx.w.cols(), 4)
                                      : arena.bytes()));
}

void
BM_PwpServeLegacy(benchmark::State& state)
{
    serveAblation(state, 0);
}
void
BM_PwpServeArena(benchmark::State& state)
{
    serveAblation(state, 1);
}
void
BM_PwpServeArenaNatural(benchmark::State& state)
{
    serveAblation(state, 2);
}
void
BM_PwpServeQuant16(benchmark::State& state)
{
    serveAblation(state, 3);
}
BENCHMARK(BM_PwpServeLegacy)->ArgsProduct({{1024}, {1}});
BENCHMARK(BM_PwpServeArena)->ArgsProduct({{1024}, {1}});
BENCHMARK(BM_PwpServeArenaNatural)->ArgsProduct({{1024}, {1}});
BENCHMARK(BM_PwpServeQuant16)->ArgsProduct({{1024}, {1}});

void
BM_PwpServeQuant8(benchmark::State& state)
{
    // Small weights so the int8 tier is genuinely reachable.
    ServeFixture fx(1024, 64, 8, 4);
    PwpArena arena(fx.pwps, fx.w.cols(), PwpTier::Int8);
    Matrix<int32_t> out(fx.dec.m, fx.w.cols());
    const ExecutionConfig exec = benchExec(state);
    for (auto _ : state) {
        phiGemmWithArenaInto(out, fx.dec, arena, fx.w, exec);
        benchmark::DoNotOptimize(out.data());
    }
    state.counters["l1_bytes_per_row"] = benchmark::Counter(
        fx.l1BytesPerRow(pwpTierBytes(arena.tier())));
    state.counters["pwp_resident_bytes"] =
        benchmark::Counter(static_cast<double>(arena.bytes()));
}
BENCHMARK(BM_PwpServeQuant8)->ArgsProduct({{1024}, {1}});

} // namespace
} // namespace phi

int
main(int argc, char** argv)
{
    // Baselines must come from optimised binaries; a non-Release build
    // refuses to write JSON at all. The context records this binary's
    // build type and the SIMD backend Auto resolves to (the benchmark
    // library's own library_build_type reflects how libbenchmark was
    // compiled, not this binary).
    phi::bench::guardJsonOutput(argc, argv);
    benchmark::AddCustomContext(
        "phi_build_type",
        phi::bench::kReleaseBuild ? "release" : "debug");
    benchmark::AddCustomContext(
        "phi_simd", phi::simdIsaName(phi::simd::activeIsa()));
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
