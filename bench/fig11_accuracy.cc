/**
 * @file
 * Fig. 11 reproduction: accuracy of the DNN counterpart, the SNN with
 * bit sparsity, Phi without PAFT (lossless) and Phi with PAFT, using
 * the measured alignment flip rate of each workload.
 */

#include "analysis/accuracy_model.hh"
#include "bench/bench_util.hh"

using namespace phi;
using namespace phi::bench;

int
main()
{
    banner("Fig. 11: PAFT accuracy results", "Fig. 11");

    Table t({"Model", "Dataset", "DNN", "BitSparsity", "Phi(w/oPAFT)",
             "Phi(wPAFT)", "FlipRate"});
    for (const auto& spec : table4Models()) {
        if (spec.model == ModelId::SpikingBERT)
            continue; // Fig. 11 plots the vision workloads
        TraceOptions opt = standardTraceOptions();
        opt.paft = true;
        ModelTrace tuned = buildTrace(spec, opt);

        // Element-weighted mean flip rate across unique layers.
        double flipped = 0;
        double elems = 0;
        for (const auto& l : tuned.layers) {
            flipped += static_cast<double>(l.paftStats.bitsFlipped) *
                       static_cast<double>(l.spec.count);
            elems += static_cast<double>(l.paftStats.elements) *
                     static_cast<double>(l.spec.count);
        }
        const double flip_rate = elems > 0 ? flipped / elems : 0.0;

        AccuracyEntry e = accuracyFor(spec.model, spec.dataset,
                                      flip_rate);
        t.addRow({modelName(spec.model), datasetName(spec.dataset),
                  e.dnn ? Table::fmt(*e.dnn, 1) + "%" : "n/a",
                  Table::fmt(e.snnBitSparsity, 1) + "%",
                  Table::fmt(e.phiNoPaft, 1) + "%",
                  Table::fmt(e.phiWithPaft, 1) + "%",
                  Table::fmtPct(flip_rate, 2)});
    }
    t.print(std::cout);
    std::cout << "\nExpected shape: Phi w/o PAFT equals bit sparsity "
                 "exactly (lossless);\nPAFT costs well under one "
                 "point; DNNs are inapplicable on DVS data\n(paper "
                 "Sec. 5.4.2).\n";
    return 0;
}
