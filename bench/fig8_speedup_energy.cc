/**
 * @file
 * Fig. 8 reproduction: speedup (normalised by Spiking Eyeriss) and
 * energy (normalised by Phi w/o PAFT, split into core/buffer/DRAM)
 * for every architecture across all 14 model/dataset pairs, plus the
 * geometric means the paper reports.
 */

#include "bench/bench_util.hh"

using namespace phi;
using namespace phi::bench;

int
main()
{
    banner("Fig. 8: speedup and energy across models and datasets",
           "Fig. 8");

    auto specs = allEvaluatedModels();
    auto baselines = makeBaselines();
    PhiSimulator phi_sim;

    Table speedup({"Workload", "Eyeriss", "PTB", "SATO", "SpinalFlow",
                   "Stellar", "Phi(w/oFT)", "Phi(wFT)"});
    Table energy({"Workload", "Arch", "Core", "Buffer", "Dram",
                  "Total(norm)"});

    // Per-arch accumulators for geomeans.
    std::vector<std::vector<double>> sp(7);
    std::vector<std::vector<double>> en(7);

    for (const auto& spec : specs) {
        ModelTrace trace = buildTrace(spec);
        TraceOptions paft_opt = standardTraceOptions();
        paft_opt.paft = true;
        ModelTrace paft_trace = buildTrace(spec, paft_opt);

        std::vector<SimResult> results;
        results.push_back(baselines[0]->run(trace)); // Eyeriss
        results.push_back(baselines[3]->run(trace)); // PTB
        results.push_back(baselines[2]->run(trace)); // SATO
        results.push_back(baselines[1]->run(trace)); // SpinalFlow
        results.push_back(baselines[4]->run(trace)); // Stellar
        results.push_back(phi_sim.run(trace));       // Phi w/o FT
        results.push_back(phi_sim.run(paft_trace));  // Phi w FT

        const double eyeriss_cycles = results[0].cycles;
        const double phi_energy = results[5].energy.total();

        std::vector<std::string> row{workloadName(spec)};
        for (size_t a = 0; a < results.size(); ++a) {
            const double s = eyeriss_cycles / results[a].cycles;
            row.push_back(Table::fmtX(s, 2));
            sp[a].push_back(s);
        }
        speedup.addRow(row);

        const char* names[] = {"Eyeriss", "PTB", "SATO", "SpinalFlow",
                               "Stellar", "Phi(w/oFT)", "Phi(wFT)"};
        for (size_t a = 0; a < results.size(); ++a) {
            const auto& e = results[a].energy;
            energy.addRow({workloadName(spec), names[a],
                           Table::fmt(e.core / phi_energy, 2),
                           Table::fmt(e.buffer / phi_energy, 2),
                           Table::fmt(e.dram / phi_energy, 2),
                           Table::fmt(e.total() / phi_energy, 2)});
            en[a].push_back(e.total() / phi_energy);
        }
    }

    std::vector<std::string> geo{"Geomean"};
    for (auto& v : sp)
        geo.push_back(Table::fmtX(geomean(v), 2));
    speedup.addRow(geo);

    std::cout << "--- Speedup normalised by Spiking Eyeriss "
                 "(paper geomeans: Eyeriss 1.00x,\n    PTB ~2.0x, SATO "
                 "~3.9x, SpinalFlow ~6.3x, Stellar ~6.4x, Phi 22.6x,\n"
                 "    Phi+PAFT 28.4x; Phi vs Stellar = 3.45x) ---\n\n";
    speedup.print(std::cout);

    std::cout << "\n--- Energy normalised by Phi w/o PAFT "
                 "(core/buffer/DRAM breakdown;\n    paper geomeans: "
                 "Eyeriss 31.6x, PTB 13.5x, SATO ~2.8x, SpinalFlow "
                 "~2.2x,\n    Stellar 4.93x, Phi 1.0x, Phi+PAFT 0.9x) "
                 "---\n\n";
    energy.print(std::cout);

    std::cout << "\nEnergy geomeans:";
    const char* names[] = {"Eyeriss", "PTB", "SATO", "SpinalFlow",
                           "Stellar", "Phi(w/oFT)", "Phi(wFT)"};
    for (size_t a = 0; a < en.size(); ++a)
        std::cout << "  " << names[a] << "="
                  << Table::fmtX(geomean(en[a]), 2);
    std::cout << "\nSpeedup of Phi+PAFT over Phi: "
              << Table::fmtX(geomean(sp[6]) / geomean(sp[5]), 2)
              << " (paper: 1.26x)\n";
    return 0;
}
