/**
 * @file
 * Multi-model residency: a ModelRegistry holds named, versioned
 * CompiledModels behind shared_ptr epochs so one serving process can
 * host a fleet of artifacts and replace any of them with zero
 * downtime.
 *
 * Every resident model is published as an immutable
 * shared_ptr<const CompiledModel>. Routing a request pins the current
 * epoch by copying that shared_ptr (ModelRegistry::pin), so an
 * in-flight batch keeps serving the version it started on while
 * swap() atomically publishes a successor for all requests that route
 * after it — there is never a torn model, only the old epoch or the
 * new one. The old epoch is freed when its last pin drops.
 *
 * Versions are assigned per name, monotonically, starting at 1, and
 * are never reused — not even across unload()/load() of the same name
 * — so a ModelHandle{name, version} unambiguously identifies which
 * compiled bytes served a response.
 *
 * All methods are thread-safe; the registry mutex guards only the
 * name -> epoch map, never the (lock-free, read-only) models
 * themselves. Failures follow the runtime's recoverable-error
 * contract: every rejected operation throws a typed EngineError
 * (UnknownModel / ModelExists / ModelBusy / EmptyModel) and leaves
 * the registry unchanged.
 */

#ifndef PHI_RUNTIME_REGISTRY_HH
#define PHI_RUNTIME_REGISTRY_HH

#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/sync.hh"
#include "core/compiled_model.hh"

namespace phi
{

/**
 * Names one published epoch of one model: which model a request
 * routes to (by name) and which compiled bytes a response was served
 * by (name + version). Handles are value types — holding one does NOT
 * keep the version resident (that is ModelRegistry::Pinned's job).
 */
struct ModelHandle
{
    std::string name;
    uint64_t version = 0;

    /** A default-constructed handle routes nowhere. */
    bool valid() const { return !name.empty() && version > 0; }

    /** "mnist@v3" — the form logs and error messages use. */
    std::string
    str() const
    {
        return name + "@v" + std::to_string(version);
    }

    friend bool
    operator==(const ModelHandle& a, const ModelHandle& b)
    {
        return a.version == b.version && a.name == b.name;
    }

    friend bool
    operator!=(const ModelHandle& a, const ModelHandle& b)
    {
        return !(a == b);
    }

    friend std::ostream&
    operator<<(std::ostream& os, const ModelHandle& h)
    {
        return os << h.name << "@v" << h.version;
    }
};

class ModelRegistry
{
  public:
    /**
     * One pinned epoch: the exact version a request is served by,
     * kept alive for as long as the pin exists no matter how many
     * swap()/unload() calls land in the meantime. Copyable; cheap
     * (one shared_ptr).
     */
    struct Pinned
    {
        ModelHandle handle;
        std::shared_ptr<const CompiledModel> model;

        explicit operator bool() const { return model != nullptr; }
        const CompiledModel& operator*() const { return *model; }
        const CompiledModel* operator->() const { return model.get(); }
    };

    /**
     * Publish @p model under @p name at the name's next version.
     * @throws EngineError ModelExists when the name is already
     *         resident (replace running models with swap()), or
     *         EmptyModel for a model with no layers.
     */
    ModelHandle load(const std::string& name, CompiledModel model)
        EXCLUDES(mutex);

    /**
     * io::loadModel(@p path) + load(). When @p name is empty the name
     * stamped into the artifact's META section is used instead;
     * throws EngineError (UnknownModel) if neither names the model.
     * io::IoError propagates for unreadable/corrupt artifacts.
     */
    ModelHandle load(const std::string& name, const std::string& path)
        EXCLUDES(mutex);

    /**
     * Atomically replace the resident model under @p name with
     * @p model at the next version. Requests already pinned to the
     * old version finish on it untouched; requests routed after this
     * call serve the new one. @throws EngineError UnknownModel when
     * the name is not resident, EmptyModel for a layerless model.
     */
    ModelHandle swap(const std::string& name, CompiledModel model)
        EXCLUDES(mutex);

    /** io::loadModel(@p path) + swap(). */
    ModelHandle swapFromFile(const std::string& name,
                             const std::string& path) EXCLUDES(mutex);

    /**
     * Remove @p name from the registry. @throws EngineError
     * UnknownModel when not resident; ModelBusy when any pin of the
     * current version is still alive (in-flight requests — the
     * registry refuses to race them; drain first, or swap() instead,
     * which never blocks on in-flight work).
     */
    void unload(const std::string& name) EXCLUDES(mutex);

    /**
     * Pin the current version of @p name for serving. @throws
     * EngineError (UnknownModel) when the name is not resident.
     */
    Pinned pin(const std::string& name) const EXCLUDES(mutex);

    /**
     * Route a handle: pins the *current* version of handle.name —
     * which may be newer than handle.version if a swap() landed in
     * between (that is the hot-swap contract: stale handles keep
     * working, and the response reports the version that actually
     * served). @throws EngineError (UnknownModel) when the name has
     * been unloaded.
     */
    Pinned
    pin(const ModelHandle& handle) const EXCLUDES(mutex)
    {
        return pin(handle.name);
    }

    /** Current handle of @p name, or nullopt when not resident. */
    std::optional<ModelHandle> current(const std::string& name) const
        EXCLUDES(mutex);

    bool contains(const std::string& name) const EXCLUDES(mutex);

    /** Handles of every resident model, ordered by name. */
    std::vector<ModelHandle> list() const EXCLUDES(mutex);

    /** Number of resident models. */
    size_t size() const EXCLUDES(mutex);

  private:
    /**
     * One name's slot. Survives unload() with a null model so the
     * version counter keeps monotonic across a reload of the name.
     */
    struct Entry
    {
        std::shared_ptr<const CompiledModel> model; // null = unloaded
        uint64_t version = 0; // last version ever published
    };

    /** Insert/replace under the lock; all paths converge here. */
    ModelHandle publish(const std::string& name, CompiledModel model,
                        bool mustExist) EXCLUDES(mutex);

    /** Leaf mutex guarding only the name -> epoch map; never held
     *  while touching a model or calling out. */
    mutable Mutex mutex;
    std::map<std::string, Entry> entries GUARDED_BY(mutex);
};

} // namespace phi

#endif // PHI_RUNTIME_REGISTRY_HH
