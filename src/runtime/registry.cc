#include "runtime/registry.hh"

#include "io/model_io.hh"

namespace phi
{

ModelHandle
ModelRegistry::publish(const std::string& name, CompiledModel model,
                       bool mustExist)
{
    if (model.empty())
        throw EngineError(EngineError::Code::EmptyModel,
                          "model '" + name + "' has no layers");
    auto resident = std::make_shared<const CompiledModel>(std::move(model));

    MutexLock lock(mutex);
    Entry& entry = entries[name];
    const bool isResident = entry.model != nullptr;
    if (mustExist && !isResident) {
        if (entry.version == 0)
            entries.erase(name); // slot created by this lookup
        throw EngineError(EngineError::Code::UnknownModel,
                          "swap() of '" + name +
                              "', which is not resident; load() it "
                              "first");
    }
    if (!mustExist && isResident)
        throw EngineError(EngineError::Code::ModelExists,
                          "load() of '" + name +
                              "', which is already resident at v" +
                              std::to_string(entry.version) +
                              "; replace it with swap()");
    entry.model = std::move(resident);
    entry.version += 1;
    return {name, entry.version};
}

ModelHandle
ModelRegistry::load(const std::string& name, CompiledModel model)
{
    if (name.empty())
        throw EngineError(EngineError::Code::UnknownModel,
                          "load() needs a non-empty model name");
    return publish(name, std::move(model), /*mustExist=*/false);
}

ModelHandle
ModelRegistry::load(const std::string& name, const std::string& path)
{
    io::ArtifactMeta meta;
    CompiledModel model = io::loadModel(path, &meta);
    const std::string& resolved = name.empty() ? meta.name : name;
    if (resolved.empty())
        throw EngineError(EngineError::Code::UnknownModel,
                          "artifact '" + path +
                              "' carries no META name and load() was "
                              "given none");
    return publish(resolved, std::move(model), /*mustExist=*/false);
}

ModelHandle
ModelRegistry::swap(const std::string& name, CompiledModel model)
{
    return publish(name, std::move(model), /*mustExist=*/true);
}

ModelHandle
ModelRegistry::swapFromFile(const std::string& name,
                            const std::string& path)
{
    return publish(name, io::loadModel(path), /*mustExist=*/true);
}

void
ModelRegistry::unload(const std::string& name)
{
    MutexLock lock(mutex);
    auto it = entries.find(name);
    if (it == entries.end() || !it->second.model)
        throw EngineError(EngineError::Code::UnknownModel,
                          "unload() of '" + name +
                              "', which is not resident");
    // Pins are only created under this mutex, so a use count of 1
    // (the registry's own reference) proves no request can be serving
    // — or start serving — this epoch.
    if (it->second.model.use_count() > 1)
        throw EngineError(EngineError::Code::ModelBusy,
                          "unload() of '" + name + "' at v" +
                              std::to_string(it->second.version) +
                              " with in-flight requests; drain the "
                              "engines first or swap() instead");
    it->second.model.reset(); // keep the entry: versions never reuse
}

ModelRegistry::Pinned
ModelRegistry::pin(const std::string& name) const
{
    MutexLock lock(mutex);
    auto it = entries.find(name);
    if (it == entries.end() || !it->second.model)
        throw EngineError(EngineError::Code::UnknownModel,
                          "no resident model named '" + name + "'");
    return {{name, it->second.version}, it->second.model};
}

std::optional<ModelHandle>
ModelRegistry::current(const std::string& name) const
{
    MutexLock lock(mutex);
    auto it = entries.find(name);
    if (it == entries.end() || !it->second.model)
        return std::nullopt;
    return ModelHandle{name, it->second.version};
}

bool
ModelRegistry::contains(const std::string& name) const
{
    MutexLock lock(mutex);
    auto it = entries.find(name);
    return it != entries.end() && it->second.model != nullptr;
}

std::vector<ModelHandle>
ModelRegistry::list() const
{
    MutexLock lock(mutex);
    std::vector<ModelHandle> handles;
    handles.reserve(entries.size());
    for (const auto& [name, entry] : entries)
        if (entry.model)
            handles.push_back({name, entry.version});
    return handles;
}

size_t
ModelRegistry::size() const
{
    MutexLock lock(mutex);
    size_t n = 0;
    for (const auto& [name, entry] : entries)
        if (entry.model)
            ++n;
    return n;
}

} // namespace phi
