/**
 * @file
 * The concurrent serving frontend: an AsyncPhiEngine wraps the
 * synchronous PhiEngine behind a futures-based submit() API so any
 * number of producer threads can stream requests at the models of one
 * ModelRegistry.
 *
 * A single background dispatcher thread owns the inner PhiEngine.
 * Requests land in a bounded queue; the dispatcher pops up to
 * maxBatch of them — lingering up to maxLingerMicros after the first
 * arrival so sparse traffic still coalesces into efficient batches —
 * and serves them as one PhiEngine flush on the shared thread pool.
 * Because every kernel underneath is bit-deterministic, a request's
 * response is identical to serving it synchronously, no matter how
 * the dispatcher happened to batch it or how many producers raced.
 *
 * Routing is handle-based and hot-swap-safe: submit() pins the
 * current version of the request's model on the submitting thread
 * (ModelRegistry::pin), so a swap() racing the queue cannot tear a
 * request — it serves the epoch it was submitted against, the
 * response reports that exact {name, version}, and requests
 * submitted after the swap serve the new one. The legacy
 * single-model constructor and handle-less submit() keep working
 * against a private one-entry registry.
 *
 * Failure semantics are strictly per-request: an invalid request
 * (wrong layer, mismatched K, an unloaded model — anything
 * PhiEngine::validate or ModelRegistry::pin rejects) resolves its own
 * future with an EngineError and never reaches the batch, aborts the
 * process, or affects neighbouring requests. The only fates a
 * submitted future can have are a value or an EngineError/exception —
 * never a broken promise.
 *
 * Backpressure is explicit: when the queue holds maxQueueDepth
 * requests, submit() either blocks until space frees (Block, the
 * default) or resolves the future immediately with
 * EngineError(QueueFull) (Reject), counting the rejection in the
 * stats. drain() parks the caller until everything already submitted
 * has been served; shutdown() (and the destructor) additionally stop
 * intake, serve what is queued, and join the dispatcher.
 *
 * Time-aware admission rides on top of that via SubmitOptions:
 *
 * - Deadlines: a request carrying a deadline that has already passed
 *   when the dispatcher would start computing it is dropped before
 *   compute — its future resolves with EngineError(DeadlineExceeded)
 *   and the lateness lands in ServingStats' expired counter and
 *   deadline-miss histogram. Serving a result after its consumer
 *   stopped waiting is pure waste; shedding it is the win.
 * - Priorities: when the queue is saturated, an incoming request with
 *   strictly higher priority evicts the lowest-priority queued one
 *   (its future resolves with EngineError(QueueFull), counted in
 *   `shed`) instead of blocking behind or being rejected below less
 *   important traffic. Equal priorities keep the configured
 *   Block/Reject behaviour, so the default (all priority 0) is
 *   exactly the old semantics.
 *
 * The dispatcher itself is supervised: if the loop ever dies on an
 * escaped exception (a bug, an injected failpoint, bad_alloc), the
 * watchdog wrapper fails every in-flight future with
 * EngineError(Internal), restores the queue invariants, bumps
 * ServingStats::watchdogRestarts, and restarts the loop — a crashed
 * batch costs its own requests an error response, never a hung
 * process or a broken promise.
 */

#ifndef PHI_RUNTIME_ASYNC_ENGINE_HH
#define PHI_RUNTIME_ASYNC_ENGINE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "common/sync.hh"
#include "runtime/engine.hh"

namespace phi
{

/** Knobs of the async frontend (the inner compute engine keeps its
 *  own ExecutionConfig). */
struct AsyncEngineConfig
{
    /** Most requests coalesced into one dispatch/flush. */
    size_t maxBatch = 32;

    /**
     * Longest the dispatcher waits after a batch's first request for
     * more to coalesce, microseconds. 0 = dispatch immediately
     * (latency-optimal, batch-poor).
     */
    uint64_t maxLingerMicros = 200;

    /** Bound on queued-but-undispatched requests. */
    size_t maxQueueDepth = 1024;

    /** What submit() does when the queue is at maxQueueDepth. */
    enum class Backpressure
    {
        Block,  // wait for space (lossless producers)
        Reject, // resolve the future with EngineError(QueueFull) now
    };
    Backpressure backpressure = Backpressure::Block;
};

/**
 * Per-request admission knobs for AsyncPhiEngine::submit(). The
 * default (no deadline, priority 0) reproduces the plain submit()
 * semantics exactly.
 */
struct SubmitOptions
{
    /**
     * Absolute steady-clock instant after which the result is
     * worthless. A request whose deadline has passed before the
     * dispatcher starts computing it resolves with
     * EngineError(DeadlineExceeded) instead of being served; one that
     * started in time is always completed. No deadline = serve
     * whenever.
     */
    std::optional<std::chrono::steady_clock::time_point> deadline;

    /**
     * Higher wins. Only consulted when the queue is saturated: an
     * incoming request with strictly higher priority sheds the
     * lowest-priority queued request rather than blocking behind it
     * (Block) or being rejected below it (Reject).
     */
    int32_t priority = 0;
};

/**
 * Thread-safe, futures-based serving frontend over one PhiEngine.
 * All public methods may be called from any thread.
 */
class AsyncPhiEngine
{
  public:
    /** Legacy single-model frontend; @throws EngineError (EmptyModel)
     *  like PhiEngine. Handle-less submit() routes to this model. */
    explicit AsyncPhiEngine(CompiledModel model,
                            ExecutionConfig exec = {},
                            AsyncEngineConfig config = {});

    /**
     * Registry-routed frontend: serves whatever models are (or
     * become) resident in @p registry, which stays shared — load,
     * swap and unload models from any thread while this engine
     * serves. @throws EngineError (EmptyModel) on a null registry.
     */
    explicit AsyncPhiEngine(std::shared_ptr<ModelRegistry> registry,
                            ExecutionConfig exec = {},
                            AsyncEngineConfig config = {});

    /** Stops intake, serves the queued remainder, joins the
     *  dispatcher. Never leaves a broken promise behind. */
    ~AsyncPhiEngine();

    AsyncPhiEngine(const AsyncPhiEngine&) = delete;
    AsyncPhiEngine& operator=(const AsyncPhiEngine&) = delete;

    /**
     * Submit one request against the current version of @p handle's
     * model (pinned here, on the submitting thread — see the
     * hot-swap contract above). Always returns a valid future, which
     * resolves with the response, or with an EngineError when the
     * request is invalid (validated here, before it can touch a
     * batch), rejected by backpressure, or the engine has stopped.
     * Under the Block policy this call may wait for queue space.
     */
    std::future<EngineResponse> submit(const ModelHandle& handle,
                                       size_t layer, BinaryMatrix acts,
                                       SubmitOptions opts = {})
        EXCLUDES(mutex);

    /** submit() against the legacy default model. */
    std::future<EngineResponse> submit(size_t layer, BinaryMatrix acts,
                                       SubmitOptions opts = {})
        EXCLUDES(mutex);

    /**
     * submit() against an epoch the caller already pinned. Where
     * submit() pins the handle's *current* version, this serves
     * exactly @p pin's model — the contract stateful sessions need: a
     * stream pinned at open keeps serving its epoch even when the
     * registry hot-swaps the name mid-stream. Validation and every
     * other submit() semantic (backpressure, deadlines, priorities)
     * are identical. @p pin must hold a model (asserted).
     */
    std::future<EngineResponse> submitPinned(ModelRegistry::Pinned pin,
                                             size_t layer,
                                             BinaryMatrix acts,
                                             SubmitOptions opts = {})
        EXCLUDES(mutex);

    /**
     * Block until every request submitted before this call has been
     * served. Intake stays open; requests racing in from other
     * threads during the drain may or may not be covered.
     */
    void drain() EXCLUDES(mutex);

    /**
     * The non-blocking form of drain(): a future that resolves once
     * every request submitted before this call has been served (or
     * failed typed). Callers that must interleave the wait with other
     * work — a network frontend flushing responses while it watches
     * the engine empty — poll or wait on this instead of parking a
     * thread in drain(). Resolves immediately when the engine is
     * already idle (including after shutdown()), and is never left
     * broken: every returned future resolves even if the engine is
     * destroyed or the dispatcher crashes and restarts.
     */
    std::future<void> drainedFuture() EXCLUDES(mutex);

    /**
     * Stop accepting new work, serve everything queued, and join the
     * dispatcher. Idempotent. Blocked submitters and later submit()
     * calls resolve their futures with EngineError(Stopped).
     */
    void shutdown() EXCLUDES(mutex, joinMutex);

    /** Requests queued but not yet dispatched (instantaneous). */
    size_t queueDepth() const EXCLUDES(mutex);

    /** The registry requests route through — load/swap/unload through
     *  this from any thread, concurrently with serving. */
    const std::shared_ptr<ModelRegistry>& registry() const
    {
        return engine.registry();
    }

    /** Legacy accessor; throws UnknownModel on a registry-routed
     *  frontend (see PhiEngine::model()). */
    const CompiledModel& model() const { return engine.model(); }

    const AsyncEngineConfig& config() const { return asyncConfig; }

    /**
     * Snapshot of the merged serving counters: the inner engine's
     * flush counters plus the frontend's queue-depth / linger /
     * rejected accounting. Safe to call concurrently with serving;
     * throughput uses the monotonic flush window, so overlapping
     * observation never double-counts time.
     */
    ServingStats stats() const EXCLUDES(mutex, statsMutex);

    /** Snapshot of one model's counters (zeroed when the name never
     *  served); same concurrency guarantees as stats(). */
    ServingStats statsFor(const std::string& name) const
        EXCLUDES(statsMutex);

    /** Snapshot of every served model's counters, keyed by name. */
    std::map<std::string, ServingStats> perModelStats() const
        EXCLUDES(statsMutex);

    /**
     * Forget one model's per-model counters (merged stats untouched).
     * Call after unloading an ephemeral model so a long-running
     * process cycling many names does not accrete a latency ring per
     * retired name. Thread-safe: the published snapshot drops
     * immediately; the dispatcher prunes its own copy on its next
     * wake-up.
     */
    void dropStatsFor(const std::string& name)
        EXCLUDES(mutex, statsMutex);

  private:
    using Clock = std::chrono::steady_clock;

    /** One queued request: owns its activations — and its model-epoch
     *  pin — until served. */
    struct Pending
    {
        ModelRegistry::Pinned pin;
        size_t layer = 0;
        BinaryMatrix acts;
        std::promise<EngineResponse> promise;
        Clock::time_point enqueuedAt;
        SubmitOptions opts;
    };

    void dispatchLoop() EXCLUDES(mutex, statsMutex);

    /**
     * The watchdog: the dispatcher thread's real entry point. Runs
     * dispatchLoop() and, should it ever exit on an escaped
     * exception, fails the in-flight batch's futures with
     * EngineError(Internal), restores the queue/engine invariants,
     * counts the restart, and relaunches the loop.
     */
    void superviseDispatch() EXCLUDES(mutex, statsMutex);

    /** Post-crash cleanup: everything superviseDispatch() does
     *  between catching the escape and re-entering the loop. */
    void recoverDispatcher(std::exception_ptr cause) EXCLUDES(mutex);

    PhiEngine engine; // touched only by the dispatcher thread
    AsyncEngineConfig asyncConfig;

    /**
     * Lock hierarchy (compiler-enforced; see README "Static analysis
     * & concurrency contracts"):
     *
     *   mutex       queue + intake state; held for short, compute-free
     *               sections only.
     *   statsMutex  published snapshots; never held together with
     *               `mutex` — every path that needs both (stats(),
     *               dropStatsFor(), the dispatcher's publish step)
     *               takes them strictly one after the other, and the
     *               EXCLUDES clauses above make a future nesting of
     *               one inside the other a compile error under clang.
     *   joinMutex   dispatcher handle only; leaf, never held together
     *               with the other two.
     */
    mutable Mutex mutex;
    CondVar spaceAvailable; // queue below capacity
    CondVar workAvailable;  // queue non-empty / stop
    CondVar idle;           // queue empty and nothing in flight
    std::deque<Pending> pendingQueue GUARDED_BY(mutex);
    /** Names for the dispatcher to prune. */
    std::vector<std::string> statsDrops GUARDED_BY(mutex);
    /** drainedFuture() promises. */
    std::vector<std::promise<void>> drainWaiters GUARDED_BY(mutex);
    bool accepting GUARDED_BY(mutex) = true;
    bool stopping GUARDED_BY(mutex) = false;
    /** Requests popped but not yet resolved. */
    size_t inFlight GUARDED_BY(mutex) = 0;
    uint64_t rejectedCount GUARDED_BY(mutex) = 0;

    /** Deadline/shedding accounting (expired, shed, miss histogram):
     *  both the submitting threads (submit-time expiry, shedding) and
     *  the dispatcher (dispatch-time expiry) write it, and stats()
     *  folds it into every snapshot. */
    ServingStats resilienceStats GUARDED_BY(mutex);

    /** Dispatcher restarts performed by the watchdog. */
    std::atomic<uint64_t> watchdogRestarts{0};

    /**
     * Dispatcher-thread state (no lock — single-thread ownership,
     * documented rather than locked: superviseDispatch(),
     * dispatchLoop() and recoverDispatcher() all run on that one
     * thread). As members rather than loop locals so the watchdog can
     * fail the in-flight batch after a crash, and so the frontend
     * counters survive a restart instead of resetting to zero.
     */
    std::vector<Pending> inFlightBatch;
    ServingStats frontendStats;

    /** Guards the published stats snapshots (refreshed per batch). */
    mutable Mutex statsMutex;
    ServingStats publishedStats GUARDED_BY(statsMutex);
    std::map<std::string, ServingStats>
        publishedModelStats GUARDED_BY(statsMutex);

    /** Serialises the dispatcher launch/join across concurrent
     *  shutdowns. */
    Mutex joinMutex;
    std::thread dispatcher GUARDED_BY(joinMutex);
};

} // namespace phi

#endif // PHI_RUNTIME_ASYNC_ENGINE_HH
