/**
 * @file
 * Stateful temporal serving: a SessionManager gives each client a
 * *session* — a pinned model epoch plus live per-layer LIF neuron
 * state — and advances a full multi-layer temporal forward for every
 * spike frame the client streams at it.
 *
 * This is the serving shape spiking networks actually need. The
 * request/response engine underneath is stateless: each submit is one
 * layer of one matrix, and time does not exist. An SNN, by contrast,
 * is defined by state that persists *across* timesteps — membrane
 * potentials integrating leaky history, refractory counters holding
 * neurons silent — so serving it means keeping that state alive on
 * the server between a client's frames:
 *
 *     frame t ->  [layer 0 kernel] -> LIF 0 -> spikes
 *                       |                        v
 *                 (membrane state)        [layer 1 kernel] -> LIF 1
 *                                                |             |
 *                                          (membrane state)  spikes -> client
 *
 * Layer N's spike output feeds layer N+1 *inside* the runtime via the
 * same compiled Phi kernels the stateless path uses
 * (AsyncPhiEngine::submitPinned), and each layer's LifPopulation
 * carries the membrane/refractory state from one frame to the next.
 *
 * Determinism contract: every kernel underneath is row-independent
 * and bit-deterministic at any thread count, and LIF integration is
 * per-neuron, so streaming T frames through a session is bit-identical
 * to running the offline SpikingNetwork/LifPopulation reference over
 * the same input — no matter how many sessions were batched into each
 * engine submit, how the pump interleaved them, or how many pool
 * threads served the kernels. The session tests pin this at 1/2/8
 * threads, across snapshot save/restore, and under 8-way session
 * interleave.
 *
 * Cross-session batching: the pump thread takes at most one pending
 * frame per session per round and stacks every session that is at the
 * same layer of the same pinned model epoch into one m x K engine
 * submit — concurrent streams coalesce into efficient batches exactly
 * like stateless requests do, for free, because row results are
 * independent.
 *
 * Hot-swap contract: a session pins its model epoch at open() and
 * serves that epoch for its whole life (submitPinned), even when the
 * registry hot-swaps the name mid-stream. A reconnecting client that
 * reopens gets the current epoch — same rule as stateless traffic.
 *
 * Failure semantics are per-session: a failed step (engine error,
 * injected `session.step` failpoint) fails only that session's
 * future, typed, with the session's LIF state rolled back to the
 * last completed frame — neighbouring sessions in the same batch and
 * the session's own later steps are untouched. Lifecycle errors are
 * typed too: SessionNotFound (never opened / already closed),
 * SessionExpired (evicted by the idle TTL), TooManySessions (cap).
 *
 * Sessions survive restarts: snapshot() serialises every session's
 * identity, model binding and LIF state into a versioned `.phis`
 * artifact (io/session_io.hh; CRC-checked, atomically published) and
 * restore() rebuilds them in a fresh process — the server's drain
 * path snapshots open sessions instead of dropping them.
 */

#ifndef PHI_RUNTIME_SESSION_HH
#define PHI_RUNTIME_SESSION_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/sync.hh"
#include "io/session_io.hh"
#include "runtime/async_engine.hh"
#include "snn/lif.hh"

namespace phi
{

/** Knobs of the session subsystem. */
struct SessionConfig
{
    /** Hard cap on concurrently open sessions; open() beyond it
     *  throws TooManySessions (counted in sessionsRejected). */
    size_t maxSessions = 256;

    /**
     * Sessions idle (no step served, none pending) longer than this
     * are evicted, their state freed, and later touches answered with
     * SessionExpired. 0 = sessions never expire. Sweeps run on the
     * pump thread between rounds and via sweepIdle().
     */
    uint64_t idleTtlMillis = 0;

    /**
     * How many evicted session ids the manager remembers so a late
     * touch gets SessionExpired rather than SessionNotFound. Bounded:
     * ids older than the newest `tombstoneCapacity` evictions degrade
     * to SessionNotFound — the price of a long-running process not
     * accreting a tombstone per session forever.
     */
    size_t tombstoneCapacity = 4096;
};

/** Public view of one open session. */
struct SessionInfo
{
    uint64_t id = 0;
    /** The epoch the session pinned at open() and serves forever. */
    ModelHandle model;
    size_t layerCount = 0;
    /** Temporal steps served so far. */
    uint64_t steps = 0;
};

/** Result of one step() call: the final layer's spike raster. */
struct SessionStepResult
{
    uint64_t sessionId = 0;
    ModelHandle model;
    /** Global timestep index of row 0 of `spikes` (steps served
     *  before this call). */
    uint64_t firstStep = 0;
    /** T x N spikes of the last layer, one row per input frame. */
    BinaryMatrix spikes;
};

/**
 * Thread-safe session subsystem over one AsyncPhiEngine. All public
 * methods may be called from any thread; the engine (and its
 * registry) must outlive the manager.
 */
class SessionManager
{
  public:
    explicit SessionManager(AsyncPhiEngine& engine,
                            SessionConfig config = {});

    /** shutdown(): fails queued steps typed, joins the pump. */
    ~SessionManager();

    SessionManager(const SessionManager&) = delete;
    SessionManager& operator=(const SessionManager&) = delete;

    /**
     * Open a session against the current version of @p model, pinning
     * that epoch for the session's lifetime. @p params configures the
     * LIF dynamics per layer: empty = defaults for every layer,
     * otherwise exactly one entry per model layer.
     *
     * @throws EngineError UnknownModel (name not resident),
     *         TooManySessions (at the cap), ShapeMismatch (params
     *         count, or a model whose layer widths do not chain),
     *         MissingWeights (a weightless layer cannot forward),
     *         Stopped (after shutdown()).
     */
    uint64_t open(const std::string& model,
                  std::vector<LifParams> params = {}) EXCLUDES(mutex);

    /**
     * Stream @p frames (T x K rows = T timesteps of layer-0 input)
     * through the session's full layer stack. Returns a future
     * resolving with the final layer's T x N spikes once all T steps
     * are served, or with a typed EngineError: SessionNotFound /
     * SessionExpired / ShapeMismatch (K or empty frames) / Stopped,
     * or whatever the engine failed the step with (state rolled back
     * to the last completed frame). Multiple step() calls on one
     * session queue FIFO; calls across sessions proceed concurrently
     * and batch into shared engine submits.
     */
    std::future<SessionStepResult> step(uint64_t sessionId,
                                        BinaryMatrix frames)
        EXCLUDES(mutex);

    /**
     * Close a session and free its state; returns the steps it
     * served. Waits for an in-flight frame to finish; steps still
     * queued behind it fail with EngineError(Stopped). @throws
     * EngineError SessionNotFound / SessionExpired.
     */
    uint64_t close(uint64_t sessionId) EXCLUDES(mutex);

    /** @throws EngineError SessionNotFound / SessionExpired. */
    SessionInfo info(uint64_t sessionId) const EXCLUDES(mutex);

    /** Every open session, ordered by id. */
    std::vector<SessionInfo> list() const EXCLUDES(mutex);

    /** Open sessions right now. */
    size_t size() const EXCLUDES(mutex);

    /**
     * Evict sessions idle past the TTL now (also runs automatically
     * between pump rounds); returns how many were evicted. Sessions
     * with queued or in-flight steps are never evicted. Public so
     * tests and operational tooling can force a deterministic sweep.
     */
    size_t sweepIdle() EXCLUDES(mutex);

    /** Block until every step() queued before this call has resolved
     *  and no frame is in flight. Intake stays open. */
    void drain() EXCLUDES(mutex);

    /**
     * Serialisable snapshot of every open session (drains in-flight
     * and queued steps first, so the state is a clean frame
     * boundary). Pair with io::saveSessions() to persist; the caller
     * should stop step() traffic first (the server's drain gate
     * does), since steps racing in behind the drain are not covered.
     */
    io::SessionSnapshot snapshot() EXCLUDES(mutex);

    /**
     * Rebuild sessions from a snapshot (validated first — all or
     * nothing): each record re-pins its model *name's current
     * version* from the registry and resumes at its saved LIF state
     * and step count. Returns how many sessions were restored.
     * @throws EngineError UnknownModel (a record's model is not
     *         resident), ShapeMismatch (saved state does not fit the
     *         now-resident model), TooManySessions, Internal (a
     *         restored id collides with an open session).
     */
    size_t restore(const io::SessionSnapshot& snap) EXCLUDES(mutex);

    /** Session counters (sessionsOpened/Closed/Expired/Rejected,
     *  sessionSteps, per-frame latency samples). */
    ServingStats stats() const EXCLUDES(mutex);

    /**
     * Stop intake, fail every queued step with EngineError(Stopped),
     * and join the pump thread. Idempotent. Open sessions keep their
     * state (snapshot() still works after shutdown).
     */
    void shutdown() EXCLUDES(mutex, joinMutex);

    const SessionConfig& config() const { return cfg; }

  private:
    using Clock = std::chrono::steady_clock;

    /** One queued step() call: T input frames, the spikes produced so
     *  far, and the caller's promise. */
    struct StepJob
    {
        BinaryMatrix frames; // T x K input, row = timestep
        size_t next = 0;     // frames served so far
        uint64_t firstStep = 0; // session step count at frame 0
        BinaryMatrix spikes; // T x N final-layer output
        std::promise<SessionStepResult> promise;
    };

    /**
     * One live session. The map entry (presence, the `busy` flag and
     * the job queue) is guarded by `mutex`; the *temporal state*
     * (pin, layers, steps) is owned by the pump thread while
     * busy == true and untouched by everyone else — close(),
     * snapshot() and the destructor wait for busy to drop before
     * reading it (single-owner handoff, documented rather than
     * locked, same convention as PhiEngine's dispatcher ownership).
     */
    struct Session
    {
        ModelRegistry::Pinned pin;
        std::vector<LifPopulation> layers;
        uint64_t steps = 0;
        Clock::time_point lastActive;
        std::deque<StepJob> jobs;
        bool busy = false;
    };

    /** One session's slice of a pump round. */
    struct Participant
    {
        uint64_t id = 0;
        Session* session = nullptr;
        /** Set by serveGroup() when this session's frame failed (the
         *  session's LIF state was rolled back). */
        std::exception_ptr error;
    };

    void pumpLoop() EXCLUDES(mutex);

    /** Serve one frame for every session in @p group (all pinned to
     *  the same epoch) as one batched forward. */
    void serveGroup(std::vector<Participant>& group);

    /** Build Session objects for open()/restore(); validates the
     *  model chains and the params/state fit it. */
    static std::unique_ptr<Session> makeSession(
        ModelRegistry::Pinned pin, std::vector<LifParams> params);

    size_t sweepIdleLocked(Clock::time_point now) REQUIRES(mutex);
    void rememberTombstone(uint64_t id) REQUIRES(mutex);

    /** Typed lookup: returns the session or throws SessionNotFound /
     *  SessionExpired. */
    Session& findSession(uint64_t id) REQUIRES(mutex);
    const Session& findSession(uint64_t id) const REQUIRES(mutex);

    AsyncPhiEngine& engine;
    SessionConfig cfg;

    /**
     * Lock hierarchy (see README "Static analysis & concurrency
     * contracts"): `mutex` is a leaf — never held across an engine
     * submit, a kernel, or any other phi mutex. The pump marks its
     * round's sessions busy under the lock, releases it for the
     * whole forward, and reacquires it to publish results.
     */
    mutable Mutex mutex;
    CondVar workAvailable;  // a session gained a queued job / stop
    CondVar roundComplete;  // a pump round published its results
    std::map<uint64_t, std::unique_ptr<Session>>
        sessions GUARDED_BY(mutex);
    uint64_t nextId GUARDED_BY(mutex) = 1;
    bool stopping GUARDED_BY(mutex) = false;

    /** Recently evicted ids (bounded ring + membership set). */
    std::deque<uint64_t> tombstoneOrder GUARDED_BY(mutex);
    std::unordered_set<uint64_t> tombstones GUARDED_BY(mutex);

    /** Session counters + per-frame latency ring. */
    ServingStats counters GUARDED_BY(mutex);

    /** Serialises the pump launch/join across concurrent shutdowns;
     *  leaf, never held together with `mutex`. */
    Mutex joinMutex;
    std::thread pump GUARDED_BY(joinMutex);
};

} // namespace phi

#endif // PHI_RUNTIME_SESSION_HH
