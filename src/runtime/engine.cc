#include "runtime/engine.hh"

#include <chrono>

#include "common/logging.hh"

namespace phi
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Steady-clock seconds since the clock's epoch, for the monotonic
 *  serving window recorded into ServingStats. */
double
epochSeconds(Clock::time_point t)
{
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

} // namespace

PhiEngine::PhiEngine(CompiledModel model, ExecutionConfig exec)
    : compiled(std::move(model)), exec(exec)
{
    if (compiled.empty())
        throw EngineError(EngineErrorCode::EmptyModel,
                          "PhiEngine needs a model with at least one "
                          "layer");
}

void
PhiEngine::validate(size_t layer, const BinaryMatrix& acts) const
{
    if (layer >= compiled.numLayers())
        throw EngineError(
            EngineErrorCode::InvalidLayer,
            detail::composeMessage("request for layer ", layer, " of a ",
                                   compiled.numLayers(),
                                   "-layer model"));
    const CompiledLayer& l = compiled.layer(layer);
    if (!l.hasWeights())
        throw EngineError(
            EngineErrorCode::MissingWeights,
            detail::composeMessage("layer '", l.name(),
                                   "' was compiled without weights and "
                                   "cannot serve compute"));
    if (acts.cols() != l.weights().rows())
        throw EngineError(
            EngineErrorCode::ShapeMismatch,
            detail::composeMessage("activation K ", acts.cols(),
                                   " != weight rows ",
                                   l.weights().rows(), " for layer '",
                                   l.name(), "'"));
}

size_t
PhiEngine::enqueue(size_t layer, BinaryMatrix acts)
{
    validate(layer, acts);
    queue.push_back({layer, std::move(acts), nullptr});
    return queue.size() - 1;
}

size_t
PhiEngine::enqueueBorrowed(size_t layer, const BinaryMatrix& acts)
{
    validate(layer, acts);
    queue.push_back({layer, BinaryMatrix{}, &acts});
    return queue.size() - 1;
}

std::vector<EngineResponse>
PhiEngine::flush()
{
    if (queue.empty())
        return {};
    // Whatever happens inside (allocation failure, a kernel throw), the
    // queue must not survive this call: the responses are lost with the
    // exception anyway, and borrowed requests must never outlive the
    // flush that was meant to consume them.
    try {
        std::vector<EngineResponse> responses = flushImpl();
        queue.clear();
        return responses;
    } catch (...) {
        queue.clear();
        throw;
    }
}

std::vector<EngineResponse>
PhiEngine::flushImpl()
{
    const size_t n = queue.size();
    std::vector<EngineResponse> responses(n);

    // Allocate every response's output (and the latency scratch, a
    // member reused across flushes) on the submitting thread before
    // dispatch: worker chunks then compute into pre-sized buffers and
    // never meet in the allocator mid-batch.
    for (size_t i = 0; i < n; ++i) {
        const EngineRequest& req = queue[i];
        responses[i].layer = req.layer;
        responses[i].out = Matrix<int32_t>::uninitialized(
            req.acts().rows(),
            compiled.layer(req.layer).weights().cols());
    }
    latencyScratch.assign(n, 0.0);
    const auto batchStart = Clock::now();

    // One chunk per request: requests spread across the pool while each
    // request's inner kernels run with the same deterministic chunking
    // they use stand-alone (nested submissions execute inline).
    parallelFor(exec, 0, n, 1, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
            const auto reqStart = Clock::now();
            const EngineRequest& req = queue[i];
            const CompiledLayer& l = compiled.layer(req.layer);
            EngineResponse& resp = responses[i];
            resp.dec = l.decompose(req.acts(), exec);
            l.computeInto(resp.out, resp.dec, exec);
            latencyScratch[i] = secondsSince(reqStart);
        }
    });

    const auto batchEnd = Clock::now();
    counters.busySeconds +=
        std::chrono::duration<double>(batchEnd - batchStart).count();
    counters.recordFlushWindow(epochSeconds(batchStart),
                               epochSeconds(batchEnd));
    counters.batches += 1;
    counters.requests += n;
    for (const auto& req : queue)
        counters.rows += req.acts().rows();
    for (double s : latencyScratch)
        counters.recordLatency(s);
    return responses;
}

EngineResponse
PhiEngine::serve(size_t layer, const BinaryMatrix& acts)
{
    if (!queue.empty())
        throw EngineError(EngineErrorCode::PendingRequests,
                          "serve() with requests pending; flush() them "
                          "first");
    enqueueBorrowed(layer, acts);
    std::vector<EngineResponse> responses = flush();
    return std::move(responses.front());
}

std::vector<EngineResponse>
PhiEngine::serveBatch(size_t layer,
                      const std::vector<const BinaryMatrix*>& batch)
{
    if (!queue.empty())
        throw EngineError(EngineErrorCode::PendingRequests,
                          "serveBatch() with requests pending; flush() "
                          "them first");
    try {
        for (const BinaryMatrix* acts : batch) {
            if (acts == nullptr)
                throw EngineError(EngineErrorCode::NullActivation,
                                  "null activation in batch");
            enqueueBorrowed(layer, *acts);
        }
        return flush();
    } catch (...) {
        // A rejected request must leave the engine idle and
        // serviceable, with no queued borrows outliving this call.
        queue.clear();
        throw;
    }
}

} // namespace phi
