// PhiEngine holds no mutex by design: it is single-owner (the
// dispatcher thread in the async stack — see engine.hh's
// thread-ownership contract), so nothing in this TU takes a lock and
// nothing here carries thread-safety annotations. Cross-thread state
// it touches — the registry, the shared ThreadPool — is internally
// synchronised behind annotated APIs.
#include "runtime/engine.hh"

#include <chrono>

#include "common/logging.hh"

namespace phi
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Steady-clock seconds since the clock's epoch, for the monotonic
 *  serving window recorded into ServingStats. */
double
epochSeconds(Clock::time_point t)
{
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}

} // namespace

PhiEngine::PhiEngine(CompiledModel model, ExecutionConfig execCfg)
    : models(std::make_shared<ModelRegistry>()), exec(execCfg)
{
    // Throws EmptyModel for a layerless model, exactly as before the
    // registry existed.
    defaultHandle = models->load(kLegacyModelName, std::move(model));
    legacyPin = models->pin(defaultHandle);
}

PhiEngine::PhiEngine(std::shared_ptr<ModelRegistry> registry,
                     ExecutionConfig execCfg)
    : models(std::move(registry)), exec(execCfg)
{
    if (!models)
        throw EngineError(EngineError::Code::EmptyModel,
                          "PhiEngine needs a non-null registry");
}

const CompiledModel&
PhiEngine::model() const
{
    if (!legacyPin)
        throw EngineError(
            EngineError::Code::UnknownModel,
            "model() on a registry-routed engine; resolve a specific "
            "model via registry()->pin(name) instead");
    return *legacyPin;
}

void
PhiEngine::validate(const CompiledModel& model, size_t layer,
                    const BinaryMatrix& acts)
{
    if (layer >= model.numLayers())
        throw EngineError(
            EngineError::Code::InvalidLayer,
            detail::composeMessage("request for layer ", layer, " of a ",
                                   model.numLayers(), "-layer model"));
    const CompiledLayer& l = model.layer(layer);
    if (!l.hasWeights())
        throw EngineError(
            EngineError::Code::MissingWeights,
            detail::composeMessage("layer '", l.name(),
                                   "' was compiled without weights and "
                                   "cannot serve compute"));
    if (acts.cols() != l.weights().rows())
        throw EngineError(
            EngineError::Code::ShapeMismatch,
            detail::composeMessage("activation K ", acts.cols(),
                                   " != weight rows ",
                                   l.weights().rows(), " for layer '",
                                   l.name(), "'"));
}

void
PhiEngine::validate(size_t layer, const BinaryMatrix& acts) const
{
    validate(*models->pin(requireDefault()), layer, acts);
}

const ModelHandle&
PhiEngine::requireDefault() const
{
    if (!defaultHandle.valid())
        throw EngineError(
            EngineError::Code::UnknownModel,
            "this engine routes by ModelHandle (registry-routed, no "
            "default model); pass one explicitly");
    return defaultHandle;
}

ModelRegistry::Pinned
PhiEngine::pinAndValidate(const ModelHandle& handle, size_t layer,
                          const BinaryMatrix& acts) const
{
    ModelRegistry::Pinned pin = models->pin(handle); // UnknownModel
    validate(*pin, layer, acts);
    return pin;
}

size_t
PhiEngine::enqueue(const ModelHandle& handle, size_t layer,
                   BinaryMatrix acts)
{
    ModelRegistry::Pinned pin = pinAndValidate(handle, layer, acts);
    queue.push_back({std::move(pin), layer, std::move(acts), nullptr});
    return queue.size() - 1;
}

size_t
PhiEngine::enqueue(size_t layer, BinaryMatrix acts)
{
    return enqueue(requireDefault(), layer, std::move(acts));
}

size_t
PhiEngine::enqueueBorrowed(const ModelHandle& handle, size_t layer,
                           const BinaryMatrix& acts)
{
    ModelRegistry::Pinned pin = pinAndValidate(handle, layer, acts);
    queue.push_back({std::move(pin), layer, BinaryMatrix{}, &acts});
    return queue.size() - 1;
}

size_t
PhiEngine::enqueueBorrowed(size_t layer, const BinaryMatrix& acts)
{
    return enqueueBorrowed(requireDefault(), layer, acts);
}

size_t
PhiEngine::enqueuePinned(ModelRegistry::Pinned pin, size_t layer,
                         const BinaryMatrix& acts)
{
    // A null pin is reachable from user code (a default-constructed
    // Pinned, or one kept across an unload), so it must reject like
    // every other bad request instead of taking the process down.
    if (!pin)
        throw EngineError(EngineError::Code::UnknownModel,
                          "enqueuePinned() needs a resolved pin");
    queue.push_back({std::move(pin), layer, BinaryMatrix{}, &acts});
    return queue.size() - 1;
}

std::vector<EngineResponse>
PhiEngine::flush()
{
    if (queue.empty())
        return {};
    // Whatever happens inside (allocation failure, a kernel throw), the
    // queue must not survive this call: the responses are lost with the
    // exception anyway, and borrowed requests must never outlive the
    // flush that was meant to consume them.
    try {
        std::vector<EngineResponse> responses = flushImpl();
        queue.clear();
        return responses;
    } catch (...) {
        queue.clear();
        throw;
    }
}

std::vector<EngineResponse>
PhiEngine::flushImpl()
{
    const size_t n = queue.size();
    std::vector<EngineResponse> responses(n);

    // Allocate every response's output (and the latency scratch, a
    // member reused across flushes) on the submitting thread before
    // dispatch: worker chunks then compute into pre-sized buffers and
    // never meet in the allocator mid-batch.
    for (size_t i = 0; i < n; ++i) {
        const EngineRequest& req = queue[i];
        responses[i].model = req.pin.handle;
        responses[i].layer = req.layer;
        responses[i].out = Matrix<int32_t>::uninitialized(
            req.acts().rows(),
            req.pin->layer(req.layer).weights().cols());
    }
    latencyScratch.assign(n, 0.0);
    const auto batchStart = Clock::now();

    // One chunk per request: requests spread across the pool while each
    // request's inner kernels run with the same deterministic chunking
    // they use stand-alone (nested submissions execute inline).
    parallelFor(exec, 0, n, 1, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
            const auto reqStart = Clock::now();
            const EngineRequest& req = queue[i];
            const CompiledLayer& l = req.pin->layer(req.layer);
            EngineResponse& resp = responses[i];
            resp.dec = l.decompose(req.acts(), exec);
            l.computeInto(resp.out, resp.dec, exec);
            latencyScratch[i] = secondsSince(reqStart);
        }
    });

    const auto batchEnd = Clock::now();
    const double batchSeconds =
        std::chrono::duration<double>(batchEnd - batchStart).count();

    // Merged process view: recorded once per flush, so nothing is
    // double-counted however many models shared the batch.
    counters.busySeconds += batchSeconds;
    counters.recordFlushWindow(epochSeconds(batchStart),
                               epochSeconds(batchEnd));
    counters.batches += 1;
    counters.requests += n;
    for (const auto& req : queue)
        counters.rows += req.acts().rows();
    for (double s : latencyScratch)
        counters.recordLatency(s);

    // Per-model view: requests/rows/latencies are attributed exactly;
    // the flush's wall time, window and batch count go once to every
    // distinct model that took part in it (its requests really did
    // occupy that flush).
    std::vector<ServingStats*> touched;
    for (size_t i = 0; i < n; ++i) {
        const EngineRequest& req = queue[i];
        ServingStats& ms = modelCounters[req.pin.handle.name];
        ms.requests += 1;
        ms.rows += req.acts().rows();
        ms.recordLatency(latencyScratch[i]);
        bool seen = false;
        for (const ServingStats* t : touched)
            seen = seen || t == &ms;
        if (!seen)
            touched.push_back(&ms);
    }
    for (ServingStats* ms : touched) {
        ms->busySeconds += batchSeconds;
        ms->recordFlushWindow(epochSeconds(batchStart),
                              epochSeconds(batchEnd));
        ms->batches += 1;
    }
    return responses;
}

ServingStats
PhiEngine::statsFor(const std::string& name) const
{
    auto it = modelCounters.find(name);
    return it == modelCounters.end() ? ServingStats{} : it->second;
}

EngineResponse
PhiEngine::serve(const ModelHandle& handle, size_t layer,
                 const BinaryMatrix& acts)
{
    if (!queue.empty())
        throw EngineError(EngineError::Code::PendingRequests,
                          "serve() with requests pending; flush() them "
                          "first");
    enqueueBorrowed(handle, layer, acts);
    std::vector<EngineResponse> responses = flush();
    return std::move(responses.front());
}

EngineResponse
PhiEngine::serve(size_t layer, const BinaryMatrix& acts)
{
    return serve(requireDefault(), layer, acts);
}

std::vector<EngineResponse>
PhiEngine::serveBatch(const ModelHandle& handle, size_t layer,
                      const std::vector<const BinaryMatrix*>& batch)
{
    if (!queue.empty())
        throw EngineError(EngineError::Code::PendingRequests,
                          "serveBatch() with requests pending; flush() "
                          "them first");
    try {
        // One pin for the whole batch: every request serves the same
        // epoch even if a swap lands mid-enqueue.
        ModelRegistry::Pinned pin;
        for (const BinaryMatrix* acts : batch) {
            if (acts == nullptr)
                throw EngineError(EngineError::Code::NullActivation,
                                  "null activation in batch");
            if (!pin)
                pin = pinAndValidate(handle, layer, *acts);
            else
                validate(*pin, layer, *acts);
            enqueuePinned(pin, layer, *acts);
        }
        return flush();
    } catch (...) {
        // A rejected request must leave the engine idle and
        // serviceable, with no queued borrows outliving this call.
        queue.clear();
        throw;
    }
}

std::vector<EngineResponse>
PhiEngine::serveBatch(size_t layer,
                      const std::vector<const BinaryMatrix*>& batch)
{
    return serveBatch(requireDefault(), layer, batch);
}

} // namespace phi
