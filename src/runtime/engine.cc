#include "runtime/engine.hh"

#include <chrono>

namespace phi
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

PhiEngine::PhiEngine(CompiledModel model, ExecutionConfig exec)
    : compiled(std::move(model)), exec(exec)
{
    phi_assert(!compiled.empty(),
               "PhiEngine needs a model with at least one layer");
}

void
PhiEngine::validateRequest(size_t layer, const BinaryMatrix& acts) const
{
    phi_assert(layer < compiled.numLayers(), "request for layer ", layer,
               " of a ", compiled.numLayers(), "-layer model");
    const CompiledLayer& l = compiled.layer(layer);
    phi_assert(l.hasWeights(), "layer '", l.name(),
               "' was compiled without weights and cannot serve compute");
    phi_assert(acts.cols() == l.weights().rows(),
               "activation K ", acts.cols(), " != weight rows ",
               l.weights().rows(), " for layer '", l.name(), "'");
}

size_t
PhiEngine::enqueue(size_t layer, BinaryMatrix acts)
{
    validateRequest(layer, acts);
    queue.push_back({layer, std::move(acts)});
    return queue.size() - 1;
}

std::vector<EngineResponse>
PhiEngine::flush()
{
    if (queue.empty())
        return {};

    const size_t n = queue.size();
    std::vector<EngineResponse> responses(n);

    // Allocate every response's output (and the latency scratch, a
    // member reused across flushes) on the submitting thread before
    // dispatch: worker chunks then compute into pre-sized buffers and
    // never meet in the allocator mid-batch.
    for (size_t i = 0; i < n; ++i) {
        const EngineRequest& req = queue[i];
        responses[i].layer = req.layer;
        responses[i].out = Matrix<int32_t>::uninitialized(
            req.acts.rows(),
            compiled.layer(req.layer).weights().cols());
    }
    latencyScratch.assign(n, 0.0);
    const auto batchStart = Clock::now();

    // One chunk per request: requests spread across the pool while each
    // request's inner kernels run with the same deterministic chunking
    // they use stand-alone (nested submissions execute inline).
    parallelFor(exec, 0, n, 1, [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
            const auto reqStart = Clock::now();
            const EngineRequest& req = queue[i];
            const CompiledLayer& l = compiled.layer(req.layer);
            EngineResponse& resp = responses[i];
            resp.dec = l.decompose(req.acts, exec);
            l.computeInto(resp.out, resp.dec, exec);
            latencyScratch[i] = secondsSince(reqStart);
        }
    });

    counters.busySeconds += secondsSince(batchStart);
    counters.batches += 1;
    counters.requests += n;
    for (const auto& req : queue)
        counters.rows += req.acts.rows();
    for (double s : latencyScratch)
        counters.recordLatency(s);
    queue.clear();
    return responses;
}

EngineResponse
PhiEngine::serve(size_t layer, const BinaryMatrix& acts)
{
    phi_assert(queue.empty(),
               "serve() with requests pending; flush() them first");
    enqueue(layer, acts);
    std::vector<EngineResponse> responses = flush();
    return std::move(responses.front());
}

std::vector<EngineResponse>
PhiEngine::serveBatch(size_t layer,
                      const std::vector<const BinaryMatrix*>& batch)
{
    phi_assert(queue.empty(),
               "serveBatch() with requests pending; flush() them first");
    for (const BinaryMatrix* acts : batch) {
        phi_assert(acts != nullptr, "null activation in batch");
        enqueue(layer, *acts);
    }
    return flush();
}

} // namespace phi
