#include "runtime/async_engine.hh"

#include <algorithm>
#include <utility>
#include <vector>

namespace phi
{

namespace
{

std::exception_ptr
makeError(EngineError::Code code, const std::string& what)
{
    return std::make_exception_ptr(EngineError(code, what));
}

} // namespace

AsyncPhiEngine::AsyncPhiEngine(CompiledModel model, ExecutionConfig exec,
                               AsyncEngineConfig config)
    : engine(std::move(model), exec), asyncConfig(config)
{
    if (asyncConfig.maxBatch < 1)
        asyncConfig.maxBatch = 1;
    if (asyncConfig.maxQueueDepth < 1)
        asyncConfig.maxQueueDepth = 1;
    dispatcher = std::thread([this] { dispatchLoop(); });
}

AsyncPhiEngine::AsyncPhiEngine(std::shared_ptr<ModelRegistry> registry,
                               ExecutionConfig exec,
                               AsyncEngineConfig config)
    : engine(std::move(registry), exec), asyncConfig(config)
{
    if (asyncConfig.maxBatch < 1)
        asyncConfig.maxBatch = 1;
    if (asyncConfig.maxQueueDepth < 1)
        asyncConfig.maxQueueDepth = 1;
    dispatcher = std::thread([this] { dispatchLoop(); });
}

AsyncPhiEngine::~AsyncPhiEngine()
{
    shutdown();
}

std::future<EngineResponse>
AsyncPhiEngine::submit(const ModelHandle& handle, size_t layer,
                       BinaryMatrix acts)
{
    std::promise<EngineResponse> promise;
    std::future<EngineResponse> future = promise.get_future();

    // Pin + validate on the submitting thread, against the epoch that
    // is current right now: a malformed request (or an unloaded
    // model) resolves its own future right here and can never poison
    // a batch or abort the process, and a swap() landing after this
    // point cannot move the request off the version it was validated
    // against.
    ModelRegistry::Pinned pin;
    try {
        pin = engine.registry()->pin(handle);
        PhiEngine::validate(*pin, layer, acts);
    } catch (...) {
        promise.set_exception(std::current_exception());
        return future;
    }

    std::unique_lock<std::mutex> lock(mutex);
    if (!accepting) {
        promise.set_exception(makeError(EngineError::Code::Stopped,
                                        "submit() on a stopped engine"));
        return future;
    }
    if (pendingQueue.size() >= asyncConfig.maxQueueDepth) {
        if (asyncConfig.backpressure ==
            AsyncEngineConfig::Backpressure::Reject) {
            ++rejectedCount;
            promise.set_exception(
                makeError(EngineError::Code::QueueFull,
                          "queue at maxQueueDepth under Reject policy"));
            return future;
        }
        spaceAvailable.wait(lock, [this] {
            return pendingQueue.size() < asyncConfig.maxQueueDepth ||
                   !accepting;
        });
        if (!accepting) {
            promise.set_exception(
                makeError(EngineError::Code::Stopped,
                          "engine stopped while waiting for queue "
                          "space"));
            return future;
        }
    }
    pendingQueue.push_back({std::move(pin), layer, std::move(acts),
                            std::move(promise), Clock::now()});
    lock.unlock();
    workAvailable.notify_one();
    return future;
}

std::future<EngineResponse>
AsyncPhiEngine::submit(size_t layer, BinaryMatrix acts)
{
    const ModelHandle& handle = engine.defaultModel();
    if (!handle.valid()) {
        std::promise<EngineResponse> promise;
        std::future<EngineResponse> future = promise.get_future();
        promise.set_exception(makeError(
            EngineError::Code::UnknownModel,
            "this engine routes by ModelHandle (registry-routed, no "
            "default model); pass one explicitly"));
        return future;
    }
    return submit(handle, layer, std::move(acts));
}

void
AsyncPhiEngine::dispatchLoop()
{
    // Frontend counters live on this thread and are published together
    // with the inner engine's flush counters after every batch.
    ServingStats frontend;

    for (;;) {
        std::unique_lock<std::mutex> lock(mutex);
        workAvailable.wait(lock, [this] {
            return !pendingQueue.empty() || stopping ||
                   !statsDrops.empty();
        });
        // Prune per-model counters retired by dropStatsFor(): the
        // inner engine is dispatcher-owned, so the erase happens here.
        for (const std::string& name : statsDrops)
            engine.dropStatsFor(name);
        statsDrops.clear();
        if (pendingQueue.empty()) {
            if (stopping)
                break; // everything queued has been served
            continue;  // woken only to prune stats
        }

        // Micro-batch coalescing: linger after the batch's first
        // request so closely-spaced submits share one flush. The
        // deadline is anchored at that request's submit time, so a
        // request that already queued behind a long flush is not made
        // to wait again. Skipped when the batch is already full or the
        // engine is stopping.
        const auto readyAt = Clock::now();
        const auto deadline =
            pendingQueue.front().enqueuedAt +
            std::chrono::microseconds(asyncConfig.maxLingerMicros);
        while (!stopping && pendingQueue.size() < asyncConfig.maxBatch &&
               Clock::now() < deadline)
            workAvailable.wait_until(lock, deadline);

        const size_t depthAtDispatch = pendingQueue.size();
        const size_t take =
            std::min(depthAtDispatch, asyncConfig.maxBatch);
        std::vector<Pending> batch;
        batch.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(pendingQueue.front()));
            pendingQueue.pop_front();
        }
        inFlight = batch.size();
        // Coalescing cost actually added by the dispatcher: time from
        // "could have dispatched" to "did". Queue wait behind earlier
        // flushes shows up in request latency, not here.
        const double lingerSec =
            std::chrono::duration<double>(Clock::now() - readyAt)
                .count();
        lock.unlock();
        spaceAvailable.notify_all();

        // Serve the batch on the inner engine (this thread is its only
        // caller), each request on the epoch its submit() pinned.
        // Every promise gets exactly one of: its response, or the
        // batch's exception — never a broken promise.
        std::vector<EngineResponse> responses;
        std::exception_ptr batchError;
        try {
            for (const Pending& p : batch)
                engine.enqueuePinned(p.pin, p.layer, p.acts);
            responses = engine.flush();
        } catch (...) {
            batchError = std::current_exception();
            // A mid-loop enqueue failure leaves earlier borrows queued
            // (flush() clears its own on throw); drop them before the
            // batch — and the activations they point into — goes away.
            engine.clearPending();
        }

        // Publish stats before resolving the promises, so a caller who
        // saw its future complete also sees its request in stats().
        // The snapshots are assembled outside the lock and swapped in,
        // keeping the critical section small. Only the models this
        // batch touched are re-copied — the publish cost scales with
        // batch diversity, not with the size of the resident fleet.
        frontend.recordDispatch(depthAtDispatch, lingerSec);
        ServingStats snapshot = engine.stats();
        snapshot.dispatches = frontend.dispatches;
        snapshot.queueDepthSum = frontend.queueDepthSum;
        snapshot.maxQueueDepth = frontend.maxQueueDepth;
        snapshot.lingerSeconds = frontend.lingerSeconds;
        std::vector<std::pair<std::string, ServingStats>> touched;
        for (const Pending& p : batch) {
            const std::string& name = p.pin.handle.name;
            bool seen = false;
            for (const auto& [n, s] : touched)
                seen = seen || n == name;
            if (!seen)
                touched.emplace_back(name, engine.statsFor(name));
        }
        {
            std::lock_guard<std::mutex> statsLock(statsMutex);
            publishedStats = std::move(snapshot);
            for (auto& [name, stats] : touched)
                publishedModelStats[name] = std::move(stats);
        }

        if (batchError)
            for (Pending& p : batch)
                p.promise.set_exception(batchError);
        else
            for (size_t i = 0; i < batch.size(); ++i)
                batch[i].promise.set_value(std::move(responses[i]));

        // Release the batch — and with it the model-epoch pins — on
        // the dispatcher thread, *before* clearing inFlight: drain()
        // returning (or unload() succeeding) must mean the old epoch
        // really is free.
        batch.clear();

        lock.lock();
        inFlight = 0;
        if (pendingQueue.empty())
            idle.notify_all();
    }
}

void
AsyncPhiEngine::drain()
{
    std::unique_lock<std::mutex> lock(mutex);
    idle.wait(lock,
              [this] { return pendingQueue.empty() && inFlight == 0; });
}

void
AsyncPhiEngine::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        accepting = false;
        stopping = true;
    }
    workAvailable.notify_all();
    spaceAvailable.notify_all();
    {
        std::lock_guard<std::mutex> lock(joinMutex);
        if (dispatcher.joinable())
            dispatcher.join();
    }
}

size_t
AsyncPhiEngine::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return pendingQueue.size();
}

ServingStats
AsyncPhiEngine::stats() const
{
    ServingStats snapshot;
    {
        std::lock_guard<std::mutex> lock(statsMutex);
        snapshot = publishedStats;
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        snapshot.rejected = rejectedCount;
    }
    return snapshot;
}

ServingStats
AsyncPhiEngine::statsFor(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(statsMutex);
    auto it = publishedModelStats.find(name);
    return it == publishedModelStats.end() ? ServingStats{}
                                           : it->second;
}

std::map<std::string, ServingStats>
AsyncPhiEngine::perModelStats() const
{
    std::lock_guard<std::mutex> lock(statsMutex);
    return publishedModelStats;
}

void
AsyncPhiEngine::dropStatsFor(const std::string& name)
{
    // The published snapshot drops immediately; the inner engine's
    // copy is dispatcher-owned, so its erase is queued for the
    // dispatcher's next wake-up (forced right here).
    {
        std::lock_guard<std::mutex> lock(statsMutex);
        publishedModelStats.erase(name);
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        statsDrops.push_back(name);
    }
    workAvailable.notify_one();
}

} // namespace phi
