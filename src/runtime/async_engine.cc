#include "runtime/async_engine.hh"

#include <algorithm>
#include <utility>
#include <vector>

namespace phi
{

namespace
{

std::exception_ptr
makeError(EngineErrorCode code, const std::string& what)
{
    return std::make_exception_ptr(EngineError(code, what));
}

} // namespace

AsyncPhiEngine::AsyncPhiEngine(CompiledModel model, ExecutionConfig exec,
                               AsyncEngineConfig config)
    : engine(std::move(model), exec), asyncConfig(config)
{
    if (asyncConfig.maxBatch < 1)
        asyncConfig.maxBatch = 1;
    if (asyncConfig.maxQueueDepth < 1)
        asyncConfig.maxQueueDepth = 1;
    dispatcher = std::thread([this] { dispatchLoop(); });
}

AsyncPhiEngine::~AsyncPhiEngine()
{
    shutdown();
}

std::future<EngineResponse>
AsyncPhiEngine::submit(size_t layer, BinaryMatrix acts)
{
    std::promise<EngineResponse> promise;
    std::future<EngineResponse> future = promise.get_future();

    // Validate on the submitting thread, against the immutable model:
    // a malformed request resolves its own future right here and can
    // never poison a batch or abort the process.
    try {
        engine.validate(layer, acts);
    } catch (...) {
        promise.set_exception(std::current_exception());
        return future;
    }

    std::unique_lock<std::mutex> lock(mutex);
    if (!accepting) {
        promise.set_exception(makeError(EngineErrorCode::Stopped,
                                        "submit() on a stopped engine"));
        return future;
    }
    if (pendingQueue.size() >= asyncConfig.maxQueueDepth) {
        if (asyncConfig.backpressure ==
            AsyncEngineConfig::Backpressure::Reject) {
            ++rejectedCount;
            promise.set_exception(
                makeError(EngineErrorCode::QueueFull,
                          "queue at maxQueueDepth under Reject policy"));
            return future;
        }
        spaceAvailable.wait(lock, [this] {
            return pendingQueue.size() < asyncConfig.maxQueueDepth ||
                   !accepting;
        });
        if (!accepting) {
            promise.set_exception(
                makeError(EngineErrorCode::Stopped,
                          "engine stopped while waiting for queue "
                          "space"));
            return future;
        }
    }
    pendingQueue.push_back({layer, std::move(acts), std::move(promise),
                            Clock::now()});
    lock.unlock();
    workAvailable.notify_one();
    return future;
}

void
AsyncPhiEngine::dispatchLoop()
{
    // Frontend counters live on this thread and are published together
    // with the inner engine's flush counters after every batch.
    ServingStats frontend;

    for (;;) {
        std::unique_lock<std::mutex> lock(mutex);
        workAvailable.wait(lock, [this] {
            return !pendingQueue.empty() || stopping;
        });
        if (pendingQueue.empty())
            break; // stopping, and everything queued has been served

        // Micro-batch coalescing: linger after the batch's first
        // request so closely-spaced submits share one flush. The
        // deadline is anchored at that request's submit time, so a
        // request that already queued behind a long flush is not made
        // to wait again. Skipped when the batch is already full or the
        // engine is stopping.
        const auto readyAt = Clock::now();
        const auto deadline =
            pendingQueue.front().enqueuedAt +
            std::chrono::microseconds(asyncConfig.maxLingerMicros);
        while (!stopping && pendingQueue.size() < asyncConfig.maxBatch &&
               Clock::now() < deadline)
            workAvailable.wait_until(lock, deadline);

        const size_t depthAtDispatch = pendingQueue.size();
        const size_t take =
            std::min(depthAtDispatch, asyncConfig.maxBatch);
        std::vector<Pending> batch;
        batch.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            batch.push_back(std::move(pendingQueue.front()));
            pendingQueue.pop_front();
        }
        inFlight = batch.size();
        // Coalescing cost actually added by the dispatcher: time from
        // "could have dispatched" to "did". Queue wait behind earlier
        // flushes shows up in request latency, not here.
        const double lingerSec =
            std::chrono::duration<double>(Clock::now() - readyAt)
                .count();
        lock.unlock();
        spaceAvailable.notify_all();

        // Serve the batch on the inner engine (this thread is its only
        // caller). Every promise gets exactly one of: its response, or
        // the batch's exception — never a broken promise.
        std::vector<EngineResponse> responses;
        std::exception_ptr batchError;
        try {
            for (const Pending& p : batch)
                engine.enqueueBorrowed(p.layer, p.acts);
            responses = engine.flush();
        } catch (...) {
            batchError = std::current_exception();
            // A mid-loop enqueue failure leaves earlier borrows queued
            // (flush() clears its own on throw); drop them before the
            // batch — and the activations they point into — goes away.
            engine.clearPending();
        }

        // Publish stats before resolving the promises, so a caller who
        // saw its future complete also sees its request in stats().
        // The snapshot is assembled outside the lock and swapped in,
        // keeping the critical section O(1) rather than a ring copy.
        frontend.recordDispatch(depthAtDispatch, lingerSec);
        ServingStats snapshot = engine.stats();
        snapshot.dispatches = frontend.dispatches;
        snapshot.queueDepthSum = frontend.queueDepthSum;
        snapshot.maxQueueDepth = frontend.maxQueueDepth;
        snapshot.lingerSeconds = frontend.lingerSeconds;
        {
            std::lock_guard<std::mutex> statsLock(statsMutex);
            publishedStats = std::move(snapshot);
        }

        if (batchError)
            for (Pending& p : batch)
                p.promise.set_exception(batchError);
        else
            for (size_t i = 0; i < batch.size(); ++i)
                batch[i].promise.set_value(std::move(responses[i]));

        lock.lock();
        inFlight = 0;
        if (pendingQueue.empty())
            idle.notify_all();
    }
}

void
AsyncPhiEngine::drain()
{
    std::unique_lock<std::mutex> lock(mutex);
    idle.wait(lock,
              [this] { return pendingQueue.empty() && inFlight == 0; });
}

void
AsyncPhiEngine::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        accepting = false;
        stopping = true;
    }
    workAvailable.notify_all();
    spaceAvailable.notify_all();
    {
        std::lock_guard<std::mutex> lock(joinMutex);
        if (dispatcher.joinable())
            dispatcher.join();
    }
}

size_t
AsyncPhiEngine::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return pendingQueue.size();
}

ServingStats
AsyncPhiEngine::stats() const
{
    ServingStats snapshot;
    {
        std::lock_guard<std::mutex> lock(statsMutex);
        snapshot = publishedStats;
    }
    {
        std::lock_guard<std::mutex> lock(mutex);
        snapshot.rejected = rejectedCount;
    }
    return snapshot;
}

} // namespace phi
