#include "runtime/async_engine.hh"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.hh"
#include "common/logging.hh"

namespace phi
{

namespace
{

std::exception_ptr
makeError(EngineError::Code code, const std::string& what)
{
    return std::make_exception_ptr(EngineError(code, what));
}

} // namespace

AsyncPhiEngine::AsyncPhiEngine(CompiledModel model, ExecutionConfig exec,
                               AsyncEngineConfig config)
    : engine(std::move(model), exec), asyncConfig(config)
{
    if (asyncConfig.maxBatch < 1)
        asyncConfig.maxBatch = 1;
    if (asyncConfig.maxQueueDepth < 1)
        asyncConfig.maxQueueDepth = 1;
    MutexLock join(joinMutex);
    dispatcher = std::thread([this] { superviseDispatch(); });
}

AsyncPhiEngine::AsyncPhiEngine(std::shared_ptr<ModelRegistry> registry,
                               ExecutionConfig exec,
                               AsyncEngineConfig config)
    : engine(std::move(registry), exec), asyncConfig(config)
{
    if (asyncConfig.maxBatch < 1)
        asyncConfig.maxBatch = 1;
    if (asyncConfig.maxQueueDepth < 1)
        asyncConfig.maxQueueDepth = 1;
    MutexLock join(joinMutex);
    dispatcher = std::thread([this] { superviseDispatch(); });
}

AsyncPhiEngine::~AsyncPhiEngine()
{
    shutdown();
}

std::future<EngineResponse>
AsyncPhiEngine::submit(const ModelHandle& handle, size_t layer,
                       BinaryMatrix acts, SubmitOptions opts)
{
    // Pin on the submitting thread, against the epoch that is current
    // right now: a swap() landing after this point cannot move the
    // request off the version it was validated against.
    ModelRegistry::Pinned pin;
    try {
        pin = engine.registry()->pin(handle);
    } catch (...) {
        std::promise<EngineResponse> promise;
        std::future<EngineResponse> future = promise.get_future();
        promise.set_exception(std::current_exception());
        return future;
    }
    return submitPinned(std::move(pin), layer, std::move(acts), opts);
}

std::future<EngineResponse>
AsyncPhiEngine::submitPinned(ModelRegistry::Pinned pin, size_t layer,
                             BinaryMatrix acts, SubmitOptions opts)
{
    phi_assert(pin.model != nullptr, "submitPinned() needs a pinned model");
    std::promise<EngineResponse> promise;
    std::future<EngineResponse> future = promise.get_future();

    // Validate on the submitting thread: a malformed request resolves
    // its own future right here and can never poison a batch or abort
    // the process.
    try {
        PhiEngine::validate(*pin, layer, acts);
    } catch (...) {
        promise.set_exception(std::current_exception());
        return future;
    }

    UniqueLock lock(mutex);
    if (!accepting) {
        promise.set_exception(makeError(EngineError::Code::Stopped,
                                        "submit() on a stopped engine"));
        return future;
    }
    // A request born expired never takes a queue slot: fail it here,
    // with the same code and accounting the dispatcher would use.
    if (opts.deadline) {
        const auto now = Clock::now();
        if (*opts.deadline <= now) {
            resilienceStats.recordDeadlineMiss(
                std::chrono::duration<double>(now - *opts.deadline)
                    .count());
            lock.unlock();
            promise.set_exception(makeError(
                EngineError::Code::DeadlineExceeded,
                "deadline already passed at submit()"));
            return future;
        }
    }
    if (pendingQueue.size() >= asyncConfig.maxQueueDepth) {
        // Saturated. Before Block/Reject kicks in, priority gets a
        // say: an incoming request that outranks the lowest-priority
        // queued one takes its slot, and the victim's future resolves
        // with QueueFull. Among equal-priority victims the newest is
        // shed — it has the least queue wait invested. All-default
        // priorities never shed, so this path is invisible to callers
        // of the plain submit().
        auto victim = pendingQueue.end();
        for (auto it = pendingQueue.begin(); it != pendingQueue.end();
             ++it)
            if (victim == pendingQueue.end() ||
                it->opts.priority <= victim->opts.priority)
                victim = it;
        if (victim != pendingQueue.end() &&
            victim->opts.priority < opts.priority) {
            Pending shedReq = std::move(*victim);
            pendingQueue.erase(victim);
            resilienceStats.shed += 1;
            pendingQueue.push_back({std::move(pin), layer,
                                    std::move(acts), std::move(promise),
                                    Clock::now(), opts});
            lock.unlock();
            shedReq.promise.set_exception(makeError(
                EngineError::Code::QueueFull,
                "shed from a saturated queue to admit a "
                "higher-priority request"));
            workAvailable.notify_one();
            return future;
        }
        if (asyncConfig.backpressure ==
            AsyncEngineConfig::Backpressure::Reject) {
            ++rejectedCount;
            promise.set_exception(
                makeError(EngineError::Code::QueueFull,
                          "queue at maxQueueDepth under Reject policy"));
            return future;
        }
        while (pendingQueue.size() >= asyncConfig.maxQueueDepth &&
               accepting)
            spaceAvailable.wait(lock);
        if (!accepting) {
            promise.set_exception(
                makeError(EngineError::Code::Stopped,
                          "engine stopped while waiting for queue "
                          "space"));
            return future;
        }
    }
    pendingQueue.push_back({std::move(pin), layer, std::move(acts),
                            std::move(promise), Clock::now(), opts});
    lock.unlock();
    workAvailable.notify_one();
    return future;
}

std::future<EngineResponse>
AsyncPhiEngine::submit(size_t layer, BinaryMatrix acts,
                       SubmitOptions opts)
{
    const ModelHandle& handle = engine.defaultModel();
    if (!handle.valid()) {
        std::promise<EngineResponse> promise;
        std::future<EngineResponse> future = promise.get_future();
        promise.set_exception(makeError(
            EngineError::Code::UnknownModel,
            "this engine routes by ModelHandle (registry-routed, no "
            "default model); pass one explicitly"));
        return future;
    }
    return submit(handle, layer, std::move(acts), opts);
}

void
AsyncPhiEngine::superviseDispatch()
{
    // The watchdog: dispatchLoop() returning means a clean stop;
    // anything escaping it means the dispatcher died mid-flight. The
    // blast radius of a crash is confined to the batch that was in
    // flight — its futures resolve with a typed error — and the loop
    // restarts to serve everything still queued.
    for (;;) {
        try {
            dispatchLoop();
            return;
        } catch (...) {
            recoverDispatcher(std::current_exception());
        }
    }
}

void
AsyncPhiEngine::recoverDispatcher(std::exception_ptr cause)
{
    // Name the killer in the error the in-flight futures see, so a
    // client log line is enough to know what happened.
    std::string what = "dispatcher died on an escaped exception";
    try {
        if (cause)
            std::rethrow_exception(cause);
    } catch (const std::exception& e) {
        what += std::string(" (") + e.what() + ")";
    } catch (...) {
        what += " (non-std exception)";
    }
    const std::exception_ptr error = makeError(
        EngineError::Code::Internal,
        what + "; the watchdog restarted the dispatcher, requests "
               "still queued are unaffected and a retry is safe");

    // Fail the batch that was in flight. set_exception can only
    // rebuff us for promises the loop already resolved before dying —
    // exactly the ones that must not be touched twice.
    for (Pending& p : inFlightBatch) {
        try {
            p.promise.set_exception(error);
        } catch (const std::future_error&) {
        }
    }
    inFlightBatch.clear();
    // Drop any borrows the dead batch left enqueued in the inner
    // engine — they point into Pending activations just destroyed.
    engine.clearPending();

    watchdogRestarts.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::promise<void>> drained;
    {
        MutexLock lock(mutex);
        inFlight = 0;
        // The crash may have emptied the world: drainedFuture()
        // waiters must not outlive the work they were waiting on.
        if (pendingQueue.empty())
            drained = std::move(drainWaiters);
    }
    // Both a blocked drain() (queue may now be empty) and blocked
    // submitters get to re-check the world.
    idle.notify_all();
    spaceAvailable.notify_all();
    for (std::promise<void>& p : drained)
        p.set_value();
}

void
AsyncPhiEngine::dispatchLoop()
{
    for (;;) {
        UniqueLock lock(mutex);
        while (pendingQueue.empty() && !stopping && statsDrops.empty())
            workAvailable.wait(lock);
        // Prune per-model counters retired by dropStatsFor(): the
        // inner engine is dispatcher-owned, so the erase happens here.
        for (const std::string& name : statsDrops)
            engine.dropStatsFor(name);
        statsDrops.clear();
        if (pendingQueue.empty()) {
            if (stopping)
                break; // everything queued has been served
            continue;  // woken only to prune stats
        }

        // Micro-batch coalescing: linger after the batch's first
        // request so closely-spaced submits share one flush. The
        // deadline is anchored at that request's submit time, so a
        // request that already queued behind a long flush is not made
        // to wait again. Skipped when the batch is already full or the
        // engine is stopping.
        const auto readyAt = Clock::now();
        const auto lingerUntil =
            pendingQueue.front().enqueuedAt +
            std::chrono::microseconds(asyncConfig.maxLingerMicros);
        while (!stopping && pendingQueue.size() < asyncConfig.maxBatch &&
               Clock::now() < lingerUntil)
            workAvailable.wait_until(lock, lingerUntil);

        // Last moment before compute: drop every queued request whose
        // deadline has passed. Serving it anyway would spend batch
        // capacity on an answer nobody is waiting for — and under
        // saturation that waste compounds into unbounded queue-wait
        // for everyone behind it.
        const auto now = Clock::now();
        std::vector<Pending> expiredBatch;
        for (auto it = pendingQueue.begin();
             it != pendingQueue.end();) {
            if (it->opts.deadline && *it->opts.deadline <= now) {
                resilienceStats.recordDeadlineMiss(
                    std::chrono::duration<double>(now -
                                                  *it->opts.deadline)
                        .count());
                expiredBatch.push_back(std::move(*it));
                it = pendingQueue.erase(it);
            } else {
                ++it;
            }
        }

        const size_t depthAtDispatch = pendingQueue.size();
        const size_t take =
            std::min(depthAtDispatch, asyncConfig.maxBatch);
        inFlightBatch.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            inFlightBatch.push_back(std::move(pendingQueue.front()));
            pendingQueue.pop_front();
        }
        inFlight = inFlightBatch.size() + expiredBatch.size();
        // Coalescing cost actually added by the dispatcher: time from
        // "could have dispatched" to "did". Queue wait behind earlier
        // flushes shows up in request latency, not here.
        const double lingerSec =
            std::chrono::duration<double>(Clock::now() - readyAt)
                .count();
        lock.unlock();
        spaceAvailable.notify_all();

        for (Pending& p : expiredBatch)
            p.promise.set_exception(makeError(
                EngineError::Code::DeadlineExceeded,
                "deadline passed while queued; dropped before "
                "compute"));
        expiredBatch.clear();

        PHI_FAILPOINT(failpoint::sites::kDispatcherLoop,
                      throw std::runtime_error(
                          "injected dispatcher crash (failpoint "
                          "'dispatcher.loop')"));

        // Serve the batch on the inner engine (this thread is its only
        // caller), each request on the epoch its submit() pinned.
        // Every promise gets exactly one of: its response, or the
        // batch's exception — never a broken promise.
        std::vector<EngineResponse> responses;
        std::exception_ptr batchError;
        try {
            for (const Pending& p : inFlightBatch)
                engine.enqueuePinned(p.pin, p.layer, p.acts);
            responses = engine.flush();
        } catch (const EngineError&) {
            batchError = std::current_exception();
            // A mid-loop enqueue failure leaves earlier borrows queued
            // (flush() clears its own on throw); drop them before the
            // batch — and the activations they point into — goes away.
            engine.clearPending();
        } catch (const std::exception& e) {
            // Anything else escaping the compute path (a worker-thread
            // exception rethrown by the pool, bad_alloc, an injected
            // fault) still reaches the futures as a *typed* error:
            // clients are promised a value or an EngineError, never a
            // grab bag of internal exception types.
            batchError = makeError(
                EngineError::Code::Internal,
                std::string("batch failed: ") + e.what());
            engine.clearPending();
        } catch (...) {
            batchError =
                makeError(EngineError::Code::Internal,
                          "batch failed on a non-std exception");
            engine.clearPending();
        }

        // Publish stats before resolving the promises, so a caller who
        // saw its future complete also sees its request in stats().
        // The snapshots are assembled outside the lock and swapped in,
        // keeping the critical section small. Only the models this
        // batch touched are re-copied — the publish cost scales with
        // batch diversity, not with the size of the resident fleet.
        if (!inFlightBatch.empty())
            frontendStats.recordDispatch(depthAtDispatch, lingerSec);
        ServingStats snapshot = engine.stats();
        snapshot.dispatches = frontendStats.dispatches;
        snapshot.queueDepthSum = frontendStats.queueDepthSum;
        snapshot.maxQueueDepth = frontendStats.maxQueueDepth;
        snapshot.lingerSeconds = frontendStats.lingerSeconds;
        std::vector<std::pair<std::string, ServingStats>> touched;
        for (const Pending& p : inFlightBatch) {
            const std::string& name = p.pin.handle.name;
            bool seen = false;
            for (const auto& [n, s] : touched)
                seen = seen || n == name;
            if (!seen)
                touched.emplace_back(name, engine.statsFor(name));
        }
        {
            // `mutex` is not held here (unlocked above, before
            // compute): the mutex/statsMutex exclusion the EXCLUDES
            // contracts pin down.
            MutexLock statsLock(statsMutex);
            publishedStats = std::move(snapshot);
            for (auto& [name, stats] : touched)
                publishedModelStats[name] = std::move(stats);
        }

        if (batchError)
            for (Pending& p : inFlightBatch)
                p.promise.set_exception(batchError);
        else
            for (size_t i = 0; i < inFlightBatch.size(); ++i)
                inFlightBatch[i].promise.set_value(
                    std::move(responses[i]));

        // Release the batch — and with it the model-epoch pins — on
        // the dispatcher thread, *before* clearing inFlight: drain()
        // returning (or unload() succeeding) must mean the old epoch
        // really is free.
        inFlightBatch.clear();

        lock.lock();
        inFlight = 0;
        std::vector<std::promise<void>> drained;
        if (pendingQueue.empty()) {
            idle.notify_all();
            drained = std::move(drainWaiters);
        }
        lock.unlock();
        for (std::promise<void>& p : drained)
            p.set_value();
    }

    // Clean stop: everything submitted has been resolved; any
    // drainedFuture() still registered is satisfied by definition.
    std::vector<std::promise<void>> drained;
    {
        MutexLock lock(mutex);
        drained = std::move(drainWaiters);
    }
    for (std::promise<void>& p : drained)
        p.set_value();
}

void
AsyncPhiEngine::drain()
{
    UniqueLock lock(mutex);
    while (!(pendingQueue.empty() && inFlight == 0))
        idle.wait(lock);
}

std::future<void>
AsyncPhiEngine::drainedFuture()
{
    std::promise<void> promise;
    std::future<void> future = promise.get_future();
    {
        MutexLock lock(mutex);
        if (!(pendingQueue.empty() && inFlight == 0)) {
            // Not idle: park the promise for the dispatcher, which
            // resolves it the moment the queue and in-flight batch
            // are both empty (or on clean stop, when everything
            // submitted has been resolved one way or the other).
            drainWaiters.push_back(std::move(promise));
            return future;
        }
    }
    promise.set_value(); // already idle — resolved before returning
    return future;
}

void
AsyncPhiEngine::shutdown()
{
    {
        MutexLock lock(mutex);
        accepting = false;
        stopping = true;
    }
    workAvailable.notify_all();
    spaceAvailable.notify_all();
    {
        MutexLock lock(joinMutex);
        if (dispatcher.joinable())
            dispatcher.join();
    }
}

size_t
AsyncPhiEngine::queueDepth() const
{
    MutexLock lock(mutex);
    return pendingQueue.size();
}

ServingStats
AsyncPhiEngine::stats() const
{
    ServingStats snapshot;
    {
        MutexLock lock(statsMutex);
        snapshot = publishedStats;
    }
    {
        MutexLock lock(mutex);
        snapshot.rejected = rejectedCount;
        snapshot.expired = resilienceStats.expired;
        snapshot.shed = resilienceStats.shed;
        for (size_t i = 0; i < ServingStats::kDeadlineMissBuckets; ++i)
            snapshot.deadlineMissHistogram[i] =
                resilienceStats.deadlineMissHistogram[i];
    }
    snapshot.watchdogRestarts =
        watchdogRestarts.load(std::memory_order_relaxed);
    return snapshot;
}

ServingStats
AsyncPhiEngine::statsFor(const std::string& name) const
{
    MutexLock lock(statsMutex);
    auto it = publishedModelStats.find(name);
    return it == publishedModelStats.end() ? ServingStats{}
                                           : it->second;
}

std::map<std::string, ServingStats>
AsyncPhiEngine::perModelStats() const
{
    MutexLock lock(statsMutex);
    return publishedModelStats;
}

void
AsyncPhiEngine::dropStatsFor(const std::string& name)
{
    // The published snapshot drops immediately; the inner engine's
    // copy is dispatcher-owned, so its erase is queued for the
    // dispatcher's next wake-up (forced right here).
    {
        MutexLock lock(statsMutex);
        publishedModelStats.erase(name);
    }
    {
        MutexLock lock(mutex);
        statsDrops.push_back(name);
    }
    workAvailable.notify_one();
}

} // namespace phi
