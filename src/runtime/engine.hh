/**
 * @file
 * The online serving runtime: a PhiEngine owns an immutable
 * CompiledModel and serves decompose+compute over batches of activation
 * matrices.
 *
 * Requests accumulate in a queue and are dispatched as one batch on the
 * shared ThreadPool (common/parallel.hh): one fixed-grain chunk per
 * request, so requests run concurrently while each request's own
 * kernels keep their deterministic chunking. Because every kernel in
 * the stack is bit-deterministic at any thread count, a batch's results
 * are identical to serving the same requests one at a time on a single
 * thread — the property the engine tests pin down at 1/2/8 threads.
 *
 * PWPs are precomputed once at compile time and shared read-only across
 * all requests and threads; serving a request never mutates the model.
 * Throughput and latency counters are surfaced as core/stats
 * ServingStats.
 */

#ifndef PHI_RUNTIME_ENGINE_HH
#define PHI_RUNTIME_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/parallel.hh"
#include "core/compiled_model.hh"
#include "core/stats.hh"

namespace phi
{

/**
 * One queued unit of serving work: a layer id plus its activations,
 * either owned (enqueue moved them in) or borrowed (the caller keeps
 * them alive until flush() returns — the zero-copy batch path).
 */
struct EngineRequest
{
    size_t layer = 0;
    BinaryMatrix owned;
    const BinaryMatrix* borrowed = nullptr;

    const BinaryMatrix&
    acts() const
    {
        return borrowed ? *borrowed : owned;
    }
};

/** Full result of one served request. */
struct EngineResponse
{
    size_t layer = 0;
    Matrix<int32_t> out;

    /** Decomposition is returned too so callers can account sparsity
     *  (stats/breakdown) without re-decomposing. */
    LayerDecomposition dec;
};

class PhiEngine
{
  public:
    /**
     * @param model  the compiled artifact to serve; the engine takes
     *               ownership and never mutates it.
     * @param exec   engine knobs; threads bounds batch concurrency and
     *               is inherited by the per-request kernels.
     * @throws EngineError (EmptyModel) for a model with no layers.
     */
    explicit PhiEngine(CompiledModel model, ExecutionConfig exec = {});

    const CompiledModel& model() const { return compiled; }
    const ExecutionConfig& execution() const { return exec; }

    /**
     * Check a request against the model without queuing it. Throws
     * EngineError (recoverable — the engine is untouched and keeps
     * serving) when the layer id is out of range, the layer was
     * compiled without weights, or the activation K does not match the
     * layer's weight rows.
     */
    void validate(size_t layer, const BinaryMatrix& acts) const;

    /**
     * Queue a request, taking ownership of the activations; returns its
     * index within the pending batch. Results come back from flush() in
     * enqueue order regardless of thread count. Throws EngineError on
     * an invalid request (see validate()); the queue is unchanged.
     */
    size_t enqueue(size_t layer, BinaryMatrix acts);

    /**
     * As enqueue(), but borrows the activations instead of copying or
     * moving them: the caller must keep @p acts alive and unchanged
     * until the next flush() returns. This is the zero-copy path the
     * batch APIs and the async frontend use for their hot loop.
     */
    size_t enqueueBorrowed(size_t layer, const BinaryMatrix& acts);

    size_t pending() const { return queue.size(); }

    /** Activations of pending request @p i (borrowed requests return
     *  the caller's matrix itself — the zero-copy guarantee). */
    const BinaryMatrix&
    pendingActs(size_t i) const
    {
        return queue.at(i).acts();
    }

    /**
     * Serve every queued request as one batch and clear the queue.
     * Deterministic: response i is bit-identical to
     * layer.compute(layer.decompose(acts_i)) run stand-alone. The
     * queue is cleared even when flush throws (allocation failure),
     * so borrowed requests never outlive the call and the engine
     * stays serviceable.
     */
    std::vector<EngineResponse> flush();

    /** Drop every queued request unserved (their borrows released). */
    void clearPending() { queue.clear(); }

    /** enqueue + flush for a single request. */
    EngineResponse serve(size_t layer, const BinaryMatrix& acts);

    /**
     * Serve a homogeneous batch against one layer. Activations are
     * borrowed for the duration of the call — never copied — so the hot
     * batch API does not clone a BinaryMatrix per request. Throws
     * EngineError (leaving the engine idle and serviceable) on a null
     * pointer or an invalid request.
     */
    std::vector<EngineResponse> serveBatch(
        size_t layer, const std::vector<const BinaryMatrix*>& batch);

    /** Cumulative throughput/latency counters. */
    const ServingStats& stats() const { return counters; }
    void resetStats() { counters = ServingStats{}; }

  private:
    /** flush() body; the wrapper owns the clear-queue-on-throw duty. */
    std::vector<EngineResponse> flushImpl();

    CompiledModel compiled;
    ExecutionConfig exec;
    std::vector<EngineRequest> queue;
    ServingStats counters;

    /** Per-flush latency scratch, reused so steady-state serving does
     *  not reallocate it on every batch. */
    std::vector<double> latencyScratch;
};

} // namespace phi

#endif // PHI_RUNTIME_ENGINE_HH
