/**
 * @file
 * The online serving runtime: a PhiEngine routes decompose+compute
 * requests through a ModelRegistry, so one engine serves any number
 * of named, versioned CompiledModels and survives hot-swaps of any
 * of them.
 *
 * Routing is handle-based: a request names its model with a
 * ModelHandle and the engine pins the model's *current* epoch at
 * enqueue time (ModelRegistry::pin). The pin fixes which version
 * serves the request — a swap() racing the batch cannot tear it —
 * and every EngineResponse reports the exact {name, version} that
 * produced it. The legacy single-model constructor still works: it
 * wraps the model in a private one-entry registry under
 * kLegacyModelName, and the handle-less overloads route there.
 *
 * Requests accumulate in a queue and are dispatched as one batch on
 * the shared ThreadPool (common/parallel.hh): one fixed-grain chunk
 * per request, so requests run concurrently while each request's own
 * kernels keep their deterministic chunking. Because every kernel in
 * the stack is bit-deterministic at any thread count, a batch's
 * results are identical to serving the same requests one at a time on
 * a single thread — the property the engine tests pin down at 1/2/8
 * threads.
 *
 * PWPs are precomputed once at compile time and shared read-only
 * across all requests and threads; serving a request never mutates a
 * model. Throughput and latency counters are surfaced as core/stats
 * ServingStats, per model (statsFor) and as a merged process view
 * (stats).
 *
 * Thread-ownership contract (see README "Static analysis &
 * concurrency contracts"): a PhiEngine holds no mutex and is NOT
 * thread-safe — it is owned by exactly one thread at a time. In the
 * async stack that thread is AsyncPhiEngine's dispatcher, which is
 * why these fields carry no GUARDED_BY annotations: single-thread
 * ownership is the documented alternative the annotation layer
 * leaves to prose. The only cross-thread traffic an engine sees is
 * the registry (internally locked) and the shared ThreadPool.
 */

#ifndef PHI_RUNTIME_ENGINE_HH
#define PHI_RUNTIME_ENGINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/parallel.hh"
#include "core/compiled_model.hh"
#include "core/stats.hh"
#include "runtime/registry.hh"

namespace phi
{

/**
 * One queued unit of serving work: the pinned model epoch that will
 * serve it, a layer id, and the activations — either owned (enqueue
 * moved them in) or borrowed (the caller keeps them alive until
 * flush() returns — the zero-copy batch path).
 */
struct EngineRequest
{
    ModelRegistry::Pinned pin;
    size_t layer = 0;
    BinaryMatrix owned;
    const BinaryMatrix* borrowed = nullptr;

    const BinaryMatrix&
    acts() const
    {
        return borrowed ? *borrowed : owned;
    }
};

/** Full result of one served request. */
struct EngineResponse
{
    /** Exactly which compiled bytes served this response: the model
     *  name plus the version pinned when the request was enqueued. */
    ModelHandle model;

    size_t layer = 0;
    Matrix<int32_t> out;

    /** Decomposition is returned too so callers can account sparsity
     *  (stats/breakdown) without re-decomposing. */
    LayerDecomposition dec;
};

class PhiEngine
{
  public:
    /** Name the legacy single-model constructor registers its model
     *  under (and the handle-less overloads route to). */
    static constexpr const char* kLegacyModelName = "default";

    /**
     * Legacy single-model engine: wraps @p model in a private
     * one-entry registry under kLegacyModelName. The handle-less
     * request overloads route to it, so pre-registry call sites keep
     * working unchanged.
     * @throws EngineError (EmptyModel) for a model with no layers.
     */
    explicit PhiEngine(CompiledModel model, ExecutionConfig exec = {});

    /**
     * Registry-routed engine: serves whatever models are (or become)
     * resident in @p registry. The registry may be empty at
     * construction and is shared — other engines and loader threads
     * may load/swap/unload concurrently while this engine serves.
     * @throws EngineError (EmptyModel) on a null registry.
     */
    explicit PhiEngine(std::shared_ptr<ModelRegistry> registry,
                       ExecutionConfig exec = {});

    /** The registry requests route through (never null). */
    const std::shared_ptr<ModelRegistry>& registry() const
    {
        return models;
    }

    /**
     * Handle the handle-less overloads route to: the legacy model for
     * single-model engines, an invalid handle for registry-routed
     * ones (route by explicit ModelHandle there).
     */
    const ModelHandle& defaultModel() const { return defaultHandle; }

    /**
     * Legacy accessor: the model the engine was constructed over
     * (construction-time version; later swaps do not change it).
     * @throws EngineError (UnknownModel) on a registry-routed engine,
     * which has no single "the model".
     */
    const CompiledModel& model() const;

    const ExecutionConfig& execution() const { return exec; }

    /**
     * Check a request against a model without queuing it. Throws
     * EngineError (recoverable — the engine is untouched and keeps
     * serving) when the layer id is out of range, the layer was
     * compiled without weights, or the activation K does not match
     * the layer's weight rows.
     */
    static void validate(const CompiledModel& model, size_t layer,
                         const BinaryMatrix& acts);

    /** validate() against the default model's current version. */
    void validate(size_t layer, const BinaryMatrix& acts) const;

    /**
     * Queue a request against the current version of @p handle's
     * model, taking ownership of the activations; returns its index
     * within the pending batch. The version is pinned here: a swap
     * landing after enqueue does not affect this request. Results
     * come back from flush() in enqueue order regardless of thread
     * count. Throws EngineError on an invalid request (UnknownModel /
     * see validate()); the queue is unchanged.
     */
    size_t enqueue(const ModelHandle& handle, size_t layer,
                   BinaryMatrix acts);

    /** enqueue() against the default model. */
    size_t enqueue(size_t layer, BinaryMatrix acts);

    /**
     * As enqueue(), but borrows the activations instead of copying or
     * moving them: the caller must keep @p acts alive and unchanged
     * until the next flush() returns. This is the zero-copy path the
     * batch APIs and the async frontend use for their hot loop.
     */
    size_t enqueueBorrowed(const ModelHandle& handle, size_t layer,
                           const BinaryMatrix& acts);

    /** enqueueBorrowed() against the default model. */
    size_t enqueueBorrowed(size_t layer, const BinaryMatrix& acts);

    /**
     * Zero-copy enqueue of an already-pinned-and-validated request —
     * the async frontend resolves pins on the submitting thread (so a
     * swap between submit and dispatch cannot move the request to a
     * different version than the one validated) and hands them to the
     * inner engine through here.
     */
    size_t enqueuePinned(ModelRegistry::Pinned pin, size_t layer,
                         const BinaryMatrix& acts);

    size_t pending() const { return queue.size(); }

    /** Activations of pending request @p i (borrowed requests return
     *  the caller's matrix itself — the zero-copy guarantee). */
    const BinaryMatrix&
    pendingActs(size_t i) const
    {
        return queue.at(i).acts();
    }

    /**
     * Serve every queued request as one batch and clear the queue.
     * Deterministic: response i is bit-identical to
     * layer.compute(layer.decompose(acts_i)) run stand-alone against
     * the pinned version. The queue is cleared even when flush throws
     * (allocation failure), so borrowed requests never outlive the
     * call and the engine stays serviceable.
     */
    std::vector<EngineResponse> flush();

    /** Drop every queued request unserved (their borrows and model
     *  pins released). */
    void clearPending() { queue.clear(); }

    /** enqueue + flush for a single request. */
    EngineResponse serve(const ModelHandle& handle, size_t layer,
                         const BinaryMatrix& acts);

    /** serve() against the default model. */
    EngineResponse serve(size_t layer, const BinaryMatrix& acts);

    /**
     * Serve a homogeneous batch against one layer of one model. All
     * requests pin the same epoch (resolved once, up front), and
     * activations are borrowed for the duration of the call — never
     * copied. Throws EngineError (leaving the engine idle and
     * serviceable) on a null pointer or an invalid request.
     */
    std::vector<EngineResponse> serveBatch(
        const ModelHandle& handle, size_t layer,
        const std::vector<const BinaryMatrix*>& batch);

    /** serveBatch() against the default model. */
    std::vector<EngineResponse> serveBatch(
        size_t layer, const std::vector<const BinaryMatrix*>& batch);

    /** Merged process view of the throughput/latency counters, across
     *  every model this engine served. */
    const ServingStats& stats() const { return counters; }

    /**
     * Counters of one model (by registry name, all versions merged).
     * Unknown or not-yet-served names return zeroed stats. requests /
     * rows / latencies are exact per model; batches and the flush
     * window count every flush that contained at least one of the
     * model's requests, so busyFraction() of models co-batched with
     * others overlaps by design (the process view never
     * double-counts).
     */
    ServingStats statsFor(const std::string& name) const;

    /** Per-model counters for every model served so far, keyed by
     *  registry name. */
    std::map<std::string, ServingStats> perModelStats() const
    {
        return modelCounters;
    }

    /**
     * Forget one model's per-model counters (the merged process view
     * is untouched). Serving processes that cycle many ephemeral
     * model names call this after unload() so retired names do not
     * accrete latency rings forever. Same thread-affinity contract as
     * the rest of PhiEngine (not thread-safe); the async frontend
     * routes its own dropStatsFor() through the dispatcher.
     */
    void dropStatsFor(const std::string& name)
    {
        modelCounters.erase(name);
    }

    void
    resetStats()
    {
        counters = ServingStats{};
        modelCounters.clear();
    }

  private:
    /** flush() body; the wrapper owns the clear-queue-on-throw duty. */
    std::vector<EngineResponse> flushImpl();

    /** Pin + validate the current version of @p handle's model. */
    ModelRegistry::Pinned pinAndValidate(const ModelHandle& handle,
                                         size_t layer,
                                         const BinaryMatrix& acts) const;

    /** The default handle, or throw UnknownModel if there is none. */
    const ModelHandle& requireDefault() const;

    std::shared_ptr<ModelRegistry> models;

    /**
     * The legacy constructor's model, pinned for the engine's
     * lifetime: keeps model() valid and the artifact resident even
     * if a caller swaps the registry's "default" entry underneath.
     */
    ModelRegistry::Pinned legacyPin;
    ModelHandle defaultHandle;

    ExecutionConfig exec;
    std::vector<EngineRequest> queue;
    ServingStats counters;
    std::map<std::string, ServingStats> modelCounters;

    /** Per-flush latency scratch, reused so steady-state serving does
     *  not reallocate it on every batch. */
    std::vector<double> latencyScratch;
};

} // namespace phi

#endif // PHI_RUNTIME_ENGINE_HH
