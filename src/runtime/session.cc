#include "runtime/session.hh"

#include <algorithm>

#include "common/failpoint.hh"
#include "common/logging.hh"

namespace phi
{

namespace
{

/** Copy one row of @p src into row @p dstRow of @p dst (same cols). */
void
copyRow(const BinaryMatrix& src, size_t srcRow, BinaryMatrix& dst,
        size_t dstRow)
{
    const size_t cols = src.cols();
    for (size_t c = 0; c < cols; c += 64) {
        const int len = static_cast<int>(std::min<size_t>(64, cols - c));
        dst.deposit(dstRow, c, len, src.extract(srcRow, c, len));
    }
}

std::exception_ptr
makeError(EngineError::Code code, const std::string& what)
{
    return std::make_exception_ptr(EngineError(code, what));
}

double
seconds(std::chrono::steady_clock::duration d)
{
    return std::chrono::duration<double>(d).count();
}

} // namespace

SessionManager::SessionManager(AsyncPhiEngine& eng, SessionConfig config)
    : engine(eng), cfg(config)
{
    phi_assert(cfg.maxSessions > 0, "maxSessions must be positive");
    MutexLock lock(joinMutex);
    pump = std::thread([this] { pumpLoop(); });
}

SessionManager::~SessionManager()
{
    shutdown();
}

std::unique_ptr<SessionManager::Session>
SessionManager::makeSession(ModelRegistry::Pinned pin,
                            std::vector<LifParams> params)
{
    phi_assert(pin.model != nullptr, "makeSession over an empty pin");
    const auto& layers = pin->layers();
    // The registry refuses layerless models, so layers is non-empty.
    for (size_t l = 0; l < layers.size(); ++l) {
        if (!layers[l].hasWeights())
            throw EngineError(EngineError::Code::MissingWeights,
                              "session model " + pin.handle.str() +
                                  " layer '" + layers[l].name() +
                                  "' has no weights bound; a temporal "
                                  "forward cannot cross it");
        if (l > 0 && layers[l].weights().rows() !=
                         layers[l - 1].weights().cols())
            throw EngineError(
                EngineError::Code::ShapeMismatch,
                "session model " + pin.handle.str() + " layer '" +
                    layers[l].name() + "' expects " +
                    std::to_string(layers[l].weights().rows()) +
                    " inputs but the previous layer produces " +
                    std::to_string(layers[l - 1].weights().cols()) +
                    " spikes; the layer widths do not chain");
    }
    if (!params.empty() && params.size() != layers.size())
        throw EngineError(EngineError::Code::ShapeMismatch,
                          "got " + std::to_string(params.size()) +
                              " LifParams for a model with " +
                              std::to_string(layers.size()) + " layers");
    // LifPopulation asserts on invalid params (internal-invariant
    // path); session params arrive from clients, so reject them as a
    // request error first.
    for (size_t l = 0; l < params.size(); ++l) {
        const LifParams& p = params[l];
        if (!(p.threshold > 0) || !(p.leak >= 0.0f && p.leak <= 1.0f) ||
            p.refractory < 0)
            throw EngineError(EngineError::Code::ShapeMismatch,
                              "invalid LifParams for layer " +
                                  std::to_string(l) +
                                  " (need threshold > 0, leak in "
                                  "[0, 1], refractory >= 0)");
    }

    auto s = std::make_unique<Session>();
    for (size_t l = 0; l < layers.size(); ++l)
        s->layers.emplace_back(layers[l].weights().cols(),
                               params.empty() ? LifParams{} : params[l]);
    s->pin = std::move(pin);
    s->lastActive = Clock::now();
    return s;
}

uint64_t
SessionManager::open(const std::string& model,
                     std::vector<LifParams> params)
{
    // Pin + validate before touching shared state, so a rejected open
    // leaves the manager untouched.
    auto session =
        makeSession(engine.registry()->pin(model), std::move(params));

    MutexLock lock(mutex);
    if (stopping)
        throw EngineError(EngineError::Code::Stopped,
                          "session manager is shut down");
    if (sessions.size() >= cfg.maxSessions) {
        counters.sessionsRejected += 1;
        throw EngineError(EngineError::Code::TooManySessions,
                          "session cap of " +
                              std::to_string(cfg.maxSessions) +
                              " reached");
    }
    const uint64_t id = nextId++;
    sessions.emplace(id, std::move(session));
    counters.sessionsOpened += 1;
    return id;
}

std::future<SessionStepResult>
SessionManager::step(uint64_t sessionId, BinaryMatrix frames)
{
    std::promise<SessionStepResult> promise;
    std::future<SessionStepResult> future = promise.get_future();
    try {
        MutexLock lock(mutex);
        if (stopping)
            throw EngineError(EngineError::Code::Stopped,
                              "session manager is shut down");
        Session& s = findSession(sessionId);
        const auto& layers = s.pin->layers();
        const size_t k0 = layers.front().weights().rows();
        if (frames.rows() == 0)
            throw EngineError(EngineError::Code::ShapeMismatch,
                              "step with zero frames");
        if (frames.cols() != k0)
            throw EngineError(EngineError::Code::ShapeMismatch,
                              "frame width " +
                                  std::to_string(frames.cols()) +
                                  " != layer-0 input width " +
                                  std::to_string(k0) + " of model " +
                                  s.pin.handle.str());
        StepJob job;
        job.spikes = BinaryMatrix(frames.rows(),
                                  layers.back().weights().cols());
        job.frames = std::move(frames);
        job.promise = std::move(promise);
        s.jobs.push_back(std::move(job));
        s.lastActive = Clock::now();
        workAvailable.notify_all();
    } catch (...) {
        promise.set_exception(std::current_exception());
    }
    return future;
}

uint64_t
SessionManager::close(uint64_t sessionId)
{
    std::deque<StepJob> orphans;
    uint64_t served = 0;
    {
        UniqueLock lock(mutex);
        for (;;) {
            // Re-looked-up each wake: the lock is dropped inside
            // wait(), so the session may complete a round — or be
            // swept by the TTL — in between.
            Session& s = findSession(sessionId);
            if (!s.busy) {
                served = s.steps;
                orphans = std::move(s.jobs);
                sessions.erase(sessionId);
                counters.sessionsClosed += 1;
                break;
            }
            roundComplete.wait(lock);
        }
    }
    for (auto& job : orphans)
        job.promise.set_exception(
            makeError(EngineError::Code::Stopped,
                      "session closed with steps still queued"));
    return served;
}

SessionInfo
SessionManager::info(uint64_t sessionId) const
{
    MutexLock lock(mutex);
    const Session& s = findSession(sessionId);
    return {sessionId, s.pin.handle, s.layers.size(), s.steps};
}

std::vector<SessionInfo>
SessionManager::list() const
{
    MutexLock lock(mutex);
    std::vector<SessionInfo> out;
    out.reserve(sessions.size());
    for (const auto& [id, s] : sessions)
        out.push_back({id, s->pin.handle, s->layers.size(), s->steps});
    return out;
}

size_t
SessionManager::size() const
{
    MutexLock lock(mutex);
    return sessions.size();
}

size_t
SessionManager::sweepIdle()
{
    MutexLock lock(mutex);
    return sweepIdleLocked(Clock::now());
}

size_t
SessionManager::sweepIdleLocked(Clock::time_point now)
{
    if (cfg.idleTtlMillis == 0)
        return 0;
    const auto ttl = std::chrono::milliseconds(cfg.idleTtlMillis);
    size_t evicted = 0;
    for (auto it = sessions.begin(); it != sessions.end();) {
        Session& s = *it->second;
        // Never evict a session with work queued or in flight — idle
        // means the *client* went away, not that we are slow.
        if (!s.busy && s.jobs.empty() && now - s.lastActive >= ttl) {
            rememberTombstone(it->first);
            it = sessions.erase(it);
            counters.sessionsExpired += 1;
            ++evicted;
        } else {
            ++it;
        }
    }
    return evicted;
}

void
SessionManager::rememberTombstone(uint64_t id)
{
    tombstoneOrder.push_back(id);
    tombstones.insert(id);
    while (tombstoneOrder.size() > cfg.tombstoneCapacity) {
        tombstones.erase(tombstoneOrder.front());
        tombstoneOrder.pop_front();
    }
}

SessionManager::Session&
SessionManager::findSession(uint64_t id)
{
    auto it = sessions.find(id);
    if (it != sessions.end())
        return *it->second;
    if (tombstones.count(id) > 0)
        throw EngineError(EngineError::Code::SessionExpired,
                          "session " + std::to_string(id) +
                              " was evicted by the idle TTL; its state "
                              "is gone — reopen the stream");
    throw EngineError(EngineError::Code::SessionNotFound,
                      "no session with id " + std::to_string(id));
}

const SessionManager::Session&
SessionManager::findSession(uint64_t id) const
{
    return const_cast<SessionManager*>(this)->findSession(id);
}

void
SessionManager::drain()
{
    UniqueLock lock(mutex);
    for (;;) {
        bool idle = true;
        for (const auto& [id, s] : sessions)
            idle = idle && !s->busy && s->jobs.empty();
        if (idle)
            return;
        roundComplete.wait(lock);
    }
}

io::SessionSnapshot
SessionManager::snapshot()
{
    UniqueLock lock(mutex);
    // Quiesce to a clean frame boundary first: a snapshot must never
    // capture a session halfway through a frame's layer stack.
    for (;;) {
        bool idle = true;
        for (const auto& [id, s] : sessions)
            idle = idle && !s->busy && s->jobs.empty();
        if (idle)
            break;
        roundComplete.wait(lock);
    }
    io::SessionSnapshot snap;
    snap.nextSessionId = nextId;
    for (const auto& [id, sp] : sessions) {
        const Session& s = *sp;
        io::SessionStateRecord rec;
        rec.id = id;
        rec.model = s.pin.handle.name;
        rec.version = s.pin.handle.version;
        rec.steps = s.steps;
        rec.layerParams.reserve(s.layers.size());
        rec.layerState.reserve(s.layers.size());
        for (const LifPopulation& pop : s.layers) {
            rec.layerParams.push_back(pop.params());
            rec.layerState.push_back(pop.saveState());
        }
        snap.sessions.push_back(std::move(rec));
    }
    return snap;
}

size_t
SessionManager::restore(const io::SessionSnapshot& snap)
{
    // Build and validate every session before touching shared state:
    // restore is all-or-nothing, so a half-corrupt snapshot cannot
    // leave half a fleet behind.
    std::vector<std::pair<uint64_t, std::unique_ptr<Session>>> built;
    built.reserve(snap.sessions.size());
    for (const auto& rec : snap.sessions) {
        auto s = makeSession(engine.registry()->pin(rec.model),
                             rec.layerParams);
        if (rec.layerState.size() != s->layers.size())
            throw EngineError(
                EngineError::Code::ShapeMismatch,
                "snapshot session " + std::to_string(rec.id) + " has " +
                    std::to_string(rec.layerState.size()) +
                    " layers of state; resident model '" + rec.model +
                    "' has " + std::to_string(s->layers.size()));
        for (size_t l = 0; l < s->layers.size(); ++l) {
            const LifState& st = rec.layerState[l];
            if (st.membrane.size() != s->layers[l].size())
                throw EngineError(
                    EngineError::Code::ShapeMismatch,
                    "snapshot session " + std::to_string(rec.id) +
                        " layer " + std::to_string(l) + " has " +
                        std::to_string(st.membrane.size()) +
                        " neurons of state; resident model '" +
                        rec.model + "' has " +
                        std::to_string(s->layers[l].size()));
            s->layers[l].loadState(st);
        }
        s->steps = rec.steps;
        built.emplace_back(rec.id, std::move(s));
    }

    MutexLock lock(mutex);
    if (stopping)
        throw EngineError(EngineError::Code::Stopped,
                          "session manager is shut down");
    if (sessions.size() + built.size() > cfg.maxSessions) {
        counters.sessionsRejected += built.size();
        throw EngineError(EngineError::Code::TooManySessions,
                          "restoring " + std::to_string(built.size()) +
                              " sessions would exceed the cap of " +
                              std::to_string(cfg.maxSessions));
    }
    for (const auto& [id, s] : built)
        if (sessions.count(id) > 0)
            throw EngineError(EngineError::Code::Internal,
                              "restored session id " +
                                  std::to_string(id) +
                                  " collides with an open session");
    for (auto& [id, s] : built) {
        sessions.emplace(id, std::move(s));
        counters.sessionsOpened += 1;
        if (id >= nextId)
            nextId = id + 1;
    }
    if (snap.nextSessionId > nextId)
        nextId = snap.nextSessionId;
    return built.size();
}

ServingStats
SessionManager::stats() const
{
    MutexLock lock(mutex);
    return counters;
}

void
SessionManager::shutdown()
{
    {
        MutexLock lock(mutex);
        stopping = true;
        workAvailable.notify_all();
    }
    {
        MutexLock lock(joinMutex);
        if (pump.joinable())
            pump.join();
    }
    // The pump is gone, so nothing is busy; fail what it left queued.
    std::vector<std::promise<SessionStepResult>> orphans;
    {
        MutexLock lock(mutex);
        for (auto& [id, s] : sessions)
            while (!s->jobs.empty()) {
                orphans.push_back(std::move(s->jobs.front().promise));
                s->jobs.pop_front();
            }
    }
    for (auto& p : orphans)
        p.set_exception(
            makeError(EngineError::Code::Stopped,
                      "session manager shut down with steps queued"));
}

void
SessionManager::serveGroup(std::vector<Participant>& group)
{
    // Every participant is pinned to the same epoch; one frame each,
    // stacked into one m x K submit per layer. Runs without the
    // manager lock — the sessions are marked busy, so their state is
    // pump-owned for the duration.
    Session& lead = *group.front().session;
    const CompiledModel& model = *lead.pin;
    const auto& layers = model.layers();
    const size_t m = group.size();

    // Rollback point: a failed frame must leave every participant's
    // LIF state exactly at the last completed frame. This is also the
    // save/load path's steady exercise — the same vectors the .phis
    // snapshot serialises.
    std::vector<std::vector<LifState>> saved(m);
    for (size_t i = 0; i < m; ++i) {
        const Session& s = *group[i].session;
        saved[i].reserve(s.layers.size());
        for (const LifPopulation& pop : s.layers)
            saved[i].push_back(pop.saveState());
    }

    try {
        BinaryMatrix acts(m, layers.front().weights().rows());
        for (size_t i = 0; i < m; ++i) {
            const StepJob& job = group[i].session->jobs.front();
            copyRow(job.frames, job.next, acts, i);
        }
        for (size_t l = 0; l < layers.size(); ++l) {
            EngineResponse resp =
                engine
                    .submitPinned(lead.pin, l, std::move(acts))
                    .get();
            BinaryMatrix next(m, layers[l].weights().cols());
            for (size_t i = 0; i < m; ++i)
                group[i].session->layers[l].stepInto(resp.out.rowPtr(i),
                                                     next, i);
            acts = std::move(next);
        }
        for (size_t i = 0; i < m; ++i) {
            Session& s = *group[i].session;
            StepJob& job = s.jobs.front();
            copyRow(acts, i, job.spikes, job.next);
            job.next += 1;
            s.steps += 1;
        }
    } catch (...) {
        for (size_t i = 0; i < m; ++i) {
            Session& s = *group[i].session;
            for (size_t l = 0; l < s.layers.size(); ++l)
                s.layers[l].loadState(saved[i][l]);
            group[i].error = std::current_exception();
        }
    }
}

void
SessionManager::pumpLoop()
{
    UniqueLock lock(mutex);
    for (;;) {
        // Wait for work; with a TTL configured, wake at TTL period to
        // sweep even when no traffic arrives.
        for (;;) {
            if (stopping)
                return;
            bool haveWork = false;
            for (const auto& [id, s] : sessions)
                haveWork = haveWork || (!s->busy && !s->jobs.empty());
            if (haveWork)
                break;
            if (cfg.idleTtlMillis > 0) {
                workAvailable.wait_for(
                    lock, std::chrono::milliseconds(cfg.idleTtlMillis));
                sweepIdleLocked(Clock::now());
            } else {
                workAvailable.wait(lock);
            }
        }
        sweepIdleLocked(Clock::now());

        // Select the round: at most one frame per session (fair
        // interleave), grouped by pinned epoch so co-resident streams
        // share engine submits.
        std::vector<Participant> round;
        std::vector<std::promise<SessionStepResult>> injected;
        for (auto& [id, s] : sessions) {
            if (s->busy || s->jobs.empty())
                continue;
            bool fire = false;
            PHI_FAILPOINT(failpoint::sites::kSessionStep, fire = true);
            if (fire) {
                // Injected step failure: fail exactly this session's
                // step before any of its state moves; neighbours in
                // the round are untouched.
                injected.push_back(std::move(s->jobs.front().promise));
                s->jobs.pop_front();
                s->lastActive = Clock::now();
                continue;
            }
            if (s->jobs.front().next == 0)
                s->jobs.front().firstStep = s->steps;
            s->busy = true;
            round.push_back({id, s.get(), nullptr});
        }

        std::map<const CompiledModel*, std::vector<Participant>> groups;
        for (const Participant& p : round)
            groups[p.session->pin.model.get()].push_back(p);

        lock.unlock();
        for (auto& p : injected)
            p.set_exception(makeError(
                EngineError::Code::Internal,
                "injected session step failure (failpoint "
                "'session.step'); session state is unchanged — retry "
                "is safe"));
        const Clock::time_point begin = Clock::now();
        for (auto& [key, g] : groups)
            serveGroup(g);
        const double frameSeconds = seconds(Clock::now() - begin);

        // Finalize the bookkeeping under the lock BEFORE resolving any
        // promise: a client that observes a resolved step future must
        // also observe the counters and queue state it implies. The
        // finished jobs are moved out whole, so the promises (and the
        // spike rasters set_value moves) are resolved lock-free after.
        struct Resolution
        {
            std::promise<SessionStepResult> promise;
            std::exception_ptr error; // null: deliver `value`
            SessionStepResult value;
        };
        std::vector<Resolution> done;
        lock.lock();
        const Clock::time_point now = Clock::now();
        for (auto& [key, g] : groups) {
            for (Participant& p : g) {
                Session& s = *p.session;
                StepJob& job = s.jobs.front();
                if (p.error || job.next == job.frames.rows()) {
                    Resolution r;
                    r.promise = std::move(job.promise);
                    r.error = p.error;
                    if (!p.error)
                        r.value = {p.id, s.pin.handle, job.firstStep,
                                   std::move(job.spikes)};
                    done.push_back(std::move(r));
                    s.jobs.pop_front();
                }
                if (!p.error) {
                    counters.sessionSteps += 1;
                    counters.recordLatency(frameSeconds);
                }
                s.busy = false;
                s.lastActive = now;
            }
        }
        roundComplete.notify_all();
        lock.unlock();
        for (Resolution& r : done) {
            if (r.error)
                r.promise.set_exception(r.error);
            else
                r.promise.set_value(std::move(r.value));
        }
        lock.lock();
    }
}

} // namespace phi
