#include "common/logging.hh"

#include <stdexcept>

namespace phi
{
namespace detail
{

namespace
{
/**
 * Tests may flip this to make panic/fatal throw instead of aborting so
 * death paths can be exercised without forking.
 */
bool throwOnError = false;
} // namespace

void
setThrowOnError(bool enable)
{
    throwOnError = enable;
}

[[noreturn]] void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    if (throwOnError)
        throw std::logic_error("panic: " + msg);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ":" << line
              << std::endl;
    if (throwOnError)
        throw std::runtime_error("fatal: " + msg);
    std::exit(1);
}

void
warnImpl(const std::string& msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string& msg)
{
    std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace phi
