#include "common/failpoint.hh"

#include <atomic>
#include <map>

#include "common/rng.hh"
#include "common/sync.hh"

namespace phi::failpoint
{

namespace
{

struct SiteState
{
    bool armed = false;
    Policy policy;
    Rng rng{1};
    uint64_t evaluated = 0; // since last enable()/reset()
    uint64_t fired = 0;
};

Mutex gMutex;
std::map<std::string, SiteState>& // NOLINT: intentional leak, avoids
registry() REQUIRES(gMutex)       // destruction-order races at exit
{
    static auto* map = new std::map<std::string, SiteState>();
    return *map;
}

/** Armed-site count, checked lock-free on the hot path: while zero —
 *  the steady state of a failpoint build running normal traffic —
 *  shouldFire() costs one relaxed load and no lock. */
std::atomic<uint64_t> gArmedCount{0};

} // namespace

void
enable(const std::string& site, Policy policy)
{
    MutexLock lock(gMutex);
    SiteState& s = registry()[site];
    if (!s.armed)
        gArmedCount.fetch_add(1, std::memory_order_relaxed);
    s.armed = true;
    s.policy = policy;
    s.rng = Rng(policy.seed);
    s.evaluated = 0;
    s.fired = 0;
}

void
disable(const std::string& site)
{
    MutexLock lock(gMutex);
    auto it = registry().find(site);
    if (it == registry().end() || !it->second.armed)
        return;
    it->second.armed = false;
    gArmedCount.fetch_sub(1, std::memory_order_relaxed);
}

void
reset()
{
    MutexLock lock(gMutex);
    for (auto& [name, s] : registry())
        if (s.armed)
            gArmedCount.fetch_sub(1, std::memory_order_relaxed);
    registry().clear();
}

bool
shouldFire(const char* site)
{
    if (gArmedCount.load(std::memory_order_relaxed) == 0)
        return false;
    MutexLock lock(gMutex);
    auto it = registry().find(site);
    if (it == registry().end() || !it->second.armed)
        return false;
    SiteState& s = it->second;
    ++s.evaluated;
    bool fire = false;
    switch (s.policy.kind) {
    case Policy::Kind::Always:
        fire = true;
        break;
    case Policy::Kind::Once:
        fire = s.fired == 0;
        break;
    case Policy::Kind::EveryNth:
        fire = s.evaluated % s.policy.n == 0;
        break;
    case Policy::Kind::Probability:
        fire = s.rng.bernoulli(s.policy.p);
        break;
    }
    if (fire)
        ++s.fired;
    return fire;
}

uint64_t
evaluations(const std::string& site)
{
    MutexLock lock(gMutex);
    auto it = registry().find(site);
    return it == registry().end() ? 0 : it->second.evaluated;
}

uint64_t
fires(const std::string& site)
{
    MutexLock lock(gMutex);
    auto it = registry().find(site);
    return it == registry().end() ? 0 : it->second.fired;
}

bool
compiledIn()
{
#ifdef PHI_FAILPOINTS
    return true;
#else
    return false;
#endif
}

std::vector<std::string>
allSites()
{
    return {sites::kIoRead,   sites::kIoWrite, sites::kPoolTask,
            sites::kDispatcherLoop, sites::kNetAccept, sites::kNetRead,
            sites::kNetWrite, sites::kSessionStep};
}

} // namespace phi::failpoint
