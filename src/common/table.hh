/**
 * @file
 * Console table and CSV emission used by the bench harness to print the
 * rows and series the paper's tables/figures report.
 */

#ifndef PHI_COMMON_TABLE_HH
#define PHI_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace phi
{

/**
 * A simple left-aligned text table with a header row.
 *
 * Cells are strings; numeric helpers format with fixed precision so the
 * bench output is stable and diffable across runs.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a fully-formed row (must match the header width). */
    void addRow(std::vector<std::string> row);

    /** Render with aligned columns to an ostream. */
    void print(std::ostream& os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream& os) const;

    /** Write CSV to a file path, creating/truncating it. */
    void writeCsv(const std::string& path) const;

    size_t numRows() const { return rows.size(); }
    size_t numCols() const { return header.size(); }

    /** Format a double with the given number of decimals. */
    static std::string fmt(double v, int decimals = 2);

    /** Format as a multiplier, e.g. "3.45x". */
    static std::string fmtX(double v, int decimals = 2);

    /** Format as a percentage, e.g. "96.80%". */
    static std::string fmtPct(double fraction, int decimals = 2);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace phi

#endif // PHI_COMMON_TABLE_HH
