#include "common/table.hh"

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/logging.hh"

namespace phi
{

Table::Table(std::vector<std::string> hdr)
    : header(std::move(hdr))
{
    phi_assert(!header.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    phi_assert(row.size() == header.size(),
               "row width ", row.size(), " != header width ",
               header.size());
    rows.push_back(std::move(row));
}

void
Table::print(std::ostream& os) const
{
    std::vector<size_t> width(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto& row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << row[c];
        }
        os << "\n";
    };

    emit_row(header);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + 2;
    os << std::string(total, '-') << "\n";
    for (const auto& row : rows)
        emit_row(row);
    os.flush();
}

void
Table::printCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit(header);
    for (const auto& row : rows)
        emit(row);
}

void
Table::writeCsv(const std::string& path) const
{
    std::ofstream f(path);
    if (!f)
        phi_fatal("cannot open '", path, "' for writing");
    printCsv(f);
}

std::string
Table::fmt(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

std::string
Table::fmtX(double v, int decimals)
{
    return fmt(v, decimals) + "x";
}

std::string
Table::fmtPct(double fraction, int decimals)
{
    return fmt(fraction * 100.0, decimals) + "%";
}

} // namespace phi
