/**
 * @file
 * Compiler-checked synchronisation primitives: drop-in wrappers around
 * std::mutex / std::condition_variable carrying Clang Thread Safety
 * Analysis attributes, plus the annotation macro layer the rest of the
 * runtime uses to declare its lock-protection contracts.
 *
 * The contract this header enables: every shared field names the mutex
 * that guards it (GUARDED_BY), every function that must be called with
 * a lock held says so (REQUIRES), and the documented lock hierarchy is
 * expressed as EXCLUDES clauses — so a missed lock_guard, an access
 * from the wrong side of a mutex, or a future lock-order inversion is
 * a *compile error* under clang (-Werror=thread-safety), not a
 * heisenbug the TSan leg has to get lucky to catch.
 *
 * Under any non-clang compiler every macro expands to nothing and the
 * wrappers are exactly std::mutex / std::condition_variable /
 * std::lock_guard / std::unique_lock with zero added state or runtime
 * cost, so GCC builds are unchanged. The negative-compile CI check
 * (tests/negative_thread_safety.cc) proves the clang leg is actually
 * armed: a build where these macros silently expanded to nothing
 * cannot pass it.
 *
 * Lock hierarchy conventions (see README "Static analysis &
 * concurrency contracts" for the per-subsystem table):
 *  - Mutexes are leaf-level unless explicitly documented: holding two
 *    phi mutexes at once is the exception, and functions that must not
 *    be entered with a given mutex held declare EXCLUDES(mu).
 *  - Fields owned by exactly one thread (dispatcher-only, net-thread-
 *    only) are *documented* as such rather than locked; accesses that
 *    are deliberately outside the analysis (e.g. a CondVar wait that
 *    releases and reacquires internally) use NO_THREAD_SAFETY_ANALYSIS
 *    with a justification comment.
 */

#ifndef PHI_COMMON_SYNC_HH
#define PHI_COMMON_SYNC_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---- Clang Thread Safety Analysis attribute macros -------------------
// The canonical set from the clang documentation, expanding to nothing
// on non-clang compilers. Kept unprefixed (GUARDED_BY, REQUIRES, ...)
// to match the idiom the analysis documentation and most annotated
// codebases use; #ifndef guards keep us composable with any other
// header defining the same layer.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define PHI_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef PHI_THREAD_ANNOTATION
#define PHI_THREAD_ANNOTATION(x) // no-op outside clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) PHI_THREAD_ANNOTATION(capability(x))
#endif

#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY PHI_THREAD_ANNOTATION(scoped_lockable)
#endif

/** Field access requires the named mutex to be held. */
#ifndef GUARDED_BY
#define GUARDED_BY(x) PHI_THREAD_ANNOTATION(guarded_by(x))
#endif

/** Pointee access requires the named mutex to be held. */
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) PHI_THREAD_ANNOTATION(pt_guarded_by(x))
#endif

/** Declared lock-acquisition order between two mutexes. */
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) \
    PHI_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#endif

#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) \
    PHI_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#endif

/** Caller must hold the named mutex(es) exclusively. */
#ifndef REQUIRES
#define REQUIRES(...) \
    PHI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#endif

#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
    PHI_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#endif

/** Function acquires the mutex(es) and holds them on return. */
#ifndef ACQUIRE
#define ACQUIRE(...) \
    PHI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#endif

/** Function releases the mutex(es) the caller held. */
#ifndef RELEASE
#define RELEASE(...) \
    PHI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#endif

/** Function acquires the mutex iff it returns the given value. */
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
    PHI_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#endif

/** Caller must NOT hold the named mutex(es) — the deadlock fence. */
#ifndef EXCLUDES
#define EXCLUDES(...) PHI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#endif

/** Function returns a reference to the named mutex. */
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) PHI_THREAD_ANNOTATION(lock_returned(x))
#endif

/**
 * Opt this function out of the analysis. Every use must carry a
 * justification comment; the README enumerates the accepted reasons.
 */
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
    PHI_THREAD_ANNOTATION(no_thread_safety_analysis)
#endif

namespace phi
{

/**
 * std::mutex with a capability annotation: fields declared
 * GUARDED_BY(oneOfThese) may only be touched while it is held, and
 * clang proves it per translation unit. Same size, same codegen.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void
    lock() ACQUIRE()
    {
        mu.lock();
    }

    void
    unlock() RELEASE()
    {
        mu.unlock();
    }

    bool
    try_lock() TRY_ACQUIRE(true)
    {
        return mu.try_lock();
    }

  private:
    friend class CondVar;
    friend class UniqueLock;
    std::mutex mu;
};

/**
 * std::lock_guard over a phi::Mutex: acquires for exactly one scope.
 * The SCOPED_CAPABILITY annotation lets clang treat construction /
 * destruction as acquire/release of the wrapped mutex.
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& m) ACQUIRE(m) : mu(m) { mu.lock(); }

    ~MutexLock() RELEASE() { mu.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& mu;
};

/**
 * std::unique_lock over a phi::Mutex: scoped like MutexLock but
 * relockable (lock()/unlock() mid-scope) and the handle CondVar::wait
 * parks on. Internally *is* a std::unique_lock so waits hit the native
 * condition-variable fast path.
 */
class SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex& m) ACQUIRE(m) : lk(m.mu) {}

    /**
     * Adopts a mutex the caller already locked (e.g. via a successful
     * try_lock()): no acquisition happens here, the scope just takes
     * over the obligation to release.
     */
    UniqueLock(Mutex& m, std::adopt_lock_t) REQUIRES(m)
        : lk(m.mu, std::adopt_lock)
    {
    }

    /** Releases the mutex iff still held (std::unique_lock rules). */
    ~UniqueLock() RELEASE() {}

    UniqueLock(const UniqueLock&) = delete;
    UniqueLock& operator=(const UniqueLock&) = delete;

    void
    lock() ACQUIRE()
    {
        lk.lock();
    }

    void
    unlock() RELEASE()
    {
        lk.unlock();
    }

    bool owns_lock() const { return lk.owns_lock(); }

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lk;
};

/**
 * std::condition_variable over phi::UniqueLock. Waits release and
 * reacquire the lock internally — invisible to the static analysis,
 * which (correctly) sees the mutex held across the call from the
 * caller's perspective. Semantics are exactly the std primitive's:
 * spurious wakeups happen, so use the predicate overloads.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void notify_one() { cv.notify_one(); }
    void notify_all() { cv.notify_all(); }

    void
    wait(UniqueLock& lock)
    {
        cv.wait(lock.lk);
    }

    template <typename Pred>
    void
    wait(UniqueLock& lock, Pred pred)
    {
        cv.wait(lock.lk, std::move(pred));
    }

    template <typename Clock, typename Duration>
    std::cv_status
    wait_until(UniqueLock& lock,
               const std::chrono::time_point<Clock, Duration>& at)
    {
        return cv.wait_until(lock.lk, at);
    }

    template <typename Clock, typename Duration, typename Pred>
    bool
    wait_until(UniqueLock& lock,
               const std::chrono::time_point<Clock, Duration>& at,
               Pred pred)
    {
        return cv.wait_until(lock.lk, at, std::move(pred));
    }

    template <typename Rep, typename Period>
    std::cv_status
    wait_for(UniqueLock& lock,
             const std::chrono::duration<Rep, Period>& d)
    {
        return cv.wait_for(lock.lk, d);
    }

    template <typename Rep, typename Period, typename Pred>
    bool
    wait_for(UniqueLock& lock,
             const std::chrono::duration<Rep, Period>& d, Pred pred)
    {
        return cv.wait_for(lock.lk, d, std::move(pred));
    }

  private:
    std::condition_variable cv;
};

} // namespace phi

#endif // PHI_COMMON_SYNC_HH
