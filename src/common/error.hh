/**
 * @file
 * Recoverable serving-path errors.
 *
 * The runtime draws a hard line between two failure classes:
 *
 * - EngineError (here): a *request-level* problem — wrong layer id,
 *   mismatched activation shape, a full queue, a stopped engine. These
 *   are caused by callers and traffic, they are expected in a serving
 *   process, and they must never take the process down. The
 *   synchronous PhiEngine throws them; the AsyncPhiEngine resolves the
 *   offending request's future with one and keeps serving everything
 *   else.
 * - phi_assert / phi_panic (common/logging.hh): an *internal invariant*
 *   violation — a bug in phi itself. Those still abort.
 *
 * io::IoError (io/serialize.hh) plays the same recoverable role for
 * artifact parsing; EngineError is its request-path counterpart.
 */

#ifndef PHI_COMMON_ERROR_HH
#define PHI_COMMON_ERROR_HH

#include <ostream>
#include <stdexcept>
#include <string>

namespace phi
{

/** Machine-readable reason carried by every EngineError. */
enum class EngineErrorCode
{
    EmptyModel,      // engine constructed over a model with no layers
    InvalidLayer,    // request names a layer id the model does not have
    MissingWeights,  // target layer was compiled without weights
    ShapeMismatch,   // activation K != weight rows of the target layer
    NullActivation,  // serveBatch() handed a null activation pointer
    PendingRequests, // serve()/serveBatch() called with queued requests
    QueueFull,       // async queue at capacity under the Reject policy,
                     // or a queued request was shed to admit a
                     // higher-priority one
    Stopped,         // submit() after shutdown()/destruction began
    UnknownModel,    // registry has no resident model for the name/handle
    ModelExists,     // load() of a name already resident (use swap())
    ModelBusy,       // unload() while requests are in flight on the model
    DeadlineExceeded, // request's deadline passed before compute started
    Internal,        // dispatcher died on an escaped exception; the
                     // watchdog failed this in-flight request and
                     // restarted the loop — retry is safe
    SessionNotFound, // session id was never opened (or already closed)
    SessionExpired,  // session was evicted by the idle TTL; its state
                     // is gone and the stream must be reopened
    TooManySessions, // SessionManager at its session cap
};

constexpr const char*
engineErrorCodeName(EngineErrorCode code)
{
    switch (code) {
    case EngineErrorCode::EmptyModel: return "EmptyModel";
    case EngineErrorCode::InvalidLayer: return "InvalidLayer";
    case EngineErrorCode::MissingWeights: return "MissingWeights";
    case EngineErrorCode::ShapeMismatch: return "ShapeMismatch";
    case EngineErrorCode::NullActivation: return "NullActivation";
    case EngineErrorCode::PendingRequests: return "PendingRequests";
    case EngineErrorCode::QueueFull: return "QueueFull";
    case EngineErrorCode::Stopped: return "Stopped";
    case EngineErrorCode::UnknownModel: return "UnknownModel";
    case EngineErrorCode::ModelExists: return "ModelExists";
    case EngineErrorCode::ModelBusy: return "ModelBusy";
    case EngineErrorCode::DeadlineExceeded: return "DeadlineExceeded";
    case EngineErrorCode::Internal: return "Internal";
    case EngineErrorCode::SessionNotFound: return "SessionNotFound";
    case EngineErrorCode::SessionExpired: return "SessionExpired";
    case EngineErrorCode::TooManySessions: return "TooManySessions";
    }
    return "Unknown";
}

/** Logs and test failure messages print `QueueFull`, not an int. */
inline std::ostream&
operator<<(std::ostream& os, EngineErrorCode code)
{
    return os << engineErrorCodeName(code);
}

/**
 * A rejected request. Thrown by the synchronous engine APIs and
 * delivered through the offending request's future by the async
 * frontend; catching it and carrying on is the intended use.
 */
class EngineError : public std::runtime_error
{
  public:
    /** Nested alias so call sites can say EngineError::Code. */
    using Code = EngineErrorCode;

    EngineError(Code code, const std::string& what)
        : std::runtime_error(std::string("phi engine error [") +
                             engineErrorCodeName(code) + "]: " + what),
          errorCode(code)
    {
    }

    Code code() const { return errorCode; }

    /** The code's enumerator name ("QueueFull"), for logs and tests. */
    const char* codeName() const { return engineErrorCodeName(errorCode); }

  private:
    Code errorCode;
};

} // namespace phi

#endif // PHI_COMMON_ERROR_HH
