/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to stamp
 * and verify .phim section payloads.
 *
 * Chosen over stronger hashes deliberately: artifact integrity here
 * defends against bit rot, truncation and torn writes — not an
 * adversary — and a table-driven CRC32 verifies at memory speed with
 * zero dependencies, the same trade-off ZIP, PNG and gzip settled on.
 */

#ifndef PHI_COMMON_CRC32_HH
#define PHI_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace phi
{

/**
 * CRC-32 of @p size bytes at @p data. Pass a previous result as
 * @p seed to checksum a buffer in several calls; the default seed
 * (0) makes a single call self-contained. crc32(nullptr, 0) == 0.
 */
uint32_t crc32(const void* data, size_t size, uint32_t seed = 0);

} // namespace phi

#endif // PHI_COMMON_CRC32_HH
