#include "common/crc32.hh"

#include <array>

namespace phi
{

namespace
{

constexpr uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c >> 1) ^ ((c & 1u) ? kPolynomial : 0u);
        table[i] = c;
    }
    return table;
}

constexpr std::array<uint32_t, 256> kTable = makeTable();

} // namespace

uint32_t
crc32(const void* data, size_t size, uint32_t seed)
{
    const uint8_t* bytes = static_cast<const uint8_t*>(data);
    uint32_t c = seed ^ 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        c = (c >> 8) ^ kTable[(c ^ bytes[i]) & 0xFFu];
    return c ^ 0xFFFFFFFFu;
}

} // namespace phi
