/**
 * @file
 * Cache-line-aligned storage for the numeric containers.
 *
 * The SIMD kernel layer (numeric/simd.hh) wants every matrix row to
 * start on a 64-byte boundary and to be padded to a whole number of
 * cache lines, so vector loops can run full-width to the padded edge
 * without tail branches. AlignedVec is a std::vector with an aligned
 * allocator: it keeps value semantics (copy, move, operator==) while
 * guaranteeing the alignment of the buffer start.
 */

#ifndef PHI_COMMON_ALIGNED_HH
#define PHI_COMMON_ALIGNED_HH

#include <cstddef>
#include <new>
#include <vector>

namespace phi
{

/** Alignment of all SIMD-visible buffers: one x86 cache line, and wide
 *  enough for any AVX-512 load. */
inline constexpr size_t kSimdAlign = 64;

namespace detail
{

/**
 * Small thread-local recycler for aligned blocks. Kernel-sized buffers
 * (PWP tables, GEMM outputs) are allocated and freed once per call in
 * the hot paths; glibc hands such aligned chunks straight back to the
 * OS (trim/munmap), so every call pays fresh minor page faults —
 * measured at ~100us per phiGemm on a 1-core host. Keeping the last
 * few blocks per thread turns that into a pointer swap. Bounded (32
 * entries / 8 MiB per thread, page-sized blocks and up) and emptied at
 * thread exit.
 */
template <size_t Align>
class AlignedBlockCache
{
  public:
    ~AlignedBlockCache()
    {
        for (size_t i = 0; i < count; ++i)
            ::operator delete(entries[i].ptr, std::align_val_t(Align));
    }

    /** A cached block of exactly `bytes`, or nullptr. */
    void*
    take(size_t bytes)
    {
        for (size_t i = count; i-- > 0;) {
            if (entries[i].bytes == bytes) {
                void* p = entries[i].ptr;
                entries[i] = entries[--count];
                total -= bytes;
                return p;
            }
        }
        return nullptr;
    }

    /** Adopt a block; false when full (caller frees it normally). */
    bool
    put(void* p, size_t bytes)
    {
        if (bytes < kMinBlockBytes || count >= kMaxEntries ||
            total + bytes > kMaxTotalBytes)
            return false;
        entries[count++] = {p, bytes};
        total += bytes;
        return true;
    }

    static AlignedBlockCache&
    forThread()
    {
        static thread_local AlignedBlockCache cache;
        return cache;
    }

  private:
    static constexpr size_t kMaxEntries = 32;
    static constexpr size_t kMaxTotalBytes = size_t{8} << 20;
    static constexpr size_t kMinBlockBytes = 4096;

    struct Entry
    {
        void* ptr;
        size_t bytes;
    };

    Entry entries[kMaxEntries];
    size_t count = 0;
    size_t total = 0;
};

} // namespace detail

/**
 * Minimal C++17 aligned allocator. All instances are interchangeable.
 *
 * DefaultInit selects the construct() semantics for trivial element
 * types: false (the AlignedVec default) keeps standard vector
 * behaviour — vector(n)/resize(n) value-initialise (zero) elements;
 * true makes them default-initialise (leave memory as allocated),
 * which Matrix uses internally for buffers it overwrites in full.
 * Keep DefaultInit out of general-purpose containers: with the block
 * recycler below, "uninitialised" means plausible-looking stale data,
 * not zeros.
 */
template <typename T, size_t Align = kSimdAlign, bool DefaultInit = false>
struct AlignedAlloc
{
    using value_type = T;

    /** Explicit rebind: the non-type Align parameter defeats the
     *  allocator_traits auto-rebind machinery. */
    template <typename U>
    struct rebind
    {
        using other = AlignedAlloc<U, Align, DefaultInit>;
    };

    AlignedAlloc() = default;

    template <typename U>
    AlignedAlloc(const AlignedAlloc<U, Align, DefaultInit>&)
    {
    }

    T*
    allocate(size_t n)
    {
        const size_t bytes = n * sizeof(T);
        if (void* p =
                detail::AlignedBlockCache<Align>::forThread().take(
                    bytes))
            return static_cast<T*>(p);
        return static_cast<T*>(
            ::operator new(bytes, std::align_val_t(Align)));
    }

    /**
     * Zero-argument construct honouring DefaultInit; the fill
     * constructors (vector(n, v)) are unaffected either way.
     */
    template <typename U>
    void
    construct(U* p)
    {
        if constexpr (DefaultInit)
            ::new (static_cast<void*>(p)) U;
        else
            ::new (static_cast<void*>(p)) U();
    }

    void
    deallocate(T* p, size_t n)
    {
        if (detail::AlignedBlockCache<Align>::forThread().put(
                p, n * sizeof(T)))
            return;
        ::operator delete(p, std::align_val_t(Align));
    }

    template <typename U>
    bool operator==(const AlignedAlloc<U, Align, DefaultInit>&) const
    {
        return true;
    }
};

/** Value-semantic buffer whose data() is 64-byte aligned; standard
 *  vector semantics (vector(n)/resize(n) zero trivial elements). */
template <typename T>
using AlignedVec = std::vector<T, AlignedAlloc<T>>;

/**
 * As AlignedVec, but vector(n)/resize(n) leave trivial elements
 * uninitialised. Strictly for container internals (Matrix) whose
 * every element is provably written before being read — with the
 * block recycler above, "uninitialised" means plausible-looking
 * stale data, not zeros.
 */
template <typename T>
using AlignedUninitVec =
    std::vector<T, AlignedAlloc<T, kSimdAlign, true>>;

} // namespace phi

#endif // PHI_COMMON_ALIGNED_HH
