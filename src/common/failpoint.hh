/**
 * @file
 * Deterministic fault injection for testing failure paths.
 *
 * A failpoint is a named site in library code where a test can make a
 * failure happen on demand — an I/O error in the middle of an
 * artifact write, a worker-thread exception mid-batch, the async
 * dispatcher dying outright — so recovery code is exercised by the
 * suite instead of waiting for production to exercise it.
 *
 * Two halves, deliberately split:
 *
 * - The *sites* (`PHI_FAILPOINT(name, action)`) are compiled into the
 *   library only when it is configured with `-DPHI_FAILPOINTS=ON`.
 *   In a normal build the macro expands to nothing — zero branches,
 *   zero atomics, zero bytes on the serving path.
 * - The *control API* below is always compiled, so the chaos test
 *   suite links in every configuration and skips itself cleanly
 *   (compiledIn() == false) when the sites are absent.
 *
 * Trigger policies are deterministic by construction: Once, EveryNth
 * and Always are pure counters; Probability draws from an explicitly
 * seeded phi::Rng, so a chaos run is exactly reproducible from its
 * seed. Policies are armed per site name; an un-armed site never
 * fires. The fired/evaluated counters let tests assert an injected
 * fault actually happened rather than silently testing nothing.
 *
 * The action at each site is chosen by the site, not the policy:
 * io sites throw IoError, compute sites throw the exception class
 * their real failure mode would produce. That keeps the injected
 * failure indistinguishable from the genuine one — which is the
 * point.
 */

#ifndef PHI_COMMON_FAILPOINT_HH
#define PHI_COMMON_FAILPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace phi::failpoint
{

/** When an armed site fires. */
struct Policy
{
    enum class Kind
    {
        Always,      // every evaluation
        Once,        // first evaluation only
        EveryNth,    // evaluations n, 2n, 3n, ...
        Probability, // Bernoulli(p) per evaluation, seeded Rng
    };

    Kind kind = Kind::Always;
    uint64_t n = 1;     // EveryNth period
    double p = 1.0;     // Probability success rate
    uint64_t seed = 1;  // Probability stream seed

    static Policy always() { return {}; }
    static Policy once() { return {Kind::Once, 1, 1.0, 1}; }
    static Policy everyNth(uint64_t n)
    {
        return {Kind::EveryNth, n < 1 ? 1 : n, 1.0, 1};
    }
    static Policy probability(double p, uint64_t seed)
    {
        return {Kind::Probability, 1, p, seed};
    }
};

/** Arm @p site with @p policy (replacing any previous arming and
 *  resetting its counters). Thread-safe, as is everything below. */
void enable(const std::string& site, Policy policy);

/** Disarm one site; its counters survive for post-run assertions. */
void disable(const std::string& site);

/** Disarm every site and forget all counters. Chaos tests call this
 *  from their fixture teardown so state never leaks across tests. */
void reset();

/**
 * Called by the PHI_FAILPOINT macro at each site: true when the site
 * is armed and its policy says "fire now". Constant-time no-op (one
 * relaxed atomic load) while nothing is armed anywhere.
 */
bool shouldFire(const char* site);

/** Times @p site was evaluated / actually fired since reset(). */
uint64_t evaluations(const std::string& site);
uint64_t fires(const std::string& site);

/** True when the library was built with PHI_FAILPOINTS=ON, i.e. the
 *  sites below exist in the compiled code. */
bool compiledIn();

/**
 * The sites wired into the library. Kept as named constants (rather
 * than free strings at call sites) so the chaos suite can iterate
 * every registered site and prove each one is survivable.
 */
namespace sites
{
/** model_io readFile(): artifact bytes fail to read. */
inline constexpr const char* kIoRead = "io.read";
/** model_io writeFileAtomic(): mid-write failure before rename. */
inline constexpr const char* kIoWrite = "io.write";
/** ThreadPool chunk execution: a worker task throws mid-batch. */
inline constexpr const char* kPoolTask = "pool.task";
/** AsyncPhiEngine dispatch loop: the dispatcher thread dies. */
inline constexpr const char* kDispatcherLoop = "dispatcher.loop";
/** PhiServer accept path: a freshly accepted connection is dropped as
 *  if accept(2) had failed. */
inline constexpr const char* kNetAccept = "net.accept";
/** PhiServer read path: a connection's read fails mid-stream. */
inline constexpr const char* kNetRead = "net.read";
/** PhiServer write path: flushing a connection's responses fails. */
inline constexpr const char* kNetWrite = "net.write";
/** SessionManager step path: one session's temporal step fails before
 *  any of its LIF state is advanced. */
inline constexpr const char* kSessionStep = "session.step";
} // namespace sites

/** Every site name above, for exhaustive chaos sweeps. */
std::vector<std::string> allSites();

} // namespace phi::failpoint

/**
 * A failure-injection site. @p action runs when the site is armed and
 * its policy fires — typically `throw SomeError(...)`. Compiled out
 * entirely unless the build defines PHI_FAILPOINTS.
 */
#ifdef PHI_FAILPOINTS
#define PHI_FAILPOINT(site, action)                                    \
    do {                                                               \
        if (::phi::failpoint::shouldFire(site)) {                      \
            action;                                                    \
        }                                                              \
    } while (0)
#else
#define PHI_FAILPOINT(site, action)                                    \
    do {                                                               \
    } while (0)
#endif

#endif // PHI_COMMON_FAILPOINT_HH
