#include "common/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/failpoint.hh"
#include "common/logging.hh"
#include "common/sync.hh"

namespace phi
{

namespace
{

/**
 * True while the current thread is executing chunks of an active job —
 * on pool-owned worker threads always, and on a submitting thread for
 * the duration of its drain. Nested run() calls from such a thread
 * execute inline: a worker re-entering run() would deadlock, and a
 * submitter re-entering would clobber the shared counters of its own
 * in-flight job.
 */
thread_local bool insideParallelRegion = false;

/** RAII flag for the submitting thread's drain. */
struct ParallelRegionGuard
{
    ParallelRegionGuard() { insideParallelRegion = true; }
    ~ParallelRegionGuard() { insideParallelRegion = false; }
};

int
defaultThreadCount()
{
    if (const char* env = std::getenv("PHI_THREADS")) {
        int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

} // namespace

int
ExecutionConfig::resolvedThreads() const
{
    if (threads >= 1)
        return threads;
    return defaultThreadCount();
}

struct ThreadPool::Impl
{
    std::vector<std::thread> workers;

    /** Serialises whole jobs: held by a submitter for its entire run()
     *  so concurrent top-level submitters cannot clobber the one-job
     *  state below. Nested calls never reach it (they run inline).
     *  Lock order: submitMtx is taken strictly before mtx (only run()
     *  holds both, briefly, to publish a job). */
    Mutex submitMtx;

    Mutex mtx;
    CondVar wake; // workers wait for a new job
    CondVar done; // submitter waits for completion
    bool shutdown GUARDED_BY(mtx) = false;

    // One job at a time. Published under mtx; chunk claims go through
    // the atomics so the drain loop itself is lock-free.
    uint64_t generation GUARDED_BY(mtx) = 0;
    const std::function<void(size_t)>* fn GUARDED_BY(mtx) = nullptr;
    size_t chunkCount GUARDED_BY(mtx) = 0;
    std::atomic<size_t> nextChunk{0};
    std::atomic<size_t> pendingChunks{0};
    std::atomic<int> activeSlots{0};
    int drainers GUARDED_BY(mtx) = 0; // workers inside the drain loop
    std::exception_ptr firstError GUARDED_BY(mtx);

    void
    drainChunks(const std::function<void(size_t)>& job, size_t chunks)
    {
        // Claim chunk indices until exhausted. Exceptions are recorded
        // once; remaining chunks still drain so completion is reached.
        while (true) {
            size_t c = nextChunk.fetch_add(1, std::memory_order_relaxed);
            if (c >= chunks)
                break;
            try {
                PHI_FAILPOINT(failpoint::sites::kPoolTask,
                              throw std::runtime_error(
                                  "injected task failure (failpoint "
                                  "'pool.task')"));
                job(c);
            } catch (...) {
                MutexLock lock(mtx);
                if (!firstError)
                    firstError = std::current_exception();
            }
            if (pendingChunks.fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
                MutexLock lock(mtx);
                done.notify_all();
            }
        }
    }

    void
    workerLoop()
    {
        insideParallelRegion = true;
        uint64_t seen = 0;
        while (true) {
            const std::function<void(size_t)>* job = nullptr;
            size_t chunks = 0;
            {
                UniqueLock lock(mtx);
                while (!shutdown && generation == seen)
                    wake.wait(lock);
                if (shutdown)
                    return;
                seen = generation;
                // Respect the per-job thread cap: the submitter holds
                // one slot, helpers take the rest first-come. The job
                // state is copied under the lock; run() cannot republish
                // while any drainer is active.
                if (activeSlots.fetch_sub(
                        1, std::memory_order_acq_rel) <= 0)
                    continue;
                job = fn;
                chunks = chunkCount;
                ++drainers;
            }
            if (job)
                drainChunks(*job, chunks);
            {
                MutexLock lock(mtx);
                --drainers;
                done.notify_all();
            }
        }
    }
};

ThreadPool::ThreadPool(int workers) : impl(new Impl)
{
    phi_assert(workers >= 0, "negative worker count");
    impl->workers.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i)
        impl->workers.emplace_back([this] { impl->workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(impl->mtx);
        impl->shutdown = true;
    }
    impl->wake.notify_all();
    for (auto& t : impl->workers)
        t.join();
    delete impl;
}

int
ThreadPool::maxParallelism() const
{
    return static_cast<int>(impl->workers.size()) + 1;
}

void
ThreadPool::run(size_t numChunks, int maxThreads,
                const std::function<void(size_t)>& fn)
{
    if (numChunks == 0)
        return;
    if (maxThreads < 1)
        maxThreads = 1;

    // Sequential fast path: one thread requested, a single chunk, no
    // helpers, or a nested call from a thread already draining a job
    // (re-publishing would corrupt the in-flight job's shared state).
    if (maxThreads == 1 || numChunks == 1 || impl->workers.empty() ||
        insideParallelRegion) {
        for (size_t c = 0; c < numChunks; ++c)
            fn(c);
        return;
    }

    // One job at a time: a concurrent top-level submitter falls back to
    // inline execution instead of idling on the lock, preserving
    // caller-level parallelism for applications that shard work across
    // their own threads.
    if (!impl->submitMtx.try_lock()) {
        for (size_t c = 0; c < numChunks; ++c)
            fn(c);
        return;
    }
    UniqueLock submit(impl->submitMtx, std::adopt_lock);
    {
        MutexLock lock(impl->mtx);
        impl->fn = &fn;
        impl->chunkCount = numChunks;
        impl->nextChunk.store(0, std::memory_order_relaxed);
        impl->pendingChunks.store(numChunks, std::memory_order_relaxed);
        impl->activeSlots.store(maxThreads - 1,
                                std::memory_order_relaxed);
        impl->firstError = nullptr;
        ++impl->generation;
    }
    impl->wake.notify_all();

    {
        ParallelRegionGuard guard;
        impl->drainChunks(fn, numChunks);
    }

    UniqueLock lock(impl->mtx);
    while (impl->pendingChunks.load(std::memory_order_acquire) != 0 ||
           impl->drainers != 0)
        impl->done.wait(lock);
    impl->fn = nullptr;
    if (impl->firstError) {
        std::exception_ptr err = impl->firstError;
        impl->firstError = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

ThreadPool&
ThreadPool::global()
{
    static ThreadPool pool(defaultThreadCount() - 1);
    return pool;
}

void
parallelFor(const ExecutionConfig& cfg, size_t begin, size_t end,
            size_t grain, const std::function<void(size_t, size_t)>& fn)
{
    parallelForChunks(cfg, begin, end, grain,
                      [&](size_t, size_t b, size_t e) { fn(b, e); });
}

void
parallelForChunks(const ExecutionConfig& cfg, size_t begin, size_t end,
                  size_t grain,
                  const std::function<void(size_t, size_t, size_t)>& fn)
{
    if (end <= begin)
        return;
    if (grain < 1)
        grain = 1;
    const size_t chunks = numChunks(begin, end, grain);
    const int threads = cfg.resolvedThreads();

    auto runChunk = [&](size_t c) {
        const size_t b = begin + c * grain;
        const size_t e = b + grain < end ? b + grain : end;
        fn(c, b, e);
    };

    if (threads <= 1 || chunks <= 1) {
        for (size_t c = 0; c < chunks; ++c)
            runChunk(c);
        return;
    }
    ThreadPool::global().run(chunks, threads, runChunk);
}

} // namespace phi
