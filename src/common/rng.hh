/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * All stochastic components in phi (generators, k-means initialisation,
 * PAFT alignment) draw from an explicitly seeded Rng so every bench and
 * test is bit-reproducible across runs and platforms.
 */

#ifndef PHI_COMMON_RNG_HH
#define PHI_COMMON_RNG_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace phi
{

/**
 * xoshiro256** PRNG with a splitmix64 seeding routine.
 *
 * Chosen over std::mt19937 because its output sequence is identical on
 * every standard library implementation, which keeps traces reproducible.
 */
class Rng
{
  public:
    /** Seed the generator; the same seed always yields the same stream. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform integer in [0, bound) (bound must be > 0). */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /**
     * Zipf-distributed index in [0, n) with exponent s.
     * Used to give latent activation prototypes a heavy-tailed popularity,
     * mirroring the dominant-cluster structure of SNN activations.
     */
    size_t zipf(size_t n, double s);

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        if (v.empty())
            return;
        for (size_t i = v.size() - 1; i > 0; --i) {
            size_t j = nextBounded(i + 1);
            std::swap(v[i], v[j]);
        }
    }

    /** Derive an independent child stream (for per-layer generators). */
    Rng fork();

  private:
    uint64_t state[4];
};

} // namespace phi

#endif // PHI_COMMON_RNG_HH
