/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs) and aborts;
 * fatal() is for user-caused conditions (bad configuration) and exits with
 * an error code; warn() and inform() report conditions without stopping.
 */

#ifndef PHI_COMMON_LOGGING_HH
#define PHI_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace phi
{

namespace detail
{

/** Compose a message from streamable parts. */
template <typename... Args>
std::string
composeMessage(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char* file, int line,
                            const std::string& msg);
[[noreturn]] void fatalImpl(const char* file, int line,
                            const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

/**
 * Make panic/fatal throw (logic_error/runtime_error) instead of
 * terminating; used by the test suite to exercise error paths.
 */
void setThrowOnError(bool enable);

} // namespace detail

} // namespace phi

/** Abort: something happened that should never happen (a bug in phi). */
#define phi_panic(...) \
    ::phi::detail::panicImpl(__FILE__, __LINE__, \
        ::phi::detail::composeMessage(__VA_ARGS__))

/** Exit(1): the simulation cannot continue due to a user-level error. */
#define phi_fatal(...) \
    ::phi::detail::fatalImpl(__FILE__, __LINE__, \
        ::phi::detail::composeMessage(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
#define phi_warn(...) \
    ::phi::detail::warnImpl(::phi::detail::composeMessage(__VA_ARGS__))

/** Report normal operating status. */
#define phi_inform(...) \
    ::phi::detail::informImpl(::phi::detail::composeMessage(__VA_ARGS__))

/** Internal invariant check that survives NDEBUG builds. */
#define phi_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::phi::detail::panicImpl(__FILE__, __LINE__, \
                ::phi::detail::composeMessage("assertion '", #cond, \
                                              "' failed: ", ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // PHI_COMMON_LOGGING_HH
