/**
 * @file
 * Small bit-manipulation helpers shared across phi.
 */

#ifndef PHI_COMMON_BITOPS_HH
#define PHI_COMMON_BITOPS_HH

#include <bit>
#include <cstdint>

namespace phi
{

/** Number of set bits in x. */
inline int
popcount64(uint64_t x)
{
    return std::popcount(x);
}

/** Mask covering the low n bits (n in [0, 64]). */
inline uint64_t
lowMask(int n)
{
    if (n <= 0)
        return 0;
    if (n >= 64)
        return ~0ull;
    return (1ull << n) - 1;
}

/** Hamming distance between two words restricted to their low bits. */
inline int
hammingDistance(uint64_t a, uint64_t b)
{
    return popcount64(a ^ b);
}

/** True iff x has exactly one bit set. */
inline bool
isOneHot(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Ceiling division for non-negative integers. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    return (a + b - 1) / b;
}

/** Round a up to the next multiple of b. */
template <typename T>
constexpr T
roundUp(T a, T b)
{
    return ceilDiv(a, b) * b;
}

} // namespace phi

#endif // PHI_COMMON_BITOPS_HH
