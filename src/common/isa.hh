/**
 * @file
 * Instruction-set identifiers for the SIMD kernel layer.
 *
 * Kept separate from numeric/simd.hh so ExecutionConfig
 * (common/parallel.hh) can carry an ISA override without pulling the
 * kernel vtable into every header.
 */

#ifndef PHI_COMMON_ISA_HH
#define PHI_COMMON_ISA_HH

#include <cstdint>
#include <optional>
#include <string_view>

namespace phi
{

/**
 * SIMD backend selector. Auto resolves at runtime to the widest backend
 * the host CPU supports (or to the PHI_SIMD environment override);
 * the named values force one backend, falling back to Scalar when that
 * backend is not compiled in or not supported by the host.
 */
enum class SimdIsa : uint8_t
{
    Auto,
    Scalar,
    Avx2,
    Avx512,
    Neon,
};

/** Stable lower-case name, e.g. for logs and bench metadata. */
constexpr const char*
simdIsaName(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Auto:
        return "auto";
      case SimdIsa::Scalar:
        return "scalar";
      case SimdIsa::Avx2:
        return "avx2";
      case SimdIsa::Avx512:
        return "avx512";
      case SimdIsa::Neon:
        return "neon";
    }
    return "unknown";
}

/** Parse a name as produced by simdIsaName (PHI_SIMD values). */
inline std::optional<SimdIsa>
parseSimdIsa(std::string_view name)
{
    for (SimdIsa isa : {SimdIsa::Auto, SimdIsa::Scalar, SimdIsa::Avx2,
                        SimdIsa::Avx512, SimdIsa::Neon})
        if (name == simdIsaName(isa))
            return isa;
    return std::nullopt;
}

} // namespace phi

#endif // PHI_COMMON_ISA_HH
