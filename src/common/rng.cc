#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace phi
{

namespace
{

uint64_t
splitmix64(uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto& w : state)
        w = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state[1] * 5, 7) * 9;
    const uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    phi_assert(bound > 0, "nextBounded requires bound > 0");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    phi_assert(lo <= hi, "uniformInt requires lo <= hi");
    return lo + static_cast<int64_t>(
        nextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::gaussian()
{
    // Box-Muller; discard the second variate for simplicity.
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300)
        u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

size_t
Rng::zipf(size_t n, double s)
{
    phi_assert(n > 0, "zipf requires n > 0");
    // Inverse-CDF sampling over the finite harmonic weights. n is small
    // (tens of prototypes), so the linear scan is fine.
    double norm = 0.0;
    for (size_t i = 1; i <= n; ++i)
        norm += 1.0 / std::pow(static_cast<double>(i), s);
    double u = uniform() * norm;
    double acc = 0.0;
    for (size_t i = 1; i <= n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i), s);
        if (u <= acc)
            return i - 1;
    }
    return n - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace phi
