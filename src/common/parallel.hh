/**
 * @file
 * Shared execution engine: a simple chunked thread pool plus
 * deterministic parallel-for helpers and the ExecutionConfig knobs that
 * the hot kernels (spikeGemm, phiGemm, decomposeLayer, k-means) are
 * built on.
 *
 * Determinism contract: work ranges are split into fixed-size chunks
 * whose boundaries depend only on the range and the grain — never on
 * the thread count. Chunks either write disjoint outputs or produce
 * per-chunk partials that the caller reduces in chunk order, so results
 * are bit-identical at any thread count.
 */

#ifndef PHI_COMMON_PARALLEL_HH
#define PHI_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>

#include "common/bitops.hh"
#include "common/isa.hh"

namespace phi
{

/**
 * Execution knobs plumbed from the public APIs (Pipeline, simulator,
 * benches) into the parallel kernels.
 */
struct ExecutionConfig
{
    /**
     * Worker threads for the parallel kernels. 0 = use all hardware
     * threads (or the PHI_THREADS environment override); 1 = run
     * sequentially on the calling thread.
     */
    int threads = 0;

    /** Output-column (N) cache block of the GEMM kernels, in elements;
     *  0 means unblocked (one full-N sweep). */
    size_t tileN = 512;

    /**
     * Reduction-dimension (K) cache block of the GEMM kernels, in bits;
     * rounded up internally to a multiple of 64 (one activation word).
     */
    size_t tileK = 4096;

    /**
     * SIMD backend override for the kernel layer (numeric/simd.hh).
     * Auto picks the widest backend the host supports, honouring the
     * PHI_SIMD environment variable; forcing a specific backend is for
     * testing and benchmarking. Every backend is bit-identical, so
     * this knob never changes results — only speed.
     */
    SimdIsa isa = SimdIsa::Auto;

    /**
     * Software-prefetch the next visit's Level 1 arena rows in the
     * phiGemm serving loop. Off by default: on hosts measured so far
     * the hardware prefetcher already tracks the arena's sequential
     * row streams, and the extra prefetch instructions slow the hot
     * loop by up to 30% on wide layers. Opt-in hook for
     * bandwidth-starved parts whose PWP arena far exceeds the
     * last-level cache. Never changes results — only speed.
     */
    bool prefetchPwp = false;

    /** Effective thread count: resolves 0 against the machine. */
    int resolvedThreads() const;

    /** Effective N block for an n-column output (resolves the
     *  0-means-unblocked sentinel). */
    size_t
    resolvedTileN(size_t n) const
    {
        return tileN < 1 ? n : tileN;
    }

    /** tileK rounded to whole 64-bit activation words (>= 1 word). */
    size_t
    tileKWords() const
    {
        return ceilDiv(tileK < 64 ? size_t{64} : tileK, size_t{64});
    }
};

/**
 * A deliberately simple chunked thread pool: no work stealing, no task
 * graph. One job at a time; workers grab chunk indices from a shared
 * atomic counter and the submitting thread participates, so a pool is
 * never slower than the sequential loop by more than the dispatch cost.
 *
 * Concurrency contract (compiler-checked in the impl via
 * common/sync.hh): `submitMtx` serialises whole jobs and is taken
 * strictly before `mtx`, which guards the one-job publication state;
 * chunk claims go through atomics so the drain loop itself is
 * lock-free. See README "Static analysis & concurrency contracts".
 */
class ThreadPool
{
  public:
    /** @param workers  helper threads to spawn (excluding callers). */
    explicit ThreadPool(int workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Largest useful thread count (helpers + the calling thread). */
    int maxParallelism() const;

    /**
     * Run fn(chunk) for every chunk in [0, numChunks), using at most
     * maxThreads threads including the caller; blocks until all chunks
     * completed. Exceptions from fn are rethrown on the calling thread
     * (first one wins). Nested calls from any thread currently
     * executing chunks (pool worker or submitter) run inline to stay
     * deadlock-free; while one top-level job is in flight, further
     * submitters execute their own chunks inline rather than waiting.
     */
    void run(size_t numChunks, int maxThreads,
             const std::function<void(size_t)>& fn);

    /**
     * Process-wide pool, lazily created with resolvedThreads()-1
     * helpers. All kernels share it, so oversubscription is bounded.
     */
    static ThreadPool& global();

  private:
    struct Impl;
    Impl* impl;
};

/** Number of fixed-grain chunks covering [begin, end). */
inline size_t
numChunks(size_t begin, size_t end, size_t grain)
{
    return end > begin ? ceilDiv(end - begin, grain < 1 ? 1 : grain) : 0;
}

/**
 * Deterministic parallel loop: splits [begin, end) into fixed chunks of
 * `grain` iterations and runs fn(chunkBegin, chunkEnd) for each, in
 * parallel up to cfg.threads. fn must only write state owned by its
 * chunk.
 */
void parallelFor(const ExecutionConfig& cfg, size_t begin, size_t end,
                 size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/**
 * As parallelFor, but also hands fn the chunk index so callers can
 * stash per-chunk partial results and reduce them sequentially in chunk
 * order — the deterministic-reduction building block (no atomics on
 * float paths).
 */
void parallelForChunks(
    const ExecutionConfig& cfg, size_t begin, size_t end, size_t grain,
    const std::function<void(size_t chunk, size_t, size_t)>& fn);

} // namespace phi

#endif // PHI_COMMON_PARALLEL_HH
