/**
 * @file
 * PhiServer: the TCP serving frontend. A dependency-free epoll loop
 * speaking the length-prefixed wire protocol (net/protocol.hh) over
 * any number of concurrent non-blocking connections, wrapping one
 * AsyncPhiEngine + ModelRegistry so the whole in-process serving
 * stack — handle-based routing, deadlines, priorities, backpressure,
 * hot-swap, per-model stats — is reachable over a socket, and one
 * SessionManager so stateful temporal streams (runtime/session.hh)
 * are too: OpenSession/StepSession/CloseSession frames route to it,
 * session ids stay valid across reconnects, and graceful drain
 * snapshots open sessions to disk instead of dropping their LIF
 * state.
 *
 * Threads:
 *  - The *net thread* owns epoll, every socket, and all connection
 *    state: it accepts, reads, parses frames, submits requests to the
 *    engine, flushes write buffers, and sweeps timeouts. No socket is
 *    ever touched from another thread.
 *  - The *completion thread* waits on the engine futures in submit
 *    order, serializes each result (or typed error) into the owning
 *    connection's outbox, and wakes the net thread through an
 *    eventfd. A connection that died mid-request simply has its
 *    response dropped — the future is still consumed, so nothing
 *    leaks and the engine never blocks on a vanished client.
 *  - The engine's own dispatcher + pool threads compute, exactly as
 *    in-process serving does.
 *
 * Hostile-reality contract (what the tests pin):
 *  - Malformed traffic never hurts a neighbour: a frame with a bad
 *    magic, a lying length, an oversized body, or an undecodable
 *    payload yields a typed Error frame; framing-level corruption
 *    additionally closes that one connection (the length prefix can
 *    no longer be trusted), while a cleanly-framed bad body keeps the
 *    connection serving.
 *  - Slow and vanished clients are bounded: a connection whose write
 *    buffer exceeds maxWriteBufferBytes, stalls a partial frame past
 *    readTimeoutMs, makes no write progress past writeTimeoutMs, or
 *    sits idle past idleTimeoutMs is disconnected — fd closed, state
 *    freed, in-flight responses dropped on completion.
 *  - Graceful drain: requestDrain() (async-signal-safe — call it
 *    from a SIGTERM handler) stops accepting connections, answers
 *    requests parsed after the drain began with ServerDraining,
 *    serves everything already submitted, flushes every response,
 *    then closes all sockets and stops the loop; run()/
 *    waitUntilStopped() return and the process can exit 0. Laggards
 *    are force-closed after drainTimeoutMs so drain always
 *    terminates.
 *  - Failpoints net.accept / net.read / net.write (PHI_FAILPOINTS
 *    builds) fault each socket path deterministically; an injected
 *    failure is indistinguishable from the real one, and the chaos
 *    suite proves every one is survivable under live traffic.
 */

#ifndef PHI_NET_SERVER_HH
#define PHI_NET_SERVER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.hh"
#include "net/protocol.hh"
#include "runtime/async_engine.hh"
#include "runtime/session.hh"

namespace phi::net
{

/** Knobs of the TCP frontend (the engine keeps its own configs). */
struct PhiServerConfig
{
    /** Address to bind; loopback by default (explicitly opt into
     *  exposure). */
    std::string bindAddress = "127.0.0.1";

    /** TCP port; 0 picks an ephemeral port (see PhiServer::port()). */
    uint16_t port = 0;

    int listenBacklog = 64;

    /** Cap on concurrent connections; extras are told
     *  TooManyConnections and closed. */
    size_t maxConnections = 256;

    /** Largest accepted frame body; larger is FrameTooLarge. */
    size_t maxFrameBytes = kDefaultMaxFrameBytes;

    /**
     * Bound on unsent response bytes per connection. A client that
     * reads slower than it submits hits this and is disconnected —
     * one slow consumer must not grow server memory without bound.
     */
    size_t maxWriteBufferBytes = 8u << 20;

    /** Longest a partial frame may stall before the connection is
     *  closed (Timeout error, best effort). 0 = no limit. */
    uint64_t readTimeoutMs = 10'000;

    /** Longest a non-empty write buffer may go without the client
     *  accepting a byte. 0 = no limit. */
    uint64_t writeTimeoutMs = 10'000;

    /** Longest a connection may sit idle (no traffic, nothing in
     *  flight). 0 = no limit. */
    uint64_t idleTimeoutMs = 60'000;

    /** Ceiling on graceful drain; laggards are force-closed after
     *  this so SIGTERM always terminates. */
    uint64_t drainTimeoutMs = 10'000;

    /** Knobs of the stateful-session subsystem (cap, idle TTL). */
    SessionConfig sessionConfig;

    /**
     * Where drain persists open sessions as a `.phis` snapshot.
     * Non-empty: after the drain gate has flushed every in-flight
     * step, all open sessions are written here (atomically) so a
     * restarted server can restore() them — sessions survive SIGTERM.
     * Empty: drain closes sessions instead of snapshotting them.
     */
    std::string sessionSnapshotPath;
};

/** Socket-level counters, surfaced by STATS and the tests. */
struct ServerCounters
{
    uint64_t accepted = 0;        // connections accepted
    uint64_t closed = 0;          // connections closed (any reason)
    uint64_t requests = 0;        // request frames submitted
    uint64_t responses = 0;       // response frames queued
    uint64_t wireErrors = 0;      // error frames queued
    uint64_t protocolErrors = 0;  // framing/decoding violations
    uint64_t timeouts = 0;        // read/idle timeout disconnects
    uint64_t slowClientDrops = 0; // write cap / write stall drops
    uint64_t acceptFailures = 0;  // accept path failures (net.accept)
    uint64_t readFailures = 0;    // read path failures (net.read)
    uint64_t writeFailures = 0;   // write path failures (net.write)
    uint64_t statsServed = 0;     // STATS verbs answered
    uint64_t drainRejected = 0;   // requests refused mid-drain
    uint64_t sessionOpens = 0;    // OpenSession frames served
    uint64_t sessionCloses = 0;   // CloseSession frames served
    uint64_t sessionStepFrames = 0;   // StepSession frames submitted
    uint64_t sessionsSnapshotted = 0; // sessions persisted at drain
};

/**
 * The TCP serving frontend over one AsyncPhiEngine. Construct, then
 * start(); requests route through the shared ModelRegistry, which
 * stays fully live — load/swap/unload from any thread while serving.
 */
class PhiServer
{
  public:
    /**
     * @throws EngineError (EmptyModel) on a null registry — same
     * contract as AsyncPhiEngine.
     */
    explicit PhiServer(std::shared_ptr<ModelRegistry> registry,
                       ExecutionConfig exec = {},
                       AsyncEngineConfig engineConfig = {},
                       PhiServerConfig serverConfig = {});

    /** Hard-stops if still running (prefer requestDrain() +
     *  waitUntilStopped() for a clean exit). */
    ~PhiServer();

    PhiServer(const PhiServer&) = delete;
    PhiServer& operator=(const PhiServer&) = delete;

    /**
     * Bind + listen + spawn the net and completion threads. @throws
     * NetError (ConnectError) when the socket cannot be bound.
     * Idempotent-hostile: calling start() twice throws.
     */
    void start();

    /** The bound TCP port (resolves port 0 to the real one). Valid
     *  after start(). */
    uint16_t port() const;

    /**
     * Begin graceful drain. Async-signal-safe (an atomic store and an
     * eventfd write) — this is the SIGTERM handler's call. Returns
     * immediately; waitUntilStopped() observes completion.
     */
    void requestDrain();

    /** Hard stop: close everything now, drop undelivered responses
     *  (their futures are still consumed). Idempotent. */
    void stop();

    /** Block until the net loop has exited (drain finished or stop()
     *  was called) and both frontend threads are joined. */
    void waitUntilStopped();

    bool running() const;

    /** True once requestDrain() has been observed by the loop. */
    bool draining() const;

    /** Live connection count (net-thread snapshot). */
    size_t connectionCount() const EXCLUDES(stateMutex);

    ServerCounters counters() const EXCLUDES(stateMutex);

    /** The plaintext metrics block the STATS verb serves. */
    std::string statsText() const EXCLUDES(stateMutex);

    AsyncPhiEngine& engine() { return asyncEngine; }

    /** The stateful-session subsystem (restore snapshots through
     *  this before start(); see PhiServerConfig::sessionSnapshotPath). */
    SessionManager& sessions() { return sessionManager; }

    const std::shared_ptr<ModelRegistry>& registry() const
    {
        return asyncEngine.registry();
    }
    const PhiServerConfig& config() const { return serverConfig; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Connection;

    /** One submitted request whose future the completion thread is
     *  waiting on: either a stateless engine submit or a stateful
     *  session step (exactly one of the two futures is valid). */
    struct InFlight
    {
        enum class Kind
        {
            Engine,
            SessionStep,
        };

        uint64_t connId = 0;
        uint32_t requestId = 0;
        uint32_t layer = 0;
        Kind kind = Kind::Engine;
        std::future<EngineResponse> future;
        std::future<SessionStepResult> sessionFuture;
    };

    void netLoop() EXCLUDES(stateMutex, completionMutex);
    void completionLoop() EXCLUDES(stateMutex, completionMutex);

    void acceptPending() EXCLUDES(stateMutex);
    void handleReadable(Connection& conn) EXCLUDES(stateMutex);
    void processBuffer(Connection& conn)
        EXCLUDES(stateMutex, completionMutex);
    bool handleRequestFrame(Connection& conn, const ParsedFrame& frame)
        EXCLUDES(stateMutex, completionMutex);
    /** Serve one OpenSession/StepSession/CloseSession frame. Open and
     *  close run inline on the net thread (no engine work — bounded
     *  latency); steps go through the completion queue like stateless
     *  requests. */
    void handleSessionFrame(Connection& conn, const ParsedFrame& frame)
        EXCLUDES(stateMutex, completionMutex);
    /** Drain epilogue: flush the session pump, then snapshot open
     *  sessions to sessionSnapshotPath (or close them when unset). */
    void finishSessionsForDrain() EXCLUDES(stateMutex);
    void queueFrame(Connection& conn, std::vector<uint8_t> frame)
        EXCLUDES(stateMutex);
    void flushWrites(Connection& conn) EXCLUDES(stateMutex);
    void deliverOutboxes() EXCLUDES(stateMutex);
    void sweepTimeouts(Clock::time_point now) EXCLUDES(stateMutex);
    void beginDrain() EXCLUDES(stateMutex);
    bool drainComplete() EXCLUDES(stateMutex);
    void closeConnection(uint64_t connId, bool countClosed = true)
        EXCLUDES(stateMutex);
    void closeAllConnections() EXCLUDES(stateMutex);
    int64_t nextTimeoutMs(Clock::time_point now) const
        EXCLUDES(stateMutex);

    AsyncPhiEngine asyncEngine;
    PhiServerConfig serverConfig;

    /** Stateful sessions over asyncEngine (declared after it: the
     *  pump thread must stop before the engine destructs). Its own
     *  mutex is a leaf, independent of stateMutex. */
    SessionManager sessionManager;

    int listenFd = -1;
    int epollFd = -1;
    int wakeFd = -1; // eventfd: completion deliveries + drain/stop
    uint16_t boundPort = 0;

    std::thread netThread;
    std::thread completionThread;

    std::atomic<bool> started{false};
    std::atomic<bool> loopRunning{false};
    std::atomic<bool> drainRequested{false};
    std::atomic<bool> stopRequested{false};
    std::atomic<bool> drainingFlag{false};

    /**
     * Guards connsById + counters + activeRequests: shared between
     * the net thread and the completion thread. The Connection fields
     * the completion thread touches (outbox/outboxBytes/inFlight) are
     * likewise stateMutex-guarded by convention — the analysis cannot
     * express a guard across an aliased object (it matches
     * expressions structurally, not through pointers), so those
     * fields carry documentation rather than GUARDED_BY.
     * stateMutex and completionMutex are both leaf mutexes: never
     * held together, never held across a syscall or an engine call.
     */
    mutable Mutex stateMutex;
    std::map<uint64_t, Connection*> connsById GUARDED_BY(stateMutex);
    ServerCounters stats GUARDED_BY(stateMutex);
    /** Submitted, response not yet queued. */
    size_t activeRequests GUARDED_BY(stateMutex) = 0;

    /** Completion queue: net thread pushes, completion thread pops. */
    Mutex completionMutex;
    CondVar completionCv;
    std::deque<InFlight> completionQueue GUARDED_BY(completionMutex);
    bool completionStop GUARDED_BY(completionMutex) = false;

    /** Net-thread-only state: owned by exactly one thread, so
     *  documented rather than locked (netLoop and everything it calls
     *  are that thread). */
    std::map<int, std::unique_ptr<Connection>> connsByFd;
    uint64_t nextConnId = 1;
    Clock::time_point drainDeadline{};

    /** Serialises start()/stop()/waitUntilStopped() joins. Leaf: only
     *  lifecycle calls take it, never the serving threads. */
    Mutex lifecycleMutex;
};

} // namespace phi::net

#endif // PHI_NET_SERVER_HH
