#include "net/protocol.hh"

#include <algorithm>
#include <cstring>

namespace phi::net
{

const char*
wireErrorCodeName(WireErrorCode code)
{
    switch (code) {
    case WireErrorCode::BadMagic: return "BadMagic";
    case WireErrorCode::BadFrameType: return "BadFrameType";
    case WireErrorCode::FrameTooLarge: return "FrameTooLarge";
    case WireErrorCode::MalformedFrame: return "MalformedFrame";
    case WireErrorCode::ConnectionLost: return "ConnectionLost";
    case WireErrorCode::Timeout: return "Timeout";
    case WireErrorCode::ServerDraining: return "ServerDraining";
    case WireErrorCode::WriteOverflow: return "WriteOverflow";
    case WireErrorCode::ConnectError: return "ConnectError";
    case WireErrorCode::TooManyConnections: return "TooManyConnections";
    case WireErrorCode::EmptyModel: return "EmptyModel";
    case WireErrorCode::InvalidLayer: return "InvalidLayer";
    case WireErrorCode::MissingWeights: return "MissingWeights";
    case WireErrorCode::ShapeMismatch: return "ShapeMismatch";
    case WireErrorCode::NullActivation: return "NullActivation";
    case WireErrorCode::PendingRequests: return "PendingRequests";
    case WireErrorCode::QueueFull: return "QueueFull";
    case WireErrorCode::Stopped: return "Stopped";
    case WireErrorCode::UnknownModel: return "UnknownModel";
    case WireErrorCode::ModelExists: return "ModelExists";
    case WireErrorCode::ModelBusy: return "ModelBusy";
    case WireErrorCode::DeadlineExceeded: return "DeadlineExceeded";
    case WireErrorCode::Internal: return "Internal";
    case WireErrorCode::SessionNotFound: return "SessionNotFound";
    case WireErrorCode::SessionExpired: return "SessionExpired";
    case WireErrorCode::TooManySessions: return "TooManySessions";
    case WireErrorCode::IoFailure: return "IoFailure";
    }
    return "Unknown";
}

WireErrorCode
wireCode(EngineErrorCode code)
{
    switch (code) {
    case EngineErrorCode::EmptyModel: return WireErrorCode::EmptyModel;
    case EngineErrorCode::InvalidLayer:
        return WireErrorCode::InvalidLayer;
    case EngineErrorCode::MissingWeights:
        return WireErrorCode::MissingWeights;
    case EngineErrorCode::ShapeMismatch:
        return WireErrorCode::ShapeMismatch;
    case EngineErrorCode::NullActivation:
        return WireErrorCode::NullActivation;
    case EngineErrorCode::PendingRequests:
        return WireErrorCode::PendingRequests;
    case EngineErrorCode::QueueFull: return WireErrorCode::QueueFull;
    case EngineErrorCode::Stopped: return WireErrorCode::Stopped;
    case EngineErrorCode::UnknownModel:
        return WireErrorCode::UnknownModel;
    case EngineErrorCode::ModelExists:
        return WireErrorCode::ModelExists;
    case EngineErrorCode::ModelBusy: return WireErrorCode::ModelBusy;
    case EngineErrorCode::DeadlineExceeded:
        return WireErrorCode::DeadlineExceeded;
    case EngineErrorCode::Internal: return WireErrorCode::Internal;
    case EngineErrorCode::SessionNotFound:
        return WireErrorCode::SessionNotFound;
    case EngineErrorCode::SessionExpired:
        return WireErrorCode::SessionExpired;
    case EngineErrorCode::TooManySessions:
        return WireErrorCode::TooManySessions;
    }
    return WireErrorCode::Internal;
}

std::optional<EngineErrorCode>
engineCodeOf(WireErrorCode code)
{
    switch (code) {
    case WireErrorCode::EmptyModel: return EngineErrorCode::EmptyModel;
    case WireErrorCode::InvalidLayer:
        return EngineErrorCode::InvalidLayer;
    case WireErrorCode::MissingWeights:
        return EngineErrorCode::MissingWeights;
    case WireErrorCode::ShapeMismatch:
        return EngineErrorCode::ShapeMismatch;
    case WireErrorCode::NullActivation:
        return EngineErrorCode::NullActivation;
    case WireErrorCode::PendingRequests:
        return EngineErrorCode::PendingRequests;
    case WireErrorCode::QueueFull: return EngineErrorCode::QueueFull;
    case WireErrorCode::Stopped: return EngineErrorCode::Stopped;
    case WireErrorCode::UnknownModel:
        return EngineErrorCode::UnknownModel;
    case WireErrorCode::ModelExists:
        return EngineErrorCode::ModelExists;
    case WireErrorCode::ModelBusy: return EngineErrorCode::ModelBusy;
    case WireErrorCode::DeadlineExceeded:
        return EngineErrorCode::DeadlineExceeded;
    case WireErrorCode::Internal: return EngineErrorCode::Internal;
    case WireErrorCode::SessionNotFound:
        return EngineErrorCode::SessionNotFound;
    case WireErrorCode::SessionExpired:
        return EngineErrorCode::SessionExpired;
    case WireErrorCode::TooManySessions:
        return EngineErrorCode::TooManySessions;
    default: return std::nullopt;
    }
}

namespace
{

/** Words of packed bits one activation row carries on the wire. */
size_t
actsWordsPerRow(size_t cols)
{
    return (cols + 63) / 64;
}

void
encodeActs(io::ByteWriter& w, const BinaryMatrix& acts)
{
    w.u32(static_cast<uint32_t>(acts.rows()));
    w.u32(static_cast<uint32_t>(acts.cols()));
    // Only the logical words cross the wire — the receiver rebuilds
    // its own padded/aligned storage. Tail bits beyond cols() are
    // zero by BinaryMatrix invariant, so the bytes are canonical.
    for (size_t r = 0; r < acts.rows(); ++r)
        w.bytes(acts.rowWords(r), acts.numWordsPerRow() * 8);
}

BinaryMatrix
decodeActs(io::ByteReader& r)
{
    const uint32_t rows = r.u32();
    const uint32_t cols = r.u32();
    const size_t wordsPerRow = actsWordsPerRow(cols);
    // A lying shape must fail before it sizes an allocation: the body
    // cannot hold fewer bytes than the shape demands.
    const size_t needed = size_t{rows} * wordsPerRow * 8;
    if (rows != 0 && cols != 0 && needed / (wordsPerRow * 8) != rows)
        throw io::IoError("activation shape overflows");
    if (needed > r.remaining())
        throw io::IoError(
            "activation payload truncated: shape " +
            std::to_string(rows) + "x" + std::to_string(cols) +
            " needs " + std::to_string(needed) + " bytes, have " +
            std::to_string(r.remaining()));

    BinaryMatrix acts(rows, cols);
    std::vector<uint64_t> row(wordsPerRow);
    for (uint32_t i = 0; i < rows; ++i) {
        r.bytesInto(row.data(), wordsPerRow * 8);
        for (size_t wIdx = 0; wIdx < wordsPerRow; ++wIdx) {
            const size_t start = wIdx * 64;
            const int len = static_cast<int>(
                std::min<size_t>(64, size_t{cols} - start));
            // deposit() clips to cols(), so a peer that sent garbage
            // tail bits cannot break the tail-invariant contract.
            acts.deposit(i, start, len, row[wIdx]);
        }
    }
    return acts;
}

} // namespace

void
encodeRequest(io::ByteWriter& w, const WireRequest& req)
{
    w.u32(req.id);
    w.str(req.model);
    w.u64(req.version);
    w.u32(req.layer);
    w.u32(req.deadlineMs);
    w.i32(req.priority);
    encodeActs(w, req.acts);
}

WireRequest
decodeRequest(io::ByteReader& r)
{
    WireRequest req;
    req.id = r.u32();
    req.model = r.str();
    req.version = r.u64();
    req.layer = r.u32();
    req.deadlineMs = r.u32();
    req.priority = r.i32();
    req.acts = decodeActs(r);
    if (r.remaining() != 0)
        throw io::IoError("request body has " +
                          std::to_string(r.remaining()) +
                          " trailing bytes");
    return req;
}

void
encodeResponse(io::ByteWriter& w, const WireResponse& resp)
{
    w.u32(resp.id);
    w.str(resp.model);
    w.u64(resp.version);
    w.u32(resp.layer);
    w.u32(static_cast<uint32_t>(resp.out.rows()));
    w.u32(static_cast<uint32_t>(resp.out.cols()));
    for (size_t r = 0; r < resp.out.rows(); ++r)
        for (size_t c = 0; c < resp.out.cols(); ++c)
            w.i32(resp.out(r, c));
}

WireResponse
decodeResponse(io::ByteReader& r)
{
    WireResponse resp;
    resp.id = r.u32();
    resp.model = r.str();
    resp.version = r.u64();
    resp.layer = r.u32();
    const uint32_t rows = r.u32();
    const uint32_t cols = r.u32();
    const size_t needed = size_t{rows} * cols * 4;
    if (rows != 0 && cols != 0 && needed / (size_t{cols} * 4) != rows)
        throw io::IoError("response shape overflows");
    if (needed > r.remaining())
        throw io::IoError("response payload truncated");
    resp.out = Matrix<int32_t>(rows, cols);
    for (uint32_t i = 0; i < rows; ++i)
        for (uint32_t j = 0; j < cols; ++j)
            resp.out(i, j) = r.i32();
    if (r.remaining() != 0)
        throw io::IoError("response body has trailing bytes");
    return resp;
}

void
encodeError(io::ByteWriter& w, const WireError& err)
{
    w.u32(err.id);
    w.u16(static_cast<uint16_t>(err.code));
    w.str(err.message);
}

WireError
decodeError(io::ByteReader& r)
{
    WireError err;
    err.id = r.u32();
    err.code = static_cast<WireErrorCode>(r.u16());
    err.message = r.str();
    return err;
}

namespace
{

/** LifParams cross the wire as IEEE-754 bit patterns so a session
 *  opened remotely integrates bit-identically to a local one. */
void
encodeLifParams(io::ByteWriter& w, const LifParams& p)
{
    uint32_t bits;
    std::memcpy(&bits, &p.leak, sizeof(bits));
    w.u32(bits);
    std::memcpy(&bits, &p.threshold, sizeof(bits));
    w.u32(bits);
    w.u8(p.hardReset ? 1 : 0);
    w.i32(p.refractory);
}

LifParams
decodeLifParams(io::ByteReader& r)
{
    LifParams p;
    uint32_t bits = r.u32();
    std::memcpy(&p.leak, &bits, sizeof(p.leak));
    bits = r.u32();
    std::memcpy(&p.threshold, &bits, sizeof(p.threshold));
    p.hardReset = r.u8() != 0;
    p.refractory = r.i32();
    return p;
}

void
requireDrained(io::ByteReader& r, const char* what)
{
    if (r.remaining() != 0)
        throw io::IoError(std::string(what) + " body has " +
                          std::to_string(r.remaining()) +
                          " trailing bytes");
}

} // namespace

void
encodeOpenSession(io::ByteWriter& w, const WireOpenSession& msg)
{
    w.u32(msg.id);
    w.str(msg.model);
    w.u32(static_cast<uint32_t>(msg.params.size()));
    for (const LifParams& p : msg.params)
        encodeLifParams(w, p);
}

WireOpenSession
decodeOpenSession(io::ByteReader& r)
{
    WireOpenSession msg;
    msg.id = r.u32();
    msg.model = r.str();
    const uint32_t count = r.u32();
    // 13 encoded bytes per LifParams entry; reject counts the body
    // cannot hold before sizing the allocation.
    if (count > r.remaining() / 13)
        throw io::IoError("LifParams count " + std::to_string(count) +
                          " exceeds remaining body bytes");
    msg.params.reserve(count);
    for (uint32_t i = 0; i < count; ++i)
        msg.params.push_back(decodeLifParams(r));
    requireDrained(r, "open-session");
    return msg;
}

void
encodeSessionOpened(io::ByteWriter& w, const WireSessionOpened& msg)
{
    w.u32(msg.id);
    w.u64(msg.sessionId);
    w.str(msg.model);
    w.u64(msg.version);
    w.u32(msg.layers);
}

WireSessionOpened
decodeSessionOpened(io::ByteReader& r)
{
    WireSessionOpened msg;
    msg.id = r.u32();
    msg.sessionId = r.u64();
    msg.model = r.str();
    msg.version = r.u64();
    msg.layers = r.u32();
    requireDrained(r, "session-opened");
    return msg;
}

void
encodeStepSession(io::ByteWriter& w, const WireStepSession& msg)
{
    w.u32(msg.id);
    w.u64(msg.sessionId);
    encodeActs(w, msg.frames);
}

WireStepSession
decodeStepSession(io::ByteReader& r)
{
    WireStepSession msg;
    msg.id = r.u32();
    msg.sessionId = r.u64();
    msg.frames = decodeActs(r);
    requireDrained(r, "step-session");
    return msg;
}

void
encodeSessionStepped(io::ByteWriter& w, const WireSessionStepped& msg)
{
    w.u32(msg.id);
    w.u64(msg.sessionId);
    w.u64(msg.firstStep);
    encodeActs(w, msg.spikes);
}

WireSessionStepped
decodeSessionStepped(io::ByteReader& r)
{
    WireSessionStepped msg;
    msg.id = r.u32();
    msg.sessionId = r.u64();
    msg.firstStep = r.u64();
    msg.spikes = decodeActs(r);
    requireDrained(r, "session-stepped");
    return msg;
}

void
encodeCloseSession(io::ByteWriter& w, const WireCloseSession& msg)
{
    w.u32(msg.id);
    w.u64(msg.sessionId);
}

WireCloseSession
decodeCloseSession(io::ByteReader& r)
{
    WireCloseSession msg;
    msg.id = r.u32();
    msg.sessionId = r.u64();
    requireDrained(r, "close-session");
    return msg;
}

void
encodeSessionClosed(io::ByteWriter& w, const WireSessionClosed& msg)
{
    w.u32(msg.id);
    w.u64(msg.sessionId);
    w.u64(msg.steps);
}

WireSessionClosed
decodeSessionClosed(io::ByteReader& r)
{
    WireSessionClosed msg;
    msg.id = r.u32();
    msg.sessionId = r.u64();
    msg.steps = r.u64();
    requireDrained(r, "session-closed");
    return msg;
}

std::vector<uint8_t>
encodeFrame(FrameType type, const std::vector<uint8_t>& body)
{
    io::ByteWriter w;
    w.u32(kMagic);
    w.u32(static_cast<uint32_t>(type));
    w.u32(static_cast<uint32_t>(body.size()));
    w.bytes(body.data(), body.size());
    return w.buffer();
}

std::vector<uint8_t>
encodeErrorFrame(uint32_t id, WireErrorCode code,
                 const std::string& message)
{
    io::ByteWriter body;
    encodeError(body, {id, code, message});
    return encodeFrame(FrameType::Error, body.buffer());
}

ParseStatus
tryParseFrame(const uint8_t* data, size_t len, size_t maxFrameBytes,
              ParsedFrame& out, WireErrorCode& errCode,
              std::string& errMsg)
{
    if (len < kFrameHeaderBytes) {
        // Reject a wrong magic as soon as the bytes disagree — a
        // desynchronized or non-phi peer is detected on its first
        // bytes, not after it happens to send 12 of them.
        for (size_t i = 0; i < len && i < 4; ++i)
            if (data[i] != static_cast<uint8_t>(kMagic >> (8 * i))) {
                errCode = WireErrorCode::BadMagic;
                errMsg = "frame does not start with PHIW";
                return ParseStatus::Bad;
            }
        return ParseStatus::NeedMore;
    }

    io::ByteReader header(data, kFrameHeaderBytes);
    if (header.u32() != kMagic) {
        errCode = WireErrorCode::BadMagic;
        errMsg = "frame does not start with PHIW";
        return ParseStatus::Bad;
    }
    const uint32_t type = header.u32();
    const uint32_t bodyLen = header.u32();
    if (type < static_cast<uint32_t>(FrameType::Request) ||
        type > static_cast<uint32_t>(FrameType::SessionClosed)) {
        errCode = WireErrorCode::BadFrameType;
        errMsg = "unknown frame type " + std::to_string(type);
        return ParseStatus::Bad;
    }
    if (bodyLen > maxFrameBytes) {
        errCode = WireErrorCode::FrameTooLarge;
        errMsg = "frame body of " + std::to_string(bodyLen) +
                 " bytes exceeds the " + std::to_string(maxFrameBytes) +
                 "-byte limit";
        return ParseStatus::Bad;
    }
    if (len < kFrameHeaderBytes + bodyLen)
        return ParseStatus::NeedMore;

    out.type = static_cast<FrameType>(type);
    out.body = data + kFrameHeaderBytes;
    out.bodyLen = bodyLen;
    out.frameLen = kFrameHeaderBytes + bodyLen;
    return ParseStatus::Frame;
}

} // namespace phi::net
