#include "net/client.hh"

#include <cerrno>
#include <cstring>

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace phi::net
{

#ifdef __linux__

PhiClient::PhiClient(const std::string& host, uint16_t port,
                     uint64_t timeoutMs)
{
    sock = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (sock < 0)
        throw NetError(WireErrorCode::ConnectError,
                       std::string("socket(): ") +
                           std::strerror(errno));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(sock);
        sock = -1;
        throw NetError(WireErrorCode::ConnectError,
                       "bad host address: " + host);
    }
    if (::connect(sock, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        const std::string why = std::strerror(errno);
        ::close(sock);
        sock = -1;
        throw NetError(WireErrorCode::ConnectError,
                       "connect to " + host + ":" +
                           std::to_string(port) + ": " + why);
    }

    const int one = 1;
    ::setsockopt(sock, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (timeoutMs > 0) {
        timeval tv{};
        tv.tv_sec = static_cast<time_t>(timeoutMs / 1000);
        tv.tv_usec =
            static_cast<suseconds_t>((timeoutMs % 1000) * 1000);
        ::setsockopt(sock, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        ::setsockopt(sock, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
}

PhiClient::~PhiClient()
{
    close();
}

PhiClient::PhiClient(PhiClient&& other) noexcept
    : sock(other.sock), nextId(other.nextId)
{
    other.sock = -1;
}

PhiClient&
PhiClient::operator=(PhiClient&& other) noexcept
{
    if (this != &other) {
        close();
        sock = other.sock;
        nextId = other.nextId;
        other.sock = -1;
    }
    return *this;
}

void
PhiClient::close()
{
    if (sock >= 0) {
        ::close(sock);
        sock = -1;
    }
}

void
PhiClient::writeAll(const void* data, size_t len)
{
    if (sock < 0)
        throw NetError(WireErrorCode::ConnectionLost,
                       "socket is closed");
    const uint8_t* p = static_cast<const uint8_t*>(data);
    size_t off = 0;
    while (off < len) {
        const ssize_t n =
            ::send(sock, p + off, len - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            throw NetError(WireErrorCode::Timeout,
                           "write timed out");
        throw NetError(WireErrorCode::ConnectionLost,
                       std::string("write failed: ") +
                           std::strerror(errno));
    }
}

void
PhiClient::sendRaw(const void* data, size_t len)
{
    writeAll(data, len);
}

std::vector<uint8_t>
PhiClient::readFrame(FrameType& type)
{
    if (sock < 0)
        throw NetError(WireErrorCode::ConnectionLost,
                       "socket is closed");

    auto readExact = [&](uint8_t* dst, size_t n) {
        size_t off = 0;
        while (off < n) {
            const ssize_t r = ::recv(sock, dst + off, n - off, 0);
            if (r > 0) {
                off += static_cast<size_t>(r);
                continue;
            }
            if (r == 0)
                throw NetError(WireErrorCode::ConnectionLost,
                               "server closed the connection");
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                throw NetError(WireErrorCode::Timeout,
                               "read timed out waiting for a frame");
            throw NetError(WireErrorCode::ConnectionLost,
                           std::string("read failed: ") +
                               std::strerror(errno));
        }
    };

    uint8_t header[kFrameHeaderBytes];
    readExact(header, sizeof(header));

    io::ByteReader h(header, sizeof(header));
    if (h.u32() != kMagic)
        throw NetError(WireErrorCode::BadMagic,
                       "server reply does not start with PHIW");
    const uint32_t rawType = h.u32();
    const uint32_t bodyLen = h.u32();
    if (rawType < static_cast<uint32_t>(FrameType::Request) ||
        rawType > static_cast<uint32_t>(FrameType::SessionClosed))
        throw NetError(WireErrorCode::BadFrameType,
                       "server reply has unknown frame type " +
                           std::to_string(rawType));
    if (bodyLen > kDefaultMaxFrameBytes)
        throw NetError(WireErrorCode::FrameTooLarge,
                       "server reply frame is oversized");

    std::vector<uint8_t> body(bodyLen);
    if (bodyLen > 0)
        readExact(body.data(), bodyLen);
    type = static_cast<FrameType>(rawType);
    return body;
}

namespace
{

/** Rethrow one wire error as the exception its band promises. */
[[noreturn]] void
throwWireError(const WireError& err)
{
    if (auto engineCode = engineCodeOf(err.code))
        throw EngineError(*engineCode, err.message);
    if (err.code == WireErrorCode::IoFailure)
        throw io::IoError(err.message);
    throw NetError(err.code, err.message);
}

} // namespace

uint32_t
PhiClient::sendRequest(const WireRequest& req)
{
    WireRequest stamped = req;
    if (stamped.id == 0)
        stamped.id = nextId++;
    io::ByteWriter body;
    encodeRequest(body, stamped);
    const std::vector<uint8_t> frame =
        encodeFrame(FrameType::Request, body.buffer());
    writeAll(frame.data(), frame.size());
    return stamped.id;
}

WireReply
PhiClient::readReply()
{
    FrameType type;
    std::vector<uint8_t> body = readFrame(type);
    io::ByteReader r(body.data(), body.size());
    WireReply reply;
    try {
        if (type == FrameType::Response) {
            reply.ok = true;
            reply.response = decodeResponse(r);
            return reply;
        }
        if (type == FrameType::Error) {
            reply.error = decodeError(r);
            if (reply.error.id == 0)
                throwWireError(reply.error); // connection-level
            return reply;
        }
    } catch (const io::IoError& e) {
        // The *server's* reply failed to decode — that is a transport
        // fault, not a request-level error.
        throw NetError(WireErrorCode::MalformedFrame,
                       std::string("undecodable server reply: ") +
                           e.what());
    }
    throw NetError(WireErrorCode::BadFrameType,
                   "unexpected reply frame type");
}

WireResponse
PhiClient::request(const WireRequest& req)
{
    const uint32_t id = sendRequest(req);
    WireReply reply = readReply();
    if (!reply.ok)
        throwWireError(reply.error);
    if (reply.response.id != id)
        throw NetError(WireErrorCode::MalformedFrame,
                       "reply id " +
                           std::to_string(reply.response.id) +
                           " does not match request id " +
                           std::to_string(id));
    return std::move(reply.response);
}

WireResponse
PhiClient::request(const std::string& model, uint32_t layer,
                   const BinaryMatrix& acts)
{
    WireRequest req;
    req.model = model;
    req.layer = layer;
    req.acts = acts;
    return request(req);
}

std::vector<uint8_t>
PhiClient::roundTrip(FrameType sendType,
                     const std::vector<uint8_t>& body,
                     FrameType expect)
{
    const std::vector<uint8_t> frame = encodeFrame(sendType, body);
    writeAll(frame.data(), frame.size());

    FrameType type;
    std::vector<uint8_t> reply = readFrame(type);
    if (type == FrameType::Error) {
        io::ByteReader r(reply.data(), reply.size());
        WireError err;
        try {
            err = decodeError(r);
        } catch (const io::IoError& e) {
            throw NetError(WireErrorCode::MalformedFrame,
                           std::string("undecodable server reply: ") +
                               e.what());
        }
        throwWireError(err);
    }
    if (type != expect)
        throw NetError(WireErrorCode::BadFrameType,
                       "unexpected reply frame type");
    return reply;
}

WireSessionOpened
PhiClient::openSession(const std::string& model,
                       std::vector<LifParams> params)
{
    WireOpenSession msg;
    msg.id = nextId++;
    msg.model = model;
    msg.params = std::move(params);
    io::ByteWriter body;
    encodeOpenSession(body, msg);
    const std::vector<uint8_t> reply = roundTrip(
        FrameType::OpenSession, body.buffer(),
        FrameType::SessionOpened);
    io::ByteReader r(reply.data(), reply.size());
    WireSessionOpened out;
    try {
        out = decodeSessionOpened(r);
    } catch (const io::IoError& e) {
        throw NetError(WireErrorCode::MalformedFrame,
                       std::string("undecodable server reply: ") +
                           e.what());
    }
    if (out.id != msg.id)
        throw NetError(WireErrorCode::MalformedFrame,
                       "reply id " + std::to_string(out.id) +
                           " does not match request id " +
                           std::to_string(msg.id));
    return out;
}

WireSessionStepped
PhiClient::stepSession(uint64_t sessionId, const BinaryMatrix& frames)
{
    WireStepSession msg;
    msg.id = nextId++;
    msg.sessionId = sessionId;
    msg.frames = frames;
    io::ByteWriter body;
    encodeStepSession(body, msg);
    const std::vector<uint8_t> reply = roundTrip(
        FrameType::StepSession, body.buffer(),
        FrameType::SessionStepped);
    io::ByteReader r(reply.data(), reply.size());
    WireSessionStepped out;
    try {
        out = decodeSessionStepped(r);
    } catch (const io::IoError& e) {
        throw NetError(WireErrorCode::MalformedFrame,
                       std::string("undecodable server reply: ") +
                           e.what());
    }
    if (out.id != msg.id)
        throw NetError(WireErrorCode::MalformedFrame,
                       "reply id " + std::to_string(out.id) +
                           " does not match request id " +
                           std::to_string(msg.id));
    return out;
}

WireSessionClosed
PhiClient::closeSession(uint64_t sessionId)
{
    WireCloseSession msg;
    msg.id = nextId++;
    msg.sessionId = sessionId;
    io::ByteWriter body;
    encodeCloseSession(body, msg);
    const std::vector<uint8_t> reply = roundTrip(
        FrameType::CloseSession, body.buffer(),
        FrameType::SessionClosed);
    io::ByteReader r(reply.data(), reply.size());
    WireSessionClosed out;
    try {
        out = decodeSessionClosed(r);
    } catch (const io::IoError& e) {
        throw NetError(WireErrorCode::MalformedFrame,
                       std::string("undecodable server reply: ") +
                           e.what());
    }
    if (out.id != msg.id)
        throw NetError(WireErrorCode::MalformedFrame,
                       "reply id " + std::to_string(out.id) +
                           " does not match request id " +
                           std::to_string(msg.id));
    return out;
}

std::string
PhiClient::statsText()
{
    const std::vector<uint8_t> frame =
        encodeFrame(FrameType::StatsRequest, {});
    writeAll(frame.data(), frame.size());
    FrameType type;
    std::vector<uint8_t> body = readFrame(type);
    io::ByteReader r(body.data(), body.size());
    if (type == FrameType::Error)
        throwWireError(decodeError(r));
    if (type != FrameType::StatsReply)
        throw NetError(WireErrorCode::BadFrameType,
                       "unexpected reply to StatsRequest");
    return r.str();
}

#else // !__linux__

PhiClient::PhiClient(const std::string&, uint16_t, uint64_t)
{
    throw NetError(WireErrorCode::ConnectError,
                   "PhiClient requires Linux");
}

PhiClient::~PhiClient() = default;
PhiClient::PhiClient(PhiClient&& other) noexcept : sock(other.sock) {}
PhiClient&
PhiClient::operator=(PhiClient&&) noexcept
{
    return *this;
}
void PhiClient::close() {}
void PhiClient::writeAll(const void*, size_t) {}
void PhiClient::sendRaw(const void*, size_t) {}
std::vector<uint8_t> PhiClient::readFrame(FrameType&) { return {}; }
uint32_t PhiClient::sendRequest(const WireRequest&) { return 0; }
WireReply PhiClient::readReply() { return {}; }
WireResponse PhiClient::request(const WireRequest&) { return {}; }
WireResponse
PhiClient::request(const std::string&, uint32_t, const BinaryMatrix&)
{
    return {};
}
std::string PhiClient::statsText() { return {}; }
std::vector<uint8_t>
PhiClient::roundTrip(FrameType, const std::vector<uint8_t>&, FrameType)
{
    return {};
}
WireSessionOpened
PhiClient::openSession(const std::string&, std::vector<LifParams>)
{
    return {};
}
WireSessionStepped PhiClient::stepSession(uint64_t, const BinaryMatrix&)
{
    return {};
}
WireSessionClosed PhiClient::closeSession(uint64_t) { return {}; }

#endif // __linux__

} // namespace phi::net
