/**
 * @file
 * PhiClient: a blocking wire-protocol client for PhiServer. One
 * connection, synchronous request()/response by default, with
 * explicit sendRequest()/readReply() halves for pipelining many
 * requests down one socket.
 *
 * Error transparency is the design center: a failure reported by the
 * server crosses the wire as a typed Error frame, and the client
 * rethrows it as the exception an *in-process* caller of
 * AsyncPhiEngine would have seen — EngineError for the engine band,
 * io::IoError for the artifact band, NetError only for the
 * protocol/transport band that has no in-process equivalent. Code
 * written against the engine ports to the wire without changing a
 * catch block.
 */

#ifndef PHI_NET_CLIENT_HH
#define PHI_NET_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.hh"

namespace phi::net
{

/** Reply to one pipelined request: a response or a typed error,
 *  correlated by the request id the client chose. */
struct WireReply
{
    bool ok = false;
    WireResponse response; // valid when ok
    WireError error;       // valid when !ok
};

class PhiClient
{
  public:
    /**
     * Connect to a PhiServer. @throws NetError (ConnectError) when
     * the server is unreachable. @p timeoutMs bounds every subsequent
     * blocking read/write on the socket (0 = no bound); an expired
     * bound surfaces as NetError (Timeout).
     */
    PhiClient(const std::string& host, uint16_t port,
              uint64_t timeoutMs = 30'000);

    ~PhiClient();

    PhiClient(PhiClient&& other) noexcept;
    PhiClient& operator=(PhiClient&& other) noexcept;
    PhiClient(const PhiClient&) = delete;
    PhiClient& operator=(const PhiClient&) = delete;

    /**
     * Serve one request synchronously. Fills in req.id when it is 0.
     * @throws EngineError / io::IoError / NetError by wire-error band
     * (see the file comment); returns the response otherwise.
     */
    WireResponse request(const WireRequest& req);

    /** Convenience: route {model, layer, acts} with default options. */
    WireResponse request(const std::string& model, uint32_t layer,
                         const BinaryMatrix& acts);

    /** Pipelining half 1: write one Request frame; returns the id the
     *  reply will carry. Does not wait for the reply. */
    uint32_t sendRequest(const WireRequest& req);

    /** Pipelining half 2: read the next Response/Error frame. Unlike
     *  request(), a request-level error is *returned*, not thrown, so
     *  a pipeline can account per-request failures; connection-level
     *  failures (id 0) and transport errors still throw. */
    WireReply readReply();

    /** Fetch the server's plaintext metrics via a StatsRequest frame. */
    std::string statsText();

    // ---- stateful sessions ------------------------------------------
    // Synchronous session verbs (runtime/session.hh over the wire).
    // The session id is server-scoped: it stays valid across
    // reconnects, so a client may close its socket, reconnect, and
    // keep stepping the same session. Typed failures rethrow by band
    // exactly like request() — e.g. EngineError(SessionExpired).

    /**
     * Open a session against @p model's current version. @p params is
     * the per-layer LIF configuration (empty = server defaults). The
     * reply reports the pinned epoch and layer count.
     */
    WireSessionOpened openSession(const std::string& model,
                                  std::vector<LifParams> params = {});

    /** Stream T x K spike frames into a session; returns the final
     *  layer's T x N spikes and the global index of frame 0. */
    WireSessionStepped stepSession(uint64_t sessionId,
                                   const BinaryMatrix& frames);

    /** Close a session; returns the total steps it served. */
    WireSessionClosed closeSession(uint64_t sessionId);

    /**
     * The raw socket fd — for tests that need to misbehave: send
     * truncated garbage, half-close, or disconnect mid-request.
     */
    int fd() const { return sock; }

    /** Close the socket now (idempotent). Subsequent calls throw
     *  NetError (ConnectionLost). */
    void close();

    /** Escape hatch for protocol-hardening tests: write raw bytes to
     *  the socket, bypassing the codec. */
    void sendRaw(const void* data, size_t len);

  private:
    std::vector<uint8_t> readFrame(FrameType& type);
    void writeAll(const void* data, size_t len);
    /** Send one frame, read one reply: an Error frame rethrows by
     *  band, any type other than @p expect throws BadFrameType. */
    std::vector<uint8_t> roundTrip(FrameType sendType,
                                   const std::vector<uint8_t>& body,
                                   FrameType expect);

    int sock = -1;
    uint32_t nextId = 1;
};

} // namespace phi::net

#endif // PHI_NET_CLIENT_HH
