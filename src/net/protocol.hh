/**
 * @file
 * The phi wire protocol: a length-prefixed binary framing for serving
 * requests over TCP, plus the typed error taxonomy a client sees.
 *
 * Every frame is
 *
 *     +--------+--------+---------+----------------+
 *     | magic  | type   | bodyLen | body (bodyLen) |
 *     | u32 LE | u32 LE | u32 LE  |                |
 *     +--------+--------+---------+----------------+
 *
 * with magic = "PHIW" (0x57494850 little-endian) and bodyLen bounded
 * by the server's maxFrameBytes. Frame bodies reuse the artifact
 * format's ByteWriter/ByteReader primitives (io/serialize.hh), so the
 * wire is endian-stable and every decode is bounds-checked: a lying
 * length field or truncated body is a typed rejection, never a read
 * off the end of a buffer.
 *
 * Frame types:
 *  - Request:  {id, model, version, layer, deadlineMs, priority,
 *               activations} — one serving request. The deadline is
 *               carried as a relative budget in milliseconds (0 =
 *               none) and anchored to the server's clock on receipt,
 *               so client/server clock skew never expires a request.
 *  - Response: {id, model@version that served it, layer, int32 out}.
 *  - Error:    {id, WireErrorCode, message} — the typed failure of
 *               exactly one request (or id 0 for connection-level
 *               protocol errors).
 *  - StatsRequest/StatsReply: plaintext metrics. The same text is
 *               also served to a bare "STATS\n" line, so an operator
 *               can `echo STATS | nc host port` without a phi client.
 *
 * Error taxonomy: WireErrorCode carries three bands — protocol-level
 * codes (framing, timeouts, overload of the connection itself),
 * engine-level codes mirroring every EngineErrorCode one-for-one, and
 * an artifact band for io::IoError. PhiClient rethrows each band as
 * the exception type an in-process caller would have seen (EngineError
 * / io::IoError / NetError), so code written against AsyncPhiEngine
 * ports to the wire without changing its error handling.
 */

#ifndef PHI_NET_PROTOCOL_HH
#define PHI_NET_PROTOCOL_HH

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.hh"
#include "io/serialize.hh"
#include "numeric/binary_matrix.hh"
#include "numeric/matrix.hh"
#include "snn/lif.hh"

namespace phi::net
{

/** "PHIW" when read as little-endian bytes off the wire. */
inline constexpr uint32_t kMagic = 0x57494850u;

/** Bytes of {magic, type, bodyLen}. */
inline constexpr size_t kFrameHeaderBytes = 12;

/** Default ceiling on one frame's body; servers may configure lower.
 *  Anything larger is rejected before a byte of body is buffered. */
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

enum class FrameType : uint32_t
{
    Request = 1,
    Response = 2,
    Error = 3,
    StatsRequest = 4,
    StatsReply = 5,
    // -- stateful sessions (runtime/session.hh) ----------------------
    OpenSession = 6,    // {id, model, per-layer LifParams}
    StepSession = 7,    // {id, sessionId, T x K spike frames}
    CloseSession = 8,   // {id, sessionId}
    SessionOpened = 9,  // {id, sessionId, model@version, layers}
    SessionStepped = 10, // {id, sessionId, firstStep, T x N spikes}
    SessionClosed = 11, // {id, sessionId, steps served}
};

/**
 * Typed wire failure. Three bands, so the client can rethrow the
 * exception an in-process caller would have seen:
 *   1..99    protocol/transport — surfaces as NetError
 *   100..199 engine — mirrors EngineErrorCode, surfaces as EngineError
 *   200..299 artifact — surfaces as io::IoError
 */
enum class WireErrorCode : uint16_t
{
    // -- protocol/transport band --------------------------------------
    BadMagic = 1,        // frame header does not start with "PHIW"
    BadFrameType = 2,    // header type is not one a client may send
    FrameTooLarge = 3,   // bodyLen exceeds the server's maxFrameBytes
    MalformedFrame = 4,  // body failed bounds-checked decoding
    ConnectionLost = 5,  // peer vanished mid-exchange
    Timeout = 6,         // read/write deadline expired
    ServerDraining = 7,  // request arrived after SIGTERM drain began
    WriteOverflow = 8,   // slow client: per-connection write cap hit
    ConnectError = 9,    // client could not reach the server
    TooManyConnections = 10, // server at its connection cap

    // -- engine band: EngineErrorCode, one-for-one --------------------
    EmptyModel = 100,
    InvalidLayer = 101,
    MissingWeights = 102,
    ShapeMismatch = 103,
    NullActivation = 104,
    PendingRequests = 105,
    QueueFull = 106,
    Stopped = 107,
    UnknownModel = 108,
    ModelExists = 109,
    ModelBusy = 110,
    DeadlineExceeded = 111,
    Internal = 112,
    SessionNotFound = 113,
    SessionExpired = 114,
    TooManySessions = 115,

    // -- artifact band ------------------------------------------------
    IoFailure = 200,
};

const char* wireErrorCodeName(WireErrorCode code);

/** The wire code an EngineError crosses the socket as (exhaustive —
 *  every EngineErrorCode has exactly one wire image). */
WireErrorCode wireCode(EngineErrorCode code);

/** Inverse of wireCode(); nullopt for non-engine bands. */
std::optional<EngineErrorCode> engineCodeOf(WireErrorCode code);

inline std::ostream&
operator<<(std::ostream& os, WireErrorCode code)
{
    return os << wireErrorCodeName(code);
}

/**
 * A protocol/transport-level failure: the connection, not the
 * request, went wrong. Engine-band wire errors surface as EngineError
 * and artifact-band ones as io::IoError instead — this class is only
 * for the band neither of those covers.
 */
class NetError : public std::runtime_error
{
  public:
    NetError(WireErrorCode code, const std::string& what)
        : std::runtime_error(std::string("phi net error [") +
                             wireErrorCodeName(code) + "]: " + what),
          errorCode(code)
    {
    }

    WireErrorCode code() const { return errorCode; }
    const char* codeName() const { return wireErrorCodeName(errorCode); }

  private:
    WireErrorCode errorCode;
};

/** One serving request as it crosses the wire. */
struct WireRequest
{
    /** Client-chosen correlation id, echoed by the response (or the
     *  error) so pipelined requests can be matched up. */
    uint32_t id = 0;

    std::string model;

    /**
     * Advisory: the version the client last saw. Routing follows the
     * registry's hot-swap contract — the name's *current* version
     * serves, and the response reports which one that was.
     */
    uint64_t version = 0;

    uint32_t layer = 0;

    /** Relative deadline budget, ms; 0 = serve whenever. Anchored to
     *  the server's steady clock at frame receipt. */
    uint32_t deadlineMs = 0;

    int32_t priority = 0;

    BinaryMatrix acts;
};

/** One served result as it crosses the wire. */
struct WireResponse
{
    uint32_t id = 0;
    std::string model;   // name that served
    uint64_t version = 0; // exact version that served
    uint32_t layer = 0;
    Matrix<int32_t> out;
};

/** One typed failure as it crosses the wire. */
struct WireError
{
    uint32_t id = 0; // 0 = connection-level, not tied to a request
    WireErrorCode code = WireErrorCode::MalformedFrame;
    std::string message;
};

// ---- stateful-session frames ----------------------------------------
// A session is opened against a model name, streamed spike frames
// (each StepSession carries T timesteps of layer-0 input; the server
// answers with the final layer's T x N spikes), and closed. The
// session id is server-assigned and scoped to the *server*, not the
// connection — it stays valid across reconnects until closed or
// evicted by the idle TTL.

/** Open a session against @p model's current version. */
struct WireOpenSession
{
    uint32_t id = 0; // correlation id, echoed by SessionOpened/Error
    std::string model;
    /** LIF dynamics per layer; empty = server defaults for every
     *  layer, otherwise exactly one entry per model layer. */
    std::vector<LifParams> params;
};

/** Server's answer to OpenSession. */
struct WireSessionOpened
{
    uint32_t id = 0;
    uint64_t sessionId = 0;
    std::string model;    // name the session serves
    uint64_t version = 0; // exact epoch pinned for its lifetime
    uint32_t layers = 0;  // depth of the temporal forward
};

/** Stream T timesteps of layer-0 spike input into a session. */
struct WireStepSession
{
    uint32_t id = 0;
    uint64_t sessionId = 0;
    /** T x K: row t is the spike frame of timestep firstStep + t. */
    BinaryMatrix frames;
};

/** Server's answer to StepSession: the last layer's spike raster. */
struct WireSessionStepped
{
    uint32_t id = 0;
    uint64_t sessionId = 0;
    /** Global timestep index of row 0 of `spikes`. */
    uint64_t firstStep = 0;
    BinaryMatrix spikes; // T x N
};

struct WireCloseSession
{
    uint32_t id = 0;
    uint64_t sessionId = 0;
};

struct WireSessionClosed
{
    uint32_t id = 0;
    uint64_t sessionId = 0;
    uint64_t steps = 0; // temporal steps the session served in total
};

// ---- body codecs ----------------------------------------------------
// Encoders append to a ByteWriter; decoders read from a bounds-checked
// ByteReader and throw io::IoError on truncated/corrupt bodies (the
// server converts that into a MalformedFrame wire error).

void encodeRequest(io::ByteWriter& w, const WireRequest& req);
WireRequest decodeRequest(io::ByteReader& r);

void encodeResponse(io::ByteWriter& w, const WireResponse& resp);
WireResponse decodeResponse(io::ByteReader& r);

void encodeError(io::ByteWriter& w, const WireError& err);
WireError decodeError(io::ByteReader& r);

void encodeOpenSession(io::ByteWriter& w, const WireOpenSession& msg);
WireOpenSession decodeOpenSession(io::ByteReader& r);

void encodeSessionOpened(io::ByteWriter& w,
                         const WireSessionOpened& msg);
WireSessionOpened decodeSessionOpened(io::ByteReader& r);

void encodeStepSession(io::ByteWriter& w, const WireStepSession& msg);
WireStepSession decodeStepSession(io::ByteReader& r);

void encodeSessionStepped(io::ByteWriter& w,
                          const WireSessionStepped& msg);
WireSessionStepped decodeSessionStepped(io::ByteReader& r);

void encodeCloseSession(io::ByteWriter& w, const WireCloseSession& msg);
WireCloseSession decodeCloseSession(io::ByteReader& r);

void encodeSessionClosed(io::ByteWriter& w,
                         const WireSessionClosed& msg);
WireSessionClosed decodeSessionClosed(io::ByteReader& r);

/** A complete frame (header + body) ready to write to a socket. */
std::vector<uint8_t> encodeFrame(FrameType type,
                                 const std::vector<uint8_t>& body);

/** Convenience: a whole Error frame in one call. */
std::vector<uint8_t> encodeErrorFrame(uint32_t id, WireErrorCode code,
                                      const std::string& message);

// ---- incremental frame parsing --------------------------------------

/** Outcome of trying to parse one frame off a byte stream. */
enum class ParseStatus
{
    NeedMore, // header or body not fully buffered yet
    Frame,    // one complete frame parsed
    Bad,      // unrecoverable framing error (desynchronized stream)
};

/** A parsed frame, viewing (not owning) the input buffer. */
struct ParsedFrame
{
    FrameType type = FrameType::Request;
    const uint8_t* body = nullptr;
    size_t bodyLen = 0;
    size_t frameLen = 0; // header + body bytes consumed
};

/**
 * Try to parse one frame from @p data. On Bad, @p errCode/@p errMsg
 * name the violation; the stream cannot be resynchronized (the length
 * prefix itself is untrustworthy), so the connection must be closed
 * after reporting the error. NeedMore with a sane header is the
 * normal partial-read case.
 */
ParseStatus tryParseFrame(const uint8_t* data, size_t len,
                          size_t maxFrameBytes, ParsedFrame& out,
                          WireErrorCode& errCode, std::string& errMsg);

} // namespace phi::net

#endif // PHI_NET_PROTOCOL_HH
