#include "net/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/failpoint.hh"

#ifdef __linux__
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace phi::net
{

/**
 * Per-connection state. Owned by the net thread; only `outbox`,
 * `outboxBytes` and `inFlight` are shared with the completion thread
 * (under PhiServer::stateMutex).
 */
struct PhiServer::Connection
{
    int fd = -1;
    uint64_t id = 0;

    /** Unparsed inbound bytes (grows only to one frame + readahead —
     *  bounded by maxFrameBytes via the parser's early rejection). */
    std::vector<uint8_t> rbuf;

    /** Outbound bytes the socket has not accepted yet. */
    std::vector<uint8_t> wbuf;
    size_t woff = 0;

    /** Frames serialized by the completion thread, awaiting the net
     *  thread's pickup. Guarded by stateMutex. */
    std::deque<std::vector<uint8_t>> outbox;
    size_t outboxBytes = 0; // guarded by stateMutex

    /** Requests submitted from this connection whose response has not
     *  been queued yet. Guarded by stateMutex. */
    size_t inFlight = 0;

    /** Close once wbuf+outbox flush (protocol violation, STATS-by-nc,
     *  or drain). */
    bool closeAfterFlush = false;

    bool wantWrite = false; // EPOLLOUT currently armed

    Clock::time_point lastActivity{};
    /** When the currently-buffered partial frame started arriving
     *  (zeroed at every frame boundary). */
    Clock::time_point partialSince{};
    /** Last instant the socket accepted outbound bytes while more were
     *  pending. */
    Clock::time_point writeStalledSince{};
};

PhiServer::PhiServer(std::shared_ptr<ModelRegistry> registry,
                     ExecutionConfig exec,
                     AsyncEngineConfig engineConfig,
                     PhiServerConfig serverCfg)
    : asyncEngine(std::move(registry), exec, engineConfig),
      serverConfig(std::move(serverCfg)),
      sessionManager(asyncEngine, serverConfig.sessionConfig)
{
}

PhiServer::~PhiServer()
{
    stop();
}

#ifdef __linux__

namespace
{

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

void
PhiServer::start()
{
    MutexLock lifecycle(lifecycleMutex);
    if (started.load())
        throw NetError(WireErrorCode::ConnectError,
                       "start() on an already-started server");

    listenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd < 0)
        throw NetError(WireErrorCode::ConnectError,
                       std::string("socket(): ") + std::strerror(errno));

    const int one = 1;
    ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(serverConfig.port);
    if (::inet_pton(AF_INET, serverConfig.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        ::close(listenFd);
        listenFd = -1;
        throw NetError(WireErrorCode::ConnectError,
                       "bad bind address: " + serverConfig.bindAddress);
    }
    if (::bind(listenFd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, serverConfig.listenBacklog) != 0) {
        const std::string why = std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        throw NetError(WireErrorCode::ConnectError,
                       "bind/listen on " + serverConfig.bindAddress +
                           ": " + why);
    }

    sockaddr_in bound{};
    socklen_t boundLen = sizeof(bound);
    ::getsockname(listenFd, reinterpret_cast<sockaddr*>(&bound),
                  &boundLen);
    boundPort = ntohs(bound.sin_port);

    setNonBlocking(listenFd);

    epollFd = ::epoll_create1(EPOLL_CLOEXEC);
    wakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (epollFd < 0 || wakeFd < 0) {
        const std::string why = std::strerror(errno);
        ::close(listenFd);
        if (epollFd >= 0) ::close(epollFd);
        if (wakeFd >= 0) ::close(wakeFd);
        listenFd = epollFd = wakeFd = -1;
        throw NetError(WireErrorCode::ConnectError,
                       "epoll/eventfd setup failed: " + why);
    }

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd;
    ::epoll_ctl(epollFd, EPOLL_CTL_ADD, listenFd, &ev);
    ev.data.fd = wakeFd;
    ::epoll_ctl(epollFd, EPOLL_CTL_ADD, wakeFd, &ev);

    started.store(true);
    loopRunning.store(true);
    netThread = std::thread(&PhiServer::netLoop, this);
    completionThread = std::thread(&PhiServer::completionLoop, this);
}

uint16_t
PhiServer::port() const
{
    return boundPort;
}

void
PhiServer::requestDrain()
{
    // Async-signal-safe by construction: one relaxed-compatible atomic
    // store and one eventfd write(2). No locks, no allocation.
    drainRequested.store(true);
    if (wakeFd >= 0) {
        const uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakeFd, &one, sizeof(one));
    }
}

void
PhiServer::stop()
{
    stopRequested.store(true);
    if (wakeFd >= 0) {
        const uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakeFd, &one, sizeof(one));
    }
    waitUntilStopped();
}

void
PhiServer::waitUntilStopped()
{
    MutexLock lifecycle(lifecycleMutex);
    if (netThread.joinable())
        netThread.join();
    // The net loop set completionStop on its way out; the completion
    // thread consumes every remaining future (no response is ever
    // silently un-got) and exits.
    if (completionThread.joinable())
        completionThread.join();
    if (epollFd >= 0) { ::close(epollFd); epollFd = -1; }
    if (wakeFd >= 0) { ::close(wakeFd); wakeFd = -1; }
}

bool
PhiServer::running() const
{
    return loopRunning.load();
}

bool
PhiServer::draining() const
{
    return drainingFlag.load();
}

size_t
PhiServer::connectionCount() const
{
    MutexLock lock(stateMutex);
    return connsById.size();
}

ServerCounters
PhiServer::counters() const
{
    MutexLock lock(stateMutex);
    return stats;
}

std::string
PhiServer::statsText() const
{
    const ServerCounters c = counters();
    std::ostringstream os;
    os << "phi-server\n";
    os << "connections " << connectionCount() << "\n";
    os << "accepted " << c.accepted << "\n";
    os << "closed " << c.closed << "\n";
    os << "requests " << c.requests << "\n";
    os << "responses " << c.responses << "\n";
    os << "wire_errors " << c.wireErrors << "\n";
    os << "protocol_errors " << c.protocolErrors << "\n";
    os << "timeouts " << c.timeouts << "\n";
    os << "slow_client_drops " << c.slowClientDrops << "\n";
    os << "accept_failures " << c.acceptFailures << "\n";
    os << "read_failures " << c.readFailures << "\n";
    os << "write_failures " << c.writeFailures << "\n";
    os << "drain_rejected " << c.drainRejected << "\n";
    os << "stats_served " << c.statsServed << "\n";
    os << "session_opens " << c.sessionOpens << "\n";
    os << "session_closes " << c.sessionCloses << "\n";
    os << "session_step_frames " << c.sessionStepFrames << "\n";
    os << "sessions_snapshotted " << c.sessionsSnapshotted << "\n";
    const ServingStats sess = sessionManager.stats();
    os << "sessions_open " << sess.activeSessions() << "\n";
    os << "sessions_opened " << sess.sessionsOpened << "\n";
    os << "sessions_closed " << sess.sessionsClosed << "\n";
    os << "sessions_expired " << sess.sessionsExpired << "\n";
    os << "sessions_rejected " << sess.sessionsRejected << "\n";
    os << "session_steps " << sess.sessionSteps << "\n";
    const ServingStats merged = asyncEngine.stats();
    os << "engine_requests " << merged.requests << "\n";
    os << "engine_expired " << merged.expired << "\n";
    os << "engine_shed " << merged.shed << "\n";
    os << "engine_rejected " << merged.rejected << "\n";
    os << "engine_watchdog_restarts " << merged.watchdogRestarts
       << "\n";
    for (const auto& [name, s] : asyncEngine.perModelStats()) {
        os << "model " << name << " requests " << s.requests
           << " rows " << s.rows << " p50_ms "
           << s.latencyPercentileMs(50) << " p99_ms "
           << s.latencyPercentileMs(99) << " expired " << s.expired
           << " shed " << s.shed << "\n";
    }
    os << "end\n";
    return os.str();
}

// ---- net thread -----------------------------------------------------

void
PhiServer::netLoop()
{
    std::vector<epoll_event> events(64);
    while (true) {
        if (stopRequested.load())
            break;
        if (drainRequested.load() && !drainingFlag.load())
            beginDrain();
        if (drainingFlag.load()) {
            if (drainComplete())
                break;
            if (Clock::now() >= drainDeadline) {
                // Laggards (slow readers, clients that never close)
                // must not hold SIGTERM hostage.
                closeAllConnections();
                break;
            }
        }

        const int timeoutMs =
            static_cast<int>(nextTimeoutMs(Clock::now()));
        const int n = ::epoll_wait(epollFd, events.data(),
                                   static_cast<int>(events.size()),
                                   timeoutMs);
        if (n < 0 && errno != EINTR)
            break;

        for (int i = 0; i < std::max(n, 0); ++i) {
            const int fd = events[i].data.fd;
            if (fd == wakeFd) {
                uint64_t drainCount = 0;
                [[maybe_unused]] ssize_t r =
                    ::read(wakeFd, &drainCount, sizeof(drainCount));
                continue;
            }
            if (fd == listenFd) {
                acceptPending();
                continue;
            }
            auto it = connsByFd.find(fd);
            if (it == connsByFd.end())
                continue;
            Connection& conn = *it->second;
            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                closeConnection(conn.id);
                continue;
            }
            if (events[i].events & EPOLLIN)
                handleReadable(conn);
            // handleReadable may have closed the connection.
            auto again = connsByFd.find(fd);
            if (again != connsByFd.end() &&
                (events[i].events & EPOLLOUT))
                flushWrites(*again->second);
        }

        // Move completion-thread results into write buffers and push
        // them at the sockets.
        deliverOutboxes();
        sweepTimeouts(Clock::now());
    }

    closeAllConnections();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }

    // Graceful drain persists (or closes) the stateful sessions; a
    // hard stop() drops them, matching its everything-now contract —
    // the manager's own shutdown still fails queued steps typed.
    if (drainRequested.load() && !stopRequested.load())
        finishSessionsForDrain();

    {
        MutexLock lock(completionMutex);
        completionStop = true;
    }
    completionCv.notify_all();
    drainingFlag.store(false);
    loopRunning.store(false);
}

void
PhiServer::acceptPending()
{
    while (true) {
        sockaddr_in peer{};
        socklen_t peerLen = sizeof(peer);
        const int fd =
            ::accept4(listenFd, reinterpret_cast<sockaddr*>(&peer),
                      &peerLen, SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0)
            return; // EAGAIN or a transient error: retried on next wake

        bool injected = false;
        PHI_FAILPOINT(failpoint::sites::kNetAccept, injected = true);
        if (injected) {
            // The accept path failed: the client sees its freshly
            // established connection reset, exactly as if accept(2)
            // had errored after the handshake.
            ::close(fd);
            MutexLock lock(stateMutex);
            ++stats.acceptFailures;
            continue;
        }

        if (drainingFlag.load() || drainRequested.load()) {
            ::close(fd);
            continue;
        }

        bool atCapacity;
        {
            MutexLock lock(stateMutex);
            atCapacity = connsById.size() >= serverConfig.maxConnections;
        }
        if (atCapacity) {
            // Tell the client why before hanging up: a typed
            // TooManyConnections beats a silent RST. Best effort — the
            // fd is non-blocking and we will not queue for a stranger.
            const std::vector<uint8_t> frame = encodeErrorFrame(
                0, WireErrorCode::TooManyConnections,
                "server is at its connection limit");
            [[maybe_unused]] ssize_t n =
                ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
            ::close(fd);
            continue;
        }

        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conn->id = nextConnId++;
        conn->lastActivity = Clock::now();

        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev);

        {
            MutexLock lock(stateMutex);
            connsById[conn->id] = conn.get();
            ++stats.accepted;
        }
        connsByFd[fd] = std::move(conn);
    }
}

void
PhiServer::handleReadable(Connection& conn)
{
    bool injected = false;
    PHI_FAILPOINT(failpoint::sites::kNetRead, injected = true);
    if (injected) {
        // Read path failure: report it typed if the socket still
        // accepts bytes, then hang up — the stream position is gone.
        MutexLock lock(stateMutex);
        ++stats.readFailures;
        conn.closeAfterFlush = true;
        conn.outbox.push_back(encodeErrorFrame(
            0, WireErrorCode::ConnectionLost,
            "server read failure; closing connection"));
        conn.outboxBytes += conn.outbox.back().size();
        return;
    }

    uint8_t chunk[64 * 1024];
    bool peerClosed = false;
    while (true) {
        const ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
        if (n > 0) {
            conn.rbuf.insert(conn.rbuf.end(), chunk, chunk + n);
            conn.lastActivity = Clock::now();
            if (conn.partialSince == Clock::time_point{})
                conn.partialSince = conn.lastActivity;
            continue;
        }
        if (n == 0) {
            peerClosed = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        peerClosed = true; // genuine read error: treat as lost peer
        break;
    }

    if (!conn.rbuf.empty())
        processBuffer(conn);

    if (peerClosed) {
        // A half-closed peer that still has responses in flight gets
        // them flushed (TCP allows it); one with nothing pending is
        // just gone. Either way no new frames can arrive.
        bool idle;
        {
            MutexLock lock(stateMutex);
            idle = conn.inFlight == 0 && conn.outbox.empty();
        }
        if (idle && conn.wbuf.size() == conn.woff)
            closeConnection(conn.id);
        else
            conn.closeAfterFlush = true;
    }
}

void
PhiServer::processBuffer(Connection& conn)
{
    static const std::string kStatsVerb = "STATS";
    size_t consumed = 0;
    while (consumed < conn.rbuf.size()) {
        const uint8_t* data = conn.rbuf.data() + consumed;
        const size_t len = conn.rbuf.size() - consumed;

        // The operator escape hatch: a bare "STATS" line at a frame
        // boundary serves plaintext metrics and closes, so
        // `echo STATS | nc host port` works without a phi client.
        if (data[0] == 'S') {
            const size_t cmp = std::min(len, kStatsVerb.size());
            if (std::memcmp(data, kStatsVerb.data(), cmp) != 0) {
                // Not the verb: fall through to the frame parser,
                // which rejects it as BadMagic.
            } else if (len <= kStatsVerb.size()) {
                break; // "STA..." — need the rest of the line
            } else {
                size_t eol = kStatsVerb.size();
                if (data[eol] == '\r' && eol + 1 < len)
                    ++eol;
                if (data[eol] == '\n') {
                    const std::string text = statsText();
                    {
                        MutexLock lock(stateMutex);
                        ++stats.statsServed;
                        conn.outbox.emplace_back(text.begin(),
                                                 text.end());
                        conn.outboxBytes += text.size();
                    }
                    conn.closeAfterFlush = true;
                    consumed += eol + 1;
                    continue;
                }
            }
        }

        ParsedFrame frame;
        WireErrorCode errCode = WireErrorCode::MalformedFrame;
        std::string errMsg;
        const ParseStatus st = tryParseFrame(
            data, len, serverConfig.maxFrameBytes, frame, errCode,
            errMsg);
        if (st == ParseStatus::NeedMore)
            break;
        if (st == ParseStatus::Bad) {
            // The length prefix can no longer be trusted: report the
            // violation typed, then close this one connection. The
            // rest of the pool never notices.
            MutexLock lock(stateMutex);
            ++stats.protocolErrors;
            ++stats.wireErrors;
            conn.outbox.push_back(
                encodeErrorFrame(0, errCode, errMsg));
            conn.outboxBytes += conn.outbox.back().size();
            conn.closeAfterFlush = true;
            consumed = conn.rbuf.size(); // discard the poisoned tail
            break;
        }

        if (!handleRequestFrame(conn, frame)) {
            consumed = conn.rbuf.size();
            break;
        }
        consumed += frame.frameLen;
    }

    conn.rbuf.erase(conn.rbuf.begin(),
                    conn.rbuf.begin() +
                        static_cast<std::ptrdiff_t>(consumed));
    // A frame boundary resets the partial-frame stall clock.
    conn.partialSince = conn.rbuf.empty() ? Clock::time_point{}
                                          : Clock::now();
}

bool
PhiServer::handleRequestFrame(Connection& conn,
                              const ParsedFrame& frame)
{
    if (frame.type == FrameType::StatsRequest) {
        const std::string text = statsText();
        io::ByteWriter body;
        body.str(text);
        MutexLock lock(stateMutex);
        ++stats.statsServed;
        conn.outbox.push_back(
            encodeFrame(FrameType::StatsReply, body.buffer()));
        conn.outboxBytes += conn.outbox.back().size();
        return true;
    }

    if (frame.type == FrameType::OpenSession ||
        frame.type == FrameType::StepSession ||
        frame.type == FrameType::CloseSession) {
        handleSessionFrame(conn, frame);
        return true;
    }

    if (frame.type != FrameType::Request) {
        // Cleanly framed, but not something a client may send
        // (Response/Error/StatsReply are server-to-client). The
        // framing is intact, so the connection survives.
        MutexLock lock(stateMutex);
        ++stats.protocolErrors;
        ++stats.wireErrors;
        conn.outbox.push_back(encodeErrorFrame(
            0, WireErrorCode::BadFrameType,
            "clients may not send this frame type"));
        conn.outboxBytes += conn.outbox.back().size();
        return true;
    }

    WireRequest req;
    try {
        io::ByteReader body(frame.body, frame.bodyLen);
        req = decodeRequest(body);
    } catch (const io::IoError& e) {
        // The frame was well-delimited but its body lies. This is a
        // per-request failure, not a stream desync: reject it typed
        // and keep serving the connection.
        MutexLock lock(stateMutex);
        ++stats.protocolErrors;
        ++stats.wireErrors;
        conn.outbox.push_back(encodeErrorFrame(
            0, WireErrorCode::MalformedFrame, e.what()));
        conn.outboxBytes += conn.outbox.back().size();
        return true;
    }

    // The drain gate reads the *request* flag, not the loop's observed
    // state: once requestDrain() has returned, no request parsed
    // afterwards is ever admitted — deterministically.
    if (drainRequested.load() || drainingFlag.load()) {
        MutexLock lock(stateMutex);
        ++stats.drainRejected;
        ++stats.wireErrors;
        conn.outbox.push_back(encodeErrorFrame(
            req.id, WireErrorCode::ServerDraining,
            "server is draining; retry against another instance"));
        conn.outboxBytes += conn.outbox.back().size();
        return true;
    }

    SubmitOptions opts;
    if (req.deadlineMs > 0)
        opts.deadline = Clock::now() +
                        std::chrono::milliseconds(req.deadlineMs);
    opts.priority = req.priority;

    // submit() never throws: invalid models/layers/shapes resolve the
    // future with a typed EngineError, which the completion thread
    // turns into an Error frame for exactly this request.
    ModelHandle handle{req.model, req.version > 0 ? req.version : 1};
    std::future<EngineResponse> future = asyncEngine.submit(
        handle, req.layer, std::move(req.acts), opts);

    {
        MutexLock lock(stateMutex);
        ++stats.requests;
        ++conn.inFlight;
        ++activeRequests;
    }
    {
        InFlight work;
        work.connId = conn.id;
        work.requestId = req.id;
        work.layer = req.layer;
        work.future = std::move(future);
        MutexLock lock(completionMutex);
        completionQueue.push_back(std::move(work));
    }
    completionCv.notify_one();
    return true;
}

void
PhiServer::handleSessionFrame(Connection& conn,
                              const ParsedFrame& frame)
{
    // Body decoding mirrors handleRequestFrame: a well-delimited
    // frame whose body lies is a per-request rejection, not a stream
    // desync, so the connection keeps serving.
    WireOpenSession openMsg;
    WireStepSession stepMsg;
    WireCloseSession closeMsg;
    uint32_t requestId = 0;
    try {
        io::ByteReader body(frame.body, frame.bodyLen);
        switch (frame.type) {
        case FrameType::OpenSession:
            openMsg = decodeOpenSession(body);
            requestId = openMsg.id;
            break;
        case FrameType::StepSession:
            stepMsg = decodeStepSession(body);
            requestId = stepMsg.id;
            break;
        default:
            closeMsg = decodeCloseSession(body);
            requestId = closeMsg.id;
            break;
        }
    } catch (const io::IoError& e) {
        MutexLock lock(stateMutex);
        ++stats.protocolErrors;
        ++stats.wireErrors;
        conn.outbox.push_back(encodeErrorFrame(
            0, WireErrorCode::MalformedFrame, e.what()));
        conn.outboxBytes += conn.outbox.back().size();
        return;
    }

    // The same deterministic drain gate as stateless requests: no
    // session frame parsed after requestDrain() is ever admitted —
    // the drain epilogue is about to snapshot (or close) every
    // session, and a step racing in behind it would not be covered.
    if (drainRequested.load() || drainingFlag.load()) {
        MutexLock lock(stateMutex);
        ++stats.drainRejected;
        ++stats.wireErrors;
        conn.outbox.push_back(encodeErrorFrame(
            requestId, WireErrorCode::ServerDraining,
            "server is draining; retry against another instance"));
        conn.outboxBytes += conn.outbox.back().size();
        return;
    }

    try {
        if (frame.type == FrameType::OpenSession) {
            // open() is registry + allocation work only (no kernel,
            // no engine queue), so serving it inline keeps the net
            // loop's latency bounded.
            const uint64_t sid = sessionManager.open(
                openMsg.model, std::move(openMsg.params));
            const SessionInfo info = sessionManager.info(sid);
            io::ByteWriter body;
            encodeSessionOpened(
                body, {openMsg.id, sid, info.model.name,
                       info.model.version,
                       static_cast<uint32_t>(info.layerCount)});
            MutexLock lock(stateMutex);
            ++stats.sessionOpens;
            ++stats.responses;
            conn.outbox.push_back(
                encodeFrame(FrameType::SessionOpened, body.buffer()));
            conn.outboxBytes += conn.outbox.back().size();
            return;
        }

        if (frame.type == FrameType::CloseSession) {
            // close() waits at most one pump round for an in-flight
            // frame — bounded, like open().
            const uint64_t steps =
                sessionManager.close(closeMsg.sessionId);
            io::ByteWriter body;
            encodeSessionClosed(
                body, {closeMsg.id, closeMsg.sessionId, steps});
            MutexLock lock(stateMutex);
            ++stats.sessionCloses;
            ++stats.responses;
            conn.outbox.push_back(
                encodeFrame(FrameType::SessionClosed, body.buffer()));
            conn.outboxBytes += conn.outbox.back().size();
            return;
        }

        // StepSession: the temporal forward runs on the pump + engine
        // threads; its future rides the completion queue exactly like
        // a stateless submit, so drain and half-close accounting see
        // it as one in-flight request. step() never throws — typed
        // failures (SessionNotFound/Expired, ShapeMismatch, rolled-
        // back engine errors) resolve the future instead.
        InFlight work;
        work.connId = conn.id;
        work.requestId = stepMsg.id;
        work.kind = InFlight::Kind::SessionStep;
        work.sessionFuture = sessionManager.step(
            stepMsg.sessionId, std::move(stepMsg.frames));
        {
            MutexLock lock(stateMutex);
            ++stats.requests;
            ++stats.sessionStepFrames;
            ++conn.inFlight;
            ++activeRequests;
        }
        {
            MutexLock lock(completionMutex);
            completionQueue.push_back(std::move(work));
        }
        completionCv.notify_one();
    } catch (const EngineError& e) {
        // open()/close() lifecycle failures: typed, per-request, the
        // connection survives.
        MutexLock lock(stateMutex);
        ++stats.wireErrors;
        conn.outbox.push_back(
            encodeErrorFrame(requestId, wireCode(e.code()), e.what()));
        conn.outboxBytes += conn.outbox.back().size();
    }
}

void
PhiServer::deliverOutboxes()
{
    std::vector<uint64_t> overflowed;
    {
        MutexLock lock(stateMutex);
        for (auto& [fd, conn] : connsByFd) {
            while (!conn->outbox.empty()) {
                std::vector<uint8_t>& f = conn->outbox.front();
                conn->wbuf.insert(conn->wbuf.end(), f.begin(),
                                  f.end());
                conn->outboxBytes -= f.size();
                conn->outbox.pop_front();
            }
            const size_t pending =
                conn->wbuf.size() - conn->woff + conn->outboxBytes;
            if (pending > serverConfig.maxWriteBufferBytes) {
                // A client reading slower than it submits must not
                // grow server memory without bound: drop it.
                ++stats.slowClientDrops;
                overflowed.push_back(conn->id);
            }
        }
    }
    for (uint64_t id : overflowed)
        closeConnection(id);

    std::vector<uint64_t> toFlush;
    for (auto& [fd, conn] : connsByFd)
        if (conn->wbuf.size() > conn->woff)
            toFlush.push_back(conn->id);
    for (uint64_t id : toFlush) {
        for (auto& [fd, conn] : connsByFd)
            if (conn->id == id) {
                flushWrites(*conn);
                break;
            }
    }
}

void
PhiServer::queueFrame(Connection& conn, std::vector<uint8_t> frame)
{
    MutexLock lock(stateMutex);
    conn.outboxBytes += frame.size();
    conn.outbox.push_back(std::move(frame));
}

void
PhiServer::flushWrites(Connection& conn)
{
    if (conn.wbuf.size() > conn.woff) {
        bool injected = false;
        PHI_FAILPOINT(failpoint::sites::kNetWrite, injected = true);
        if (injected) {
            // Write path failure: the response bytes are
            // unrecoverable mid-frame, so the only honest move is to
            // hang up — the client sees ConnectionLost, a typed
            // client-side error, never a corrupt half-frame.
            {
                MutexLock lock(stateMutex);
                ++stats.writeFailures;
            }
            closeConnection(conn.id);
            return;
        }
    }

    while (conn.wbuf.size() > conn.woff) {
        const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.woff,
                                 conn.wbuf.size() - conn.woff,
                                 MSG_NOSIGNAL);
        if (n > 0) {
            conn.woff += static_cast<size_t>(n);
            conn.writeStalledSince = Clock::time_point{};
            conn.lastActivity = Clock::now();
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (conn.writeStalledSince == Clock::time_point{})
                conn.writeStalledSince = Clock::now();
            break;
        }
        if (n < 0 && errno == EINTR)
            continue;
        // Peer is gone (EPIPE/ECONNRESET/...): nothing to flush to.
        closeConnection(conn.id);
        return;
    }

    if (conn.woff == conn.wbuf.size()) {
        conn.wbuf.clear();
        conn.woff = 0;
    } else if (conn.woff > (1u << 16)) {
        conn.wbuf.erase(conn.wbuf.begin(),
                        conn.wbuf.begin() +
                            static_cast<std::ptrdiff_t>(conn.woff));
        conn.woff = 0;
    }

    bool moreQueued;
    size_t inFlightHere;
    {
        MutexLock lock(stateMutex);
        moreQueued = !conn.outbox.empty();
        inFlightHere = conn.inFlight;
    }
    const bool pendingBytes = conn.wbuf.size() > conn.woff;

    if (!pendingBytes && !moreQueued && conn.closeAfterFlush &&
        inFlightHere == 0) {
        closeConnection(conn.id);
        return;
    }

    const bool wantWrite = pendingBytes;
    if (wantWrite != conn.wantWrite) {
        conn.wantWrite = wantWrite;
        epoll_event ev{};
        ev.events = EPOLLIN | (wantWrite ? EPOLLOUT : 0u);
        ev.data.fd = conn.fd;
        ::epoll_ctl(epollFd, EPOLL_CTL_MOD, conn.fd, &ev);
    }
}

void
PhiServer::sweepTimeouts(Clock::time_point now)
{
    auto expired = [&](Clock::time_point since, uint64_t limitMs) {
        return limitMs > 0 && since != Clock::time_point{} &&
               now - since >= std::chrono::milliseconds(limitMs);
    };

    std::vector<uint64_t> writeStalled;
    std::vector<uint64_t> drained;
    for (auto& [fd, conn] : connsByFd) {
        size_t inFlightHere;
        bool outboxEmpty;
        {
            MutexLock lock(stateMutex);
            inFlightHere = conn->inFlight;
            outboxEmpty = conn->outbox.empty();
        }
        const bool flushed = conn->wbuf.size() == conn->woff &&
                             outboxEmpty;

        if (drainingFlag.load() && inFlightHere == 0 && flushed) {
            drained.push_back(conn->id);
            continue;
        }
        if (expired(conn->partialSince, serverConfig.readTimeoutMs)) {
            // A stalled partial frame: tell the client (best effort)
            // and hang up — it holds buffer memory hostage otherwise.
            queueFrame(*conn,
                       encodeErrorFrame(
                           0, WireErrorCode::Timeout,
                           "partial frame stalled past the read "
                           "timeout"));
            {
                MutexLock lock(stateMutex);
                ++stats.timeouts;
                ++stats.wireErrors;
            }
            conn->closeAfterFlush = true;
            conn->partialSince = Clock::time_point{};
            // Delivery happens on the next deliverOutboxes() pass —
            // closing here would invalidate this very iteration.
            continue;
        }
        if (expired(conn->writeStalledSince,
                    serverConfig.writeTimeoutMs)) {
            MutexLock lock(stateMutex);
            ++stats.slowClientDrops;
            writeStalled.push_back(conn->id);
            continue;
        }
        if (inFlightHere == 0 && flushed && conn->rbuf.empty() &&
            !conn->closeAfterFlush &&
            expired(conn->lastActivity, serverConfig.idleTimeoutMs)) {
            MutexLock lock(stateMutex);
            ++stats.timeouts;
            writeStalled.push_back(conn->id);
        }
    }
    for (uint64_t id : writeStalled)
        closeConnection(id);
    for (uint64_t id : drained)
        closeConnection(id);
}

void
PhiServer::finishSessionsForDrain()
{
    // The drain gate stopped admitting session frames before
    // drainComplete() observed an idle server, so this flush covers
    // exactly the steps admitted before the drain began (or, after a
    // deadline force-close, whatever is still in flight).
    sessionManager.drain();
    const size_t open = sessionManager.size();
    if (open == 0)
        return;

    if (!serverConfig.sessionSnapshotPath.empty()) {
        try {
            io::saveSessions(sessionManager.snapshot(),
                             serverConfig.sessionSnapshotPath);
            MutexLock lock(stateMutex);
            stats.sessionsSnapshotted += open;
        } catch (const io::IoError&) {
            // An unwritable snapshot must not hold SIGTERM hostage;
            // the loss is visible as sessions_snapshotted staying 0.
            MutexLock lock(stateMutex);
            ++stats.writeFailures;
        }
        return;
    }

    for (const SessionInfo& s : sessionManager.list()) {
        try {
            sessionManager.close(s.id);
        } catch (const EngineError&) {
            // Raced with the idle TTL: already gone, which is fine.
        }
    }
}

void
PhiServer::beginDrain()
{
    drainingFlag.store(true);
    drainDeadline =
        Clock::now() +
        std::chrono::milliseconds(serverConfig.drainTimeoutMs);
    // Stop accepting: the listen socket leaves the epoll set and
    // closes, so new connections are refused by the kernel, not
    // queued behind a drain that will never serve them.
    if (listenFd >= 0) {
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, listenFd, nullptr);
        ::close(listenFd);
        listenFd = -1;
    }
}

bool
PhiServer::drainComplete()
{
    {
        MutexLock lock(completionMutex);
        if (!completionQueue.empty())
            return false;
    }
    MutexLock lock(stateMutex);
    return activeRequests == 0 && connsById.empty();
}

void
PhiServer::closeConnection(uint64_t connId, bool countClosed)
{
    int fd = -1;
    {
        MutexLock lock(stateMutex);
        auto it = connsById.find(connId);
        if (it == connsById.end())
            return;
        fd = it->second->fd;
        connsById.erase(it);
        if (countClosed)
            ++stats.closed;
    }
    ::epoll_ctl(epollFd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    connsByFd.erase(fd); // frees the Connection (outbox responses
                         // from the completion thread are dropped by
                         // the connsById lookup failing)
}

void
PhiServer::closeAllConnections()
{
    std::vector<uint64_t> ids;
    {
        MutexLock lock(stateMutex);
        for (const auto& [id, conn] : connsById)
            ids.push_back(id);
    }
    for (uint64_t id : ids)
        closeConnection(id);
}

int64_t
PhiServer::nextTimeoutMs(Clock::time_point now) const
{
    // Coarse but correct: wake at least every 50ms whenever any
    // deadline could be pending, so sweeps observe short test-scale
    // timeouts promptly; park longer when nothing is timed.
    int64_t wait = 1000;
    const bool anyTimed = serverConfig.readTimeoutMs > 0 ||
                          serverConfig.writeTimeoutMs > 0 ||
                          serverConfig.idleTimeoutMs > 0;
    bool anyConns;
    {
        MutexLock lock(stateMutex);
        anyConns = !connsById.empty();
    }
    if (anyTimed && anyConns)
        wait = 50;
    if (drainingFlag.load()) {
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                drainDeadline - now)
                .count();
        wait = std::clamp<int64_t>(left, 1, 50);
    }
    return wait;
}

// ---- completion thread ----------------------------------------------

void
PhiServer::completionLoop()
{
    while (true) {
        InFlight work;
        {
            UniqueLock lock(completionMutex);
            while (!completionStop && completionQueue.empty())
                completionCv.wait(lock);
            if (completionQueue.empty() && completionStop)
                return;
            work = std::move(completionQueue.front());
            completionQueue.pop_front();
        }

        // Engine futures are consumed unconditionally — even when the
        // connection died or the server is stopping, the response is
        // got and dropped, never left dangling.
        std::vector<uint8_t> frame;
        bool isError = false;
        try {
            if (work.kind == InFlight::Kind::SessionStep) {
                SessionStepResult res = work.sessionFuture.get();
                io::ByteWriter body;
                encodeSessionStepped(body, {work.requestId,
                                            res.sessionId,
                                            res.firstStep,
                                            std::move(res.spikes)});
                frame = encodeFrame(FrameType::SessionStepped,
                                    body.buffer());
            } else {
                EngineResponse resp = work.future.get();
                io::ByteWriter body;
                encodeResponse(body,
                               {work.requestId, resp.model.name,
                                resp.model.version,
                                static_cast<uint32_t>(resp.layer),
                                std::move(resp.out)});
                frame =
                    encodeFrame(FrameType::Response, body.buffer());
            }
        } catch (const EngineError& e) {
            frame = encodeErrorFrame(work.requestId,
                                     wireCode(e.code()), e.what());
            isError = true;
        } catch (const io::IoError& e) {
            frame = encodeErrorFrame(
                work.requestId, WireErrorCode::IoFailure, e.what());
            isError = true;
        } catch (const std::exception& e) {
            frame = encodeErrorFrame(work.requestId,
                                     WireErrorCode::Internal,
                                     e.what());
            isError = true;
        }

        bool delivered = false;
        {
            MutexLock lock(stateMutex);
            --activeRequests;
            auto it = connsById.find(work.connId);
            if (it != connsById.end()) {
                Connection& conn = *it->second;
                conn.outboxBytes += frame.size();
                conn.outbox.push_back(std::move(frame));
                if (conn.inFlight > 0)
                    --conn.inFlight;
                if (isError)
                    ++stats.wireErrors;
                else
                    ++stats.responses;
                delivered = true;
            }
        }
        if (delivered && wakeFd >= 0) {
            const uint64_t one = 1;
            [[maybe_unused]] ssize_t n =
                ::write(wakeFd, &one, sizeof(one));
        }
    }
}

#else // !__linux__

// The serving frontend is epoll-based; on other platforms the class
// compiles (so the facade header stays portable) but cannot start.

void
PhiServer::start()
{
    throw NetError(WireErrorCode::ConnectError,
                   "PhiServer requires Linux (epoll)");
}

uint16_t PhiServer::port() const { return 0; }
void PhiServer::requestDrain() {}
void PhiServer::stop() {}
void PhiServer::waitUntilStopped() {}
bool PhiServer::running() const { return false; }
bool PhiServer::draining() const { return false; }
size_t PhiServer::connectionCount() const { return 0; }
ServerCounters PhiServer::counters() const { return {}; }
std::string PhiServer::statsText() const { return "phi-server\nend\n"; }
void PhiServer::netLoop() {}
void PhiServer::completionLoop() {}
void PhiServer::acceptPending() {}
void PhiServer::handleReadable(Connection&) {}
void PhiServer::processBuffer(Connection&) {}
bool PhiServer::handleRequestFrame(Connection&, const ParsedFrame&)
{
    return false;
}
void PhiServer::handleSessionFrame(Connection&, const ParsedFrame&) {}
void PhiServer::finishSessionsForDrain() {}
void PhiServer::queueFrame(Connection&, std::vector<uint8_t>) {}
void PhiServer::flushWrites(Connection&) {}
void PhiServer::deliverOutboxes() {}
void PhiServer::sweepTimeouts(Clock::time_point) {}
void PhiServer::beginDrain() {}
bool PhiServer::drainComplete() { return true; }
void PhiServer::closeConnection(uint64_t, bool) {}
void PhiServer::closeAllConnections() {}
int64_t PhiServer::nextTimeoutMs(Clock::time_point) const { return 0; }

#endif // __linux__

} // namespace phi::net
