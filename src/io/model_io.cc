#include "io/model_io.hh"

#include <bit>
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <unistd.h>

#include "common/crc32.hh"
#include "common/failpoint.hh"

namespace phi::io
{

namespace
{

// ---- Generic helpers ------------------------------------------------

/**
 * Validate a rows x cols element count against the bytes actually left
 * in the payload, without overflowing the intermediate products.
 */
size_t
checkedElems(const ByteReader& r, uint64_t rows, uint64_t cols,
             uint64_t elemBytes)
{
    if (rows == 0 || cols == 0)
        return 0;
    const uint64_t budget = r.remaining() / elemBytes;
    if (cols > budget || rows > budget / cols)
        throw IoError("matrix shape " + std::to_string(rows) + "x" +
                      std::to_string(cols) +
                      " exceeds remaining artifact bytes");
    return static_cast<size_t>(rows * cols);
}

/** True when raw memcpy of T rows equals the per-element LE encoding. */
template <typename T>
constexpr bool kPodLittleEndian =
    std::endian::native == std::endian::little &&
    std::is_integral_v<T>;

/**
 * Matrix rows are encoded densely (cols() elements per row, no
 * padding), so artifacts are independent of the in-memory stride. On
 * little-endian hosts whole rows are copied directly between the
 * artifact and the 64-byte-aligned row storage — the loader rehydrates
 * PWP tables into SIMD-ready memory with no per-element decode and no
 * intermediate copy.
 */
template <typename T, typename WriteElem>
void
writeMatrix(ByteWriter& w, const Matrix<T>& m, WriteElem&& elem)
{
    w.u64(m.rows());
    w.u64(m.cols());
    for (size_t r = 0; r < m.rows(); ++r) {
        const T* row = m.rowPtr(r);
        if constexpr (kPodLittleEndian<T>) {
            w.bytes(row, m.cols() * sizeof(T));
        } else {
            for (size_t c = 0; c < m.cols(); ++c)
                elem(row[c]);
        }
    }
}

template <typename T, typename ReadElem>
Matrix<T>
readMatrix(ByteReader& r, ReadElem&& elem)
{
    const uint64_t rows = r.u64();
    const uint64_t cols = r.u64();
    checkedElems(r, rows, cols, sizeof(T));
    Matrix<T> m(static_cast<size_t>(rows), static_cast<size_t>(cols));
    for (size_t row = 0; row < m.rows(); ++row) {
        T* dst = m.rowPtr(row);
        if constexpr (kPodLittleEndian<T>) {
            r.bytesInto(dst, m.cols() * sizeof(T));
        } else {
            for (size_t c = 0; c < m.cols(); ++c)
                dst[c] = elem();
        }
    }
    return m;
}

Matrix<int32_t>
readMatrixI32(ByteReader& r)
{
    return readMatrix<int32_t>(r, [&r] { return r.i32(); });
}

void
writeMatrixI32(ByteWriter& w, const Matrix<int32_t>& m)
{
    writeMatrix(w, m, [&w](int32_t v) { w.i32(v); });
}

// ---- Container assembly ---------------------------------------------

struct Section
{
    uint32_t tag;
    std::vector<uint8_t> payload;
};

/** Header bytes before the section table. */
constexpr size_t kHeaderBytes = 4 + 4 + 4 + 4 + 8;
/** Bytes per section-table entry. */
constexpr size_t kSectionEntryBytes = 4 + 4 + 8 + 8;

/**
 * CRC stamp written into a section-table entry's checksum field.
 * 0 is reserved to mean "unstamped" (the pre-CRC format wrote a zero
 * reserved field there), so a payload whose true CRC happens to be 0
 * is stamped as 0xFFFFFFFF instead; unstampCrc() on the read side
 * accepts either spelling.
 */
uint32_t
stampCrc(uint32_t crc)
{
    return crc == 0 ? 0xFFFFFFFFu : crc;
}

bool
crcMatches(uint32_t stored, uint32_t computed)
{
    return stored == computed || stored == stampCrc(computed);
}

/** Render a fourcc tag for error messages ('LYRS'); non-printable
 *  bytes fall back to the hex spelling. */
std::string
tagName(uint32_t tag)
{
    char chars[4];
    bool printable = true;
    for (int i = 0; i < 4; ++i) {
        chars[i] = static_cast<char>((tag >> (8 * i)) & 0xFFu);
        printable = printable && chars[i] >= 0x20 && chars[i] < 0x7F;
    }
    if (printable)
        return std::string(chars, 4);
    char hex[16];
    std::snprintf(hex, sizeof(hex), "0x%08X", tag);
    return hex;
}

std::vector<uint8_t>
assemble(uint32_t kind, const std::vector<Section>& sections)
{
    ByteWriter w;
    w.u32(kMagic);
    w.u32(kFormatVersion);
    w.u32(kind);
    w.u32(static_cast<uint32_t>(sections.size()));

    size_t total = kHeaderBytes + sections.size() * kSectionEntryBytes;
    size_t offset = total;
    for (const auto& s : sections)
        total += s.payload.size();
    w.u64(total);

    for (const auto& s : sections) {
        w.u32(s.tag);
        w.u32(stampCrc(crc32(s.payload.data(), s.payload.size())));
        w.u64(offset);
        w.u64(s.payload.size());
        offset += s.payload.size();
    }
    std::vector<uint8_t> out = w.buffer();
    out.reserve(total);
    for (const auto& s : sections)
        out.insert(out.end(), s.payload.begin(), s.payload.end());
    return out;
}

struct SectionView
{
    uint32_t tag;
    const uint8_t* data;
    size_t size;
};

std::vector<SectionView>
parseContainer(const uint8_t* data, size_t size, uint32_t expectKind)
{
    if (data == nullptr || size < kHeaderBytes)
        throw IoError("file too small to hold a .phim header");
    ByteReader r(data, size);
    if (r.u32() != kMagic)
        throw IoError("bad magic: not a .phim artifact");
    const uint32_t version = r.u32();
    if (version != kFormatVersion)
        throw IoError("unsupported format version " +
                      std::to_string(version) + " (reader supports " +
                      std::to_string(kFormatVersion) + ")");
    const uint32_t kind = r.u32();
    if (kind != expectKind)
        throw IoError("artifact kind " + std::to_string(kind) +
                      " does not match expected kind " +
                      std::to_string(expectKind));
    const uint32_t count = r.u32();
    const uint64_t declared = r.u64();
    if (declared != size)
        throw IoError("declared size " + std::to_string(declared) +
                      " != actual size " + std::to_string(size) +
                      " (truncated or padded artifact)");
    if (count > (size - kHeaderBytes) / kSectionEntryBytes)
        throw IoError("section table larger than the artifact");

    std::vector<SectionView> sections;
    sections.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        const uint32_t tag = r.u32();
        const uint32_t storedCrc = r.u32();
        const uint64_t off = r.u64();
        const uint64_t len = r.u64();
        if (off > size || len > size - off)
            throw IoError("section " + std::to_string(i) +
                          " extends past the end of the artifact");
        // Integrity check before any payload is interpreted. Pre-CRC
        // writers left this field zero, so 0 means "unstamped, accept"
        // and old artifacts keep loading unchanged.
        if (storedCrc != 0) {
            const uint32_t computed =
                crc32(data + off, static_cast<size_t>(len));
            if (!crcMatches(storedCrc, computed))
                throw IoError(
                    "section '" + tagName(tag) + "' CRC mismatch (" +
                    "stored " + std::to_string(storedCrc) +
                    ", computed " + std::to_string(computed) +
                    "): corrupt artifact");
        }
        sections.push_back({tag, data + off, static_cast<size_t>(len)});
    }
    return sections;
}

const SectionView&
findSection(const std::vector<SectionView>& sections, uint32_t tag,
            const char* what)
{
    for (const auto& s : sections)
        if (s.tag == tag)
            return s;
    throw IoError(std::string("missing required section '") + what + "'");
}

/** Optional sections (META) return null instead of throwing. */
const SectionView*
findSectionIfPresent(const std::vector<SectionView>& sections,
                     uint32_t tag)
{
    for (const auto& s : sections)
        if (s.tag == tag)
            return &s;
    return nullptr;
}

std::vector<uint8_t>
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        throw IoError(path, IoError("cannot open for reading"));
    PHI_FAILPOINT(failpoint::sites::kIoRead,
                  throw IoError(path, IoError("injected read failure "
                                              "(failpoint 'io.read')")));
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    if (size > 0 &&
        !in.read(reinterpret_cast<char*>(bytes.data()), size))
        throw IoError(path, IoError("read failed"));
    return bytes;
}

void
writeFileAtomic(const std::string& path, const std::vector<uint8_t>& bytes)
{
    // Write-then-rename so a crashed writer never leaves a half-written
    // artifact at the published path; the temp name is per-process so
    // concurrent savers to the same path cannot clobber each other's
    // in-flight bytes. A failure anywhere before the rename unlinks
    // the temp file — failed saves must not litter *.tmp files.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    try {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw IoError(path, IoError("cannot open temp file '" + tmp +
                                        "' for writing"));
        PHI_FAILPOINT(
            failpoint::sites::kIoWrite,
            throw IoError(path, IoError("injected mid-write failure "
                                        "(failpoint 'io.write')")));
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            throw IoError(path,
                          IoError("write to '" + tmp + "' failed"));
        out.close();
        if (std::rename(tmp.c_str(), path.c_str()) != 0)
            throw IoError(path,
                          IoError("rename from '" + tmp + "' failed"));
    } catch (...) {
        std::remove(tmp.c_str());
        throw;
    }
}

/** Re-throw a parse failure annotated with the file it came from. */
[[noreturn]] void
rethrowWithPath(const std::string& path, const IoError& e)
{
    if (e.path().empty())
        throw IoError(path, e);
    throw e;
}

// ---- Trace sub-records ----------------------------------------------

void
writeGemmLayerSpec(ByteWriter& w, const GemmLayerSpec& s)
{
    w.str(s.name);
    w.u64(s.m);
    w.u64(s.k);
    w.u64(s.n);
    w.u64(s.count);
}

GemmLayerSpec
readGemmLayerSpec(ByteReader& r)
{
    GemmLayerSpec s;
    s.name = r.str();
    s.m = static_cast<size_t>(r.u64());
    s.k = static_cast<size_t>(r.u64());
    s.n = static_cast<size_t>(r.u64());
    s.count = static_cast<size_t>(r.u64());
    return s;
}

void
writeModelSpec(ByteWriter& w, const ModelSpec& s)
{
    w.u32(static_cast<uint32_t>(s.model));
    w.u32(static_cast<uint32_t>(s.dataset));
    w.i32(s.timesteps);
    w.u64(s.layers.size());
    for (const auto& l : s.layers)
        writeGemmLayerSpec(w, l);
    w.f64(s.profile.bitDensity);
    w.f64(s.profile.l2DensityTarget);
    w.f64(s.profile.zeroRowFrac);
    w.i32(s.profile.prototypes);
    w.f64(s.profile.zipfS);
    w.f64(s.profile.randomRowFrac);
}

ModelSpec
readModelSpec(ByteReader& r)
{
    ModelSpec s;
    const uint32_t model = r.u32();
    const uint32_t dataset = r.u32();
    if (model > static_cast<uint32_t>(ModelId::SpikingBERT))
        throw IoError("unknown model id " + std::to_string(model));
    if (dataset > static_cast<uint32_t>(DatasetId::MNLI))
        throw IoError("unknown dataset id " + std::to_string(dataset));
    s.model = static_cast<ModelId>(model);
    s.dataset = static_cast<DatasetId>(dataset);
    s.timesteps = r.i32();
    const uint64_t n = r.count(4 + 8 * 4);
    s.layers.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i)
        s.layers.push_back(readGemmLayerSpec(r));
    s.profile.bitDensity = r.f64();
    s.profile.l2DensityTarget = r.f64();
    s.profile.zeroRowFrac = r.f64();
    s.profile.prototypes = r.i32();
    s.profile.zipfS = r.f64();
    s.profile.randomRowFrac = r.f64();
    return s;
}

void
writeDecomposition(ByteWriter& w, const LayerDecomposition& d)
{
    w.u64(d.m);
    w.u64(d.kTotal);
    w.i32(d.k);
    w.u64(d.tiles.size());
    for (const auto& t : d.tiles) {
        w.u64(t.partition);
        w.i32(t.k);
        w.u64(t.patternIds.size());
        for (uint16_t id : t.patternIds)
            w.u16(id);
        w.u64(t.l2Offsets.size());
        for (uint32_t o : t.l2Offsets)
            w.u32(o);
        w.u64(t.l2Entries.size());
        for (const auto& e : t.l2Entries) {
            w.u16(e.col);
            w.u8(static_cast<uint8_t>(e.sign));
        }
    }
}

LayerDecomposition
readDecomposition(ByteReader& r)
{
    LayerDecomposition d;
    d.m = static_cast<size_t>(r.u64());
    d.kTotal = static_cast<size_t>(r.u64());
    d.k = r.i32();
    if (d.k < 1 || d.k > 64)
        throw IoError("decomposition pattern width " +
                      std::to_string(d.k) + " outside [1,64]");
    const uint64_t tiles = r.count(8 + 4 + 8 * 3);
    // Tiles partition [0, kTotal) into k-bit slices, so the counts must
    // agree — this also bounds kTotal, which sizes the activation
    // matrix reconstructed from the decomposition.
    if (ceilDiv(d.kTotal, static_cast<size_t>(d.k)) != tiles)
        throw IoError("tile count " + std::to_string(tiles) +
                      " does not cover K " + std::to_string(d.kTotal) +
                      " at width " + std::to_string(d.k));
    d.tiles.reserve(static_cast<size_t>(tiles));
    for (uint64_t i = 0; i < tiles; ++i) {
        TileDecomposition t;
        t.partition = static_cast<size_t>(r.u64());
        t.k = r.i32();
        if (t.k != d.k)
            throw IoError("tile pattern width " + std::to_string(t.k) +
                          " does not match layer width " +
                          std::to_string(d.k));
        const uint64_t ids = r.count(2);
        if (ids != d.m)
            throw IoError("tile holds " + std::to_string(ids) +
                          " rows, decomposition has " +
                          std::to_string(d.m));
        t.patternIds.reserve(static_cast<size_t>(ids));
        for (uint64_t j = 0; j < ids; ++j)
            t.patternIds.push_back(r.u16());
        const uint64_t offs = r.count(4);
        if (offs != ids + 1 && !(offs == 0 && ids == 0))
            throw IoError("CSR offset count " + std::to_string(offs) +
                          " does not match " + std::to_string(ids) +
                          " rows");
        t.l2Offsets.reserve(static_cast<size_t>(offs));
        for (uint64_t j = 0; j < offs; ++j)
            t.l2Offsets.push_back(r.u32());
        const uint64_t entries = r.count(3);
        // Consumers index l2Entries[l2Offsets[r] .. l2Offsets[r+1])
        // unchecked, so the whole CSR structure must be proven sound
        // here: start at 0, monotone, terminated by the entry count.
        if (offs > 0) {
            if (t.l2Offsets.front() != 0)
                throw IoError("CSR offsets do not start at 0");
            for (uint64_t j = 1; j < offs; ++j)
                if (t.l2Offsets[j] < t.l2Offsets[j - 1])
                    throw IoError("CSR offsets decrease at row " +
                                  std::to_string(j));
            if (t.l2Offsets.back() != entries)
                throw IoError("CSR terminator does not match entry count");
            // A row-tile has at most k distinct correction columns; a
            // larger count means duplicate columns, and it would also
            // overflow the uint8_t row-major count index.
            for (uint64_t j = 1; j < offs; ++j)
                if (t.l2Offsets[j] - t.l2Offsets[j - 1] >
                    static_cast<uint32_t>(t.k))
                    throw IoError(
                        "row " + std::to_string(j - 1) + " holds " +
                        std::to_string(t.l2Offsets[j] -
                                       t.l2Offsets[j - 1]) +
                        " L2 entries, more than the partition width " +
                        std::to_string(t.k));
        } else if (entries != 0) {
            throw IoError("L2 entries without CSR offsets");
        }
        t.l2Entries.reserve(static_cast<size_t>(entries));
        for (uint64_t j = 0; j < entries; ++j) {
            L2Entry e;
            e.col = r.u16();
            e.sign = static_cast<int8_t>(r.u8());
            if (e.col >= static_cast<uint16_t>(t.k))
                throw IoError("L2 column " + std::to_string(e.col) +
                              " outside partition width " +
                              std::to_string(t.k));
            if (e.sign != 1 && e.sign != -1)
                throw IoError("L2 sign must be +1 or -1");
            t.l2Entries.push_back(e);
        }
        d.tiles.push_back(std::move(t));
    }
    // The row-major serving index is derived, not serialized; rebuild
    // it so loaded decompositions serve as fast as freshly computed
    // ones.
    d.buildRowIndex();
    return d;
}

/**
 * Cross-check a decomposition against its pattern table: every tile
 * must target a real partition and every pattern id must exist there.
 * Downstream consumers (phiGemm, stats, the simulators) index both
 * unchecked — or via phi_assert, which panics rather than rejects.
 */
void
validateDecomposition(const LayerDecomposition& d, const PatternTable& t)
{
    if (d.k != t.k())
        throw IoError("decomposition width " + std::to_string(d.k) +
                      " does not match table width " +
                      std::to_string(t.k()));
    for (const auto& tile : d.tiles) {
        if (tile.partition >= t.numPartitions())
            throw IoError("tile partition " +
                          std::to_string(tile.partition) + " out of " +
                          std::to_string(t.numPartitions()));
        const size_t patterns = t.partition(tile.partition).size();
        for (uint16_t id : tile.patternIds)
            if (id > patterns)
                throw IoError("pattern id " + std::to_string(id) +
                              " out of range for partition " +
                              std::to_string(tile.partition) + " (" +
                              std::to_string(patterns) + " patterns)");
    }
}

void
writeBreakdown(ByteWriter& w, const SparsityBreakdown& b)
{
    w.f64(b.bitDensity);
    w.f64(b.l1Density);
    w.f64(b.l2PosDensity);
    w.f64(b.l2NegDensity);
    w.f64(b.indexDensity);
    w.f64(b.vectorDensity);
    w.u64(b.elements);
    w.u64(b.rowTiles);
    w.u64(b.bitOnes);
    w.u64(b.l1Ones);
    w.u64(b.l2Pos);
    w.u64(b.l2Neg);
    w.u64(b.assigned);
}

SparsityBreakdown
readBreakdown(ByteReader& r)
{
    SparsityBreakdown b;
    b.bitDensity = r.f64();
    b.l1Density = r.f64();
    b.l2PosDensity = r.f64();
    b.l2NegDensity = r.f64();
    b.indexDensity = r.f64();
    b.vectorDensity = r.f64();
    b.elements = static_cast<size_t>(r.u64());
    b.rowTiles = static_cast<size_t>(r.u64());
    b.bitOnes = static_cast<size_t>(r.u64());
    b.l1Ones = static_cast<size_t>(r.u64());
    b.l2Pos = static_cast<size_t>(r.u64());
    b.l2Neg = static_cast<size_t>(r.u64());
    b.assigned = static_cast<size_t>(r.u64());
    return b;
}

} // namespace

// ---- Component writers/readers --------------------------------------

void
writePatternTable(ByteWriter& w, const PatternTable& table)
{
    w.i32(table.k());
    w.u64(table.numPartitions());
    for (size_t p = 0; p < table.numPartitions(); ++p) {
        const PatternSet& ps = table.partition(p);
        w.u64(ps.size());
        for (uint64_t bits : ps.patterns())
            w.u64(bits);
    }
}

PatternTable
readPatternTable(ByteReader& r)
{
    const int k = r.i32();
    if (k < 1 || k > 64)
        throw IoError("pattern width " + std::to_string(k) +
                      " outside [1,64]");
    const uint64_t parts = r.count(8);
    std::vector<PatternSet> sets;
    sets.reserve(static_cast<size_t>(parts));
    for (uint64_t p = 0; p < parts; ++p) {
        const uint64_t n = r.count(8);
        std::vector<uint64_t> pats;
        pats.reserve(static_cast<size_t>(n));
        for (uint64_t i = 0; i < n; ++i)
            pats.push_back(r.u64());
        sets.emplace_back(k, std::move(pats));
    }
    return PatternTable(k, std::move(sets));
}

void
writeCalibrationConfig(ByteWriter& w, const CalibrationConfig& cfg)
{
    // exec{threads,tiles} is a per-process runtime knob, not part of the
    // model; it is deliberately not serialized.
    w.i32(cfg.k);
    w.i32(cfg.q);
    w.u64(cfg.maxRowsPerPartition);
    w.i32(cfg.kmeans.numClusters);
    w.i32(cfg.kmeans.maxIters);
    w.u64(cfg.kmeans.seed);
    w.u32(static_cast<uint32_t>(cfg.kmeans.init));
    w.u64(cfg.kmeans.maxDistinct);
}

CalibrationConfig
readCalibrationConfig(ByteReader& r)
{
    CalibrationConfig cfg;
    cfg.k = r.i32();
    cfg.q = r.i32();
    cfg.maxRowsPerPartition = static_cast<size_t>(r.u64());
    cfg.kmeans.numClusters = r.i32();
    cfg.kmeans.maxIters = r.i32();
    cfg.kmeans.seed = r.u64();
    const uint32_t init = r.u32();
    if (init > static_cast<uint32_t>(KMeansConfig::Init::PlusPlus))
        throw IoError("unknown k-means init scheme " +
                      std::to_string(init));
    cfg.kmeans.init = static_cast<KMeansConfig::Init>(init);
    cfg.kmeans.maxDistinct = static_cast<size_t>(r.u64());
    return cfg;
}

void
writeBinaryMatrix(ByteWriter& w, const BinaryMatrix& m)
{
    w.u64(m.rows());
    w.u64(m.cols());
    for (size_t r = 0; r < m.rows(); ++r) {
        const uint64_t* words = m.rowWords(r);
        for (size_t i = 0; i < m.numWordsPerRow(); ++i)
            w.u64(words[i]);
    }
}

BinaryMatrix
readBinaryMatrix(ByteReader& r)
{
    const uint64_t rows = r.u64();
    const uint64_t cols = r.u64();
    const uint64_t wordsPerRow = (cols + 63) / 64;
    checkedElems(r, rows, wordsPerRow == 0 ? 1 : wordsPerRow, 8);
    BinaryMatrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
    for (uint64_t row = 0; row < rows; ++row) {
        for (uint64_t wi = 0; wi < wordsPerRow; ++wi) {
            const uint64_t word = r.u64();
            const int len = static_cast<int>(
                std::min<uint64_t>(64, cols - wi * 64));
            m.deposit(static_cast<size_t>(row),
                      static_cast<size_t>(wi * 64), len, word);
        }
    }
    return m;
}

void
writeWeights(ByteWriter& w, const Matrix<int16_t>& m)
{
    writeMatrix(w, m, [&w](int16_t v) { w.i16(v); });
}

Matrix<int16_t>
readWeights(ByteReader& r)
{
    return readMatrix<int16_t>(r, [&r] { return r.i16(); });
}

void
writePwps(ByteWriter& w, const std::vector<Matrix<int32_t>>& pwps)
{
    w.u64(pwps.size());
    for (const auto& p : pwps)
        writeMatrixI32(w, p);
}

std::vector<Matrix<int32_t>>
readPwps(ByteReader& r)
{
    const uint64_t n = r.count(8 + 8);
    std::vector<Matrix<int32_t>> pwps;
    pwps.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i)
        pwps.push_back(readMatrixI32(r));
    return pwps;
}

void
writeArtifactMeta(ByteWriter& w, const ArtifactMeta& meta)
{
    w.str(meta.name);
    w.u64(meta.version);
}

ArtifactMeta
readArtifactMeta(ByteReader& r)
{
    ArtifactMeta meta;
    meta.name = r.str();
    meta.version = r.u64();
    return meta;
}

// ---- Whole-artifact API ---------------------------------------------

std::vector<uint8_t>
serializeModel(const CompiledModel& model, const ArtifactMeta& meta)
{
    Section cfg{kSectionConfig, {}};
    {
        ByteWriter w;
        writeCalibrationConfig(w, model.calibration());
        cfg.payload = w.buffer();
    }

    Section layers{kSectionLayers, {}};
    {
        ByteWriter w;
        w.u64(model.numLayers());
        for (const auto& l : model.layers()) {
            w.str(l.name());
            writePatternTable(w, l.table());
            w.u8(l.hasWeights() ? 1 : 0);
            if (l.hasWeights()) {
                writeWeights(w, l.weights());
                writePwps(w, l.pwps());
            }
        }
        layers.payload = w.buffer();
    }

    std::vector<Section> sections;
    sections.push_back(std::move(cfg));
    sections.push_back(std::move(layers));

    // LAYT carries per-layer PWP storage tiers. Written only when some
    // layer is quantized, so all-int32 models serialize byte-identical
    // to pre-LAYT artifacts and old readers (which skip unknown
    // sections) still load quantized ones — just at int32.
    bool anyQuantized = false;
    for (const auto& l : model.layers())
        anyQuantized = anyQuantized || l.pwpTier() != PwpTier::Int32;
    if (anyQuantized) {
        Section layout{kSectionLayout, {}};
        ByteWriter w;
        w.u64(model.numLayers());
        for (const auto& l : model.layers())
            w.u8(static_cast<uint8_t>(l.pwpTier()));
        layout.payload = w.buffer();
        sections.push_back(std::move(layout));
    }

    if (!meta.empty()) {
        Section metaSec{kSectionMeta, {}};
        ByteWriter w;
        writeArtifactMeta(w, meta);
        metaSec.payload = w.buffer();
        sections.push_back(std::move(metaSec));
    }
    return assemble(kKindModel, sections);
}

CompiledModel
parseModel(const uint8_t* data, size_t size, ArtifactMeta* metaOut)
{
    auto sections = parseContainer(data, size, kKindModel);
    const SectionView& cfgSec =
        findSection(sections, kSectionConfig, "CFG ");
    const SectionView& layerSec =
        findSection(sections, kSectionLayers, "LYRS");

    // META is optional so pre-META artifacts keep loading; absence
    // reads back as the default (unstamped) meta.
    if (metaOut != nullptr) {
        *metaOut = ArtifactMeta{};
        if (const SectionView* metaSec =
                findSectionIfPresent(sections, kSectionMeta)) {
            ByteReader metaReader(metaSec->data, metaSec->size);
            *metaOut = readArtifactMeta(metaReader);
        }
    }

    ByteReader cfgReader(cfgSec.data, cfgSec.size);
    CalibrationConfig calib = readCalibrationConfig(cfgReader);

    ByteReader r(layerSec.data, layerSec.size);
    const uint64_t n = r.count(4 + 4 + 8 + 1);

    // Optional LAYT section: per-layer PWP storage tiers. Absence
    // (every pre-LAYT artifact) means all-int32.
    std::vector<PwpTier> tiers(static_cast<size_t>(n), PwpTier::Int32);
    if (const SectionView* layoutSec =
            findSectionIfPresent(sections, kSectionLayout)) {
        ByteReader lr(layoutSec->data, layoutSec->size);
        const uint64_t count = lr.count(1);
        if (count != n)
            throw IoError("layout section lists " +
                          std::to_string(count) + " layers, model has " +
                          std::to_string(n));
        for (uint64_t i = 0; i < count; ++i) {
            const uint8_t t = lr.u8();
            if (t > static_cast<uint8_t>(PwpTier::Int8))
                throw IoError("unknown PWP tier " + std::to_string(t) +
                              " in layout section");
            tiers[static_cast<size_t>(i)] = static_cast<PwpTier>(t);
        }
    }

    std::vector<CompiledLayer> layers;
    layers.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
        std::string name = r.str();
        PatternTable table = readPatternTable(r);
        const uint8_t hasWeights = r.u8();
        if (hasWeights > 1)
            throw IoError("corrupt has-weights flag in layer '" + name +
                          "'");
        const PwpTier tier = tiers[static_cast<size_t>(i)];
        if (!hasWeights) {
            if (tier != PwpTier::Int32)
                throw IoError("layer '" + name +
                              "': quantized tier on a weightless layer");
            layers.emplace_back(std::move(name), std::move(table));
            continue;
        }
        Matrix<int16_t> weights = readWeights(r);
        std::vector<Matrix<int32_t>> pwps = readPwps(r);

        // Validate here with IoError: CompiledLayer's own phi_asserts
        // guard programming bugs and panic; a malformed artifact must
        // reject cleanly instead.
        if (ceilDiv(weights.rows(), static_cast<size_t>(table.k())) >
            table.numPartitions())
            throw IoError("layer '" + name +
                          "': weights span more partitions than the "
                          "pattern table");
        if (pwps.size() != table.numPartitions())
            throw IoError("layer '" + name + "': " +
                          std::to_string(pwps.size()) +
                          " PWP matrices for " +
                          std::to_string(table.numPartitions()) +
                          " partitions");
        for (size_t p = 0; p < pwps.size(); ++p)
            if (pwps[p].rows() != table.partition(p).size() ||
                (pwps[p].rows() > 0 && pwps[p].cols() != weights.cols()))
                throw IoError("layer '" + name +
                              "': PWP shape mismatch in partition " +
                              std::to_string(p));
        // Re-quantize from the exact int32 payload at the claimed
        // tier. The arena only ever falls back *wider* than the
        // request, so ending up off-tier proves the PWP values cannot
        // be stored at the claimed width — a lying layout section.
        std::string layerName = name;
        layers.emplace_back(std::move(name), std::move(table),
                            std::move(weights), std::move(pwps), tier);
        if (layers.back().pwpTier() != tier)
            throw IoError(
                "layer '" + layerName + "': layout section claims " +
                pwpTierName(tier) + " PWPs but the values require " +
                pwpTierName(layers.back().pwpTier()));
    }
    return CompiledModel(std::move(layers), calib);
}

void
saveModel(const CompiledModel& model, const std::string& path,
          const ArtifactMeta& meta)
{
    writeFileAtomic(path, serializeModel(model, meta));
}

CompiledModel
loadModel(const std::string& path, ArtifactMeta* metaOut)
{
    const std::vector<uint8_t> bytes = readFile(path);
    try {
        return parseModel(bytes.data(), bytes.size(), metaOut);
    } catch (const IoError& e) {
        // A truncated-file (or any parse) throw must say which file:
        // a registry process handles many artifacts at once.
        rethrowWithPath(path, e);
    }
}

std::vector<uint8_t>
serializeTrace(const ModelTrace& trace)
{
    Section sec{kSectionTrace, {}};
    ByteWriter w;
    writeModelSpec(w, trace.spec);
    w.u64(trace.layers.size());
    for (const auto& l : trace.layers) {
        writeGemmLayerSpec(w, l.spec);
        writeBinaryMatrix(w, l.acts);
        writePatternTable(w, l.table);
        writeDecomposition(w, l.dec);
        writeBreakdown(w, l.stats);
        writeWeights(w, l.weights);
        w.u64(l.paftStats.mismatchBitsBefore);
        w.u64(l.paftStats.bitsFlipped);
        w.u64(l.paftStats.elements);
    }
    sec.payload = w.buffer();
    return assemble(kKindTrace, {std::move(sec)});
}

ModelTrace
parseTrace(const uint8_t* data, size_t size)
{
    auto sections = parseContainer(data, size, kKindTrace);
    const SectionView& sec = findSection(sections, kSectionTrace, "TRAC");
    ByteReader r(sec.data, sec.size);
    ModelTrace trace;
    trace.spec = readModelSpec(r);
    const uint64_t n = r.count(1);
    trace.layers.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
        LayerTrace lt;
        lt.spec = readGemmLayerSpec(r);
        lt.acts = readBinaryMatrix(r);
        lt.table = readPatternTable(r);
        lt.dec = readDecomposition(r);
        validateDecomposition(lt.dec, lt.table);
        lt.stats = readBreakdown(r);
        lt.weights = readWeights(r);
        lt.paftStats.mismatchBitsBefore = static_cast<size_t>(r.u64());
        lt.paftStats.bitsFlipped = static_cast<size_t>(r.u64());
        lt.paftStats.elements = static_cast<size_t>(r.u64());
        trace.layers.push_back(std::move(lt));
    }
    return trace;
}

void
saveTrace(const ModelTrace& trace, const std::string& path)
{
    writeFileAtomic(path, serializeTrace(trace));
}

ModelTrace
loadTrace(const std::string& path)
{
    const std::vector<uint8_t> bytes = readFile(path);
    try {
        return parseTrace(bytes.data(), bytes.size());
    } catch (const IoError& e) {
        rethrowWithPath(path, e);
    }
}

} // namespace phi::io
