/**
 * @file
 * The .phim artifact format: versioned, endian-stable serialization of
 * compiled models and model traces.
 *
 * Layout (all little-endian):
 *
 *   offset 0   u32  magic           "PHIM" (0x4D494850)
 *              u32  format version  (currently 1)
 *              u32  file kind       (1 = compiled model, 2 = trace)
 *              u32  section count
 *              u64  total file size (redundant; catches truncation)
 *   then       section table: per section
 *              u32  tag (fourcc)    u32 payload CRC-32 (0 = unstamped)
 *              u64  payload offset  u64 payload size
 *   then       the section payloads.
 *
 * The CRC field occupies what was a zeroed reserved slot, so the
 * format version did not move: writers now stamp every section's
 * IEEE CRC-32 (a true CRC of 0 is stored as 0xFFFFFFFF), readers
 * verify stamped sections before interpreting a single payload byte
 * and reject mismatches with an IoError naming the section (and,
 * through loadModel/loadTrace, the file) — while a zero field means
 * "pre-CRC artifact, nothing to verify" and loads exactly as before.
 *
 * A compiled model carries sections 'CFG ' (calibration provenance),
 * 'LYRS' (tables + weights + PWPs per layer) and — when the artifact
 * was stamped — an optional 'META' section (model name + version, the
 * identity a ModelRegistry serves it under); a trace carries 'TRAC'.
 * Models whose layers use a quantized PWP storage tier additionally
 * carry a 'LAYT' section (one tier byte per layer); it is written only
 * when some layer is narrower than int32, so unquantized artifacts are
 * byte-identical to pre-LAYT ones, and absence means "all int32" so
 * old artifacts keep loading. PWP payloads in 'LYRS' always store the
 * exact int32 values regardless of tier — the loader re-quantizes and
 * rejects artifacts whose claimed tier the values cannot reach.
 * Unknown sections are ignored on read, so the format can grow without
 * breaking old readers (a pre-META file still loads, it is just
 * anonymous); a bumped version field rejects incompatible layouts
 * outright.
 *
 * Readers never trust the input: every count is bounds-checked against
 * the remaining payload and every structural inconsistency (PWP shape
 * vs. table, weights vs. partitions) throws io::IoError instead of
 * constructing a broken model.
 */

#ifndef PHI_IO_MODEL_IO_HH
#define PHI_IO_MODEL_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/compiled_model.hh"
#include "io/serialize.hh"
#include "snn/trace.hh"

namespace phi::io
{

/** "PHIM" interpreted as a little-endian u32. */
constexpr uint32_t kMagic = 0x4D494850u;
constexpr uint32_t kFormatVersion = 1;

constexpr uint32_t kKindModel = 1;
constexpr uint32_t kKindTrace = 2;

/** Section tags (fourcc, little-endian). */
constexpr uint32_t kSectionConfig = 0x20474643u; // "CFG "
constexpr uint32_t kSectionLayers = 0x5352594Cu; // "LYRS"
constexpr uint32_t kSectionTrace = 0x43415254u;  // "TRAC"
constexpr uint32_t kSectionMeta = 0x4154454Du;   // "META"
constexpr uint32_t kSectionLayout = 0x5459414Cu; // "LAYT"

/**
 * Artifact identity carried by the optional META section: the model
 * name and registry version the artifact was saved as. Both are
 * provenance — a registry assigns its own monotonic versions when a
 * file is (re)loaded, but the stamp says what the bytes *were* and
 * lets ModelRegistry::load(path) name a model from the artifact
 * alone. Empty name + version 0 (the default) means "unstamped"; such
 * artifacts are written without a META section at all, exactly the
 * pre-META section layout (their table entries still carry the
 * per-section CRC stamps every current writer emits).
 */
struct ArtifactMeta
{
    std::string name;
    uint64_t version = 0;

    bool empty() const { return name.empty() && version == 0; }
};

// ---- Component writers/readers (exposed for tests and tooling) ----

void writePatternTable(ByteWriter& w, const PatternTable& table);
PatternTable readPatternTable(ByteReader& r);

void writeCalibrationConfig(ByteWriter& w, const CalibrationConfig& cfg);
CalibrationConfig readCalibrationConfig(ByteReader& r);

void writeBinaryMatrix(ByteWriter& w, const BinaryMatrix& m);
BinaryMatrix readBinaryMatrix(ByteReader& r);

void writeWeights(ByteWriter& w, const Matrix<int16_t>& m);
Matrix<int16_t> readWeights(ByteReader& r);

void writePwps(ByteWriter& w, const std::vector<Matrix<int32_t>>& pwps);
std::vector<Matrix<int32_t>> readPwps(ByteReader& r);

void writeArtifactMeta(ByteWriter& w, const ArtifactMeta& meta);
ArtifactMeta readArtifactMeta(ByteReader& r);

// ---- Whole-artifact API ----

/**
 * Encode a compiled model as a .phim byte image; a non-empty @p meta
 * is stamped into a META section (an empty one writes the pre-META
 * byte layout, so unstamped artifacts stay byte-stable).
 */
std::vector<uint8_t> serializeModel(const CompiledModel& model,
                                    const ArtifactMeta& meta = {});

/**
 * Decode a .phim byte image; throws IoError on any malformation.
 * When @p metaOut is non-null it receives the META stamp (or a
 * default ArtifactMeta for pre-META files).
 */
CompiledModel parseModel(const uint8_t* data, size_t size,
                         ArtifactMeta* metaOut = nullptr);

/**
 * serializeModel + write to disk; throws IoError on I/O failure,
 * always naming the offending file path.
 */
void saveModel(const CompiledModel& model, const std::string& path,
               const ArtifactMeta& meta = {});

/**
 * Read + parseModel; throws IoError on I/O failure or malformation,
 * always naming the offending file path (IoError::path()).
 */
CompiledModel loadModel(const std::string& path,
                        ArtifactMeta* metaOut = nullptr);

/** Trace artifacts share the container format under kind 2. */
std::vector<uint8_t> serializeTrace(const ModelTrace& trace);
ModelTrace parseTrace(const uint8_t* data, size_t size);
void saveTrace(const ModelTrace& trace, const std::string& path);
ModelTrace loadTrace(const std::string& path);

} // namespace phi::io

#endif // PHI_IO_MODEL_IO_HH
