#include "io/session_io.hh"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <unistd.h>

#include "common/crc32.hh"
#include "common/failpoint.hh"

namespace phi::io
{

namespace
{

// ---- Container plumbing ---------------------------------------------
// Same layout discipline as model_io.cc's .phim assembler: header,
// CRC-stamped section table, payloads. Duplicated rather than shared
// because the helpers are deliberately private to each artifact
// family — the formats may diverge (e.g. delta-encoded state) without
// coupling their readers.

constexpr size_t kHeaderBytes = 4 + 4 + 4 + 4 + 8;
constexpr size_t kSectionEntryBytes = 4 + 4 + 8 + 8;

/** 0 in the CRC field means "unstamped"; a payload whose true CRC is
 *  0 is stamped 0xFFFFFFFF (accepted by crcMatches on the way in). */
uint32_t
stampCrc(uint32_t crc)
{
    return crc == 0 ? 0xFFFFFFFFu : crc;
}

bool
crcMatches(uint32_t stored, uint32_t computed)
{
    return stored == computed || stored == stampCrc(computed);
}

struct Section
{
    uint32_t tag;
    std::vector<uint8_t> payload;
};

std::vector<uint8_t>
assemble(uint32_t kind, const std::vector<Section>& sections)
{
    ByteWriter w;
    w.u32(kSessionMagic);
    w.u32(kSessionFormatVersion);
    w.u32(kind);
    w.u32(static_cast<uint32_t>(sections.size()));

    size_t total = kHeaderBytes + sections.size() * kSectionEntryBytes;
    size_t offset = total;
    for (const auto& s : sections)
        total += s.payload.size();
    w.u64(total);

    for (const auto& s : sections) {
        w.u32(s.tag);
        w.u32(stampCrc(crc32(s.payload.data(), s.payload.size())));
        w.u64(offset);
        w.u64(s.payload.size());
        offset += s.payload.size();
    }
    std::vector<uint8_t> out = w.buffer();
    out.reserve(total);
    for (const auto& s : sections)
        out.insert(out.end(), s.payload.begin(), s.payload.end());
    return out;
}

struct SectionView
{
    uint32_t tag;
    const uint8_t* data;
    size_t size;
};

std::vector<SectionView>
parseContainer(const uint8_t* data, size_t size)
{
    if (data == nullptr || size < kHeaderBytes)
        throw IoError("file too small to hold a .phis header");
    ByteReader r(data, size);
    if (r.u32() != kSessionMagic)
        throw IoError("bad magic: not a .phis session snapshot");
    const uint32_t version = r.u32();
    if (version != kSessionFormatVersion)
        throw IoError("unsupported session format version " +
                      std::to_string(version) + " (reader supports " +
                      std::to_string(kSessionFormatVersion) + ")");
    const uint32_t kind = r.u32();
    if (kind != kKindSessions)
        throw IoError("artifact kind " + std::to_string(kind) +
                      " is not a session snapshot");
    const uint32_t count = r.u32();
    const uint64_t declared = r.u64();
    if (declared != size)
        throw IoError("declared size " + std::to_string(declared) +
                      " != actual size " + std::to_string(size) +
                      " (truncated or padded snapshot)");
    if (count > (size - kHeaderBytes) / kSectionEntryBytes)
        throw IoError("section table larger than the snapshot");

    std::vector<SectionView> sections;
    sections.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
        const uint32_t tag = r.u32();
        const uint32_t storedCrc = r.u32();
        const uint64_t off = r.u64();
        const uint64_t len = r.u64();
        if (off > size || len > size - off)
            throw IoError("section " + std::to_string(i) +
                          " extends past the end of the snapshot");
        if (storedCrc != 0) {
            const uint32_t computed =
                crc32(data + off, static_cast<size_t>(len));
            if (!crcMatches(storedCrc, computed))
                throw IoError("session section CRC mismatch (stored " +
                              std::to_string(storedCrc) + ", computed " +
                              std::to_string(computed) +
                              "): corrupt snapshot");
        }
        sections.push_back({tag, data + off, static_cast<size_t>(len)});
    }
    return sections;
}

// ---- Record codecs --------------------------------------------------

/** Floats travel as IEEE-754 bit patterns (u32), which round-trips
 *  every value — including NaN payloads — byte-exactly. */
uint32_t
floatBits(float v)
{
    uint32_t bits;
    static_assert(sizeof(bits) == sizeof(v), "float is not 32-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

float
bitsFloat(uint32_t bits)
{
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

void
writeRecord(ByteWriter& w, const SessionStateRecord& rec)
{
    if (rec.layerParams.size() != rec.layerState.size())
        throw IoError("session " + std::to_string(rec.id) +
                      ": layerParams/layerState count mismatch");
    w.u64(rec.id);
    w.str(rec.model);
    w.u64(rec.version);
    w.u64(rec.steps);
    w.u64(rec.layerParams.size());
    for (size_t l = 0; l < rec.layerParams.size(); ++l) {
        const LifParams& p = rec.layerParams[l];
        const LifState& s = rec.layerState[l];
        if (s.membrane.size() != s.refractory.size())
            throw IoError("session " + std::to_string(rec.id) +
                          " layer " + std::to_string(l) +
                          ": membrane/refractory size mismatch");
        w.u32(floatBits(p.threshold));
        w.u32(floatBits(p.leak));
        w.u8(p.hardReset ? 1 : 0);
        w.i32(p.refractory);
        w.u64(s.membrane.size());
        for (float v : s.membrane)
            w.u32(floatBits(v));
        for (int32_t r : s.refractory)
            w.i32(r);
    }
}

SessionStateRecord
readRecord(ByteReader& r)
{
    SessionStateRecord rec;
    rec.id = r.u64();
    rec.model = r.str();
    if (rec.model.empty())
        throw IoError("session " + std::to_string(rec.id) +
                      " has an empty model name");
    rec.version = r.u64();
    rec.steps = r.u64();
    const uint64_t layers = r.count(/*elemBytes=*/4 + 4 + 1 + 4 + 8);
    rec.layerParams.reserve(layers);
    rec.layerState.reserve(layers);
    for (uint64_t l = 0; l < layers; ++l) {
        LifParams p;
        p.threshold = bitsFloat(r.u32());
        p.leak = bitsFloat(r.u32());
        p.hardReset = r.u8() != 0;
        p.refractory = r.i32();
        if (!(p.threshold > 0))
            throw IoError("layer " + std::to_string(l) +
                          ": non-positive LIF threshold");
        if (!(p.leak >= 0.0f && p.leak <= 1.0f))
            throw IoError("layer " + std::to_string(l) +
                          ": LIF leak outside [0, 1]");
        if (p.refractory < 0)
            throw IoError("layer " + std::to_string(l) +
                          ": negative refractory period");
        LifState s;
        const uint64_t neurons = r.count(/*elemBytes=*/4 + 4);
        s.membrane.reserve(neurons);
        for (uint64_t i = 0; i < neurons; ++i)
            s.membrane.push_back(bitsFloat(r.u32()));
        s.refractory.reserve(neurons);
        for (uint64_t i = 0; i < neurons; ++i) {
            const int32_t c = r.i32();
            if (c < 0)
                throw IoError("layer " + std::to_string(l) +
                              ": negative refractory counter");
            s.refractory.push_back(c);
        }
        rec.layerParams.push_back(p);
        rec.layerState.push_back(std::move(s));
    }
    return rec;
}

std::vector<uint8_t>
readFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        throw IoError(path, IoError("cannot open for reading"));
    PHI_FAILPOINT(failpoint::sites::kIoRead,
                  throw IoError(path, IoError("injected read failure "
                                              "(failpoint 'io.read')")));
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    if (size > 0 &&
        !in.read(reinterpret_cast<char*>(bytes.data()), size))
        throw IoError(path, IoError("read failed"));
    return bytes;
}

void
writeFileAtomic(const std::string& path,
                const std::vector<uint8_t>& bytes)
{
    // Write-then-rename, per-process temp name, temp unlinked on any
    // failure — same publication discipline as .phim artifacts.
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    try {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw IoError(path, IoError("cannot open temp file '" + tmp +
                                        "' for writing"));
        PHI_FAILPOINT(
            failpoint::sites::kIoWrite,
            throw IoError(path, IoError("injected mid-write failure "
                                        "(failpoint 'io.write')")));
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            throw IoError(path,
                          IoError("write to '" + tmp + "' failed"));
        out.close();
        if (std::rename(tmp.c_str(), path.c_str()) != 0)
            throw IoError(path,
                          IoError("rename from '" + tmp + "' failed"));
    } catch (...) {
        std::remove(tmp.c_str());
        throw;
    }
}

} // namespace

std::vector<uint8_t>
serializeSessions(const SessionSnapshot& snap)
{
    ByteWriter w;
    w.u64(snap.nextSessionId);
    w.u64(snap.sessions.size());
    for (const auto& rec : snap.sessions)
        writeRecord(w, rec);
    return assemble(kKindSessions,
                    {{kSectionSessions, w.buffer()}});
}

SessionSnapshot
parseSessions(const uint8_t* data, size_t size)
{
    const auto sections = parseContainer(data, size);
    const SectionView* sess = nullptr;
    for (const auto& s : sections)
        if (s.tag == kSectionSessions)
            sess = &s;
    if (sess == nullptr)
        throw IoError("missing required section 'SESS'");

    ByteReader r(sess->data, sess->size);
    SessionSnapshot snap;
    snap.nextSessionId = r.u64();
    const uint64_t count = r.count(/*elemBytes=*/8 + 4 + 8 + 8 + 8);
    snap.sessions.reserve(count);
    for (uint64_t i = 0; i < count; ++i)
        snap.sessions.push_back(readRecord(r));
    for (const auto& rec : snap.sessions)
        if (rec.id >= snap.nextSessionId)
            throw IoError("session id " + std::to_string(rec.id) +
                          " >= nextSessionId " +
                          std::to_string(snap.nextSessionId));
    return snap;
}

void
saveSessions(const SessionSnapshot& snap, const std::string& path)
{
    writeFileAtomic(path, serializeSessions(snap));
}

SessionSnapshot
loadSessions(const std::string& path)
{
    const std::vector<uint8_t> bytes = readFile(path);
    try {
        return parseSessions(bytes.data(), bytes.size());
    } catch (const IoError& e) {
        if (e.path().empty())
            throw IoError(path, e);
        throw;
    }
}

} // namespace phi::io
