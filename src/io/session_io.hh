/**
 * @file
 * `.phis` session snapshots: the durable form of live temporal serving
 * state, so open sessions survive a restart and can migrate between
 * serving processes.
 *
 * The container follows the `.phim` conventions exactly — a magic +
 * version + kind header, a section table whose entries carry a
 * CRC-32 of their payload, bounds-checked ByteReader parsing, and
 * atomic write-then-rename publication — so the operational story
 * (corrupt file = clean typed rejection, never a crash or a torn
 * artifact) is the same for both artifact families:
 *
 *     +-----------------------------------------------+
 *     | magic "PHIS" | version | kind | nsect | total |
 *     +-----------------------------------------------+
 *     | per section: tag, crc32, offset, length       |
 *     +-----------------------------------------------+
 *     | SESS payload: session records                 |
 *     +-----------------------------------------------+
 *
 * Each session record carries everything SessionManager needs to
 * resume the stream exactly where it stopped: the registry model
 * *name* to re-pin (the version is provenance — restore pins the
 * name's current epoch, the same contract a reconnecting client
 * gets), the per-layer LifParams, and the per-layer membrane +
 * refractory vectors.
 *
 * These structs are plain data (no SessionManager dependency) so the
 * io layer stays beneath the runtime in the dependency order.
 */

#ifndef PHI_IO_SESSION_IO_HH
#define PHI_IO_SESSION_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "io/serialize.hh"
#include "snn/lif.hh"

namespace phi::io
{

/** "PHIS" when read as little-endian bytes from the file. */
constexpr uint32_t kSessionMagic = 0x53494850u;
constexpr uint32_t kSessionFormatVersion = 1;
constexpr uint32_t kKindSessions = 1;
/** "SESS": the session-record section. */
constexpr uint32_t kSectionSessions = 0x53534553u;

/** One serialized session: identity, model binding, temporal state. */
struct SessionStateRecord
{
    uint64_t id = 0;
    /** Registry name the session serves; restore re-pins it. */
    std::string model;
    /** Version the session was pinned to when snapshotted
     *  (provenance — restore pins the name's current version). */
    uint64_t version = 0;
    /** Timesteps served before the snapshot. */
    uint64_t steps = 0;
    /** Per-layer neuron dynamics; one entry per model layer. */
    std::vector<LifParams> layerParams;
    /** Per-layer membrane + refractory vectors (same count). */
    std::vector<LifState> layerState;
};

/** Everything a SessionManager snapshots. */
struct SessionSnapshot
{
    /** Restored managers allocate new ids above every saved one. */
    uint64_t nextSessionId = 1;
    std::vector<SessionStateRecord> sessions;
};

/** Serialize a snapshot to `.phis` bytes. */
std::vector<uint8_t> serializeSessions(const SessionSnapshot& snap);

/** Parse `.phis` bytes; @throws IoError on any corruption (bad magic,
 *  version, kind, CRC mismatch, truncation, invalid LIF state). */
SessionSnapshot parseSessions(const uint8_t* data, size_t size);

/** serializeSessions() + atomic write-then-rename to @p path. */
void saveSessions(const SessionSnapshot& snap, const std::string& path);

/** Read + parseSessions(); throws IoError annotated with @p path. */
SessionSnapshot loadSessions(const std::string& path);

} // namespace phi::io

#endif // PHI_IO_SESSION_IO_HH
