/**
 * @file
 * Endian-stable binary primitives for the artifact format.
 *
 * Every multi-byte value is encoded little-endian byte by byte, so the
 * on-disk representation is identical on any host. The reader is fully
 * bounds-checked: running off the end of the buffer throws IoError
 * rather than reading garbage, which is what turns a truncated or
 * corrupt artifact into a clean rejection.
 *
 * Unlike phi_assert (internal invariants, panics), artifact problems
 * are user-level input errors and always throw — a serving process must
 * be able to survive being handed a bad file.
 */

#ifndef PHI_IO_SERIALIZE_HH
#define PHI_IO_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace phi::io
{

/** Artifact I/O failure: corrupt, truncated or unreadable data. */
class IoError : public std::runtime_error
{
  public:
    explicit IoError(const std::string& what)
        : std::runtime_error("phi artifact error: " + what),
          detailText(what)
    {
    }

    /**
     * The same failure annotated with the offending file path —
     * loadModel()/saveModel() wrap parser throws this way so a
     * process juggling many artifacts always knows *which* file was
     * truncated or corrupt.
     */
    IoError(const std::string& path, const IoError& cause)
        : std::runtime_error("phi artifact error in '" + path +
                             "': " + cause.detail()),
          detailText(cause.detail()), pathText(path)
    {
    }

    /** The failure description without the prefix/path decoration. */
    const std::string& detail() const { return detailText; }

    /** Offending file path; empty when the error has no file context
     *  (e.g. parsing an in-memory buffer). */
    const std::string& path() const { return pathText; }

  private:
    std::string detailText;
    std::string pathText;
};

/** Growable little-endian byte sink. */
class ByteWriter
{
  public:
    void
    u8(uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u16(uint16_t v)
    {
        buf.push_back(static_cast<uint8_t>(v));
        buf.push_back(static_cast<uint8_t>(v >> 8));
    }

    void
    u32(uint32_t v)
    {
        for (int s = 0; s < 32; s += 8)
            buf.push_back(static_cast<uint8_t>(v >> s));
    }

    void
    u64(uint64_t v)
    {
        for (int s = 0; s < 64; s += 8)
            buf.push_back(static_cast<uint8_t>(v >> s));
    }

    void i16(int16_t v) { u16(static_cast<uint16_t>(v)); }
    void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    /** IEEE-754 double via its bit pattern. */
    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    /** Length-prefixed UTF-8/byte string. */
    void
    str(const std::string& s)
    {
        // One grow for prefix + payload. Also keeps GCC 12's -O2
        // stringop-overflow analysis from mistaking the u32 push_back
        // growth for the insert's destination (a false positive that
        // breaks -Werror builds).
        buf.reserve(buf.size() + sizeof(uint32_t) + s.size());
        u32(static_cast<uint32_t>(s.size()));
        buf.insert(buf.end(), s.begin(), s.end());
    }

    void
    bytes(const void* p, size_t n)
    {
        const auto* b = static_cast<const uint8_t*>(p);
        buf.insert(buf.end(), b, b + n);
    }

    size_t size() const { return buf.size(); }
    const std::vector<uint8_t>& buffer() const { return buf; }

    /** Overwrite a previously written u64 (for back-patching offsets). */
    void
    patchU64(size_t pos, uint64_t v)
    {
        if (pos + 8 > buf.size())
            throw IoError("patch past end of buffer");
        for (int i = 0; i < 8; ++i)
            buf[pos + i] = static_cast<uint8_t>(v >> (8 * i));
    }

  private:
    std::vector<uint8_t> buf;
};

/** Bounds-checked little-endian byte source over a borrowed buffer. */
class ByteReader
{
  public:
    ByteReader(const uint8_t* data, size_t size)
        : base(data), len(size), pos(0)
    {
    }

    size_t offset() const { return pos; }
    size_t remaining() const { return len - pos; }

    void
    seek(size_t to)
    {
        if (to > len)
            throw IoError("seek past end of artifact");
        pos = to;
    }

    uint8_t
    u8()
    {
        need(1);
        return base[pos++];
    }

    uint16_t
    u16()
    {
        need(2);
        uint16_t v = static_cast<uint16_t>(base[pos]) |
                     static_cast<uint16_t>(base[pos + 1]) << 8;
        pos += 2;
        return v;
    }

    uint32_t
    u32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(base[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(base[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    int16_t i16() { return static_cast<int16_t>(u16()); }
    int32_t i32() { return static_cast<int32_t>(u32()); }
    int64_t i64() { return static_cast<int64_t>(u64()); }

    /**
     * Bulk copy of n raw bytes into caller storage. Only correct for
     * data whose encoded layout matches the destination's in-memory
     * layout (e.g. little-endian PODs on a little-endian host); the
     * matrix readers use it to rehydrate rows straight into their
     * aligned buffers without a per-element decode.
     */
    void
    bytesInto(void* dst, size_t n)
    {
        need(n);
        std::memcpy(dst, base + pos, n);
        pos += n;
    }

    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char*>(base + pos), n);
        pos += n;
        return s;
    }

    /**
     * Read a count that sizes an upcoming allocation; rejects values a
     * truncated buffer could never satisfy, so corrupt counts fail fast
     * instead of triggering a multi-gigabyte allocation.
     *
     * @param elemBytes  minimum encoded bytes per counted element.
     */
    uint64_t
    count(uint64_t elemBytes)
    {
        uint64_t n = u64();
        if (elemBytes > 0 && n > remaining() / elemBytes)
            throw IoError("element count " + std::to_string(n) +
                          " exceeds remaining artifact bytes");
        return n;
    }

  private:
    void
    need(size_t n)
    {
        if (n > len - pos)
            throw IoError("truncated artifact: need " + std::to_string(n) +
                          " bytes at offset " + std::to_string(pos) +
                          ", have " + std::to_string(len - pos));
    }

    const uint8_t* base;
    size_t len;
    size_t pos;
};

} // namespace phi::io

#endif // PHI_IO_SERIALIZE_HH
