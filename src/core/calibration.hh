/**
 * @file
 * Phi calibration stage (Sec. 3.2): derive per-partition pattern sets
 * from a small set of sample activation matrices.
 */

#ifndef PHI_CORE_CALIBRATION_HH
#define PHI_CORE_CALIBRATION_HH

#include <vector>

#include "core/kmeans.hh"
#include "core/pattern.hh"
#include "numeric/binary_matrix.hh"

namespace phi
{

/** Knobs of the calibration stage. */
struct CalibrationConfig
{
    /** Partition (row-tile) width in bits (paper: 16). */
    int k = 16;
    /** Patterns per partition (paper: 128). */
    int q = 128;
    /** Clustering parameters; numClusters is overwritten with q. */
    KMeansConfig kmeans;
    /**
     * Cap on rows sampled per partition across all calibration matrices;
     * the paper notes a small calibration subset suffices (Sec. 3.2).
     * 0 disables the cap.
     */
    size_t maxRowsPerPartition = 16384;
    /**
     * Execution engine knobs: partitions calibrate in parallel (each is
     * fully independent), and the same config feeds the clustering's
     * own sweeps. Results are identical at any thread count.
     */
    ExecutionConfig exec;
};

/**
 * Calibrate a pattern table for one layer from sample activations.
 *
 * All samples must share the same column count. Rows are pooled across
 * samples per partition, reduced to a multiplicity histogram, and
 * clustered with BinaryKMeans.
 */
PatternTable calibrateLayer(
    const std::vector<const BinaryMatrix*>& samples,
    const CalibrationConfig& cfg);

/** Convenience overload for a single calibration matrix. */
PatternTable calibrateLayer(const BinaryMatrix& sample,
                            const CalibrationConfig& cfg);

} // namespace phi

#endif // PHI_CORE_CALIBRATION_HH
