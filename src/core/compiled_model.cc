#include "core/compiled_model.hh"

namespace phi
{

CompiledLayer::CompiledLayer(std::string name, PatternTable table)
    : layerName(std::move(name)), patternTable(std::move(table))
{
}

CompiledLayer::CompiledLayer(std::string name, PatternTable table,
                             Matrix<int16_t> weights,
                             std::vector<Matrix<int32_t>> pwps,
                             PwpTier quant)
    : layerName(std::move(name)), patternTable(std::move(table)),
      weightMatrix(std::move(weights))
{
    phi_assert(ceilDiv(weightMatrix.rows(),
                       static_cast<size_t>(patternTable.k())) <=
               patternTable.numPartitions(),
               "weights need more partitions than the calibrated table");
    phi_assert(pwps.size() == patternTable.numPartitions(),
               "PWP list must hold one matrix per partition (got ",
               pwps.size(), ", need ", patternTable.numPartitions(),
               ")");
    for (size_t p = 0; p < pwps.size(); ++p) {
        phi_assert(pwps[p].rows() == patternTable.partition(p).size() &&
                   (pwps[p].rows() == 0 ||
                    pwps[p].cols() == weightMatrix.cols()),
                   "PWP shape mismatch in partition ", p);
    }
    arena = PwpArena(pwps, weightMatrix.cols(), quant);
}

LayerDecomposition
CompiledLayer::decompose(const BinaryMatrix& acts,
                         const ExecutionConfig& exec) const
{
    return decomposeLayer(acts, patternTable, exec);
}

Matrix<int32_t>
CompiledLayer::compute(const LayerDecomposition& dec,
                       const ExecutionConfig& exec) const
{
    phi_assert(hasWeights(),
               "compute() requires a layer compiled with weights");
    return phiGemmWithArena(dec, arena, weightMatrix, exec);
}

void
CompiledLayer::computeInto(Matrix<int32_t>& out,
                           const LayerDecomposition& dec,
                           const ExecutionConfig& exec) const
{
    phi_assert(hasWeights(),
               "computeInto() requires a layer compiled with weights");
    phiGemmWithArenaInto(out, dec, arena, weightMatrix, exec);
}

SparsityBreakdown
CompiledLayer::breakdown(const BinaryMatrix& acts,
                         const LayerDecomposition& dec) const
{
    return computeBreakdown(acts, dec, patternTable);
}

CompiledModel::CompiledModel(std::vector<CompiledLayer> layers,
                             CalibrationConfig calibration)
    : layerList(std::move(layers)), calib(calibration)
{
}

const CompiledLayer&
CompiledModel::layer(size_t idx) const
{
    phi_assert(idx < layerList.size(), "layer ", idx, " out of ",
               layerList.size());
    return layerList[idx];
}

std::optional<size_t>
CompiledModel::findLayer(const std::string& name) const
{
    for (size_t i = 0; i < layerList.size(); ++i)
        if (layerList[i].name() == name)
            return i;
    return std::nullopt;
}

size_t
CompiledModel::pwpFootprintBytes() const
{
    size_t bytes = 0;
    for (const auto& l : layerList)
        if (l.hasWeights())
            bytes += pwpBytes(l.table(), l.weights().cols());
    return bytes;
}

size_t
CompiledModel::pwpResidentBytes() const
{
    size_t bytes = 0;
    for (const auto& l : layerList)
        bytes += l.pwpArena().bytes();
    return bytes;
}

} // namespace phi
