#include "core/kmeans.hh"

#include <algorithm>
#include <unordered_map>

#include "common/rng.hh"

namespace phi
{

namespace
{

/** Points per parallel chunk of the assignment / distance sweeps. */
constexpr size_t kKmeansPointGrain = 256;

/** Distance from value to the nearest centre; also reports the index. */
int
nearestCentre(uint64_t value, const std::vector<uint64_t>& centres,
              size_t& best_idx)
{
    int best = 65;
    best_idx = 0;
    for (size_t c = 0; c < centres.size(); ++c) {
        int d = hammingDistance(value, centres[c]);
        if (d < best) {
            best = d;
            best_idx = c;
        }
    }
    return best;
}

} // namespace

std::vector<WeightedRow>
BinaryKMeans::histogram(const std::vector<uint64_t>& rows)
{
    std::unordered_map<uint64_t, uint64_t> counts;
    for (uint64_t r : rows)
        ++counts[r];
    std::vector<WeightedRow> hist(counts.begin(), counts.end());
    // Sort for determinism independent of hash ordering.
    std::sort(hist.begin(), hist.end());
    return hist;
}

uint64_t
BinaryKMeans::cost(const std::vector<WeightedRow>& hist,
                   const PatternSet& ps)
{
    if (ps.empty())
        return ~0ull;
    uint64_t total = 0;
    for (const auto& [value, count] : hist) {
        size_t idx;
        total += count *
                 static_cast<uint64_t>(
                     nearestCentre(value, ps.patterns(), idx));
    }
    return total;
}

PatternSet
BinaryKMeans::fit(const std::vector<WeightedRow>& hist, int k) const
{
    phi_assert(k >= 1 && k <= 64, "k must be in [1,64]");
    const uint64_t mask = lowMask(k);

    // Step 2 of Alg. 1: filter all-zero and one-hot rows. Zero rows need
    // no computation; a one-hot pattern's PWP is just a weight row, so
    // clustering them is meaningless.
    std::vector<WeightedRow> pts;
    pts.reserve(hist.size());
    for (const auto& [value, count] : hist) {
        uint64_t v = value & mask;
        if (v == 0 || isOneHot(v))
            continue;
        pts.emplace_back(v, count);
    }

    if (cfg.maxDistinct > 0 && pts.size() > cfg.maxDistinct) {
        // Keep the most frequent distinct rows; sort is
        // count-descending with value as a deterministic tie-break.
        std::sort(pts.begin(), pts.end(),
                  [](const WeightedRow& a, const WeightedRow& b) {
                      if (a.second != b.second)
                          return a.second > b.second;
                      return a.first < b.first;
                  });
        pts.resize(cfg.maxDistinct);
        std::sort(pts.begin(), pts.end());
    }

    const size_t q = static_cast<size_t>(cfg.numClusters);
    if (pts.empty())
        return PatternSet(k, {});

    // If there are no more distinct meaningful rows than requested
    // patterns, the distinct rows themselves are the optimal centres.
    if (pts.size() <= q) {
        std::vector<uint64_t> centres;
        centres.reserve(pts.size());
        for (const auto& [value, count] : pts)
            centres.push_back(value);
        return PatternSet(k, centres);
    }

    Rng rng(cfg.seed);

    // --- Initialisation ---
    std::vector<uint64_t> centres;
    centres.reserve(q);
    if (cfg.init == KMeansConfig::Init::PlusPlus) {
        // k-means++ adapted to Hamming distance with multiplicities.
        centres.push_back(
            pts[rng.nextBounded(pts.size())].first);
        std::vector<uint64_t> min_d(pts.size());
        const size_t chunks = numChunks(0, pts.size(), kKmeansPointGrain);
        std::vector<uint64_t> chunkTotals(chunks);
        while (centres.size() < q) {
            // Parallel distance sweep; chunk subtotals are summed in
            // chunk order so the seeding stream is thread-count
            // independent.
            parallelForChunks(
                cfg.exec, 0, pts.size(), kKmeansPointGrain,
                [&](size_t chunk, size_t i0, size_t i1) {
                    uint64_t sub = 0;
                    for (size_t i = i0; i < i1; ++i) {
                        size_t idx;
                        int d = nearestCentre(pts[i].first, centres, idx);
                        min_d[i] = pts[i].second *
                                   static_cast<uint64_t>(d) *
                                   static_cast<uint64_t>(d);
                        sub += min_d[i];
                    }
                    chunkTotals[chunk] = sub;
                });
            uint64_t total = 0;
            for (size_t c = 0; c < chunks; ++c)
                total += chunkTotals[c];
            if (total == 0)
                break; // every point coincides with a centre
            uint64_t pick = rng.nextBounded(total);
            uint64_t acc = 0;
            size_t chosen = pts.size() - 1;
            for (size_t i = 0; i < pts.size(); ++i) {
                acc += min_d[i];
                if (pick < acc) {
                    chosen = i;
                    break;
                }
            }
            centres.push_back(pts[chosen].first);
        }
    } else {
        // Random distinct initial centres from the data (Alg. 1 line 1).
        std::vector<size_t> order(pts.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        rng.shuffle(order);
        for (size_t i = 0; i < pts.size() && centres.size() < q; ++i)
            centres.push_back(pts[order[i]].first);
    }

    // --- Lloyd iterations (Alg. 1 lines 3-6) ---
    std::vector<size_t> assign(pts.size(), 0);
    const size_t aChunks = numChunks(0, pts.size(), kKmeansPointGrain);
    std::vector<uint8_t> chunkChanged(aChunks);
    // Per-chunk centroid partials (ones flattened as centre * k + bit),
    // merged sequentially in chunk order: the deterministic-reduction
    // pattern — no atomics, bit-identical at any thread count.
    std::vector<std::vector<uint64_t>> chunkOnes(aChunks);
    std::vector<std::vector<uint64_t>> chunkMembers(aChunks);
    for (int iter = 0; iter < cfg.maxIters; ++iter) {
        const size_t ku = static_cast<size_t>(k);
        parallelForChunks(
            cfg.exec, 0, pts.size(), kKmeansPointGrain,
            [&](size_t chunk, size_t i0, size_t i1) {
                chunkChanged[chunk] = 0;
                auto& lones = chunkOnes[chunk];
                auto& lmembers = chunkMembers[chunk];
                lones.assign(centres.size() * ku, 0);
                lmembers.assign(centres.size(), 0);
                for (size_t i = i0; i < i1; ++i) {
                    size_t idx;
                    nearestCentre(pts[i].first, centres, idx);
                    if (assign[i] != idx) {
                        assign[i] = idx;
                        chunkChanged[chunk] = 1;
                    }
                    const auto& [value, count] = pts[i];
                    lmembers[idx] += count;
                    uint64_t v = value;
                    while (v) {
                        int b = std::countr_zero(v);
                        v &= v - 1;
                        lones[idx * ku + static_cast<size_t>(b)] +=
                            count;
                    }
                }
            });

        bool changed = (iter == 0);
        for (size_t c = 0; c < aChunks; ++c)
            changed = changed || chunkChanged[c] != 0;
        if (!changed)
            break;

        // Weighted bit-frequency centroid, rounded back to {0,1}
        // (Alg. 1 lines 5-6). ones[c][b] counts members with bit b set.
        std::vector<std::vector<uint64_t>> ones(
            centres.size(), std::vector<uint64_t>(k, 0));
        std::vector<uint64_t> members(centres.size(), 0);
        for (size_t chunk = 0; chunk < aChunks; ++chunk) {
            for (size_t c = 0; c < centres.size(); ++c) {
                members[c] += chunkMembers[chunk][c];
                for (size_t b = 0; b < ku; ++b)
                    ones[c][b] += chunkOnes[chunk][c * ku + b];
            }
        }

        for (size_t c = 0; c < centres.size(); ++c) {
            if (members[c] == 0) {
                // Reseed an empty cluster from the point farthest from
                // its current centre (weighted).
                uint64_t worst = 0;
                size_t worst_i = 0;
                for (size_t i = 0; i < pts.size(); ++i) {
                    uint64_t d = pts[i].second *
                        static_cast<uint64_t>(hammingDistance(
                            pts[i].first, centres[assign[i]]));
                    if (d > worst) {
                        worst = d;
                        worst_i = i;
                    }
                }
                centres[c] = pts[worst_i].first;
                continue;
            }
            uint64_t bits = 0;
            for (int b = 0; b < k; ++b) {
                // Round half up: ties favour a set bit.
                if (2 * ones[c][b] >= members[c])
                    bits |= 1ull << b;
            }
            centres[c] = bits;
        }
    }

    // Final clean-up: patterns must be meaningful (not zero / one-hot,
    // which the assignment stage handles natively) and unique.
    std::vector<uint64_t> final_centres;
    final_centres.reserve(centres.size());
    for (uint64_t c : centres) {
        if (c == 0 || isOneHot(c))
            continue;
        if (std::find(final_centres.begin(), final_centres.end(), c) ==
            final_centres.end())
            final_centres.push_back(c);
    }
    return PatternSet(k, final_centres);
}

} // namespace phi
