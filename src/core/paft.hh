/**
 * @file
 * Pattern-Aware Fine-Tuning (PAFT) simulation (Sec. 3.3).
 *
 * The paper fine-tunes the SNN with a Hamming-distance regulariser so
 * spike activations drift toward their assigned patterns. We do not have
 * the training loop, so we model its *architectural effect* directly:
 * each mismatching bit of a pattern-assigned row flips toward the pattern
 * with probability `alignStrength` (the analogue of the regulariser
 * weight lambda). The flipped-bit rate feeds the accuracy model, which
 * charges the documented small accuracy cost.
 */

#ifndef PHI_CORE_PAFT_HH
#define PHI_CORE_PAFT_HH

#include "core/pattern.hh"
#include "numeric/binary_matrix.hh"

namespace phi
{

class Rng;

/** PAFT knobs. */
struct PaftConfig
{
    /**
     * Probability that a mismatching bit aligns to the pattern; plays
     * the role of the paper's lambda/learning-rate search (0 disables,
     * 1 makes every assigned row exactly match its pattern).
     */
    double alignStrength = 0.5;
};

/** Outcome statistics of one PAFT application. */
struct PaftResult
{
    size_t mismatchBitsBefore = 0; // L2 nnz over assigned rows
    size_t bitsFlipped = 0;        // activation bits changed
    size_t elements = 0;           // M*K

    /** Fraction of activation elements modified; drives accuracy loss. */
    double
    flipRate() const
    {
        return elements ? static_cast<double>(bitsFlipped) /
                          static_cast<double>(elements)
                        : 0.0;
    }
};

/**
 * Align activations toward their assigned patterns in place.
 *
 * Rows without an assigned pattern are untouched (there is nothing to
 * align with). The transformation is idempotent at alignStrength = 1.
 */
PaftResult applyPaft(BinaryMatrix& acts, const PatternTable& table,
                     const PaftConfig& cfg, Rng& rng);

} // namespace phi

#endif // PHI_CORE_PAFT_HH
