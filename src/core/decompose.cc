#include "core/decompose.hh"

#include <algorithm>
#include <numeric>
#include <unordered_map>

namespace phi
{

namespace
{

/** Rows per decomposition chunk; fixed so chunk boundaries (and with
 *  them the per-chunk memo caches) never depend on the thread count. */
constexpr size_t kDecomposeRowGrain = 256;

/** Append row's merged-sign Level 2 entries in ascending column order. */
void
emitL2Entries(const RowAssignment& a, std::vector<L2Entry>& entries)
{
    uint64_t pos = a.posMask;
    uint64_t neg = a.negMask;
    while (pos || neg) {
        int pb = pos ? std::countr_zero(pos) : 65;
        int nb = neg ? std::countr_zero(neg) : 65;
        if (pb < nb) {
            entries.push_back({static_cast<uint16_t>(pb), int8_t{1}});
            pos &= pos - 1;
        } else {
            entries.push_back({static_cast<uint16_t>(nb), int8_t{-1}});
            neg &= neg - 1;
        }
    }
}

} // namespace

PatternAssigner::PatternAssigner(const PatternSet& ps)
    : set(ps)
{
}

const RowAssignment&
PatternAssigner::assign(uint64_t row) const
{
    auto it = cache.find(row);
    if (it != cache.end())
        return it->second;
    auto [ins, ok] = cache.emplace(row, compute(row));
    return ins->second;
}

RowAssignment
PatternAssigner::compute(uint64_t row) const
{
    RowAssignment best;
    best.patternId = 0;
    best.posMask = row;
    best.negMask = 0;
    int best_nnz = popcount64(row);

    // An all-zero row can never be improved; the scan below would only
    // produce negative corrections.
    if (row == 0)
        return best;

    const auto& pats = set.patterns();
    for (size_t i = 0; i < pats.size(); ++i) {
        uint64_t diff = row ^ pats[i];
        int nnz = popcount64(diff);
        // Strict improvement required: a tie would add an L1 PWP
        // accumulation without reducing L2 work.
        if (nnz < best_nnz) {
            best_nnz = nnz;
            best.patternId = static_cast<uint16_t>(i + 1);
            best.posMask = row & ~pats[i]; // 1 in row, 0 in pattern -> +1
            best.negMask = pats[i] & ~row; // 0 in row, 1 in pattern -> -1
        }
    }
    return best;
}

TileDecomposition
decomposeTile(const BinaryMatrix& acts, size_t partition,
              const PatternAssigner& assigner,
              const ExecutionConfig& exec)
{
    const int k = assigner.patternSet().k();
    const size_t start = partition * static_cast<size_t>(k);
    phi_assert(start < acts.cols(), "partition ", partition,
               " beyond activation width ", acts.cols());

    const size_t rows = acts.rows();
    TileDecomposition tile;
    tile.partition = partition;
    tile.k = k;
    tile.patternIds.resize(rows);
    tile.l2Offsets.resize(rows + 1, 0);

    // Parallel sweep: pattern ids and per-row entry counts are disjoint
    // writes; Level 2 entries land in per-chunk buffers concatenated in
    // chunk order below, so the layout equals the sequential one.
    const size_t chunks = numChunks(0, rows, kDecomposeRowGrain);
    std::vector<std::vector<L2Entry>> chunkEntries(chunks);
    parallelForChunks(
        exec, 0, rows, kDecomposeRowGrain,
        [&](size_t chunk, size_t r0, size_t r1) {
            std::unordered_map<uint64_t, RowAssignment> memo;
            std::vector<L2Entry>& entries = chunkEntries[chunk];
            for (size_t r = r0; r < r1; ++r) {
                const uint64_t row = acts.extract(r, start, k);
                auto it = memo.find(row);
                if (it == memo.end())
                    it = memo.emplace(row, assigner.assignUncached(row))
                             .first;
                const RowAssignment& a = it->second;
                tile.patternIds[r] = a.patternId;
                const size_t before = entries.size();
                emitL2Entries(a, entries);
                tile.l2Offsets[r + 1] =
                    static_cast<uint32_t>(entries.size() - before);
            }
        });

    // Row counts -> CSR offsets, then stitch the chunks back together.
    for (size_t r = 0; r < rows; ++r)
        tile.l2Offsets[r + 1] += tile.l2Offsets[r];
    tile.l2Entries.reserve(tile.l2Offsets[rows]);
    for (const auto& entries : chunkEntries)
        tile.l2Entries.insert(tile.l2Entries.end(), entries.begin(),
                              entries.end());
    return tile;
}

LayerDecomposition
decomposeLayer(const BinaryMatrix& acts, const PatternTable& table,
               const ExecutionConfig& exec)
{
    const int k = table.k();
    const size_t partitions =
        ceilDiv(acts.cols(), static_cast<size_t>(k));
    phi_assert(table.numPartitions() >= partitions,
               "pattern table has ", table.numPartitions(),
               " partitions, layer needs ", partitions);

    LayerDecomposition dec;
    dec.m = acts.rows();
    dec.kTotal = acts.cols();
    dec.k = k;
    dec.tiles.reserve(partitions);
    for (size_t p = 0; p < partitions; ++p) {
        PatternAssigner assigner(table.partition(p));
        dec.tiles.push_back(decomposeTile(acts, p, assigner, exec));
    }
    dec.buildRowIndex();
    dec.buildServeOrder();
    return dec;
}

void
buildRowIndexInto(const LayerDecomposition& dec,
                  std::vector<uint16_t>& rowIds,
                  std::vector<uint8_t>& rowCounts)
{
    const size_t numTiles = dec.tiles.size();
    rowIds.assign(dec.m * numTiles, 0);
    rowCounts.assign(dec.m * numTiles, 0);
    // One sequential pass per tile; the strided writes transpose the
    // tile-major arrays into the row-major index.
    for (size_t t = 0; t < numTiles; ++t) {
        const TileDecomposition& tile = dec.tiles[t];
        phi_assert(tile.patternIds.size() == dec.m,
                   "tile ", t, " holds ", tile.patternIds.size(),
                   " rows, layer has ", dec.m);
        for (size_t r = 0; r < dec.m; ++r) {
            rowIds[r * numTiles + t] = tile.patternIds[r];
            auto [lo, hi] = tile.rowRange(r);
            phi_assert(hi - lo <= static_cast<uint32_t>(tile.k),
                       "row ", r, " holds ", hi - lo,
                       " L2 entries, more than partition width ",
                       tile.k);
            rowCounts[r * numTiles + t] =
                static_cast<uint8_t>(hi - lo);
        }
    }
}

void
LayerDecomposition::buildRowIndex()
{
    buildRowIndexInto(*this, rowPatternIds, rowL2Counts);
    const size_t numTiles = tiles.size();
    tileMaxPatternId.assign(numTiles, 0);
    tileMaxL2Col.assign(numTiles, 0);
    for (size_t t = 0; t < numTiles; ++t) {
        for (uint16_t id : tiles[t].patternIds)
            tileMaxPatternId[t] = std::max(tileMaxPatternId[t], id);
        for (const L2Entry& e : tiles[t].l2Entries)
            tileMaxL2Col[t] = std::max(tileMaxL2Col[t], e.col);
    }
}

void
LayerDecomposition::buildServeOrder()
{
    const size_t numTiles = tiles.size();
    serveOrder.resize(m);
    std::iota(serveOrder.begin(), serveOrder.end(), 0u);
    if (numTiles == 0)
        return; // degenerate layer: natural order
    phi_assert(hasRowIndex(),
               "buildServeOrder requires the row-major index");
    // Lexicographic stable sort on the pattern-id signature: rows with
    // equal leading tile ids become neighbours, so the serving loop
    // re-reads their PWP rows while still cache-resident. Stability
    // keeps equal-signature rows in original order — the permutation
    // is a pure function of the decomposition, independent of thread
    // count.
    const uint16_t* ids = rowPatternIds.data();
    std::stable_sort(serveOrder.begin(), serveOrder.end(),
                     [&](uint32_t a, uint32_t b) {
                         const uint16_t* sa = ids + a * numTiles;
                         const uint16_t* sb = ids + b * numTiles;
                         return std::lexicographical_compare(
                             sa, sa + numTiles, sb, sb + numTiles);
                     });
}

size_t
LayerDecomposition::totalL2Nnz() const
{
    size_t n = 0;
    for (const auto& t : tiles)
        n += t.l2Nnz();
    return n;
}

size_t
LayerDecomposition::totalAssigned() const
{
    size_t n = 0;
    for (const auto& t : tiles)
        for (uint16_t id : t.patternIds)
            if (id != 0)
                ++n;
    return n;
}

BinaryMatrix
reconstructActivations(const LayerDecomposition& dec,
                       const PatternTable& table)
{
    BinaryMatrix acts(dec.m, dec.kTotal);
    for (const auto& tile : dec.tiles) {
        const size_t start = tile.partition * static_cast<size_t>(dec.k);
        const PatternSet& ps = table.partition(tile.partition);
        for (size_t r = 0; r < tile.numRows(); ++r) {
            // Signed sum of L1 pattern bits and L2 corrections must land
            // back in {0, 1}; anything else is a decomposition bug.
            int64_t value[64] = {};
            if (tile.patternIds[r] != 0) {
                uint64_t bits = ps.bitsOf(tile.patternIds[r]);
                while (bits) {
                    int b = std::countr_zero(bits);
                    bits &= bits - 1;
                    value[b] += 1;
                }
            }
            auto [lo, hi] = tile.rowRange(r);
            for (uint32_t e = lo; e < hi; ++e)
                value[tile.l2Entries[e].col] += tile.l2Entries[e].sign;

            for (int b = 0; b < dec.k; ++b) {
                size_t col = start + static_cast<size_t>(b);
                if (col >= dec.kTotal) {
                    phi_assert(value[b] == 0,
                               "nonzero reconstruction past layer edge");
                    continue;
                }
                phi_assert(value[b] == 0 || value[b] == 1,
                           "reconstruction value ", value[b],
                           " not binary at row ", r, " col ", col);
                if (value[b] == 1)
                    acts.set(r, col, true);
            }
        }
    }
    return acts;
}

} // namespace phi
