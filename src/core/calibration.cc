#include "core/calibration.hh"

#include <algorithm>
#include <unordered_map>

namespace phi
{

PatternTable
calibrateLayer(const std::vector<const BinaryMatrix*>& samples,
               const CalibrationConfig& cfg)
{
    phi_assert(!samples.empty(), "calibration needs at least one sample");
    const size_t cols = samples.front()->cols();
    for (const auto* s : samples)
        phi_assert(s->cols() == cols,
                   "calibration samples disagree on column count");

    const int k = cfg.k;
    const size_t partitions = ceilDiv(cols, static_cast<size_t>(k));

    KMeansConfig km = cfg.kmeans;
    km.numClusters = cfg.q;
    km.exec = cfg.exec;
    BinaryKMeans clustering(km);

    // Deterministic row subsampling when the pooled sample exceeds the
    // per-partition cap: take every ceil(total/cap)-th row.
    size_t total_rows = 0;
    for (const auto* s : samples)
        total_rows += s->rows();
    size_t stride = 1;
    if (cfg.maxRowsPerPartition > 0 &&
        total_rows > cfg.maxRowsPerPartition)
        stride = ceilDiv(total_rows, cfg.maxRowsPerPartition);

    // Partitions are fully independent: parallel sweep with disjoint
    // writes, one calibrated PatternSet per slot.
    std::vector<PatternSet> parts(partitions);
    parallelFor(cfg.exec, 0, partitions, 1, [&](size_t p0, size_t p1) {
        for (size_t p = p0; p < p1; ++p) {
            const size_t start = p * static_cast<size_t>(k);
            std::unordered_map<uint64_t, uint64_t> counts;
            for (const auto* s : samples)
                for (size_t r = 0; r < s->rows(); r += stride)
                    ++counts[s->extract(r, start, k)];

            std::vector<WeightedRow> hist(counts.begin(), counts.end());
            std::sort(hist.begin(), hist.end());
            parts[p] = clustering.fit(hist, k);
        }
    });
    return PatternTable(k, std::move(parts));
}

PatternTable
calibrateLayer(const BinaryMatrix& sample, const CalibrationConfig& cfg)
{
    std::vector<const BinaryMatrix*> samples{&sample};
    return calibrateLayer(samples, cfg);
}

} // namespace phi
