/**
 * @file
 * Pattern-Weight Products (PWPs): the offline pre-computation of Level 1.
 *
 * PWP[p] = pattern_p x W_tile is computed once per (partition, pattern)
 * and retrieved at runtime instead of accumulating individual weight
 * rows. phiGemm() is the reference implementation of the full hierarchical
 * product and must equal the plain binary GEMM exactly.
 */

#ifndef PHI_CORE_PWP_HH
#define PHI_CORE_PWP_HH

#include <cstdint>

#include "core/decompose.hh"
#include "core/pattern.hh"
#include "numeric/gemm.hh"
#include "numeric/matrix.hh"

namespace phi
{

/**
 * Pre-compute PWPs for one partition: row i-1 of the result is
 * pattern (i) x W[kOffset .. kOffset+k). Patterns are swept in parallel
 * (each pattern owns its output row).
 *
 * @param ps       pattern set of the partition.
 * @param weights  full K x N weight matrix.
 * @param kOffset  first weight row covered by the partition.
 */
Matrix<int32_t> computePwp(const PatternSet& ps,
                           const Matrix<int16_t>& weights, size_t kOffset,
                           const ExecutionConfig& exec = {});

/** All partitions' PWPs for a layer, computed in parallel. */
std::vector<Matrix<int32_t>> computeLayerPwps(
    const PatternTable& table, const Matrix<int16_t>& weights,
    const ExecutionConfig& exec = {});

/**
 * Hierarchical product: for every partition, gather the assigned PWP row
 * (Level 1) and apply signed weight-row corrections (Level 2), reducing
 * over partitions. Must equal spikeGemm(acts, weights) exactly.
 *
 * Runs on the shared execution engine: row blocks in parallel, and
 * within each block rows are regrouped by pattern id per partition so
 * one PWP row is broadcast-accumulated into every row that matched it
 * while it is cache-hot (N-blocked by exec.tileN). Accumulation is pure
 * int32, so results are bit-identical at any thread count and tiling.
 */
Matrix<int32_t> phiGemm(const LayerDecomposition& dec,
                        const PatternTable& table,
                        const Matrix<int16_t>& weights,
                        const ExecutionConfig& exec = {});

/**
 * As phiGemm, but reusing PWPs precomputed by computeLayerPwps — the
 * steady-state path when weights are bound once and many activation
 * batches stream through (LayerPipeline caches them this way).
 */
Matrix<int32_t> phiGemmWithPwps(const LayerDecomposition& dec,
                                const std::vector<Matrix<int32_t>>& pwps,
                                const Matrix<int16_t>& weights,
                                const ExecutionConfig& exec = {});

/**
 * As phiGemmWithPwps, but computing into a caller-owned output matrix
 * of shape dec.m x weights.cols(); every row (padding included) is
 * overwritten, so the prior contents don't matter. Lets the serving
 * runtime pre-allocate responses outside its batch loop so worker
 * threads never contend in the allocator.
 */
void phiGemmWithPwpsInto(Matrix<int32_t>& out,
                         const LayerDecomposition& dec,
                         const std::vector<Matrix<int32_t>>& pwps,
                         const Matrix<int16_t>& weights,
                         const ExecutionConfig& exec = {});

/**
 * Bytes of PWP storage for a layer at the given output-tile width and
 * element size (paper: 16-bit PWP entries).
 */
size_t pwpBytes(const PatternTable& table, size_t n,
                size_t bytesPerElem = 2);

} // namespace phi

#endif // PHI_CORE_PWP_HH
