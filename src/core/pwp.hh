/**
 * @file
 * Pattern-Weight Products (PWPs): the offline pre-computation of Level 1.
 *
 * PWP[p] = pattern_p x W_tile is computed once per (partition, pattern)
 * and retrieved at runtime instead of accumulating individual weight
 * rows. phiGemm() is the reference implementation of the full hierarchical
 * product and must equal the plain binary GEMM exactly.
 */

#ifndef PHI_CORE_PWP_HH
#define PHI_CORE_PWP_HH

#include <cstdint>

#include "common/aligned.hh"
#include "core/decompose.hh"
#include "core/pattern.hh"
#include "numeric/gemm.hh"
#include "numeric/matrix.hh"

namespace phi
{

/**
 * Storage width of PWP arena elements. PWP values are sums of at most
 * k (<= 64) int16 weights, so they always fit int32; when the actual
 * value range of a layer's PWPs fits a narrower type, storing them
 * quantized halves or quarters the bytes the serving loop moves —
 * losslessly, because the narrowing is exact by construction (the
 * arena builder range-checks every value and falls back to a wider
 * tier when any would not round-trip).
 *
 * Enumerator values are the on-disk encoding of the .phim layout
 * section; never renumber.
 */
enum class PwpTier : uint8_t
{
    Int32 = 0,
    Int16 = 1,
    Int8 = 2,
};

/** Bytes per arena element at a tier. */
constexpr size_t
pwpTierBytes(PwpTier tier)
{
    return tier == PwpTier::Int32 ? 4 : tier == PwpTier::Int16 ? 2 : 1;
}

/** Human-readable tier name ("int32"/"int16"/"int8"). */
const char* pwpTierName(PwpTier tier);

/**
 * Tiled contiguous PWP storage: every partition's PWP rows packed into
 * ONE aligned allocation, rows padded to whole cache lines at the
 * arena's element width. Partition p's pattern id (1-based) lives at
 * arena row rowBase()[p] + id - 1, so the serving kernel locates L1
 * rows with two loads instead of chasing per-partition Matrix objects
 * — and a quantized arena moves half or a quarter of the bytes.
 *
 * The requested tier is a ceiling, not a promise: the constructor
 * picks the narrowest tier at or above the request that represents
 * every PWP value exactly, so arena serving is always bit-identical to
 * the int32 reference. materialize() widens back to the exact int32
 * matrices for serialization and the legacy path.
 */
class PwpArena
{
  public:
    PwpArena() = default;

    /**
     * Pack per-partition PWP matrices (shape: patterns x n each) into
     * a contiguous arena. @p quant is the narrowest tier the caller
     * allows (Int32 = never quantize).
     */
    PwpArena(const std::vector<Matrix<int32_t>>& pwps, size_t n,
             PwpTier quant = PwpTier::Int32);

    PwpTier tier() const { return elemTier; }
    bool empty() const { return totalRows == 0; }
    size_t numPartitions() const
    {
        return base.empty() ? 0 : base.size() - 1;
    }
    size_t rows() const { return totalRows; }
    size_t cols() const { return logicalCols; }
    /** Elements per arena row (padded to whole cache lines). */
    size_t stride() const { return strideElems; }

    /** Per-partition first arena row; numPartitions()+1 entries. */
    const uint64_t* rowBase() const { return base.data(); }
    size_t rowsInPartition(size_t p) const
    {
        return base[p + 1] - base[p];
    }

    /** Typed arena base pointer; T must match tier(). */
    template <typename T>
    const T* data() const;

    /** Resident arena bytes (padding included). */
    size_t bytes() const
    {
        return totalRows * strideElems * pwpTierBytes(elemTier);
    }

    /** Widen back to exact per-partition int32 matrices (lossless by
     *  construction). */
    std::vector<Matrix<int32_t>> materialize() const;

  private:
    PwpTier elemTier = PwpTier::Int32;
    size_t logicalCols = 0;
    size_t strideElems = 0;
    size_t totalRows = 0;
    std::vector<uint64_t> base;
    // Exactly one of these is populated, matching elemTier; separate
    // typed buffers keep the accessors free of aliasing casts.
    AlignedVec<int32_t> data32;
    AlignedVec<int16_t> data16;
    AlignedVec<int8_t> data8;
};

template <>
inline const int32_t*
PwpArena::data<int32_t>() const
{
    return data32.data();
}

template <>
inline const int16_t*
PwpArena::data<int16_t>() const
{
    return data16.data();
}

template <>
inline const int8_t*
PwpArena::data<int8_t>() const
{
    return data8.data();
}

/**
 * Pre-compute PWPs for one partition: row i-1 of the result is
 * pattern (i) x W[kOffset .. kOffset+k). Patterns are swept in parallel
 * (each pattern owns its output row).
 *
 * @param ps       pattern set of the partition.
 * @param weights  full K x N weight matrix.
 * @param kOffset  first weight row covered by the partition.
 */
Matrix<int32_t> computePwp(const PatternSet& ps,
                           const Matrix<int16_t>& weights, size_t kOffset,
                           const ExecutionConfig& exec = {});

/** All partitions' PWPs for a layer, computed in parallel. */
std::vector<Matrix<int32_t>> computeLayerPwps(
    const PatternTable& table, const Matrix<int16_t>& weights,
    const ExecutionConfig& exec = {});

/**
 * Hierarchical product: for every partition, gather the assigned PWP row
 * (Level 1) and apply signed weight-row corrections (Level 2), reducing
 * over partitions. Must equal spikeGemm(acts, weights) exactly.
 *
 * Runs on the shared execution engine: row blocks in parallel, and
 * within each block rows are regrouped by pattern id per partition so
 * one PWP row is broadcast-accumulated into every row that matched it
 * while it is cache-hot (N-blocked by exec.tileN). Accumulation is pure
 * int32, so results are bit-identical at any thread count and tiling.
 */
Matrix<int32_t> phiGemm(const LayerDecomposition& dec,
                        const PatternTable& table,
                        const Matrix<int16_t>& weights,
                        const ExecutionConfig& exec = {});

/**
 * As phiGemm, but reusing PWPs precomputed by computeLayerPwps — the
 * steady-state path when weights are bound once and many activation
 * batches stream through (LayerPipeline caches them this way).
 */
Matrix<int32_t> phiGemmWithPwps(const LayerDecomposition& dec,
                                const std::vector<Matrix<int32_t>>& pwps,
                                const Matrix<int16_t>& weights,
                                const ExecutionConfig& exec = {});

/**
 * As phiGemmWithPwps, but computing into a caller-owned output matrix
 * of shape dec.m x weights.cols(); every row (padding included) is
 * overwritten, so the prior contents don't matter. Lets the serving
 * runtime pre-allocate responses outside its batch loop so worker
 * threads never contend in the allocator.
 */
void phiGemmWithPwpsInto(Matrix<int32_t>& out,
                         const LayerDecomposition& dec,
                         const std::vector<Matrix<int32_t>>& pwps,
                         const Matrix<int16_t>& weights,
                         const ExecutionConfig& exec = {});

/**
 * As phiGemmWithPwps, but serving from a contiguous PwpArena (any
 * tier): rows are visited in dec.serveOrder (natural order when the
 * permutation is absent) and written to their original output slots,
 * Level 1 rows are gathered straight out of the arena by pattern id,
 * and quantized arenas are widened in-register. Bit-identical to
 * phiGemmWithPwps at every tier and thread count.
 */
void phiGemmWithArenaInto(Matrix<int32_t>& out,
                          const LayerDecomposition& dec,
                          const PwpArena& arena,
                          const Matrix<int16_t>& weights,
                          const ExecutionConfig& exec = {});

/** Allocating wrapper over phiGemmWithArenaInto. */
Matrix<int32_t> phiGemmWithArena(const LayerDecomposition& dec,
                                 const PwpArena& arena,
                                 const Matrix<int16_t>& weights,
                                 const ExecutionConfig& exec = {});

/**
 * Bytes of PWP storage for a layer at the given output-tile width and
 * element size (paper: 16-bit PWP entries).
 */
size_t pwpBytes(const PatternTable& table, size_t n,
                size_t bytesPerElem = 2);

/**
 * Per-tier PWP footprint of a layer: bytes the same pattern table
 * would occupy stored at each arena tier (padding excluded — this is
 * the bytes-moved metric, not the resident-allocation metric).
 * Index with static_cast<size_t>(PwpTier).
 */
struct PwpTierFootprint
{
    size_t bytes[3] = {0, 0, 0};

    size_t at(PwpTier tier) const
    {
        return bytes[static_cast<size_t>(tier)];
    }
};

PwpTierFootprint pwpTierFootprint(const PatternTable& table, size_t n);

} // namespace phi

#endif // PHI_CORE_PWP_HH
