#include "core/pipeline.hh"

namespace phi
{

LayerPipeline::LayerPipeline(std::string name, PatternTable table,
                             ExecutionConfig exec)
    : layerName(std::move(name)), patternTable(std::move(table)),
      execCfg(exec)
{
}

void
LayerPipeline::bindWeights(Matrix<int16_t> weights)
{
    phi_assert(ceilDiv(weights.rows(),
                       static_cast<size_t>(patternTable.k())) <=
               patternTable.numPartitions(),
               "weights need more partitions than the calibrated table");
    weightMatrix = std::move(weights);
    pwpList = computeLayerPwps(patternTable, weightMatrix, execCfg);
}

LayerDecomposition
LayerPipeline::decompose(const BinaryMatrix& acts) const
{
    return decomposeLayer(acts, patternTable, execCfg);
}

Matrix<int32_t>
LayerPipeline::compute(const LayerDecomposition& dec) const
{
    phi_assert(hasWeights(), "compute() requires bound weights");
    // Steady-state path: reuse the PWPs cached by bindWeights().
    return phiGemmWithPwps(dec, pwpList, weightMatrix, execCfg);
}

SparsityBreakdown
LayerPipeline::breakdown(const BinaryMatrix& acts,
                         const LayerDecomposition& dec) const
{
    return computeBreakdown(acts, dec, patternTable);
}

Pipeline::Pipeline(CalibrationConfig cfg)
    : cfg(cfg)
{
}

Pipeline::Pipeline(CalibrationConfig cfg, ExecutionConfig exec)
    : cfg(cfg)
{
    this->cfg.exec = exec;
}

void
Pipeline::setExecution(const ExecutionConfig& exec)
{
    cfg.exec = exec;
    for (auto& l : layers)
        l.setExecution(exec);
}

LayerPipeline&
Pipeline::addLayer(const std::string& name,
                   const std::vector<const BinaryMatrix*>& samples)
{
    layers.emplace_back(name, calibrateLayer(samples, cfg), cfg.exec);
    return layers.back();
}

LayerPipeline&
Pipeline::addLayer(const std::string& name, PatternTable table)
{
    layers.emplace_back(name, std::move(table), cfg.exec);
    return layers.back();
}

LayerPipeline&
Pipeline::layer(size_t idx)
{
    phi_assert(idx < layers.size(), "layer ", idx, " out of ",
               layers.size());
    return layers[idx];
}

const LayerPipeline&
Pipeline::layer(size_t idx) const
{
    phi_assert(idx < layers.size(), "layer ", idx, " out of ",
               layers.size());
    return layers[idx];
}

PaftResult
Pipeline::paft(size_t layer_idx, BinaryMatrix& acts,
               const PaftConfig& paft_cfg, Rng& rng) const
{
    return applyPaft(acts, layer(layer_idx).table(), paft_cfg, rng);
}

} // namespace phi
