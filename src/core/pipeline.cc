#include "core/pipeline.hh"

namespace phi
{

LayerPipeline::LayerPipeline(std::string name, PatternTable table)
    : layerName(std::move(name)), patternTable(std::move(table))
{
}

void
LayerPipeline::bindWeights(Matrix<int16_t> weights)
{
    phi_assert(ceilDiv(weights.rows(),
                       static_cast<size_t>(patternTable.k())) <=
               patternTable.numPartitions(),
               "weights need more partitions than the calibrated table");
    weightMatrix = std::move(weights);
}

Pipeline::Pipeline(CalibrationConfig calCfg)
    : cfg(calCfg)
{
}

Pipeline::Pipeline(CalibrationConfig calCfg, ExecutionConfig exec)
    : cfg(calCfg)
{
    this->cfg.exec = exec;
}

LayerPipeline&
Pipeline::addLayer(const std::string& name,
                   const std::vector<const BinaryMatrix*>& samples)
{
    layers.emplace_back(name, calibrateLayer(samples, cfg));
    return layers.back();
}

LayerPipeline&
Pipeline::addLayer(const std::string& name, PatternTable table)
{
    layers.emplace_back(name, std::move(table));
    return layers.back();
}

LayerPipeline&
Pipeline::layer(size_t idx)
{
    phi_assert(idx < layers.size(), "layer ", idx, " out of ",
               layers.size());
    return layers[idx];
}

const LayerPipeline&
Pipeline::layer(size_t idx) const
{
    phi_assert(idx < layers.size(), "layer ", idx, " out of ",
               layers.size());
    return layers[idx];
}

PaftResult
Pipeline::paft(size_t layer_idx, BinaryMatrix& acts,
               const PaftConfig& paft_cfg, Rng& rng) const
{
    return applyPaft(acts, layer(layer_idx).table(), paft_cfg, rng);
}

CompiledModel
Pipeline::compile() const
{
    std::vector<CompiledLayer> compiled;
    compiled.reserve(layers.size());
    for (const auto& l : layers) {
        if (l.hasWeights())
            compiled.emplace_back(
                l.name(), l.table(), l.weights(),
                computeLayerPwps(l.table(), l.weights(), cfg.exec),
                pwpQuantTier);
        else
            compiled.emplace_back(l.name(), l.table());
    }
    return CompiledModel(std::move(compiled), cfg);
}

} // namespace phi
