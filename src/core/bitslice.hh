/**
 * @file
 * Bit-sliced extension of Phi to multi-bit DNN activations (Sec. 6.2).
 *
 * The paper observes that bit-slicing decomposes an integer activation
 * matrix into binary planes, each of which is exactly the input Phi
 * consumes — so pattern-based hierarchical sparsity generalises beyond
 * SNNs. This module implements that extension: per-plane calibration
 * and decomposition, and an exact reconstruction of the integer GEMM
 * as the power-of-two-weighted sum of the per-plane hierarchical
 * products.
 */

#ifndef PHI_CORE_BITSLICE_HH
#define PHI_CORE_BITSLICE_HH

#include <cstdint>
#include <vector>

#include "core/calibration.hh"
#include "core/decompose.hh"
#include "core/stats.hh"
#include "numeric/gemm.hh"

namespace phi
{

/** Binary planes of an unsigned integer activation matrix. */
struct BitPlanes
{
    int bits = 8;                     // planes, LSB first
    std::vector<BinaryMatrix> planes; // planes[b] holds bit b

    size_t rows() const { return planes.empty() ? 0 : planes[0].rows(); }
    size_t cols() const { return planes.empty() ? 0 : planes[0].cols(); }
};

/**
 * Slice an unsigned activation matrix into bit planes.
 * Values must fit in `bits` bits.
 */
BitPlanes sliceActivations(const Matrix<uint8_t>& acts, int bits = 8);

/** Reassemble the integer matrix (inverse of sliceActivations). */
Matrix<uint8_t> unsliceActivations(const BitPlanes& planes);

/** Per-plane Phi state of a bit-sliced layer. */
struct BitSliceDecomposition
{
    std::vector<PatternTable> tables;       // per plane
    std::vector<LayerDecomposition> planes; // per plane
    std::vector<SparsityBreakdown> stats;   // per plane

    /**
     * Online Phi operations (L2 corrections summed over planes);
     * compare against bit-serial ops (total one-bits) and dense ops
     * (rows * cols * bits).
     */
    double totalL2Ops() const;
    double totalBitOps() const;
    double denseOps() const;

    /** Speedup of Phi over plane-wise bit-serial processing. */
    double speedupOverBitSerial() const;
};

/**
 * Calibrate and decompose every plane independently (patterns are
 * per-plane: high-order planes of DNN activations are much sparser and
 * more structured than low-order ones).
 */
BitSliceDecomposition decomposeBitSliced(
    const BitPlanes& calibration, const BitPlanes& runtime,
    const CalibrationConfig& cfg);

/**
 * Exact integer GEMM through the bit-sliced hierarchical form:
 * out = sum_b 2^b * (L1_b + L2_b) W. Must equal the direct product of
 * the integer activations with the weights.
 */
Matrix<int32_t> bitSlicedPhiGemm(const BitSliceDecomposition& dec,
                                 const Matrix<int16_t>& weights,
                                 const ExecutionConfig& exec = {});

/** Reference: direct integer-activation GEMM. */
Matrix<int32_t> intGemm(const Matrix<uint8_t>& acts,
                        const Matrix<int16_t>& weights);

} // namespace phi

#endif // PHI_CORE_BITSLICE_HH
