#include "core/bitslice.hh"

#include "core/pwp.hh"

namespace phi
{

BitPlanes
sliceActivations(const Matrix<uint8_t>& acts, int bits)
{
    phi_assert(bits >= 1 && bits <= 8, "bits must be in [1,8]");
    BitPlanes bp;
    bp.bits = bits;
    bp.planes.reserve(static_cast<size_t>(bits));
    for (int b = 0; b < bits; ++b)
        bp.planes.emplace_back(acts.rows(), acts.cols());
    for (size_t r = 0; r < acts.rows(); ++r) {
        for (size_t c = 0; c < acts.cols(); ++c) {
            const uint8_t v = acts(r, c);
            phi_assert(v < (1u << bits), "activation value ",
                       static_cast<int>(v), " exceeds ", bits, " bits");
            for (int b = 0; b < bits; ++b)
                if ((v >> b) & 1)
                    bp.planes[static_cast<size_t>(b)].set(r, c, true);
        }
    }
    return bp;
}

Matrix<uint8_t>
unsliceActivations(const BitPlanes& bp)
{
    Matrix<uint8_t> acts(bp.rows(), bp.cols(), 0);
    for (int b = 0; b < bp.bits; ++b) {
        const BinaryMatrix& plane = bp.planes[static_cast<size_t>(b)];
        for (size_t r = 0; r < acts.rows(); ++r)
            for (size_t c = 0; c < acts.cols(); ++c)
                if (plane.get(r, c))
                    acts(r, c) = static_cast<uint8_t>(
                        acts(r, c) | (1u << b));
    }
    return acts;
}

double
BitSliceDecomposition::totalL2Ops() const
{
    double ops = 0;
    for (const auto& p : planes)
        ops += static_cast<double>(p.totalL2Nnz());
    return ops;
}

double
BitSliceDecomposition::totalBitOps() const
{
    double ops = 0;
    for (const auto& s : stats)
        ops += static_cast<double>(s.bitOnes);
    return ops;
}

double
BitSliceDecomposition::denseOps() const
{
    double ops = 0;
    for (const auto& s : stats)
        ops += static_cast<double>(s.elements);
    return ops;
}

double
BitSliceDecomposition::speedupOverBitSerial() const
{
    const double l2 = totalL2Ops();
    return l2 > 0 ? totalBitOps() / l2 : 0.0;
}

BitSliceDecomposition
decomposeBitSliced(const BitPlanes& calibration, const BitPlanes& runtime,
                   const CalibrationConfig& cfg)
{
    phi_assert(calibration.bits == runtime.bits,
               "calibration/runtime plane count mismatch");
    phi_assert(calibration.cols() == runtime.cols(),
               "calibration/runtime width mismatch");
    BitSliceDecomposition dec;
    dec.tables.reserve(static_cast<size_t>(runtime.bits));
    dec.planes.reserve(static_cast<size_t>(runtime.bits));
    for (int b = 0; b < runtime.bits; ++b) {
        const size_t i = static_cast<size_t>(b);
        dec.tables.push_back(
            calibrateLayer(calibration.planes[i], cfg));
        dec.planes.push_back(
            decomposeLayer(runtime.planes[i], dec.tables[i], cfg.exec));
        dec.stats.push_back(computeBreakdown(
            runtime.planes[i], dec.planes[i], dec.tables[i]));
    }
    return dec;
}

Matrix<int32_t>
bitSlicedPhiGemm(const BitSliceDecomposition& dec,
                 const Matrix<int16_t>& weights,
                 const ExecutionConfig& exec)
{
    phi_assert(!dec.planes.empty(), "no planes to compute");
    Matrix<int32_t> out(dec.planes[0].m, weights.cols(), 0);
    for (size_t b = 0; b < dec.planes.size(); ++b) {
        Matrix<int32_t> plane =
            phiGemm(dec.planes[b], dec.tables[b], weights, exec);
        const int32_t scale = 1 << b;
        parallelFor(exec, 0, out.rows(), 64, [&](size_t r0, size_t r1) {
            for (size_t r = r0; r < r1; ++r)
                for (size_t c = 0; c < out.cols(); ++c)
                    out(r, c) += scale * plane(r, c);
        });
    }
    return out;
}

Matrix<int32_t>
intGemm(const Matrix<uint8_t>& acts, const Matrix<int16_t>& weights)
{
    phi_assert(acts.cols() == weights.rows(), "gemm shape mismatch");
    Matrix<int32_t> out(acts.rows(), weights.cols(), 0);
    for (size_t r = 0; r < acts.rows(); ++r) {
        int32_t* out_row = out.rowPtr(r);
        for (size_t k = 0; k < acts.cols(); ++k) {
            const int32_t a = acts(r, k);
            if (a == 0)
                continue;
            const int16_t* w = weights.rowPtr(k);
            for (size_t c = 0; c < out.cols(); ++c)
                out_row[c] += a * w[c];
        }
    }
    return out;
}

} // namespace phi
