#include "core/stats.hh"

#include <algorithm>

namespace phi
{

namespace
{

void
finalise(SparsityBreakdown& b)
{
    if (b.elements == 0)
        return;
    const double elems = static_cast<double>(b.elements);
    b.bitDensity = static_cast<double>(b.bitOnes) / elems;
    b.l1Density = static_cast<double>(b.l1Ones) / elems;
    b.l2PosDensity = static_cast<double>(b.l2Pos) / elems;
    b.l2NegDensity = static_cast<double>(b.l2Neg) / elems;
    b.vectorDensity = static_cast<double>(b.assigned) / elems;
    if (b.rowTiles > 0)
        b.indexDensity = static_cast<double>(b.assigned) /
                         static_cast<double>(b.rowTiles);
}

} // namespace

SparsityBreakdown
computeBreakdown(const BinaryMatrix& acts, const LayerDecomposition& dec,
                 const PatternTable& table)
{
    phi_assert(acts.rows() == dec.m && acts.cols() == dec.kTotal,
               "activation/decomposition shape mismatch");
    SparsityBreakdown b;
    b.elements = dec.m * dec.kTotal;
    b.rowTiles = dec.m * dec.numPartitions();
    b.bitOnes = acts.popcount();

    for (const auto& tile : dec.tiles) {
        const PatternSet& ps = table.partition(tile.partition);
        for (size_t r = 0; r < tile.numRows(); ++r) {
            if (tile.patternIds[r] != 0) {
                ++b.assigned;
                b.l1Ones += static_cast<size_t>(
                    popcount64(ps.bitsOf(tile.patternIds[r])));
            }
            auto [lo, hi] = tile.rowRange(r);
            for (uint32_t e = lo; e < hi; ++e) {
                if (tile.l2Entries[e].sign > 0)
                    ++b.l2Pos;
                else
                    ++b.l2Neg;
            }
        }
    }
    finalise(b);
    return b;
}

SparsityBreakdown
mergeBreakdowns(const std::vector<SparsityBreakdown>& parts)
{
    SparsityBreakdown b;
    for (const auto& p : parts) {
        b.elements += p.elements;
        b.rowTiles += p.rowTiles;
        b.bitOnes += p.bitOnes;
        b.l1Ones += p.l1Ones;
        b.l2Pos += p.l2Pos;
        b.l2Neg += p.l2Neg;
        b.assigned += p.assigned;
    }
    finalise(b);
    return b;
}

void
ServingStats::recordLatency(double seconds)
{
    if (latencySeconds.size() < kMaxLatencySamples) {
        latencySeconds.push_back(seconds);
        return;
    }
    latencySeconds[latencyRingNext] = seconds;
    latencyRingNext = (latencyRingNext + 1) % kMaxLatencySamples;
}

void
ServingStats::recordFlushWindow(double beginSeconds, double endSeconds)
{
    if (windowBeginSeconds < 0 || beginSeconds < windowBeginSeconds)
        windowBeginSeconds = beginSeconds;
    if (endSeconds > windowEndSeconds)
        windowEndSeconds = endSeconds;
}

void
ServingStats::recordDispatch(size_t queueDepth, double lingerSec)
{
    dispatches += 1;
    queueDepthSum += queueDepth;
    maxQueueDepth = std::max(maxQueueDepth,
                             static_cast<uint64_t>(queueDepth));
    lingerSeconds += lingerSec;
}

void
ServingStats::recordDeadlineMiss(double lateSeconds)
{
    expired += 1;
    const double lateMs = lateSeconds * 1e3;
    size_t bucket = kDeadlineMissBuckets - 1;
    for (size_t i = 0; i < kDeadlineMissBuckets - 1; ++i) {
        if (lateMs < kDeadlineMissUpperMs[i]) {
            bucket = i;
            break;
        }
    }
    deadlineMissHistogram[bucket] += 1;
}

double
ServingStats::windowSeconds() const
{
    if (windowBeginSeconds < 0 || windowEndSeconds < windowBeginSeconds)
        return 0.0;
    return windowEndSeconds - windowBeginSeconds;
}

double
ServingStats::busyFraction() const
{
    const double w = windowSeconds();
    return w > 0 ? busySeconds / w : 0.0;
}

namespace
{

/** Elapsed serving time: the monotonic window when one was recorded,
 *  otherwise the busy sum (hand-filled counters, old artifacts). */
double
servingSeconds(const ServingStats& s)
{
    const double w = s.windowSeconds();
    return w > 0 ? w : s.busySeconds;
}

} // namespace

double
ServingStats::throughputRps() const
{
    const double secs = servingSeconds(*this);
    return secs > 0 ? static_cast<double>(requests) / secs : 0.0;
}

double
ServingStats::rowThroughputRps() const
{
    const double secs = servingSeconds(*this);
    return secs > 0 ? static_cast<double>(rows) / secs : 0.0;
}

double
ServingStats::meanQueueDepth() const
{
    return dispatches > 0 ? static_cast<double>(queueDepthSum) /
                                static_cast<double>(dispatches)
                          : 0.0;
}

double
ServingStats::meanLingerMicros() const
{
    return dispatches > 0
               ? lingerSeconds / static_cast<double>(dispatches) * 1e6
               : 0.0;
}

double
ServingStats::latencyPercentileMs(double p) const
{
    if (latencySeconds.empty())
        return 0.0;
    std::vector<double> sorted = latencySeconds;
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::min(100.0, std::max(0.0, p));
    // Nearest-rank percentile on the sorted samples.
    const size_t rank = static_cast<size_t>(
        clamped / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[rank] * 1e3;
}

double
ServingStats::meanLatencyMs() const
{
    if (latencySeconds.empty())
        return 0.0;
    double sum = 0;
    for (double s : latencySeconds)
        sum += s;
    return sum / static_cast<double>(latencySeconds.size()) * 1e3;
}

uint64_t
ServingStats::activeSessions() const
{
    const uint64_t gone = sessionsClosed + sessionsExpired;
    return sessionsOpened > gone ? sessionsOpened - gone : 0;
}

double
ServingStats::meanStepsPerSession() const
{
    return sessionsOpened > 0
               ? static_cast<double>(sessionSteps) /
                     static_cast<double>(sessionsOpened)
               : 0.0;
}

void
ServingStats::merge(const ServingStats& other)
{
    requests += other.requests;
    batches += other.batches;
    rows += other.rows;
    busySeconds += other.busySeconds;
    if (other.windowBeginSeconds >= 0)
        recordFlushWindow(other.windowBeginSeconds,
                          other.windowEndSeconds);
    rejected += other.rejected;
    dispatches += other.dispatches;
    queueDepthSum += other.queueDepthSum;
    maxQueueDepth = std::max(maxQueueDepth, other.maxQueueDepth);
    lingerSeconds += other.lingerSeconds;
    expired += other.expired;
    shed += other.shed;
    watchdogRestarts += other.watchdogRestarts;
    sessionsOpened += other.sessionsOpened;
    sessionsClosed += other.sessionsClosed;
    sessionsExpired += other.sessionsExpired;
    sessionsRejected += other.sessionsRejected;
    sessionSteps += other.sessionSteps;
    for (size_t i = 0; i < kDeadlineMissBuckets; ++i)
        deadlineMissHistogram[i] += other.deadlineMissHistogram[i];
    // Replay the other ring oldest-first so this ring's recency order
    // stays meaningful after the merge; a wrapped source ring's oldest
    // sample sits at its ring cursor, not index 0.
    const size_t n = other.latencySeconds.size();
    const size_t start =
        n == kMaxLatencySamples ? other.latencyRingNext : 0;
    for (size_t i = 0; i < n; ++i)
        recordLatency(other.latencySeconds[(start + i) % n]);
}

} // namespace phi
