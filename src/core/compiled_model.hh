/**
 * @file
 * The serve-side artifact of the Phi workflow: an immutable compiled
 * model holding everything the online phase needs (pattern tables,
 * weights, precomputed PWPs) and nothing it does not (no calibration
 * samples, no k-means state).
 *
 * A CompiledModel is produced offline by Pipeline::compile() or loaded
 * from a .phim artifact via io::loadModel(); it is consumed by the
 * PhiEngine runtime or used directly through CompiledLayer's
 * decompose()/compute() for single-shot work.
 */

#ifndef PHI_CORE_COMPILED_MODEL_HH
#define PHI_CORE_COMPILED_MODEL_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/calibration.hh"
#include "core/decompose.hh"
#include "core/pattern.hh"
#include "core/pwp.hh"
#include "core/stats.hh"

namespace phi
{

/**
 * One compiled layer: calibrated pattern table plus (optionally) bound
 * weights and their precomputed PWPs, stored as one contiguous
 * (optionally quantized) PwpArena. Immutable after construction, so
 * it is safe to share across serving threads without synchronisation.
 */
class CompiledLayer
{
  public:
    /** Weightless layer: decompose()/breakdown() only. */
    CompiledLayer(std::string name, PatternTable table);

    /**
     * Fully bound layer. @p pwps must be exactly the output of
     * computeLayerPwps(table, weights) — loadModel() trusts but
     * re-validates shape; compile() computes them itself. @p quant is
     * the narrowest PWP storage tier the layer may use; the arena
     * falls back to a wider tier whenever the narrow one would not be
     * exact, so serving results never depend on the request.
     */
    CompiledLayer(std::string name, PatternTable table,
                  Matrix<int16_t> weights,
                  std::vector<Matrix<int32_t>> pwps,
                  PwpTier quant = PwpTier::Int32);

    const std::string& name() const { return layerName; }
    const PatternTable& table() const { return patternTable; }

    bool hasWeights() const { return !weightMatrix.empty(); }
    const Matrix<int16_t>& weights() const { return weightMatrix; }

    /**
     * The layer's PWPs as exact int32 matrices, materialised from the
     * arena (by value — serialization and diagnostics only; the
     * serving path reads the arena directly).
     */
    std::vector<Matrix<int32_t>> pwps() const
    {
        return arena.materialize();
    }

    /** Contiguous PWP storage the serving path reads. */
    const PwpArena& pwpArena() const { return arena; }

    /** Storage tier the arena actually uses (after exactness fallback). */
    PwpTier pwpTier() const { return arena.tier(); }

    /** Decompose a runtime activation matrix (online, stateless). */
    LayerDecomposition decompose(const BinaryMatrix& acts,
                                 const ExecutionConfig& exec = {}) const;

    /** Hierarchical product reusing the precomputed PWPs. */
    Matrix<int32_t> compute(const LayerDecomposition& dec,
                            const ExecutionConfig& exec = {}) const;

    /**
     * As compute(), but into a caller-owned dec.m x weights().cols()
     * matrix whose previous contents are overwritten. Lets the serving
     * runtime allocate responses before dispatching a batch, so
     * worker threads never touch the allocator.
     */
    void computeInto(Matrix<int32_t>& out, const LayerDecomposition& dec,
                     const ExecutionConfig& exec = {}) const;

    /** Sparsity accounting for a decomposed activation. */
    SparsityBreakdown breakdown(const BinaryMatrix& acts,
                                const LayerDecomposition& dec) const;

  private:
    std::string layerName;
    PatternTable patternTable;
    Matrix<int16_t> weightMatrix;
    PwpArena arena;
};

/**
 * A whole compiled model: the ordered layer list plus the calibration
 * config it was compiled with (provenance; the online phase only needs
 * it for reporting). Immutable after construction.
 */
class CompiledModel
{
  public:
    CompiledModel() = default;

    CompiledModel(std::vector<CompiledLayer> layers,
                  CalibrationConfig calibration);

    size_t numLayers() const { return layerList.size(); }
    bool empty() const { return layerList.empty(); }

    const CompiledLayer& layer(size_t idx) const;

    /** Index of the layer with the given name, if any. */
    std::optional<size_t> findLayer(const std::string& name) const;

    const std::vector<CompiledLayer>& layers() const { return layerList; }

    /** Calibration knobs the model was compiled with (provenance). */
    const CalibrationConfig& calibration() const { return calib; }

    /** Total PWP bytes across layers at the stored output widths. */
    size_t pwpFootprintBytes() const;

    /**
     * Bytes of PWP arena storage actually resident across layers at
     * their chosen tiers (padding included) — the bytes the serving
     * loop streams, as opposed to the paper-metric pwpFootprintBytes().
     */
    size_t pwpResidentBytes() const;

  private:
    std::vector<CompiledLayer> layerList;
    CalibrationConfig calib;
};

} // namespace phi

#endif // PHI_CORE_COMPILED_MODEL_HH
