#include "core/pwp.hh"

#include <algorithm>
#include <utility>

namespace phi
{

namespace
{

/** Patterns per PWP chunk and rows per phiGemm chunk; fixed grains keep
 *  chunking independent of the thread count (determinism contract). */
constexpr size_t kPwpPatternGrain = 16;
constexpr size_t kPhiGemmRowGrain = 32;

} // namespace

Matrix<int32_t>
computePwp(const PatternSet& ps, const Matrix<int16_t>& weights,
           size_t kOffset, const ExecutionConfig& exec)
{
    const size_t n = weights.cols();
    Matrix<int32_t> pwp(ps.size(), n, 0);
    parallelFor(exec, 0, ps.size(), kPwpPatternGrain,
                [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i) {
            uint64_t bits = ps.patterns()[i];
            int32_t* out = pwp.rowPtr(i);
            while (bits) {
                int b = std::countr_zero(bits);
                bits &= bits - 1;
                size_t kk = kOffset + static_cast<size_t>(b);
                if (kk >= weights.rows())
                    continue; // ragged final partition: zero-padded weights
                const int16_t* w = weights.rowPtr(kk);
                for (size_t c = 0; c < n; ++c)
                    out[c] += w[c];
            }
        }
    });
    return pwp;
}

std::vector<Matrix<int32_t>>
computeLayerPwps(const PatternTable& table, const Matrix<int16_t>& weights,
                 const ExecutionConfig& exec)
{
    std::vector<Matrix<int32_t>> pwps(table.numPartitions());
    parallelFor(exec, 0, table.numPartitions(), 1,
                [&](size_t p0, size_t p1) {
        for (size_t p = p0; p < p1; ++p)
            pwps[p] = computePwp(table.partition(p), weights,
                                 p * static_cast<size_t>(table.k()), exec);
    });
    return pwps;
}

Matrix<int32_t>
phiGemm(const LayerDecomposition& dec, const PatternTable& table,
        const Matrix<int16_t>& weights, const ExecutionConfig& exec)
{
    return phiGemmWithPwps(dec, computeLayerPwps(table, weights, exec),
                           weights, exec);
}

Matrix<int32_t>
phiGemmWithPwps(const LayerDecomposition& dec,
                const std::vector<Matrix<int32_t>>& pwps,
                const Matrix<int16_t>& weights,
                const ExecutionConfig& exec)
{
    phi_assert(dec.kTotal == weights.rows(),
               "decomposition K ", dec.kTotal, " != weight rows ",
               weights.rows());
    phi_assert(pwps.size() >= dec.numPartitions(),
               "PWPs cover ", pwps.size(), " partitions, need ",
               dec.numPartitions());
    const size_t n = weights.cols();
    Matrix<int32_t> out(dec.m, n, 0);

    const size_t tileN = exec.resolvedTileN(n);

    parallelFor(exec, 0, dec.m, kPhiGemmRowGrain,
                [&](size_t r0, size_t r1) {
        // (patternId, row) pairs of the block, regrouped per partition.
        std::vector<std::pair<uint16_t, uint32_t>> matched;
        matched.reserve(r1 - r0);

        for (const auto& tile : dec.tiles) {
            const size_t k_off =
                tile.partition * static_cast<size_t>(dec.k);
            const Matrix<int32_t>& pwp = pwps[tile.partition];

            // Batch rows by pattern id so each PWP row is fetched once
            // per block and broadcast into every matching output row.
            matched.clear();
            for (size_t r = r0; r < r1; ++r)
                if (tile.patternIds[r] != 0)
                    matched.emplace_back(tile.patternIds[r],
                                         static_cast<uint32_t>(r));
            std::sort(matched.begin(), matched.end());

            for (size_t n0 = 0; n0 < n; n0 += tileN) {
                const size_t n1 = std::min(n, n0 + tileN);

                // Level 1: one pass per distinct pattern of the block.
                for (size_t i = 0; i < matched.size();) {
                    const uint16_t id = matched[i].first;
                    const int32_t* p = pwp.rowPtr(id - 1);
                    do {
                        int32_t* out_row = out.rowPtr(matched[i].second);
                        for (size_t c = n0; c < n1; ++c)
                            out_row[c] += p[c];
                        ++i;
                    } while (i < matched.size() &&
                             matched[i].first == id);
                }

                // Level 2: signed corrections against raw weight rows.
                for (size_t r = r0; r < r1; ++r) {
                    int32_t* out_row = out.rowPtr(r);
                    auto [lo, hi] = tile.rowRange(r);
                    for (uint32_t e = lo; e < hi; ++e) {
                        size_t kk = k_off + tile.l2Entries[e].col;
                        phi_assert(kk < weights.rows(),
                                   "L2 column beyond weight rows");
                        const int16_t* w = weights.rowPtr(kk);
                        if (tile.l2Entries[e].sign > 0) {
                            for (size_t c = n0; c < n1; ++c)
                                out_row[c] += w[c];
                        } else {
                            for (size_t c = n0; c < n1; ++c)
                                out_row[c] -= w[c];
                        }
                    }
                }
            }
        }
    });
    return out;
}

size_t
pwpBytes(const PatternTable& table, size_t n, size_t bytesPerElem)
{
    return table.totalPatterns() * n * bytesPerElem;
}

} // namespace phi
