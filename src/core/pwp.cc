#include "core/pwp.hh"

#include <algorithm>
#include <utility>

#include "numeric/simd.hh"

namespace phi
{

namespace
{

/** Patterns per PWP chunk and rows per phiGemm chunk; fixed grains keep
 *  chunking independent of the thread count (determinism contract). */
constexpr size_t kPwpPatternGrain = 16;
constexpr size_t kPhiGemmRowGrain = 32;

} // namespace

Matrix<int32_t>
computePwp(const PatternSet& ps, const Matrix<int16_t>& weights,
           size_t kOffset, const ExecutionConfig& exec)
{
    const size_t n = weights.cols();
    // Each PWP row is produced by exactly one overwriting batched
    // reduction over whole padded rows (weight-row padding is zero, so
    // the vector loop runs tail-free over the stride, and an empty
    // pattern stores zeros) — the output storage needs no pre-zeroing.
    // A pattern has at most 64 bits, so all its weight rows fit one
    // gathered batch and the PWP row is stored once per column block.
    Matrix<int32_t> pwp = Matrix<int32_t>::uninitialized(ps.size(), n);
    const size_t span = pwp.paddedCols();
    const simd::Kernels& kr = simd::kernels(exec.isa);
    parallelFor(exec, 0, ps.size(), kPwpPatternGrain,
                [&](size_t i0, size_t i1) {
        const int16_t* gathered[64];
        for (size_t i = i0; i < i1; ++i) {
            uint64_t bits = ps.patterns()[i];
            size_t batch = 0;
            while (bits) {
                int b = std::countr_zero(bits);
                bits &= bits - 1;
                size_t kk = kOffset + static_cast<size_t>(b);
                if (kk >= weights.rows())
                    continue; // ragged final partition: zero-padded weights
                gathered[batch++] = weights.rowPtr(kk);
            }
            kr.storeRowsI16(pwp.rowPtr(i), gathered, batch, span);
        }
    });
    return pwp;
}

std::vector<Matrix<int32_t>>
computeLayerPwps(const PatternTable& table, const Matrix<int16_t>& weights,
                 const ExecutionConfig& exec)
{
    std::vector<Matrix<int32_t>> pwps(table.numPartitions());
    parallelFor(exec, 0, table.numPartitions(), 1,
                [&](size_t p0, size_t p1) {
        for (size_t p = p0; p < p1; ++p)
            pwps[p] = computePwp(table.partition(p), weights,
                                 p * static_cast<size_t>(table.k()), exec);
    });
    return pwps;
}

Matrix<int32_t>
phiGemm(const LayerDecomposition& dec, const PatternTable& table,
        const Matrix<int16_t>& weights, const ExecutionConfig& exec)
{
    return phiGemmWithPwps(dec, computeLayerPwps(table, weights, exec),
                           weights, exec);
}

Matrix<int32_t>
phiGemmWithPwps(const LayerDecomposition& dec,
                const std::vector<Matrix<int32_t>>& pwps,
                const Matrix<int16_t>& weights,
                const ExecutionConfig& exec)
{
    // Into() overwrites every row via storeRowsI32, so the fresh
    // output needs no zero fill.
    Matrix<int32_t> out =
        Matrix<int32_t>::uninitialized(dec.m, weights.cols());
    phiGemmWithPwpsInto(out, dec, pwps, weights, exec);
    return out;
}

void
phiGemmWithPwpsInto(Matrix<int32_t>& out, const LayerDecomposition& dec,
                    const std::vector<Matrix<int32_t>>& pwps,
                    const Matrix<int16_t>& weights,
                    const ExecutionConfig& exec)
{
    phi_assert(dec.kTotal == weights.rows(),
               "decomposition K ", dec.kTotal, " != weight rows ",
               weights.rows());
    phi_assert(pwps.size() >= dec.numPartitions(),
               "PWPs cover ", pwps.size(), " partitions, need ",
               dec.numPartitions());
    phi_assert(out.rows() == dec.m && out.cols() == weights.cols(),
               "output shape ", out.rows(), "x", out.cols(),
               " != expected ", dec.m, "x", weights.cols());
    const size_t n = weights.cols();
    const size_t numTiles = dec.tiles.size();

    const size_t tileN = exec.resolvedTileN(n);
    const size_t nPad = out.paddedCols();
    const simd::Kernels& kr = simd::kernels(exec.isa);

    // The hot loop walks the row-major serving index (one contiguous
    // line per output row instead of tiles-many scattered vector
    // accesses); decomposeLayer and the .phim loader always build it,
    // so the rebuild here only covers hand-assembled decompositions.
    std::vector<uint16_t> localIds;
    std::vector<uint8_t> localCounts;
    const uint16_t* rowIds = dec.rowPatternIds.data();
    const uint8_t* rowCounts = dec.rowL2Counts.data();
    if (!dec.hasRowIndex() && numTiles > 0) {
        buildRowIndexInto(dec, localIds, localCounts);
        rowIds = localIds.data();
        rowCounts = localCounts.data();
    }

    // Per-tile tables hoisted out of the row loop: PWP row base and
    // stride, Level 2 entry stream and the tile's first weight row.
    // The historical per-entry bounds assert is hoisted too: checking
    // each tile's maximum Level 2 column once proves every entry's
    // weight row is in range.
    std::vector<const int32_t*> pwpBase(numTiles);
    std::vector<size_t> pwpStride(numTiles);
    std::vector<const L2Entry*> l2Entries(numTiles);
    std::vector<const int16_t*> wBase(numTiles);
    const size_t wStride = weights.stride();
    for (size_t t = 0; t < numTiles; ++t) {
        const TileDecomposition& tile = dec.tiles[t];
        const size_t k_off =
            tile.partition * static_cast<size_t>(dec.k);
        uint16_t maxCol = 0;
        for (const L2Entry& e : tile.l2Entries)
            maxCol = std::max(maxCol, e.col);
        phi_assert(tile.l2Entries.empty() ||
                   k_off + maxCol < weights.rows(),
                   "L2 column beyond weight rows");
        pwpBase[t] = pwps[tile.partition].rowPtr(0);
        pwpStride[t] = pwps[tile.partition].stride();
        l2Entries[t] = tile.l2Entries.data();
        wBase[t] = k_off < weights.rows() ? weights.rowPtr(k_off)
                                          : nullptr;
    }

    parallelFor(exec, 0, dec.m, kPhiGemmRowGrain,
                [&](size_t r0, size_t r1) {
        // Per output row, the whole hierarchical product is gathered
        // into pointer batches — the assigned PWP row of every
        // partition (Level 1) plus the signed Level 2 weight-row
        // corrections — then reduced by three multi-row kernel calls
        // that hold the output block in registers across the batch.
        // The Level 1 batch overwrites the block (zeroing it when no
        // partition matched), so the output never needs pre-zeroing.
        // int32 addition is associative, so regrouping the partition
        // order into batches keeps results bit-identical to the
        // per-partition reference at any thread count.
        std::vector<const int32_t*> l1(numTiles);
        std::vector<const int16_t*> l2pos;
        std::vector<const int16_t*> l2neg;
        std::vector<uint32_t> l2Cursor(numTiles);

        for (size_t n0 = 0; n0 < n; n0 += tileN) {
            const size_t n1 = std::min(n, n0 + tileN);
            const size_t span = (n1 == n ? nPad : n1) - n0;

            // Level 2 entries are consumed in row order per tile; the
            // cursors pick up each tile's CSR stream at this chunk.
            for (size_t t = 0; t < numTiles; ++t)
                l2Cursor[t] = dec.tiles[t].l2Offsets.empty()
                                  ? 0
                                  : dec.tiles[t].l2Offsets[r0];

            for (size_t r = r0; r < r1; ++r) {
                const uint16_t* ids = rowIds + r * numTiles;
                const uint8_t* counts = rowCounts + r * numTiles;
                size_t b1 = 0;
                l2pos.clear();
                l2neg.clear();
                for (size_t t = 0; t < numTiles; ++t) {
                    const uint16_t id = ids[t];
                    if (id != 0)
                        l1[b1++] = pwpBase[t] +
                                   (id - size_t{1}) * pwpStride[t] +
                                   n0;
                    const uint32_t cnt = counts[t];
                    if (cnt != 0) {
                        const L2Entry* e = l2Entries[t] + l2Cursor[t];
                        for (uint32_t i = 0; i < cnt; ++i) {
                            const int16_t* w =
                                wBase[t] + e[i].col * wStride + n0;
                            if (e[i].sign > 0)
                                l2pos.push_back(w);
                            else
                                l2neg.push_back(w);
                        }
                        l2Cursor[t] += cnt;
                    }
                }
                kr.fusedStoreAddSub(out.rowPtr(r) + n0, l1.data(), b1,
                                    l2pos.data(), l2pos.size(),
                                    l2neg.data(), l2neg.size(), span);
            }
        }
    });
}

size_t
pwpBytes(const PatternTable& table, size_t n, size_t bytesPerElem)
{
    return table.totalPatterns() * n * bytesPerElem;
}

} // namespace phi
