#include "core/pwp.hh"

#include <algorithm>
#include <utility>

#include "numeric/simd.hh"

namespace phi
{

namespace
{

/** Patterns per PWP chunk and rows per phiGemm chunk; fixed grains keep
 *  chunking independent of the thread count (determinism contract). */
constexpr size_t kPwpPatternGrain = 16;
constexpr size_t kPhiGemmRowGrain = 32;

/** Cast-copy one PWP matrix set into a typed arena buffer. Padding
 *  columns keep the zero from the buffer's value-initialisation. */
template <typename Elem>
void
packArena(AlignedVec<Elem>& dst,
          const std::vector<Matrix<int32_t>>& pwps, const uint64_t* base,
          size_t totalRows, size_t n, size_t stride)
{
    dst.resize(totalRows * stride);
    for (size_t p = 0; p < pwps.size(); ++p) {
        for (size_t r = 0; r < pwps[p].rows(); ++r) {
            const int32_t* src = pwps[p].rowPtr(r);
            Elem* out = dst.data() + (base[p] + r) * stride;
            for (size_t c = 0; c < n; ++c)
                out[c] = static_cast<Elem>(src[c]);
        }
    }
}

/** Widen one typed arena back into per-partition int32 matrices. */
template <typename Elem>
void
widenArena(std::vector<Matrix<int32_t>>& pwps, const Elem* src,
           const uint64_t* base, size_t n, size_t stride)
{
    for (size_t p = 0; p < pwps.size(); ++p) {
        const size_t rows = base[p + 1] - base[p];
        Matrix<int32_t> m(rows, n);
        for (size_t r = 0; r < rows; ++r) {
            const Elem* in = src + (base[p] + r) * stride;
            int32_t* out = m.rowPtr(r);
            for (size_t c = 0; c < n; ++c)
                out[c] = static_cast<int32_t>(in[c]);
        }
        pwps[p] = std::move(m);
    }
}

} // namespace

const char*
pwpTierName(PwpTier tier)
{
    switch (tier) {
    case PwpTier::Int16:
        return "int16";
    case PwpTier::Int8:
        return "int8";
    default:
        return "int32";
    }
}

PwpArena::PwpArena(const std::vector<Matrix<int32_t>>& pwps, size_t n,
                   PwpTier quant)
    : logicalCols(n)
{
    base.resize(pwps.size() + 1, 0);
    for (size_t p = 0; p < pwps.size(); ++p) {
        phi_assert(pwps[p].rows() == 0 || pwps[p].cols() == n,
                   "partition ", p, " PWP width ", pwps[p].cols(),
                   " != arena width ", n);
        base[p + 1] = base[p] + pwps[p].rows();
    }
    totalRows = base[pwps.size()];

    // Narrowest exact tier at or above the request: one min/max sweep
    // proves whether every value round-trips through the narrower
    // type, so quantization can never change a serving result.
    elemTier = PwpTier::Int32;
    if (quant != PwpTier::Int32 && totalRows > 0) {
        int32_t lo = 0;
        int32_t hi = 0;
        for (const auto& pwp : pwps) {
            for (size_t r = 0; r < pwp.rows(); ++r) {
                const int32_t* row = pwp.rowPtr(r);
                for (size_t c = 0; c < n; ++c) {
                    lo = std::min(lo, row[c]);
                    hi = std::max(hi, row[c]);
                }
            }
        }
        if (quant == PwpTier::Int8 && lo >= INT8_MIN && hi <= INT8_MAX)
            elemTier = PwpTier::Int8;
        else if (lo >= INT16_MIN && hi <= INT16_MAX)
            elemTier = PwpTier::Int16;
    }

    // Row pitch is padded to whole cache lines only. An earlier draft
    // also padded 4 KiB-multiple pitches by one extra line to stagger
    // rows across cache sets; measured on AVX-512 hosts it was a ~40%
    // regression at n=1024 — every row straddled two pages, doubling
    // TLB touches per gathered row — so rows stay page-packed.
    const size_t lineElems = kSimdAlign / pwpTierBytes(elemTier);
    strideElems = roundUp(n, lineElems);
    switch (elemTier) {
    case PwpTier::Int32:
        packArena(data32, pwps, base.data(), totalRows, n, strideElems);
        break;
    case PwpTier::Int16:
        packArena(data16, pwps, base.data(), totalRows, n, strideElems);
        break;
    case PwpTier::Int8:
        packArena(data8, pwps, base.data(), totalRows, n, strideElems);
        break;
    }
}

std::vector<Matrix<int32_t>>
PwpArena::materialize() const
{
    std::vector<Matrix<int32_t>> pwps(numPartitions());
    switch (elemTier) {
    case PwpTier::Int32:
        widenArena(pwps, data32.data(), base.data(), logicalCols,
                   strideElems);
        break;
    case PwpTier::Int16:
        widenArena(pwps, data16.data(), base.data(), logicalCols,
                   strideElems);
        break;
    case PwpTier::Int8:
        widenArena(pwps, data8.data(), base.data(), logicalCols,
                   strideElems);
        break;
    }
    return pwps;
}

Matrix<int32_t>
computePwp(const PatternSet& ps, const Matrix<int16_t>& weights,
           size_t kOffset, const ExecutionConfig& exec)
{
    const size_t n = weights.cols();
    // Each PWP row is produced by exactly one overwriting batched
    // reduction over whole padded rows (weight-row padding is zero, so
    // the vector loop runs tail-free over the stride, and an empty
    // pattern stores zeros) — the output storage needs no pre-zeroing.
    // A pattern has at most 64 bits, so all its weight rows fit one
    // gathered batch and the PWP row is stored once per column block.
    Matrix<int32_t> pwp = Matrix<int32_t>::uninitialized(ps.size(), n);
    const size_t span = pwp.paddedCols();
    const simd::Kernels& kr = simd::kernels(exec.isa);
    parallelFor(exec, 0, ps.size(), kPwpPatternGrain,
                [&](size_t i0, size_t i1) {
        const int16_t* gathered[64];
        for (size_t i = i0; i < i1; ++i) {
            uint64_t bits = ps.patterns()[i];
            size_t batch = 0;
            while (bits) {
                int b = std::countr_zero(bits);
                bits &= bits - 1;
                size_t kk = kOffset + static_cast<size_t>(b);
                if (kk >= weights.rows())
                    continue; // ragged final partition: zero-padded weights
                gathered[batch++] = weights.rowPtr(kk);
            }
            kr.storeRowsI16(pwp.rowPtr(i), gathered, batch, span);
        }
    });
    return pwp;
}

std::vector<Matrix<int32_t>>
computeLayerPwps(const PatternTable& table, const Matrix<int16_t>& weights,
                 const ExecutionConfig& exec)
{
    std::vector<Matrix<int32_t>> pwps(table.numPartitions());
    parallelFor(exec, 0, table.numPartitions(), 1,
                [&](size_t p0, size_t p1) {
        for (size_t p = p0; p < p1; ++p)
            pwps[p] = computePwp(table.partition(p), weights,
                                 p * static_cast<size_t>(table.k()), exec);
    });
    return pwps;
}

Matrix<int32_t>
phiGemm(const LayerDecomposition& dec, const PatternTable& table,
        const Matrix<int16_t>& weights, const ExecutionConfig& exec)
{
    return phiGemmWithPwps(dec, computeLayerPwps(table, weights, exec),
                           weights, exec);
}

Matrix<int32_t>
phiGemmWithPwps(const LayerDecomposition& dec,
                const std::vector<Matrix<int32_t>>& pwps,
                const Matrix<int16_t>& weights,
                const ExecutionConfig& exec)
{
    // Into() overwrites every row via storeRowsI32, so the fresh
    // output needs no zero fill.
    Matrix<int32_t> out =
        Matrix<int32_t>::uninitialized(dec.m, weights.cols());
    phiGemmWithPwpsInto(out, dec, pwps, weights, exec);
    return out;
}

void
phiGemmWithPwpsInto(Matrix<int32_t>& out, const LayerDecomposition& dec,
                    const std::vector<Matrix<int32_t>>& pwps,
                    const Matrix<int16_t>& weights,
                    const ExecutionConfig& exec)
{
    phi_assert(dec.kTotal == weights.rows(),
               "decomposition K ", dec.kTotal, " != weight rows ",
               weights.rows());
    phi_assert(pwps.size() >= dec.numPartitions(),
               "PWPs cover ", pwps.size(), " partitions, need ",
               dec.numPartitions());
    phi_assert(out.rows() == dec.m && out.cols() == weights.cols(),
               "output shape ", out.rows(), "x", out.cols(),
               " != expected ", dec.m, "x", weights.cols());
    const size_t n = weights.cols();
    const size_t numTiles = dec.tiles.size();

    const size_t tileN = exec.resolvedTileN(n);
    const size_t nPad = out.paddedCols();
    const simd::Kernels& kr = simd::kernels(exec.isa);

    // The hot loop walks the row-major serving index (one contiguous
    // line per output row instead of tiles-many scattered vector
    // accesses); decomposeLayer and the .phim loader always build it,
    // so the rebuild here only covers hand-assembled decompositions.
    std::vector<uint16_t> localIds;
    std::vector<uint8_t> localCounts;
    const uint16_t* rowIds = dec.rowPatternIds.data();
    const uint8_t* rowCounts = dec.rowL2Counts.data();
    if (!dec.hasRowIndex() && numTiles > 0) {
        buildRowIndexInto(dec, localIds, localCounts);
        rowIds = localIds.data();
        rowCounts = localCounts.data();
    }

    // Per-tile tables hoisted out of the row loop: PWP row base and
    // stride, Level 2 entry stream and the tile's first weight row.
    // The historical per-entry bounds assert is hoisted too: checking
    // each tile's maximum Level 2 column once proves every entry's
    // weight row is in range.
    std::vector<const int32_t*> pwpBase(numTiles);
    std::vector<size_t> pwpStride(numTiles);
    std::vector<const L2Entry*> l2Entries(numTiles);
    std::vector<const int16_t*> wBase(numTiles);
    const size_t wStride = weights.stride();
    const bool haveMaxima = dec.hasTileMaxima();
    for (size_t t = 0; t < numTiles; ++t) {
        const TileDecomposition& tile = dec.tiles[t];
        const size_t k_off =
            tile.partition * static_cast<size_t>(dec.k);
        uint16_t maxCol = haveMaxima ? dec.tileMaxL2Col[t] : 0;
        if (!haveMaxima)
            for (const L2Entry& e : tile.l2Entries)
                maxCol = std::max(maxCol, e.col);
        phi_assert(tile.l2Entries.empty() ||
                   k_off + maxCol < weights.rows(),
                   "L2 column beyond weight rows");
        pwpBase[t] = pwps[tile.partition].rowPtr(0);
        pwpStride[t] = pwps[tile.partition].stride();
        l2Entries[t] = tile.l2Entries.data();
        wBase[t] = k_off < weights.rows() ? weights.rowPtr(k_off)
                                          : nullptr;
    }

    parallelFor(exec, 0, dec.m, kPhiGemmRowGrain,
                [&](size_t r0, size_t r1) {
        // Per output row, the whole hierarchical product is gathered
        // into pointer batches — the assigned PWP row of every
        // partition (Level 1) plus the signed Level 2 weight-row
        // corrections — then reduced by three multi-row kernel calls
        // that hold the output block in registers across the batch.
        // The Level 1 batch overwrites the block (zeroing it when no
        // partition matched), so the output never needs pre-zeroing.
        // int32 addition is associative, so regrouping the partition
        // order into batches keeps results bit-identical to the
        // per-partition reference at any thread count.
        std::vector<const int32_t*> l1(numTiles);
        std::vector<const int16_t*> l2pos;
        std::vector<const int16_t*> l2neg;
        std::vector<uint32_t> l2Cursor(numTiles);
        // A row holds at most k entries per tile: one up-front
        // reservation keeps the batches from regrowing mid-loop.
        l2pos.reserve(numTiles * static_cast<size_t>(dec.k));
        l2neg.reserve(numTiles * static_cast<size_t>(dec.k));

        for (size_t n0 = 0; n0 < n; n0 += tileN) {
            const size_t n1 = std::min(n, n0 + tileN);
            const size_t span = (n1 == n ? nPad : n1) - n0;

            // Level 2 entries are consumed in row order per tile; the
            // cursors pick up each tile's CSR stream at this chunk.
            for (size_t t = 0; t < numTiles; ++t)
                l2Cursor[t] = dec.tiles[t].l2Offsets.empty()
                                  ? 0
                                  : dec.tiles[t].l2Offsets[r0];

            for (size_t r = r0; r < r1; ++r) {
                const uint16_t* ids = rowIds + r * numTiles;
                const uint8_t* counts = rowCounts + r * numTiles;
                size_t b1 = 0;
                l2pos.clear();
                l2neg.clear();
                for (size_t t = 0; t < numTiles; ++t) {
                    const uint16_t id = ids[t];
                    if (id != 0)
                        l1[b1++] = pwpBase[t] +
                                   (id - size_t{1}) * pwpStride[t] +
                                   n0;
                    const uint32_t cnt = counts[t];
                    if (cnt != 0) {
                        const L2Entry* e = l2Entries[t] + l2Cursor[t];
                        for (uint32_t i = 0; i < cnt; ++i) {
                            const int16_t* w =
                                wBase[t] + e[i].col * wStride + n0;
                            if (e[i].sign > 0)
                                l2pos.push_back(w);
                            else
                                l2neg.push_back(w);
                        }
                        l2Cursor[t] += cnt;
                    }
                }
                kr.fusedStoreAddSub(out.rowPtr(r) + n0, l1.data(), b1,
                                    l2pos.data(), l2pos.size(),
                                    l2neg.data(), l2neg.size(), span);
            }
        }
    });
}

namespace
{

/**
 * Tier-generic body of phiGemmWithArenaInto. The structure mirrors
 * phiGemmWithPwpsInto, with three differences that remove its memory
 * stalls: Level 1 rows are gathered straight out of the contiguous
 * arena by pattern id inside the kernel (no per-row pointer batch and
 * no scatter across per-partition Matrix allocations), rows are
 * visited in dec.serveOrder so consecutive rows reuse cache-hot PWP
 * lines, and Level 2 streams are addressed absolutely through
 * l2Offsets (running cursors can't follow a permuted visit order).
 * Every output row is still written exactly once, to its original
 * slot, by one kernel call per column block — so results are
 * bit-identical to the reference at any tier, permutation and thread
 * count (int32 accumulation is exactly associative).
 */
template <typename Elem>
void
serveArena(Matrix<int32_t>& out, const LayerDecomposition& dec,
           const PwpArena& arena, const Matrix<int16_t>& weights,
           const ExecutionConfig& exec,
           void (*gather)(int32_t*, const Elem*, const uint64_t*,
                          const uint16_t*, size_t, size_t,
                          const int16_t* const*, size_t,
                          const int16_t* const*, size_t, size_t))
{
    const size_t n = weights.cols();
    const size_t numTiles = dec.tiles.size();
    const size_t tileN = exec.resolvedTileN(n);
    const size_t nPad = out.paddedCols();

    std::vector<uint16_t> localIds;
    std::vector<uint8_t> localCounts;
    const uint16_t* rowIds = dec.rowPatternIds.data();
    const uint8_t* rowCounts = dec.rowL2Counts.data();
    if (!dec.hasRowIndex() && numTiles > 0) {
        buildRowIndexInto(dec, localIds, localCounts);
        rowIds = localIds.data();
        rowCounts = localCounts.data();
    }

    // Hoisted per-tile tables, as in the legacy path, plus the tile's
    // first arena row. The per-tile maximum pattern id is checked once
    // against the partition's arena rows so the kernel's id arithmetic
    // is proven in-bounds for the whole call.
    std::vector<uint64_t> tileRowBase(numTiles);
    std::vector<const L2Entry*> l2Entries(numTiles);
    std::vector<const uint32_t*> l2Offsets(numTiles);
    std::vector<const int16_t*> wBase(numTiles);
    const size_t wStride = weights.stride();
    const bool haveMaxima = dec.hasTileMaxima();
    for (size_t t = 0; t < numTiles; ++t) {
        const TileDecomposition& tile = dec.tiles[t];
        phi_assert(tile.partition < arena.numPartitions(),
                   "tile partition ", tile.partition,
                   " beyond arena partitions ", arena.numPartitions());
        const size_t k_off =
            tile.partition * static_cast<size_t>(dec.k);
        uint16_t maxCol = haveMaxima ? dec.tileMaxL2Col[t] : 0;
        uint16_t maxId = haveMaxima ? dec.tileMaxPatternId[t] : 0;
        if (!haveMaxima) {
            for (const L2Entry& e : tile.l2Entries)
                maxCol = std::max(maxCol, e.col);
            for (uint16_t id : tile.patternIds)
                maxId = std::max(maxId, id);
        }
        phi_assert(tile.l2Entries.empty() ||
                   k_off + maxCol < weights.rows(),
                   "L2 column beyond weight rows");
        phi_assert(maxId <= arena.rowsInPartition(tile.partition),
                   "pattern id ", maxId, " beyond arena partition ",
                   tile.partition, " with ",
                   arena.rowsInPartition(tile.partition), " rows");
        tileRowBase[t] = arena.rowBase()[tile.partition];
        l2Entries[t] = tile.l2Entries.data();
        l2Offsets[t] = tile.l2Offsets.empty() ? nullptr
                                              : tile.l2Offsets.data();
        wBase[t] = k_off < weights.rows() ? weights.rowPtr(k_off)
                                          : nullptr;
    }

    const uint32_t* order =
        dec.hasServeOrder() ? dec.serveOrder.data() : nullptr;
    const Elem* arenaData = arena.data<Elem>();
    const size_t stride = arena.stride();
    const bool doPrefetch = exec.prefetchPwp && !arena.empty();

    parallelFor(exec, 0, dec.m, kPhiGemmRowGrain,
                [&](size_t i0, size_t i1) {
        // One up-front reservation: a row holds at most k entries per
        // tile, so the pointer batches never regrow mid-loop.
        std::vector<const int16_t*> l2pos;
        std::vector<const int16_t*> l2neg;
        l2pos.reserve(numTiles * static_cast<size_t>(dec.k));
        l2neg.reserve(numTiles * static_cast<size_t>(dec.k));

        for (size_t n0 = 0; n0 < n; n0 += tileN) {
            const size_t n1 = std::min(n, n0 + tileN);
            const size_t span = (n1 == n ? nPad : n1) - n0;
            // An empty arena (no patterns anywhere) serves pure
            // Level 2; its null base must not be offset.
            const Elem* arenaBlock =
                arena.empty() ? arenaData : arenaData + n0;

            for (size_t i = i0; i < i1; ++i) {
                const size_t r = order ? order[i] : i;
                if (doPrefetch && i + 1 < i1) {
                    // Stream the next visit's Level 1 rows for this
                    // column block while the current row reduces.
                    const size_t rn = order ? order[i + 1] : i + 1;
                    const uint16_t* nids = rowIds + rn * numTiles;
                    for (size_t t = 0; t < numTiles; ++t)
                        if (nids[t] != 0)
                            simd::prefetchSpan(
                                arenaBlock +
                                    (tileRowBase[t] + nids[t] -
                                     size_t{1}) *
                                        stride,
                                span * sizeof(Elem));
                }

                const uint16_t* ids = rowIds + r * numTiles;
                const uint8_t* counts = rowCounts + r * numTiles;
                l2pos.clear();
                l2neg.clear();
                for (size_t t = 0; t < numTiles; ++t) {
                    const uint32_t cnt = counts[t];
                    if (cnt == 0)
                        continue;
                    const L2Entry* e = l2Entries[t] + l2Offsets[t][r];
                    for (uint32_t j = 0; j < cnt; ++j) {
                        const int16_t* w =
                            wBase[t] + e[j].col * wStride + n0;
                        if (e[j].sign > 0)
                            l2pos.push_back(w);
                        else
                            l2neg.push_back(w);
                    }
                }
                gather(out.rowPtr(r) + n0, arenaBlock,
                       tileRowBase.data(), ids, numTiles, stride,
                       l2pos.data(), l2pos.size(), l2neg.data(),
                       l2neg.size(), span);
            }
        }
    });
}

} // namespace

void
phiGemmWithArenaInto(Matrix<int32_t>& out, const LayerDecomposition& dec,
                     const PwpArena& arena,
                     const Matrix<int16_t>& weights,
                     const ExecutionConfig& exec)
{
    phi_assert(dec.kTotal == weights.rows(),
               "decomposition K ", dec.kTotal, " != weight rows ",
               weights.rows());
    phi_assert(dec.tiles.empty() || arena.cols() == weights.cols(),
               "arena width ", arena.cols(), " != weight cols ",
               weights.cols());
    phi_assert(out.rows() == dec.m && out.cols() == weights.cols(),
               "output shape ", out.rows(), "x", out.cols(),
               " != expected ", dec.m, "x", weights.cols());

    const simd::Kernels& kr = simd::kernels(exec.isa);
    switch (arena.tier()) {
    case PwpTier::Int32:
        serveArena<int32_t>(out, dec, arena, weights, exec,
                            kr.pwpGatherI32);
        break;
    case PwpTier::Int16:
        serveArena<int16_t>(out, dec, arena, weights, exec,
                            kr.pwpGatherI16);
        break;
    case PwpTier::Int8:
        serveArena<int8_t>(out, dec, arena, weights, exec,
                           kr.pwpGatherI8);
        break;
    }
}

Matrix<int32_t>
phiGemmWithArena(const LayerDecomposition& dec, const PwpArena& arena,
                 const Matrix<int16_t>& weights,
                 const ExecutionConfig& exec)
{
    Matrix<int32_t> out =
        Matrix<int32_t>::uninitialized(dec.m, weights.cols());
    phiGemmWithArenaInto(out, dec, arena, weights, exec);
    return out;
}

size_t
pwpBytes(const PatternTable& table, size_t n, size_t bytesPerElem)
{
    return table.totalPatterns() * n * bytesPerElem;
}

PwpTierFootprint
pwpTierFootprint(const PatternTable& table, size_t n)
{
    PwpTierFootprint fp;
    const size_t elems = table.totalPatterns() * n;
    fp.bytes[static_cast<size_t>(PwpTier::Int32)] = elems * 4;
    fp.bytes[static_cast<size_t>(PwpTier::Int16)] = elems * 2;
    fp.bytes[static_cast<size_t>(PwpTier::Int8)] = elems * 1;
    return fp;
}

} // namespace phi
