#include "core/pwp.hh"

namespace phi
{

Matrix<int32_t>
computePwp(const PatternSet& ps, const Matrix<int16_t>& weights,
           size_t kOffset)
{
    const size_t n = weights.cols();
    Matrix<int32_t> pwp(ps.size(), n, 0);
    for (size_t i = 0; i < ps.size(); ++i) {
        uint64_t bits = ps.patterns()[i];
        int32_t* out = pwp.rowPtr(i);
        while (bits) {
            int b = std::countr_zero(bits);
            bits &= bits - 1;
            size_t kk = kOffset + static_cast<size_t>(b);
            if (kk >= weights.rows())
                continue; // ragged final partition: zero-padded weights
            const int16_t* w = weights.rowPtr(kk);
            for (size_t c = 0; c < n; ++c)
                out[c] += w[c];
        }
    }
    return pwp;
}

std::vector<Matrix<int32_t>>
computeLayerPwps(const PatternTable& table, const Matrix<int16_t>& weights)
{
    std::vector<Matrix<int32_t>> pwps;
    pwps.reserve(table.numPartitions());
    for (size_t p = 0; p < table.numPartitions(); ++p) {
        pwps.push_back(computePwp(table.partition(p), weights,
                                  p * static_cast<size_t>(table.k())));
    }
    return pwps;
}

Matrix<int32_t>
phiGemm(const LayerDecomposition& dec, const PatternTable& table,
        const Matrix<int16_t>& weights)
{
    phi_assert(dec.kTotal == weights.rows(),
               "decomposition K ", dec.kTotal, " != weight rows ",
               weights.rows());
    const size_t n = weights.cols();
    Matrix<int32_t> out(dec.m, n, 0);

    auto pwps = computeLayerPwps(table, weights);

    for (const auto& tile : dec.tiles) {
        const size_t k_off = tile.partition * static_cast<size_t>(dec.k);
        const Matrix<int32_t>& pwp = pwps[tile.partition];
        for (size_t r = 0; r < tile.numRows(); ++r) {
            int32_t* out_row = out.rowPtr(r);
            // Level 1: one gather-accumulate of the pre-computed PWP.
            if (tile.patternIds[r] != 0) {
                const int32_t* p = pwp.rowPtr(tile.patternIds[r] - 1);
                for (size_t c = 0; c < n; ++c)
                    out_row[c] += p[c];
            }
            // Level 2: signed corrections against raw weight rows.
            auto [lo, hi] = tile.rowRange(r);
            for (uint32_t e = lo; e < hi; ++e) {
                size_t kk = k_off + tile.l2Entries[e].col;
                phi_assert(kk < weights.rows(),
                           "L2 column beyond weight rows");
                const int16_t* w = weights.rowPtr(kk);
                if (tile.l2Entries[e].sign > 0) {
                    for (size_t c = 0; c < n; ++c)
                        out_row[c] += w[c];
                } else {
                    for (size_t c = 0; c < n; ++c)
                        out_row[c] -= w[c];
                }
            }
        }
    }
    return out;
}

size_t
pwpBytes(const PatternTable& table, size_t n, size_t bytesPerElem)
{
    return table.totalPatterns() * n * bytesPerElem;
}

} // namespace phi
