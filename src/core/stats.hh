/**
 * @file
 * Sparsity accounting matching the paper's Table 4 and Fig. 7a.
 */

#ifndef PHI_CORE_STATS_HH
#define PHI_CORE_STATS_HH

#include "core/decompose.hh"
#include "core/pattern.hh"

namespace phi
{

/**
 * Hierarchical sparsity breakdown of one decomposed layer (or an
 * aggregate over layers). Densities are fractions of M*K elements.
 */
struct SparsityBreakdown
{
    double bitDensity = 0;   // ones(A) / (M*K)
    double l1Density = 0;    // ones contributed by assigned patterns
    double l2PosDensity = 0; // +1 corrections
    double l2NegDensity = 0; // -1 corrections

    /** Fraction of row-tiles carrying a pattern id (index density,
     *  paper: 50.66% on average). */
    double indexDensity = 0;

    /**
     * Vector-wise computational density (Fig. 7a): one PWP accumulation
     * per assigned row-tile, normalised per activation element.
     */
    double vectorDensity = 0;

    double l2Density() const { return l2PosDensity + l2NegDensity; }
    double totalComputeDensity() const
    {
        return l2Density() + vectorDensity;
    }

    /** Theoretical speedup over bit sparsity (Table 4 "Over B."):
     *  online ops shrink from bit nnz to L2 nnz. */
    double speedupOverBit() const
    {
        return l2Density() > 0 ? bitDensity / l2Density() : 0.0;
    }

    /** Theoretical speedup over dense (Table 4 "Over D."). */
    double speedupOverDense() const
    {
        return l2Density() > 0 ? 1.0 / l2Density() : 0.0;
    }

    /** Element counts used to merge per-layer breakdowns. */
    size_t elements = 0;
    size_t rowTiles = 0;
    size_t bitOnes = 0;
    size_t l1Ones = 0;
    size_t l2Pos = 0;
    size_t l2Neg = 0;
    size_t assigned = 0;
};

/** Compute the breakdown for one decomposed layer. */
SparsityBreakdown computeBreakdown(const BinaryMatrix& acts,
                                   const LayerDecomposition& dec,
                                   const PatternTable& table);

/** Merge several per-layer breakdowns weighted by element counts. */
SparsityBreakdown mergeBreakdowns(
    const std::vector<SparsityBreakdown>& parts);

} // namespace phi

#endif // PHI_CORE_STATS_HH
