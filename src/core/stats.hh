/**
 * @file
 * Sparsity accounting matching the paper's Table 4 and Fig. 7a, plus
 * the throughput/latency counters surfaced by the serving runtime.
 *
 * Everything here is plain data with no locking of its own: a stats
 * block inherits its thread-safety from whoever holds it. The owners
 * declare that relationship with GUARDED_BY — e.g. AsyncPhiEngine's
 * published snapshots live under its statsMutex, PhiServer's
 * ServerCounters under stateMutex — or by single-thread ownership
 * (PhiEngine's per-model blocks belong to the dispatcher).
 */

#ifndef PHI_CORE_STATS_HH
#define PHI_CORE_STATS_HH

#include <cstdint>
#include <vector>

#include "core/decompose.hh"
#include "core/pattern.hh"

namespace phi
{

/**
 * Hierarchical sparsity breakdown of one decomposed layer (or an
 * aggregate over layers). Densities are fractions of M*K elements.
 */
struct SparsityBreakdown
{
    double bitDensity = 0;   // ones(A) / (M*K)
    double l1Density = 0;    // ones contributed by assigned patterns
    double l2PosDensity = 0; // +1 corrections
    double l2NegDensity = 0; // -1 corrections

    /** Fraction of row-tiles carrying a pattern id (index density,
     *  paper: 50.66% on average). */
    double indexDensity = 0;

    /**
     * Vector-wise computational density (Fig. 7a): one PWP accumulation
     * per assigned row-tile, normalised per activation element.
     */
    double vectorDensity = 0;

    double l2Density() const { return l2PosDensity + l2NegDensity; }
    double totalComputeDensity() const
    {
        return l2Density() + vectorDensity;
    }

    /** Theoretical speedup over bit sparsity (Table 4 "Over B."):
     *  online ops shrink from bit nnz to L2 nnz. */
    double speedupOverBit() const
    {
        return l2Density() > 0 ? bitDensity / l2Density() : 0.0;
    }

    /** Theoretical speedup over dense (Table 4 "Over D."). */
    double speedupOverDense() const
    {
        return l2Density() > 0 ? 1.0 / l2Density() : 0.0;
    }

    /** Element counts used to merge per-layer breakdowns. */
    size_t elements = 0;
    size_t rowTiles = 0;
    size_t bitOnes = 0;
    size_t l1Ones = 0;
    size_t l2Pos = 0;
    size_t l2Neg = 0;
    size_t assigned = 0;
};

/** Compute the breakdown for one decomposed layer. */
SparsityBreakdown computeBreakdown(const BinaryMatrix& acts,
                                   const LayerDecomposition& dec,
                                   const PatternTable& table);

/** Merge several per-layer breakdowns weighted by element counts. */
SparsityBreakdown mergeBreakdowns(
    const std::vector<SparsityBreakdown>& parts);

/**
 * Throughput/latency accounting of the serving runtime (PhiEngine).
 *
 * Counters are cumulative since construction or the last reset; the
 * engine records one latency sample per request (time from the request
 * starting execution to its result being ready) and the wall time of
 * each flushed batch. Only the counters are timing-dependent — served
 * results themselves stay bit-deterministic.
 */
struct ServingStats
{
    /**
     * Cap on retained latency samples: a sliding window over the most
     * recent requests, so a long-running engine's memory footprint and
     * percentile cost stay bounded no matter how many requests it has
     * served. 8192 samples give sub-percent p99 resolution.
     */
    static constexpr size_t kMaxLatencySamples = 8192;

    uint64_t requests = 0; // requests completed
    uint64_t batches = 0;  // flush() calls that served >= 1 request
    uint64_t rows = 0;     // activation rows across served requests

    /**
     * Wall time spent inside flush(), summed per flush. A utilisation
     * metric, NOT a throughput denominator: once flushes overlap
     * (merged stats from concurrent engines, or work observed from the
     * async frontend) the per-flush sum double-counts wall time and
     * would under-report RPS. Throughput uses the monotonic window
     * below instead.
     */
    double busySeconds = 0;

    /**
     * Monotonic serving window: steady-clock seconds (since the
     * clock's epoch) of the first flush's start and the last flush's
     * end. recordFlushWindow() keeps the min/max, so overlapping
     * flushes widen the window at most to real elapsed time — never
     * double-count it. Negative = no flush recorded yet.
     */
    double windowBeginSeconds = -1.0;
    double windowEndSeconds = -1.0;

    // -- async frontend counters (AsyncPhiEngine) ---------------------
    uint64_t rejected = 0;   // submits refused by backpressure
    uint64_t dispatches = 0; // dispatcher micro-batches popped
    uint64_t queueDepthSum = 0; // summed queue depth at each dispatch
    uint64_t maxQueueDepth = 0; // high-water queue depth at dispatch

    // -- resilience counters (deadlines, shedding, watchdog) ----------
    uint64_t expired = 0; // requests dropped for a passed deadline
    uint64_t shed = 0;    // queued requests evicted for higher priority
    uint64_t watchdogRestarts = 0; // dispatcher deaths survived

    // -- session counters (SessionManager) ----------------------------
    uint64_t sessionsOpened = 0;   // sessions opened (incl. restored)
    uint64_t sessionsClosed = 0;   // sessions closed by their client
    uint64_t sessionsExpired = 0;  // sessions evicted by the idle TTL
    uint64_t sessionsRejected = 0; // opens refused at the session cap
    uint64_t sessionSteps = 0;     // temporal steps served, all sessions

    /**
     * Deadline-miss histogram: how *late* each expired request was
     * when it was dropped (bucket upper bounds in
     * kDeadlineMissUpperMs; the last bucket is unbounded). Expired
     * totals live in `expired`; this resolves whether misses are
     * marginal (tighten linger) or catastrophic (shed harder).
     */
    static constexpr size_t kDeadlineMissBuckets = 6;
    static constexpr double kDeadlineMissUpperMs[kDeadlineMissBuckets -
                                                 1] = {1.0, 10.0, 100.0,
                                                       1000.0, 10000.0};
    uint64_t deadlineMissHistogram[kDeadlineMissBuckets] = {};

    /** Total coalescing wait the dispatcher *added* (dispatch-ready to
     *  dispatched), excluding queue wait behind earlier flushes. */
    double lingerSeconds = 0;

    /**
     * Per-request service-time samples, seconds — the most recent
     * kMaxLatencySamples, maintained as a ring by recordLatency() (so
     * order is the ring's, not strictly completion order, once full).
     */
    std::vector<double> latencySeconds;

    /** Record one sample, evicting the oldest once the window is full. */
    void recordLatency(double seconds);

    /** Widen the monotonic window to cover one flush's [begin, end]
     *  (steady-clock seconds since the clock's epoch). */
    void recordFlushWindow(double beginSeconds, double endSeconds);

    /** Record one dispatcher micro-batch: queue depth observed at
     *  dispatch and how long the batch lingered for coalescing. */
    void recordDispatch(size_t queueDepth, double lingerSec);

    /** Count one expired request, `lateSeconds` past its deadline when
     *  dropped (bumps `expired` and the miss histogram). */
    void recordDeadlineMiss(double lateSeconds);

    /** First-flush-start to last-flush-end, seconds (0 before any
     *  flush). Real elapsed serving time even when flushes overlap. */
    double windowSeconds() const;

    /** Fraction of the serving window spent inside flush(); can exceed
     *  1 when merged stats cover engines flushing concurrently. */
    double busyFraction() const;

    /**
     * Requests per second over the monotonic serving window (falls
     * back to busySeconds when no window was recorded, e.g. counters
     * filled in by hand). Correct under overlapping flushes, where the
     * per-flush busySeconds sum double-counts wall time.
     */
    double throughputRps() const;

    /** Activation rows per second over the same window. */
    double rowThroughputRps() const;

    /** Mean queue depth seen at dispatch (async frontend; 0 without
     *  recorded dispatches). */
    double meanQueueDepth() const;

    /** Mean micro-batch coalescing wait, microseconds. */
    double meanLingerMicros() const;

    /**
     * Latency percentile in milliseconds over the recorded samples;
     * p in [0, 100]. Returns 0 with no samples.
     */
    double latencyPercentileMs(double p) const;

    /** Mean request latency in milliseconds. */
    double meanLatencyMs() const;

    /** Sessions open right now (opened minus closed/expired; 0 when
     *  the counters describe a finished workload). */
    uint64_t activeSessions() const;

    /** Mean temporal steps served per opened session. */
    double meanStepsPerSession() const;

    /** Fold another stats block into this one. */
    void merge(const ServingStats& other);

  private:
    /** Ring cursor once latencySeconds reaches kMaxLatencySamples. */
    size_t latencyRingNext = 0;
};

} // namespace phi

#endif // PHI_CORE_STATS_HH
