/**
 * @file
 * Public facade tying the Phi workflow together (Sec. 3.4):
 * calibrate -> (optional PAFT) -> decompose -> verify/compute.
 *
 * This is the entry point downstream users consume; the examples are
 * built exclusively on this API.
 */

#ifndef PHI_CORE_PIPELINE_HH
#define PHI_CORE_PIPELINE_HH

#include <optional>
#include <string>
#include <vector>

#include "core/calibration.hh"
#include "core/decompose.hh"
#include "core/paft.hh"
#include "core/pwp.hh"
#include "core/stats.hh"

namespace phi
{

/**
 * Per-layer Phi pipeline state: the calibrated pattern table plus the
 * pre-computed PWPs once weights are bound.
 */
class LayerPipeline
{
  public:
    LayerPipeline(std::string name, PatternTable table,
                  ExecutionConfig exec = {});

    const std::string& name() const { return layerName; }
    const PatternTable& table() const { return patternTable; }

    /** Execution engine knobs used by decompose()/compute(). */
    const ExecutionConfig& execution() const { return execCfg; }
    void setExecution(const ExecutionConfig& exec) { execCfg = exec; }

    /** Bind the weight matrix and pre-compute PWPs (offline stage). */
    void bindWeights(Matrix<int16_t> weights);

    bool hasWeights() const { return !weightMatrix.empty(); }
    const Matrix<int16_t>& weights() const { return weightMatrix; }
    const std::vector<Matrix<int32_t>>& pwps() const { return pwpList; }

    /** Decompose a runtime activation matrix. */
    LayerDecomposition decompose(const BinaryMatrix& acts) const;

    /** Hierarchical product using the bound weights. */
    Matrix<int32_t> compute(const LayerDecomposition& dec) const;

    /** Sparsity accounting for a decomposed activation. */
    SparsityBreakdown breakdown(const BinaryMatrix& acts,
                                const LayerDecomposition& dec) const;

  private:
    std::string layerName;
    PatternTable patternTable;
    ExecutionConfig execCfg;
    Matrix<int16_t> weightMatrix;
    std::vector<Matrix<int32_t>> pwpList;
};

/**
 * Whole-model pipeline: owns per-layer calibrations keyed by insertion
 * order, mirrors the paper's per-model/dataset/layer/partition pattern
 * independence.
 */
class Pipeline
{
  public:
    /** Calibration knobs; cfg.exec doubles as the engine config. */
    explicit Pipeline(CalibrationConfig cfg = {});

    /**
     * @param cfg   calibration knobs.
     * @param exec  execution engine knobs {threads, tileN, tileK}; they
     *              govern calibration (overriding cfg.exec) and are
     *              inherited by every layer added afterwards.
     */
    Pipeline(CalibrationConfig cfg, ExecutionConfig exec);

    const CalibrationConfig& config() const { return cfg; }

    /** Execution engine knobs shared by calibration and all layers. */
    const ExecutionConfig& execution() const { return cfg.exec; }

    /** Re-tune the engine; applies to existing and future layers. */
    void setExecution(const ExecutionConfig& exec);

    /** Calibrate and register a layer from sample activations. */
    LayerPipeline& addLayer(
        const std::string& name,
        const std::vector<const BinaryMatrix*>& samples);

    /** Register a layer with an externally built table. */
    LayerPipeline& addLayer(const std::string& name, PatternTable table);

    size_t numLayers() const { return layers.size(); }
    LayerPipeline& layer(size_t idx);
    const LayerPipeline& layer(size_t idx) const;

    /**
     * Apply PAFT to an activation matrix using the given layer's
     * patterns; returns alignment statistics.
     */
    PaftResult paft(size_t layer_idx, BinaryMatrix& acts,
                    const PaftConfig& paft_cfg, Rng& rng) const;

  private:
    CalibrationConfig cfg;
    std::vector<LayerPipeline> layers;
};

} // namespace phi

#endif // PHI_CORE_PIPELINE_HH
