/**
 * @file
 * The offline *compiler* half of the Phi workflow (Sec. 3.4):
 * calibrate -> (optional PAFT) -> bind weights -> compile.
 *
 * Pipeline owns the calibration-time state (sample pooling, k-means
 * configuration, mutable per-layer staging) and emits an immutable
 * CompiledModel — tables + weights + precomputed PWPs, no calibration
 * state — which the online phase consumes via CompiledLayer or the
 * runtime PhiEngine. Artifacts round-trip through io::saveModel() /
 * io::loadModel(), so calibration runs once per model, not once per
 * serving process.
 */

#ifndef PHI_CORE_PIPELINE_HH
#define PHI_CORE_PIPELINE_HH

#include <optional>
#include <string>
#include <vector>

#include "core/calibration.hh"
#include "core/compiled_model.hh"
#include "core/decompose.hh"
#include "core/paft.hh"
#include "core/pwp.hh"
#include "core/stats.hh"

namespace phi
{

/**
 * Per-layer compiler staging: the calibrated pattern table plus the
 * weight matrix once bound. Decompose/compute live on the compiled
 * artifact (CompiledLayer), not here — this class only accumulates
 * what compile() needs.
 */
class LayerPipeline
{
  public:
    LayerPipeline(std::string name, PatternTable table);

    const std::string& name() const { return layerName; }
    const PatternTable& table() const { return patternTable; }

    /** Stage the weight matrix for compile(). */
    void bindWeights(Matrix<int16_t> weights);

    bool hasWeights() const { return !weightMatrix.empty(); }
    const Matrix<int16_t>& weights() const { return weightMatrix; }

  private:
    std::string layerName;
    PatternTable patternTable;
    Matrix<int16_t> weightMatrix;
};

/**
 * Whole-model compiler: owns per-layer calibrations keyed by insertion
 * order, mirrors the paper's per-model/dataset/layer/partition pattern
 * independence. compile() snapshots the staged layers into an immutable
 * CompiledModel.
 */
class Pipeline
{
  public:
    /** Calibration knobs; cfg.exec doubles as the engine config. */
    explicit Pipeline(CalibrationConfig cfg = {});

    /**
     * @param cfg   calibration knobs.
     * @param exec  execution engine knobs {threads, tileN, tileK}; they
     *              govern calibration (overriding cfg.exec) and the
     *              PWP precomputation in compile().
     */
    Pipeline(CalibrationConfig cfg, ExecutionConfig exec);

    const CalibrationConfig& config() const { return cfg; }

    /** Execution engine knobs shared by calibration and compile(). */
    const ExecutionConfig& execution() const { return cfg.exec; }

    /** Re-tune the engine for subsequent calibration/compile work. */
    void setExecution(const ExecutionConfig& exec) { cfg.exec = exec; }

    /**
     * Narrowest PWP storage tier compile() may pick per layer
     * (default Int32 = never quantize). Quantization is always
     * lossless: a layer whose PWP values don't fit the requested
     * width falls back to a wider tier, so serving output is
     * bit-identical regardless of this knob.
     */
    void setPwpQuant(PwpTier tier) { pwpQuantTier = tier; }
    PwpTier pwpQuant() const { return pwpQuantTier; }

    /** Calibrate and register a layer from sample activations. */
    LayerPipeline& addLayer(
        const std::string& name,
        const std::vector<const BinaryMatrix*>& samples);

    /** Register a layer with an externally built table. */
    LayerPipeline& addLayer(const std::string& name, PatternTable table);

    size_t numLayers() const { return layers.size(); }
    LayerPipeline& layer(size_t idx);
    const LayerPipeline& layer(size_t idx) const;

    /**
     * Apply PAFT to an activation matrix using the given layer's
     * patterns; returns alignment statistics.
     */
    PaftResult paft(size_t layer_idx, BinaryMatrix& acts,
                    const PaftConfig& paft_cfg, Rng& rng) const;

    /**
     * Snapshot the staged layers into an immutable serving artifact.
     * PWPs are precomputed here for every layer with bound weights;
     * weightless layers compile to decompose-only CompiledLayers.
     * The Pipeline is left untouched and may keep compiling.
     */
    CompiledModel compile() const;

  private:
    CalibrationConfig cfg;
    PwpTier pwpQuantTier = PwpTier::Int32;
    std::vector<LayerPipeline> layers;
};

/** Free-function spelling of the offline step: phi::compile(pipe). */
inline CompiledModel
compile(const Pipeline& pipe)
{
    return pipe.compile();
}

} // namespace phi

#endif // PHI_CORE_PIPELINE_HH
