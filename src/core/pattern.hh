/**
 * @file
 * Pattern containers for Phi's Level 1 vector sparsity.
 *
 * A pattern is a k-bit binary vector (k <= 64) calibrated offline for one
 * K-dimension partition of one layer. Pattern index 0 is reserved for
 * "no pattern assigned"; pattern i (1-based) lives at patterns()[i-1].
 */

#ifndef PHI_CORE_PATTERN_HH
#define PHI_CORE_PATTERN_HH

#include <cstdint>
#include <vector>

#include "common/bitops.hh"
#include "common/logging.hh"

namespace phi
{

/** The calibrated pattern set of a single (layer, partition). */
class PatternSet
{
  public:
    PatternSet() : kBits(16) {}

    PatternSet(int k, std::vector<uint64_t> patternBits)
        : kBits(k), pats(std::move(patternBits))
    {
        phi_assert(k >= 1 && k <= 64, "pattern length must be in [1,64]");
        for (auto& p : this->pats)
            p &= lowMask(k);
    }

    int k() const { return kBits; }
    size_t size() const { return pats.size(); }
    bool empty() const { return pats.empty(); }

    /** Pattern bits by 1-based id (id 0 is "none" and not addressable). */
    uint64_t
    bitsOf(uint16_t id) const
    {
        phi_assert(id >= 1 && id <= pats.size(),
                   "pattern id ", id, " out of range 1..", pats.size());
        return pats[id - 1];
    }

    const std::vector<uint64_t>& patterns() const { return pats; }

  private:
    int kBits;
    std::vector<uint64_t> pats;
};

/** Per-layer table: one PatternSet per K-dimension partition. */
class PatternTable
{
  public:
    PatternTable() : kBits(16) {}

    PatternTable(int k, std::vector<PatternSet> partitionSets)
        : kBits(k), parts(std::move(partitionSets))
    {
        for (const auto& ps : this->parts)
            phi_assert(ps.k() == k, "partition pattern length mismatch");
    }

    int k() const { return kBits; }
    size_t numPartitions() const { return parts.size(); }

    const PatternSet&
    partition(size_t p) const
    {
        phi_assert(p < parts.size(), "partition ", p, " out of ",
                   parts.size());
        return parts[p];
    }

    /** Total number of stored patterns across partitions. */
    size_t
    totalPatterns() const
    {
        size_t n = 0;
        for (const auto& ps : parts)
            n += ps.size();
        return n;
    }

  private:
    int kBits;
    std::vector<PatternSet> parts;
};

} // namespace phi

#endif // PHI_CORE_PATTERN_HH
