#include "core/paft.hh"

#include "common/rng.hh"
#include "core/decompose.hh"

namespace phi
{

PaftResult
applyPaft(BinaryMatrix& acts, const PatternTable& table,
          const PaftConfig& cfg, Rng& rng)
{
    PaftResult res;
    res.elements = acts.rows() * acts.cols();

    const int k = table.k();
    const size_t partitions =
        ceilDiv(acts.cols(), static_cast<size_t>(k));
    phi_assert(table.numPartitions() >= partitions,
               "pattern table too small for activation width");

    for (size_t p = 0; p < partitions; ++p) {
        PatternAssigner assigner(table.partition(p));
        const size_t start = p * static_cast<size_t>(k);
        for (size_t r = 0; r < acts.rows(); ++r) {
            uint64_t row = acts.extract(r, start, k);
            const RowAssignment& a = assigner.assign(row);
            if (a.patternId == 0)
                continue;
            uint64_t mismatch = a.posMask | a.negMask;
            res.mismatchBitsBefore +=
                static_cast<size_t>(popcount64(mismatch));
            uint64_t new_row = row;
            while (mismatch) {
                int b = std::countr_zero(mismatch);
                mismatch &= mismatch - 1;
                size_t col = start + static_cast<size_t>(b);
                if (col >= acts.cols())
                    continue;
                if (rng.bernoulli(cfg.alignStrength)) {
                    new_row ^= 1ull << b;
                    ++res.bitsFlipped;
                }
            }
            if (new_row != row)
                acts.deposit(r, start, k, new_row);
        }
    }
    return res;
}

} // namespace phi
