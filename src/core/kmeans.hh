/**
 * @file
 * K-means-based pattern clustering (Algorithm 1 of the paper).
 *
 * Binary activation row-tiles are clustered under Hamming distance; the
 * rounded cluster centres become the pattern set. Because rows are k-bit
 * values, we cluster the *histogram* of distinct values with multiplicity
 * weights instead of individual rows — numerically identical, but the
 * assignment step costs O(distinct * q) rather than O(rows * q).
 */

#ifndef PHI_CORE_KMEANS_HH
#define PHI_CORE_KMEANS_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/parallel.hh"
#include "core/pattern.hh"

namespace phi
{

/** Tuning knobs for pattern clustering. */
struct KMeansConfig
{
    /** Number of clusters / patterns per partition (paper: 128). */
    int numClusters = 128;
    /** Maximum Lloyd iterations; convergence usually ends earlier. */
    int maxIters = 25;
    /** Seed for centre initialisation. */
    uint64_t seed = 1;
    /** Initialisation scheme. */
    enum class Init { Random, PlusPlus };
    Init init = Init::Random;
    /**
     * Cap on distinct histogram entries fed to Lloyd iterations; when
     * exceeded, the highest-multiplicity entries are kept (dominant
     * clusters survive, the long tail is dropped). 0 disables the cap.
     */
    size_t maxDistinct = 0;
    /**
     * Execution engine knobs for the parallel assignment sweeps.
     * Assignment and centroid statistics reduce over fixed chunks in
     * chunk order, so results are bit-identical at any thread count.
     */
    ExecutionConfig exec;
};

/** One weighted point: (k-bit row value, multiplicity). */
using WeightedRow = std::pair<uint64_t, uint64_t>;

/**
 * Weighted binary k-means under Hamming distance.
 *
 * Implements Algorithm 1: filters all-zero and one-hot rows, assigns
 * points to the nearest centre by Hamming distance, updates centres as
 * the majority-rounded mean, and reseeds empty clusters from the point
 * farthest from its centre.
 */
class BinaryKMeans
{
  public:
    explicit BinaryKMeans(KMeansConfig kmCfg) : cfg(kmCfg) {}

    /**
     * Cluster a weighted histogram of k-bit rows.
     *
     * @param hist  distinct (value, count) pairs; values must fit in k
     *              bits.
     * @param k     row-tile bit width.
     * @return the calibrated PatternSet (possibly fewer than q patterns
     *         if fewer distinct meaningful rows exist).
     */
    PatternSet fit(const std::vector<WeightedRow>& hist, int k) const;

    /** Build a multiplicity histogram from raw row values. */
    static std::vector<WeightedRow>
    histogram(const std::vector<uint64_t>& rows);

    /**
     * Weighted clustering cost: sum of count * Hamming(value, centre).
     * Exposed for tests asserting the Lloyd iterations never increase it.
     */
    static uint64_t cost(const std::vector<WeightedRow>& hist,
                         const PatternSet& ps);

  private:
    KMeansConfig cfg;
};

} // namespace phi

#endif // PHI_CORE_KMEANS_HH
