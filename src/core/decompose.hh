/**
 * @file
 * Phi hierarchical sparsity decomposition (Sec. 3.1 of the paper).
 *
 * For every k-bit row-tile of the activation matrix, the assigner picks
 * the pattern minimising the Hamming distance. If the best pattern is no
 * better than the row's own popcount, no pattern is assigned and Level 2
 * holds the raw +1 bits; otherwise Level 1 records the pattern id and
 * Level 2 holds the bidirectional {+1, -1} correction so that
 * L1 + L2 == activation exactly.
 */

#ifndef PHI_CORE_DECOMPOSE_HH
#define PHI_CORE_DECOMPOSE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/parallel.hh"
#include "core/pattern.hh"
#include "numeric/binary_matrix.hh"

namespace phi
{

/** One Level 2 correction element within a partition (col in [0, k)). */
struct L2Entry
{
    uint16_t col;
    int8_t sign; // +1 or -1
};

/** Result of assigning one row-tile to a pattern. */
struct RowAssignment
{
    uint16_t patternId = 0; // 0 = no pattern
    uint64_t posMask = 0;   // +1 correction positions
    uint64_t negMask = 0;   // -1 correction positions

    int nnzPos() const { return popcount64(posMask); }
    int nnzNeg() const { return popcount64(negMask); }
    int nnz() const { return nnzPos() + nnzNeg(); }
};

/**
 * Assigns row-tiles to patterns with memoisation.
 *
 * SNN activations are heavily clustered, so distinct k-bit values repeat
 * massively; a per-value cache turns the O(q) scan into a hash lookup
 * for all repeats.
 */
class PatternAssigner
{
  public:
    explicit PatternAssigner(const PatternSet& ps);

    /** Best assignment for a k-bit row value (memoised). */
    const RowAssignment& assign(uint64_t row) const;

    /**
     * As assign(), but bypassing the shared memo cache. The parallel
     * decomposition sweep uses this with one cache per work chunk —
     * the shared map is not thread-safe, and per-chunk memoisation
     * still captures the massive value repetition of SNN activations.
     */
    RowAssignment assignUncached(uint64_t row) const { return compute(row); }

    const PatternSet& patternSet() const { return set; }

  private:
    RowAssignment compute(uint64_t row) const;

    PatternSet set;
    mutable std::unordered_map<uint64_t, RowAssignment> cache;
};

/** Decomposition of one (M x k) activation partition. */
struct TileDecomposition
{
    size_t partition = 0;   // index along K
    int k = 16;

    /** Per-row pattern id (0 = none). */
    std::vector<uint16_t> patternIds;

    /** CSR layout of Level 2 entries: row r owns
     *  l2Entries[l2Offsets[r] .. l2Offsets[r+1]). */
    std::vector<uint32_t> l2Offsets;
    std::vector<L2Entry> l2Entries;

    size_t numRows() const { return patternIds.size(); }
    size_t l2Nnz() const { return l2Entries.size(); }

    /** Level 2 entries of row r as an index range. */
    std::pair<uint32_t, uint32_t>
    rowRange(size_t r) const
    {
        return {l2Offsets[r], l2Offsets[r + 1]};
    }
};

/** Full-layer decomposition: one tile per K partition. */
struct LayerDecomposition
{
    size_t m = 0;      // activation rows
    size_t kTotal = 0; // activation columns
    int k = 16;        // partition width

    std::vector<TileDecomposition> tiles;

    size_t numPartitions() const { return tiles.size(); }

    /** Total Level 2 nonzeros across partitions. */
    size_t totalL2Nnz() const;

    /** Total assigned (nonzero) pattern ids. */
    size_t totalAssigned() const;
};

/**
 * Decompose one partition of the activation matrix. Rows are swept in
 * parallel over fixed-size chunks; per-chunk Level 2 buffers are
 * concatenated in chunk order, so the result is bit-identical at any
 * thread count.
 */
TileDecomposition decomposeTile(const BinaryMatrix& acts, size_t partition,
                                const PatternAssigner& assigner,
                                const ExecutionConfig& exec = {});

/** Decompose a whole layer against its calibrated pattern table. */
LayerDecomposition decomposeLayer(const BinaryMatrix& acts,
                                  const PatternTable& table,
                                  const ExecutionConfig& exec = {});

/**
 * Rebuild the activation matrix from L1 + L2. The result must equal the
 * original activation bit-for-bit; tests enforce this invariant.
 */
BinaryMatrix reconstructActivations(const LayerDecomposition& dec,
                                    const PatternTable& table);

} // namespace phi

#endif // PHI_CORE_DECOMPOSE_HH
