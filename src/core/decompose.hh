/**
 * @file
 * Phi hierarchical sparsity decomposition (Sec. 3.1 of the paper).
 *
 * For every k-bit row-tile of the activation matrix, the assigner picks
 * the pattern minimising the Hamming distance. If the best pattern is no
 * better than the row's own popcount, no pattern is assigned and Level 2
 * holds the raw +1 bits; otherwise Level 1 records the pattern id and
 * Level 2 holds the bidirectional {+1, -1} correction so that
 * L1 + L2 == activation exactly.
 */

#ifndef PHI_CORE_DECOMPOSE_HH
#define PHI_CORE_DECOMPOSE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/parallel.hh"
#include "core/pattern.hh"
#include "numeric/binary_matrix.hh"

namespace phi
{

/** One Level 2 correction element within a partition (col in [0, k)). */
struct L2Entry
{
    uint16_t col;
    int8_t sign; // +1 or -1
};

/** Result of assigning one row-tile to a pattern. */
struct RowAssignment
{
    uint16_t patternId = 0; // 0 = no pattern
    uint64_t posMask = 0;   // +1 correction positions
    uint64_t negMask = 0;   // -1 correction positions

    int nnzPos() const { return popcount64(posMask); }
    int nnzNeg() const { return popcount64(negMask); }
    int nnz() const { return nnzPos() + nnzNeg(); }
};

/**
 * Assigns row-tiles to patterns with memoisation.
 *
 * SNN activations are heavily clustered, so distinct k-bit values repeat
 * massively; a per-value cache turns the O(q) scan into a hash lookup
 * for all repeats.
 */
class PatternAssigner
{
  public:
    explicit PatternAssigner(const PatternSet& ps);

    /** Best assignment for a k-bit row value (memoised). */
    const RowAssignment& assign(uint64_t row) const;

    /**
     * As assign(), but bypassing the shared memo cache. The parallel
     * decomposition sweep uses this with one cache per work chunk —
     * the shared map is not thread-safe, and per-chunk memoisation
     * still captures the massive value repetition of SNN activations.
     */
    RowAssignment assignUncached(uint64_t row) const { return compute(row); }

    const PatternSet& patternSet() const { return set; }

  private:
    RowAssignment compute(uint64_t row) const;

    PatternSet set;
    mutable std::unordered_map<uint64_t, RowAssignment> cache;
};

/** Decomposition of one (M x k) activation partition. */
struct TileDecomposition
{
    size_t partition = 0;   // index along K
    int k = 16;

    /** Per-row pattern id (0 = none). */
    std::vector<uint16_t> patternIds;

    /** CSR layout of Level 2 entries: row r owns
     *  l2Entries[l2Offsets[r] .. l2Offsets[r+1]). */
    std::vector<uint32_t> l2Offsets;
    std::vector<L2Entry> l2Entries;

    size_t numRows() const { return patternIds.size(); }
    size_t l2Nnz() const { return l2Entries.size(); }

    /** Level 2 entries of row r as an index range. */
    std::pair<uint32_t, uint32_t>
    rowRange(size_t r) const
    {
        return {l2Offsets[r], l2Offsets[r + 1]};
    }
};

/** Full-layer decomposition: one tile per K partition. */
struct LayerDecomposition
{
    size_t m = 0;      // activation rows
    size_t kTotal = 0; // activation columns
    int k = 16;        // partition width

    std::vector<TileDecomposition> tiles;

    /**
     * Row-major serving index, derived from tiles by buildRowIndex():
     * rowPatternIds[r * tiles.size() + t] mirrors
     * tiles[t].patternIds[r], and rowL2Counts[r * tiles.size() + t]
     * is the row's Level 2 entry count in tile t (counts fit uint8_t
     * because a partition holds at most k <= 64 columns).
     *
     * The tile-major layout is what decomposition and serialization
     * produce, but the phiGemm hot loop walks one output row across
     * every tile — with tile-major storage that is tiles-many scattered
     * loads per row; with this index it is one contiguous line. Not
     * serialized: loaders rebuild it.
     */
    std::vector<uint16_t> rowPatternIds;
    std::vector<uint8_t> rowL2Counts;

    /**
     * Per-tile maxima, cached by buildRowIndex(): the largest pattern
     * id and Level 2 column each tile holds. The serving loops check
     * these against the PWP storage and weight matrix once per call
     * to prove every gather in-bounds; caching them here keeps that
     * proof O(tiles) instead of a full O(m + nnz) rescan per batch.
     */
    std::vector<uint16_t> tileMaxPatternId;
    std::vector<uint16_t> tileMaxL2Col;

    /**
     * Pattern-locality serving permutation, derived by
     * buildServeOrder(): serveOrder[i] is the original index of the
     * i-th row to visit. Rows are stable-sorted by their L1 pattern-id
     * signature across tiles, so consecutive visits reuse the same PWP
     * rows while they are still cache-resident; identical rows stay in
     * original relative order, keeping the order deterministic. The
     * serving loop writes each result through the permutation to the
     * row's original output slot, so callers never observe the
     * reordering. Empty (natural order) for hand-assembled
     * decompositions that never called buildServeOrder(). Not
     * serialized: loaders and decomposeLayer rebuild it.
     */
    std::vector<uint32_t> serveOrder;

    size_t numPartitions() const { return tiles.size(); }

    /** True when the row-major index matches the tile data shape. */
    bool
    hasRowIndex() const
    {
        return !tiles.empty() &&
               rowPatternIds.size() == m * tiles.size() &&
               rowL2Counts.size() == m * tiles.size();
    }

    /** True when the per-tile maxima are cached for every tile. */
    bool
    hasTileMaxima() const
    {
        return !tiles.empty() &&
               tileMaxPatternId.size() == tiles.size() &&
               tileMaxL2Col.size() == tiles.size();
    }

    /** (Re)build the row-major serving index from the tiles. */
    void buildRowIndex();

    /** True when serveOrder is populated for every row. */
    bool hasServeOrder() const { return serveOrder.size() == m; }

    /**
     * (Re)build the pattern-locality serving permutation from the
     * row-major index (requires hasRowIndex()).
     */
    void buildServeOrder();

    /** Total Level 2 nonzeros across partitions. */
    size_t totalL2Nnz() const;

    /** Total assigned (nonzero) pattern ids. */
    size_t totalAssigned() const;
};

/**
 * Fill row-major pattern-id/L2-count arrays from a decomposition's
 * tile-major data — the one transpose shared by
 * LayerDecomposition::buildRowIndex and phiGemm's fallback for
 * hand-assembled decompositions. Fatal if any row-tile holds more
 * than k Level 2 entries (legit rows have at most k distinct
 * correction columns; more would also overflow the uint8_t counts).
 */
void buildRowIndexInto(const LayerDecomposition& dec,
                       std::vector<uint16_t>& rowIds,
                       std::vector<uint8_t>& rowCounts);

/**
 * Decompose one partition of the activation matrix. Rows are swept in
 * parallel over fixed-size chunks; per-chunk Level 2 buffers are
 * concatenated in chunk order, so the result is bit-identical at any
 * thread count.
 */
TileDecomposition decomposeTile(const BinaryMatrix& acts, size_t partition,
                                const PatternAssigner& assigner,
                                const ExecutionConfig& exec = {});

/** Decompose a whole layer against its calibrated pattern table. */
LayerDecomposition decomposeLayer(const BinaryMatrix& acts,
                                  const PatternTable& table,
                                  const ExecutionConfig& exec = {});

/**
 * Rebuild the activation matrix from L1 + L2. The result must equal the
 * original activation bit-for-bit; tests enforce this invariant.
 */
BinaryMatrix reconstructActivations(const LayerDecomposition& dec,
                                    const PatternTable& table);

} // namespace phi

#endif // PHI_CORE_DECOMPOSE_HH
