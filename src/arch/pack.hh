/**
 * @file
 * The compact Level 2 data structure (Sec. 4.2.2).
 *
 * A pack holds up to 8 units; each unit is either a nonzero element
 * (label = Weight: accumulate a weight row, possibly negated) or a
 * partial sum carried over from a previous partition (label = Psum).
 * Metadata records the per-row segmentation that configures the
 * reconfigurable adder tree.
 */

#ifndef PHI_ARCH_PACK_HH
#define PHI_ARCH_PACK_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace phi
{

/** One unit of a pack. */
struct PackUnit
{
    enum class Label : uint8_t { Weight, Psum };

    Label label = Label::Weight;
    /** Weight: column index within the partition (0..k).
     *  Psum: index of the partial sum among the pack's psum slots. */
    uint16_t index = 0;
    /** +1 or -1 for weights; psums are always accumulated (+1). */
    int8_t value = 1;
};

/** A row segment inside a pack (adder tree configuration metadata). */
struct PackRowSeg
{
    uint32_t rowId = 0;    // global activation row
    uint32_t partition = 0; // K partition the weight indices refer to
    uint8_t unitCount = 0; // units owned by this row
    bool hasPsum = false;  // one of the units is a carried partial sum
};

/** A fixed-capacity pack of Level 2 work. A pack may mix rows from
 *  different partitions; each segment records its own partition. */
struct Pack
{
    static constexpr int capacity = 8;

    std::vector<PackUnit> units;
    std::vector<PackRowSeg> rows;

    int used() const { return static_cast<int>(units.size()); }
    int freeSpace() const { return capacity - used(); }
    bool empty() const { return units.empty(); }

    /** Adder tree segment configuration: unit count per row. */
    std::vector<int>
    segments() const
    {
        std::vector<int> segs;
        segs.reserve(rows.size());
        for (const auto& r : rows)
            segs.push_back(r.unitCount);
        return segs;
    }
};

/** A compressed Level 2 row produced by the Compressor. */
struct CompressedRow
{
    uint32_t rowId = 0;
    uint32_t partition = 0;
    /** Column/sign pairs, ascending column. */
    std::vector<std::pair<uint16_t, int8_t>> entries;
    /** True when the row already holds a partial sum from an earlier
     *  partition of the current K traversal. */
    bool needsPsum = false;

    int unitsNeeded() const
    {
        return static_cast<int>(entries.size()) + (needsPsum ? 1 : 0);
    }
};

} // namespace phi

#endif // PHI_ARCH_PACK_HH
