#include "arch/adder_tree.hh"

#include "common/logging.hh"

namespace phi
{

ReconfigurableAdderTree::ReconfigurableAdderTree(size_t simd_width)
    : simdWidth_(simd_width)
{
    phi_assert(simd_width >= 1, "SIMD width must be positive");
}

std::vector<std::vector<int32_t>>
ReconfigurableAdderTree::reduce(const Matrix<int32_t>& inputs,
                                const std::vector<int>& segments) const
{
    phi_assert(inputs.rows() == numChannels,
               "adder tree expects ", numChannels, " input channels");
    phi_assert(inputs.cols() == simdWidth_,
               "input width ", inputs.cols(), " != SIMD width ",
               simdWidth_);

    int total = 0;
    for (int len : segments) {
        phi_assert(len >= 1, "segment length must be >= 1");
        total += len;
    }
    phi_assert(total <= static_cast<int>(numChannels),
               "segments exceed channel count");

    // Model the segmented tree as a boundary-aware pairwise reduction:
    // at every level adjacent values merge unless a segment boundary
    // separates them, in which case both propagate (via the bypass
    // links of Fig. 6). The result per segment equals the sum of its
    // channels — the invariant the tests check exhaustively.
    struct Node
    {
        std::vector<int32_t> value;
        int segment; // owning segment id
    };

    std::vector<Node> level;
    int seg = 0;
    int used = 0;
    for (int len : segments) {
        for (int i = 0; i < len; ++i, ++used) {
            Node n;
            n.value.assign(inputs.rowPtr(used),
                           inputs.rowPtr(used) + simdWidth_);
            n.segment = seg;
            level.push_back(std::move(n));
        }
        ++seg;
    }

    while (level.size() > static_cast<size_t>(seg) && level.size() > 1) {
        std::vector<Node> next;
        size_t i = 0;
        while (i < level.size()) {
            if (i + 1 < level.size() &&
                level[i].segment == level[i + 1].segment) {
                Node merged;
                merged.segment = level[i].segment;
                merged.value.resize(simdWidth_);
                for (size_t c = 0; c < simdWidth_; ++c)
                    merged.value[c] =
                        level[i].value[c] + level[i + 1].value[c];
                next.push_back(std::move(merged));
                i += 2;
            } else {
                next.push_back(std::move(level[i]));
                i += 1;
            }
        }
        level = std::move(next);
    }

    std::vector<std::vector<int32_t>> out(
        static_cast<size_t>(seg));
    for (auto& node : level) {
        phi_assert(out[static_cast<size_t>(node.segment)].empty(),
                   "segment produced twice");
        out[static_cast<size_t>(node.segment)] = std::move(node.value);
    }
    return out;
}

size_t
ReconfigurableAdderTree::adderOps(const std::vector<int>& segments)
{
    size_t active = 0;
    for (int len : segments)
        active += static_cast<size_t>(len);
    return active - segments.size();
}

} // namespace phi
