/**
 * @file
 * Spiking Neuron Array: the output stage converting aggregated L1+L2
 * partial sums into next-layer spikes (Sec. 4.1). Functionally a bank
 * of LIF units; architecturally 32 parallel neurons processing one
 * output tile row-slice per cycle.
 */

#ifndef PHI_ARCH_LIF_ARRAY_HH
#define PHI_ARCH_LIF_ARRAY_HH

#include <cstdint>

#include "numeric/binary_matrix.hh"
#include "numeric/matrix.hh"
#include "snn/lif.hh"

namespace phi
{

/** Cycle + functional model of the spiking neuron array. */
class LifNeuronArray
{
  public:
    explicit LifNeuronArray(int lanes = 32) : lanes(lanes) {}

    int numLanes() const { return lanes; }

    /** Cycles to process an output tile of the given element count. */
    uint64_t
    cycles(uint64_t elements) const
    {
        return (elements + static_cast<uint64_t>(lanes) - 1) /
               static_cast<uint64_t>(lanes);
    }

    /**
     * Functional conversion: integer partial sums (scaled by `scale`)
     * through LIF dynamics, rows = timesteps.
     */
    BinaryMatrix
    fire(const Matrix<int32_t>& psums, float scale,
         LifParams params = {}) const
    {
        Matrix<float> currents(psums.rows(), psums.cols());
        for (size_t r = 0; r < psums.rows(); ++r)
            for (size_t c = 0; c < psums.cols(); ++c)
                currents(r, c) =
                    static_cast<float>(psums(r, c)) * scale;
        return runLif(currents, params);
    }

  private:
    int lanes;
};

} // namespace phi

#endif // PHI_ARCH_LIF_ARRAY_HH
