#include "arch/prefetcher.hh"

#include "common/logging.hh"

namespace phi
{

size_t
PwpPrefetcher::analyzeTile(const std::vector<uint16_t>& ids, size_t q)
{
    if (seenStamp.size() < q + 1)
        seenStamp.resize(q + 1, 0);
    ++stamp;

    size_t distinct = 0;
    for (uint16_t id : ids) {
        if (id == 0)
            continue;
        phi_assert(id <= q, "pattern id ", id, " exceeds q=", q);
        if (seenStamp[id] != stamp) {
            seenStamp[id] = stamp;
            ++distinct;
        }
    }
    fetched += distinct;
    full += q;
    return distinct;
}

} // namespace phi
