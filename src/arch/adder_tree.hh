/**
 * @file
 * Reconfigurable SIMD adder tree (Fig. 6 of the paper).
 *
 * Eight input channels, each carrying an n-wide vector, are reduced by a
 * binary tree whose internal links can be segmented so that disjoint
 * groups of adjacent channels produce independent sums in one pass. The
 * paper notes this adds only four extra connections over a conventional
 * tree; we model the functional network faithfully and verify every
 * possible segmentation against a naive segmented sum.
 */

#ifndef PHI_ARCH_ADDER_TREE_HH
#define PHI_ARCH_ADDER_TREE_HH

#include <cstdint>
#include <vector>

#include "numeric/matrix.hh"

namespace phi
{

/**
 * A segmented reduction over 8 vector channels.
 *
 * The configuration is a list of segment lengths (>= 1) summing to at
 * most 8; channels beyond the configured segments are ignored (they
 * carry no valid data that cycle).
 */
class ReconfigurableAdderTree
{
  public:
    static constexpr size_t numChannels = 8;

    /** @param simd_width vector lanes per channel (paper: 32). */
    explicit ReconfigurableAdderTree(size_t simd_width = 32);

    size_t simdWidth() const { return simdWidth_; }

    /**
     * Reduce the configured segments.
     *
     * @param inputs    numChannels rows x simdWidth vector inputs; only
     *                  the first sum(segments) rows are consumed.
     * @param segments  lengths of each contiguous segment.
     * @return one simdWidth-wide sum per segment.
     */
    std::vector<std::vector<int32_t>>
    reduce(const Matrix<int32_t>& inputs,
           const std::vector<int>& segments) const;

    /** Adder operations performed by the last reduce() call's shape:
     *  (#active channels - #segments) vector adds. */
    static size_t adderOps(const std::vector<int>& segments);

  private:
    size_t simdWidth_;
};

} // namespace phi

#endif // PHI_ARCH_ADDER_TREE_HH
