#include "arch/pattern_matcher.hh"

namespace phi
{

PatternMatcher::PatternMatcher(const PatternSet& ps, int lanes)
    : set(ps), lanes(lanes), pipelineDepth(ps.size())
{
    phi_assert(lanes >= 1, "matcher needs at least one lane");
}

RowAssignment
PatternMatcher::match(uint64_t row) const
{
    // Step 2: every matcher unit computes difference + popcount.
    // Step 3: global minimum over units and the no-pattern baseline.
    RowAssignment best;
    best.patternId = 0;
    best.posMask = row;
    best.negMask = 0;
    int best_count = popcount64(row);

    if (row == 0)
        return best;

    const auto& pats = set.patterns();
    for (size_t u = 0; u < pats.size(); ++u) {
        const uint64_t diff = row ^ pats[u];
        const int count = popcount64(diff);
        if (count < best_count) {
            best_count = count;
            best.patternId = static_cast<uint16_t>(u + 1);
            best.posMask = row & ~pats[u];
            best.negMask = pats[u] & ~row;
        }
    }
    return best;
}

std::vector<RowAssignment>
PatternMatcher::matchAll(const std::vector<uint64_t>& rows,
                         const ExecutionConfig& exec) const
{
    constexpr size_t kMatchGrain = 512;
    std::vector<RowAssignment> out(rows.size());
    parallelFor(exec, 0, rows.size(), kMatchGrain,
                [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i)
            out[i] = match(rows[i]);
    });
    return out;
}

} // namespace phi
