#include "arch/pattern_matcher.hh"

#include "numeric/simd.hh"

namespace phi
{

PatternMatcher::PatternMatcher(const PatternSet& ps, int laneCount)
    : set(ps), lanes(laneCount), pipelineDepth(ps.size())
{
    phi_assert(lanes >= 1, "matcher needs at least one lane");
}

RowAssignment
PatternMatcher::match(uint64_t row) const
{
    // Step 2: every matcher unit computes difference + popcount.
    // Step 3: global minimum over units and the no-pattern baseline.
    RowAssignment best;
    best.patternId = 0;
    best.posMask = row;
    best.negMask = 0;
    int best_count = popcount64(row);

    if (row == 0)
        return best;

    const auto& pats = set.patterns();
    for (size_t u = 0; u < pats.size(); ++u) {
        const uint64_t diff = row ^ pats[u];
        const int count = popcount64(diff);
        if (count < best_count) {
            best_count = count;
            best.patternId = static_cast<uint16_t>(u + 1);
            best.posMask = row & ~pats[u];
            best.negMask = pats[u] & ~row;
        }
    }
    return best;
}

std::vector<RowAssignment>
PatternMatcher::matchAll(const std::vector<uint64_t>& rows,
                         const ExecutionConfig& exec) const
{
    constexpr size_t kMatchGrain = 512;
    std::vector<RowAssignment> out(rows.size());
    const auto& pats = set.patterns();
    const uint64_t* patWords = pats.data();
    const size_t q = pats.size();
    const simd::Kernels& kr = simd::kernels(exec.isa);

    parallelFor(exec, 0, rows.size(), kMatchGrain,
                [&](size_t i0, size_t i1) {
        // Word-parallel XOR+popcount over the whole pattern partition,
        // then a scalar first-minimum argmin over the byte distances —
        // identical outcome to match() per row (strict '<' keeps the
        // earliest pattern on ties).
        std::vector<uint8_t> dist(q);
        for (size_t i = i0; i < i1; ++i) {
            const uint64_t row = rows[i];
            RowAssignment& best = out[i];
            best.patternId = 0;
            best.posMask = row;
            best.negMask = 0;
            if (row == 0 || q == 0)
                continue;

            int best_count = popcount64(row);
            kr.hammingScan(row, patWords, q, dist.data());
            size_t best_u = q;
            for (size_t u = 0; u < q; ++u) {
                if (dist[u] < best_count) {
                    best_count = dist[u];
                    best_u = u;
                }
            }
            if (best_u != q) {
                best.patternId = static_cast<uint16_t>(best_u + 1);
                best.posMask = row & ~patWords[best_u];
                best.negMask = patWords[best_u] & ~row;
            }
        }
    });
    return out;
}

} // namespace phi
