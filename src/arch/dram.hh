/**
 * @file
 * Off-chip DRAM model: DDR4-2133, 8Gb x8 devices, 4 channels, 64 GB/s
 * aggregate (Table 1). Traffic is tracked per stream so the memory
 * benches (Fig. 12) can report weight/PWP/activation traffic separately.
 */

#ifndef PHI_ARCH_DRAM_HH
#define PHI_ARCH_DRAM_HH

#include <cstdint>

namespace phi
{

/** DRAM configuration. */
struct DramConfig
{
    double bandwidthGBs = 64.0; // aggregate across channels
    int channels = 4;
    double energyPerBytePj = 110.0; // ~13.75 pJ/bit, DDR4-class
    double staticPowerMw = 180.0;   // background across 4 channels
};

/** Traffic categories tracked by the simulators. */
struct DramTraffic
{
    double weightBytes = 0;
    double pwpBytes = 0;
    /** Single-pass activation stream (the Fig. 12a accounting). */
    double activationBytes = 0;
    /** Extra activation re-streaming when the on-chip buffers cannot
     *  hold an m-tile's working set across output chunks (the Fig. 7d
     *  buffer/DRAM trade-off; zero at the paper's 240 KB config). */
    double refetchBytes = 0;
    double outputBytes = 0;

    double
    totalBytes() const
    {
        return weightBytes + pwpBytes + activationBytes +
               refetchBytes + outputBytes;
    }

    DramTraffic&
    operator+=(const DramTraffic& o)
    {
        weightBytes += o.weightBytes;
        pwpBytes += o.pwpBytes;
        activationBytes += o.activationBytes;
        refetchBytes += o.refetchBytes;
        outputBytes += o.outputBytes;
        return *this;
    }
};

/** Analytic bandwidth/energy model. */
class DramModel
{
  public:
    explicit DramModel(DramConfig dramCfg = {}) : cfg(dramCfg) {}

    const DramConfig& config() const { return cfg; }

    /** Bytes transferable per core cycle at the given core frequency. */
    double
    bytesPerCycle(double freq_hz) const
    {
        return cfg.bandwidthGBs * 1e9 / freq_hz;
    }

    /** Core cycles to stream the given bytes at full bandwidth. */
    double
    transferCycles(double bytes, double freq_hz) const
    {
        return bytes / bytesPerCycle(freq_hz);
    }

    /** Dynamic transfer energy in pJ. */
    double
    dynamicEnergyPj(double bytes) const
    {
        return bytes * cfg.energyPerBytePj;
    }

    /** Background energy over a runtime, in pJ. */
    double
    staticEnergyPj(double seconds) const
    {
        return cfg.staticPowerMw * seconds * 1e9;
    }

  private:
    DramConfig cfg;
};

} // namespace phi

#endif // PHI_ARCH_DRAM_HH
