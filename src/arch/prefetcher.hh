/**
 * @file
 * PWP prefetcher (Sec. 4.4 "Memory Traffic Optimization").
 *
 * Only ~27.73% of the 128 pre-computed PWPs per partition are used
 * within an L1 pattern-index tile on average; because the K-first
 * schedule produces next-layer pattern indices ahead of time, the
 * prefetcher can read the index tile and fetch exactly the PWPs it
 * names, cutting off-chip PWP traffic by the unused fraction.
 */

#ifndef PHI_ARCH_PREFETCHER_HH
#define PHI_ARCH_PREFETCHER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace phi
{

/** Per-tile prefetch decision + traffic accounting. */
class PwpPrefetcher
{
  public:
    /**
     * Inspect the pattern ids of one (m-tile, partition) slice.
     *
     * @param ids  pattern ids of the tile's rows (0 = none).
     * @param q    patterns stored for this partition.
     * @return number of distinct PWPs that must be fetched.
     */
    size_t analyzeTile(const std::vector<uint16_t>& ids, size_t q);

    /** Distinct patterns fetched over all analysed tiles. */
    uint64_t fetchedPatterns() const { return fetched; }
    /** Pattern slots that full fetching would have transferred. */
    uint64_t fullPatterns() const { return full; }

    /** Fraction of stored PWPs actually used (paper: 27.73%). */
    double
    usageFraction() const
    {
        return full ? static_cast<double>(fetched) /
                          static_cast<double>(full)
                    : 0.0;
    }

  private:
    uint64_t fetched = 0;
    uint64_t full = 0;
    std::vector<uint32_t> seenStamp; // scratch, reused across tiles
    uint32_t stamp = 0;
};

} // namespace phi

#endif // PHI_ARCH_PREFETCHER_HH
