#include "arch/buffer.hh"

#include <cmath>

#include "common/logging.hh"

namespace phi
{

namespace
{
// 28 nm SRAM coefficients. Calibrated so that the paper's 240 KB buffer
// complement yields ~0.452 mm^2 and a total buffer power consistent
// with Table 3 at the measured access rates.
constexpr double energyBasePj = 0.15;  // per byte, small array
constexpr double energySlopePj = 0.028; // * sqrt(KiB), per byte
constexpr double areaPerKib = 0.452 / 240.0; // mm^2 per KiB (linear fit)
constexpr double leakPerKibMw = 0.08;  // mW per KiB
} // namespace

double
SramModel::energyPerBytePj(double kib)
{
    return energyBasePj + energySlopePj * std::sqrt(kib);
}

double
SramModel::areaMm2(double kib)
{
    return areaPerKib * kib;
}

double
SramModel::leakageMw(double kib)
{
    return leakPerKibMw * kib;
}

SramBuffer::SramBuffer(std::string name, size_t bytes, int banks)
    : bufName(std::move(name)), capacity(bytes), numBanks(banks)
{
    phi_assert(bytes > 0, "buffer must have nonzero capacity");
    phi_assert(banks >= 1, "buffer must have at least one bank");
}

double
SramBuffer::dynamicEnergyPj() const
{
    const double kib = static_cast<double>(capacity) / 1024.0;
    return static_cast<double>(readBytes + writeBytes) *
           SramModel::energyPerBytePj(kib);
}

double
SramBuffer::leakageEnergyPj(double seconds) const
{
    const double kib = static_cast<double>(capacity) / 1024.0;
    // mW * s = mJ; 1 mJ = 1e9 pJ.
    return SramModel::leakageMw(kib) * seconds * 1e9;
}

double
SramBuffer::areaMm2() const
{
    return SramModel::areaMm2(static_cast<double>(capacity) / 1024.0);
}

void
SramBuffer::resetCounters()
{
    readBytes = 0;
    writeBytes = 0;
}

} // namespace phi
