#include "arch/packer.hh"

#include <algorithm>

namespace phi
{

Packer::Packer(PackerConfig packCfg, Sink sinkFn)
    : cfg(packCfg), sink(std::move(sinkFn)), windows(cfg.windows)
{
    phi_assert(cfg.windows >= 1, "packer needs at least one window");
    phi_assert(cfg.psumBanks >= 1, "packer needs at least one bank");
}

int
Packer::psumBank(uint32_t row_id) const
{
    return static_cast<int>(row_id % static_cast<uint32_t>(cfg.psumBanks));
}

bool
Packer::fits(const Pack& pack, const CompressedRow& row) const
{
    return pack.freeSpace() >= row.unitsNeeded();
}

bool
Packer::conflicts(const Pack& pack, const CompressedRow& row) const
{
    // Each row segment in a pack reads/writes its partial sum in bank
    // (rowId % banks); two segments in the same bank cannot be served
    // in the same cycle.
    const int bank = psumBank(row.rowId);
    for (const auto& seg : pack.rows)
        if (psumBank(seg.rowId) == bank)
            return true;
    return false;
}

void
Packer::admit(Pack& pack, const CompressedRow& row)
{
    PackRowSeg seg;
    seg.rowId = row.rowId;
    seg.partition = row.partition;
    seg.hasPsum = row.needsPsum;
    if (row.needsPsum) {
        PackUnit psum;
        psum.label = PackUnit::Label::Psum;
        // Psum slot index = how many psum units precede it in the pack.
        uint16_t slot = 0;
        for (const auto& u : pack.units)
            if (u.label == PackUnit::Label::Psum)
                ++slot;
        psum.index = slot;
        psum.value = 1;
        pack.units.push_back(psum);
        ++seg.unitCount;
    }
    for (const auto& [col, sign] : row.entries) {
        PackUnit u;
        u.label = PackUnit::Label::Weight;
        u.index = col;
        u.value = sign;
        pack.units.push_back(u);
        ++seg.unitCount;
    }
    pack.rows.push_back(seg);
    packerStats.unitsPacked += seg.unitCount;
}

void
Packer::emit(Pack& pack)
{
    if (pack.empty())
        return;
    ++packerStats.packsEmitted;
    sink(std::move(pack));
    pack = Pack{};
}

void
Packer::push(const CompressedRow& row)
{
    ++packerStats.rowsPacked;

    // Oversized rows cannot fit even an empty pack: split into chained
    // chunks, each subsequent chunk accumulating onto the row's psum.
    if (row.unitsNeeded() > Pack::capacity) {
        ++packerStats.splitRows;
        CompressedRow chunk;
        chunk.rowId = row.rowId;
        chunk.partition = row.partition;
        chunk.needsPsum = row.needsPsum;
        for (const auto& e : row.entries) {
            if (chunk.unitsNeeded() == Pack::capacity) {
                push(chunk);
                chunk.entries.clear();
                chunk.needsPsum = true; // chained accumulation
            }
            chunk.entries.push_back(e);
        }
        if (!chunk.entries.empty())
            push(chunk);
        // The recursive pushes counted themselves; undo overcount.
        packerStats.rowsPacked -= 1;
        return;
    }

    // Stage 1+2 (Fig. 4c): find a window with space and no bank
    // conflict.
    int candidate = -1;
    for (int w = 0; w < cfg.windows; ++w) {
        if (!fits(windows[static_cast<size_t>(w)], row))
            continue;
        if (conflicts(windows[static_cast<size_t>(w)], row)) {
            ++packerStats.conflictRejects;
            continue;
        }
        candidate = w;
        break;
    }

    if (candidate < 0) {
        // Evict the fullest window and reuse it.
        int fullest = 0;
        for (int w = 1; w < cfg.windows; ++w)
            if (windows[static_cast<size_t>(w)].used() >
                windows[static_cast<size_t>(fullest)].used())
                fullest = w;
        emit(windows[static_cast<size_t>(fullest)]);
        ++packerStats.evictions;
        candidate = fullest;
    }

    admit(windows[static_cast<size_t>(candidate)], row);
    if (windows[static_cast<size_t>(candidate)].freeSpace() == 0)
        emit(windows[static_cast<size_t>(candidate)]);
}

void
Packer::flush()
{
    for (auto& w : windows)
        emit(w);
}

} // namespace phi
