/**
 * @file
 * The Preprocessor's Packer (Fig. 4c).
 *
 * Multiple windows each hold an incomplete pack guarded by a conflict
 * detector. An incoming compressed row is admitted to a window only if
 * (1) the window has space for all its units and (2) its partial-sum
 * bank does not collide with a partial sum already in the pack. When no
 * window qualifies, the fullest pack is evicted to the pack buffer and
 * its window reused. Rows larger than a whole pack are split with
 * partial-sum chaining (a conservative extension; the paper's sparsity
 * makes this case vanishingly rare).
 */

#ifndef PHI_ARCH_PACKER_HH
#define PHI_ARCH_PACKER_HH

#include <functional>

#include "arch/pack.hh"

namespace phi
{

/** Packer configuration. */
struct PackerConfig
{
    int windows = 4;   // concurrent incomplete packs
    int psumBanks = 8; // partial-sum buffer banks
};

/** Packing statistics for utilisation / ablation benches. */
struct PackerStats
{
    uint64_t rowsPacked = 0;
    uint64_t unitsPacked = 0;
    uint64_t packsEmitted = 0;
    uint64_t evictions = 0;      // forced emissions on full/conflict
    uint64_t conflictRejects = 0; // window rejections due to banks
    uint64_t splitRows = 0;      // rows split across packs

    double
    avgOccupancy() const
    {
        return packsEmitted
                   ? static_cast<double>(unitsPacked) /
                         (static_cast<double>(packsEmitted) *
                          Pack::capacity)
                   : 0.0;
    }
};

/**
 * Online row packer. Emitted packs go to the sink callback in emission
 * order (the order the L2 processor will consume them).
 */
class Packer
{
  public:
    using Sink = std::function<void(Pack&&)>;

    Packer(PackerConfig cfg, Sink sink);

    /** Offer one compressed row; always succeeds (may evict). */
    void push(const CompressedRow& row);

    /** Emit every non-empty window (end of tile / layer). */
    void flush();

    const PackerStats& stats() const { return packerStats; }

  private:
    int psumBank(uint32_t row_id) const;
    bool fits(const Pack& pack, const CompressedRow& row) const;
    bool conflicts(const Pack& pack, const CompressedRow& row) const;
    void admit(Pack& pack, const CompressedRow& row);
    void emit(Pack& pack);

    PackerConfig cfg;
    Sink sink;
    std::vector<Pack> windows;
    PackerStats packerStats;
};

} // namespace phi

#endif // PHI_ARCH_PACKER_HH
