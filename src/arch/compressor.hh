/**
 * @file
 * The Preprocessor's Compressor (step 4 in Fig. 4): filters all-zero
 * Level 2 rows and converts the surviving sparse maps into compressed
 * (column, sign) form for the Packer.
 */

#ifndef PHI_ARCH_COMPRESSOR_HH
#define PHI_ARCH_COMPRESSOR_HH

#include <optional>

#include "arch/pack.hh"
#include "core/decompose.hh"

namespace phi
{

/** Stateless compressor with traffic accounting. */
class Compressor
{
  public:
    /**
     * Compress the Level 2 masks of one row-tile.
     *
     * @return nullopt for all-zero rows (filtered out), otherwise the
     *         compressed row.
     */
    std::optional<CompressedRow>
    compress(uint32_t row_id, uint32_t partition,
             const RowAssignment& assign, bool needs_psum);

    /** Rows seen / rows surviving, for utilisation stats. */
    uint64_t rowsSeen() const { return seen; }
    uint64_t rowsEmitted() const { return emitted; }
    uint64_t entriesEmitted() const { return entries; }

  private:
    uint64_t seen = 0;
    uint64_t emitted = 0;
    uint64_t entries = 0;
};

} // namespace phi

#endif // PHI_ARCH_COMPRESSOR_HH
