/**
 * @file
 * Crossbar models: the L1 processor's 16-to-8 crossbar that routes PWP
 * reads from 16 partition banks into 8 adder-tree channels (Sec. 4.4),
 * and the output crossbar that steers adder-tree results to partial-sum
 * banks (Sec. 4.3 step 7).
 */

#ifndef PHI_ARCH_CROSSBAR_HH
#define PHI_ARCH_CROSSBAR_HH

#include <cstdint>
#include <vector>

namespace phi
{

/**
 * An input-buffered N-to-M grant scheduler. Requests are tags (bank
 * ids); each cycle at most M requests are granted, at most one per
 * bank. Used to model the 16-to-8 PWP crossbar: the L1 processor
 * examines a 16-wide window of pattern indices and forwards up to 8
 * PWPs per cycle.
 */
class Crossbar
{
  public:
    Crossbar(int inputs, int outputs);

    int inputs() const { return numInputs; }
    int outputs() const { return numOutputs; }

    /**
     * Schedule a burst of requests.
     *
     * @param bank_of  the source bank of each request.
     * @return cycle-by-cycle grant lists (request indices); every
     *         request is granted exactly once, no cycle grants two
     *         requests from one bank or more than `outputs` total.
     */
    std::vector<std::vector<int>>
    schedule(const std::vector<int>& bank_of) const;

    /** Cycles needed for the burst (= schedule(...).size()). */
    uint64_t cyclesFor(const std::vector<int>& bank_of) const;

  private:
    int numInputs;
    int numOutputs;
};

} // namespace phi

#endif // PHI_ARCH_CROSSBAR_HH
