/**
 * @file
 * On-chip SRAM buffer model with CACTI-style energy/area scaling.
 *
 * The paper evaluates buffers with CACTI 7.0 in 28 nm; we reproduce the
 * standard analytic shape — per-access energy and area grow with
 * sqrt(capacity), leakage grows linearly — with coefficients calibrated
 * so the Table 1 buffer complement (240 KB) lands on Table 3's
 * 0.452 mm^2 / 220.8 mW.
 */

#ifndef PHI_ARCH_BUFFER_HH
#define PHI_ARCH_BUFFER_HH

#include <cstdint>
#include <string>

namespace phi
{

/** Analytic SRAM model. */
struct SramModel
{
    /** Dynamic energy per byte accessed, in pJ. */
    static double energyPerBytePj(double kib);
    /** Area in mm^2. */
    static double areaMm2(double kib);
    /** Leakage power in mW. */
    static double leakageMw(double kib);
};

/** A named buffer instance with access accounting. */
class SramBuffer
{
  public:
    SramBuffer(std::string name, size_t bytes, int banks = 1);

    const std::string& name() const { return bufName; }
    size_t sizeBytes() const { return capacity; }
    int banks() const { return numBanks; }

    /** Record read/write traffic (bytes). */
    void read(uint64_t bytes) { readBytes += bytes; }
    void write(uint64_t bytes) { writeBytes += bytes; }

    uint64_t totalReadBytes() const { return readBytes; }
    uint64_t totalWriteBytes() const { return writeBytes; }

    /** Dynamic energy of all recorded accesses, in pJ. */
    double dynamicEnergyPj() const;

    /** Leakage over a runtime, in pJ. */
    double leakageEnergyPj(double seconds) const;

    double areaMm2() const;

    void resetCounters();

  private:
    std::string bufName;
    size_t capacity;
    int numBanks;
    uint64_t readBytes = 0;
    uint64_t writeBytes = 0;
};

} // namespace phi

#endif // PHI_ARCH_BUFFER_HH
