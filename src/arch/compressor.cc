#include "arch/compressor.hh"

namespace phi
{

std::optional<CompressedRow>
Compressor::compress(uint32_t row_id, uint32_t partition,
                     const RowAssignment& assign, bool needs_psum)
{
    ++seen;
    uint64_t pos = assign.posMask;
    uint64_t neg = assign.negMask;
    if (pos == 0 && neg == 0)
        return std::nullopt;

    CompressedRow row;
    row.rowId = row_id;
    row.partition = partition;
    row.needsPsum = needs_psum;
    while (pos || neg) {
        int pb = pos ? std::countr_zero(pos) : 65;
        int nb = neg ? std::countr_zero(neg) : 65;
        if (pb < nb) {
            row.entries.emplace_back(static_cast<uint16_t>(pb),
                                     int8_t{1});
            pos &= pos - 1;
        } else {
            row.entries.emplace_back(static_cast<uint16_t>(nb),
                                     int8_t{-1});
            neg &= neg - 1;
        }
    }
    ++emitted;
    entries += row.entries.size();
    return row;
}

} // namespace phi
