#include "arch/crossbar.hh"

#include "common/logging.hh"

namespace phi
{

Crossbar::Crossbar(int inputs, int outputs)
    : numInputs(inputs), numOutputs(outputs)
{
    phi_assert(inputs >= 1 && outputs >= 1,
               "crossbar ports must be positive");
}

std::vector<std::vector<int>>
Crossbar::schedule(const std::vector<int>& bank_of) const
{
    for (int b : bank_of)
        phi_assert(b >= 0 && b < numInputs, "bank ", b,
                   " outside crossbar inputs");

    std::vector<bool> done(bank_of.size(), false);
    size_t remaining = bank_of.size();
    std::vector<std::vector<int>> cycles;

    while (remaining > 0) {
        std::vector<int> grants;
        std::vector<bool> bank_busy(static_cast<size_t>(numInputs),
                                    false);
        for (size_t i = 0;
             i < bank_of.size() &&
             grants.size() < static_cast<size_t>(numOutputs);
             ++i) {
            if (done[i])
                continue;
            const size_t bank = static_cast<size_t>(bank_of[i]);
            if (bank_busy[bank])
                continue;
            bank_busy[bank] = true;
            done[i] = true;
            grants.push_back(static_cast<int>(i));
            --remaining;
        }
        phi_assert(!grants.empty(), "crossbar made no progress");
        cycles.push_back(std::move(grants));
    }
    return cycles;
}

uint64_t
Crossbar::cyclesFor(const std::vector<int>& bank_of) const
{
    if (bank_of.empty())
        return 0;
    return schedule(bank_of).size();
}

} // namespace phi
