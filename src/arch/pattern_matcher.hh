/**
 * @file
 * The Preprocessor's pattern matcher (Fig. 4a).
 *
 * Functionally: broadcast a spike row-tile to all matcher units, XOR
 * against each stored pattern, popcount the difference and the raw row,
 * take the minimum — yielding the Level 1 pattern id and the Level 2
 * sparse row. Architecturally: a 1-D systolic pipeline of q units with a
 * throughput of `lanes` row-tiles per cycle and a fill latency of q.
 */

#ifndef PHI_ARCH_PATTERN_MATCHER_HH
#define PHI_ARCH_PATTERN_MATCHER_HH

#include <cstdint>
#include <vector>

#include "common/parallel.hh"
#include "core/decompose.hh"
#include "core/pattern.hh"

namespace phi
{

/** Functional + timing model of the systolic pattern matcher. */
class PatternMatcher
{
  public:
    /**
     * @param ps     patterns pre-loaded for the current partition.
     * @param lanes  row-tiles matched per cycle (throughput).
     */
    explicit PatternMatcher(const PatternSet& ps, int lanes = 8);

    /**
     * Match one row-tile: returns the id of the pattern with the
     * minimum difference popcount, or 0 when no pattern beats the raw
     * popcount baseline (no-assignment case). Identical in outcome to
     * PatternAssigner; the unit-level steps are modelled explicitly and
     * cross-checked by tests.
     */
    RowAssignment match(uint64_t row) const;

    /**
     * Match a batch of row-tiles with a parallel sweep over fixed-size
     * chunks. Inside a chunk the whole pattern partition is scanned
     * word-parallel (SIMD XOR+popcount via the kernel layer) before a
     * scalar first-minimum argmin, so the output is bit-identical to
     * calling match() per row at any thread count and on any backend.
     */
    std::vector<RowAssignment> matchAll(
        const std::vector<uint64_t>& rows,
        const ExecutionConfig& exec = {}) const;

    /** Cycles to stream `rows` row-tiles through the pipeline. */
    uint64_t
    cycles(uint64_t rows) const
    {
        if (rows == 0)
            return 0;
        // Fill latency of the systolic pipe + streaming throughput.
        return pipelineDepth +
               (rows + static_cast<uint64_t>(lanes) - 1) /
                   static_cast<uint64_t>(lanes);
    }

    /** Pattern comparisons per matched row (energy accounting). */
    size_t comparisonsPerRow() const { return set.size() + 1; }

    int numLanes() const { return lanes; }

  private:
    PatternSet set;
    int lanes;
    uint64_t pipelineDepth;
};

} // namespace phi

#endif // PHI_ARCH_PATTERN_MATCHER_HH
