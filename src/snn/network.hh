/**
 * @file
 * A runnable spiking network with real LIF dynamics.
 *
 * This is the genuine SNN substrate: rate-coded input, im2col-lowered
 * spiking convolutions, OR-based (max) spiking pooling and fully
 * connected layers, all driving LIF populations over multiple
 * timesteps. The per-layer binary activation matrices it emits feed
 * directly into the Phi pipeline in the examples and integration tests.
 */

#ifndef PHI_SNN_NETWORK_HH
#define PHI_SNN_NETWORK_HH

#include <string>
#include <vector>

#include "common/parallel.hh"
#include "numeric/im2col.hh"
#include "snn/lif.hh"

namespace phi
{

class Rng;

/** A spiking network assembled layer by layer. */
class SpikingNetwork
{
  public:
    /**
     * @param in_channels input feature-map channels.
     * @param in_hw       input height = width.
     * @param timesteps   simulation timesteps T.
     */
    SpikingNetwork(size_t in_channels, size_t in_hw, int timesteps);

    /** Append a 3x3 (or kxk) same-padded spiking conv + LIF. */
    void addConv(size_t out_channels, size_t kernel = 3,
                 LifParams lif = {});

    /** Append a 2x2 spiking max-pool (OR of spikes). */
    void addPool();

    /** Append a fully connected layer + LIF over flattened features. */
    void addFc(size_t out_features, LifParams lif = {});

    /** Draw all weights from N(0, scale / sqrt(fan_in)). */
    void randomizeWeights(Rng& rng, double scale = 1.0);

    size_t numLayers() const { return layers.size(); }
    int timesteps() const { return tSteps; }

    /** Execution engine knobs for the forward-pass GEMMs. */
    const ExecutionConfig& execution() const { return execCfg; }
    void setExecution(const ExecutionConfig& exec) { execCfg = exec; }

    /** GEMM activation matrix shape of layer idx (conv/fc only). */
    struct GemmShape { size_t m, k, n; };
    GemmShape gemmShape(size_t idx) const;

    /** Result of one forward pass. */
    struct Forward
    {
        /** Binary GEMM activation matrix per conv/fc layer, in order
         *  (pool layers contribute no entry). */
        std::vector<BinaryMatrix> gemmActs;
        /** Spike raster of the final layer, T x features. */
        BinaryMatrix output;
        /** Spike counts per output feature summed over T. */
        std::vector<int> spikeCounts;
    };

    /**
     * Run the network on a real-valued image (C*H*W in [0,1]),
     * rate-coding it into spikes with the provided Rng.
     */
    Forward forward(const std::vector<float>& image, Rng& rng) const;

  private:
    struct Layer
    {
        enum class Type { Conv, Pool, Fc };
        Type type;
        ConvShape conv;  // valid for Conv
        size_t fcIn = 0; // valid for Fc
        size_t fcOut = 0;
        LifParams lif;
        Matrix<float> weights; // K x N for conv/fc
    };

    // Shape of the feature map entering layer i.
    struct FmapShape { size_t ch, hw; };

    size_t inChannels;
    size_t inHw;
    int tSteps;
    ExecutionConfig execCfg;
    std::vector<Layer> layers;
    std::vector<FmapShape> inputShapes; // per layer
    FmapShape currentShape;
    bool flattened = false;
};

} // namespace phi

#endif // PHI_SNN_NETWORK_HH
