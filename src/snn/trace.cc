#include "snn/trace.hh"

namespace phi
{

SparsityBreakdown
scaleBreakdown(SparsityBreakdown b, size_t count)
{
    b.elements *= count;
    b.rowTiles *= count;
    b.bitOnes *= count;
    b.l1Ones *= count;
    b.l2Pos *= count;
    b.l2Neg *= count;
    b.assigned *= count;
    return b;
}

SparsityBreakdown
ModelTrace::aggregate() const
{
    std::vector<SparsityBreakdown> parts;
    parts.reserve(layers.size());
    for (const auto& l : layers)
        parts.push_back(scaleBreakdown(l.stats, l.spec.count));
    return mergeBreakdowns(parts);
}

double
ModelTrace::totalBitOps() const
{
    double ops = 0;
    for (const auto& l : layers)
        ops += static_cast<double>(l.stats.bitOnes) *
               static_cast<double>(l.spec.n) *
               static_cast<double>(l.spec.count);
    return ops;
}

double
ModelTrace::totalDenseOps() const
{
    double ops = 0;
    for (const auto& l : layers)
        ops += static_cast<double>(l.spec.m) *
               static_cast<double>(l.spec.k) *
               static_cast<double>(l.spec.n) *
               static_cast<double>(l.spec.count);
    return ops;
}

ModelTrace
buildModelTrace(const ModelSpec& spec, const TraceOptions& opt)
{
    ModelTrace trace;
    trace.spec = spec;
    trace.layers.reserve(spec.layers.size());

    Rng master(opt.seed ^ (static_cast<uint64_t>(spec.model) << 8) ^
               static_cast<uint64_t>(spec.dataset));

    for (const auto& layer_spec : spec.layers) {
        LayerTrace lt;
        lt.spec = layer_spec;

        // The latent cluster structure of SNN activations has a fixed
        // natural width; the calibration tile size k is swept against
        // it in the DSE (Fig. 7), so the generator must not follow it.
        ClusterGenConfig gen_cfg =
            ClusterGenConfig::fromProfile(spec.profile, 16);
        const uint64_t layer_seed = master.next();
        ClusteredSpikeGenerator gen(gen_cfg, layer_spec.k, layer_seed);

        // Calibration ("train") samples and the evaluated ("test")
        // activations are independent draws from the same latent
        // distribution — the property Fig. 9a establishes.
        Rng train_rng(layer_seed ^ 0xa5a5a5a5ull);
        std::vector<BinaryMatrix> samples;
        samples.reserve(opt.calibSamples);
        for (size_t s = 0; s < opt.calibSamples; ++s)
            samples.push_back(gen.generate(layer_spec.m, train_rng));
        std::vector<const BinaryMatrix*> sample_ptrs;
        for (const auto& s : samples)
            sample_ptrs.push_back(&s);
        CalibrationConfig calib = opt.calib;
        calib.exec = opt.exec;
        lt.table = calibrateLayer(sample_ptrs, calib);

        Rng test_rng(layer_seed ^ 0x5a5a5a5aull);
        lt.acts = gen.generate(layer_spec.m, test_rng);

        if (opt.paft) {
            PaftConfig pc;
            pc.alignStrength = opt.paftStrength;
            Rng paft_rng(layer_seed ^ 0x77777777ull);
            lt.paftStats = applyPaft(lt.acts, lt.table, pc, paft_rng);
        }

        lt.dec = decomposeLayer(lt.acts, lt.table, opt.exec);
        lt.stats = computeBreakdown(lt.acts, lt.dec, lt.table);

        if (opt.withWeights) {
            Rng w_rng(layer_seed ^ 0x33333333ull);
            lt.weights = Matrix<int16_t>(layer_spec.k, layer_spec.n);
            for (size_t r = 0; r < lt.weights.rows(); ++r)
                for (size_t c = 0; c < lt.weights.cols(); ++c)
                    lt.weights(r, c) = static_cast<int16_t>(
                        w_rng.uniformInt(-64, 63));
        }

        trace.layers.push_back(std::move(lt));
    }
    return trace;
}

} // namespace phi
