/**
 * @file
 * Synthetic spike-activation generators.
 *
 * The paper's experiments consume activation matrices from trained SNNs.
 * We do not ship trained models, so the ClusteredSpikeGenerator samples
 * binary rows from a fixed per-partition set of latent prototypes with
 * Zipf popularity plus bit-flip noise, reproducing the two statistics
 * Phi's results depend on: overall bit density and the clustered row
 * structure (see DESIGN.md, substitution table). The prototype sets are
 * fixed at construction, so "train" and "test" draws share the same
 * distribution — exactly the property Fig. 9a establishes for real SNNs.
 */

#ifndef PHI_SNN_ACTIVATION_GEN_HH
#define PHI_SNN_ACTIVATION_GEN_HH

#include <vector>

#include "common/rng.hh"
#include "numeric/binary_matrix.hh"
#include "snn/model_zoo.hh"

namespace phi
{

/** Parameters of the clustered generator. */
struct ClusterGenConfig
{
    double bitDensity = 0.10;    // target fraction of one bits
    double l2DensityTarget = 0.02; // target mismatch (noise) density
    double zeroRowFrac = 0.30;   // all-zero row-tiles
    double randomRowFrac = 0.04; // unclustered outlier row-tiles
    int prototypes = 24;         // latent clusters per partition
    double zipfS = 1.1;          // prototype popularity skew
    int k = 16;                  // row-tile width the clusters live in

    /** Derive a generator config from a model's activation profile. */
    static ClusterGenConfig fromProfile(const ActivationProfile& p,
                                        int k = 16);
};

/**
 * Draws binary activation matrices whose row-tiles cluster around fixed
 * latent prototypes. Thread-compatible: generation state is external
 * (caller-provided Rng).
 */
class ClusteredSpikeGenerator
{
  public:
    /**
     * @param cfg   statistical targets.
     * @param kDim  activation column count of the layer.
     * @param seed  fixes the latent prototypes (per layer).
     */
    ClusteredSpikeGenerator(const ClusterGenConfig& cfg, size_t kDim,
                            uint64_t seed);

    /** Sample a rows x kDim activation matrix. */
    BinaryMatrix generate(size_t rows, Rng& rng) const;

    /** Latent prototypes of a partition (exposed for analysis). */
    const std::vector<uint64_t>& prototypesOf(size_t partition) const;

    size_t numPartitions() const { return protos.size(); }
    const ClusterGenConfig& config() const { return cfg; }

  private:
    ClusterGenConfig cfg;
    size_t kDim;
    double protoDensity; // per-bit density of prototypes
    double noise;        // per-bit flip probability
    std::vector<std::vector<uint64_t>> protos; // [partition][prototype]
    std::vector<double> zipfCdf;               // prototype popularity
};

/** iid Bernoulli activation matrix (Table 4 "Random" rows). */
BinaryMatrix randomActivations(size_t rows, size_t cols, double density,
                               Rng& rng);

} // namespace phi

#endif // PHI_SNN_ACTIVATION_GEN_HH
