#include "snn/model_zoo.hh"

#include "common/bitops.hh"
#include "common/logging.hh"
#include "numeric/im2col.hh"

namespace phi
{

std::string
modelName(ModelId id)
{
    switch (id) {
      case ModelId::VGG16: return "VGG16";
      case ModelId::ResNet18: return "ResNet18";
      case ModelId::Spikformer: return "Spikformer";
      case ModelId::SDT: return "SDT";
      case ModelId::SpikeBERT: return "SpikeBERT";
      case ModelId::SpikingBERT: return "SpikingBERT";
    }
    phi_panic("unknown model id");
}

std::string
datasetName(DatasetId id)
{
    switch (id) {
      case DatasetId::CIFAR10: return "CIFAR10";
      case DatasetId::CIFAR100: return "CIFAR100";
      case DatasetId::CIFAR10DVS: return "CIFAR10-DVS";
      case DatasetId::SST2: return "SST-2";
      case DatasetId::SST5: return "SST-5";
      case DatasetId::MNLI: return "MNLI";
    }
    phi_panic("unknown dataset id");
}

double
ModelSpec::totalMacs() const
{
    double total = 0;
    for (const auto& l : layers)
        total += static_cast<double>(l.count) * l.m * l.k * l.n;
    return total;
}

double
ModelSpec::totalElements() const
{
    double total = 0;
    for (const auto& l : layers)
        total += static_cast<double>(l.count) * l.m * l.k;
    return total;
}

namespace
{

size_t
numClasses(DatasetId ds)
{
    switch (ds) {
      case DatasetId::CIFAR10:
      case DatasetId::CIFAR10DVS: return 10;
      case DatasetId::CIFAR100: return 100;
      case DatasetId::SST2: return 2;
      case DatasetId::SST5: return 5;
      case DatasetId::MNLI: return 3;
    }
    phi_panic("unknown dataset id");
}

bool
isVisionDataset(DatasetId ds)
{
    return ds == DatasetId::CIFAR10 || ds == DatasetId::CIFAR100 ||
           ds == DatasetId::CIFAR10DVS;
}

/** Append an im2col-lowered conv GEMM. */
void
addConv(std::vector<GemmLayerSpec>& layers, const std::string& name,
        size_t t, size_t ch_in, size_t hw, size_t ch_out,
        size_t kernel = 3, size_t count = 1)
{
    ConvShape s;
    s.inChannels = ch_in;
    s.inHeight = hw;
    s.inWidth = hw;
    s.outChannels = ch_out;
    s.kernel = kernel;
    s.pad = kernel / 2;
    layers.push_back({name, t * s.gemmM(), s.gemmK(), s.gemmN(), count});
}

void
addFc(std::vector<GemmLayerSpec>& layers, const std::string& name,
      size_t m, size_t k, size_t n, size_t count = 1)
{
    layers.push_back({name, m, k, n, count});
}

/** Activation statistics targets, from Table 4 where available. */
ActivationProfile
profileFor(ModelId id, DatasetId ds)
{
    ActivationProfile p;
    switch (id) {
      case ModelId::VGG16:
        p.bitDensity = (ds == DatasetId::CIFAR10) ? 0.087 : 0.106;
        p.l2DensityTarget = (ds == DatasetId::CIFAR10) ? 0.015 : 0.021;
        p.zeroRowFrac = 0.35;
        break;
      case ModelId::ResNet18:
        p.bitDensity = (ds == DatasetId::CIFAR10) ? 0.074 : 0.070;
        p.l2DensityTarget = (ds == DatasetId::CIFAR10) ? 0.014 : 0.013;
        p.zeroRowFrac = 0.35;
        break;
      case ModelId::Spikformer:
        if (ds == DatasetId::CIFAR10DVS) {
            p.bitDensity = 0.119;
            p.l2DensityTarget = 0.031;
        } else if (ds == DatasetId::CIFAR100) {
            p.bitDensity = 0.142;
            p.l2DensityTarget = 0.040;
        } else {
            p.bitDensity = 0.130; // not in Table 4; interpolated
            p.l2DensityTarget = 0.034;
        }
        p.zeroRowFrac = 0.28;
        break;
      case ModelId::SDT:
        if (ds == DatasetId::CIFAR10DVS) {
            p.bitDensity = 0.112;
            p.l2DensityTarget = 0.022;
        } else if (ds == DatasetId::CIFAR100) {
            p.bitDensity = 0.152;
            p.l2DensityTarget = 0.048;
        } else {
            p.bitDensity = 0.140;
            p.l2DensityTarget = 0.040;
        }
        p.zeroRowFrac = 0.28;
        break;
      case ModelId::SpikeBERT:
        p.bitDensity = (ds == DatasetId::SST2) ? 0.180 : 0.185;
        p.l2DensityTarget = 0.038;
        p.zeroRowFrac = 0.10;
        break;
      case ModelId::SpikingBERT:
        p.bitDensity = (ds == DatasetId::SST2) ? 0.203 : 0.210;
        p.l2DensityTarget = (ds == DatasetId::SST2) ? 0.040 : 0.042;
        p.zeroRowFrac = 0.10;
        break;
    }
    return p;
}

std::vector<GemmLayerSpec>
vgg16Layers(size_t t, size_t classes)
{
    std::vector<GemmLayerSpec> l;
    addConv(l, "conv1_1", t, 3, 32, 64);
    addConv(l, "conv1_2", t, 64, 32, 64);
    addConv(l, "conv2_1", t, 64, 16, 128);
    addConv(l, "conv2_2", t, 128, 16, 128);
    addConv(l, "conv3_1", t, 128, 8, 256);
    addConv(l, "conv3_x", t, 256, 8, 256, 3, 2);
    addConv(l, "conv4_1", t, 256, 4, 512);
    addConv(l, "conv4_x", t, 512, 4, 512, 3, 2);
    addConv(l, "conv5_x", t, 512, 2, 512, 3, 3);
    addFc(l, "fc1", t, 512, 512);
    addFc(l, "fc2", t, 512, classes);
    return l;
}

std::vector<GemmLayerSpec>
resnet18Layers(size_t t, size_t classes)
{
    std::vector<GemmLayerSpec> l;
    addConv(l, "conv1", t, 3, 32, 64);
    addConv(l, "layer1_conv", t, 64, 32, 64, 3, 4);
    addConv(l, "layer2_down", t, 64, 16, 128);
    addFc(l, "layer2_skip", t * 16 * 16, 64, 128);
    addConv(l, "layer2_conv", t, 128, 16, 128, 3, 3);
    addConv(l, "layer3_down", t, 128, 8, 256);
    addFc(l, "layer3_skip", t * 8 * 8, 128, 256);
    addConv(l, "layer3_conv", t, 256, 8, 256, 3, 3);
    addConv(l, "layer4_down", t, 256, 4, 512);
    addFc(l, "layer4_skip", t * 4 * 4, 256, 512);
    addConv(l, "layer4_conv", t, 512, 4, 512, 3, 3);
    addFc(l, "fc", t, 512, classes);
    return l;
}

std::vector<GemmLayerSpec>
spikformerLayers(size_t t, size_t classes, bool dvs)
{
    std::vector<GemmLayerSpec> l;
    // Spikformer-4-384 for CIFAR; a downsized 2-block dim-256 variant
    // for DVS (the paper's DVS config is larger; shapes are preserved,
    // scale is reduced to keep the simulated workload tractable).
    const size_t dim = dvs ? 256 : 384;
    const size_t tokens = 64;
    const size_t blocks = dvs ? 2 : 4;
    const size_t mlp = dim * 4;
    if (dvs) {
        addConv(l, "sps1", t, 2, 64, 32);
        addConv(l, "sps2", t, 32, 32, 64);
        addConv(l, "sps3", t, 64, 16, 128);
        addConv(l, "sps4", t, 128, 8, 256);
    } else {
        addConv(l, "sps1", t, 3, 32, 48);
        addConv(l, "sps2", t, 48, 16, 96);
        addConv(l, "sps3", t, 96, 8, 192);
        addConv(l, "sps4", t, 192, 8, 384);
    }
    const size_t rows = t * tokens;
    addFc(l, "attn_qkv", rows, dim, dim, blocks * 3);
    addFc(l, "attn_score", rows, dim, tokens, blocks);
    addFc(l, "attn_av", rows, tokens, dim, blocks);
    addFc(l, "attn_proj", rows, dim, dim, blocks);
    addFc(l, "mlp_fc1", rows, dim, mlp, blocks);
    addFc(l, "mlp_fc2", rows, mlp, dim, blocks);
    addFc(l, "head", t, dim, classes);
    return l;
}

std::vector<GemmLayerSpec>
sdtLayers(size_t t, size_t classes, bool dvs)
{
    std::vector<GemmLayerSpec> l;
    // Spike-Driven Transformer: SDSA has no score/AV GEMMs (attention
    // is element-wise), so only the projections and MLP remain.
    const size_t dim = dvs ? 256 : 512;
    const size_t tokens = 64;
    const size_t blocks = 2;
    const size_t mlp = dim * 4;
    if (dvs) {
        addConv(l, "sps1", t, 2, 64, 32);
        addConv(l, "sps2", t, 32, 32, 64);
        addConv(l, "sps3", t, 64, 16, 128);
        addConv(l, "sps4", t, 128, 8, 256);
    } else {
        addConv(l, "sps1", t, 3, 32, 64);
        addConv(l, "sps2", t, 64, 16, 128);
        addConv(l, "sps3", t, 128, 8, 256);
        addConv(l, "sps4", t, 256, 8, 512);
    }
    const size_t rows = t * tokens;
    addFc(l, "attn_qkv", rows, dim, dim, blocks * 3);
    addFc(l, "attn_proj", rows, dim, dim, blocks);
    addFc(l, "mlp_fc1", rows, dim, mlp, blocks);
    addFc(l, "mlp_fc2", rows, mlp, dim, blocks);
    addFc(l, "head", t, dim, classes);
    return l;
}

std::vector<GemmLayerSpec>
bertLayers(size_t t, size_t classes, size_t seq, size_t blocks)
{
    std::vector<GemmLayerSpec> l;
    const size_t dim = 768;
    const size_t mlp = 3072;
    const size_t rows = t * seq;
    addFc(l, "attn_qkv", rows, dim, dim, blocks * 3);
    addFc(l, "attn_score", rows, dim, seq, blocks);
    addFc(l, "attn_av", rows, seq, dim, blocks);
    addFc(l, "attn_proj", rows, dim, dim, blocks);
    addFc(l, "mlp_fc1", rows, dim, mlp, blocks);
    addFc(l, "mlp_fc2", rows, mlp, dim, blocks);
    addFc(l, "head", t, dim, classes);
    return l;
}

} // namespace

ModelSpec
makeModel(ModelId id, DatasetId ds)
{
    ModelSpec spec;
    spec.model = id;
    spec.dataset = ds;
    spec.profile = profileFor(id, ds);
    const size_t classes = numClasses(ds);
    const bool dvs = (ds == DatasetId::CIFAR10DVS);

    switch (id) {
      case ModelId::VGG16:
        phi_assert(isVisionDataset(ds) && !dvs,
                   "VGG16 is evaluated on CIFAR10/100 only");
        spec.timesteps = 4;
        spec.layers = vgg16Layers(4, classes);
        break;
      case ModelId::ResNet18:
        phi_assert(isVisionDataset(ds) && !dvs,
                   "ResNet18 is evaluated on CIFAR10/100 only");
        spec.timesteps = 4;
        spec.layers = resnet18Layers(4, classes);
        break;
      case ModelId::Spikformer:
        phi_assert(isVisionDataset(ds),
                   "Spikformer is evaluated on CIFAR datasets");
        spec.timesteps = dvs ? 8 : 4;
        spec.layers = spikformerLayers(spec.timesteps, classes, dvs);
        break;
      case ModelId::SDT:
        phi_assert(isVisionDataset(ds),
                   "SDT is evaluated on CIFAR datasets");
        spec.timesteps = dvs ? 8 : 4;
        spec.layers = sdtLayers(spec.timesteps, classes, dvs);
        break;
      case ModelId::SpikeBERT:
        phi_assert(ds == DatasetId::SST2 || ds == DatasetId::SST5,
                   "SpikeBERT is evaluated on SST-2/SST-5");
        spec.timesteps = 4;
        spec.layers = bertLayers(4, classes, 64, 12);
        break;
      case ModelId::SpikingBERT:
        phi_assert(ds == DatasetId::SST2 || ds == DatasetId::MNLI,
                   "SpikingBERT is evaluated on SST-2/MNLI");
        spec.timesteps = 4;
        spec.layers = bertLayers(4, classes,
                                 ds == DatasetId::MNLI ? 128 : 64, 4);
        break;
    }
    return spec;
}

std::vector<ModelSpec>
allEvaluatedModels()
{
    return {
        makeModel(ModelId::VGG16, DatasetId::CIFAR10),
        makeModel(ModelId::VGG16, DatasetId::CIFAR100),
        makeModel(ModelId::ResNet18, DatasetId::CIFAR10),
        makeModel(ModelId::ResNet18, DatasetId::CIFAR100),
        makeModel(ModelId::Spikformer, DatasetId::CIFAR10),
        makeModel(ModelId::Spikformer, DatasetId::CIFAR10DVS),
        makeModel(ModelId::Spikformer, DatasetId::CIFAR100),
        makeModel(ModelId::SDT, DatasetId::CIFAR10),
        makeModel(ModelId::SDT, DatasetId::CIFAR10DVS),
        makeModel(ModelId::SDT, DatasetId::CIFAR100),
        makeModel(ModelId::SpikeBERT, DatasetId::SST2),
        makeModel(ModelId::SpikeBERT, DatasetId::SST5),
        makeModel(ModelId::SpikingBERT, DatasetId::SST2),
        makeModel(ModelId::SpikingBERT, DatasetId::MNLI),
    };
}

std::vector<ModelSpec>
table4Models()
{
    return {
        makeModel(ModelId::VGG16, DatasetId::CIFAR10),
        makeModel(ModelId::VGG16, DatasetId::CIFAR100),
        makeModel(ModelId::ResNet18, DatasetId::CIFAR10),
        makeModel(ModelId::ResNet18, DatasetId::CIFAR100),
        makeModel(ModelId::SpikingBERT, DatasetId::SST2),
        makeModel(ModelId::SpikingBERT, DatasetId::MNLI),
        makeModel(ModelId::Spikformer, DatasetId::CIFAR10DVS),
        makeModel(ModelId::Spikformer, DatasetId::CIFAR100),
        makeModel(ModelId::SDT, DatasetId::CIFAR10DVS),
        makeModel(ModelId::SDT, DatasetId::CIFAR100),
    };
}

} // namespace phi
