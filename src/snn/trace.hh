/**
 * @file
 * Model traces: per-layer activation matrices, calibrated pattern
 * tables, decompositions and sparsity statistics for one model/dataset
 * pair. Traces are the common input format of every accelerator
 * simulator and bench in this repository.
 */

#ifndef PHI_SNN_TRACE_HH
#define PHI_SNN_TRACE_HH

#include <vector>

#include "core/calibration.hh"
#include "core/decompose.hh"
#include "core/paft.hh"
#include "core/stats.hh"
#include "snn/activation_gen.hh"
#include "snn/model_zoo.hh"

namespace phi
{

/** Options controlling trace construction. */
struct TraceOptions
{
    /** Calibration parameters (k, q, k-means settings). */
    CalibrationConfig calib = defaultCalib();
    /** Number of independent "training" matrices pooled for calibration
     *  (the paper notes a small subset suffices). */
    size_t calibSamples = 2;
    /** Materialise weights and keep them in the trace (needed only for
     *  functional checks; structural simulation does not use values). */
    bool withWeights = false;
    /** Base seed; every layer derives its own stream. */
    uint64_t seed = 42;
    /** Apply PAFT alignment to the test activations before decomposing. */
    bool paft = false;
    /** PAFT alignment strength (lambda analogue). */
    double paftStrength = 0.85;
    /** Execution engine knobs for trace construction (calibration and
     *  decomposition); overrides calib.exec. */
    ExecutionConfig exec;

    static CalibrationConfig
    defaultCalib()
    {
        CalibrationConfig c;
        c.k = 16;
        c.q = 128;
        c.kmeans.maxIters = 15;
        c.kmeans.maxDistinct = 2048;
        return c;
    }
};

/** Everything known about one (unique) layer of a model trace. */
struct LayerTrace
{
    GemmLayerSpec spec;
    BinaryMatrix acts;       // test-split activations (M x K)
    PatternTable table;      // calibrated on the train split
    LayerDecomposition dec;  // Phi decomposition of acts
    SparsityBreakdown stats; // Table-4 style accounting
    Matrix<int16_t> weights; // empty unless TraceOptions::withWeights
    PaftResult paftStats;    // zeros when PAFT is off
};

/** A whole model/dataset trace. */
struct ModelTrace
{
    ModelSpec spec;
    std::vector<LayerTrace> layers;

    /**
     * Aggregate sparsity over the model, weighting each unique layer by
     * its structural repetition count.
     */
    SparsityBreakdown aggregate() const;

    /** Bit-sparse operation count (paper's OP definition: one AC per
     *  one-bit), including layer repetition. */
    double totalBitOps() const;

    /** Dense MAC-slot count, including repetition. */
    double totalDenseOps() const;
};

/** Build a trace for a model spec with clustered synthetic activations. */
ModelTrace buildModelTrace(const ModelSpec& spec,
                           const TraceOptions& opt = {});

/** Scale a breakdown's raw counters by a layer repetition count. */
SparsityBreakdown scaleBreakdown(SparsityBreakdown b, size_t count);

} // namespace phi

#endif // PHI_SNN_TRACE_HH
