#include "snn/activation_gen.hh"

#include <algorithm>
#include <cmath>

#include "common/bitops.hh"

namespace phi
{

ClusterGenConfig
ClusterGenConfig::fromProfile(const ActivationProfile& p, int k)
{
    ClusterGenConfig cfg;
    cfg.bitDensity = p.bitDensity;
    cfg.l2DensityTarget = p.l2DensityTarget;
    cfg.zeroRowFrac = p.zeroRowFrac;
    cfg.randomRowFrac = p.randomRowFrac;
    cfg.prototypes = p.prototypes;
    cfg.zipfS = p.zipfS;
    cfg.k = k;
    return cfg;
}

ClusteredSpikeGenerator::ClusteredSpikeGenerator(
    const ClusterGenConfig& genCfg, size_t k_dim, uint64_t seed)
    : cfg(genCfg), kDim(k_dim)
{
    phi_assert(cfg.k >= 1 && cfg.k <= 64, "tile width must be in [1,64]");
    phi_assert(cfg.bitDensity > 0.0 && cfg.bitDensity < 1.0,
               "bit density must be in (0,1)");

    const double live = 1.0 - cfg.zeroRowFrac;
    phi_assert(live > 0.05, "zeroRowFrac leaves no live rows");

    // Live row-tiles must carry all the density; solve the prototype
    // per-bit density so that after symmetric bit-flip noise the overall
    // density hits the target (d_eff = d_p(1-2e) + e).
    const double d_eff = std::min(0.95, cfg.bitDensity / live);
    // Mismatch bits against the latent prototype appear at rate ~noise,
    // but the k-means calibration recovers *more* patterns than latent
    // prototypes and absorbs part of the noise — increasingly so at
    // higher noise levels. The empirical linear correction below was
    // fit so the measured L2 densities land on the Table 4 targets.
    const double noise_scale =
        std::clamp(0.75 + 12.5 * cfg.l2DensityTarget, 0.6, 1.6);
    noise = std::clamp(cfg.l2DensityTarget / live * noise_scale, 0.001,
                       0.45);
    if (noise >= d_eff)
        noise = d_eff * 0.5; // extremely sparse layers: keep solvable
    protoDensity =
        std::clamp((d_eff - noise) / (1.0 - 2.0 * noise), 0.01, 0.98);

    // Fixed latent prototypes per partition. Popcounts are dithered
    // around protoDensity * k instead of sampled iid so the realised
    // overall density tracks the target tightly even for layers with
    // few partitions.
    Rng rng(seed);
    const size_t partitions =
        ceilDiv(kDim, static_cast<size_t>(cfg.k));
    protos.resize(partitions);
    for (auto& pp : protos) {
        pp.resize(static_cast<size_t>(cfg.prototypes));
        for (auto& proto : pp) {
            const double mean_ones =
                protoDensity * static_cast<double>(cfg.k);
            int n_ones = static_cast<int>(mean_ones);
            if (rng.bernoulli(mean_ones - n_ones))
                ++n_ones;
            n_ones = std::min(n_ones, cfg.k);
            uint64_t bits = 0;
            int placed = 0;
            while (placed < n_ones) {
                int b = static_cast<int>(
                    rng.nextBounded(static_cast<uint64_t>(cfg.k)));
                if (!(bits & (1ull << b))) {
                    bits |= 1ull << b;
                    ++placed;
                }
            }
            proto = bits;
        }
    }

    // Zipf popularity CDF over prototypes.
    zipfCdf.resize(static_cast<size_t>(cfg.prototypes));
    double norm = 0.0;
    for (int i = 0; i < cfg.prototypes; ++i)
        norm += 1.0 / std::pow(i + 1.0, cfg.zipfS);
    double acc = 0.0;
    for (int i = 0; i < cfg.prototypes; ++i) {
        acc += 1.0 / std::pow(i + 1.0, cfg.zipfS) / norm;
        zipfCdf[static_cast<size_t>(i)] = acc;
    }
    zipfCdf.back() = 1.0;
}

const std::vector<uint64_t>&
ClusteredSpikeGenerator::prototypesOf(size_t partition) const
{
    phi_assert(partition < protos.size(), "partition out of range");
    return protos[partition];
}

BinaryMatrix
ClusteredSpikeGenerator::generate(size_t rows, Rng& rng) const
{
    BinaryMatrix acts(rows, kDim);
    const int k = cfg.k;
    const double d_eff =
        protoDensity * (1.0 - 2.0 * noise) + noise;

    for (size_t r = 0; r < rows; ++r) {
        for (size_t p = 0; p < protos.size(); ++p) {
            const size_t start = p * static_cast<size_t>(k);
            const int width = static_cast<int>(
                std::min<size_t>(static_cast<size_t>(k), kDim - start));

            double mode = rng.uniform();
            uint64_t bits = 0;
            if (mode < cfg.zeroRowFrac) {
                // all-zero row-tile
            } else if (mode < cfg.zeroRowFrac + cfg.randomRowFrac) {
                // unclustered outlier
                for (int b = 0; b < width; ++b)
                    if (rng.bernoulli(d_eff))
                        bits |= 1ull << b;
            } else {
                // prototype + bit-flip noise
                double u = rng.uniform();
                size_t idx = static_cast<size_t>(
                    std::lower_bound(zipfCdf.begin(), zipfCdf.end(), u) -
                    zipfCdf.begin());
                if (idx >= protos[p].size())
                    idx = protos[p].size() - 1;
                bits = protos[p][idx];
                for (int b = 0; b < width; ++b)
                    if (rng.bernoulli(noise))
                        bits ^= 1ull << b;
                bits &= lowMask(width);
            }
            if (bits)
                acts.deposit(r, start, width, bits);
        }
    }
    return acts;
}

BinaryMatrix
randomActivations(size_t rows, size_t cols, double density, Rng& rng)
{
    return BinaryMatrix::random(rows, cols, density, rng);
}

} // namespace phi
