#include "snn/lif.hh"

#include "common/logging.hh"

namespace phi
{

LifPopulation::LifPopulation(size_t num_neurons, LifParams params)
    : prm(params), membrane(num_neurons, 0.0f),
      refractCount(num_neurons, 0)
{
    phi_assert(prm.leak >= 0.0f && prm.leak <= 1.0f,
               "leak must be within [0, 1]");
    phi_assert(prm.threshold > 0.0f, "threshold must be positive");
    phi_assert(prm.refractory >= 0,
               "refractory period must be non-negative");
}

void
LifPopulation::reset()
{
    std::fill(membrane.begin(), membrane.end(), 0.0f);
    std::fill(refractCount.begin(), refractCount.end(), 0);
}

bool
LifPopulation::advance(size_t i, float in)
{
    // A refractory neuron ignores its input: the membrane only decays
    // and no spike can fire. With refractory == 0 this branch is never
    // taken, so the original dynamics are reproduced exactly.
    if (refractCount[i] > 0) {
        --refractCount[i];
        membrane[i] = prm.leak * membrane[i];
        return false;
    }
    float v = prm.leak * membrane[i] + in;
    bool spiked = false;
    if (v >= prm.threshold) {
        spiked = true;
        v = prm.hardReset ? 0.0f : v - prm.threshold;
        refractCount[i] = prm.refractory;
    }
    membrane[i] = v;
    return spiked;
}

void
LifPopulation::step(const float* current, std::vector<uint8_t>& spikes)
{
    spikes.assign(membrane.size(), 0);
    for (size_t i = 0; i < membrane.size(); ++i)
        if (advance(i, current[i]))
            spikes[i] = 1;
}

void
LifPopulation::stepInto(const float* current, BinaryMatrix& spikes,
                        size_t row)
{
    phi_assert(spikes.cols() == membrane.size(),
               "spike row width does not match the population");
    phi_assert(row < spikes.rows(), "spike row out of range");
    // Accumulate bits a 64-wide word at a time and deposit whole
    // words: no per-step allocation, no per-neuron set() call.
    const size_t n = membrane.size();
    for (size_t start = 0; start < n; start += 64) {
        const int len =
            static_cast<int>(n - start < 64 ? n - start : 64);
        uint64_t word = 0;
        for (int b = 0; b < len; ++b)
            if (advance(start + static_cast<size_t>(b),
                        current[start + static_cast<size_t>(b)]))
                word |= uint64_t{1} << b;
        spikes.deposit(row, start, len, word);
    }
    if (n == 0)
        return;
}

void
LifPopulation::stepInto(const int32_t* current, BinaryMatrix& spikes,
                        size_t row)
{
    phi_assert(spikes.cols() == membrane.size(),
               "spike row width does not match the population");
    phi_assert(row < spikes.rows(), "spike row out of range");
    const size_t n = membrane.size();
    for (size_t start = 0; start < n; start += 64) {
        const int len =
            static_cast<int>(n - start < 64 ? n - start : 64);
        uint64_t word = 0;
        for (int b = 0; b < len; ++b) {
            const size_t i = start + static_cast<size_t>(b);
            if (advance(i, static_cast<float>(current[i])))
                word |= uint64_t{1} << b;
        }
        spikes.deposit(row, start, len, word);
    }
}

LifState
LifPopulation::saveState() const
{
    return {membrane, refractCount};
}

void
LifPopulation::loadState(const LifState& state)
{
    phi_assert(state.membrane.size() == membrane.size() &&
                   state.refractory.size() == refractCount.size(),
               "LIF state size does not match the population");
    membrane = state.membrane;
    refractCount = state.refractory;
}

float
LifPopulation::potential(size_t idx) const
{
    phi_assert(idx < membrane.size(), "neuron index out of range");
    return membrane[idx];
}

BinaryMatrix
runLif(const Matrix<float>& currents, LifParams params)
{
    LifPopulation pop(currents.cols(), params);
    BinaryMatrix spikes(currents.rows(), currents.cols());
    std::vector<uint8_t> out;
    for (size_t t = 0; t < currents.rows(); ++t) {
        pop.step(currents.rowPtr(t), out);
        for (size_t i = 0; i < out.size(); ++i)
            if (out[i])
                spikes.set(t, i, true);
    }
    return spikes;
}

} // namespace phi
