#include "snn/lif.hh"

#include "common/logging.hh"

namespace phi
{

LifPopulation::LifPopulation(size_t num_neurons, LifParams params)
    : prm(params), membrane(num_neurons, 0.0f)
{
    phi_assert(prm.leak >= 0.0f && prm.leak <= 1.0f,
               "leak must be within [0, 1]");
    phi_assert(prm.threshold > 0.0f, "threshold must be positive");
}

void
LifPopulation::reset()
{
    std::fill(membrane.begin(), membrane.end(), 0.0f);
}

void
LifPopulation::step(const float* current, std::vector<uint8_t>& spikes)
{
    spikes.assign(membrane.size(), 0);
    for (size_t i = 0; i < membrane.size(); ++i) {
        float v = prm.leak * membrane[i] + current[i];
        if (v >= prm.threshold) {
            spikes[i] = 1;
            v = prm.hardReset ? 0.0f : v - prm.threshold;
        }
        membrane[i] = v;
    }
}

float
LifPopulation::potential(size_t idx) const
{
    phi_assert(idx < membrane.size(), "neuron index out of range");
    return membrane[idx];
}

BinaryMatrix
runLif(const Matrix<float>& currents, LifParams params)
{
    LifPopulation pop(currents.cols(), params);
    BinaryMatrix spikes(currents.rows(), currents.cols());
    std::vector<uint8_t> out;
    for (size_t t = 0; t < currents.rows(); ++t) {
        pop.step(currents.rowPtr(t), out);
        for (size_t i = 0; i < out.size(); ++i)
            if (out[i])
                spikes.set(t, i, true);
    }
    return spikes;
}

} // namespace phi
