/**
 * @file
 * GEMM-level descriptions of the SNN models the paper evaluates
 * (Sec. 5.1): spiking VGG16 and ResNet18 (CIFAR10/100), Spikformer and
 * Spike-driven Transformer (CIFAR10/100, CIFAR10-DVS), and SpikeBERT /
 * SpikingBERT (SST-2, SST-5, MNLI).
 *
 * Each model is a list of binary-activation GEMMs (conv layers are
 * im2col-lowered). Layers repeated with identical shape and statistics
 * carry a `count` so the trace builder simulates one instance and scales
 * the totals — statistically equivalent and much cheaper.
 */

#ifndef PHI_SNN_MODEL_ZOO_HH
#define PHI_SNN_MODEL_ZOO_HH

#include <string>
#include <vector>

namespace phi
{

/** One binary-activation GEMM of a model. */
struct GemmLayerSpec
{
    std::string name;
    size_t m = 0;     // rows = timesteps x spatial/sequence positions
    size_t k = 0;     // reduction dim (binary activations)
    size_t n = 0;     // output features
    size_t count = 1; // structural repetitions of this shape
};

/**
 * Statistical profile of a model/dataset's spike activations, used by
 * the clustered generator. bitDensity/l2Density targets come straight
 * from Table 4 of the paper.
 */
struct ActivationProfile
{
    double bitDensity = 0.10;   // Table 4 "Bit Density"
    double l2DensityTarget = 0.02; // Table 4 L2(+1) + L2(-1)
    double zeroRowFrac = 0.30;  // all-zero row-tiles (no computation)
    int prototypes = 24;        // latent clusters per partition
    double zipfS = 1.1;         // prototype popularity skew
    double randomRowFrac = 0.04; // unclustered outlier rows
};

/** Supported model families. */
enum class ModelId
{
    VGG16,
    ResNet18,
    Spikformer,
    SDT,
    SpikeBERT,
    SpikingBERT,
};

/** Supported datasets. */
enum class DatasetId
{
    CIFAR10,
    CIFAR100,
    CIFAR10DVS,
    SST2,
    SST5,
    MNLI,
};

std::string modelName(ModelId id);
std::string datasetName(DatasetId id);

/** Full model description. */
struct ModelSpec
{
    ModelId model;
    DatasetId dataset;
    int timesteps = 4;
    std::vector<GemmLayerSpec> layers;
    ActivationProfile profile;

    /** Total binary-activation MAC-slots = sum count * m * k * n. */
    double totalMacs() const;
    /** Total activation elements = sum count * m * k. */
    double totalElements() const;
};

/**
 * Build the layer list + activation profile for a model/dataset pair.
 * Fatal error if the pairing is not one the paper evaluates.
 */
ModelSpec makeModel(ModelId id, DatasetId ds);

/** All 14 (model, dataset) pairs appearing in Fig. 8. */
std::vector<ModelSpec> allEvaluatedModels();

/** The 10 pairs appearing in Table 4 / Figs. 10-11. */
std::vector<ModelSpec> table4Models();

} // namespace phi

#endif // PHI_SNN_MODEL_ZOO_HH
