#include "snn/network.hh"

#include <cmath>

#include "common/rng.hh"
#include "numeric/gemm.hh"

namespace phi
{

SpikingNetwork::SpikingNetwork(size_t in_channels, size_t in_hw,
                               int timesteps)
    : inChannels(in_channels), inHw(in_hw), tSteps(timesteps),
      currentShape{in_channels, in_hw}
{
    phi_assert(timesteps >= 1, "need at least one timestep");
}

void
SpikingNetwork::addConv(size_t out_channels, size_t kernel,
                        LifParams lif)
{
    phi_assert(!flattened, "cannot add conv after an FC layer");
    Layer l;
    l.type = Layer::Type::Conv;
    l.conv.inChannels = currentShape.ch;
    l.conv.inHeight = currentShape.hw;
    l.conv.inWidth = currentShape.hw;
    l.conv.outChannels = out_channels;
    l.conv.kernel = kernel;
    l.conv.pad = kernel / 2;
    l.lif = lif;
    l.weights = Matrix<float>(l.conv.gemmK(), l.conv.gemmN(), 0.0f);
    inputShapes.push_back(currentShape);
    layers.push_back(std::move(l));
    currentShape = {out_channels, currentShape.hw};
}

void
SpikingNetwork::addPool()
{
    phi_assert(!flattened, "cannot pool after an FC layer");
    phi_assert(currentShape.hw % 2 == 0, "pool needs even feature maps");
    Layer l;
    l.type = Layer::Type::Pool;
    inputShapes.push_back(currentShape);
    layers.push_back(std::move(l));
    currentShape = {currentShape.ch, currentShape.hw / 2};
}

void
SpikingNetwork::addFc(size_t out_features, LifParams lif)
{
    Layer l;
    l.type = Layer::Type::Fc;
    l.fcIn = currentShape.ch * currentShape.hw * currentShape.hw;
    l.fcOut = out_features;
    l.lif = lif;
    l.weights = Matrix<float>(l.fcIn, l.fcOut, 0.0f);
    inputShapes.push_back(currentShape);
    layers.push_back(std::move(l));
    flattened = true;
    currentShape = {out_features, 1};
}

void
SpikingNetwork::randomizeWeights(Rng& rng, double scale)
{
    for (auto& l : layers) {
        if (l.weights.empty())
            continue;
        const double std_dev =
            scale / std::sqrt(static_cast<double>(l.weights.rows()));
        for (size_t r = 0; r < l.weights.rows(); ++r)
            for (size_t c = 0; c < l.weights.cols(); ++c)
                l.weights(r, c) =
                    static_cast<float>(rng.gaussian() * std_dev);
    }
}

SpikingNetwork::GemmShape
SpikingNetwork::gemmShape(size_t idx) const
{
    phi_assert(idx < layers.size(), "layer index out of range");
    const Layer& l = layers[idx];
    const size_t t = static_cast<size_t>(tSteps);
    if (l.type == Layer::Type::Conv)
        return {t * l.conv.gemmM(), l.conv.gemmK(), l.conv.gemmN()};
    if (l.type == Layer::Type::Fc)
        return {t, l.fcIn, l.fcOut};
    phi_fatal("pool layers have no GEMM shape");
}

SpikingNetwork::Forward
SpikingNetwork::forward(const std::vector<float>& image, Rng& rng) const
{
    phi_assert(image.size() == inChannels * inHw * inHw,
               "image size ", image.size(), " != expected ",
               inChannels * inHw * inHw);
    const size_t t = static_cast<size_t>(tSteps);

    // Rate-code the input: each pixel spikes with probability equal to
    // its (clamped) intensity at every timestep.
    BinaryMatrix fmap(t, image.size());
    for (size_t ts = 0; ts < t; ++ts)
        for (size_t i = 0; i < image.size(); ++i) {
            float p = std::min(1.0f, std::max(0.0f, image[i]));
            if (rng.bernoulli(p))
                fmap.set(ts, i, true);
        }

    Forward result;
    size_t hw = inHw;

    for (size_t li = 0; li < layers.size(); ++li) {
        const Layer& l = layers[li];
        if (l.type == Layer::Type::Pool) {
            // Spiking max-pool = OR over each 2x2 window, per channel.
            const size_t ch = inputShapes[li].ch;
            const size_t out_hw = hw / 2;
            BinaryMatrix pooled(t, ch * out_hw * out_hw);
            for (size_t ts = 0; ts < t; ++ts) {
                for (size_t c = 0; c < ch; ++c) {
                    for (size_t y = 0; y < out_hw; ++y) {
                        for (size_t x = 0; x < out_hw; ++x) {
                            bool v = false;
                            for (size_t dy = 0; dy < 2 && !v; ++dy)
                                for (size_t dx = 0; dx < 2 && !v; ++dx)
                                    v = fmap.get(
                                        ts, (c * hw + 2 * y + dy) * hw +
                                            2 * x + dx);
                            if (v)
                                pooled.set(
                                    ts,
                                    (c * out_hw + y) * out_hw + x,
                                    true);
                        }
                    }
                }
            }
            fmap = std::move(pooled);
            hw = out_hw;
            continue;
        }

        BinaryMatrix acts;
        size_t out_features;
        size_t spatial;
        if (l.type == Layer::Type::Conv) {
            acts = im2colSpikes(fmap, l.conv);
            out_features = l.conv.outChannels;
            spatial = l.conv.outHeight() * l.conv.outWidth();
        } else {
            acts = fmap; // already T x features
            out_features = l.fcOut;
            spatial = 1;
        }
        result.gemmActs.push_back(acts);

        // currents: (t * spatial) x out_features, timestep-major rows.
        Matrix<float> currents = spikeGemmF(acts, l.weights, execCfg);

        // LIF dynamics: one population over (spatial x out_features),
        // advanced sequentially through the timesteps.
        LifPopulation pop(spatial * out_features, l.lif);
        std::vector<float> current_row(spatial * out_features);
        std::vector<uint8_t> spikes;
        BinaryMatrix out_fmap(t, out_features * spatial);
        for (size_t ts = 0; ts < t; ++ts) {
            for (size_t pos = 0; pos < spatial; ++pos)
                for (size_t f = 0; f < out_features; ++f)
                    current_row[pos * out_features + f] =
                        currents(ts * spatial + pos, f);
            pop.step(current_row.data(), spikes);
            for (size_t pos = 0; pos < spatial; ++pos)
                for (size_t f = 0; f < out_features; ++f)
                    if (spikes[pos * out_features + f])
                        out_fmap.set(ts, f * spatial + pos, true);
        }
        fmap = std::move(out_fmap);
    }

    result.output = fmap;
    result.spikeCounts.assign(fmap.cols(), 0);
    for (size_t ts = 0; ts < t; ++ts)
        for (size_t f = 0; f < fmap.cols(); ++f)
            if (fmap.get(ts, f))
                ++result.spikeCounts[f];
    return result;
}

} // namespace phi
