/**
 * @file
 * Leaky-Integrate-and-Fire neuron model (Sec. 2.1).
 *
 * v[t+1] = leak * v[t] + I[t]; a spike fires when v crosses the
 * threshold, after which the membrane either resets to zero (hard reset)
 * or is reduced by the threshold (soft reset). An optional refractory
 * period holds the neuron silent for a fixed number of steps after each
 * spike: during refraction input is ignored and the membrane only
 * decays. refractory = 0 (the default) reproduces the original
 * dynamics bit for bit.
 */

#ifndef PHI_SNN_LIF_HH
#define PHI_SNN_LIF_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "numeric/binary_matrix.hh"
#include "numeric/matrix.hh"

namespace phi
{

/** LIF neuron parameters. */
struct LifParams
{
    float leak = 0.5f;      // membrane decay per step, in [0, 1]
    float threshold = 1.0f; // firing threshold
    bool hardReset = true;  // true: v -> 0 on spike; false: v -= theta
    /** Steps a neuron stays silent after firing (0 = none). */
    int32_t refractory = 0;
};

/**
 * A full snapshot of a population's dynamic state — what must persist
 * for temporal serving to resume a stream exactly where it stopped.
 * Plain data so the session snapshot format can serialize it.
 */
struct LifState
{
    std::vector<float> membrane;
    /** Remaining silent steps per neuron (all zero when the params
     *  have no refractory period). */
    std::vector<int32_t> refractory;
};

/**
 * A population of LIF neurons advanced one timestep at a time.
 * Membrane potentials (and refractory counters) persist between step()
 * calls until reset().
 */
class LifPopulation
{
  public:
    LifPopulation(size_t num_neurons, LifParams params = {});

    size_t size() const { return membrane.size(); }
    const LifParams& params() const { return prm; }

    /** Zero all membrane potentials and refractory counters. */
    void reset();

    /**
     * Integrate one timestep of input current and report spikes.
     *
     * @param current  per-neuron input (size() entries).
     * @param spikes   output bits, resized to size().
     */
    void step(const float* current, std::vector<uint8_t>& spikes);

    /**
     * Allocation-free step() for the serving path: writes the spike
     * bits into row @p row of @p spikes (which must have size() cols),
     * clearing the row first. Bit-identical to step().
     */
    void stepInto(const float* current, BinaryMatrix& spikes, size_t row);

    /**
     * stepInto() fed by a GEMM's int32 accumulator row — the exact
     * shape the engine hands a session. The cast to float is the one
     * conversion point, so the serving path and an offline reference
     * that casts the same way stay bit-identical.
     */
    void stepInto(const int32_t* current, BinaryMatrix& spikes,
                  size_t row);

    /** Copy out the dynamic state (membrane + refractory vectors). */
    LifState saveState() const;

    /** Restore a state captured by saveState() on a population of the
     *  same size (asserted — callers validate untrusted sizes first). */
    void loadState(const LifState& state);

    /** Current membrane potential of a neuron (for tests). */
    float potential(size_t idx) const;

  private:
    /** One neuron's advance; returns whether it spiked. */
    bool advance(size_t i, float in);

    LifParams prm;
    std::vector<float> membrane;
    std::vector<int32_t> refractCount;
};

/**
 * Run a fresh LIF population over a T x N current matrix (row = one
 * timestep) and return the T x N spike raster. This is the canonical
 * layout phi uses for activation matrices with time folded into rows.
 */
BinaryMatrix runLif(const Matrix<float>& currents, LifParams params = {});

} // namespace phi

#endif // PHI_SNN_LIF_HH
