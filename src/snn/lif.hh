/**
 * @file
 * Leaky-Integrate-and-Fire neuron model (Sec. 2.1).
 *
 * v[t+1] = leak * v[t] + I[t]; a spike fires when v crosses the
 * threshold, after which the membrane either resets to zero (hard reset)
 * or is reduced by the threshold (soft reset).
 */

#ifndef PHI_SNN_LIF_HH
#define PHI_SNN_LIF_HH

#include <cstddef>
#include <vector>

#include "numeric/binary_matrix.hh"
#include "numeric/matrix.hh"

namespace phi
{

/** LIF neuron parameters. */
struct LifParams
{
    float leak = 0.5f;      // membrane decay per step, in [0, 1]
    float threshold = 1.0f; // firing threshold
    bool hardReset = true;  // true: v -> 0 on spike; false: v -= theta
};

/**
 * A population of LIF neurons advanced one timestep at a time.
 * Membrane potentials persist between step() calls until reset().
 */
class LifPopulation
{
  public:
    LifPopulation(size_t num_neurons, LifParams params = {});

    size_t size() const { return membrane.size(); }
    const LifParams& params() const { return prm; }

    /** Zero all membrane potentials. */
    void reset();

    /**
     * Integrate one timestep of input current and report spikes.
     *
     * @param current  per-neuron input (size() entries).
     * @param spikes   output bits, resized to size().
     */
    void step(const float* current, std::vector<uint8_t>& spikes);

    /** Current membrane potential of a neuron (for tests). */
    float potential(size_t idx) const;

  private:
    LifParams prm;
    std::vector<float> membrane;
};

/**
 * Run a fresh LIF population over a T x N current matrix (row = one
 * timestep) and return the T x N spike raster. This is the canonical
 * layout phi uses for activation matrices with time folded into rows.
 */
BinaryMatrix runLif(const Matrix<float>& currents, LifParams params = {});

} // namespace phi

#endif // PHI_SNN_LIF_HH
