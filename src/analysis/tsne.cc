#include "analysis/tsne.hh"

#include <cmath>

#include "common/bitops.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace phi
{

namespace
{

/**
 * Row conditional probabilities with the bandwidth found by binary
 * search so the row's perplexity matches the target.
 */
void
computeRowP(const std::vector<double>& sq_dist, size_t n, size_t i,
            double perplexity, std::vector<double>& p_row)
{
    const double target_entropy = std::log(perplexity);
    double beta = 1.0;
    double beta_lo = 0.0;
    double beta_hi = std::numeric_limits<double>::infinity();

    for (int iter = 0; iter < 64; ++iter) {
        double sum = 0.0;
        double dot = 0.0;
        for (size_t j = 0; j < n; ++j) {
            if (j == i) {
                p_row[j] = 0.0;
                continue;
            }
            const double d = sq_dist[i * n + j];
            const double w = std::exp(-beta * d);
            p_row[j] = w;
            sum += w;
            dot += w * d;
        }
        if (sum <= 0) {
            // Degenerate row (all duplicates at distance 0 handled by
            // exp(0)=1, so this means n == 1).
            break;
        }
        const double entropy = std::log(sum) + beta * dot / sum;
        const double diff = entropy - target_entropy;
        if (std::abs(diff) < 1e-5)
            break;
        if (diff > 0) {
            beta_lo = beta;
            beta = std::isinf(beta_hi) ? beta * 2.0
                                       : (beta + beta_hi) / 2.0;
        } else {
            beta_hi = beta;
            beta = (beta + beta_lo) / 2.0;
        }
    }

    double sum = 0.0;
    for (size_t j = 0; j < n; ++j)
        sum += p_row[j];
    if (sum > 0)
        for (size_t j = 0; j < n; ++j)
            p_row[j] /= sum;
}

std::vector<double>
symmetrisedP(const std::vector<double>& sq_dist, size_t n,
             double perplexity)
{
    std::vector<double> p(n * n, 0.0);
    std::vector<double> row(n);
    for (size_t i = 0; i < n; ++i) {
        computeRowP(sq_dist, n, i, perplexity, row);
        for (size_t j = 0; j < n; ++j)
            p[i * n + j] = row[j];
    }
    // Symmetrise and normalise.
    std::vector<double> sym(n * n, 0.0);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            sym[i * n + j] =
                (p[i * n + j] + p[j * n + i]) / (2.0 * n);
            total += sym[i * n + j];
        }
    }
    if (total > 0)
        for (auto& v : sym)
            v /= total;
    const double floor_p = 1e-12;
    for (auto& v : sym)
        v = std::max(v, floor_p);
    return sym;
}

} // namespace

std::vector<Point2>
tsneFromDistances(const std::vector<double>& sq_dist, size_t n,
                  const TsneConfig& cfg)
{
    phi_assert(sq_dist.size() == n * n,
               "distance matrix must be n x n");
    if (n == 0)
        return {};
    if (n == 1)
        return {Point2{}};

    const double perp =
        std::min(cfg.perplexity, static_cast<double>(n - 1) / 3.0);
    std::vector<double> p = symmetrisedP(sq_dist, n, std::max(2.0, perp));

    Rng rng(cfg.seed);
    std::vector<Point2> y(n);
    for (auto& pt : y) {
        pt.x = rng.gaussian() * 1e-2;
        pt.y = rng.gaussian() * 1e-2;
    }

    std::vector<Point2> velocity(n);
    std::vector<Point2> grad(n);
    std::vector<double> qnum(n * n);

    for (int iter = 0; iter < cfg.iterations; ++iter) {
        const double exag =
            iter < cfg.exaggerationIters ? cfg.earlyExaggeration : 1.0;
        const double momentum = iter < cfg.momentumSwitchIter
                                    ? cfg.initialMomentum
                                    : cfg.finalMomentum;

        // Student-t affinities in the embedding.
        double qsum = 0.0;
        for (size_t i = 0; i < n; ++i) {
            for (size_t j = i + 1; j < n; ++j) {
                const double dx = y[i].x - y[j].x;
                const double dy = y[i].y - y[j].y;
                const double w = 1.0 / (1.0 + dx * dx + dy * dy);
                qnum[i * n + j] = w;
                qnum[j * n + i] = w;
                qsum += 2.0 * w;
            }
            qnum[i * n + i] = 0.0;
        }
        if (qsum < 1e-300)
            qsum = 1e-300;

        for (size_t i = 0; i < n; ++i) {
            double gx = 0.0;
            double gy = 0.0;
            for (size_t j = 0; j < n; ++j) {
                if (i == j)
                    continue;
                const double w = qnum[i * n + j];
                const double q = std::max(w / qsum, 1e-12);
                const double mult =
                    (exag * p[i * n + j] - q) * w;
                gx += mult * (y[i].x - y[j].x);
                gy += mult * (y[i].y - y[j].y);
            }
            grad[i].x = 4.0 * gx;
            grad[i].y = 4.0 * gy;
        }

        for (size_t i = 0; i < n; ++i) {
            velocity[i].x = momentum * velocity[i].x -
                            cfg.learningRate * grad[i].x;
            velocity[i].y = momentum * velocity[i].y -
                            cfg.learningRate * grad[i].y;
            y[i].x += velocity[i].x;
            y[i].y += velocity[i].y;
        }

        // Re-centre to keep the embedding bounded.
        double mx = 0.0;
        double my = 0.0;
        for (const auto& pt : y) {
            mx += pt.x;
            my += pt.y;
        }
        mx /= static_cast<double>(n);
        my /= static_cast<double>(n);
        for (auto& pt : y) {
            pt.x -= mx;
            pt.y -= my;
        }
    }
    return y;
}

std::vector<Point2>
tsneBinaryRows(const BinaryMatrix& rows, const TsneConfig& cfg)
{
    const size_t n = rows.rows();
    std::vector<double> sq(n * n, 0.0);
    const size_t words = rows.numWordsPerRow();
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            int d = 0;
            const uint64_t* a = rows.rowWords(i);
            const uint64_t* b = rows.rowWords(j);
            for (size_t w = 0; w < words; ++w)
                d += popcount64(a[w] ^ b[w]);
            const double dd = static_cast<double>(d);
            sq[i * n + j] = dd; // squared Hamming == Hamming for 0/1
            sq[j * n + i] = dd;
        }
    }
    return tsneFromDistances(sq, n, cfg);
}

double
tsneKlDivergence(const std::vector<double>& sq_dist, size_t n,
                 const std::vector<Point2>& y, double perplexity)
{
    phi_assert(y.size() == n, "embedding size mismatch");
    if (n < 2)
        return 0.0;
    std::vector<double> p = symmetrisedP(sq_dist, n, perplexity);

    std::vector<double> q(n * n, 0.0);
    double qsum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            const double dx = y[i].x - y[j].x;
            const double dy = y[i].y - y[j].y;
            const double w = 1.0 / (1.0 + dx * dx + dy * dy);
            q[i * n + j] = w;
            q[j * n + i] = w;
            qsum += 2.0 * w;
        }
    }
    double kl = 0.0;
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            const double pj = p[i * n + j];
            const double qj = std::max(q[i * n + j] / qsum, 1e-12);
            kl += pj * std::log(pj / qj);
        }
    }
    return kl;
}

} // namespace phi
