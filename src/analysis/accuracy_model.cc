#include "analysis/accuracy_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace phi
{

double
paftAccuracyDropPp(double flip_rate)
{
    // Calibrated so typical alignment flip rates (0.5-1% of activation
    // bits) cost a few tenths of a point, matching Fig. 11's "minor
    // decrease"; saturates so extreme settings stay plausible.
    return std::min(2.5, 60.0 * flip_rate);
}

AccuracyEntry
accuracyFor(ModelId model, DatasetId ds, double paft_flip_rate)
{
    AccuracyEntry e;
    // Reference accuracies (percent) per Fig. 11; DNN entries follow
    // the corresponding ANN counterparts, SNN entries the published
    // model results.
    switch (model) {
      case ModelId::VGG16:
        if (ds == DatasetId::CIFAR10) {
            e.dnn = 94.0;
            e.snnBitSparsity = 92.9;
        } else {
            e.dnn = 74.3;
            e.snnBitSparsity = 70.2;
        }
        break;
      case ModelId::ResNet18:
        if (ds == DatasetId::CIFAR10) {
            e.dnn = 95.6;
            e.snnBitSparsity = 94.1;
        } else {
            e.dnn = 77.9;
            e.snnBitSparsity = 74.2;
        }
        break;
      case ModelId::Spikformer:
        if (ds == DatasetId::CIFAR10) {
            e.dnn = 96.7;
            e.snnBitSparsity = 95.2;
        } else if (ds == DatasetId::CIFAR10DVS) {
            e.dnn = std::nullopt; // event data: DNN not applicable
            e.snnBitSparsity = 80.6;
        } else {
            e.dnn = 81.0;
            e.snnBitSparsity = 78.2;
        }
        break;
      case ModelId::SDT:
        if (ds == DatasetId::CIFAR10) {
            e.dnn = 96.7;
            e.snnBitSparsity = 95.6;
        } else if (ds == DatasetId::CIFAR10DVS) {
            e.dnn = std::nullopt;
            e.snnBitSparsity = 80.0;
        } else {
            e.dnn = 81.0;
            e.snnBitSparsity = 78.4;
        }
        break;
      case ModelId::SpikeBERT:
        e.dnn = (ds == DatasetId::SST2) ? 92.3 : 53.3;
        e.snnBitSparsity = (ds == DatasetId::SST2) ? 85.4 : 46.7;
        break;
      case ModelId::SpikingBERT:
        e.dnn = (ds == DatasetId::SST2) ? 92.3 : 84.5;
        e.snnBitSparsity = (ds == DatasetId::SST2) ? 88.2 : 77.1;
        break;
    }

    // Phi without PAFT is an exact re-encoding of the computation.
    e.phiNoPaft = e.snnBitSparsity;
    e.phiWithPaft =
        e.snnBitSparsity - paftAccuracyDropPp(paft_flip_rate);
    return e;
}

} // namespace phi
