/**
 * @file
 * Quantitative cluster metrics backing the t-SNE figures.
 *
 * Fig. 9a's claim ("training activations encompass test clusters") is
 * quantified as the total-variation distance between train and test
 * pattern-usage histograms; Fig. 9c's ("PAFT yields fewer, denser
 * clusters") as the effective cluster count and the mean Hamming
 * distance to the assigned pattern.
 */

#ifndef PHI_ANALYSIS_CLUSTER_METRICS_HH
#define PHI_ANALYSIS_CLUSTER_METRICS_HH

#include <vector>

#include "core/pattern.hh"
#include "numeric/binary_matrix.hh"

namespace phi
{

/** Cluster-quality summary of one partition's rows vs its patterns. */
struct ClusterMetrics
{
    /** Mean Hamming distance from rows to their assigned pattern
     *  (assigned rows only). */
    double meanDistance = 0;
    /** Fraction of rows with an assigned pattern. */
    double assignedFraction = 0;
    /** exp(entropy) of the pattern-usage distribution: the effective
     *  number of clusters in use. */
    double effectiveClusters = 0;
    /** Mean silhouette over assigned rows (Hamming distances to own
     *  vs nearest other pattern). */
    double silhouette = 0;
};

/** Compute cluster metrics of one partition. */
ClusterMetrics computeClusterMetrics(const BinaryMatrix& acts,
                                     size_t partition,
                                     const PatternSet& ps);

/** Pattern-usage histogram of one partition (index 0 = unassigned). */
std::vector<double> patternUsage(const BinaryMatrix& acts,
                                 size_t partition, const PatternSet& ps);

/**
 * Total-variation distance between two usage distributions in [0, 1]
 * (0 = identical distributions). Quantifies Fig. 9a's train/test
 * consistency.
 */
double totalVariation(const std::vector<double>& a,
                      const std::vector<double>& b);

} // namespace phi

#endif // PHI_ANALYSIS_CLUSTER_METRICS_HH
