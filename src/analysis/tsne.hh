/**
 * @file
 * Exact t-SNE (van der Maaten & Hinton, 2008), used to reproduce the
 * activation-visualisation figures (Fig. 1 and Fig. 9). O(N^2) — fine
 * for the few thousand activation rows the figures embed.
 */

#ifndef PHI_ANALYSIS_TSNE_HH
#define PHI_ANALYSIS_TSNE_HH

#include <cstdint>
#include <vector>

#include "numeric/binary_matrix.hh"

namespace phi
{

/** t-SNE hyperparameters. */
struct TsneConfig
{
    double perplexity = 30.0;
    int iterations = 400;
    double learningRate = 100.0;
    double earlyExaggeration = 12.0;
    int exaggerationIters = 100;
    double initialMomentum = 0.5;
    double finalMomentum = 0.8;
    int momentumSwitchIter = 200;
    uint64_t seed = 7;
};

/** A 2-D embedding point. */
struct Point2
{
    double x = 0;
    double y = 0;
};

/**
 * Embed points given a precomputed squared-distance matrix (row-major,
 * n x n). Returns n 2-D points.
 */
std::vector<Point2> tsneFromDistances(
    const std::vector<double>& sq_dist, size_t n,
    const TsneConfig& cfg = {});

/** Embed binary activation rows under squared Hamming distance. */
std::vector<Point2> tsneBinaryRows(const BinaryMatrix& rows,
                                   const TsneConfig& cfg = {});

/**
 * KL divergence of the final embedding (lower = better fit); exposed
 * so tests can assert the optimisation made progress.
 */
double tsneKlDivergence(const std::vector<double>& sq_dist, size_t n,
                        const std::vector<Point2>& embedding,
                        double perplexity = 30.0);

} // namespace phi

#endif // PHI_ANALYSIS_TSNE_HH
