#include "analysis/cluster_metrics.hh"

#include <cmath>

#include "core/decompose.hh"

namespace phi
{

ClusterMetrics
computeClusterMetrics(const BinaryMatrix& acts, size_t partition,
                      const PatternSet& ps)
{
    ClusterMetrics m;
    if (ps.empty() || acts.rows() == 0)
        return m;

    PatternAssigner assigner(ps);
    const size_t start = partition * static_cast<size_t>(ps.k());

    size_t assigned = 0;
    double dist_sum = 0;
    double silhouette_sum = 0;
    std::vector<double> usage(ps.size() + 1, 0.0);

    for (size_t r = 0; r < acts.rows(); ++r) {
        const uint64_t row = acts.extract(r, start, ps.k());
        const RowAssignment& a = assigner.assign(row);
        usage[a.patternId] += 1.0;
        if (a.patternId == 0)
            continue;
        ++assigned;
        const int own = a.nnz();
        dist_sum += own;

        // Nearest other pattern.
        int other = 65;
        for (size_t i = 0; i < ps.size(); ++i) {
            if (i + 1 == a.patternId)
                continue;
            other = std::min(
                other, hammingDistance(row, ps.patterns()[i]));
        }
        if (other < 65) {
            const double denom =
                std::max(static_cast<double>(std::max(own, other)),
                         1.0);
            silhouette_sum +=
                (static_cast<double>(other) - own) / denom;
        }
    }

    if (assigned > 0) {
        m.meanDistance = dist_sum / static_cast<double>(assigned);
        m.silhouette = silhouette_sum / static_cast<double>(assigned);
    }
    m.assignedFraction =
        static_cast<double>(assigned) / static_cast<double>(acts.rows());

    // Effective cluster count from assigned-pattern usage entropy.
    double total = 0;
    for (size_t i = 1; i < usage.size(); ++i)
        total += usage[i];
    if (total > 0) {
        double entropy = 0;
        for (size_t i = 1; i < usage.size(); ++i) {
            if (usage[i] <= 0)
                continue;
            const double pr = usage[i] / total;
            entropy -= pr * std::log(pr);
        }
        m.effectiveClusters = std::exp(entropy);
    }
    return m;
}

std::vector<double>
patternUsage(const BinaryMatrix& acts, size_t partition,
             const PatternSet& ps)
{
    std::vector<double> usage(ps.size() + 1, 0.0);
    if (acts.rows() == 0)
        return usage;
    PatternAssigner assigner(ps);
    const size_t start = partition * static_cast<size_t>(ps.k());
    for (size_t r = 0; r < acts.rows(); ++r) {
        const uint64_t row = acts.extract(r, start, ps.k());
        usage[assigner.assign(row).patternId] += 1.0;
    }
    const double total = static_cast<double>(acts.rows());
    for (auto& u : usage)
        u /= total;
    return usage;
}

double
totalVariation(const std::vector<double>& a, const std::vector<double>& b)
{
    phi_assert(a.size() == b.size(),
               "usage histograms must have equal size");
    double tv = 0;
    for (size_t i = 0; i < a.size(); ++i)
        tv += std::abs(a[i] - b[i]);
    return tv / 2.0;
}

} // namespace phi
