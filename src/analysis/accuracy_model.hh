/**
 * @file
 * Accuracy model reproducing Fig. 11.
 *
 * Reference accuracies per model/dataset are documented constants read
 * from the paper's figure (we do not ship trained checkpoints; see
 * DESIGN.md substitutions). The structural facts the figure conveys are
 * modelled exactly: DNNs lead on frame datasets and are inapplicable on
 * event data; Phi without PAFT is lossless (equals bit-sparsity
 * accuracy); PAFT costs a small, flip-rate-proportional amount.
 */

#ifndef PHI_ANALYSIS_ACCURACY_MODEL_HH
#define PHI_ANALYSIS_ACCURACY_MODEL_HH

#include <optional>

#include "snn/model_zoo.hh"

namespace phi
{

/** One Fig. 11 bar group. */
struct AccuracyEntry
{
    /** DNN counterpart; empty on event-driven datasets where a DNN is
     *  not applicable. */
    std::optional<double> dnn;
    double snnBitSparsity = 0; // trained SNN accuracy
    double phiNoPaft = 0;      // identical to SNN (lossless)
    double phiWithPaft = 0;    // after the fine-tuning trade-off
};

/**
 * Accuracy for a model/dataset at a given PAFT flip rate (fraction of
 * activation bits changed by alignment; 0 for the no-PAFT variant).
 */
AccuracyEntry accuracyFor(ModelId model, DatasetId ds,
                          double paft_flip_rate);

/** PAFT accuracy penalty in percentage points for a given flip rate. */
double paftAccuracyDropPp(double flip_rate);

} // namespace phi

#endif // PHI_ANALYSIS_ACCURACY_MODEL_HH
