/**
 * @file
 * im2col lowering of 2-D convolutions to GEMM, used both to derive the
 * GEMM shapes of convolutional SNN layers and to run real spiking
 * convolutions in the runnable network substrate.
 */

#ifndef PHI_NUMERIC_IM2COL_HH
#define PHI_NUMERIC_IM2COL_HH

#include <cstddef>

#include "numeric/binary_matrix.hh"
#include "numeric/matrix.hh"

namespace phi
{

/** Static description of a conv layer (square kernels, same H/W padding). */
struct ConvShape
{
    size_t inChannels = 1;
    size_t inHeight = 1;
    size_t inWidth = 1;
    size_t outChannels = 1;
    size_t kernel = 3;
    size_t stride = 1;
    size_t pad = 1;

    size_t outHeight() const
    {
        return (inHeight + 2 * pad - kernel) / stride + 1;
    }
    size_t outWidth() const
    {
        return (inWidth + 2 * pad - kernel) / stride + 1;
    }

    /** GEMM rows per timestep after lowering. */
    size_t gemmM() const { return outHeight() * outWidth(); }
    /** GEMM reduction dimension. */
    size_t gemmK() const { return inChannels * kernel * kernel; }
    /** GEMM output columns. */
    size_t gemmN() const { return outChannels; }
};

/**
 * Lower a binary feature map to the im2col activation matrix.
 *
 * @param fmap   (C*H*W) bits per timestep row; layout row r = timestep,
 *               column index = c*H*W + y*W + x.
 * @param shape  conv geometry.
 * @return matrix with (timesteps * outH * outW) rows and gemmK columns.
 */
BinaryMatrix im2colSpikes(const BinaryMatrix& fmap, const ConvShape& shape);

/** Float version for reference conv checks. */
Matrix<float> im2colDense(const Matrix<float>& fmap, const ConvShape& shape);

} // namespace phi

#endif // PHI_NUMERIC_IM2COL_HH
