/**
 * @file
 * Dense row-major matrix container used for weights, partial sums and
 * reference results throughout phi.
 */

#ifndef PHI_NUMERIC_MATRIX_HH
#define PHI_NUMERIC_MATRIX_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace phi
{

/**
 * Minimal dense matrix. Rows are contiguous; element access is
 * bounds-checked through phi_assert (active in all build types).
 */
template <typename T>
class Matrix
{
  public:
    Matrix() : nRows(0), nCols(0) {}

    Matrix(size_t rows, size_t cols, T init = T{})
        : nRows(rows), nCols(cols), buf(rows * cols, init)
    {}

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }
    size_t size() const { return buf.size(); }
    bool empty() const { return buf.empty(); }

    T&
    at(size_t r, size_t c)
    {
        phi_assert(r < nRows && c < nCols,
                   "matrix index (", r, ",", c, ") out of (",
                   nRows, ",", nCols, ")");
        return buf[r * nCols + c];
    }

    const T&
    at(size_t r, size_t c) const
    {
        phi_assert(r < nRows && c < nCols,
                   "matrix index (", r, ",", c, ") out of (",
                   nRows, ",", nCols, ")");
        return buf[r * nCols + c];
    }

    /** Unchecked access for hot loops. */
    T& operator()(size_t r, size_t c) { return buf[r * nCols + c]; }
    const T& operator()(size_t r, size_t c) const
    {
        return buf[r * nCols + c];
    }

    T* rowPtr(size_t r) { return buf.data() + r * nCols; }
    const T* rowPtr(size_t r) const { return buf.data() + r * nCols; }

    T* data() { return buf.data(); }
    const T* data() const { return buf.data(); }

    void
    fill(T value)
    {
        std::fill(buf.begin(), buf.end(), value);
    }

    bool
    operator==(const Matrix& other) const
    {
        return nRows == other.nRows && nCols == other.nCols &&
               buf == other.buf;
    }

  private:
    size_t nRows;
    size_t nCols;
    std::vector<T> buf;
};

} // namespace phi

#endif // PHI_NUMERIC_MATRIX_HH
