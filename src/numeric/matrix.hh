/**
 * @file
 * Dense row-major matrix container used for weights, partial sums and
 * reference results throughout phi.
 *
 * Storage is SIMD-ready: every row starts on a 64-byte boundary and is
 * padded to a whole number of cache lines (stride() elements apart).
 * Padding elements are zero on construction and are kept zero by every
 * container mutator; the SIMD kernels rely on this to run full-width
 * vector loops to the padded edge of a row (accumulating zeros into
 * zeros) instead of branching on tails. Code that writes rows through
 * rowPtr()/data() must stay within cols() elements per row.
 */

#ifndef PHI_NUMERIC_MATRIX_HH
#define PHI_NUMERIC_MATRIX_HH

#include <algorithm>
#include <cstddef>

#include "common/aligned.hh"
#include "common/bitops.hh"
#include "common/logging.hh"

namespace phi
{

/**
 * Minimal dense matrix. Rows are contiguous within a padded stride;
 * element access is bounds-checked through phi_assert (active in all
 * build types).
 */
template <typename T>
class Matrix
{
    static_assert(kSimdAlign % sizeof(T) == 0,
                  "element size must divide the SIMD alignment");

  public:
    Matrix() : nRows(0), nCols(0), rowStride(0) {}

    Matrix(size_t rows, size_t cols, T init = T{})
        : nRows(rows), nCols(cols), rowStride(paddedStride(cols)),
          buf(rows * rowStride, T{})
    {
        if (!(init == T{}))
            fill(init);
    }

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }

    /** Logical element count (excludes row padding). */
    size_t size() const { return nRows * nCols; }
    bool empty() const { return size() == 0; }

    /**
     * Elements between consecutive row starts; a multiple of the
     * 64-byte line so every row base is aligned. Rows own valid,
     * zero-filled storage in [cols(), stride()) — the padded span SIMD
     * loops may read and accumulate into freely.
     */
    size_t stride() const { return rowStride; }

    /** Alias of stride(): the padded logical row width. */
    size_t paddedCols() const { return rowStride; }

    T&
    at(size_t r, size_t c)
    {
        phi_assert(r < nRows && c < nCols,
                   "matrix index (", r, ",", c, ") out of (",
                   nRows, ",", nCols, ")");
        return buf[r * rowStride + c];
    }

    const T&
    at(size_t r, size_t c) const
    {
        phi_assert(r < nRows && c < nCols,
                   "matrix index (", r, ",", c, ") out of (",
                   nRows, ",", nCols, ")");
        return buf[r * rowStride + c];
    }

    /** Unchecked access for hot loops. */
    T& operator()(size_t r, size_t c) { return buf[r * rowStride + c]; }
    const T& operator()(size_t r, size_t c) const
    {
        return buf[r * rowStride + c];
    }

    /** 64-byte-aligned start of row r. */
    T* rowPtr(size_t r) { return buf.data() + r * rowStride; }
    const T* rowPtr(size_t r) const
    {
        return buf.data() + r * rowStride;
    }

    /** Raw padded buffer (rows() * stride() elements, row-major). */
    T* data() { return buf.data(); }
    const T* data() const { return buf.data(); }

    /** Set every logical element; padding stays zero. */
    void
    fill(T value)
    {
        for (size_t r = 0; r < nRows; ++r)
            std::fill(rowPtr(r), rowPtr(r) + nCols, value);
    }

    /** Logical equality: shape and the unpadded elements. */
    bool
    operator==(const Matrix& other) const
    {
        if (nRows != other.nRows || nCols != other.nCols)
            return false;
        for (size_t r = 0; r < nRows; ++r)
            if (!std::equal(rowPtr(r), rowPtr(r) + nCols,
                            other.rowPtr(r)))
                return false;
        return true;
    }

    /** Padded row width for a given logical width. */
    static size_t
    paddedStride(size_t cols)
    {
        return roundUp(cols, kSimdAlign / sizeof(T));
    }

    /**
     * A matrix whose storage (padding included) is left uninitialised.
     * Strictly for kernels that overwrite every row's full padded
     * stride (e.g. via the storeRows* SIMD primitives) before the
     * matrix is read, copied or compared — skipping the zero fill of
     * a buffer that is about to be fully written.
     */
    static Matrix
    uninitialized(size_t rows, size_t cols)
    {
        Matrix m;
        m.nRows = rows;
        m.nCols = cols;
        m.rowStride = paddedStride(cols);
        m.buf = AlignedUninitVec<T>(rows * m.rowStride);
        return m;
    }

  private:
    size_t nRows;
    size_t nCols;
    size_t rowStride;

    /** Default-init storage: every constructor except uninitialized()
     *  explicitly fills it (padding with zeros). */
    AlignedUninitVec<T> buf;
};

} // namespace phi

#endif // PHI_NUMERIC_MATRIX_HH
