/**
 * @file
 * AVX-512 backend of the SIMD kernel layer (requires F+BW+VL, so it
 * runs on every AVX-512 server core back to Skylake-X).
 *
 * Compiled with -mavx512f -mavx512bw -mavx512vl per-file; the body is guarded on
 * the matching macros so the file is an empty TU on compilers that
 * cannot target AVX-512. Executed only after runtime CPUID
 * verification of both features.
 *
 * 512-bit lanes: one 16 x int32 vector per 64-byte output cache line,
 * with masked epilogues instead of scalar tail loops. Popcounts use
 * the 512-bit nibble-LUT shuffle (BW) rather than VPOPCNTDQ so the
 * dispatch requirement stays broad. Float kernels use explicit
 * mul-then-add (never FMA) to stay bit-identical to scalar.
 */

#include "numeric/simd.hh"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)

#include <immintrin.h>

namespace phi::simd
{

namespace
{

inline __mmask16
tailMask16(size_t rem)
{
    return static_cast<__mmask16>((1u << rem) - 1);
}

void
avx512AddRowI16(int32_t* out, const int16_t* w, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512i wv = _mm512_cvtepi16_epi32(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(w + i)));
        _mm512_storeu_si512(
            out + i,
            _mm512_add_epi32(_mm512_loadu_si512(out + i), wv));
    }
    if (i < n) {
        const __mmask16 m = tailMask16(n - i);
        const __m512i wv = _mm512_cvtepi16_epi32(
            _mm256_maskz_loadu_epi16(m, w + i));
        _mm512_mask_storeu_epi32(
            out + i, m,
            _mm512_add_epi32(_mm512_maskz_loadu_epi32(m, out + i),
                             wv));
    }
}

void
avx512AddRowsI16(int32_t* out, const int16_t* const* rows, size_t m,
                 size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        // One output cache line held in a register across all m rows.
        __m512i acc = _mm512_loadu_si512(out + c);
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_add_epi32(
                acc, _mm512_cvtepi16_epi32(_mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(rows[j] +
                                                          c))));
        _mm512_storeu_si512(out + c, acc);
    }
    if (c < n) {
        const __mmask16 mask = tailMask16(n - c);
        __m512i acc = _mm512_maskz_loadu_epi32(mask, out + c);
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_add_epi32(
                acc, _mm512_cvtepi16_epi32(
                         _mm256_maskz_loadu_epi16(mask, rows[j] + c)));
        _mm512_mask_storeu_epi32(out + c, mask, acc);
    }
}

void
avx512AddRowsF32(float* out, const float* const* rows, size_t m,
                 size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m512 acc = _mm512_loadu_ps(out + c);
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_add_ps(acc, _mm512_loadu_ps(rows[j] + c));
        _mm512_storeu_ps(out + c, acc);
    }
    if (c < n) {
        const __mmask16 mask = tailMask16(n - c);
        __m512 acc = _mm512_maskz_loadu_ps(mask, out + c);
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_add_ps(acc,
                                _mm512_maskz_loadu_ps(mask, rows[j] + c));
        _mm512_mask_storeu_ps(out + c, mask, acc);
    }
}

void
avx512AddRowsI32(int32_t* out, const int32_t* const* rows, size_t m,
                 size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m512i acc = _mm512_loadu_si512(out + c);
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_add_epi32(acc,
                                   _mm512_loadu_si512(rows[j] + c));
        _mm512_storeu_si512(out + c, acc);
    }
    if (c < n) {
        const __mmask16 mask = tailMask16(n - c);
        __m512i acc = _mm512_maskz_loadu_epi32(mask, out + c);
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_add_epi32(
                acc, _mm512_maskz_loadu_epi32(mask, rows[j] + c));
        _mm512_mask_storeu_epi32(out + c, mask, acc);
    }
}

void
avx512StoreRowsI16(int32_t* out, const int16_t* const* rows, size_t m,
                   size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m512i acc = _mm512_setzero_si512();
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_add_epi32(
                acc, _mm512_cvtepi16_epi32(_mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(rows[j] +
                                                          c))));
        _mm512_storeu_si512(out + c, acc);
    }
    if (c < n) {
        const __mmask16 mask = tailMask16(n - c);
        __m512i acc = _mm512_setzero_si512();
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_add_epi32(
                acc, _mm512_cvtepi16_epi32(
                         _mm256_maskz_loadu_epi16(mask, rows[j] + c)));
        _mm512_mask_storeu_epi32(out + c, mask, acc);
    }
}

void
avx512StoreRowsI32(int32_t* out, const int32_t* const* rows, size_t m,
                   size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m512i acc = _mm512_setzero_si512();
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_add_epi32(acc,
                                   _mm512_loadu_si512(rows[j] + c));
        _mm512_storeu_si512(out + c, acc);
    }
    if (c < n) {
        const __mmask16 mask = tailMask16(n - c);
        __m512i acc = _mm512_setzero_si512();
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_add_epi32(
                acc, _mm512_maskz_loadu_epi32(mask, rows[j] + c));
        _mm512_mask_storeu_epi32(out + c, mask, acc);
    }
}

void
avx512FusedStoreAddSub(int32_t* out, const int32_t* const* base,
                       size_t nBase, const int16_t* const* pos,
                       size_t nPos, const int16_t* const* neg,
                       size_t nNeg, size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m512i acc = _mm512_setzero_si512();
        for (size_t j = 0; j < nBase; ++j)
            acc = _mm512_add_epi32(acc,
                                   _mm512_loadu_si512(base[j] + c));
        for (size_t j = 0; j < nPos; ++j)
            acc = _mm512_add_epi32(
                acc, _mm512_cvtepi16_epi32(_mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(pos[j] +
                                                          c))));
        for (size_t j = 0; j < nNeg; ++j)
            acc = _mm512_sub_epi32(
                acc, _mm512_cvtepi16_epi32(_mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(neg[j] +
                                                          c))));
        _mm512_storeu_si512(out + c, acc);
    }
    if (c < n) {
        const __mmask16 mask = tailMask16(n - c);
        __m512i acc = _mm512_setzero_si512();
        for (size_t j = 0; j < nBase; ++j)
            acc = _mm512_add_epi32(
                acc, _mm512_maskz_loadu_epi32(mask, base[j] + c));
        for (size_t j = 0; j < nPos; ++j)
            acc = _mm512_add_epi32(
                acc, _mm512_cvtepi16_epi32(
                         _mm256_maskz_loadu_epi16(mask, pos[j] + c)));
        for (size_t j = 0; j < nNeg; ++j)
            acc = _mm512_sub_epi32(
                acc, _mm512_cvtepi16_epi32(
                         _mm256_maskz_loadu_epi16(mask, neg[j] + c)));
        _mm512_mask_storeu_epi32(out + c, mask, acc);
    }
}

// 16 int32 lanes widened from each arena element width.
inline __m512i
load16(const int32_t* p)
{
    return _mm512_loadu_si512(p);
}

inline __m512i
load16(const int16_t* p)
{
    return _mm512_cvtepi16_epi32(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}

inline __m512i
load16(const int8_t* p)
{
    return _mm512_cvtepi8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

inline __m512i
load16Tail(__mmask16 mask, const int32_t* p)
{
    return _mm512_maskz_loadu_epi32(mask, p);
}

inline __m512i
load16Tail(__mmask16 mask, const int16_t* p)
{
    return _mm512_cvtepi16_epi32(_mm256_maskz_loadu_epi16(mask, p));
}

inline __m512i
load16Tail(__mmask16 mask, const int8_t* p)
{
    return _mm512_cvtepi8_epi32(_mm_maskz_loadu_epi8(mask, p));
}

void
avx512AddRowsI8(int32_t* out, const int8_t* const* rows, size_t m,
                size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m512i acc = _mm512_loadu_si512(out + c);
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_add_epi32(acc, load16(rows[j] + c));
        _mm512_storeu_si512(out + c, acc);
    }
    if (c < n) {
        const __mmask16 mask = tailMask16(n - c);
        __m512i acc = _mm512_maskz_loadu_epi32(mask, out + c);
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_add_epi32(acc, load16Tail(mask, rows[j] + c));
        _mm512_mask_storeu_epi32(out + c, mask, acc);
    }
}

/**
 * Arena-gather body shared by the three element widths. Unlike the
 * 16-lane-block kernels above, the main loop holds FOUR output cache
 * lines (64 columns) in independent accumulators and visits every
 * source row once per pass — the four add chains are independent, so
 * the sequential 64/128/256-byte row reads overlap instead of
 * serialising on one accumulator, and each arena row is streamed
 * front-to-back exactly once. That single-pass shape (not vector
 * width) is what converts the contiguous arena layout into a
 * bandwidth win.
 */
template <typename Elem>
void
avx512PwpGather(int32_t* out, const Elem* arena, const uint64_t* rowBase,
                const uint16_t* ids, size_t numTiles, size_t stride,
                const int16_t* const* pos, size_t nPos,
                const int16_t* const* neg, size_t nNeg, size_t n)
{
    size_t c = 0;
    for (; c + 64 <= n; c += 64) {
        __m512i a0 = _mm512_setzero_si512();
        __m512i a1 = _mm512_setzero_si512();
        __m512i a2 = _mm512_setzero_si512();
        __m512i a3 = _mm512_setzero_si512();
        for (size_t t = 0; t < numTiles; ++t) {
            const uint32_t id = ids[t];
            if (!id)
                continue;
            const Elem* p = arena + (rowBase[t] + id - 1) * stride + c;
            a0 = _mm512_add_epi32(a0, load16(p));
            a1 = _mm512_add_epi32(a1, load16(p + 16));
            a2 = _mm512_add_epi32(a2, load16(p + 32));
            a3 = _mm512_add_epi32(a3, load16(p + 48));
        }
        for (size_t j = 0; j < nPos; ++j) {
            const int16_t* p = pos[j] + c;
            a0 = _mm512_add_epi32(a0, load16(p));
            a1 = _mm512_add_epi32(a1, load16(p + 16));
            a2 = _mm512_add_epi32(a2, load16(p + 32));
            a3 = _mm512_add_epi32(a3, load16(p + 48));
        }
        for (size_t j = 0; j < nNeg; ++j) {
            const int16_t* p = neg[j] + c;
            a0 = _mm512_sub_epi32(a0, load16(p));
            a1 = _mm512_sub_epi32(a1, load16(p + 16));
            a2 = _mm512_sub_epi32(a2, load16(p + 32));
            a3 = _mm512_sub_epi32(a3, load16(p + 48));
        }
        _mm512_storeu_si512(out + c, a0);
        _mm512_storeu_si512(out + c + 16, a1);
        _mm512_storeu_si512(out + c + 32, a2);
        _mm512_storeu_si512(out + c + 48, a3);
    }
    for (; c + 16 <= n; c += 16) {
        __m512i acc = _mm512_setzero_si512();
        for (size_t t = 0; t < numTiles; ++t) {
            const uint32_t id = ids[t];
            if (!id)
                continue;
            acc = _mm512_add_epi32(
                acc,
                load16(arena + (rowBase[t] + id - 1) * stride + c));
        }
        for (size_t j = 0; j < nPos; ++j)
            acc = _mm512_add_epi32(acc, load16(pos[j] + c));
        for (size_t j = 0; j < nNeg; ++j)
            acc = _mm512_sub_epi32(acc, load16(neg[j] + c));
        _mm512_storeu_si512(out + c, acc);
    }
    if (c < n) {
        const __mmask16 mask = tailMask16(n - c);
        __m512i acc = _mm512_setzero_si512();
        for (size_t t = 0; t < numTiles; ++t) {
            const uint32_t id = ids[t];
            if (!id)
                continue;
            acc = _mm512_add_epi32(
                acc,
                load16Tail(mask,
                           arena + (rowBase[t] + id - 1) * stride + c));
        }
        for (size_t j = 0; j < nPos; ++j)
            acc = _mm512_add_epi32(acc, load16Tail(mask, pos[j] + c));
        for (size_t j = 0; j < nNeg; ++j)
            acc = _mm512_sub_epi32(acc, load16Tail(mask, neg[j] + c));
        _mm512_mask_storeu_epi32(out + c, mask, acc);
    }
}

void
avx512PwpGatherI32(int32_t* out, const int32_t* arena,
                   const uint64_t* rowBase, const uint16_t* ids,
                   size_t numTiles, size_t stride,
                   const int16_t* const* pos, size_t nPos,
                   const int16_t* const* neg, size_t nNeg, size_t n)
{
    avx512PwpGather(out, arena, rowBase, ids, numTiles, stride, pos,
                    nPos, neg, nNeg, n);
}

void
avx512PwpGatherI16(int32_t* out, const int16_t* arena,
                   const uint64_t* rowBase, const uint16_t* ids,
                   size_t numTiles, size_t stride,
                   const int16_t* const* pos, size_t nPos,
                   const int16_t* const* neg, size_t nNeg, size_t n)
{
    avx512PwpGather(out, arena, rowBase, ids, numTiles, stride, pos,
                    nPos, neg, nNeg, n);
}

void
avx512PwpGatherI8(int32_t* out, const int8_t* arena,
                  const uint64_t* rowBase, const uint16_t* ids,
                  size_t numTiles, size_t stride,
                  const int16_t* const* pos, size_t nPos,
                  const int16_t* const* neg, size_t nNeg, size_t n)
{
    avx512PwpGather(out, arena, rowBase, ids, numTiles, stride, pos,
                    nPos, neg, nNeg, n);
}

void
avx512SubRowsI16(int32_t* out, const int16_t* const* rows, size_t m,
                 size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m512i acc = _mm512_loadu_si512(out + c);
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_sub_epi32(
                acc, _mm512_cvtepi16_epi32(_mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(rows[j] +
                                                          c))));
        _mm512_storeu_si512(out + c, acc);
    }
    if (c < n) {
        const __mmask16 mask = tailMask16(n - c);
        __m512i acc = _mm512_maskz_loadu_epi32(mask, out + c);
        for (size_t j = 0; j < m; ++j)
            acc = _mm512_sub_epi32(
                acc, _mm512_cvtepi16_epi32(
                         _mm256_maskz_loadu_epi16(mask, rows[j] + c)));
        _mm512_mask_storeu_epi32(out + c, mask, acc);
    }
}

void
avx512SubRowI16(int32_t* out, const int16_t* w, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512i wv = _mm512_cvtepi16_epi32(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(w + i)));
        _mm512_storeu_si512(
            out + i,
            _mm512_sub_epi32(_mm512_loadu_si512(out + i), wv));
    }
    if (i < n) {
        const __mmask16 m = tailMask16(n - i);
        const __m512i wv = _mm512_cvtepi16_epi32(
            _mm256_maskz_loadu_epi16(m, w + i));
        _mm512_mask_storeu_epi32(
            out + i, m,
            _mm512_sub_epi32(_mm512_maskz_loadu_epi32(m, out + i),
                             wv));
    }
}

void
avx512AddRowI32(int32_t* out, const int32_t* src, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_si512(
            out + i,
            _mm512_add_epi32(_mm512_loadu_si512(out + i),
                             _mm512_loadu_si512(src + i)));
    if (i < n) {
        const __mmask16 m = tailMask16(n - i);
        _mm512_mask_storeu_epi32(
            out + i, m,
            _mm512_add_epi32(_mm512_maskz_loadu_epi32(m, out + i),
                             _mm512_maskz_loadu_epi32(m, src + i)));
    }
}

void
avx512AddRowF32(float* out, const float* src, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16)
        _mm512_storeu_ps(out + i,
                         _mm512_add_ps(_mm512_loadu_ps(out + i),
                                       _mm512_loadu_ps(src + i)));
    if (i < n) {
        const __mmask16 m = tailMask16(n - i);
        _mm512_mask_storeu_ps(
            out + i, m,
            _mm512_add_ps(_mm512_maskz_loadu_ps(m, out + i),
                          _mm512_maskz_loadu_ps(m, src + i)));
    }
}

void
avx512FmaRowF32(float* out, const float* src, float a, size_t n)
{
    const __m512 av = _mm512_set1_ps(a);
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m512 prod = _mm512_mul_ps(av, _mm512_loadu_ps(src + i));
        _mm512_storeu_ps(
            out + i, _mm512_add_ps(_mm512_loadu_ps(out + i), prod));
    }
    if (i < n) {
        const __mmask16 m = tailMask16(n - i);
        const __m512 prod =
            _mm512_mul_ps(av, _mm512_maskz_loadu_ps(m, src + i));
        _mm512_mask_storeu_ps(
            out + i, m,
            _mm512_add_ps(_mm512_maskz_loadu_ps(m, out + i), prod));
    }
}

/** Per-byte popcount of a 512-bit vector via the nibble LUT (BW). */
inline __m512i
popcountBytes(__m512i v)
{
    const __m512i lut = _mm512_broadcast_i32x4(_mm_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
    const __m512i low = _mm512_set1_epi8(0x0f);
    const __m512i lo = _mm512_and_si512(v, low);
    const __m512i hi =
        _mm512_and_si512(_mm512_srli_epi16(v, 4), low);
    return _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                           _mm512_shuffle_epi8(lut, hi));
}

uint64_t
avx512PopcountWords(const uint64_t* words, size_t n)
{
    __m512i acc = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i v = _mm512_loadu_si512(words + i);
        acc = _mm512_add_epi64(
            acc, _mm512_sad_epu8(popcountBytes(v),
                                 _mm512_setzero_si512()));
    }
    uint64_t total =
        static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
    for (; i < n; ++i)
        total += static_cast<uint64_t>(
            __builtin_popcountll(words[i]));
    return total;
}

void
avx512HammingScan(uint64_t row, const uint64_t* pats, size_t n,
                  uint8_t* dist)
{
    const __m512i rv =
        _mm512_set1_epi64(static_cast<long long>(row));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i x =
            _mm512_xor_si512(_mm512_loadu_si512(pats + i), rv);
        // Each 64-bit lane's byte-popcounts collapse via psadbw into
        // one count <= 64; narrow the eight lanes to bytes in order.
        const __m512i sums = _mm512_sad_epu8(popcountBytes(x),
                                             _mm512_setzero_si512());
        const __m128i bytes = _mm512_cvtepi64_epi8(sums);
        _mm_storeu_si64(dist + i, bytes);
    }
    for (; i < n; ++i)
        dist[i] = static_cast<uint8_t>(
            __builtin_popcountll(pats[i] ^ row));
}

constexpr Kernels kAvx512Kernels = {
    .isa = SimdIsa::Avx512,
    .name = "avx512",
    .addRowI16 = avx512AddRowI16,
    .addRowsI16 = avx512AddRowsI16,
    .addRowsF32 = avx512AddRowsF32,
    .addRowsI32 = avx512AddRowsI32,
    .storeRowsI16 = avx512StoreRowsI16,
    .storeRowsI32 = avx512StoreRowsI32,
    .fusedStoreAddSub = avx512FusedStoreAddSub,
    .subRowI16 = avx512SubRowI16,
    .subRowsI16 = avx512SubRowsI16,
    .addRowI32 = avx512AddRowI32,
    .addRowF32 = avx512AddRowF32,
    .fmaRowF32 = avx512FmaRowF32,
    .popcountWords = avx512PopcountWords,
    .hammingScan = avx512HammingScan,
    .addRowsI8 = avx512AddRowsI8,
    .pwpGatherI32 = avx512PwpGatherI32,
    .pwpGatherI16 = avx512PwpGatherI16,
    .pwpGatherI8 = avx512PwpGatherI8,
};

} // namespace

const Kernels&
avx512Kernels()
{
    return kAvx512Kernels;
}

} // namespace phi::simd

#endif // __AVX512F__ && __AVX512BW__
