/**
 * @file
 * Reference matrix products. These define ground truth for every sparsity
 * transformation and for the functional checks of the cycle simulator.
 *
 * The spike GEMMs run on the shared execution engine: row-parallel outer
 * loops over fixed-size row chunks with N/K cache blocking inside each
 * chunk. Per-output-element accumulation order is K-ascending regardless
 * of tiling or thread count, so results are bit-identical to the scalar
 * implementation for both the integer and the float path.
 */

#ifndef PHI_NUMERIC_GEMM_HH
#define PHI_NUMERIC_GEMM_HH

#include <cstdint>

#include "common/parallel.hh"
#include "numeric/binary_matrix.hh"
#include "numeric/matrix.hh"

namespace phi
{

/**
 * Binary-activation GEMM: out[m][n] = sum_k A[m][k] * W[k][n] where A is
 * 0/1. This is the SNN accumulate-only workload; with integer weights it
 * is exact, so it anchors losslessness tests.
 */
Matrix<int32_t> spikeGemm(const BinaryMatrix& acts,
                          const Matrix<int16_t>& weights,
                          const ExecutionConfig& exec = {});

/** Dense float GEMM used by the runnable SNN substrate. */
Matrix<float> denseGemm(const Matrix<float>& a, const Matrix<float>& b,
                        const ExecutionConfig& exec = {});

/**
 * Binary-activation GEMM against float weights (for the LIF network's
 * forward pass, where weights are float).
 */
Matrix<float> spikeGemmF(const BinaryMatrix& acts,
                         const Matrix<float>& weights,
                         const ExecutionConfig& exec = {});

} // namespace phi

#endif // PHI_NUMERIC_GEMM_HH
