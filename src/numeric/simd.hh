/**
 * @file
 * Portable SIMD kernel layer for the hot inner loops.
 *
 * Every data-parallel primitive the engine's kernels need — row
 * accumulation (the spike/PWP GEMM inner loop), word popcounts and the
 * pattern matcher's XOR+popcount scan — sits behind one Kernels vtable.
 * Backends (scalar always; AVX2/AVX-512 on x86-64, NEON on AArch64 when
 * the compiler supports them) are compiled in separate translation
 * units with per-file ISA flags and selected once at runtime via CPUID,
 * so a single binary runs the widest code path the host supports.
 *
 * Determinism contract: every backend computes the same per-element
 * operation in the same per-element order as the scalar implementation.
 * Integer accumulation is associative so lane order is free; the float
 * kernels vectorize across output columns only (each column's
 * K-accumulation order is unchanged) and never use FMA contraction, so
 * all backends produce bit-identical results — integer and float alike.
 *
 * Selection order for SimdIsa::Auto: the PHI_SIMD environment variable
 * ("scalar", "avx2", "avx512", "neon") when set and usable, otherwise
 * the widest backend the CPU reports. An explicit (non-Auto) request
 * for a backend that is unavailable falls back to Scalar rather than
 * executing illegal instructions.
 */

#ifndef PHI_NUMERIC_SIMD_HH
#define PHI_NUMERIC_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/isa.hh"

namespace phi::simd
{

/**
 * The kernel vtable: raw-pointer primitives over row spans. Pointers
 * need not be aligned (backends use unaligned loads), but rows padded
 * to the 64-byte layout of Matrix/BinaryMatrix let callers round spans
 * up to a full vector so the in-kernel tail loop never runs.
 */
struct Kernels
{
    /** Backend identity (never Auto). */
    SimdIsa isa;
    const char* name;

    /** out[i] += w[i] for i in [0, n), int16 widened to int32. */
    void (*addRowI16)(int32_t* out, const int16_t* w, size_t n);

    /**
     * out[i] += sum_j rows[j][i] for j in [0, m) ascending, i in
     * [0, n) — the multi-row form of addRowI16. Backends keep the
     * accumulators in registers across the j loop, so the output row
     * is loaded and stored once per column block instead of once per
     * source row; per output element the adds still happen in j order,
     * matching repeated addRowI16 calls bit-for-bit.
     */
    void (*addRowsI16)(int32_t* out, const int16_t* const* rows,
                       size_t m, size_t n);

    /** Multi-row accumulate, float flavour (same ordering contract). */
    void (*addRowsF32)(float* out, const float* const* rows, size_t m,
                       size_t n);

    /** Multi-row accumulate, int32 sources (the PWP-row reduction). */
    void (*addRowsI32)(int32_t* out, const int32_t* const* rows,
                       size_t m, size_t n);

    /**
     * Overwriting multi-row reduction: out[i] = sum_j rows[j][i]
     * (m == 0 zeroes the span). Lets callers skip pre-zeroing output
     * rows that are written exactly once — the first flush stores,
     * later flushes accumulate.
     */
    void (*storeRowsI16)(int32_t* out, const int16_t* const* rows,
                         size_t m, size_t n);

    /** Overwriting multi-row reduction, int32 sources. */
    void (*storeRowsI32)(int32_t* out, const int32_t* const* rows,
                         size_t m, size_t n);

    /**
     * Fused hierarchical row reduction — the phiGemm inner loop:
     * out[i] = sum_j base[j][i] + sum_j pos[j][i] - sum_j neg[j][i]
     * (int16 sources widened; all three sums may be empty, which
     * zeroes the span). One call holds the output block in registers
     * across every source row instead of storing between phases.
     */
    void (*fusedStoreAddSub)(int32_t* out, const int32_t* const* base,
                             size_t nBase, const int16_t* const* pos,
                             size_t nPos, const int16_t* const* neg,
                             size_t nNeg, size_t n);

    /** out[i] -= w[i] for i in [0, n), int16 widened to int32. */
    void (*subRowI16)(int32_t* out, const int16_t* w, size_t n);

    /** Multi-row subtract: out[i] -= sum_j rows[j][i] (j ascending). */
    void (*subRowsI16)(int32_t* out, const int16_t* const* rows,
                       size_t m, size_t n);

    /** out[i] += src[i] for i in [0, n). */
    void (*addRowI32)(int32_t* out, const int32_t* src, size_t n);

    /** out[i] += src[i] for i in [0, n). */
    void (*addRowF32)(float* out, const float* src, size_t n);

    /** out[i] += a * src[i] for i in [0, n); mul-then-add per element
     *  (never fused), matching the scalar rounding exactly. */
    void (*fmaRowF32)(float* out, const float* src, float a, size_t n);

    /** Total set bits across words[0..n). */
    uint64_t (*popcountWords)(const uint64_t* words, size_t n);

    /**
     * Pattern-matcher scan: dist[i] = popcount(row ^ pats[i]) for i in
     * [0, n). Distances fit in uint8_t because patterns are <= 64 bits.
     */
    void (*hammingScan)(uint64_t row, const uint64_t* pats, size_t n,
                        uint8_t* dist);

    /** Multi-row accumulate, int8 sources widened to int32 (the
     *  quantized-PWP flavour of addRowsI16; same j-order contract). */
    void (*addRowsI8)(int32_t* out, const int8_t* const* rows, size_t m,
                      size_t n);

    /**
     * Arena-gather serving kernel — the phiGemm inner loop over the
     * contiguous PWP arena. For each tile t in [0, numTiles) with
     * ids[t] != 0, the L1 source row lives at
     *   arena + (rowBase[t] + ids[t] - 1) * stride
     * and the kernel computes, overwriting out[0..n):
     *   out[i] = sum_t l1row_t[i] + sum_j pos[j][i] - sum_j neg[j][i]
     * (all sums may be empty, which zeroes the span). Locating the L1
     * rows inside the kernel — instead of having the caller build a
     * pointer array per output row — keeps the whole row's accumulators
     * in registers for a single pass over every source row, which is
     * where the arena layout's bandwidth win is realised. Tiles are
     * visited in ascending t, then pos, then neg, matching
     * fusedStoreAddSub ordering bit-for-bit.
     *
     * The I16/I8 variants read a quantized arena and widen; since the
     * arena is built only when quantization is exact, all three produce
     * identical int32 output.
     */
    void (*pwpGatherI32)(int32_t* out, const int32_t* arena,
                         const uint64_t* rowBase, const uint16_t* ids,
                         size_t numTiles, size_t stride,
                         const int16_t* const* pos, size_t nPos,
                         const int16_t* const* neg, size_t nNeg,
                         size_t n);
    void (*pwpGatherI16)(int32_t* out, const int16_t* arena,
                         const uint64_t* rowBase, const uint16_t* ids,
                         size_t numTiles, size_t stride,
                         const int16_t* const* pos, size_t nPos,
                         const int16_t* const* neg, size_t nNeg,
                         size_t n);
    void (*pwpGatherI8)(int32_t* out, const int8_t* arena,
                        const uint64_t* rowBase, const uint16_t* ids,
                        size_t numTiles, size_t stride,
                        const int16_t* const* pos, size_t nPos,
                        const int16_t* const* neg, size_t nNeg,
                        size_t n);
};

/**
 * Software-prefetch hint for an upcoming row-group: touch every cache
 * line of [p, p + bytes) with read intent. Backend-independent (the
 * builtin compiles to PREFETCHT0 on x86, PRFM on AArch64, and a no-op
 * where unsupported); purely a hint, never required for correctness.
 * The arena serving path issues it for the next row-group only when
 * the arena is too large to stay cache-resident — for small arenas the
 * extra instruction stream costs more than the hint saves.
 */
inline void
prefetchSpan(const void* p, size_t bytes)
{
#if defined(__GNUC__) || defined(__clang__)
    const char* c = static_cast<const char*>(p);
    for (size_t i = 0; i < bytes; i += 64)
        __builtin_prefetch(c + i, 0, 3);
#else
    (void)p;
    (void)bytes;
#endif
}

/**
 * Resolve a backend. Auto uses the cached PHI_SIMD/CPUID resolution;
 * explicit requests fall back to Scalar when unavailable. The returned
 * reference is to static storage and valid forever.
 */
const Kernels& kernels(SimdIsa isa = SimdIsa::Auto);

/** The backend Auto currently resolves to (after env override). */
SimdIsa activeIsa();

/** True when the backend is compiled in AND usable on this CPU. */
bool available(SimdIsa isa);

/** True when the backend was compiled into this binary. */
bool compiledIn(SimdIsa isa);

/** All backends available on this host, Scalar first. */
std::vector<SimdIsa> availableIsas();

// Typed dispatch helpers for templated kernels (spikeGemmImpl).
inline void
accumulateRow(const Kernels& k, int32_t* out, const int16_t* w, size_t n)
{
    k.addRowI16(out, w, n);
}

inline void
accumulateRow(const Kernels& k, float* out, const float* w, size_t n)
{
    k.addRowF32(out, w, n);
}

inline void
accumulateRows(const Kernels& k, int32_t* out,
               const int16_t* const* rows, size_t m, size_t n)
{
    k.addRowsI16(out, rows, m, n);
}

inline void
accumulateRows(const Kernels& k, float* out, const float* const* rows,
               size_t m, size_t n)
{
    k.addRowsF32(out, rows, m, n);
}

inline void
storeRows(const Kernels& k, int32_t* out, const int16_t* const* rows,
          size_t m, size_t n)
{
    k.storeRowsI16(out, rows, m, n);
}

inline void
storeRows(const Kernels& k, int32_t* out, const int32_t* const* rows,
          size_t m, size_t n)
{
    k.storeRowsI32(out, rows, m, n);
}

// Per-backend kernel tables, defined in their own translation units.
// Only referenced by the dispatcher when the matching PHI_HAVE_SIMD_*
// macro is set by the build.
const Kernels& scalarKernels();
const Kernels& avx2Kernels();
const Kernels& avx512Kernels();
const Kernels& neonKernels();

} // namespace phi::simd

#endif // PHI_NUMERIC_SIMD_HH
