/**
 * @file
 * Scalar reference backend and the runtime dispatcher.
 *
 * The scalar loops below are the semantic ground truth every vector
 * backend must reproduce bit-for-bit; tests/test_simd.cc pins that
 * property across all compiled backends. This file is compiled with
 * -ffp-contract=off so the float loops cannot be contracted into FMA
 * even under -march=native, keeping the reference rounding fixed.
 */

#include "numeric/simd.hh"

#include <bit>
#include <cstdlib>

#include "common/logging.hh"

namespace phi::simd
{

namespace
{

// ---- Scalar backend -------------------------------------------------

void
scalarAddRowI16(int32_t* out, const int16_t* w, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] += w[i];
}

void
scalarSubRowI16(int32_t* out, const int16_t* w, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] -= w[i];
}

void
scalarAddRowI32(int32_t* out, const int32_t* src, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] += src[i];
}

void
scalarAddRowF32(float* out, const float* src, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] += src[i];
}

void
scalarFmaRowF32(float* out, const float* src, float a, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] += a * src[i];
}

void
scalarAddRowsI16(int32_t* out, const int16_t* const* rows, size_t m,
                 size_t n)
{
    for (size_t j = 0; j < m; ++j)
        scalarAddRowI16(out, rows[j], n);
}

void
scalarAddRowsF32(float* out, const float* const* rows, size_t m,
                 size_t n)
{
    for (size_t j = 0; j < m; ++j)
        scalarAddRowF32(out, rows[j], n);
}

void
scalarAddRowsI32(int32_t* out, const int32_t* const* rows, size_t m,
                 size_t n)
{
    for (size_t j = 0; j < m; ++j)
        scalarAddRowI32(out, rows[j], n);
}

void
scalarSubRowsI16(int32_t* out, const int16_t* const* rows, size_t m,
                 size_t n)
{
    for (size_t j = 0; j < m; ++j)
        scalarSubRowI16(out, rows[j], n);
}

void
scalarStoreRowsI16(int32_t* out, const int16_t* const* rows, size_t m,
                   size_t n)
{
    if (m == 0) {
        for (size_t i = 0; i < n; ++i)
            out[i] = 0;
        return;
    }
    for (size_t i = 0; i < n; ++i)
        out[i] = rows[0][i];
    for (size_t j = 1; j < m; ++j)
        scalarAddRowI16(out, rows[j], n);
}

void
scalarStoreRowsI32(int32_t* out, const int32_t* const* rows, size_t m,
                   size_t n)
{
    if (m == 0) {
        for (size_t i = 0; i < n; ++i)
            out[i] = 0;
        return;
    }
    for (size_t i = 0; i < n; ++i)
        out[i] = rows[0][i];
    for (size_t j = 1; j < m; ++j)
        scalarAddRowI32(out, rows[j], n);
}

void
scalarFusedStoreAddSub(int32_t* out, const int32_t* const* base,
                       size_t nBase, const int16_t* const* pos,
                       size_t nPos, const int16_t* const* neg,
                       size_t nNeg, size_t n)
{
    scalarStoreRowsI32(out, base, nBase, n);
    scalarAddRowsI16(out, pos, nPos, n);
    scalarSubRowsI16(out, neg, nNeg, n);
}

void
scalarAddRowI8(int32_t* out, const int8_t* w, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] += w[i];
}

void
scalarAddRowsI8(int32_t* out, const int8_t* const* rows, size_t m,
                size_t n)
{
    for (size_t j = 0; j < m; ++j)
        scalarAddRowI8(out, rows[j], n);
}

/** Shared scalar body for the three arena element widths. */
template <typename Elem>
void
scalarPwpGather(int32_t* out, const Elem* arena, const uint64_t* rowBase,
                const uint16_t* ids, size_t numTiles, size_t stride,
                const int16_t* const* pos, size_t nPos,
                const int16_t* const* neg, size_t nNeg, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = 0;
    for (size_t t = 0; t < numTiles; ++t) {
        const uint32_t id = ids[t];
        if (!id)
            continue;
        const Elem* row = arena + (rowBase[t] + id - 1) * stride;
        for (size_t i = 0; i < n; ++i)
            out[i] += row[i];
    }
    scalarAddRowsI16(out, pos, nPos, n);
    scalarSubRowsI16(out, neg, nNeg, n);
}

void
scalarPwpGatherI32(int32_t* out, const int32_t* arena,
                   const uint64_t* rowBase, const uint16_t* ids,
                   size_t numTiles, size_t stride,
                   const int16_t* const* pos, size_t nPos,
                   const int16_t* const* neg, size_t nNeg, size_t n)
{
    scalarPwpGather(out, arena, rowBase, ids, numTiles, stride, pos,
                    nPos, neg, nNeg, n);
}

void
scalarPwpGatherI16(int32_t* out, const int16_t* arena,
                   const uint64_t* rowBase, const uint16_t* ids,
                   size_t numTiles, size_t stride,
                   const int16_t* const* pos, size_t nPos,
                   const int16_t* const* neg, size_t nNeg, size_t n)
{
    scalarPwpGather(out, arena, rowBase, ids, numTiles, stride, pos,
                    nPos, neg, nNeg, n);
}

void
scalarPwpGatherI8(int32_t* out, const int8_t* arena,
                  const uint64_t* rowBase, const uint16_t* ids,
                  size_t numTiles, size_t stride,
                  const int16_t* const* pos, size_t nPos,
                  const int16_t* const* neg, size_t nNeg, size_t n)
{
    scalarPwpGather(out, arena, rowBase, ids, numTiles, stride, pos,
                    nPos, neg, nNeg, n);
}

uint64_t
scalarPopcountWords(const uint64_t* words, size_t n)
{
    uint64_t total = 0;
    for (size_t i = 0; i < n; ++i)
        total += static_cast<uint64_t>(std::popcount(words[i]));
    return total;
}

void
scalarHammingScan(uint64_t row, const uint64_t* pats, size_t n,
                  uint8_t* dist)
{
    for (size_t i = 0; i < n; ++i)
        dist[i] = static_cast<uint8_t>(std::popcount(pats[i] ^ row));
}

constexpr Kernels kScalarKernels = {
    .isa = SimdIsa::Scalar,
    .name = "scalar",
    .addRowI16 = scalarAddRowI16,
    .addRowsI16 = scalarAddRowsI16,
    .addRowsF32 = scalarAddRowsF32,
    .addRowsI32 = scalarAddRowsI32,
    .storeRowsI16 = scalarStoreRowsI16,
    .storeRowsI32 = scalarStoreRowsI32,
    .fusedStoreAddSub = scalarFusedStoreAddSub,
    .subRowI16 = scalarSubRowI16,
    .subRowsI16 = scalarSubRowsI16,
    .addRowI32 = scalarAddRowI32,
    .addRowF32 = scalarAddRowF32,
    .fmaRowF32 = scalarFmaRowF32,
    .popcountWords = scalarPopcountWords,
    .hammingScan = scalarHammingScan,
    .addRowsI8 = scalarAddRowsI8,
    .pwpGatherI32 = scalarPwpGatherI32,
    .pwpGatherI16 = scalarPwpGatherI16,
    .pwpGatherI8 = scalarPwpGatherI8,
};

// ---- Runtime detection ----------------------------------------------

bool
cpuSupports(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Scalar:
        return true;
#if defined(__x86_64__) || defined(_M_X64)
      case SimdIsa::Avx2:
        return __builtin_cpu_supports("avx2") != 0;
      case SimdIsa::Avx512:
        return __builtin_cpu_supports("avx512f") != 0 &&
               __builtin_cpu_supports("avx512bw") != 0 &&
               __builtin_cpu_supports("avx512vl") != 0;
#endif
#if defined(__aarch64__)
      case SimdIsa::Neon:
        return true; // NEON is architecturally baseline on AArch64.
#endif
      default:
        return false;
    }
}

SimdIsa
detectBest()
{
    for (SimdIsa isa :
         {SimdIsa::Avx512, SimdIsa::Avx2, SimdIsa::Neon})
        if (available(isa))
            return isa;
    return SimdIsa::Scalar;
}

/** PHI_SIMD override or CPUID pick; resolved once per process. */
SimdIsa
resolveAuto()
{
    static const SimdIsa resolved = [] {
        if (const char* env = std::getenv("PHI_SIMD")) {
            const auto parsed = parseSimdIsa(env);
            if (!parsed) {
                phi_warn("PHI_SIMD='", env,
                         "' is not a known backend; using auto "
                         "detection");
            } else if (*parsed != SimdIsa::Auto) {
                if (available(*parsed))
                    return *parsed;
                phi_warn("PHI_SIMD=", env,
                         " is not available on this host/build; "
                         "using auto detection");
            }
        }
        return detectBest();
    }();
    return resolved;
}

} // namespace

const Kernels&
scalarKernels()
{
    return kScalarKernels;
}

bool
compiledIn(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Scalar:
        return true;
#ifdef PHI_HAVE_SIMD_AVX2
      case SimdIsa::Avx2:
        return true;
#endif
#ifdef PHI_HAVE_SIMD_AVX512
      case SimdIsa::Avx512:
        return true;
#endif
#ifdef PHI_HAVE_SIMD_NEON
      case SimdIsa::Neon:
        return true;
#endif
      default:
        return false;
    }
}

bool
available(SimdIsa isa)
{
    return compiledIn(isa) && cpuSupports(isa);
}

std::vector<SimdIsa>
availableIsas()
{
    std::vector<SimdIsa> out{SimdIsa::Scalar};
    for (SimdIsa isa : {SimdIsa::Avx2, SimdIsa::Avx512, SimdIsa::Neon})
        if (available(isa))
            out.push_back(isa);
    return out;
}

SimdIsa
activeIsa()
{
    return resolveAuto();
}

const Kernels&
kernels(SimdIsa isa)
{
    if (isa == SimdIsa::Auto)
        isa = resolveAuto();
    switch (isa) {
#ifdef PHI_HAVE_SIMD_AVX2
      case SimdIsa::Avx2:
        if (cpuSupports(SimdIsa::Avx2))
            return avx2Kernels();
        break;
#endif
#ifdef PHI_HAVE_SIMD_AVX512
      case SimdIsa::Avx512:
        if (cpuSupports(SimdIsa::Avx512))
            return avx512Kernels();
        break;
#endif
#ifdef PHI_HAVE_SIMD_NEON
      case SimdIsa::Neon:
        return neonKernels();
#endif
      default:
        break;
    }
    return kScalarKernels;
}

} // namespace phi::simd
