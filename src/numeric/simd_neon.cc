/**
 * @file
 * NEON backend of the SIMD kernel layer (AArch64, where NEON is
 * architecturally baseline — no runtime feature check needed).
 *
 * 128-bit lanes, unrolled to an 8-element step. Popcounts use vcnt on
 * bytes with pairwise widening adds. Float kernels use explicit
 * mul-then-add (vmulq + vaddq, never vfma) to stay bit-identical to
 * the scalar reference.
 */

#include "numeric/simd.hh"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace phi::simd
{

namespace
{

void
neonAddRowI16(int32_t* out, const int16_t* w, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const int16x8_t wv = vld1q_s16(w + i);
        vst1q_s32(out + i,
                  vaddw_s16(vld1q_s32(out + i), vget_low_s16(wv)));
        vst1q_s32(out + i + 4,
                  vaddw_high_s16(vld1q_s32(out + i + 4), wv));
    }
    for (; i < n; ++i)
        out[i] += w[i];
}

void
neonAddRowsI16(int32_t* out, const int16_t* const* rows, size_t m,
               size_t n)
{
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        // Two output vectors held in registers across all m rows.
        int32x4_t a0 = vld1q_s32(out + c);
        int32x4_t a1 = vld1q_s32(out + c + 4);
        for (size_t j = 0; j < m; ++j) {
            const int16x8_t wv = vld1q_s16(rows[j] + c);
            a0 = vaddw_s16(a0, vget_low_s16(wv));
            a1 = vaddw_high_s16(a1, wv);
        }
        vst1q_s32(out + c, a0);
        vst1q_s32(out + c + 4, a1);
    }
    for (; c < n; ++c) {
        int32_t acc = out[c];
        for (size_t j = 0; j < m; ++j)
            acc += rows[j][c];
        out[c] = acc;
    }
}

void
neonAddRowsF32(float* out, const float* const* rows, size_t m, size_t n)
{
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        float32x4_t a0 = vld1q_f32(out + c);
        float32x4_t a1 = vld1q_f32(out + c + 4);
        for (size_t j = 0; j < m; ++j) {
            a0 = vaddq_f32(a0, vld1q_f32(rows[j] + c));
            a1 = vaddq_f32(a1, vld1q_f32(rows[j] + c + 4));
        }
        vst1q_f32(out + c, a0);
        vst1q_f32(out + c + 4, a1);
    }
    for (; c < n; ++c) {
        float acc = out[c];
        for (size_t j = 0; j < m; ++j)
            acc += rows[j][c];
        out[c] = acc;
    }
}

void
neonAddRowsI32(int32_t* out, const int32_t* const* rows, size_t m,
               size_t n)
{
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        int32x4_t a0 = vld1q_s32(out + c);
        int32x4_t a1 = vld1q_s32(out + c + 4);
        for (size_t j = 0; j < m; ++j) {
            a0 = vaddq_s32(a0, vld1q_s32(rows[j] + c));
            a1 = vaddq_s32(a1, vld1q_s32(rows[j] + c + 4));
        }
        vst1q_s32(out + c, a0);
        vst1q_s32(out + c + 4, a1);
    }
    for (; c < n; ++c) {
        int32_t acc = out[c];
        for (size_t j = 0; j < m; ++j)
            acc += rows[j][c];
        out[c] = acc;
    }
}

void
neonStoreRowsI16(int32_t* out, const int16_t* const* rows, size_t m,
                 size_t n)
{
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        int32x4_t a0 = vdupq_n_s32(0);
        int32x4_t a1 = vdupq_n_s32(0);
        for (size_t j = 0; j < m; ++j) {
            const int16x8_t wv = vld1q_s16(rows[j] + c);
            a0 = vaddw_s16(a0, vget_low_s16(wv));
            a1 = vaddw_high_s16(a1, wv);
        }
        vst1q_s32(out + c, a0);
        vst1q_s32(out + c + 4, a1);
    }
    for (; c < n; ++c) {
        int32_t acc = 0;
        for (size_t j = 0; j < m; ++j)
            acc += rows[j][c];
        out[c] = acc;
    }
}

void
neonStoreRowsI32(int32_t* out, const int32_t* const* rows, size_t m,
                 size_t n)
{
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        int32x4_t a0 = vdupq_n_s32(0);
        int32x4_t a1 = vdupq_n_s32(0);
        for (size_t j = 0; j < m; ++j) {
            a0 = vaddq_s32(a0, vld1q_s32(rows[j] + c));
            a1 = vaddq_s32(a1, vld1q_s32(rows[j] + c + 4));
        }
        vst1q_s32(out + c, a0);
        vst1q_s32(out + c + 4, a1);
    }
    for (; c < n; ++c) {
        int32_t acc = 0;
        for (size_t j = 0; j < m; ++j)
            acc += rows[j][c];
        out[c] = acc;
    }
}

void
neonFusedStoreAddSub(int32_t* out, const int32_t* const* base,
                     size_t nBase, const int16_t* const* pos,
                     size_t nPos, const int16_t* const* neg,
                     size_t nNeg, size_t n)
{
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        int32x4_t a0 = vdupq_n_s32(0);
        int32x4_t a1 = vdupq_n_s32(0);
        for (size_t j = 0; j < nBase; ++j) {
            a0 = vaddq_s32(a0, vld1q_s32(base[j] + c));
            a1 = vaddq_s32(a1, vld1q_s32(base[j] + c + 4));
        }
        for (size_t j = 0; j < nPos; ++j) {
            const int16x8_t wv = vld1q_s16(pos[j] + c);
            a0 = vaddw_s16(a0, vget_low_s16(wv));
            a1 = vaddw_high_s16(a1, wv);
        }
        for (size_t j = 0; j < nNeg; ++j) {
            const int16x8_t wv = vld1q_s16(neg[j] + c);
            a0 = vsubw_s16(a0, vget_low_s16(wv));
            a1 = vsubw_high_s16(a1, wv);
        }
        vst1q_s32(out + c, a0);
        vst1q_s32(out + c + 4, a1);
    }
    for (; c < n; ++c) {
        int32_t acc = 0;
        for (size_t j = 0; j < nBase; ++j)
            acc += base[j][c];
        for (size_t j = 0; j < nPos; ++j)
            acc += pos[j][c];
        for (size_t j = 0; j < nNeg; ++j)
            acc -= neg[j][c];
        out[c] = acc;
    }
}

// Widening accumulate of 8 lanes from each arena element width into
// two int32x4 accumulators.
inline void
accum8(int32x4_t& a0, int32x4_t& a1, const int32_t* p)
{
    a0 = vaddq_s32(a0, vld1q_s32(p));
    a1 = vaddq_s32(a1, vld1q_s32(p + 4));
}

inline void
accum8(int32x4_t& a0, int32x4_t& a1, const int16_t* p)
{
    const int16x8_t wv = vld1q_s16(p);
    a0 = vaddw_s16(a0, vget_low_s16(wv));
    a1 = vaddw_high_s16(a1, wv);
}

inline void
accum8(int32x4_t& a0, int32x4_t& a1, const int8_t* p)
{
    const int16x8_t wv = vmovl_s8(vld1_s8(p));
    a0 = vaddw_s16(a0, vget_low_s16(wv));
    a1 = vaddw_high_s16(a1, wv);
}

void
neonAddRowsI8(int32_t* out, const int8_t* const* rows, size_t m,
              size_t n)
{
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        int32x4_t a0 = vld1q_s32(out + c);
        int32x4_t a1 = vld1q_s32(out + c + 4);
        for (size_t j = 0; j < m; ++j)
            accum8(a0, a1, rows[j] + c);
        vst1q_s32(out + c, a0);
        vst1q_s32(out + c + 4, a1);
    }
    for (; c < n; ++c) {
        int32_t acc = out[c];
        for (size_t j = 0; j < m; ++j)
            acc += rows[j][c];
        out[c] = acc;
    }
}

/**
 * Arena-gather body shared by the three element widths. The main loop
 * holds four output vector blocks (16 columns) in independent
 * accumulators and visits every source row once per pass — see the
 * avx512 counterpart for the rationale.
 */
template <typename Elem>
void
neonPwpGather(int32_t* out, const Elem* arena, const uint64_t* rowBase,
              const uint16_t* ids, size_t numTiles, size_t stride,
              const int16_t* const* pos, size_t nPos,
              const int16_t* const* neg, size_t nNeg, size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        int32x4_t a0 = vdupq_n_s32(0);
        int32x4_t a1 = vdupq_n_s32(0);
        int32x4_t a2 = vdupq_n_s32(0);
        int32x4_t a3 = vdupq_n_s32(0);
        for (size_t t = 0; t < numTiles; ++t) {
            const uint32_t id = ids[t];
            if (!id)
                continue;
            const Elem* p = arena + (rowBase[t] + id - 1) * stride + c;
            accum8(a0, a1, p);
            accum8(a2, a3, p + 8);
        }
        for (size_t j = 0; j < nPos; ++j) {
            const int16_t* p = pos[j] + c;
            accum8(a0, a1, p);
            accum8(a2, a3, p + 8);
        }
        for (size_t j = 0; j < nNeg; ++j) {
            const int16_t* p = neg[j] + c;
            const int16x8_t lo = vld1q_s16(p);
            const int16x8_t hi = vld1q_s16(p + 8);
            a0 = vsubw_s16(a0, vget_low_s16(lo));
            a1 = vsubw_high_s16(a1, lo);
            a2 = vsubw_s16(a2, vget_low_s16(hi));
            a3 = vsubw_high_s16(a3, hi);
        }
        vst1q_s32(out + c, a0);
        vst1q_s32(out + c + 4, a1);
        vst1q_s32(out + c + 8, a2);
        vst1q_s32(out + c + 12, a3);
    }
    for (; c + 8 <= n; c += 8) {
        int32x4_t a0 = vdupq_n_s32(0);
        int32x4_t a1 = vdupq_n_s32(0);
        for (size_t t = 0; t < numTiles; ++t) {
            const uint32_t id = ids[t];
            if (!id)
                continue;
            accum8(a0, a1, arena + (rowBase[t] + id - 1) * stride + c);
        }
        for (size_t j = 0; j < nPos; ++j)
            accum8(a0, a1, pos[j] + c);
        for (size_t j = 0; j < nNeg; ++j) {
            const int16x8_t wv = vld1q_s16(neg[j] + c);
            a0 = vsubw_s16(a0, vget_low_s16(wv));
            a1 = vsubw_high_s16(a1, wv);
        }
        vst1q_s32(out + c, a0);
        vst1q_s32(out + c + 4, a1);
    }
    for (; c < n; ++c) {
        int32_t acc = 0;
        for (size_t t = 0; t < numTiles; ++t) {
            const uint32_t id = ids[t];
            if (!id)
                continue;
            acc += arena[(rowBase[t] + id - 1) * stride + c];
        }
        for (size_t j = 0; j < nPos; ++j)
            acc += pos[j][c];
        for (size_t j = 0; j < nNeg; ++j)
            acc -= neg[j][c];
        out[c] = acc;
    }
}

void
neonPwpGatherI32(int32_t* out, const int32_t* arena,
                 const uint64_t* rowBase, const uint16_t* ids,
                 size_t numTiles, size_t stride,
                 const int16_t* const* pos, size_t nPos,
                 const int16_t* const* neg, size_t nNeg, size_t n)
{
    neonPwpGather(out, arena, rowBase, ids, numTiles, stride, pos, nPos,
                  neg, nNeg, n);
}

void
neonPwpGatherI16(int32_t* out, const int16_t* arena,
                 const uint64_t* rowBase, const uint16_t* ids,
                 size_t numTiles, size_t stride,
                 const int16_t* const* pos, size_t nPos,
                 const int16_t* const* neg, size_t nNeg, size_t n)
{
    neonPwpGather(out, arena, rowBase, ids, numTiles, stride, pos, nPos,
                  neg, nNeg, n);
}

void
neonPwpGatherI8(int32_t* out, const int8_t* arena,
                const uint64_t* rowBase, const uint16_t* ids,
                size_t numTiles, size_t stride,
                const int16_t* const* pos, size_t nPos,
                const int16_t* const* neg, size_t nNeg, size_t n)
{
    neonPwpGather(out, arena, rowBase, ids, numTiles, stride, pos, nPos,
                  neg, nNeg, n);
}

void
neonSubRowsI16(int32_t* out, const int16_t* const* rows, size_t m,
               size_t n)
{
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        int32x4_t a0 = vld1q_s32(out + c);
        int32x4_t a1 = vld1q_s32(out + c + 4);
        for (size_t j = 0; j < m; ++j) {
            const int16x8_t wv = vld1q_s16(rows[j] + c);
            a0 = vsubw_s16(a0, vget_low_s16(wv));
            a1 = vsubw_high_s16(a1, wv);
        }
        vst1q_s32(out + c, a0);
        vst1q_s32(out + c + 4, a1);
    }
    for (; c < n; ++c) {
        int32_t acc = out[c];
        for (size_t j = 0; j < m; ++j)
            acc -= rows[j][c];
        out[c] = acc;
    }
}

void
neonSubRowI16(int32_t* out, const int16_t* w, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const int16x8_t wv = vld1q_s16(w + i);
        vst1q_s32(out + i,
                  vsubw_s16(vld1q_s32(out + i), vget_low_s16(wv)));
        vst1q_s32(out + i + 4,
                  vsubw_high_s16(vld1q_s32(out + i + 4), wv));
    }
    for (; i < n; ++i)
        out[i] -= w[i];
}

void
neonAddRowI32(int32_t* out, const int32_t* src, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        vst1q_s32(out + i,
                  vaddq_s32(vld1q_s32(out + i), vld1q_s32(src + i)));
        vst1q_s32(out + i + 4, vaddq_s32(vld1q_s32(out + i + 4),
                                         vld1q_s32(src + i + 4)));
    }
    for (; i < n; ++i)
        out[i] += src[i];
}

void
neonAddRowF32(float* out, const float* src, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        vst1q_f32(out + i,
                  vaddq_f32(vld1q_f32(out + i), vld1q_f32(src + i)));
        vst1q_f32(out + i + 4, vaddq_f32(vld1q_f32(out + i + 4),
                                         vld1q_f32(src + i + 4)));
    }
    for (; i < n; ++i)
        out[i] += src[i];
}

void
neonFmaRowF32(float* out, const float* src, float a, size_t n)
{
    const float32x4_t av = vdupq_n_f32(a);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t prod = vmulq_f32(av, vld1q_f32(src + i));
        vst1q_f32(out + i, vaddq_f32(vld1q_f32(out + i), prod));
    }
    for (; i < n; ++i)
        out[i] += a * src[i];
}

uint64_t
neonPopcountWords(const uint64_t* words, size_t n)
{
    uint64_t total = 0;
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint8x16_t v =
            vreinterpretq_u8_u64(vld1q_u64(words + i));
        total += vaddlvq_u8(vcntq_u8(v));
    }
    for (; i < n; ++i)
        total += static_cast<uint64_t>(
            __builtin_popcountll(words[i]));
    return total;
}

void
neonHammingScan(uint64_t row, const uint64_t* pats, size_t n,
                uint8_t* dist)
{
    const uint64x2_t rv = vdupq_n_u64(row);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const uint64x2_t x = veorq_u64(vld1q_u64(pats + i), rv);
        const uint8x16_t cnt = vcntq_u8(vreinterpretq_u8_u64(x));
        // Sum each 8-byte half independently: lane popcounts <= 64.
        const uint64x2_t sums =
            vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt)));
        dist[i] = static_cast<uint8_t>(vgetq_lane_u64(sums, 0));
        dist[i + 1] = static_cast<uint8_t>(vgetq_lane_u64(sums, 1));
    }
    for (; i < n; ++i)
        dist[i] = static_cast<uint8_t>(
            __builtin_popcountll(pats[i] ^ row));
}

constexpr Kernels kNeonKernels = {
    .isa = SimdIsa::Neon,
    .name = "neon",
    .addRowI16 = neonAddRowI16,
    .addRowsI16 = neonAddRowsI16,
    .addRowsF32 = neonAddRowsF32,
    .addRowsI32 = neonAddRowsI32,
    .storeRowsI16 = neonStoreRowsI16,
    .storeRowsI32 = neonStoreRowsI32,
    .fusedStoreAddSub = neonFusedStoreAddSub,
    .subRowI16 = neonSubRowI16,
    .subRowsI16 = neonSubRowsI16,
    .addRowI32 = neonAddRowI32,
    .addRowF32 = neonAddRowF32,
    .fmaRowF32 = neonFmaRowF32,
    .popcountWords = neonPopcountWords,
    .hammingScan = neonHammingScan,
    .addRowsI8 = neonAddRowsI8,
    .pwpGatherI32 = neonPwpGatherI32,
    .pwpGatherI16 = neonPwpGatherI16,
    .pwpGatherI8 = neonPwpGatherI8,
};

} // namespace

const Kernels&
neonKernels()
{
    return kNeonKernels;
}

} // namespace phi::simd

#endif // __aarch64__
