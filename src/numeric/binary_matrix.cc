#include "numeric/binary_matrix.hh"

#include "common/bitops.hh"
#include "common/rng.hh"
#include "numeric/simd.hh"

namespace phi
{

namespace
{

/** Words per row rounded to a whole 64-byte cache line. */
size_t
paddedWordStride(size_t wordsPerRow)
{
    return roundUp(wordsPerRow, kSimdAlign / sizeof(uint64_t));
}

} // namespace

BinaryMatrix::BinaryMatrix(size_t rows, size_t cols)
    : nRows(rows), nCols(cols),
      wordsPerRow(ceilDiv(cols, static_cast<size_t>(64))),
      wordStride(paddedWordStride(wordsPerRow)),
      words(rows * wordStride, 0)
{
}

bool
BinaryMatrix::get(size_t r, size_t c) const
{
    phi_assert(r < nRows && c < nCols, "bit index (", r, ",", c,
               ") out of (", nRows, ",", nCols, ")");
    return (words[r * wordStride + c / 64] >> (c % 64)) & 1;
}

void
BinaryMatrix::set(size_t r, size_t c, bool v)
{
    phi_assert(r < nRows && c < nCols, "bit index (", r, ",", c,
               ") out of (", nRows, ",", nCols, ")");
    uint64_t& w = words[r * wordStride + c / 64];
    uint64_t mask = 1ull << (c % 64);
    if (v)
        w |= mask;
    else
        w &= ~mask;
}

uint64_t
BinaryMatrix::extract(size_t r, size_t start, int len) const
{
    phi_assert(r < nRows, "row ", r, " out of ", nRows);
    phi_assert(len >= 1 && len <= 64, "extract length must be in [1,64]");
    if (start >= nCols)
        return 0;

    const uint64_t* row = rowWords(r);
    size_t w0 = start / 64;
    int off = static_cast<int>(start % 64);
    uint64_t lo = row[w0] >> off;
    if (off != 0 && w0 + 1 < wordsPerRow)
        lo |= row[w0 + 1] << (64 - off);

    // Clip to both the requested length and the matrix edge.
    int avail = static_cast<int>(std::min<size_t>(len, nCols - start));
    return lo & lowMask(avail);
}

void
BinaryMatrix::deposit(size_t r, size_t start, int len, uint64_t value)
{
    phi_assert(len >= 1 && len <= 64, "deposit length must be in [1,64]");
    for (int i = 0; i < len; ++i) {
        size_t c = start + i;
        if (c >= nCols)
            break;
        set(r, c, (value >> i) & 1);
    }
}

uint64_t
BinaryMatrix::tailMask() const
{
    const int rem = static_cast<int>(nCols % 64);
    return rem == 0 ? ~0ull : lowMask(rem);
}

bool
BinaryMatrix::tailBitsClear() const
{
    if (wordsPerRow == 0)
        return true;
    const uint64_t invalid = ~tailMask();
    for (size_t r = 0; r < nRows; ++r) {
        const uint64_t* row = rowWords(r);
        if (row[wordsPerRow - 1] & invalid)
            return false;
        for (size_t w = wordsPerRow; w < wordStride; ++w)
            if (row[w] != 0)
                return false;
    }
    return true;
}

size_t
BinaryMatrix::popcountRow(size_t r) const
{
    phi_assert(r < nRows, "row ", r, " out of ", nRows);
    // Padding words are zero, so counting the whole padded row is
    // branch-free and exact.
    return static_cast<size_t>(
        simd::kernels().popcountWords(rowWords(r), wordStride));
}

size_t
BinaryMatrix::popcount() const
{
    return static_cast<size_t>(
        simd::kernels().popcountWords(words.data(), words.size()));
}

double
BinaryMatrix::density() const
{
    if (nRows == 0 || nCols == 0)
        return 0.0;
    return static_cast<double>(popcount()) /
           static_cast<double>(nRows * nCols);
}

BinaryMatrix
BinaryMatrix::fromDense(const Matrix<int>& dense)
{
    BinaryMatrix m(dense.rows(), dense.cols());
    for (size_t r = 0; r < dense.rows(); ++r)
        for (size_t c = 0; c < dense.cols(); ++c)
            if (dense(r, c) != 0)
                m.set(r, c, true);
    return m;
}

Matrix<int>
BinaryMatrix::toDense() const
{
    Matrix<int> dense(nRows, nCols, 0);
    for (size_t r = 0; r < nRows; ++r)
        for (size_t c = 0; c < nCols; ++c)
            dense(r, c) = get(r, c) ? 1 : 0;
    return dense;
}

BinaryMatrix
BinaryMatrix::random(size_t rows, size_t cols, double density, Rng& rng)
{
    BinaryMatrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            if (rng.bernoulli(density))
                m.set(r, c, true);
    return m;
}

} // namespace phi
