#include "numeric/im2col.hh"

namespace phi
{

BinaryMatrix
im2colSpikes(const BinaryMatrix& fmap, const ConvShape& s)
{
    phi_assert(fmap.cols() == s.inChannels * s.inHeight * s.inWidth,
               "feature map width ", fmap.cols(),
               " does not match conv shape");
    const size_t t_steps = fmap.rows();
    const size_t oh = s.outHeight();
    const size_t ow = s.outWidth();
    BinaryMatrix out(t_steps * oh * ow, s.gemmK());

    for (size_t t = 0; t < t_steps; ++t) {
        for (size_t oy = 0; oy < oh; ++oy) {
            for (size_t ox = 0; ox < ow; ++ox) {
                size_t out_row = (t * oh + oy) * ow + ox;
                size_t col = 0;
                for (size_t c = 0; c < s.inChannels; ++c) {
                    for (size_t ky = 0; ky < s.kernel; ++ky) {
                        for (size_t kx = 0; kx < s.kernel; ++kx, ++col) {
                            long iy = static_cast<long>(oy * s.stride + ky)
                                      - static_cast<long>(s.pad);
                            long ix = static_cast<long>(ox * s.stride + kx)
                                      - static_cast<long>(s.pad);
                            if (iy < 0 || ix < 0 ||
                                iy >= static_cast<long>(s.inHeight) ||
                                ix >= static_cast<long>(s.inWidth))
                                continue;
                            size_t src = (c * s.inHeight +
                                          static_cast<size_t>(iy)) *
                                         s.inWidth +
                                         static_cast<size_t>(ix);
                            if (fmap.get(t, src))
                                out.set(out_row, col, true);
                        }
                    }
                }
            }
        }
    }
    return out;
}

Matrix<float>
im2colDense(const Matrix<float>& fmap, const ConvShape& s)
{
    phi_assert(fmap.cols() == s.inChannels * s.inHeight * s.inWidth,
               "feature map width does not match conv shape");
    const size_t t_steps = fmap.rows();
    const size_t oh = s.outHeight();
    const size_t ow = s.outWidth();
    Matrix<float> out(t_steps * oh * ow, s.gemmK(), 0.0f);

    for (size_t t = 0; t < t_steps; ++t) {
        for (size_t oy = 0; oy < oh; ++oy) {
            for (size_t ox = 0; ox < ow; ++ox) {
                size_t out_row = (t * oh + oy) * ow + ox;
                size_t col = 0;
                for (size_t c = 0; c < s.inChannels; ++c) {
                    for (size_t ky = 0; ky < s.kernel; ++ky) {
                        for (size_t kx = 0; kx < s.kernel; ++kx, ++col) {
                            long iy = static_cast<long>(oy * s.stride + ky)
                                      - static_cast<long>(s.pad);
                            long ix = static_cast<long>(ox * s.stride + kx)
                                      - static_cast<long>(s.pad);
                            if (iy < 0 || ix < 0 ||
                                iy >= static_cast<long>(s.inHeight) ||
                                ix >= static_cast<long>(s.inWidth))
                                continue;
                            size_t src = (c * s.inHeight +
                                          static_cast<size_t>(iy)) *
                                         s.inWidth +
                                         static_cast<size_t>(ix);
                            out(out_row, col) = fmap(t, src);
                        }
                    }
                }
            }
        }
    }
    return out;
}

} // namespace phi
