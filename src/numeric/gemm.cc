#include "numeric/gemm.hh"

#include "common/bitops.hh"

namespace phi
{

namespace
{

/** Rows per parallel chunk; fixed so chunking never depends on the
 *  thread count (determinism contract of the execution engine). */
constexpr size_t kGemmRowGrain = 32;

/**
 * Shared skeleton of the two spike GEMMs. Each row chunk is processed
 * with N-blocks outermost and K-blocks (whole 64-bit activation words)
 * inside, so the weight rows touched by a K-block stay cache-resident
 * while every row of the chunk streams over them. The tail word of each
 * activation row is masked once — BinaryMatrix guarantees bits beyond
 * cols() are zero, and spikeGemm asserts it — instead of the historic
 * per-set-bit `kk >= k` guard.
 */
template <typename W, typename Acc>
Matrix<Acc>
spikeGemmImpl(const BinaryMatrix& acts, const Matrix<W>& weights,
              const ExecutionConfig& exec)
{
    const size_t m = acts.rows();
    const size_t n = weights.cols();
    Matrix<Acc> out(m, n, Acc{});

    const size_t wpr = acts.numWordsPerRow();
    if (wpr == 0 || n == 0)
        return out;
    const uint64_t tail = acts.tailMask();
    const size_t tileN = exec.resolvedTileN(n);
    const size_t tileKW = exec.tileKWords();

    parallelFor(exec, 0, m, kGemmRowGrain, [&](size_t r0, size_t r1) {
        for (size_t n0 = 0; n0 < n; n0 += tileN) {
            const size_t n1 = n0 + tileN < n ? n0 + tileN : n;
            for (size_t w0 = 0; w0 < wpr; w0 += tileKW) {
                const size_t w1 = w0 + tileKW < wpr ? w0 + tileKW : wpr;
                for (size_t r = r0; r < r1; ++r) {
                    Acc* out_row = out.rowPtr(r);
                    const uint64_t* row = acts.rowWords(r);
                    for (size_t w = w0; w < w1; ++w) {
                        uint64_t bits = row[w];
                        if (w == wpr - 1)
                            bits &= tail;
                        while (bits) {
                            const int bit = std::countr_zero(bits);
                            bits &= bits - 1;
                            const size_t kk =
                                w * 64 + static_cast<size_t>(bit);
                            const W* w_row = weights.rowPtr(kk);
                            for (size_t c = n0; c < n1; ++c)
                                out_row[c] += w_row[c];
                        }
                    }
                }
            }
        }
    });
    return out;
}

} // namespace

Matrix<int32_t>
spikeGemm(const BinaryMatrix& acts, const Matrix<int16_t>& weights,
          const ExecutionConfig& exec)
{
    phi_assert(acts.cols() == weights.rows(),
               "gemm shape mismatch: A is ", acts.rows(), "x", acts.cols(),
               ", W is ", weights.rows(), "x", weights.cols());
    phi_assert(acts.tailBitsClear(),
               "BinaryMatrix tail bits beyond cols() must be zero");
    return spikeGemmImpl<int16_t, int32_t>(acts, weights, exec);
}

Matrix<float>
spikeGemmF(const BinaryMatrix& acts, const Matrix<float>& weights,
           const ExecutionConfig& exec)
{
    phi_assert(acts.cols() == weights.rows(), "gemm shape mismatch");
    phi_assert(acts.tailBitsClear(),
               "BinaryMatrix tail bits beyond cols() must be zero");
    return spikeGemmImpl<float, float>(acts, weights, exec);
}

Matrix<float>
denseGemm(const Matrix<float>& a, const Matrix<float>& b,
          const ExecutionConfig& exec)
{
    phi_assert(a.cols() == b.rows(), "gemm shape mismatch");
    const size_t m = a.rows();
    const size_t k = a.cols();
    const size_t n = b.cols();
    Matrix<float> out(m, n, 0.0f);
    const size_t tileN = exec.resolvedTileN(n);

    parallelFor(exec, 0, m, kGemmRowGrain, [&](size_t r0, size_t r1) {
        for (size_t n0 = 0; n0 < n; n0 += tileN) {
            const size_t n1 = n0 + tileN < n ? n0 + tileN : n;
            for (size_t r = r0; r < r1; ++r) {
                float* out_row = out.rowPtr(r);
                for (size_t kk = 0; kk < k; ++kk) {
                    const float av = a(r, kk);
                    if (av == 0.0f)
                        continue;
                    const float* b_row = b.rowPtr(kk);
                    for (size_t c = n0; c < n1; ++c)
                        out_row[c] += av * b_row[c];
                }
            }
        }
    });
    return out;
}

} // namespace phi
