#include "numeric/gemm.hh"

#include "common/bitops.hh"

namespace phi
{

Matrix<int32_t>
spikeGemm(const BinaryMatrix& acts, const Matrix<int16_t>& weights)
{
    phi_assert(acts.cols() == weights.rows(),
               "gemm shape mismatch: A is ", acts.rows(), "x", acts.cols(),
               ", W is ", weights.rows(), "x", weights.cols());
    const size_t m = acts.rows();
    const size_t k = acts.cols();
    const size_t n = weights.cols();
    Matrix<int32_t> out(m, n, 0);

    for (size_t r = 0; r < m; ++r) {
        int32_t* out_row = out.rowPtr(r);
        // Walk set bits word by word: only '1' activations accumulate.
        const uint64_t* row = acts.rowWords(r);
        for (size_t w = 0; w < acts.numWordsPerRow(); ++w) {
            uint64_t bits = row[w];
            while (bits) {
                int bit = std::countr_zero(bits);
                bits &= bits - 1;
                size_t kk = w * 64 + static_cast<size_t>(bit);
                if (kk >= k)
                    break;
                const int16_t* w_row = weights.rowPtr(kk);
                for (size_t c = 0; c < n; ++c)
                    out_row[c] += w_row[c];
            }
        }
    }
    return out;
}

Matrix<float>
denseGemm(const Matrix<float>& a, const Matrix<float>& b)
{
    phi_assert(a.cols() == b.rows(), "gemm shape mismatch");
    const size_t m = a.rows();
    const size_t k = a.cols();
    const size_t n = b.cols();
    Matrix<float> out(m, n, 0.0f);
    for (size_t r = 0; r < m; ++r) {
        float* out_row = out.rowPtr(r);
        for (size_t kk = 0; kk < k; ++kk) {
            float av = a(r, kk);
            if (av == 0.0f)
                continue;
            const float* b_row = b.rowPtr(kk);
            for (size_t c = 0; c < n; ++c)
                out_row[c] += av * b_row[c];
        }
    }
    return out;
}

Matrix<float>
spikeGemmF(const BinaryMatrix& acts, const Matrix<float>& weights)
{
    phi_assert(acts.cols() == weights.rows(), "gemm shape mismatch");
    const size_t m = acts.rows();
    const size_t k = acts.cols();
    const size_t n = weights.cols();
    Matrix<float> out(m, n, 0.0f);
    for (size_t r = 0; r < m; ++r) {
        float* out_row = out.rowPtr(r);
        const uint64_t* row = acts.rowWords(r);
        for (size_t w = 0; w < acts.numWordsPerRow(); ++w) {
            uint64_t bits = row[w];
            while (bits) {
                int bit = std::countr_zero(bits);
                bits &= bits - 1;
                size_t kk = w * 64 + static_cast<size_t>(bit);
                if (kk >= k)
                    break;
                const float* w_row = weights.rowPtr(kk);
                for (size_t c = 0; c < n; ++c)
                    out_row[c] += w_row[c];
            }
        }
    }
    return out;
}

} // namespace phi
