#include "numeric/gemm.hh"

#include <type_traits>

#include "common/bitops.hh"
#include "numeric/simd.hh"

namespace phi
{

namespace
{

/** Rows per parallel chunk; fixed so chunking never depends on the
 *  thread count (determinism contract of the execution engine). */
constexpr size_t kGemmRowGrain = 32;

/**
 * Weight-row pointers gathered per (output row, K-block) before one
 * batched accumulate. Deep enough that a typical spiking density never
 * splits a K-block's rows across flushes.
 */
constexpr size_t kRowGatherDepth = 64;

/**
 * Shared skeleton of the two spike GEMMs. Each row chunk is processed
 * with N-blocks outermost and K-blocks (whole 64-bit activation words)
 * inside, so the weight rows touched by a K-block stay cache-resident
 * while every row of the chunk streams over them. The tail word of each
 * activation row is masked once — BinaryMatrix guarantees bits beyond
 * cols() are zero, and spikeGemm asserts it.
 *
 * The inner accumulate runs on the SIMD kernel layer: set bits are
 * gathered K-ascending into a pointer batch and flushed through one
 * multi-row kernel call, which holds the output block in registers
 * across the whole batch. On the integer path the output matrix is
 * not even pre-zeroed: the first flush of each (row, N-block) region
 * overwrites (storeRows), later flushes accumulate. N-blocks that
 * reach the row edge extend to the padded stride, so the vector loops
 * never branch on a column tail (padding accumulates zeros into
 * zeros).
 */
template <typename W, typename Acc>
Matrix<Acc>
spikeGemmImpl(const BinaryMatrix& acts, const Matrix<W>& weights,
              const ExecutionConfig& exec)
{
    const size_t m = acts.rows();
    const size_t n = weights.cols();
    const size_t wpr = acts.numWordsPerRow();
    if (wpr == 0 || n == 0)
        return Matrix<Acc>(m, n, Acc{});

    // Integer outputs are fully written by the store-first flushing
    // below; float outputs keep the zeroed + accumulate-only scheme
    // (0.0f + x is not always bitwise x, e.g. x == -0.0f).
    constexpr bool kStoreFirst = std::is_same_v<Acc, int32_t>;
    Matrix<Acc> out = kStoreFirst ? Matrix<Acc>::uninitialized(m, n)
                                  : Matrix<Acc>(m, n, Acc{});

    const uint64_t tail = acts.tailMask();
    const size_t tileN = exec.resolvedTileN(n);
    const size_t tileKW = exec.tileKWords();
    const size_t nPad = out.paddedCols();
    const simd::Kernels& kr = simd::kernels(exec.isa);

    parallelFor(exec, 0, m, kGemmRowGrain, [&](size_t r0, size_t r1) {
        const W* gathered[kRowGatherDepth];
        auto flush = [&](Acc* out_row, size_t batch, size_t span,
                         bool store) {
            if constexpr (kStoreFirst) {
                if (store) {
                    simd::storeRows(kr, out_row, gathered, batch,
                                    span);
                    return;
                }
            }
            simd::accumulateRows(kr, out_row, gathered, batch, span);
        };
        for (size_t n0 = 0; n0 < n; n0 += tileN) {
            const size_t n1 = n0 + tileN < n ? n0 + tileN : n;
            // Row-edge blocks run to the padded stride (no tails);
            // interior blocks stop exactly at the block edge.
            const size_t span = (n1 == n ? nPad : n1) - n0;
            for (size_t w0 = 0; w0 < wpr; w0 += tileKW) {
                const size_t w1 = w0 + tileKW < wpr ? w0 + tileKW : wpr;
                // The first K-block's first flush overwrites the
                // region (or zeroes it when the row has no set bits
                // there); later K-blocks always accumulate.
                const bool firstKBlock = kStoreFirst && w0 == 0;
                for (size_t r = r0; r < r1; ++r) {
                    Acc* out_row = out.rowPtr(r) + n0;
                    const uint64_t* row = acts.rowWords(r);
                    bool pending = firstKBlock;
                    size_t batch = 0;
                    for (size_t w = w0; w < w1; ++w) {
                        uint64_t bits = row[w];
                        if (w == wpr - 1)
                            bits &= tail;
                        while (bits) {
                            const int bit = std::countr_zero(bits);
                            bits &= bits - 1;
                            const size_t kk =
                                w * 64 + static_cast<size_t>(bit);
                            gathered[batch++] =
                                weights.rowPtr(kk) + n0;
                            if (batch == kRowGatherDepth) {
                                flush(out_row, batch, span, pending);
                                pending = false;
                                batch = 0;
                            }
                        }
                    }
                    if (batch > 0 || pending)
                        flush(out_row, batch, span, pending);
                }
            }
        }
    });
    return out;
}

} // namespace

Matrix<int32_t>
spikeGemm(const BinaryMatrix& acts, const Matrix<int16_t>& weights,
          const ExecutionConfig& exec)
{
    phi_assert(acts.cols() == weights.rows(),
               "gemm shape mismatch: A is ", acts.rows(), "x", acts.cols(),
               ", W is ", weights.rows(), "x", weights.cols());
    phi_assert(acts.tailBitsClear(),
               "BinaryMatrix tail bits beyond cols() must be zero");
    return spikeGemmImpl<int16_t, int32_t>(acts, weights, exec);
}

Matrix<float>
spikeGemmF(const BinaryMatrix& acts, const Matrix<float>& weights,
           const ExecutionConfig& exec)
{
    phi_assert(acts.cols() == weights.rows(), "gemm shape mismatch");
    phi_assert(acts.tailBitsClear(),
               "BinaryMatrix tail bits beyond cols() must be zero");
    return spikeGemmImpl<float, float>(acts, weights, exec);
}

Matrix<float>
denseGemm(const Matrix<float>& a, const Matrix<float>& b,
          const ExecutionConfig& exec)
{
    phi_assert(a.cols() == b.rows(), "gemm shape mismatch");
    const size_t m = a.rows();
    const size_t k = a.cols();
    const size_t n = b.cols();
    Matrix<float> out(m, n, 0.0f);
    const size_t tileN = exec.resolvedTileN(n);
    const size_t nPad = out.paddedCols();
    const simd::Kernels& kr = simd::kernels(exec.isa);

    parallelFor(exec, 0, m, kGemmRowGrain, [&](size_t r0, size_t r1) {
        for (size_t n0 = 0; n0 < n; n0 += tileN) {
            const size_t n1 = n0 + tileN < n ? n0 + tileN : n;
            const size_t span = (n1 == n ? nPad : n1) - n0;
            for (size_t r = r0; r < r1; ++r) {
                float* out_row = out.rowPtr(r) + n0;
                for (size_t kk = 0; kk < k; ++kk) {
                    const float av = a(r, kk);
                    if (av == 0.0f)
                        continue;
                    kr.fmaRowF32(out_row, b.rowPtr(kk) + n0, av, span);
                }
            }
        }
    });
    return out;
}

} // namespace phi
