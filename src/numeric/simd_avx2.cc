/**
 * @file
 * AVX2 backend of the SIMD kernel layer.
 *
 * Compiled with -mavx2 (CMake sets the flag per-file and defines
 * PHI_HAVE_SIMD_AVX2 for the dispatcher); the whole body is guarded on
 * __AVX2__ so the file degrades to an empty TU when the compiler cannot
 * target AVX2. Executed only after runtime CPUID verification.
 *
 * 256-bit lanes: 8 int32/float per vector, unrolled to a 16-element
 * step so one iteration retires a whole 64-byte output cache line.
 * Popcounts use the classic 4-bit-LUT pshufb + psadbw reduction. Float
 * kernels use explicit mul-then-add (never FMA) to stay bit-identical
 * to the scalar reference.
 */

#include "numeric/simd.hh"

#if defined(__AVX2__)

#include <immintrin.h>

namespace phi::simd
{

namespace
{

void
avx2AddRowI16(int32_t* out, const int16_t* w, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i wv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
        const __m256i lo =
            _mm256_cvtepi16_epi32(_mm256_castsi256_si128(wv));
        const __m256i hi =
            _mm256_cvtepi16_epi32(_mm256_extracti128_si256(wv, 1));
        __m256i* o0 = reinterpret_cast<__m256i*>(out + i);
        __m256i* o1 = reinterpret_cast<__m256i*>(out + i + 8);
        _mm256_storeu_si256(
            o0, _mm256_add_epi32(_mm256_loadu_si256(o0), lo));
        _mm256_storeu_si256(
            o1, _mm256_add_epi32(_mm256_loadu_si256(o1), hi));
    }
    for (; i < n; ++i)
        out[i] += w[i];
}

void
avx2AddRowsI16(int32_t* out, const int16_t* const* rows, size_t m,
               size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        // Keep one output cache line in registers across all m rows.
        __m256i* o0 = reinterpret_cast<__m256i*>(out + c);
        __m256i* o1 = reinterpret_cast<__m256i*>(out + c + 8);
        __m256i a0 = _mm256_loadu_si256(o0);
        __m256i a1 = _mm256_loadu_si256(o1);
        for (size_t j = 0; j < m; ++j) {
            // Two 128-bit loads fold into vpmovsxwd's memory operand.
            a0 = _mm256_add_epi32(
                a0, _mm256_cvtepi16_epi32(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(rows[j] + c))));
            a1 = _mm256_add_epi32(
                a1, _mm256_cvtepi16_epi32(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(rows[j] + c +
                                                         8))));
        }
        _mm256_storeu_si256(o0, a0);
        _mm256_storeu_si256(o1, a1);
    }
    for (; c < n; ++c) {
        int32_t acc = out[c];
        for (size_t j = 0; j < m; ++j)
            acc += rows[j][c];
        out[c] = acc;
    }
}

void
avx2AddRowsF32(float* out, const float* const* rows, size_t m, size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m256 a0 = _mm256_loadu_ps(out + c);
        __m256 a1 = _mm256_loadu_ps(out + c + 8);
        for (size_t j = 0; j < m; ++j) {
            a0 = _mm256_add_ps(a0, _mm256_loadu_ps(rows[j] + c));
            a1 = _mm256_add_ps(a1, _mm256_loadu_ps(rows[j] + c + 8));
        }
        _mm256_storeu_ps(out + c, a0);
        _mm256_storeu_ps(out + c + 8, a1);
    }
    for (; c < n; ++c) {
        float acc = out[c];
        for (size_t j = 0; j < m; ++j)
            acc += rows[j][c];
        out[c] = acc;
    }
}

void
avx2AddRowsI32(int32_t* out, const int32_t* const* rows, size_t m,
               size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m256i a0 =
            _mm256_loadu_si256(reinterpret_cast<__m256i*>(out + c));
        __m256i a1 = _mm256_loadu_si256(
            reinterpret_cast<__m256i*>(out + c + 8));
        for (size_t j = 0; j < m; ++j) {
            a0 = _mm256_add_epi32(
                a0, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(rows[j] + c)));
            a1 = _mm256_add_epi32(
                a1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                        rows[j] + c + 8)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c), a0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c + 8),
                            a1);
    }
    for (; c < n; ++c) {
        int32_t acc = out[c];
        for (size_t j = 0; j < m; ++j)
            acc += rows[j][c];
        out[c] = acc;
    }
}

void
avx2StoreRowsI16(int32_t* out, const int16_t* const* rows, size_t m,
                 size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m256i a0 = _mm256_setzero_si256();
        __m256i a1 = _mm256_setzero_si256();
        for (size_t j = 0; j < m; ++j) {
            // Two 128-bit loads fold into vpmovsxwd's memory operand.
            a0 = _mm256_add_epi32(
                a0, _mm256_cvtepi16_epi32(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(rows[j] + c))));
            a1 = _mm256_add_epi32(
                a1, _mm256_cvtepi16_epi32(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(rows[j] + c +
                                                         8))));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c), a0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c + 8),
                            a1);
    }
    for (; c < n; ++c) {
        int32_t acc = 0;
        for (size_t j = 0; j < m; ++j)
            acc += rows[j][c];
        out[c] = acc;
    }
}

void
avx2StoreRowsI32(int32_t* out, const int32_t* const* rows, size_t m,
                 size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m256i a0 = _mm256_setzero_si256();
        __m256i a1 = _mm256_setzero_si256();
        for (size_t j = 0; j < m; ++j) {
            a0 = _mm256_add_epi32(
                a0, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(rows[j] + c)));
            a1 = _mm256_add_epi32(
                a1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                        rows[j] + c + 8)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c), a0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c + 8),
                            a1);
    }
    for (; c < n; ++c) {
        int32_t acc = 0;
        for (size_t j = 0; j < m; ++j)
            acc += rows[j][c];
        out[c] = acc;
    }
}

void
avx2FusedStoreAddSub(int32_t* out, const int32_t* const* base,
                     size_t nBase, const int16_t* const* pos,
                     size_t nPos, const int16_t* const* neg,
                     size_t nNeg, size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m256i a0 = _mm256_setzero_si256();
        __m256i a1 = _mm256_setzero_si256();
        for (size_t j = 0; j < nBase; ++j) {
            a0 = _mm256_add_epi32(
                a0, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(base[j] + c)));
            a1 = _mm256_add_epi32(
                a1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                        base[j] + c + 8)));
        }
        for (size_t j = 0; j < nPos; ++j) {
            a0 = _mm256_add_epi32(
                a0, _mm256_cvtepi16_epi32(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(pos[j] + c))));
            a1 = _mm256_add_epi32(
                a1, _mm256_cvtepi16_epi32(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(pos[j] + c +
                                                         8))));
        }
        for (size_t j = 0; j < nNeg; ++j) {
            a0 = _mm256_sub_epi32(
                a0, _mm256_cvtepi16_epi32(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(neg[j] + c))));
            a1 = _mm256_sub_epi32(
                a1, _mm256_cvtepi16_epi32(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(neg[j] + c +
                                                         8))));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c), a0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c + 8),
                            a1);
    }
    for (; c < n; ++c) {
        int32_t acc = 0;
        for (size_t j = 0; j < nBase; ++j)
            acc += base[j][c];
        for (size_t j = 0; j < nPos; ++j)
            acc += pos[j][c];
        for (size_t j = 0; j < nNeg; ++j)
            acc -= neg[j][c];
        out[c] = acc;
    }
}

// 8 int32 lanes widened from each arena element width.
inline __m256i
load8(const int32_t* p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline __m256i
load8(const int16_t* p)
{
    return _mm256_cvtepi16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

inline __m256i
load8(const int8_t* p)
{
    // vpmovsxbd widens the low 8 bytes of the 128-bit source.
    return _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}

void
avx2AddRowsI8(int32_t* out, const int8_t* const* rows, size_t m,
              size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m256i* o0 = reinterpret_cast<__m256i*>(out + c);
        __m256i* o1 = reinterpret_cast<__m256i*>(out + c + 8);
        __m256i a0 = _mm256_loadu_si256(o0);
        __m256i a1 = _mm256_loadu_si256(o1);
        for (size_t j = 0; j < m; ++j) {
            a0 = _mm256_add_epi32(a0, load8(rows[j] + c));
            a1 = _mm256_add_epi32(a1, load8(rows[j] + c + 8));
        }
        _mm256_storeu_si256(o0, a0);
        _mm256_storeu_si256(o1, a1);
    }
    for (; c < n; ++c) {
        int32_t acc = out[c];
        for (size_t j = 0; j < m; ++j)
            acc += rows[j][c];
        out[c] = acc;
    }
}

/**
 * Arena-gather body shared by the three element widths. The main loop
 * holds four output vector blocks (32 columns) in independent
 * accumulators and visits every source row once per pass, so the
 * sequential row reads overlap instead of serialising on one
 * accumulator chain — see the avx512 counterpart for the full
 * rationale.
 */
template <typename Elem>
void
avx2PwpGather(int32_t* out, const Elem* arena, const uint64_t* rowBase,
              const uint16_t* ids, size_t numTiles, size_t stride,
              const int16_t* const* pos, size_t nPos,
              const int16_t* const* neg, size_t nNeg, size_t n)
{
    size_t c = 0;
    for (; c + 32 <= n; c += 32) {
        __m256i a0 = _mm256_setzero_si256();
        __m256i a1 = _mm256_setzero_si256();
        __m256i a2 = _mm256_setzero_si256();
        __m256i a3 = _mm256_setzero_si256();
        for (size_t t = 0; t < numTiles; ++t) {
            const uint32_t id = ids[t];
            if (!id)
                continue;
            const Elem* p = arena + (rowBase[t] + id - 1) * stride + c;
            a0 = _mm256_add_epi32(a0, load8(p));
            a1 = _mm256_add_epi32(a1, load8(p + 8));
            a2 = _mm256_add_epi32(a2, load8(p + 16));
            a3 = _mm256_add_epi32(a3, load8(p + 24));
        }
        for (size_t j = 0; j < nPos; ++j) {
            const int16_t* p = pos[j] + c;
            a0 = _mm256_add_epi32(a0, load8(p));
            a1 = _mm256_add_epi32(a1, load8(p + 8));
            a2 = _mm256_add_epi32(a2, load8(p + 16));
            a3 = _mm256_add_epi32(a3, load8(p + 24));
        }
        for (size_t j = 0; j < nNeg; ++j) {
            const int16_t* p = neg[j] + c;
            a0 = _mm256_sub_epi32(a0, load8(p));
            a1 = _mm256_sub_epi32(a1, load8(p + 8));
            a2 = _mm256_sub_epi32(a2, load8(p + 16));
            a3 = _mm256_sub_epi32(a3, load8(p + 24));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c), a0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c + 8),
                            a1);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c + 16),
                            a2);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c + 24),
                            a3);
    }
    for (; c + 8 <= n; c += 8) {
        __m256i acc = _mm256_setzero_si256();
        for (size_t t = 0; t < numTiles; ++t) {
            const uint32_t id = ids[t];
            if (!id)
                continue;
            acc = _mm256_add_epi32(
                acc, load8(arena + (rowBase[t] + id - 1) * stride + c));
        }
        for (size_t j = 0; j < nPos; ++j)
            acc = _mm256_add_epi32(acc, load8(pos[j] + c));
        for (size_t j = 0; j < nNeg; ++j)
            acc = _mm256_sub_epi32(acc, load8(neg[j] + c));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c), acc);
    }
    for (; c < n; ++c) {
        int32_t acc = 0;
        for (size_t t = 0; t < numTiles; ++t) {
            const uint32_t id = ids[t];
            if (!id)
                continue;
            acc += arena[(rowBase[t] + id - 1) * stride + c];
        }
        for (size_t j = 0; j < nPos; ++j)
            acc += pos[j][c];
        for (size_t j = 0; j < nNeg; ++j)
            acc -= neg[j][c];
        out[c] = acc;
    }
}

void
avx2PwpGatherI32(int32_t* out, const int32_t* arena,
                 const uint64_t* rowBase, const uint16_t* ids,
                 size_t numTiles, size_t stride,
                 const int16_t* const* pos, size_t nPos,
                 const int16_t* const* neg, size_t nNeg, size_t n)
{
    avx2PwpGather(out, arena, rowBase, ids, numTiles, stride, pos, nPos,
                  neg, nNeg, n);
}

void
avx2PwpGatherI16(int32_t* out, const int16_t* arena,
                 const uint64_t* rowBase, const uint16_t* ids,
                 size_t numTiles, size_t stride,
                 const int16_t* const* pos, size_t nPos,
                 const int16_t* const* neg, size_t nNeg, size_t n)
{
    avx2PwpGather(out, arena, rowBase, ids, numTiles, stride, pos, nPos,
                  neg, nNeg, n);
}

void
avx2PwpGatherI8(int32_t* out, const int8_t* arena,
                const uint64_t* rowBase, const uint16_t* ids,
                size_t numTiles, size_t stride,
                const int16_t* const* pos, size_t nPos,
                const int16_t* const* neg, size_t nNeg, size_t n)
{
    avx2PwpGather(out, arena, rowBase, ids, numTiles, stride, pos, nPos,
                  neg, nNeg, n);
}

void
avx2SubRowsI16(int32_t* out, const int16_t* const* rows, size_t m,
               size_t n)
{
    size_t c = 0;
    for (; c + 16 <= n; c += 16) {
        __m256i* o0 = reinterpret_cast<__m256i*>(out + c);
        __m256i* o1 = reinterpret_cast<__m256i*>(out + c + 8);
        __m256i a0 = _mm256_loadu_si256(o0);
        __m256i a1 = _mm256_loadu_si256(o1);
        for (size_t j = 0; j < m; ++j) {
            a0 = _mm256_sub_epi32(
                a0, _mm256_cvtepi16_epi32(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(rows[j] + c))));
            a1 = _mm256_sub_epi32(
                a1, _mm256_cvtepi16_epi32(_mm_loadu_si128(
                        reinterpret_cast<const __m128i*>(rows[j] + c +
                                                         8))));
        }
        _mm256_storeu_si256(o0, a0);
        _mm256_storeu_si256(o1, a1);
    }
    for (; c < n; ++c) {
        int32_t acc = out[c];
        for (size_t j = 0; j < m; ++j)
            acc -= rows[j][c];
        out[c] = acc;
    }
}

void
avx2SubRowI16(int32_t* out, const int16_t* w, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i wv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
        const __m256i lo =
            _mm256_cvtepi16_epi32(_mm256_castsi256_si128(wv));
        const __m256i hi =
            _mm256_cvtepi16_epi32(_mm256_extracti128_si256(wv, 1));
        __m256i* o0 = reinterpret_cast<__m256i*>(out + i);
        __m256i* o1 = reinterpret_cast<__m256i*>(out + i + 8);
        _mm256_storeu_si256(
            o0, _mm256_sub_epi32(_mm256_loadu_si256(o0), lo));
        _mm256_storeu_si256(
            o1, _mm256_sub_epi32(_mm256_loadu_si256(o1), hi));
    }
    for (; i < n; ++i)
        out[i] -= w[i];
}

void
avx2AddRowI32(int32_t* out, const int32_t* src, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i s0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + i));
        const __m256i s1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(src + i + 8));
        __m256i* o0 = reinterpret_cast<__m256i*>(out + i);
        __m256i* o1 = reinterpret_cast<__m256i*>(out + i + 8);
        _mm256_storeu_si256(
            o0, _mm256_add_epi32(_mm256_loadu_si256(o0), s0));
        _mm256_storeu_si256(
            o1, _mm256_add_epi32(_mm256_loadu_si256(o1), s1));
    }
    for (; i < n; ++i)
        out[i] += src[i];
}

void
avx2AddRowF32(float* out, const float* src, size_t n)
{
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256 s0 = _mm256_loadu_ps(src + i);
        const __m256 s1 = _mm256_loadu_ps(src + i + 8);
        _mm256_storeu_ps(out + i,
                         _mm256_add_ps(_mm256_loadu_ps(out + i), s0));
        _mm256_storeu_ps(
            out + i + 8,
            _mm256_add_ps(_mm256_loadu_ps(out + i + 8), s1));
    }
    for (; i < n; ++i)
        out[i] += src[i];
}

void
avx2FmaRowF32(float* out, const float* src, float a, size_t n)
{
    const __m256 av = _mm256_set1_ps(a);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 prod = _mm256_mul_ps(av, _mm256_loadu_ps(src + i));
        _mm256_storeu_ps(
            out + i, _mm256_add_ps(_mm256_loadu_ps(out + i), prod));
    }
    for (; i < n; ++i)
        out[i] += a * src[i];
}

/** Per-byte popcount of a 256-bit vector via the nibble LUT. */
inline __m256i
popcountBytes(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0f);
    const __m256i lo = _mm256_and_si256(v, low);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
    return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                           _mm256_shuffle_epi8(lut, hi));
}

uint64_t
avx2PopcountWords(const uint64_t* words, size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(words + i));
        acc = _mm256_add_epi64(
            acc, _mm256_sad_epu8(popcountBytes(v),
                                 _mm256_setzero_si256()));
    }
    uint64_t total =
        static_cast<uint64_t>(_mm256_extract_epi64(acc, 0)) +
        static_cast<uint64_t>(_mm256_extract_epi64(acc, 1)) +
        static_cast<uint64_t>(_mm256_extract_epi64(acc, 2)) +
        static_cast<uint64_t>(_mm256_extract_epi64(acc, 3));
    for (; i < n; ++i)
        total += static_cast<uint64_t>(
            __builtin_popcountll(words[i]));
    return total;
}

void
avx2HammingScan(uint64_t row, const uint64_t* pats, size_t n,
                uint8_t* dist)
{
    const __m256i rv =
        _mm256_set1_epi64x(static_cast<long long>(row));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i x = _mm256_xor_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(pats + i)),
            rv);
        // psadbw against zero sums each 8-byte lane's byte-popcounts
        // into one 64-bit count (<= 64, fits a byte).
        const __m256i sums = _mm256_sad_epu8(popcountBytes(x),
                                             _mm256_setzero_si256());
        dist[i] = static_cast<uint8_t>(_mm256_extract_epi64(sums, 0));
        dist[i + 1] =
            static_cast<uint8_t>(_mm256_extract_epi64(sums, 1));
        dist[i + 2] =
            static_cast<uint8_t>(_mm256_extract_epi64(sums, 2));
        dist[i + 3] =
            static_cast<uint8_t>(_mm256_extract_epi64(sums, 3));
    }
    for (; i < n; ++i)
        dist[i] = static_cast<uint8_t>(
            __builtin_popcountll(pats[i] ^ row));
}

constexpr Kernels kAvx2Kernels = {
    .isa = SimdIsa::Avx2,
    .name = "avx2",
    .addRowI16 = avx2AddRowI16,
    .addRowsI16 = avx2AddRowsI16,
    .addRowsF32 = avx2AddRowsF32,
    .addRowsI32 = avx2AddRowsI32,
    .storeRowsI16 = avx2StoreRowsI16,
    .storeRowsI32 = avx2StoreRowsI32,
    .fusedStoreAddSub = avx2FusedStoreAddSub,
    .subRowI16 = avx2SubRowI16,
    .subRowsI16 = avx2SubRowsI16,
    .addRowI32 = avx2AddRowI32,
    .addRowF32 = avx2AddRowF32,
    .fmaRowF32 = avx2FmaRowF32,
    .popcountWords = avx2PopcountWords,
    .hammingScan = avx2HammingScan,
    .addRowsI8 = avx2AddRowsI8,
    .pwpGatherI32 = avx2PwpGatherI32,
    .pwpGatherI16 = avx2PwpGatherI16,
    .pwpGatherI8 = avx2PwpGatherI8,
};

} // namespace

const Kernels&
avx2Kernels()
{
    return kAvx2Kernels;
}

} // namespace phi::simd

#endif // __AVX2__
