/**
 * @file
 * Bit-packed binary matrix representing SNN spike activations.
 *
 * Rows are packed into 64-bit words. The K dimension is partitioned into
 * tiles of k bits (k <= 64) for pattern matching, so the container offers
 * fast extraction of an arbitrary k-bit field of a row as a single word.
 *
 * Like Matrix, storage is SIMD-ready: each row's words start on a
 * 64-byte boundary and are padded to a whole cache line. Padding words
 * (and the bits of the last logical word beyond cols()) are always
 * zero, so word-parallel loops may consume whole padded rows without
 * per-bit column checks.
 */

#ifndef PHI_NUMERIC_BINARY_MATRIX_HH
#define PHI_NUMERIC_BINARY_MATRIX_HH

#include <cstdint>
#include <vector>

#include "common/aligned.hh"
#include "numeric/matrix.hh"

namespace phi
{

class Rng;

/** Dense 0/1 matrix packed 64 elements per word, row-major. */
class BinaryMatrix
{
  public:
    BinaryMatrix() : nRows(0), nCols(0), wordsPerRow(0), wordStride(0)
    {
    }

    /** Create an all-zero matrix of the given shape. */
    BinaryMatrix(size_t rows, size_t cols);

    size_t rows() const { return nRows; }
    size_t cols() const { return nCols; }

    /** Read bit (r, c). */
    bool get(size_t r, size_t c) const;

    /** Write bit (r, c). */
    void set(size_t r, size_t c, bool v);

    /**
     * Extract len bits (len in [1, 64]) of row r starting at column
     * start, packed with the element at 'start' in bit 0. Bits past the
     * matrix edge read as zero, which makes ragged final tiles behave as
     * zero-padded.
     */
    uint64_t extract(size_t r, size_t start, int len) const;

    /** Deposit the low len bits of value at (r, start..start+len). */
    void deposit(size_t r, size_t start, int len, uint64_t value);

    /** Number of set bits in row r. */
    size_t popcountRow(size_t r) const;

    /** Number of set bits in the whole matrix. */
    size_t popcount() const;

    /** Fraction of one bits. */
    double density() const;

    /** 64-byte-aligned per-row word storage, for hot loops. */
    const uint64_t* rowWords(size_t r) const
    {
        return words.data() + r * wordStride;
    }

    /** Words holding logical bits per row (excludes padding words). */
    size_t numWordsPerRow() const { return wordsPerRow; }

    /**
     * Words between consecutive row starts (a multiple of 8, one
     * cache line). Words in [numWordsPerRow(), wordsStride()) of every
     * row are always zero, so whole-stride word loops see no phantom
     * bits.
     */
    size_t wordsStride() const { return wordStride; }

    /**
     * Mask of the valid bits in the last word of a row (all ones when
     * cols() is a multiple of 64). Invariant: bits of the last word
     * outside this mask are always zero — every mutator clips to
     * cols() — so hot loops may consume whole words without a per-bit
     * column check.
     */
    uint64_t tailMask() const;

    /** Verify the tail-bit and padding-word invariants everywhere. */
    bool tailBitsClear() const;

    bool operator==(const BinaryMatrix& o) const
    {
        // Same shape implies same stride, and padding is always zero,
        // so whole-buffer equality equals logical equality.
        return nRows == o.nRows && nCols == o.nCols && words == o.words;
    }

    /** Build from a dense 0/1 integer matrix. */
    static BinaryMatrix fromDense(const Matrix<int>& dense);

    /** Convert to a dense 0/1 integer matrix. */
    Matrix<int> toDense() const;

    /** iid Bernoulli(density) random matrix. */
    static BinaryMatrix random(size_t rows, size_t cols, double density,
                               Rng& rng);

  private:
    size_t nRows;
    size_t nCols;
    size_t wordsPerRow;
    size_t wordStride;
    AlignedVec<uint64_t> words;
};

} // namespace phi

#endif // PHI_NUMERIC_BINARY_MATRIX_HH
