/**
 * @file
 * 28 nm energy/area constants and the Table 3 component model.
 *
 * The paper obtains component area/power from Design Compiler synthesis
 * and CACTI; we take the published Table 3 values as calibration ground
 * truth and expose per-operation energies consistent with them at the
 * reported activity (500 MHz, 8x32 adders per processor).
 */

#ifndef PHI_SIM_ENERGY_MODEL_HH
#define PHI_SIM_ENERGY_MODEL_HH

#include <string>
#include <vector>

#include "sim/arch_config.hh"

namespace phi
{

/** Per-operation dynamic energies (pJ) in 28 nm at nominal voltage. */
struct OpEnergies
{
    /** 16-bit accumulate in the L1/L2 adder trees (per lane). */
    double add16 = 0.50;
    /** One pattern comparison in a matcher unit (16-bit XOR+popcount,
     *  sized so the Sec. 6.1 cost/benefit ratio holds). */
    double patternCompare = 0.018;
    /** LIF membrane update + threshold per output element. */
    double lifUpdate = 0.25;
    /** Dispatcher/crossbar overhead per routed unit. */
    double dispatch = 0.05;
};

/** One Table 3 row. */
struct ComponentSpec
{
    std::string name;
    double areaMm2;
    double powerMw; // average dynamic + static at full activity
};

/** Phi component area/power model (Table 3 reproduction). */
class PhiAreaPowerModel
{
  public:
    explicit PhiAreaPowerModel(const PhiArchConfig& cfg);

    /** The Table 3 breakdown: preprocessor, L1, L2, LIF, buffer. */
    std::vector<ComponentSpec> breakdown() const;

    double totalAreaMm2() const;
    double totalPowerMw() const;

    /** Leakage power of all logic components (mW). */
    double logicLeakageMw() const;

  private:
    PhiArchConfig cfg;
};

/**
 * Calibrated per-OP energy constants of the baseline accelerators.
 * Each baseline's constants are fit on VGG16/CIFAR100 so its Table 2
 * energy-efficiency ratio to Spiking Eyeriss is reproduced; they are
 * then applied unchanged to every other workload (Fig. 8).
 */
struct BaselineEnergyModel
{
    double corePjPerOp;   // datapath energy per processed op
    double bufferPjPerOp; // SRAM energy per processed op
    // DRAM is charged from modelled traffic, not per-op.
};

OpEnergies defaultOpEnergies();

} // namespace phi

#endif // PHI_SIM_ENERGY_MODEL_HH
