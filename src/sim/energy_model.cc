#include "sim/energy_model.hh"

#include "arch/buffer.hh"

namespace phi
{

OpEnergies
defaultOpEnergies()
{
    return OpEnergies{};
}

PhiAreaPowerModel::PhiAreaPowerModel(const PhiArchConfig& archCfg)
    : cfg(archCfg)
{
}

std::vector<ComponentSpec>
PhiAreaPowerModel::breakdown() const
{
    // Logic components: Table 3 values scaled with the datapath width
    // relative to the paper's 8x32 configuration; the buffer follows
    // the CACTI-like SRAM model.
    const double l1_scale =
        (cfg.l1Channels * cfg.simdWidth) / (8.0 * 32.0);
    const double l2_scale =
        (cfg.l2Channels * cfg.simdWidth) / (8.0 * 32.0);
    const double pre_scale = cfg.matcherLanes / 8.0;
    const double lif_scale = cfg.neuronLanes / 32.0;
    const double buf_kib =
        static_cast<double>(cfg.totalBufferBytes()) / 1024.0;

    return {
        {"Preprocessor", 0.099 * pre_scale, 22.5 * pre_scale},
        {"L1 Processor", 0.074 * l1_scale, 68.2 * l1_scale},
        {"L2 Processor", 0.027 * l2_scale, 25.6 * l2_scale},
        {"LIF Neuron", 0.011 * lif_scale, 9.4 * lif_scale},
        {"Buffer", SramModel::areaMm2(buf_kib),
         // Dynamic + leakage at the paper's measured activity; the
         // linear fit reproduces 220.8 mW at 240 KiB.
         220.8 * buf_kib / 240.0},
    };
}

double
PhiAreaPowerModel::totalAreaMm2() const
{
    double a = 0;
    for (const auto& c : breakdown())
        a += c.areaMm2;
    return a;
}

double
PhiAreaPowerModel::totalPowerMw() const
{
    double p = 0;
    for (const auto& c : breakdown())
        p += c.powerMw;
    return p;
}

double
PhiAreaPowerModel::logicLeakageMw() const
{
    // Roughly 15% of logic power is leakage in 28 nm HVT libraries.
    double logic = 0;
    for (const auto& c : breakdown())
        if (c.name != "Buffer")
            logic += c.powerMw;
    return 0.15 * logic;
}

} // namespace phi
