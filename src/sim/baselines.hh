/**
 * @file
 * Baseline SNN accelerator models (Sec. 5.1 / Table 2): Spiking Eyeriss
 * (dense), SpinalFlow, SATO, PTB and Stellar.
 *
 * Each baseline implements its published dataflow at the analytical
 * cycle level, driven by per-layer statistics measured from the same
 * trace the Phi simulator consumes (spike counts, temporal unions,
 * window occupancy, lane imbalance). Per-architecture efficiency and
 * energy constants are calibrated once on VGG16/CIFAR100 so the Table 2
 * column is reproduced, then applied unchanged to every workload —
 * mirroring how the paper treats Stellar (reported numbers) and the
 * simulated baselines.
 */

#ifndef PHI_SIM_BASELINES_HH
#define PHI_SIM_BASELINES_HH

#include <memory>

#include "sim/energy_model.hh"
#include "sim/result.hh"
#include "snn/trace.hh"

namespace phi
{

/** Temporal spike statistics of one layer trace. */
struct TemporalStats
{
    double nnz = 0;       // total spikes
    double unionNnz = 0;  // (position, k) pairs with >= 1 spike over T
    double windowOccupancy = 0; // fraction of nonzero (pos,k,window)
    double laneImbalance = 1.0; // sum(max)/sum(mean) over lane batches
    size_t timesteps = 1;
    size_t spatial = 0; // rows per timestep
};

/**
 * Measure temporal statistics from a t-major activation matrix
 * (rows = timestep * spatial + position).
 */
TemporalStats computeTemporalStats(const BinaryMatrix& acts,
                                   size_t timesteps, int lanes = 32,
                                   size_t window = 4);

/** Common interface of all simulated accelerators. */
class AcceleratorSim
{
  public:
    virtual ~AcceleratorSim() = default;
    virtual std::string name() const = 0;
    virtual SimResult run(const ModelTrace& trace) const = 0;
    /** Die area used for Table 2 area efficiency. */
    virtual double areaMm2() const = 0;
};

/** Architecture-specific calibration constants. */
struct BaselineConfig
{
    double freqHz = 500e6;
    size_t batchSize = 32; // same weight amortisation as Phi
    DramConfig dram;
};

/** Dense spiking Eyeriss (adapted by SpinalFlow's authors). */
class EyerissSim : public AcceleratorSim
{
  public:
    explicit EyerissSim(BaselineConfig baseCfg = {}) : cfg(baseCfg) {}
    std::string name() const override { return "Eyeriss"; }
    double areaMm2() const override { return 1.068; }
    SimResult run(const ModelTrace& trace) const override;

  private:
    BaselineConfig cfg;
};

/** SpinalFlow: temporally compressed sequential spike processing. */
class SpinalFlowSim : public AcceleratorSim
{
  public:
    explicit SpinalFlowSim(BaselineConfig baseCfg = {}) : cfg(baseCfg) {}
    std::string name() const override { return "SpinalFlow"; }
    double areaMm2() const override { return 2.09; }
    SimResult run(const ModelTrace& trace) const override;

  private:
    BaselineConfig cfg;
};

/** SATO: per-timestep parallel integration with lane imbalance. */
class SatoSim : public AcceleratorSim
{
  public:
    explicit SatoSim(BaselineConfig baseCfg = {}) : cfg(baseCfg) {}
    std::string name() const override { return "SATO"; }
    double areaMm2() const override { return 1.13; }
    SimResult run(const ModelTrace& trace) const override;

  private:
    BaselineConfig cfg;
};

/** PTB: systolic parallel time batching over time windows. */
class PtbSim : public AcceleratorSim
{
  public:
    explicit PtbSim(BaselineConfig baseCfg = {}) : cfg(baseCfg) {}
    std::string name() const override { return "PTB"; }
    double areaMm2() const override { return 1.0; } // not reported
    SimResult run(const ModelTrace& trace) const override;

  private:
    BaselineConfig cfg;
};

/** Stellar: Few-Spikes neuron conversion + spatiotemporal dataflow. */
class StellarSim : public AcceleratorSim
{
  public:
    explicit StellarSim(BaselineConfig baseCfg = {}) : cfg(baseCfg) {}
    std::string name() const override { return "Stellar"; }
    double areaMm2() const override { return 0.768; }
    SimResult run(const ModelTrace& trace) const override;

  private:
    BaselineConfig cfg;
};

/** All five baselines, in the paper's Table 2 order. */
std::vector<std::unique_ptr<AcceleratorSim>>
makeBaselines(BaselineConfig cfg = {});

} // namespace phi

#endif // PHI_SIM_BASELINES_HH
