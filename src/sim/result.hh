/**
 * @file
 * Result containers shared by the Phi simulator and all baselines.
 *
 * The paper's OP definition (Sec. 5.1) is used throughout: one OP is
 * one accumulation for a '1' element of the bit-sparse activation, so
 * throughput and energy efficiency are comparable across architectures
 * regardless of how much work each one actually performs.
 */

#ifndef PHI_SIM_RESULT_HH
#define PHI_SIM_RESULT_HH

#include <string>
#include <vector>

#include "arch/dram.hh"

namespace phi
{

/** Cycle attribution of one layer. */
struct CycleBreakdown
{
    double l1 = 0;       // L1 processor busy cycles
    double l2 = 0;       // L2 processor busy cycles
    double compute = 0;  // max(l1, l2) + per-tile sync
    double preprocess = 0;
    double neuron = 0;
    double dram = 0;
    double bound = 0;    // max of the overlapped stages = layer cycles
};

/** Energy attribution in pJ. */
struct EnergyBreakdownPj
{
    double core = 0;   // datapath logic incl. preprocessor
    double buffer = 0; // on-chip SRAM dynamic + leakage
    double dram = 0;   // off-chip dynamic + background

    double total() const { return core + buffer + dram; }

    EnergyBreakdownPj&
    operator+=(const EnergyBreakdownPj& o)
    {
        core += o.core;
        buffer += o.buffer;
        dram += o.dram;
        return *this;
    }
};

/** One layer's simulation outcome (already scaled by repetition). */
struct LayerSimResult
{
    std::string name;
    size_t count = 1;
    double cycles = 0;
    CycleBreakdown breakdown;
    EnergyBreakdownPj energy;
    DramTraffic traffic;
    double bitOps = 0;   // paper OP definition
    double denseOps = 0; // MAC slots
};

/** Whole-model simulation outcome. */
struct SimResult
{
    std::string arch;
    std::string workload;
    double freqHz = 500e6;
    double cycles = 0;
    EnergyBreakdownPj energy;
    DramTraffic traffic;
    double bitOps = 0;
    double denseOps = 0;
    std::vector<LayerSimResult> layers;

    double seconds() const { return cycles / freqHz; }

    /** Throughput in GOP/s under the paper's OP definition. */
    double
    gops() const
    {
        return seconds() > 0 ? bitOps / seconds() / 1e9 : 0.0;
    }

    /** Energy efficiency in GOP/J. */
    double
    gopsPerJoule() const
    {
        const double joules = energy.total() * 1e-12;
        return joules > 0 ? bitOps / joules / 1e9 : 0.0;
    }

    /** Area efficiency in GOP/s/mm^2. */
    double
    areaEfficiency(double area_mm2) const
    {
        return area_mm2 > 0 ? gops() / area_mm2 : 0.0;
    }
};

} // namespace phi

#endif // PHI_SIM_RESULT_HH
