#include "sim/baselines.hh"

#include <algorithm>
#include <cmath>

#include "common/bitops.hh"

namespace phi
{

TemporalStats
computeTemporalStats(const BinaryMatrix& acts, size_t timesteps,
                     int lanes, size_t window)
{
    TemporalStats st;
    st.timesteps = timesteps;
    if (acts.rows() % timesteps != 0) {
        // Layers whose rows are not t-major multiples degrade to a
        // purely spatial view.
        timesteps = 1;
        st.timesteps = 1;
    }
    st.spatial = acts.rows() / timesteps;
    st.nnz = static_cast<double>(acts.popcount());

    const size_t words = acts.numWordsPerRow();
    std::vector<uint64_t> acc(words);

    // Temporal union per spatial position.
    for (size_t pos = 0; pos < st.spatial; ++pos) {
        std::fill(acc.begin(), acc.end(), 0);
        for (size_t t = 0; t < timesteps; ++t) {
            const uint64_t* row = acts.rowWords(t * st.spatial + pos);
            for (size_t w = 0; w < words; ++w)
                acc[w] |= row[w];
        }
        for (size_t w = 0; w < words; ++w)
            st.unionNnz += popcount64(acc[w]);
    }

    // Time-window occupancy.
    const size_t num_windows = ceilDiv(timesteps, window);
    double occupied = 0;
    for (size_t pos = 0; pos < st.spatial; ++pos) {
        for (size_t wd = 0; wd < num_windows; ++wd) {
            std::fill(acc.begin(), acc.end(), 0);
            const size_t t_end =
                std::min(timesteps, (wd + 1) * window);
            for (size_t t = wd * window; t < t_end; ++t) {
                const uint64_t* row =
                    acts.rowWords(t * st.spatial + pos);
                for (size_t w = 0; w < words; ++w)
                    acc[w] |= row[w];
            }
            for (size_t w = 0; w < words; ++w)
                occupied += popcount64(acc[w]);
        }
    }
    const double slots = static_cast<double>(st.spatial) * acts.cols() *
                         static_cast<double>(num_windows);
    st.windowOccupancy = slots > 0 ? occupied / slots : 0.0;

    // Lane imbalance: rows dispatched to `lanes` parallel lanes in
    // batches; a batch completes when its heaviest row finishes.
    double weighted_max = 0;
    for (size_t base = 0; base < acts.rows();
         base += static_cast<size_t>(lanes)) {
        const size_t hi =
            std::min(acts.rows(), base + static_cast<size_t>(lanes));
        size_t batch_max = 0;
        for (size_t r = base; r < hi; ++r)
            batch_max = std::max(batch_max, acts.popcountRow(r));
        weighted_max +=
            static_cast<double>(batch_max) * static_cast<double>(hi - base);
    }
    st.laneImbalance = st.nnz > 0 ? weighted_max / st.nnz : 1.0;
    return st;
}

namespace
{

/** Shared per-layer assembly for all analytic baselines. */
struct BaselineLayerModel
{
    double cycles = 0;
    double processedOps = 0; // ops the architecture actually performs
    DramTraffic traffic;
};

/** Dense traffic common to the baselines (binary acts, 16-b weights). */
DramTraffic
denseTraffic(const LayerTrace& l, size_t tile_m, size_t batch)
{
    DramTraffic t;
    const double m_tiles =
        static_cast<double>(ceilDiv(l.spec.m, tile_m));
    t.weightBytes = static_cast<double>(l.spec.k) * l.spec.n * 2.0 *
                    m_tiles / static_cast<double>(batch);
    t.activationBytes =
        static_cast<double>(l.spec.m) * l.spec.k / 8.0;
    t.outputBytes = static_cast<double>(l.spec.m) * l.spec.n / 8.0;
    return t;
}

SimResult
assemble(const std::string& arch, const ModelTrace& trace,
         const BaselineConfig& cfg, const BaselineEnergyModel& em,
         const std::vector<BaselineLayerModel>& models)
{
    SimResult res;
    res.arch = arch;
    res.workload = modelName(trace.spec.model) + "/" +
                   datasetName(trace.spec.dataset);
    res.freqHz = cfg.freqHz;

    DramModel dram(cfg.dram);
    for (size_t i = 0; i < trace.layers.size(); ++i) {
        const LayerTrace& l = trace.layers[i];
        const BaselineLayerModel& m = models[i];
        const double c = static_cast<double>(l.spec.count);

        LayerSimResult lr;
        lr.name = l.spec.name;
        lr.count = l.spec.count;
        lr.bitOps = static_cast<double>(l.stats.bitOnes) * l.spec.n * c;
        lr.denseOps = static_cast<double>(l.spec.m) * l.spec.k *
                      l.spec.n * c;

        const double mem_cycles =
            dram.transferCycles(m.traffic.totalBytes(), cfg.freqHz);
        lr.cycles = std::max(m.cycles, mem_cycles) * c;
        lr.breakdown.compute = m.cycles * c;
        lr.breakdown.dram = mem_cycles * c;
        lr.breakdown.bound = lr.cycles;

        lr.traffic.weightBytes = m.traffic.weightBytes * c;
        lr.traffic.activationBytes = m.traffic.activationBytes * c;
        lr.traffic.outputBytes = m.traffic.outputBytes * c;

        const double seconds = lr.cycles / cfg.freqHz;
        lr.energy.core = m.processedOps * em.corePjPerOp * c;
        lr.energy.buffer = m.processedOps * em.bufferPjPerOp * c;
        lr.energy.dram =
            dram.dynamicEnergyPj(lr.traffic.totalBytes()) +
            dram.staticEnergyPj(seconds);

        res.cycles += lr.cycles;
        res.bitOps += lr.bitOps;
        res.denseOps += lr.denseOps;
        res.energy += lr.energy;
        res.traffic += lr.traffic;
        res.layers.push_back(std::move(lr));
    }
    return res;
}

} // namespace

SimResult
EyerissSim::run(const ModelTrace& trace) const
{
    // 168 PEs (12x14), dense accumulate-only dataflow: every MAC slot
    // is visited regardless of spike value.
    constexpr double pes = 168.0;
    const BaselineEnergyModel em{10.1, 15.2}; // per dense op
    std::vector<BaselineLayerModel> models;
    for (const auto& l : trace.layers) {
        BaselineLayerModel m;
        const double dense = static_cast<double>(l.spec.m) * l.spec.k *
                             l.spec.n;
        m.cycles = dense / pes;
        m.processedOps = dense;
        m.traffic = denseTraffic(l, 256, cfg.batchSize);
        models.push_back(m);
    }
    return assemble(name(), trace, cfg, em, models);
}

SimResult
SpinalFlowSim::run(const ModelTrace& trace) const
{
    // 128 PEs consume temporally compressed spike streams: at most one
    // spike per neuron survives across timesteps, sorted by arrival.
    // The sequential sort/merge front-end costs an inefficiency factor
    // calibrated on VGG16/CIFAR100 (Table 2: 6.29x over Eyeriss).
    constexpr double pes = 128.0;
    constexpr double inefficiency = 1.45;
    const BaselineEnergyModel em{4.6, 6.7}; // per processed op
    std::vector<BaselineLayerModel> models;
    for (const auto& l : trace.layers) {
        TemporalStats st = computeTemporalStats(
            l.acts, static_cast<size_t>(trace.spec.timesteps));
        BaselineLayerModel m;
        m.processedOps = st.unionNnz * static_cast<double>(l.spec.n);
        m.cycles = m.processedOps * inefficiency / pes;
        m.traffic = denseTraffic(l, 256, cfg.batchSize);
        // Compressed activation stream: 2 B per surviving spike.
        m.traffic.activationBytes = st.unionNnz * 2.0;
        models.push_back(m);
    }
    return assemble(name(), trace, cfg, em, models);
}

SimResult
SatoSim::run(const ModelTrace& trace) const
{
    // Per-timestep parallel integration across 128 accumulator lanes;
    // a batch of rows completes with its slowest lane (measured
    // imbalance). Calibrated to Table 2: 3.96x over Eyeriss.
    constexpr double pes = 128.0;
    constexpr double serialisation = 1.55;
    const BaselineEnergyModel em{7.3, 11.2};
    std::vector<BaselineLayerModel> models;
    for (const auto& l : trace.layers) {
        TemporalStats st = computeTemporalStats(
            l.acts, static_cast<size_t>(trace.spec.timesteps), 32);
        BaselineLayerModel m;
        m.processedOps = st.nnz * static_cast<double>(l.spec.n);
        m.cycles = m.processedOps * st.laneImbalance * serialisation / pes;
        m.traffic = denseTraffic(l, 256, cfg.batchSize);
        models.push_back(m);
    }
    return assemble(name(), trace, cfg, em, models);
}

SimResult
PtbSim::run(const ModelTrace& trace) const
{
    // Systolic array processing time windows: inactive windows are
    // skipped but every timestep inside an occupied window is
    // computed. Calibrated to Table 2: 1.99x over Eyeriss.
    constexpr double pes = 256.0;
    constexpr double efficiency = 0.436;
    constexpr double window = 4.0;
    const BaselineEnergyModel em{14.6, 21.5};
    std::vector<BaselineLayerModel> models;
    for (const auto& l : trace.layers) {
        TemporalStats st = computeTemporalStats(
            l.acts, static_cast<size_t>(trace.spec.timesteps), 32,
            static_cast<size_t>(window));
        BaselineLayerModel m;
        const double t = static_cast<double>(st.timesteps);
        const double windows = std::ceil(t / window);
        m.processedOps = static_cast<double>(st.spatial) * l.spec.k *
                         st.windowOccupancy * windows * window *
                         static_cast<double>(l.spec.n);
        m.cycles = m.processedOps / (pes * efficiency);
        m.traffic = denseTraffic(l, 256, cfg.batchSize);
        models.push_back(m);
    }
    return assemble(name(), trace, cfg, em, models);
}

SimResult
StellarSim::run(const ModelTrace& trace) const
{
    // Few-Spikes neurons compress each active neuron's temporal train
    // to ~fsFactor spikes; the co-designed dataflow runs near full
    // utilisation. Calibrated to Table 2: 6.39x over Eyeriss.
    constexpr double pes = 128.0;
    constexpr double fs_factor = 1.30;
    constexpr double efficiency = 0.91;
    const BaselineEnergyModel em{7.2, 9.9};
    std::vector<BaselineLayerModel> models;
    for (const auto& l : trace.layers) {
        TemporalStats st = computeTemporalStats(
            l.acts, static_cast<size_t>(trace.spec.timesteps));
        BaselineLayerModel m;
        m.processedOps =
            st.unionNnz * fs_factor * static_cast<double>(l.spec.n);
        m.cycles = m.processedOps / (pes * efficiency);
        m.traffic = denseTraffic(l, 256, cfg.batchSize);
        m.traffic.activationBytes = st.unionNnz * fs_factor / 4.0;
        models.push_back(m);
    }
    return assemble(name(), trace, cfg, em, models);
}

std::vector<std::unique_ptr<AcceleratorSim>>
makeBaselines(BaselineConfig cfg)
{
    std::vector<std::unique_ptr<AcceleratorSim>> v;
    v.push_back(std::make_unique<EyerissSim>(cfg));
    v.push_back(std::make_unique<SpinalFlowSim>(cfg));
    v.push_back(std::make_unique<SatoSim>(cfg));
    v.push_back(std::make_unique<PtbSim>(cfg));
    v.push_back(std::make_unique<StellarSim>(cfg));
    return v;
}

} // namespace phi
