/**
 * @file
 * Cycle-level simulator of the Phi accelerator (Sec. 4).
 *
 * The simulator walks the Table-1 tiling schedule (m=256, k=16, n=32,
 * K-first) over a model trace, running the real Preprocessor pipeline
 * (matcher assignments are taken from the trace's decomposition, which
 * the matcher model reproduces exactly; the compressor and multi-window
 * packer run for real on every row) and deriving L1/L2/neuron/DRAM
 * cycles, traffic, and energy per layer. L1 and L2 run concurrently and
 * synchronise per output tile; preprocessing and DRAM overlap compute.
 */

#ifndef PHI_SIM_PHI_SIM_HH
#define PHI_SIM_PHI_SIM_HH

#include "arch/packer.hh"
#include "common/parallel.hh"
#include "sim/arch_config.hh"
#include "sim/energy_model.hh"
#include "sim/result.hh"
#include "snn/trace.hh"

namespace phi
{

/** Cycle-level Phi accelerator model. */
class PhiSimulator
{
  public:
    explicit PhiSimulator(PhiArchConfig cfg = {},
                          OpEnergies energies = defaultOpEnergies(),
                          ExecutionConfig exec = {});

    const PhiArchConfig& config() const { return cfg; }

    /** Execution engine knobs for the host-side parallel layer sweep. */
    const ExecutionConfig& execution() const { return exec; }
    void setExecution(const ExecutionConfig& e) { exec = e; }

    /** Simulate one layer (result is NOT scaled by spec.count). */
    LayerSimResult runLayer(const LayerTrace& layer) const;

    /**
     * Simulate a whole model trace (scales layers by count). Unique
     * layers simulate in parallel; aggregation runs sequentially in
     * layer order, so totals are bit-identical at any thread count.
     */
    SimResult run(const ModelTrace& trace) const;

    /** Name used in comparison tables. */
    std::string name() const { return "Phi"; }

  private:
    PhiArchConfig cfg;
    OpEnergies ops;
    ExecutionConfig exec;
};

/**
 * Functional emulation of the L1+L2 datapath for one layer: streams
 * the decomposition through real Pack structures, the reconfigurable
 * adder tree and PWP gathers, and returns the produced output matrix.
 * Must equal the reference spikeGemm exactly (integration tests).
 * Requires the trace to carry weights.
 */
Matrix<int32_t> emulateDatapath(const LayerTrace& layer,
                                const PhiArchConfig& cfg = {},
                                const ExecutionConfig& exec = {});

} // namespace phi

#endif // PHI_SIM_PHI_SIM_HH
