#include "sim/phi_sim.hh"

#include <algorithm>
#include <cmath>

#include "arch/adder_tree.hh"
#include "arch/buffer.hh"
#include "arch/prefetcher.hh"
#include "common/bitops.hh"
#include "core/pwp.hh"

namespace phi
{

PhiSimulator::PhiSimulator(PhiArchConfig archCfg, OpEnergies energies,
                           ExecutionConfig execCfg)
    : cfg(archCfg), ops(energies), exec(execCfg)
{
    phi_assert(cfg.tileK >= 1 && cfg.tileK <= 64,
               "tile k must be in [1,64]");
    phi_assert(static_cast<size_t>(cfg.simdWidth) == cfg.tileN,
               "SIMD width must equal the n tile size");
}

LayerSimResult
PhiSimulator::runLayer(const LayerTrace& layer) const
{
    const size_t m = layer.spec.m;
    const size_t k_total = layer.spec.k;
    const size_t n = layer.spec.n;
    const size_t partitions = layer.dec.numPartitions();
    phi_assert(layer.dec.m == m, "trace decomposition rows mismatch");

    const size_t m_tiles = ceilDiv(m, cfg.tileM);
    const size_t n_tiles = ceilDiv(n, cfg.tileN);
    // Pattern budget per partition: what the trace was calibrated
    // with, not the config default (the DSE sweeps it).
    size_t q = 0;
    for (size_t p = 0; p < layer.table.numPartitions(); ++p)
        q = std::max(q, layer.table.partition(p).size());
    q = std::max<size_t>(q, 1);
    const size_t idx_window = 16; // pattern indices examined per cycle

    LayerSimResult res;
    res.name = layer.spec.name;
    res.count = layer.spec.count;
    res.bitOps = static_cast<double>(layer.stats.bitOnes) *
                 static_cast<double>(n);
    res.denseOps = static_cast<double>(m) * k_total * n;

    // ------------------------------------------------------------------
    // L1 processor: per row, scan pattern indices in windows of 16
    // partitions; forward up to l1Channels PWPs per cycle.
    // ------------------------------------------------------------------
    uint64_t l1_cycles_one_pass = 0; // per n-tile pass
    uint64_t l1_psum_accesses = 0;
    const size_t groups = ceilDiv(partitions, idx_window);
    for (size_t r = 0; r < m; ++r) {
        for (size_t g = 0; g < groups; ++g) {
            size_t nnz = 0;
            const size_t p_end =
                std::min(partitions, (g + 1) * idx_window);
            for (size_t p = g * idx_window; p < p_end; ++p)
                if (layer.dec.tiles[p].patternIds[r] != 0)
                    ++nnz;
            uint64_t c = ceilDiv(nnz,
                                 static_cast<size_t>(cfg.l1Channels));
            if (!cfg.perfectL1Skip)
                c = std::max<uint64_t>(c, 1);
            l1_cycles_one_pass += c;
            if (nnz > 0)
                ++l1_psum_accesses; // one psum read-modify-write per
                                    // active window
        }
    }
    const double l1_cycles =
        static_cast<double>(l1_cycles_one_pass) * n_tiles;

    // ------------------------------------------------------------------
    // L2 processor: run the real compressor + packer per m-tile over
    // the K-first partition order; the pack stream repeats per n-tile.
    // ------------------------------------------------------------------
    uint64_t packs_total = 0;
    uint64_t pack_units_total = 0;
    uint64_t psum_units_total = 0;
    PackerStats packer_stats;
    for (size_t mt = 0; mt < m_tiles; ++mt) {
        const size_t row_lo = mt * cfg.tileM;
        const size_t row_hi = std::min(m, row_lo + cfg.tileM);
        std::vector<bool> has_psum(row_hi - row_lo, false);

        uint64_t packs_tile = 0;
        Packer packer(cfg.packer, [&](Pack&& pack) {
            ++packs_tile;
            pack_units_total += static_cast<uint64_t>(pack.used());
            for (const auto& seg : pack.rows)
                if (seg.hasPsum)
                    ++psum_units_total;
        });

        for (size_t p = 0; p < partitions; ++p) {
            const TileDecomposition& tile = layer.dec.tiles[p];
            for (size_t r = row_lo; r < row_hi; ++r) {
                auto [lo, hi] = tile.rowRange(r);
                if (lo == hi)
                    continue;
                CompressedRow row;
                row.rowId = static_cast<uint32_t>(r);
                row.partition = static_cast<uint32_t>(p);
                row.needsPsum = has_psum[r - row_lo];
                for (uint32_t e = lo; e < hi; ++e)
                    row.entries.emplace_back(
                        tile.l2Entries[e].col,
                        tile.l2Entries[e].sign);
                packer.push(row);
                has_psum[r - row_lo] = true;
            }
        }
        packer.flush();
        packer_stats = packer.stats(); // keep last tile's cumulative
        packs_total += packs_tile;
    }
    (void)packer_stats;
    const double l2_cycles =
        static_cast<double>(packs_total) * n_tiles;

    // ------------------------------------------------------------------
    // Preprocessor: matcher throughput over all row-tiles; overlapped
    // with compute (see DESIGN.md on self-attribution).
    // ------------------------------------------------------------------
    const double preproc_cycles =
        static_cast<double>(q) +
        static_cast<double>(m) * static_cast<double>(partitions) /
            cfg.matcherLanes;

    // ------------------------------------------------------------------
    // Spiking neuron array.
    // ------------------------------------------------------------------
    const double neuron_cycles =
        static_cast<double>(m) * static_cast<double>(n) /
        cfg.neuronLanes;

    // ------------------------------------------------------------------
    // DRAM traffic (per inference; weights/PWPs amortised over batch).
    // ------------------------------------------------------------------
    DramTraffic traffic;
    const double batch = static_cast<double>(cfg.batchSize);

    // L2 weight stream: every (k,n) weight tile per m-tile.
    traffic.weightBytes = static_cast<double>(k_total) * n *
                          cfg.weightElemBytes * m_tiles / batch;

    // PWPs: full-N pattern rows per (m-tile, partition); the
    // prefetcher fetches only patterns named by the index tile.
    PwpPrefetcher prefetcher;
    if (cfg.prefetchPwp) {
        for (size_t mt = 0; mt < m_tiles; ++mt) {
            const size_t row_lo = mt * cfg.tileM;
            const size_t row_hi = std::min(m, row_lo + cfg.tileM);
            for (size_t p = 0; p < partitions; ++p) {
                const auto& ids = layer.dec.tiles[p].patternIds;
                std::vector<uint16_t> tile_ids(
                    ids.begin() + static_cast<long>(row_lo),
                    ids.begin() + static_cast<long>(row_hi));
                prefetcher.analyzeTile(tile_ids, q);
            }
        }
        traffic.pwpBytes = static_cast<double>(
                               prefetcher.fetchedPatterns()) *
                           n * cfg.pwpElemBytes / batch;
    } else {
        traffic.pwpBytes = static_cast<double>(q) * partitions *
                           m_tiles * n * cfg.pwpElemBytes / batch;
    }

    // Activations in: compact pack stream + pattern indices, or the
    // uncompressed two-level representation (Fig. 12a).
    const double idx_bytes = static_cast<double>(m) * partitions *
                             cfg.patternIdBytes;
    if (cfg.compressActs) {
        // Compact index stream: a presence bitmap over row-tiles plus
        // one id byte per assigned tile (index density ~50%, Sec. 4.4).
        const double packed_idx_bytes =
            static_cast<double>(m) * partitions / 8.0 +
            static_cast<double>(layer.stats.assigned) *
                cfg.patternIdBytes;
        traffic.activationBytes =
            static_cast<double>(pack_units_total) * cfg.packUnitBytes +
            static_cast<double>(packs_total) * 4.0 /* metadata */ +
            packed_idx_bytes;
    } else {
        // Uncompressed two-level form: a 1-bit nonzero bitmap over the
        // element matrix, sign bits for the nonzeros, plus indices.
        traffic.activationBytes =
            static_cast<double>(m) * k_total / 8.0 +
            static_cast<double>(layer.dec.totalL2Nnz()) / 8.0 +
            idx_bytes;
    }

    // Output-stationarity is limited by the partial-sum buffer: the N
    // dimension is processed in chunks of n_chunk_cols columns. When
    // an m-tile's Level 2 stream does not fit on chip, it must be
    // re-streamed from DRAM once per chunk (Fig. 7d's buffer/DRAM
    // trade-off; at the paper's 240 KB complement no layer re-fetches).
    const double n_chunk_cols = std::max<double>(
        static_cast<double>(cfg.tileN),
        std::floor(static_cast<double>(cfg.psumBufBytes) /
                   static_cast<double>(cfg.tileM * cfg.psumElemBytes)));
    const double n_chunks =
        std::max(1.0, std::ceil(static_cast<double>(n) / n_chunk_cols));
    const double act_stream_per_mtile =
        traffic.activationBytes / static_cast<double>(m_tiles);
    const double act_hold_capacity = static_cast<double>(
        cfg.packBufBytes + cfg.patternIdBufBytes);
    if (act_stream_per_mtile > act_hold_capacity)
        traffic.refetchBytes =
            traffic.activationBytes * (n_chunks - 1.0);

    // Output spikes written back as a bitmap.
    traffic.outputBytes = static_cast<double>(m) * n / 8.0;

    const double dram_cycles =
        DramModel(cfg.dram).transferCycles(traffic.totalBytes(),
                                           cfg.freqHz);

    // ------------------------------------------------------------------
    // Assemble cycles: L1 and L2 run concurrently, synchronising per
    // output tile; preprocessing, neurons and DRAM overlap compute.
    // ------------------------------------------------------------------
    const double sync_cycles =
        2.0 * static_cast<double>(m_tiles) * n_tiles;
    const double compute =
        std::max(l1_cycles, l2_cycles) + sync_cycles;
    const double bound = std::max(
        {compute, preproc_cycles, neuron_cycles, dram_cycles});

    res.breakdown.l1 = l1_cycles;
    res.breakdown.l2 = l2_cycles;
    res.breakdown.compute = compute;
    res.breakdown.preprocess = preproc_cycles;
    res.breakdown.neuron = neuron_cycles;
    res.breakdown.dram = dram_cycles;
    res.breakdown.bound = bound;
    res.cycles = bound;
    res.traffic = traffic;

    // ------------------------------------------------------------------
    // Energy.
    // ------------------------------------------------------------------
    const double assigned = static_cast<double>(layer.stats.assigned);
    const double l2_nnz = static_cast<double>(layer.dec.totalL2Nnz());

    // Core: L1 PWP accumulations, L2 unit accumulations (incl. psum
    // units), matcher comparisons, dispatch, LIF updates.
    const double l1_adds = assigned * n;
    const double l2_adds =
        (l2_nnz + static_cast<double>(psum_units_total)) * n;
    const double matcher_cmps = static_cast<double>(m) * partitions *
                                (static_cast<double>(q) + 1.0);
    EnergyBreakdownPj e;
    e.core = (l1_adds + l2_adds) * ops.add16 +
             matcher_cmps * ops.patternCompare +
             static_cast<double>(pack_units_total) * n_tiles *
                 ops.dispatch +
             static_cast<double>(m) * n * ops.lifUpdate;

    // Buffers: account bytes moved through each named buffer.
    SramBuffer weight_buf("weight", cfg.weightBufBytes);
    SramBuffer pwp_buf("pwp", cfg.pwpBufBytes);
    SramBuffer psum_buf("psum", cfg.psumBufBytes);
    SramBuffer pack_buf("pack", cfg.packBufBytes);
    SramBuffer id_buf("pattern_id", cfg.patternIdBufBytes);

    weight_buf.write(static_cast<uint64_t>(traffic.weightBytes * batch));
    weight_buf.read(static_cast<uint64_t>(l2_nnz * cfg.tileN *
                                          cfg.weightElemBytes));
    pwp_buf.write(static_cast<uint64_t>(traffic.pwpBytes * batch));
    pwp_buf.read(static_cast<uint64_t>(assigned * n *
                                       cfg.pwpElemBytes));
    psum_buf.read(static_cast<uint64_t>(
        (static_cast<double>(l1_psum_accesses) +
         static_cast<double>(psum_units_total)) *
        n_tiles * cfg.tileN * cfg.psumElemBytes));
    psum_buf.write(static_cast<uint64_t>(
        (static_cast<double>(l1_psum_accesses) +
         static_cast<double>(packs_total)) *
        n_tiles * cfg.tileN * cfg.psumElemBytes));
    pack_buf.write(static_cast<uint64_t>(
        static_cast<double>(pack_units_total) * cfg.packUnitBytes));
    pack_buf.read(static_cast<uint64_t>(
        static_cast<double>(pack_units_total) * n_tiles *
        cfg.packUnitBytes));
    id_buf.write(static_cast<uint64_t>(idx_bytes));
    id_buf.read(static_cast<uint64_t>(idx_bytes * (1.0 + n_tiles)));

    const double seconds = bound / cfg.freqHz;
    e.buffer = weight_buf.dynamicEnergyPj() + pwp_buf.dynamicEnergyPj() +
               psum_buf.dynamicEnergyPj() + pack_buf.dynamicEnergyPj() +
               id_buf.dynamicEnergyPj();
    // Buffer + logic leakage over the layer runtime.
    const double buf_kib =
        static_cast<double>(cfg.totalBufferBytes()) / 1024.0;
    e.buffer += SramModel::leakageMw(buf_kib) * seconds * 1e9;
    e.core += PhiAreaPowerModel(cfg).logicLeakageMw() * seconds * 1e9;

    DramModel dram(cfg.dram);
    e.dram = dram.dynamicEnergyPj(traffic.totalBytes()) +
             dram.staticEnergyPj(seconds);

    res.energy = e;
    return res;
}

SimResult
PhiSimulator::run(const ModelTrace& trace) const
{
    SimResult result;
    result.arch = name();
    result.workload = modelName(trace.spec.model) + "/" +
                      datasetName(trace.spec.dataset);
    result.freqHz = cfg.freqHz;

    // Unique layers are independent: simulate them in parallel, then
    // accumulate sequentially in layer order (float sums stay
    // bit-identical at any thread count).
    std::vector<LayerSimResult> layerResults(trace.layers.size());
    parallelFor(exec, 0, trace.layers.size(), 1,
                [&](size_t i0, size_t i1) {
        for (size_t i = i0; i < i1; ++i)
            layerResults[i] = runLayer(trace.layers[i]);
    });

    for (size_t i = 0; i < trace.layers.size(); ++i) {
        LayerSimResult lr = std::move(layerResults[i]);
        const double c =
            static_cast<double>(trace.layers[i].spec.count);
        lr.cycles *= c;
        lr.energy.core *= c;
        lr.energy.buffer *= c;
        lr.energy.dram *= c;
        lr.traffic.weightBytes *= c;
        lr.traffic.pwpBytes *= c;
        lr.traffic.activationBytes *= c;
        lr.traffic.refetchBytes *= c;
        lr.traffic.outputBytes *= c;
        lr.bitOps *= c;
        lr.denseOps *= c;

        result.cycles += lr.cycles;
        result.energy += lr.energy;
        result.traffic += lr.traffic;
        result.bitOps += lr.bitOps;
        result.denseOps += lr.denseOps;
        result.layers.push_back(std::move(lr));
    }
    return result;
}

Matrix<int32_t>
emulateDatapath(const LayerTrace& layer, const PhiArchConfig& cfg,
                const ExecutionConfig& exec)
{
    phi_assert(!layer.weights.empty(),
               "datapath emulation requires trace weights");
    const size_t m = layer.spec.m;
    const size_t n = layer.spec.n;
    const int k = layer.dec.k;
    Matrix<int32_t> out(m, n, 0);

    // L1: gather PWP rows by pattern id, row-parallel (disjoint rows).
    auto pwps = computeLayerPwps(layer.table, layer.weights, exec);
    parallelFor(exec, 0, m, 64, [&](size_t r0, size_t r1) {
        for (const auto& tile : layer.dec.tiles) {
            const auto& pwp = pwps[tile.partition];
            for (size_t r = r0; r < r1; ++r) {
                if (tile.patternIds[r] == 0)
                    continue;
                const int32_t* src = pwp.rowPtr(tile.patternIds[r] - 1);
                int32_t* dst = out.rowPtr(r);
                for (size_t c = 0; c < n; ++c)
                    dst[c] += src[c];
            }
        }
    });

    // L2: stream packs through dispatcher + reconfigurable adder tree
    // per n-tile, maintaining a real psum store. Every (n-tile, m-tile)
    // pair touches a disjoint output block, so the grid runs in
    // parallel with all pack/psum state local to a grid cell.
    const size_t n_tiles = ceilDiv(n, cfg.tileN);
    const size_t m_tiles = ceilDiv(m, cfg.tileM);

    parallelFor(exec, 0, n_tiles * m_tiles, 1,
                [&](size_t t0, size_t t1) {
        for (size_t t = t0; t < t1; ++t) {
            const size_t nt = t / m_tiles;
            const size_t mt = t % m_tiles;
            const size_t col_lo = nt * cfg.tileN;
            const size_t col_hi = std::min(n, col_lo + cfg.tileN);
            const size_t width = col_hi - col_lo;

            const size_t row_lo = mt * cfg.tileM;
            const size_t row_hi = std::min(m, row_lo + cfg.tileM);

            // psum[row] for this (m,n) tile.
            Matrix<int32_t> psums(row_hi - row_lo, cfg.tileN, 0);
            std::vector<bool> has_psum(row_hi - row_lo, false);

            ReconfigurableAdderTree tree(cfg.tileN);
            std::vector<Pack> packs;
            Packer packer(cfg.packer, [&](Pack&& p) {
                packs.push_back(std::move(p));
            });

            for (size_t p = 0; p < layer.dec.numPartitions(); ++p) {
                const TileDecomposition& tile = layer.dec.tiles[p];
                for (size_t r = row_lo; r < row_hi; ++r) {
                    auto [lo, hi] = tile.rowRange(r);
                    if (lo == hi)
                        continue;
                    CompressedRow row;
                    row.rowId = static_cast<uint32_t>(r);
                    row.partition = static_cast<uint32_t>(p);
                    row.needsPsum = has_psum[r - row_lo];
                    for (uint32_t e2 = lo; e2 < hi; ++e2)
                        row.entries.emplace_back(
                            tile.l2Entries[e2].col,
                            tile.l2Entries[e2].sign);
                    packer.push(row);
                    has_psum[r - row_lo] = true;
                }
            }
            packer.flush();

            for (const auto& pack : packs) {
                // Dispatcher (Fig. 5 step 4): prepare one adder-tree
                // input per unit — weight rows (negated for -1) or
                // psums read from the store.
                Matrix<int32_t> inputs(
                    ReconfigurableAdderTree::numChannels, cfg.tileN, 0);
                size_t ch = 0;
                size_t unit_idx = 0;
                // Map psum slot -> rowId for psum units, in order.
                std::vector<uint32_t> psum_rows;
                for (const auto& seg : pack.rows)
                    if (seg.hasPsum)
                        psum_rows.push_back(seg.rowId);

                size_t psum_slot_seen = 0;
                for (const auto& seg : pack.rows) {
                    for (uint8_t u = 0; u < seg.unitCount;
                         ++u, ++unit_idx, ++ch) {
                        const PackUnit& unit = pack.units[unit_idx];
                        if (unit.label == PackUnit::Label::Psum) {
                            phi_assert(unit.index == psum_slot_seen,
                                       "psum slot order violated");
                            ++psum_slot_seen;
                            const size_t rr = seg.rowId - row_lo;
                            for (size_t c = 0; c < width; ++c)
                                inputs(ch, c) = psums(rr, c);
                            // Psum consumed: it will be rewritten by
                            // this pack's output.
                            for (size_t c = 0; c < width; ++c)
                                psums(rr, c) = 0;
                        } else {
                            const size_t wk =
                                seg.partition *
                                    static_cast<size_t>(k) +
                                unit.index;
                            phi_assert(wk < layer.weights.rows(),
                                       "weight row out of range");
                            for (size_t c = 0; c < width; ++c) {
                                int32_t v = layer.weights(
                                    wk, col_lo + c);
                                inputs(ch, c) =
                                    unit.value > 0 ? v : -v;
                            }
                        }
                    }
                }

                auto sums = tree.reduce(inputs, pack.segments());
                phi_assert(sums.size() == pack.rows.size(),
                           "adder tree segment count mismatch");
                for (size_t s = 0; s < sums.size(); ++s) {
                    const size_t rr = pack.rows[s].rowId - row_lo;
                    for (size_t c = 0; c < width; ++c)
                        psums(rr, c) += sums[s][c];
                }
            }

            // Drain psums into the output tile.
            for (size_t r = row_lo; r < row_hi; ++r)
                for (size_t c = 0; c < width; ++c)
                    out(r, col_lo + c) += psums(r - row_lo, c);
        }
    });
    return out;
}

} // namespace phi
