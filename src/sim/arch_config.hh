/**
 * @file
 * Phi accelerator configuration (Table 1) and simulation options.
 */

#ifndef PHI_SIM_ARCH_CONFIG_HH
#define PHI_SIM_ARCH_CONFIG_HH

#include <cstddef>

#include "arch/dram.hh"
#include "arch/packer.hh"

namespace phi
{

/** Table 1 setup plus modelling knobs. */
struct PhiArchConfig
{
    // --- Tile sizes ---
    size_t tileM = 256;
    size_t tileK = 16; // partition width k
    size_t tileN = 32;

    // --- Pattern configuration ---
    int patternsPerPartition = 128; // q

    // --- On-chip buffers (bytes) ---
    size_t packBufBytes = 4 * 1024;
    size_t weightBufBytes = 16 * 1024;
    size_t pwpBufBytes = 64 * 1024;
    size_t patternIdBufBytes = 28 * 1024;
    size_t psumBufBytes = 128 * 1024;

    // --- Compute arrays ---
    int l1Channels = 8;  // PWPs accumulated per cycle
    int l2Channels = 8;  // pack units per cycle
    int simdWidth = 32;  // vector lanes (= tileN)
    int neuronLanes = 32;
    int matcherLanes = 8; // row-tiles matched per cycle

    // --- Packer ---
    PackerConfig packer;

    // --- Clock & memory ---
    double freqHz = 500e6;
    DramConfig dram;

    /**
     * Inferences sharing one weight/PWP fetch. Weights stream from
     * DRAM once per batch (standard inference batching); activations
     * are per-inference.
     */
    size_t batchSize = 32;

    // --- Datapath element sizes (bytes) ---
    size_t weightElemBytes = 2; // 16-bit weights
    size_t pwpElemBytes = 2;    // 16-bit PWP entries
    size_t psumElemBytes = 4;   // 32-bit partial sums
    size_t packUnitBytes = 1;   // label(1)+index(4)+value(1) bits, padded
    size_t patternIdBytes = 1;  // log2(128)+1 bits, padded

    // --- Feature toggles (ablations / Fig. 12 modes) ---
    bool prefetchPwp = true;   // Sec. 4.4 PWP prefetcher
    bool compressActs = true;  // Sec. 4.2.2 compact structure
    bool perfectL1Skip = false; // perfect vs straightforward skipping

    size_t
    totalBufferBytes() const
    {
        return packBufBytes + weightBufBytes + pwpBufBytes +
               patternIdBufBytes + psumBufBytes;
    }

    /** Scale every buffer proportionally to a new total (Fig. 7d). */
    PhiArchConfig
    withTotalBufferBytes(size_t total) const
    {
        PhiArchConfig c = *this;
        const double scale = static_cast<double>(total) /
                             static_cast<double>(totalBufferBytes());
        c.packBufBytes = static_cast<size_t>(packBufBytes * scale);
        c.weightBufBytes = static_cast<size_t>(weightBufBytes * scale);
        c.pwpBufBytes = static_cast<size_t>(pwpBufBytes * scale);
        c.patternIdBufBytes =
            static_cast<size_t>(patternIdBufBytes * scale);
        c.psumBufBytes = static_cast<size_t>(psumBufBytes * scale);
        return c;
    }
};

} // namespace phi

#endif // PHI_SIM_ARCH_CONFIG_HH
