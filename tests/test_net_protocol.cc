/**
 * @file
 * Wire-protocol tests (net/protocol.hh): codec round-trips, the
 * exhaustive wire<->engine error-code mapping, and the incremental
 * frame parser against hostile input — truncated headers, lying
 * length fields, oversized frames, bad magic, trailing garbage. The
 * contract pinned here: every malformed input is a *typed* rejection
 * (ParseStatus::Bad with a code, or io::IoError from a body decoder),
 * never an out-of-bounds read, an allocation bomb, or a crash.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "net/protocol.hh"

namespace phi::net
{
namespace
{

WireRequest
sampleRequest()
{
    Rng rng(7);
    WireRequest req;
    req.id = 42;
    req.model = "vision";
    req.version = 3;
    req.layer = 1;
    req.deadlineMs = 250;
    req.priority = -2;
    req.acts = BinaryMatrix::random(5, 130, 0.3, rng);
    return req;
}

std::vector<uint8_t>
encodeRequestFrame(const WireRequest& req)
{
    io::ByteWriter body;
    encodeRequest(body, req);
    return encodeFrame(FrameType::Request, body.buffer());
}

TEST(NetProtocol, RequestRoundTripsBitExact)
{
    const WireRequest req = sampleRequest();
    io::ByteWriter w;
    encodeRequest(w, req);
    io::ByteReader r(w.buffer().data(), w.buffer().size());
    const WireRequest back = decodeRequest(r);

    EXPECT_EQ(back.id, req.id);
    EXPECT_EQ(back.model, req.model);
    EXPECT_EQ(back.version, req.version);
    EXPECT_EQ(back.layer, req.layer);
    EXPECT_EQ(back.deadlineMs, req.deadlineMs);
    EXPECT_EQ(back.priority, req.priority);
    ASSERT_EQ(back.acts.rows(), req.acts.rows());
    ASSERT_EQ(back.acts.cols(), req.acts.cols());
    for (size_t i = 0; i < req.acts.rows(); ++i)
        for (size_t c = 0; c < req.acts.cols(); ++c)
            ASSERT_EQ(back.acts.get(i, c), req.acts.get(i, c))
                << "bit (" << i << "," << c << ")";
}

TEST(NetProtocol, ResponseRoundTripsBitExact)
{
    WireResponse resp;
    resp.id = 9;
    resp.model = "nlp";
    resp.version = 12;
    resp.layer = 0;
    resp.out = Matrix<int32_t>(3, 7);
    int32_t v = -11;
    for (size_t r = 0; r < 3; ++r)
        for (size_t c = 0; c < 7; ++c)
            resp.out(r, c) = v += 13;

    io::ByteWriter w;
    encodeResponse(w, resp);
    io::ByteReader r(w.buffer().data(), w.buffer().size());
    const WireResponse back = decodeResponse(r);
    EXPECT_EQ(back.id, resp.id);
    EXPECT_EQ(back.model, resp.model);
    EXPECT_EQ(back.version, resp.version);
    EXPECT_TRUE(back.out == resp.out);
}

TEST(NetProtocol, ErrorRoundTrips)
{
    const WireError err{7, WireErrorCode::QueueFull, "queue is full"};
    io::ByteWriter w;
    encodeError(w, err);
    io::ByteReader r(w.buffer().data(), w.buffer().size());
    const WireError back = decodeError(r);
    EXPECT_EQ(back.id, err.id);
    EXPECT_EQ(back.code, err.code);
    EXPECT_EQ(back.message, err.message);
}

TEST(NetProtocol, EveryEngineCodeHasAUniqueWireImageAndInverse)
{
    const EngineErrorCode all[] = {
        EngineErrorCode::EmptyModel,      EngineErrorCode::InvalidLayer,
        EngineErrorCode::MissingWeights,  EngineErrorCode::ShapeMismatch,
        EngineErrorCode::NullActivation,  EngineErrorCode::PendingRequests,
        EngineErrorCode::QueueFull,       EngineErrorCode::Stopped,
        EngineErrorCode::UnknownModel,    EngineErrorCode::ModelExists,
        EngineErrorCode::ModelBusy,       EngineErrorCode::DeadlineExceeded,
        EngineErrorCode::Internal,        EngineErrorCode::SessionNotFound,
        EngineErrorCode::SessionExpired,  EngineErrorCode::TooManySessions,
    };
    std::vector<WireErrorCode> images;
    for (EngineErrorCode c : all) {
        const WireErrorCode wire = wireCode(c);
        // Engine band, and a faithful inverse.
        EXPECT_GE(static_cast<uint16_t>(wire), 100);
        EXPECT_LT(static_cast<uint16_t>(wire), 200);
        const auto back = engineCodeOf(wire);
        ASSERT_TRUE(back.has_value()) << wireErrorCodeName(wire);
        EXPECT_EQ(*back, c);
        // And the names agree, so logs read the same on both sides.
        EXPECT_STREQ(wireErrorCodeName(wire), engineErrorCodeName(c));
        images.push_back(wire);
    }
    // Injective: no two engine codes share a wire image.
    for (size_t i = 0; i < images.size(); ++i)
        for (size_t j = i + 1; j < images.size(); ++j)
            EXPECT_NE(images[i], images[j]);
}

TEST(NetProtocol, ProtocolBandCodesHaveNoEngineInverse)
{
    for (WireErrorCode c :
         {WireErrorCode::BadMagic, WireErrorCode::FrameTooLarge,
          WireErrorCode::MalformedFrame, WireErrorCode::ServerDraining,
          WireErrorCode::Timeout, WireErrorCode::IoFailure})
        EXPECT_FALSE(engineCodeOf(c).has_value())
            << wireErrorCodeName(c);
}

// ---- incremental parser against hostile bytes -----------------------

TEST(NetProtocol, ParserNeedsMoreOnTruncatedHeaderAndBody)
{
    const std::vector<uint8_t> frame =
        encodeRequestFrame(sampleRequest());
    ParsedFrame out;
    WireErrorCode code;
    std::string msg;
    // Every prefix short of the full frame is NeedMore — never Bad,
    // never a phantom Frame.
    for (size_t len = 0; len < frame.size(); ++len)
        ASSERT_EQ(tryParseFrame(frame.data(), len,
                                kDefaultMaxFrameBytes, out, code, msg),
                  ParseStatus::NeedMore)
            << "at prefix length " << len;
    EXPECT_EQ(tryParseFrame(frame.data(), frame.size(),
                            kDefaultMaxFrameBytes, out, code, msg),
              ParseStatus::Frame);
    EXPECT_EQ(out.frameLen, frame.size());
    EXPECT_EQ(out.type, FrameType::Request);
}

TEST(NetProtocol, ParserRejectsBadMagicOnTheFirstWrongByte)
{
    const uint8_t garbage[] = {'G', 'E', 'T', ' ', '/', ' '};
    ParsedFrame out;
    WireErrorCode code;
    std::string msg;
    // One byte is enough: 'G' != 'P'.
    EXPECT_EQ(tryParseFrame(garbage, 1, kDefaultMaxFrameBytes, out,
                            code, msg),
              ParseStatus::Bad);
    EXPECT_EQ(code, WireErrorCode::BadMagic);
}

TEST(NetProtocol, ParserRejectsUnknownFrameType)
{
    std::vector<uint8_t> frame = encodeRequestFrame(sampleRequest());
    frame[4] = 0xEE; // type field
    ParsedFrame out;
    WireErrorCode code;
    std::string msg;
    EXPECT_EQ(tryParseFrame(frame.data(), frame.size(),
                            kDefaultMaxFrameBytes, out, code, msg),
              ParseStatus::Bad);
    EXPECT_EQ(code, WireErrorCode::BadFrameType);
}

TEST(NetProtocol, ParserRejectsOversizedBodyBeforeBuffering)
{
    io::ByteWriter w;
    w.u32(kMagic);
    w.u32(static_cast<uint32_t>(FrameType::Request));
    w.u32(0xFFFF'FFFFu); // 4 GiB body claim
    ParsedFrame out;
    WireErrorCode code;
    std::string msg;
    // The 12 header bytes alone are enough to refuse — no body is
    // ever awaited or allocated for.
    EXPECT_EQ(tryParseFrame(w.buffer().data(), w.buffer().size(),
                            1 << 20, out, code, msg),
              ParseStatus::Bad);
    EXPECT_EQ(code, WireErrorCode::FrameTooLarge);
}

TEST(NetProtocol, LyingActivationShapeIsTypedNotAnAllocationBomb)
{
    // A request whose header claims a huge activation matrix but whose
    // body holds almost nothing: the decoder must reject on the byte
    // arithmetic *before* sizing any allocation from the shape.
    io::ByteWriter w;
    w.u32(1);         // id
    w.str("vision");  // model
    w.u64(0);         // version
    w.u32(0);         // layer
    w.u32(0);         // deadline
    w.i32(0);         // priority
    w.u32(0x00FF'FFFF); // rows: 16M
    w.u32(0x00FF'FFFF); // cols: 16M
    w.u32(0);           // "first row" — and nothing more
    io::ByteReader r(w.buffer().data(), w.buffer().size());
    EXPECT_THROW(decodeRequest(r), io::IoError);
}

TEST(NetProtocol, TruncatedRequestBodyIsTyped)
{
    io::ByteWriter w;
    encodeRequest(w, sampleRequest());
    const std::vector<uint8_t>& full = w.buffer();
    // Chop the body at several depths; every cut is a typed IoError.
    for (size_t keep : {size_t{0}, size_t{3}, size_t{10},
                        full.size() / 2, full.size() - 1}) {
        io::ByteReader r(full.data(), keep);
        EXPECT_THROW(decodeRequest(r), io::IoError)
            << "kept " << keep << " of " << full.size();
    }
}

TEST(NetProtocol, TrailingGarbageAfterBodyIsTyped)
{
    io::ByteWriter w;
    encodeRequest(w, sampleRequest());
    std::vector<uint8_t> padded = w.buffer();
    padded.push_back(0xAB);
    io::ByteReader r(padded.data(), padded.size());
    EXPECT_THROW(decodeRequest(r), io::IoError);
}

// ---- session frames -------------------------------------------------

TEST(NetProtocol, SessionBodiesRoundTripBitExact)
{
    Rng rng(19);

    WireOpenSession open;
    open.id = 3;
    open.model = "vision";
    LifParams p;
    p.leak = 0.875f;
    p.threshold = 2.5f;
    p.hardReset = false;
    p.refractory = 4;
    open.params = {p, LifParams{}};
    {
        io::ByteWriter w;
        encodeOpenSession(w, open);
        io::ByteReader r(w.buffer().data(), w.buffer().size());
        const WireOpenSession back = decodeOpenSession(r);
        EXPECT_EQ(back.id, 3u);
        EXPECT_EQ(back.model, "vision");
        ASSERT_EQ(back.params.size(), 2u);
        // Exact float bits: the codec ships IEEE-754 patterns.
        EXPECT_EQ(back.params[0].leak, 0.875f);
        EXPECT_EQ(back.params[0].threshold, 2.5f);
        EXPECT_FALSE(back.params[0].hardReset);
        EXPECT_EQ(back.params[0].refractory, 4);
        EXPECT_TRUE(back.params[1].hardReset);
    }

    const WireSessionOpened opened{4, 77, "vision", 2, 3};
    {
        io::ByteWriter w;
        encodeSessionOpened(w, opened);
        io::ByteReader r(w.buffer().data(), w.buffer().size());
        const WireSessionOpened back = decodeSessionOpened(r);
        EXPECT_EQ(back.id, 4u);
        EXPECT_EQ(back.sessionId, 77u);
        EXPECT_EQ(back.model, "vision");
        EXPECT_EQ(back.version, 2u);
        EXPECT_EQ(back.layers, 3u);
    }

    WireStepSession step;
    step.id = 5;
    step.sessionId = 77;
    step.frames = BinaryMatrix::random(6, 130, 0.3, rng);
    {
        io::ByteWriter w;
        encodeStepSession(w, step);
        io::ByteReader r(w.buffer().data(), w.buffer().size());
        const WireStepSession back = decodeStepSession(r);
        EXPECT_EQ(back.id, 5u);
        EXPECT_EQ(back.sessionId, 77u);
        EXPECT_TRUE(back.frames == step.frames);
    }

    WireSessionStepped stepped;
    stepped.id = 6;
    stepped.sessionId = 77;
    stepped.firstStep = 1234;
    stepped.spikes = BinaryMatrix::random(6, 65, 0.4, rng);
    {
        io::ByteWriter w;
        encodeSessionStepped(w, stepped);
        io::ByteReader r(w.buffer().data(), w.buffer().size());
        const WireSessionStepped back = decodeSessionStepped(r);
        EXPECT_EQ(back.id, 6u);
        EXPECT_EQ(back.sessionId, 77u);
        EXPECT_EQ(back.firstStep, 1234u);
        EXPECT_TRUE(back.spikes == stepped.spikes);
    }

    const WireCloseSession close{7, 77};
    {
        io::ByteWriter w;
        encodeCloseSession(w, close);
        io::ByteReader r(w.buffer().data(), w.buffer().size());
        const WireCloseSession back = decodeCloseSession(r);
        EXPECT_EQ(back.id, 7u);
        EXPECT_EQ(back.sessionId, 77u);
    }

    const WireSessionClosed closed{8, 77, 4096};
    {
        io::ByteWriter w;
        encodeSessionClosed(w, closed);
        io::ByteReader r(w.buffer().data(), w.buffer().size());
        const WireSessionClosed back = decodeSessionClosed(r);
        EXPECT_EQ(back.id, 8u);
        EXPECT_EQ(back.sessionId, 77u);
        EXPECT_EQ(back.steps, 4096u);
    }
}

TEST(NetProtocol, ParserAcceptsEverySessionFrameType)
{
    for (FrameType t :
         {FrameType::OpenSession, FrameType::StepSession,
          FrameType::CloseSession, FrameType::SessionOpened,
          FrameType::SessionStepped, FrameType::SessionClosed}) {
        io::ByteWriter body;
        body.u64(1);
        const std::vector<uint8_t> frame =
            encodeFrame(t, body.buffer());
        ParsedFrame out;
        WireErrorCode code{};
        std::string msg;
        ASSERT_EQ(tryParseFrame(frame.data(), frame.size(),
                                kDefaultMaxFrameBytes, out, code, msg),
                  ParseStatus::Frame)
            << static_cast<int>(t);
        EXPECT_EQ(out.type, t);
        EXPECT_EQ(out.frameLen, frame.size());
    }
}

TEST(NetProtocol, LyingLifParamsCountIsTypedNotAnAllocationBomb)
{
    // An OpenSession body claiming 2^31 LifParams but carrying none:
    // the decoder must bound the count by the bytes actually present.
    io::ByteWriter w;
    w.u32(1);        // request id
    w.str("vision"); // model
    w.u32(0x8000'0000u); // params count (a lie)
    io::ByteReader r(w.buffer().data(), w.buffer().size());
    EXPECT_THROW(decodeOpenSession(r), io::IoError);
}

TEST(NetProtocol, ActsWithRaggedColumnsSurviveTheWire)
{
    // Column counts straddling word boundaries: 1, 63, 64, 65, 128.
    Rng rng(11);
    for (size_t cols : {1u, 63u, 64u, 65u, 128u}) {
        WireRequest req;
        req.model = "m";
        req.acts = BinaryMatrix::random(3, cols, 0.5, rng);
        io::ByteWriter w;
        encodeRequest(w, req);
        io::ByteReader r(w.buffer().data(), w.buffer().size());
        const WireRequest back = decodeRequest(r);
        ASSERT_EQ(back.acts.cols(), cols);
        for (size_t i = 0; i < 3; ++i)
            for (size_t c = 0; c < cols; ++c)
                ASSERT_EQ(back.acts.get(i, c), req.acts.get(i, c));
    }
}

} // namespace
} // namespace phi::net
