/**
 * @file
 * Tests for the Phi hierarchical decomposition: assignment rules,
 * bidirectional correction, and the losslessness invariant swept over
 * densities, tile widths and pattern counts.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/calibration.hh"
#include "core/decompose.hh"

namespace phi
{
namespace
{

TEST(PatternAssigner, ExactMatchHasEmptyL2)
{
    PatternSet ps(4, {0b0110, 0b1101});
    PatternAssigner a(ps);
    const RowAssignment& r = a.assign(0b0110);
    EXPECT_EQ(r.patternId, 1);
    EXPECT_EQ(r.posMask, 0u);
    EXPECT_EQ(r.negMask, 0u);
    EXPECT_EQ(r.nnz(), 0);
}

TEST(PatternAssigner, PaperFigure2Examples)
{
    // Fig. 2(b): patterns 1=0110, 2=1101 (ids per our 1-based order).
    PatternSet ps(4, {0b0110, 0b1101});
    PatternAssigner a(ps);

    // Row 2 = 1110 matches pattern 0110 with one +1 correction at the
    // bit where the row has 1 and the pattern 0 (paper: "1000").
    const RowAssignment& row2 = a.assign(0b1110);
    EXPECT_EQ(row2.patternId, 1);
    EXPECT_EQ(row2.posMask, 0b1000u);
    EXPECT_EQ(row2.negMask, 0u);

    // Row 1 = 1100 matches pattern 1101 with one -1 correction
    // (paper: "000-1" at the pattern's extra bit).
    const RowAssignment& row1 = a.assign(0b1100);
    EXPECT_EQ(row1.patternId, 2);
    EXPECT_EQ(row1.negMask, 0b0001u);
    EXPECT_EQ(row1.posMask, 0u);
}

TEST(PatternAssigner, KeepsBitSparsityWhenPatternsDontHelp)
{
    // Row 3 in Fig. 2: original bit sparsity beats every pattern, so
    // no pattern is assigned and L2 carries the raw bits.
    PatternSet ps(4, {0b0110, 0b1101});
    PatternAssigner a(ps);
    const RowAssignment& r = a.assign(0b0001);
    EXPECT_EQ(r.patternId, 0);
    EXPECT_EQ(r.posMask, 0b0001u);
    EXPECT_EQ(r.negMask, 0u);
}

TEST(PatternAssigner, TieGoesToNoPattern)
{
    // Row popcount 1; best pattern distance also 1: assigning would
    // add an L1 op without reducing L2 -> keep no pattern.
    PatternSet ps(4, {0b0011});
    PatternAssigner a(ps);
    const RowAssignment& r = a.assign(0b0010);
    EXPECT_EQ(r.patternId, 0);
}

TEST(PatternAssigner, ZeroRowNeedsNothing)
{
    PatternSet ps(4, {0b0110});
    PatternAssigner a(ps);
    const RowAssignment& r = a.assign(0);
    EXPECT_EQ(r.patternId, 0);
    EXPECT_EQ(r.nnz(), 0);
}

TEST(PatternAssigner, PicksMinimumHammingPattern)
{
    PatternSet ps(8, {0b11110000, 0b00001111, 0b10101010});
    PatternAssigner a(ps);
    const RowAssignment& r = a.assign(0b11110001);
    EXPECT_EQ(r.patternId, 1);
    EXPECT_EQ(r.nnz(), 1);
}

TEST(PatternAssigner, MemoisationReturnsSameResult)
{
    PatternSet ps(16, {0xF0F0, 0x0F0F});
    PatternAssigner a(ps);
    const RowAssignment& first = a.assign(0xF0F1);
    const RowAssignment& second = a.assign(0xF0F1);
    EXPECT_EQ(&first, &second) << "expected cached object reuse";
}

TEST(Decompose, TileCsrLayoutIsConsistent)
{
    Rng rng(3);
    BinaryMatrix acts = BinaryMatrix::random(64, 16, 0.3, rng);
    PatternSet ps(16, {0xFF00, 0x00FF, 0xF0F0});
    PatternAssigner assigner(ps);
    TileDecomposition tile = decomposeTile(acts, 0, assigner);
    EXPECT_EQ(tile.numRows(), 64u);
    EXPECT_EQ(tile.l2Offsets.size(), 65u);
    EXPECT_EQ(tile.l2Offsets.back(), tile.l2Entries.size());
    for (size_t r = 0; r < 64; ++r) {
        auto [lo, hi] = tile.rowRange(r);
        EXPECT_LE(lo, hi);
        for (uint32_t e = lo; e < hi; ++e) {
            EXPECT_LT(tile.l2Entries[e].col, 16);
            EXPECT_TRUE(tile.l2Entries[e].sign == 1 ||
                        tile.l2Entries[e].sign == -1);
            if (e + 1 < hi) {
                EXPECT_LT(tile.l2Entries[e].col,
                          tile.l2Entries[e + 1].col)
                    << "entries must be column-sorted";
            }
        }
    }
}

TEST(Decompose, ReconstructionIsExact)
{
    Rng rng(5);
    BinaryMatrix acts = BinaryMatrix::random(128, 64, 0.25, rng);
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 32;
    PatternTable table = calibrateLayer(acts, cfg);
    LayerDecomposition dec = decomposeLayer(acts, table);
    BinaryMatrix rebuilt = reconstructActivations(dec, table);
    EXPECT_TRUE(rebuilt == acts);
}

TEST(Decompose, RaggedFinalPartition)
{
    // K not a multiple of k: the final tile is narrower.
    Rng rng(7);
    BinaryMatrix acts = BinaryMatrix::random(50, 27, 0.4, rng);
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 16;
    PatternTable table = calibrateLayer(acts, cfg);
    EXPECT_EQ(table.numPartitions(), 2u);
    LayerDecomposition dec = decomposeLayer(acts, table);
    EXPECT_TRUE(reconstructActivations(dec, table) == acts);
}

TEST(Decompose, CountersAreConsistent)
{
    Rng rng(9);
    BinaryMatrix acts = BinaryMatrix::random(100, 48, 0.2, rng);
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 16;
    PatternTable table = calibrateLayer(acts, cfg);
    LayerDecomposition dec = decomposeLayer(acts, table);

    size_t nnz = 0;
    size_t assigned = 0;
    for (const auto& t : dec.tiles) {
        nnz += t.l2Nnz();
        for (uint16_t id : t.patternIds)
            if (id)
                ++assigned;
    }
    EXPECT_EQ(dec.totalL2Nnz(), nnz);
    EXPECT_EQ(dec.totalAssigned(), assigned);
}

TEST(Decompose, L2NeverExceedsBitNnz)
{
    // The assignment rule guarantees per-row-tile L2 nnz <= popcount,
    // so Phi's online work never exceeds bit sparsity.
    Rng rng(11);
    BinaryMatrix acts = BinaryMatrix::random(200, 64, 0.3, rng);
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 64;
    PatternTable table = calibrateLayer(acts, cfg);
    LayerDecomposition dec = decomposeLayer(acts, table);
    for (const auto& tile : dec.tiles) {
        for (size_t r = 0; r < tile.numRows(); ++r) {
            auto [lo, hi] = tile.rowRange(r);
            const size_t start =
                tile.partition * static_cast<size_t>(dec.k);
            const uint64_t row = acts.extract(r, start, dec.k);
            EXPECT_LE(hi - lo,
                      static_cast<uint32_t>(popcount64(row)));
        }
    }
}

/** Property sweep: losslessness across densities x k x q. */
struct SweepParam
{
    double density;
    int k;
    int q;
};

class DecomposeSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(DecomposeSweep, LosslessReconstruction)
{
    const auto [density, k, q] = GetParam();
    Rng rng(static_cast<uint64_t>(density * 1000) + k * 31 + q);
    BinaryMatrix acts = BinaryMatrix::random(96, 80, density, rng);
    CalibrationConfig cfg;
    cfg.k = k;
    cfg.q = q;
    PatternTable table = calibrateLayer(acts, cfg);
    LayerDecomposition dec = decomposeLayer(acts, table);
    EXPECT_TRUE(reconstructActivations(dec, table) == acts)
        << "density=" << density << " k=" << k << " q=" << q;
}

INSTANTIATE_TEST_SUITE_P(
    DensityKq, DecomposeSweep,
    ::testing::Values(SweepParam{0.02, 16, 32}, SweepParam{0.05, 16, 32},
                      SweepParam{0.10, 16, 128}, SweepParam{0.20, 16, 64},
                      SweepParam{0.50, 16, 128}, SweepParam{0.90, 16, 32},
                      SweepParam{0.10, 4, 8}, SweepParam{0.10, 8, 16},
                      SweepParam{0.10, 32, 64}, SweepParam{0.10, 64, 64},
                      SweepParam{0.30, 8, 128}, SweepParam{0.70, 32, 32}));

} // namespace
} // namespace phi
