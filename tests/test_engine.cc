/**
 * @file
 * Runtime engine tests: the compile/serve split end to end. A model
 * compiled and saved by one "process" (the fixture) is loaded from the
 * artifact file by a fresh PhiEngine and must produce bit-identical
 * outputs to the in-memory compute path at 1, 2 and 8 threads — the
 * acceptance criterion of the compile/serve refactor.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "common/rng.hh"
#include "core/pipeline.hh"
#include "test_support.hh"
#include "io/model_io.hh"
#include "runtime/engine.hh"

namespace phi
{
namespace
{

ExecutionConfig
withThreads(int threads)
{
    ExecutionConfig exec;
    exec.threads = threads;
    return exec;
}

/**
 * Shared offline half: calibrate + bind + compile once, save the .phim
 * artifact to a temp path, and keep the in-memory model as reference.
 */
class PhiEngineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        Rng rng(17);
        train0 = BinaryMatrix::random(160, 96, 0.15, rng);
        train1 = BinaryMatrix::random(128, 64, 0.2, rng);

        CalibrationConfig cfg;
        cfg.k = 16;
        cfg.q = 24;
        cfg.kmeans.maxIters = 8;
        Pipeline pipe(cfg);
        pipe.addLayer("proj", {&train0})
            .bindWeights(test::randomWeights(96, 24, 2));
        pipe.addLayer("head", {&train1})
            .bindWeights(test::randomWeights(64, 10, 3));
        reference = pipe.compile();

        artifact = (std::filesystem::temp_directory_path() /
                    ("phi_engine_test_" + std::to_string(::getpid()) +
                     ".phim"))
                       .string();
        io::saveModel(reference, artifact);
    }

    void TearDown() override { std::remove(artifact.c_str()); }

    std::vector<BinaryMatrix>
    makeRequests(size_t count, size_t k, uint64_t seed) const
    {
        Rng rng(seed);
        std::vector<BinaryMatrix> reqs;
        for (size_t i = 0; i < count; ++i)
            reqs.push_back(BinaryMatrix::random(48 + 16 * i, k, 0.18, rng));
        return reqs;
    }

    BinaryMatrix train0, train1;
    CompiledModel reference;
    std::string artifact;
};

TEST_F(PhiEngineTest, LoadedEngineMatchesInMemoryComputeAtAnyThreadCount)
{
    // The acceptance fixture: offline process compiled + saved; the
    // serving process starts from the artifact file alone.
    const std::vector<BinaryMatrix> reqs = makeRequests(5, 96, 101);

    // In-memory reference path (offline object, single-shot compute).
    std::vector<Matrix<int32_t>> ref;
    for (const auto& acts : reqs)
        ref.push_back(reference.layer(0).compute(
            reference.layer(0).decompose(acts)));

    for (int threads : {1, 2, 8}) {
        PhiEngine engine(io::loadModel(artifact), withThreads(threads));
        for (const auto& acts : reqs)
            engine.enqueue(0, acts);
        const std::vector<EngineResponse> out = engine.flush();
        ASSERT_EQ(out.size(), reqs.size());
        for (size_t i = 0; i < reqs.size(); ++i)
            EXPECT_EQ(out[i].out, ref[i])
                << "request " << i << " at " << threads << " threads";
    }
}

TEST_F(PhiEngineTest, MixedLayerBatchKeepsEnqueueOrder)
{
    PhiEngine engine(io::loadModel(artifact), withThreads(8));
    Rng rng(55);
    BinaryMatrix a0 = BinaryMatrix::random(40, 96, 0.2, rng);
    BinaryMatrix a1 = BinaryMatrix::random(72, 64, 0.15, rng);
    BinaryMatrix a2 = BinaryMatrix::random(24, 96, 0.25, rng);

    EXPECT_EQ(engine.enqueue(0, a0), 0u);
    EXPECT_EQ(engine.enqueue(1, a1), 1u);
    EXPECT_EQ(engine.enqueue(0, a2), 2u);
    EXPECT_EQ(engine.pending(), 3u);

    const auto out = engine.flush();
    EXPECT_EQ(engine.pending(), 0u);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].layer, 0u);
    EXPECT_EQ(out[1].layer, 1u);
    EXPECT_EQ(out[2].layer, 0u);
    EXPECT_EQ(out[0].out,
              reference.layer(0).compute(reference.layer(0).decompose(a0)));
    EXPECT_EQ(out[1].out,
              reference.layer(1).compute(reference.layer(1).decompose(a1)));
    EXPECT_EQ(out[2].out,
              reference.layer(0).compute(reference.layer(0).decompose(a2)));
}

TEST_F(PhiEngineTest, ServeAndServeBatchConveniences)
{
    PhiEngine engine(io::loadModel(artifact));
    Rng rng(66);
    BinaryMatrix acts = BinaryMatrix::random(32, 64, 0.2, rng);
    const EngineResponse one = engine.serve(1, acts);
    EXPECT_EQ(one.out,
              reference.layer(1).compute(reference.layer(1).decompose(acts)));
    // The response carries the decomposition for sparsity accounting.
    EXPECT_EQ(one.dec.m, acts.rows());
    EXPECT_GT(one.dec.numPartitions(), 0u);

    const std::vector<BinaryMatrix> reqs = makeRequests(3, 64, 67);
    std::vector<const BinaryMatrix*> ptrs;
    for (const auto& r : reqs)
        ptrs.push_back(&r);
    const auto out = engine.serveBatch(1, ptrs);
    ASSERT_EQ(out.size(), reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i)
        EXPECT_EQ(out[i].out, reference.layer(1).compute(
                                  reference.layer(1).decompose(reqs[i])));
}

TEST_F(PhiEngineTest, ServingCountersAccumulate)
{
    PhiEngine engine(io::loadModel(artifact));
    const std::vector<BinaryMatrix> reqs = makeRequests(4, 96, 77);
    size_t rows = 0;
    for (const auto& acts : reqs) {
        engine.enqueue(0, acts);
        rows += acts.rows();
    }
    engine.flush();
    engine.flush(); // empty flush: no batch, no request counted

    const ServingStats& s = engine.stats();
    EXPECT_EQ(s.requests, reqs.size());
    EXPECT_EQ(s.batches, 1u);
    EXPECT_EQ(s.rows, rows);
    EXPECT_EQ(s.latencySeconds.size(), reqs.size());
    EXPECT_GT(s.busySeconds, 0.0);
    EXPECT_GT(s.throughputRps(), 0.0);
    EXPECT_GT(s.rowThroughputRps(), 0.0);
    EXPECT_GE(s.latencyPercentileMs(99), s.latencyPercentileMs(50));

    engine.resetStats();
    EXPECT_EQ(engine.stats().requests, 0u);
    EXPECT_EQ(engine.stats().latencySeconds.size(), 0u);
}

TEST_F(PhiEngineTest, RejectsInvalidRequestsRecoverably)
{
    // A malformed *user request* is not an internal invariant
    // violation: it must throw a catchable EngineError (never abort)
    // and leave the engine fully serviceable.
    PhiEngine engine(io::loadModel(artifact));
    Rng rng(88);
    BinaryMatrix wrongK = BinaryMatrix::random(16, 32, 0.2, rng);
    try {
        engine.enqueue(0, wrongK);
        FAIL() << "wrong-K request was accepted";
    } catch (const EngineError& e) {
        EXPECT_EQ(e.code(), EngineErrorCode::ShapeMismatch);
    }
    BinaryMatrix ok = BinaryMatrix::random(16, 96, 0.2, rng);
    try {
        engine.enqueue(7, ok);
        FAIL() << "out-of-range layer was accepted";
    } catch (const EngineError& e) {
        EXPECT_EQ(e.code(), EngineErrorCode::InvalidLayer);
    }

    // The engine survives rejected requests and keeps serving: nothing
    // was queued, and a valid request still produces the exact result.
    EXPECT_EQ(engine.pending(), 0u);
    const EngineResponse resp = engine.serve(0, ok);
    EXPECT_EQ(resp.out,
              reference.layer(0).compute(reference.layer(0).decompose(ok)));
    EXPECT_EQ(engine.stats().requests, 1u);
}

TEST_F(PhiEngineTest, WeightlessLayerCannotServe)
{
    Rng rng(91);
    BinaryMatrix train = BinaryMatrix::random(64, 32, 0.2, rng);
    Pipeline pipe;
    pipe.addLayer("tableOnly", {&train});
    PhiEngine engine(pipe.compile());
    BinaryMatrix acts = BinaryMatrix::random(8, 32, 0.2, rng);
    try {
        engine.enqueue(0, acts);
        FAIL() << "weightless layer accepted a compute request";
    } catch (const EngineError& e) {
        EXPECT_EQ(e.code(), EngineErrorCode::MissingWeights);
    }
}

TEST(PhiEngineErrors, EmptyModelIsRecoverable)
{
    try {
        PhiEngine engine(CompiledModel{});
        FAIL() << "engine accepted an empty model";
    } catch (const EngineError& e) {
        EXPECT_EQ(e.code(), EngineErrorCode::EmptyModel);
    }
}

TEST_F(PhiEngineTest, EnqueueBorrowedIsZeroCopy)
{
    // The hot batch path must not clone a BinaryMatrix per request:
    // a borrowed request queues the caller's matrix itself (pointer
    // identity), and serveBatch() routes through this path.
    PhiEngine engine(io::loadModel(artifact));
    Rng rng(99);
    BinaryMatrix acts = BinaryMatrix::random(16, 96, 0.2, rng);
    EXPECT_EQ(engine.enqueueBorrowed(0, acts), 0u);
    EXPECT_EQ(&engine.pendingActs(0), &acts);
    // An owned enqueue in the same batch keeps its own storage.
    BinaryMatrix owned = BinaryMatrix::random(8, 96, 0.2, rng);
    const BinaryMatrix ownedCopy = owned;
    engine.enqueue(0, std::move(owned));
    EXPECT_NE(&engine.pendingActs(1), &acts);
    const auto out = engine.flush();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].out,
              reference.layer(0).compute(reference.layer(0).decompose(acts)));
    EXPECT_EQ(out[1].out, reference.layer(0).compute(
                              reference.layer(0).decompose(ownedCopy)));
}

TEST_F(PhiEngineTest, ServeBatchRejectsNullAndStaysServiceable)
{
    PhiEngine engine(io::loadModel(artifact));
    Rng rng(43);
    BinaryMatrix ok = BinaryMatrix::random(8, 96, 0.2, rng);
    try {
        engine.serveBatch(0, {&ok, nullptr});
        FAIL() << "null activation was accepted";
    } catch (const EngineError& e) {
        EXPECT_EQ(e.code(), EngineErrorCode::NullActivation);
    }
    // The failed batch left nothing queued (no dangling borrows) and
    // the engine still serves.
    EXPECT_EQ(engine.pending(), 0u);
    const auto out = engine.serveBatch(0, {&ok});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].out,
              reference.layer(0).compute(reference.layer(0).decompose(ok)));
}

TEST_F(PhiEngineTest, EmptyServeBatchAndZeroRowRequests)
{
    PhiEngine engine(io::loadModel(artifact));
    // Empty batch: no flush, no counters.
    EXPECT_TRUE(engine.serveBatch(0, {}).empty());
    EXPECT_EQ(engine.stats().batches, 0u);
    EXPECT_EQ(engine.stats().requests, 0u);

    // A zero-row activation is a valid (if degenerate) request: it
    // serves an empty output instead of tripping an assert.
    BinaryMatrix empty(0, 96);
    const EngineResponse resp = engine.serve(0, empty);
    EXPECT_EQ(resp.out.rows(), 0u);
    EXPECT_EQ(resp.out.cols(),
              reference.layer(0).weights().cols());
    EXPECT_EQ(engine.stats().requests, 1u);
    EXPECT_EQ(engine.stats().rows, 0u);
}

TEST(ServingStats, LatencyWindowIsBounded)
{
    // A long-running engine must not grow without bound: the sample
    // window is a fixed-size ring over the most recent requests.
    ServingStats s;
    const size_t n = ServingStats::kMaxLatencySamples + 1000;
    for (size_t i = 0; i < n; ++i)
        s.recordLatency(static_cast<double>(i));
    EXPECT_EQ(s.latencySeconds.size(), ServingStats::kMaxLatencySamples);
    // The oldest 1000 samples were evicted: the minimum retained value
    // is 1000.
    EXPECT_DOUBLE_EQ(s.latencyPercentileMs(0), 1000.0 * 1e3);
}

TEST(ServingStats, PercentilesOnKnownSamples)
{
    ServingStats s;
    for (int i = 1; i <= 100; ++i)
        s.recordLatency(i * 1e-3); // 1ms .. 100ms
    s.requests = 100;
    s.busySeconds = 2.0;
    EXPECT_NEAR(s.latencyPercentileMs(50), 50.5, 1.0);
    EXPECT_NEAR(s.latencyPercentileMs(99), 99.0, 1.0);
    EXPECT_NEAR(s.latencyPercentileMs(0), 1.0, 1e-9);
    EXPECT_NEAR(s.latencyPercentileMs(100), 100.0, 1e-9);
    EXPECT_NEAR(s.meanLatencyMs(), 50.5, 1e-9);
    EXPECT_DOUBLE_EQ(s.throughputRps(), 50.0);

    ServingStats other;
    other.requests = 10;
    other.batches = 1;
    other.rows = 5;
    other.busySeconds = 1.0;
    other.latencySeconds = {0.5};
    s.merge(other);
    EXPECT_EQ(s.requests, 110u);
    EXPECT_EQ(s.latencySeconds.size(), 101u);
    EXPECT_DOUBLE_EQ(s.busySeconds, 3.0);
}

TEST(ServingStats, OverlappingFlushesDoNotHalveThroughput)
{
    // Two 1s flushes overlapping by 0.5s: summed busy time is 2s, but
    // real elapsed serving time is 1.5s. Throughput must use the
    // monotonic first-to-last-flush window, not the busy sum — the
    // async frontend (and merged per-engine stats) overlap routinely.
    ServingStats s;
    s.requests = 100;
    s.rows = 200;
    s.busySeconds = 1.0;
    s.recordFlushWindow(10.0, 11.0);
    s.busySeconds += 1.0;
    s.recordFlushWindow(10.5, 11.5);
    EXPECT_DOUBLE_EQ(s.windowSeconds(), 1.5);
    EXPECT_DOUBLE_EQ(s.throughputRps(), 100.0 / 1.5);
    EXPECT_DOUBLE_EQ(s.rowThroughputRps(), 200.0 / 1.5);
    EXPECT_DOUBLE_EQ(s.busyFraction(), 2.0 / 1.5);

    // merge() keeps the union of windows for the same reason.
    ServingStats a;
    a.requests = 10;
    a.recordFlushWindow(0.0, 1.0);
    ServingStats b;
    b.requests = 10;
    b.recordFlushWindow(0.5, 1.5);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.windowSeconds(), 1.5);
    EXPECT_DOUBLE_EQ(a.throughputRps(), 20.0 / 1.5);
}

TEST(ServingStats, HandFilledCountersFallBackToBusySeconds)
{
    // No recorded flush window (counters filled in by hand, e.g. in a
    // report aggregator): throughput falls back to the busy sum.
    ServingStats s;
    s.requests = 100;
    s.busySeconds = 2.0;
    EXPECT_DOUBLE_EQ(s.windowSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(s.throughputRps(), 50.0);
}

TEST(ServingStats, SingleSamplePercentiles)
{
    ServingStats s;
    s.recordLatency(0.25);
    for (double p : {0.0, 50.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(s.latencyPercentileMs(p), 250.0) << "p" << p;
    EXPECT_DOUBLE_EQ(s.meanLatencyMs(), 250.0);
}

TEST(ServingStats, RingWrapOverwritesOldestExactly)
{
    // Fill to exactly the cap, then wrap by three: the three oldest
    // samples (0, 1, 2) must be the ones evicted.
    ServingStats s;
    const size_t cap = ServingStats::kMaxLatencySamples;
    for (size_t i = 0; i < cap + 3; ++i)
        s.recordLatency(static_cast<double>(i));
    EXPECT_EQ(s.latencySeconds.size(), cap);
    EXPECT_DOUBLE_EQ(s.latencyPercentileMs(0), 3.0 * 1e3);
    EXPECT_DOUBLE_EQ(s.latencyPercentileMs(100),
                     static_cast<double>(cap + 2) * 1e3);
}

TEST(ServingStats, MergeOfWrappedRingReplaysOldestFirst)
{
    // A wrapped source ring's oldest sample sits at its cursor, not at
    // index 0; merge must replay oldest-first so the destination
    // ring's recency order stays meaningful.
    ServingStats wrapped;
    const size_t cap = ServingStats::kMaxLatencySamples;
    for (size_t i = 0; i < cap + 100; ++i)
        wrapped.recordLatency(static_cast<double>(i));

    ServingStats s;
    s.merge(wrapped);
    EXPECT_EQ(s.latencySeconds.size(), cap);
    // Retained window is [100, cap+99].
    EXPECT_DOUBLE_EQ(s.latencyPercentileMs(0), 100.0 * 1e3);

    // One more sample evicts the destination's oldest (100), proving
    // the replay preserved order rather than scrambling the ring.
    s.recordLatency(static_cast<double>(cap + 100));
    EXPECT_DOUBLE_EQ(s.latencyPercentileMs(0), 101.0 * 1e3);
}

TEST(ServingStats, DispatchCountersAndMerge)
{
    ServingStats s;
    s.recordDispatch(4, 200e-6);
    s.recordDispatch(8, 400e-6);
    s.rejected = 3;
    EXPECT_EQ(s.dispatches, 2u);
    EXPECT_EQ(s.maxQueueDepth, 8u);
    EXPECT_DOUBLE_EQ(s.meanQueueDepth(), 6.0);
    EXPECT_NEAR(s.meanLingerMicros(), 300.0, 1e-9);

    ServingStats other;
    other.recordDispatch(16, 100e-6);
    other.rejected = 2;
    s.merge(other);
    EXPECT_EQ(s.dispatches, 3u);
    EXPECT_EQ(s.rejected, 5u);
    EXPECT_EQ(s.maxQueueDepth, 16u);
    EXPECT_NEAR(s.meanLingerMicros(), 700.0 / 3.0, 1e-9);
}

} // namespace
} // namespace phi
