/**
 * @file
 * Tests for the calibration stage: per-partition pattern tables from
 * sample pools, subsampling, and multi-sample pooling.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/calibration.hh"
#include "core/decompose.hh"
#include "snn/activation_gen.hh"

namespace phi
{
namespace
{

TEST(Calibration, PartitionCountMatchesWidth)
{
    Rng rng(1);
    BinaryMatrix acts = BinaryMatrix::random(32, 100, 0.2, rng);
    CalibrationConfig cfg;
    cfg.k = 16;
    PatternTable t = calibrateLayer(acts, cfg);
    EXPECT_EQ(t.numPartitions(), 7u); // ceil(100/16)
    EXPECT_EQ(t.k(), 16);
}

TEST(Calibration, RespectsPatternBudget)
{
    Rng rng(2);
    BinaryMatrix acts = BinaryMatrix::random(512, 64, 0.5, rng);
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 32;
    PatternTable t = calibrateLayer(acts, cfg);
    for (size_t p = 0; p < t.numPartitions(); ++p)
        EXPECT_LE(t.partition(p).size(), 32u);
}

TEST(Calibration, PoolsMultipleSamples)
{
    Rng rng(3);
    BinaryMatrix a = BinaryMatrix::random(64, 32, 0.2, rng);
    BinaryMatrix b = BinaryMatrix::random(64, 32, 0.2, rng);
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 64;
    PatternTable t = calibrateLayer({&a, &b}, cfg);
    EXPECT_EQ(t.numPartitions(), 2u);
}

TEST(Calibration, MismatchedSampleWidthsFatal)
{
    detail::setThrowOnError(true);
    Rng rng(4);
    BinaryMatrix a = BinaryMatrix::random(8, 32, 0.2, rng);
    BinaryMatrix b = BinaryMatrix::random(8, 48, 0.2, rng);
    CalibrationConfig cfg;
    EXPECT_THROW(calibrateLayer({&a, &b}, cfg), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(Calibration, SubsamplingStillFindsDominantPatterns)
{
    // A heavily clustered generator with a strict row cap: calibration
    // must still recover patterns good enough for high L2 sparsity.
    ClusterGenConfig gen_cfg;
    gen_cfg.bitDensity = 0.12;
    gen_cfg.l2DensityTarget = 0.02;
    gen_cfg.prototypes = 8;
    ClusteredSpikeGenerator gen(gen_cfg, 64, 42);
    Rng rng(5);
    BinaryMatrix acts = gen.generate(4096, rng);

    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 32;
    cfg.maxRowsPerPartition = 256; // aggressive subsampling
    PatternTable t = calibrateLayer(acts, cfg);
    LayerDecomposition dec = decomposeLayer(acts, t);

    // Most of the bit nnz must be absorbed by Level 1.
    const double l2 = static_cast<double>(dec.totalL2Nnz());
    const double bits = static_cast<double>(acts.popcount());
    EXPECT_LT(l2, 0.5 * bits);
}

TEST(Calibration, TrainPatternsGeneraliseToTestDraws)
{
    // The Fig. 9a property: patterns calibrated on one draw achieve
    // nearly the same L2 density on an independent draw.
    ClusterGenConfig gen_cfg;
    gen_cfg.bitDensity = 0.10;
    gen_cfg.l2DensityTarget = 0.02;
    ClusteredSpikeGenerator gen(gen_cfg, 64, 77);
    Rng train_rng(6);
    Rng test_rng(7);
    BinaryMatrix train = gen.generate(2048, train_rng);
    BinaryMatrix test = gen.generate(2048, test_rng);

    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 128;
    PatternTable t = calibrateLayer(train, cfg);

    auto l2_density = [&](const BinaryMatrix& acts) {
        LayerDecomposition dec = decomposeLayer(acts, t);
        return static_cast<double>(dec.totalL2Nnz()) /
               static_cast<double>(acts.rows() * acts.cols());
    };
    const double on_train = l2_density(train);
    const double on_test = l2_density(test);
    EXPECT_NEAR(on_train, on_test, 0.01);
}

} // namespace
} // namespace phi
