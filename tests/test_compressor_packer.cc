/**
 * @file
 * Tests for the L2 preprocessing chain: compressor filtering and the
 * multi-window packer's invariants (capacity, bank-conflict freedom,
 * exactly-once packing, split handling).
 */

#include <gtest/gtest.h>

#include <map>

#include "arch/compressor.hh"
#include "arch/packer.hh"
#include "common/rng.hh"

namespace phi
{
namespace
{

TEST(Compressor, FiltersAllZeroRows)
{
    Compressor c;
    RowAssignment zero;
    zero.posMask = 0;
    zero.negMask = 0;
    EXPECT_FALSE(c.compress(0, 0, zero, false).has_value());
    EXPECT_EQ(c.rowsSeen(), 1u);
    EXPECT_EQ(c.rowsEmitted(), 0u);
}

TEST(Compressor, EmitsSortedSignedEntries)
{
    Compressor c;
    RowAssignment a;
    a.posMask = 0b1001; // +1 at 0 and 3
    a.negMask = 0b0100; // -1 at 2
    auto row = c.compress(7, 3, a, true);
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ(row->rowId, 7u);
    EXPECT_EQ(row->partition, 3u);
    EXPECT_TRUE(row->needsPsum);
    ASSERT_EQ(row->entries.size(), 3u);
    EXPECT_EQ(row->entries[0], (std::pair<uint16_t, int8_t>{0, 1}));
    EXPECT_EQ(row->entries[1], (std::pair<uint16_t, int8_t>{2, -1}));
    EXPECT_EQ(row->entries[2], (std::pair<uint16_t, int8_t>{3, 1}));
    EXPECT_EQ(row->unitsNeeded(), 4);
    EXPECT_EQ(c.entriesEmitted(), 3u);
}

CompressedRow
makeRow(uint32_t row_id, int nnz, bool psum = false,
        uint32_t partition = 0)
{
    CompressedRow r;
    r.rowId = row_id;
    r.partition = partition;
    r.needsPsum = psum;
    for (int i = 0; i < nnz; ++i)
        r.entries.emplace_back(static_cast<uint16_t>(i),
                               static_cast<int8_t>(i % 2 ? -1 : 1));
    return r;
}

struct PackCollector
{
    std::vector<Pack> packs;
    Packer::Sink
    sink()
    {
        return [this](Pack&& p) { packs.push_back(std::move(p)); };
    }
};

TEST(Packer, FillsPackToCapacityThenEmits)
{
    PackCollector col;
    Packer packer({1, 8}, col.sink());
    packer.push(makeRow(0, 4));
    packer.push(makeRow(1, 4));
    ASSERT_EQ(col.packs.size(), 1u);
    EXPECT_EQ(col.packs[0].used(), 8);
    EXPECT_EQ(col.packs[0].rows.size(), 2u);
}

TEST(Packer, FlushEmitsPartialPacks)
{
    PackCollector col;
    Packer packer({2, 8}, col.sink());
    packer.push(makeRow(0, 2));
    EXPECT_TRUE(col.packs.empty());
    packer.flush();
    ASSERT_EQ(col.packs.size(), 1u);
    EXPECT_EQ(col.packs[0].used(), 2);
}

TEST(Packer, PsumUnitsOccupySlots)
{
    PackCollector col;
    Packer packer({1, 8}, col.sink());
    packer.push(makeRow(0, 3, true));
    packer.flush();
    ASSERT_EQ(col.packs.size(), 1u);
    EXPECT_EQ(col.packs[0].used(), 4);
    int psums = 0;
    for (const auto& u : col.packs[0].units)
        if (u.label == PackUnit::Label::Psum)
            ++psums;
    EXPECT_EQ(psums, 1);
    EXPECT_TRUE(col.packs[0].rows[0].hasPsum);
}

TEST(Packer, BankConflictSeparatesRows)
{
    // Rows 0 and 8 share psum bank (8 banks): they must not share a
    // pack even though space allows it.
    PackCollector col;
    Packer packer({4, 8}, col.sink());
    packer.push(makeRow(0, 2));
    packer.push(makeRow(8, 2));
    packer.flush();
    ASSERT_EQ(col.packs.size(), 2u);
    for (const auto& p : col.packs) {
        std::map<uint32_t, int> banks;
        for (const auto& seg : p.rows)
            ++banks[seg.rowId % 8];
        for (const auto& [bank, cnt] : banks)
            EXPECT_EQ(cnt, 1) << "bank conflict within a pack";
    }
    EXPECT_GT(packer.stats().conflictRejects, 0u);
}

TEST(Packer, DifferentBanksShareAPack)
{
    PackCollector col;
    Packer packer({4, 8}, col.sink());
    packer.push(makeRow(0, 2));
    packer.push(makeRow(1, 2));
    packer.push(makeRow(2, 2));
    packer.push(makeRow(3, 2));
    packer.flush();
    ASSERT_EQ(col.packs.size(), 1u);
    EXPECT_EQ(col.packs[0].rows.size(), 4u);
}

TEST(Packer, EvictsFullestWindowWhenStuck)
{
    // One window; incoming row doesn't fit -> fullest evicted.
    PackCollector col;
    Packer packer({1, 8}, col.sink());
    packer.push(makeRow(0, 5));
    packer.push(makeRow(1, 5));
    EXPECT_EQ(col.packs.size(), 1u);
    EXPECT_EQ(packer.stats().evictions, 1u);
    packer.flush();
    EXPECT_EQ(col.packs.size(), 2u);
}

TEST(Packer, SplitsOversizedRows)
{
    PackCollector col;
    Packer packer({2, 8}, col.sink());
    packer.push(makeRow(0, 13)); // > capacity
    packer.flush();
    EXPECT_EQ(packer.stats().splitRows, 1u);
    // All 13 weight units present; chained chunks carry psum units.
    int weight_units = 0;
    for (const auto& p : col.packs)
        for (const auto& u : p.units)
            if (u.label == PackUnit::Label::Weight)
                ++weight_units;
    EXPECT_EQ(weight_units, 13);
}

TEST(Packer, ExactlyOnceAndCapacityInvariants)
{
    // Fuzz: random rows; verify every entry lands in exactly one pack
    // unit, capacity never exceeded, and per-pack banks are distinct.
    Rng rng(9);
    PackCollector col;
    Packer packer({4, 8}, col.sink());
    std::map<std::pair<uint32_t, uint32_t>, int> expected;
    for (int i = 0; i < 500; ++i) {
        uint32_t row_id = static_cast<uint32_t>(rng.nextBounded(256));
        int nnz = 1 + static_cast<int>(rng.nextBounded(4));
        uint32_t part = static_cast<uint32_t>(rng.nextBounded(16));
        CompressedRow r = makeRow(row_id, nnz,
                                  rng.bernoulli(0.3), part);
        expected[{row_id, part}] +=
            static_cast<int>(r.entries.size());
        packer.push(r);
    }
    packer.flush();

    std::map<std::pair<uint32_t, uint32_t>, int> got;
    for (const auto& p : col.packs) {
        EXPECT_LE(p.used(), Pack::capacity);
        size_t unit_sum = 0;
        std::map<int, int> banks;
        for (const auto& seg : p.rows) {
            unit_sum += seg.unitCount;
            ++banks[static_cast<int>(seg.rowId % 8)];
        }
        EXPECT_EQ(unit_sum, p.units.size());
        for (const auto& [bank, cnt] : banks)
            EXPECT_LE(cnt, 1);

        size_t idx = 0;
        for (const auto& seg : p.rows)
            for (uint8_t u = 0; u < seg.unitCount; ++u, ++idx)
                if (p.units[idx].label == PackUnit::Label::Weight)
                    got[{seg.rowId, seg.partition}] += 1;
    }
    EXPECT_EQ(got, expected);
}

TEST(Packer, OccupancyStatIsBounded)
{
    Rng rng(10);
    PackCollector col;
    Packer packer({4, 8}, col.sink());
    for (int i = 0; i < 200; ++i)
        packer.push(makeRow(static_cast<uint32_t>(i), 1 + (i % 3)));
    packer.flush();
    const double occ = packer.stats().avgOccupancy();
    EXPECT_GT(occ, 0.3);
    EXPECT_LE(occ, 1.0);
}

} // namespace
} // namespace phi
