/**
 * @file
 * Failpoint facility tests: the trigger policies and bookkeeping.
 *
 * These drive failpoint::shouldFire() directly, so they run in every
 * build configuration — the control API is always compiled; only the
 * PHI_FAILPOINT *sites* in library code depend on PHI_FAILPOINTS=ON
 * (those are exercised by the chaos suite, test_chaos.cc).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/failpoint.hh"

namespace phi
{
namespace
{

class FailpointTest : public ::testing::Test
{
  protected:
    void TearDown() override { failpoint::reset(); }
};

TEST_F(FailpointTest, UnarmedSiteNeverFires)
{
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(failpoint::shouldFire("never.armed"));
    EXPECT_EQ(failpoint::fires("never.armed"), 0u);
}

TEST_F(FailpointTest, AlwaysFiresEveryEvaluation)
{
    failpoint::enable("t.always", failpoint::Policy::always());
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(failpoint::shouldFire("t.always"));
    EXPECT_EQ(failpoint::fires("t.always"), 5u);
    EXPECT_EQ(failpoint::evaluations("t.always"), 5u);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce)
{
    failpoint::enable("t.once", failpoint::Policy::once());
    EXPECT_TRUE(failpoint::shouldFire("t.once"));
    EXPECT_FALSE(failpoint::shouldFire("t.once"));
    EXPECT_FALSE(failpoint::shouldFire("t.once"));
    EXPECT_EQ(failpoint::fires("t.once"), 1u);
    EXPECT_EQ(failpoint::evaluations("t.once"), 3u);
}

TEST_F(FailpointTest, EveryNthFiresOnTheNthEvaluation)
{
    failpoint::enable("t.nth", failpoint::Policy::everyNth(3));
    std::vector<bool> pattern;
    for (int i = 0; i < 9; ++i)
        pattern.push_back(failpoint::shouldFire("t.nth"));
    const std::vector<bool> want = {false, false, true, false, false,
                                    true,  false, false, true};
    EXPECT_EQ(pattern, want);
    EXPECT_EQ(failpoint::fires("t.nth"), 3u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicFromItsSeed)
{
    auto sample = [](uint64_t seed) {
        failpoint::enable("t.prob",
                          failpoint::Policy::probability(0.5, seed));
        std::vector<bool> out;
        for (int i = 0; i < 64; ++i)
            out.push_back(failpoint::shouldFire("t.prob"));
        return out;
    };
    EXPECT_EQ(sample(7), sample(7));      // same seed, same stream
    EXPECT_NE(sample(7), sample(8));      // different seed differs
    failpoint::enable("t.prob", failpoint::Policy::probability(0.0, 1));
    for (int i = 0; i < 16; ++i)
        EXPECT_FALSE(failpoint::shouldFire("t.prob"));
    failpoint::enable("t.prob", failpoint::Policy::probability(1.0, 1));
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(failpoint::shouldFire("t.prob"));
}

TEST_F(FailpointTest, DisableStopsFiringButKeepsCounters)
{
    failpoint::enable("t.dis", failpoint::Policy::always());
    EXPECT_TRUE(failpoint::shouldFire("t.dis"));
    failpoint::disable("t.dis");
    EXPECT_FALSE(failpoint::shouldFire("t.dis"));
    EXPECT_EQ(failpoint::fires("t.dis"), 1u);
}

TEST_F(FailpointTest, ReenableResetsCountersAndPolicy)
{
    failpoint::enable("t.re", failpoint::Policy::once());
    EXPECT_TRUE(failpoint::shouldFire("t.re"));
    failpoint::enable("t.re", failpoint::Policy::once());
    EXPECT_TRUE(failpoint::shouldFire("t.re")) // Once state was reset
        << "re-enable must rearm a Once policy";
    EXPECT_EQ(failpoint::fires("t.re"), 1u);
}

TEST_F(FailpointTest, ResetForgetsEverything)
{
    failpoint::enable("t.reset", failpoint::Policy::always());
    EXPECT_TRUE(failpoint::shouldFire("t.reset"));
    failpoint::reset();
    EXPECT_FALSE(failpoint::shouldFire("t.reset"));
    EXPECT_EQ(failpoint::fires("t.reset"), 0u);
    // With no site armed anywhere, shouldFire() takes the one-atomic-
    // load fast path and does not even track evaluations — that is the
    // "free when unused" contract production builds rely on.
    EXPECT_EQ(failpoint::evaluations("t.reset"), 0u)
        << "an unarmed registry must not pay for bookkeeping";
}

TEST_F(FailpointTest, AllSitesNamesTheWiredSites)
{
    const std::vector<std::string> sites = failpoint::allSites();
    EXPECT_EQ(sites.size(), 8u);
    for (const char* site :
         {"io.read", "io.write", "pool.task", "dispatcher.loop",
          "net.accept", "net.read", "net.write", "session.step"})
        EXPECT_NE(std::find(sites.begin(), sites.end(), site),
                  sites.end())
            << site;
}

} // namespace
} // namespace phi
