/**
 * @file
 * Tests for model trace construction: per-layer calibration,
 * decomposition validity, statistics aggregation, PAFT plumbing.
 */

#include <gtest/gtest.h>

#include "core/pwp.hh"
#include "snn/trace.hh"

namespace phi
{
namespace
{

ModelSpec
tinySpec()
{
    // Hand-built spec to keep the test fast.
    ModelSpec spec = makeModel(ModelId::VGG16, DatasetId::CIFAR10);
    spec.layers = {{"a", 256, 64, 32, 1}, {"b", 128, 48, 16, 3}};
    return spec;
}

TEST(Trace, BuildsAllLayers)
{
    ModelTrace trace = buildModelTrace(tinySpec());
    ASSERT_EQ(trace.layers.size(), 2u);
    EXPECT_EQ(trace.layers[0].acts.rows(), 256u);
    EXPECT_EQ(trace.layers[0].acts.cols(), 64u);
    EXPECT_EQ(trace.layers[1].spec.count, 3u);
}

TEST(Trace, DecompositionIsLossless)
{
    ModelTrace trace = buildModelTrace(tinySpec());
    for (const auto& l : trace.layers) {
        BinaryMatrix rebuilt = reconstructActivations(l.dec, l.table);
        EXPECT_TRUE(rebuilt == l.acts) << l.spec.name;
    }
}

TEST(Trace, DensityNearProfileTarget)
{
    ModelSpec spec = tinySpec();
    spec.profile.bitDensity = 0.10;
    ModelTrace trace = buildModelTrace(spec);
    for (const auto& l : trace.layers)
        EXPECT_NEAR(l.acts.density(), 0.10, 0.035) << l.spec.name;
}

TEST(Trace, AggregateWeightsByCount)
{
    ModelTrace trace = buildModelTrace(tinySpec());
    SparsityBreakdown agg = trace.aggregate();
    const size_t expected_elems =
        256 * 64 * 1 + 128 * 48 * 3;
    EXPECT_EQ(agg.elements, expected_elems);
}

TEST(Trace, OpsAccounting)
{
    ModelTrace trace = buildModelTrace(tinySpec());
    const double dense = 256.0 * 64 * 32 + 3.0 * 128 * 48 * 16;
    EXPECT_DOUBLE_EQ(trace.totalDenseOps(), dense);
    EXPECT_GT(trace.totalBitOps(), 0.0);
    EXPECT_LT(trace.totalBitOps(), dense);
}

TEST(Trace, DeterministicForFixedSeed)
{
    TraceOptions opt;
    opt.seed = 1234;
    ModelTrace a = buildModelTrace(tinySpec(), opt);
    ModelTrace b = buildModelTrace(tinySpec(), opt);
    for (size_t i = 0; i < a.layers.size(); ++i)
        EXPECT_TRUE(a.layers[i].acts == b.layers[i].acts);
}

TEST(Trace, WithWeightsEnablesExactCompute)
{
    TraceOptions opt;
    opt.withWeights = true;
    ModelTrace trace = buildModelTrace(tinySpec(), opt);
    for (const auto& l : trace.layers) {
        ASSERT_FALSE(l.weights.empty());
        EXPECT_EQ(phiGemm(l.dec, l.table, l.weights),
                  spikeGemm(l.acts, l.weights));
    }
}

TEST(Trace, PaftReducesL2Work)
{
    TraceOptions plain;
    TraceOptions paft = plain;
    paft.paft = true;
    paft.paftStrength = 0.8;
    ModelTrace base = buildModelTrace(tinySpec(), plain);
    ModelTrace tuned = buildModelTrace(tinySpec(), paft);
    EXPECT_LT(tuned.aggregate().l2Density(),
              base.aggregate().l2Density());
    EXPECT_GT(tuned.layers[0].paftStats.bitsFlipped, 0u);
    EXPECT_EQ(base.layers[0].paftStats.bitsFlipped, 0u);
}

TEST(Trace, RealModelTraceHasTable4ShapedStats)
{
    // Build the full VGG16/CIFAR10 trace and verify the hierarchy:
    // L2 density << bit density, L1 close to bit density.
    ModelTrace trace =
        buildModelTrace(makeModel(ModelId::VGG16, DatasetId::CIFAR10));
    SparsityBreakdown agg = trace.aggregate();
    EXPECT_NEAR(agg.bitDensity, 0.087, 0.03);
    EXPECT_LT(agg.l2Density(), 0.45 * agg.bitDensity);
    EXPECT_GT(agg.l1Density, 0.5 * agg.bitDensity);
    EXPECT_GT(agg.speedupOverBit(), 2.0);
}

} // namespace
} // namespace phi
