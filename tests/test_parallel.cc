/**
 * @file
 * Execution engine tests: ThreadPool / parallelFor semantics, the
 * determinism contract (bit-identical results at any thread count and
 * tiling), and equivalence of the parallel kernels against naive
 * references.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "arch/pattern_matcher.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "core/calibration.hh"
#include "core/pipeline.hh"
#include "core/pwp.hh"
#include "sim/phi_sim.hh"
#include "snn/activation_gen.hh"
#include "snn/trace.hh"

namespace phi
{
namespace
{

// Size the shared pool for real concurrency even on single-core CI
// machines: the determinism contract must hold (and is only genuinely
// exercised) when chunks actually interleave across threads.
const bool kPoolSized = [] {
    setenv("PHI_THREADS", "8", /*overwrite=*/0);
    return true;
}();

ExecutionConfig
withThreads(int threads)
{
    ExecutionConfig exec;
    exec.threads = threads;
    return exec;
}

BinaryMatrix
clusteredActs(size_t rows, size_t cols, uint64_t seed)
{
    ClusterGenConfig cfg;
    cfg.bitDensity = 0.12;
    cfg.l2DensityTarget = 0.03;
    ClusteredSpikeGenerator gen(cfg, cols, seed);
    Rng rng(seed + 1);
    return gen.generate(rows, rng);
}

Matrix<int16_t>
randomWeights(size_t k, size_t n, uint64_t seed)
{
    Rng rng(seed);
    Matrix<int16_t> w(k, n);
    for (size_t r = 0; r < k; ++r)
        for (size_t c = 0; c < n; ++c)
            w(r, c) = static_cast<int16_t>(rng.uniformInt(-50, 50));
    return w;
}

Matrix<int32_t>
naiveSpikeGemm(const BinaryMatrix& a, const Matrix<int16_t>& w)
{
    Matrix<int32_t> out(a.rows(), w.cols(), 0);
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t k = 0; k < a.cols(); ++k)
            if (a.get(r, k))
                for (size_t c = 0; c < w.cols(); ++c)
                    out(r, c) += w(k, c);
    return out;
}

/** Seed-order (K-ascending) float reference; must match bitwise. */
Matrix<float>
naiveSpikeGemmF(const BinaryMatrix& a, const Matrix<float>& w)
{
    Matrix<float> out(a.rows(), w.cols(), 0.0f);
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t k = 0; k < a.cols(); ++k)
            if (a.get(r, k))
                for (size_t c = 0; c < w.cols(); ++c)
                    out(r, c) += w(k, c);
    return out;
}

void
expectSameDecomposition(const LayerDecomposition& a,
                        const LayerDecomposition& b)
{
    ASSERT_EQ(a.numPartitions(), b.numPartitions());
    for (size_t p = 0; p < a.numPartitions(); ++p) {
        EXPECT_EQ(a.tiles[p].patternIds, b.tiles[p].patternIds);
        EXPECT_EQ(a.tiles[p].l2Offsets, b.tiles[p].l2Offsets);
        ASSERT_EQ(a.tiles[p].l2Entries.size(),
                  b.tiles[p].l2Entries.size());
        for (size_t e = 0; e < a.tiles[p].l2Entries.size(); ++e) {
            EXPECT_EQ(a.tiles[p].l2Entries[e].col,
                      b.tiles[p].l2Entries[e].col);
            EXPECT_EQ(a.tiles[p].l2Entries[e].sign,
                      b.tiles[p].l2Entries[e].sign);
        }
    }
}

void
expectSameTable(const PatternTable& a, const PatternTable& b)
{
    ASSERT_EQ(a.numPartitions(), b.numPartitions());
    for (size_t p = 0; p < a.numPartitions(); ++p)
        EXPECT_EQ(a.partition(p).patterns(), b.partition(p).patterns());
}

// ---------------------------------------------------------------------
// Engine semantics
// ---------------------------------------------------------------------

TEST(ExecutionConfig, ResolvesExplicitThreadCounts)
{
    EXPECT_EQ(withThreads(1).resolvedThreads(), 1);
    EXPECT_EQ(withThreads(6).resolvedThreads(), 6);
    EXPECT_GE(withThreads(0).resolvedThreads(), 1);
}

TEST(ExecutionConfig, TileKRoundsToWholeWords)
{
    ExecutionConfig exec;
    exec.tileK = 1;
    EXPECT_EQ(exec.tileKWords(), 1u);
    exec.tileK = 64;
    EXPECT_EQ(exec.tileKWords(), 1u);
    exec.tileK = 65;
    EXPECT_EQ(exec.tileKWords(), 2u);
    exec.tileK = 4096;
    EXPECT_EQ(exec.tileKWords(), 64u);
}

TEST(Parallel, NumChunksCoversRange)
{
    EXPECT_EQ(numChunks(0, 0, 8), 0u);
    EXPECT_EQ(numChunks(0, 1, 8), 1u);
    EXPECT_EQ(numChunks(0, 8, 8), 1u);
    EXPECT_EQ(numChunks(0, 9, 8), 2u);
    EXPECT_EQ(numChunks(3, 9, 2), 3u);
}

TEST(Parallel, ForVisitsEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 8}) {
        std::vector<int> hits(1000, 0);
        parallelFor(withThreads(threads), 0, hits.size(), 17,
                    [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i)
                ++hits[i];
        });
        for (size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i], 1) << "index " << i << " at " << threads
                                  << " threads";
    }
}

TEST(Parallel, ChunkBoundariesIndependentOfThreadCount)
{
    auto boundaries = [](int threads) {
        std::vector<std::pair<size_t, size_t>> out(numChunks(5, 103, 13));
        parallelForChunks(withThreads(threads), 5, 103, 13,
                          [&](size_t chunk, size_t b, size_t e) {
            out[chunk] = {b, e};
        });
        return out;
    };
    const auto seq = boundaries(1);
    ASSERT_EQ(seq.size(), numChunks(5, 103, 13));
    EXPECT_EQ(seq.front().first, 5u);
    EXPECT_EQ(seq.back().second, 103u);
    for (size_t c = 1; c < seq.size(); ++c)
        EXPECT_EQ(seq[c].first, seq[c - 1].second);
    EXPECT_EQ(boundaries(2), seq);
    EXPECT_EQ(boundaries(8), seq);
}

TEST(Parallel, ExceptionsPropagateAndPoolSurvives)
{
    auto throwing = [&](int threads) {
        parallelFor(withThreads(threads), 0, 64, 1,
                    [&](size_t b, size_t) {
            if (b == 31)
                throw std::runtime_error("chunk failure");
        });
    };
    EXPECT_THROW(throwing(1), std::runtime_error);
    EXPECT_THROW(throwing(8), std::runtime_error);

    // The pool must stay usable after a failed job.
    std::atomic<int> count{0};
    parallelFor(withThreads(8), 0, 64, 1,
                [&](size_t, size_t) { ++count; });
    EXPECT_EQ(count.load(), 64);
}

TEST(Parallel, NestedLoopsRunInlineWithoutDeadlock)
{
    std::atomic<int> count{0};
    parallelFor(withThreads(8), 0, 8, 1, [&](size_t, size_t) {
        parallelFor(withThreads(8), 0, 100, 7,
                    [&](size_t b, size_t e) {
            count += static_cast<int>(e - b);
        });
    });
    EXPECT_EQ(count.load(), 800);
}

TEST(Parallel, PoolActuallyRunsChunksConcurrently)
{
    if (ThreadPool::global().maxParallelism() < 2)
        GTEST_SKIP() << "no helper threads available";

    std::mutex mtx;
    std::condition_variable cv;
    std::set<std::thread::id> ids;
    parallelFor(withThreads(8), 0, 8, 1, [&](size_t, size_t) {
        std::unique_lock<std::mutex> lock(mtx);
        ids.insert(std::this_thread::get_id());
        cv.notify_all();
        // Hold this chunk until a second thread shows up (or time out
        // and let the assertion below report the failure).
        cv.wait_for(lock, std::chrono::seconds(5),
                    [&] { return ids.size() >= 2; });
    });
    EXPECT_GE(ids.size(), 2u);
}

TEST(Parallel, ConcurrentTopLevelSubmittersAreSerialised)
{
    std::atomic<int> a{0};
    std::atomic<int> b{0};
    std::thread other([&] {
        parallelFor(withThreads(8), 0, 500, 3,
                    [&](size_t lo, size_t hi) {
            b += static_cast<int>(hi - lo);
        });
    });
    parallelFor(withThreads(8), 0, 500, 3, [&](size_t lo, size_t hi) {
        a += static_cast<int>(hi - lo);
    });
    other.join();
    EXPECT_EQ(a.load(), 500);
    EXPECT_EQ(b.load(), 500);
}

TEST(ThreadPool, LocalPoolRespectsWorkerCount)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.maxParallelism(), 4);
    std::atomic<int> count{0};
    pool.run(16, 4, [&](size_t) { ++count; });
    EXPECT_EQ(count.load(), 16);
}

// ---------------------------------------------------------------------
// BinaryMatrix tail-bit invariant
// ---------------------------------------------------------------------

TEST(BinaryMatrixTail, MaskMatchesColumnCount)
{
    Rng rng(11);
    BinaryMatrix a = BinaryMatrix::random(4, 70, 0.5, rng);
    EXPECT_EQ(a.tailMask(), lowMask(6));
    BinaryMatrix b = BinaryMatrix::random(4, 128, 0.5, rng);
    EXPECT_EQ(b.tailMask(), ~0ull);
}

TEST(BinaryMatrixTail, MutatorsKeepTailBitsClear)
{
    Rng rng(12);
    BinaryMatrix a = BinaryMatrix::random(9, 130, 0.6, rng);
    EXPECT_TRUE(a.tailBitsClear());
    a.deposit(3, 120, 16, ~0ull); // straddles the matrix edge
    EXPECT_TRUE(a.tailBitsClear());
    for (size_t c = 120; c < 130; ++c)
        EXPECT_TRUE(a.get(3, c));
    BinaryMatrix d = BinaryMatrix::fromDense(a.toDense());
    EXPECT_TRUE(d.tailBitsClear());
    EXPECT_EQ(a, d);
}

// ---------------------------------------------------------------------
// Kernel equivalence + thread-count invariance
// ---------------------------------------------------------------------

TEST(ParallelKernels, SpikeGemmMatchesDenseReference)
{
    // 250 columns: the last activation word carries tail bits.
    BinaryMatrix acts = clusteredActs(123, 250, 21);
    Matrix<int16_t> w = randomWeights(250, 37, 22);
    const Matrix<int32_t> ref = naiveSpikeGemm(acts, w);
    for (int threads : {1, 2, 8})
        EXPECT_EQ(spikeGemm(acts, w, withThreads(threads)), ref);
}

TEST(ParallelKernels, SpikeGemmInvariantUnderTiling)
{
    BinaryMatrix acts = clusteredActs(96, 320, 23);
    Matrix<int16_t> w = randomWeights(320, 96, 24);
    const Matrix<int32_t> ref = naiveSpikeGemm(acts, w);
    for (size_t tileN : {size_t{7}, size_t{64}, size_t{4096}}) {
        for (size_t tileK : {size_t{64}, size_t{130}, size_t{4096}}) {
            ExecutionConfig exec = withThreads(8);
            exec.tileN = tileN;
            exec.tileK = tileK;
            EXPECT_EQ(spikeGemm(acts, w, exec), ref)
                << "tileN=" << tileN << " tileK=" << tileK;
        }
    }
}

TEST(ParallelKernels, SpikeGemmFBitIdenticalAcrossThreads)
{
    BinaryMatrix acts = clusteredActs(77, 200, 25);
    Rng rng(26);
    Matrix<float> w(200, 33);
    for (size_t r = 0; r < w.rows(); ++r)
        for (size_t c = 0; c < w.cols(); ++c)
            w(r, c) = static_cast<float>(rng.uniform()) - 0.5f;

    const Matrix<float> ref = naiveSpikeGemmF(acts, w);
    for (int threads : {1, 2, 8}) {
        Matrix<float> out = spikeGemmF(acts, w, withThreads(threads));
        ASSERT_EQ(out.rows(), ref.rows());
        for (size_t r = 0; r < ref.rows(); ++r)
            for (size_t c = 0; c < ref.cols(); ++c)
                ASSERT_EQ(out(r, c), ref(r, c))
                    << "float drift at " << threads << " threads";
    }
}

TEST(ParallelKernels, CalibrationDecompositionPhiGemmInvariant)
{
    BinaryMatrix acts = clusteredActs(300, 256, 31);
    Matrix<int16_t> w = randomWeights(256, 48, 32);

    CalibrationConfig calib;
    calib.k = 16;
    calib.q = 64;
    calib.kmeans.maxIters = 10;
    calib.exec = withThreads(1);
    const PatternTable refTable = calibrateLayer(acts, calib);
    const LayerDecomposition refDec =
        decomposeLayer(acts, refTable, withThreads(1));
    const Matrix<int32_t> refOut =
        phiGemm(refDec, refTable, w, withThreads(1));

    // The hierarchical product must equal the plain binary GEMM.
    EXPECT_EQ(refOut, naiveSpikeGemm(acts, w));

    for (int threads : {2, 8}) {
        calib.exec = withThreads(threads);
        PatternTable table = calibrateLayer(acts, calib);
        expectSameTable(table, refTable);
        LayerDecomposition dec =
            decomposeLayer(acts, table, withThreads(threads));
        expectSameDecomposition(dec, refDec);
        EXPECT_EQ(phiGemm(dec, table, w, withThreads(threads)), refOut);
    }
}

TEST(ParallelKernels, KMeansFitInvariantAcrossThreads)
{
    Rng rng(41);
    std::vector<uint64_t> rows;
    for (int i = 0; i < 4000; ++i)
        rows.push_back(rng.next() & 0xffff);
    auto hist = BinaryKMeans::histogram(rows);

    KMeansConfig cfg;
    cfg.numClusters = 32;
    cfg.init = KMeansConfig::Init::PlusPlus;
    cfg.exec = withThreads(1);
    const PatternSet ref = BinaryKMeans(cfg).fit(hist, 16);
    ASSERT_FALSE(ref.empty());
    for (int threads : {2, 8}) {
        cfg.exec = withThreads(threads);
        EXPECT_EQ(BinaryKMeans(cfg).fit(hist, 16).patterns(),
                  ref.patterns());
    }
}

TEST(ParallelKernels, MatchAllEqualsPerRowMatch)
{
    Rng rng(51);
    std::vector<uint64_t> pats;
    for (int i = 0; i < 100; ++i)
        pats.push_back(rng.next() & 0xffff);
    PatternMatcher matcher(PatternSet(16, pats));

    std::vector<uint64_t> rows;
    for (int i = 0; i < 3000; ++i)
        rows.push_back(rng.next() & 0xffff);

    for (int threads : {1, 2, 8}) {
        auto batch = matcher.matchAll(rows, withThreads(threads));
        ASSERT_EQ(batch.size(), rows.size());
        for (size_t i = 0; i < rows.size(); ++i) {
            RowAssignment one = matcher.match(rows[i]);
            EXPECT_EQ(batch[i].patternId, one.patternId);
            EXPECT_EQ(batch[i].posMask, one.posMask);
            EXPECT_EQ(batch[i].negMask, one.negMask);
        }
    }
}

TEST(ParallelKernels, PipelineComputeMatchesReferenceAtAnyThreadCount)
{
    BinaryMatrix acts = clusteredActs(180, 192, 61);
    Matrix<int16_t> w = randomWeights(192, 40, 62);

    CalibrationConfig calib;
    calib.k = 16;
    calib.q = 48;
    calib.kmeans.maxIters = 8;

    const Matrix<int32_t> ref = naiveSpikeGemm(acts, w);
    for (int threads : {1, 8}) {
        Pipeline pipe(calib, withThreads(threads));
        pipe.addLayer("l0", {&acts}).bindWeights(w);
        const CompiledModel model = pipe.compile();
        const CompiledLayer& layer = model.layer(0);
        EXPECT_EQ(layer.compute(layer.decompose(acts, withThreads(threads)),
                                withThreads(threads)),
                  ref);
    }
}

TEST(ParallelKernels, SimulatorRunInvariantAcrossThreads)
{
    ModelSpec spec = makeModel(ModelId::ResNet18, DatasetId::CIFAR10);
    TraceOptions opt;
    opt.seed = 7;
    opt.calib.q = 32;
    opt.calib.kmeans.maxIters = 6;
    opt.calib.kmeans.maxDistinct = 512;
    opt.exec = withThreads(1);
    ModelTrace trace = buildModelTrace(spec, opt);

    SimResult ref =
        PhiSimulator({}, defaultOpEnergies(), withThreads(1)).run(trace);
    for (int threads : {2, 8}) {
        SimResult out = PhiSimulator({}, defaultOpEnergies(),
                                     withThreads(threads))
                            .run(trace);
        EXPECT_EQ(out.cycles, ref.cycles);
        EXPECT_EQ(out.energy.total(), ref.energy.total());
        EXPECT_EQ(out.traffic.totalBytes(), ref.traffic.totalBytes());
    }

    // Trace construction itself must also be thread-count invariant.
    opt.exec = withThreads(8);
    ModelTrace trace8 = buildModelTrace(spec, opt);
    ASSERT_EQ(trace8.layers.size(), trace.layers.size());
    for (size_t i = 0; i < trace.layers.size(); ++i) {
        EXPECT_EQ(trace8.layers[i].acts, trace.layers[i].acts);
        expectSameTable(trace8.layers[i].table, trace.layers[i].table);
        expectSameDecomposition(trace8.layers[i].dec,
                                trace.layers[i].dec);
    }
}

} // namespace
} // namespace phi
