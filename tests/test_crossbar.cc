/**
 * @file
 * Tests for the crossbar grant scheduler.
 */

#include <gtest/gtest.h>

#include <set>

#include "arch/crossbar.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace phi
{
namespace
{

TEST(Crossbar, EmptyRequestsTakeNoCycles)
{
    Crossbar xbar(16, 8);
    EXPECT_EQ(xbar.cyclesFor({}), 0u);
}

TEST(Crossbar, UpToOutputsGrantedPerCycle)
{
    Crossbar xbar(16, 8);
    // 10 requests from 10 distinct banks: 8 + 2.
    std::vector<int> banks{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto sched = xbar.schedule(banks);
    ASSERT_EQ(sched.size(), 2u);
    EXPECT_EQ(sched[0].size(), 8u);
    EXPECT_EQ(sched[1].size(), 2u);
}

TEST(Crossbar, BankConflictSerialises)
{
    Crossbar xbar(16, 8);
    // 4 requests all from bank 3: one per cycle.
    std::vector<int> banks{3, 3, 3, 3};
    EXPECT_EQ(xbar.cyclesFor(banks), 4u);
}

TEST(Crossbar, EveryRequestGrantedExactlyOnce)
{
    Crossbar xbar(16, 8);
    Rng rng(1);
    std::vector<int> banks;
    for (int i = 0; i < 100; ++i)
        banks.push_back(static_cast<int>(rng.nextBounded(16)));
    auto sched = xbar.schedule(banks);
    std::set<int> granted;
    for (const auto& cycle : sched) {
        EXPECT_LE(cycle.size(), 8u);
        std::set<int> cycle_banks;
        for (int req : cycle) {
            EXPECT_TRUE(granted.insert(req).second)
                << "request granted twice";
            EXPECT_TRUE(
                cycle_banks.insert(banks[static_cast<size_t>(req)])
                    .second)
                << "two grants from one bank in a cycle";
        }
    }
    EXPECT_EQ(granted.size(), banks.size());
}

TEST(Crossbar, SixteenToEightL1Shape)
{
    // The L1 use case: up to 16 pattern-index hits, 8 forwarded per
    // cycle, each from its own partition bank -> exactly 2 cycles.
    Crossbar xbar(16, 8);
    std::vector<int> banks;
    for (int i = 0; i < 16; ++i)
        banks.push_back(i);
    EXPECT_EQ(xbar.cyclesFor(banks), 2u);
}

TEST(Crossbar, InvalidBankPanics)
{
    detail::setThrowOnError(true);
    Crossbar xbar(4, 2);
    EXPECT_THROW(xbar.schedule({5}), std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
} // namespace phi
