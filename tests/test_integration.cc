/**
 * @file
 * End-to-end integration tests: a real LIF spiking network's
 * activations flow through calibration, decomposition, the simulated
 * datapath and the cycle simulator — with exact functional agreement
 * at every step.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/pipeline.hh"
#include "sim/baselines.hh"
#include "sim/phi_sim.hh"
#include "snn/network.hh"
#include "snn/trace.hh"

namespace phi
{
namespace
{

TEST(Integration, RealNetworkActivationsAreLosslesslyDecomposed)
{
    // Build and run a real spiking CNN; calibrate Phi on activations
    // from a few inputs; verify exactness on a held-out input.
    SpikingNetwork net(3, 8, 4);
    net.addConv(8);
    net.addPool();
    net.addConv(16);
    net.addFc(10);
    Rng wrng(1);
    net.randomizeWeights(wrng, 3.0);

    auto make_image = [](uint64_t seed) {
        Rng rng(seed);
        std::vector<float> img(3 * 8 * 8);
        for (auto& v : img)
            v = static_cast<float>(rng.uniform());
        return img;
    };

    // Calibration inputs ("training data").
    std::vector<SpikingNetwork::Forward> calib;
    for (uint64_t s = 0; s < 3; ++s) {
        Rng rng(100 + s);
        calib.push_back(net.forward(make_image(10 + s), rng));
    }
    // Held-out input ("test data").
    Rng trng(200);
    auto test = net.forward(make_image(99), trng);

    const size_t num_layers = test.gemmActs.size();
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 32;
    Pipeline pipe(cfg);
    for (size_t l = 0; l < num_layers; ++l) {
        std::vector<const BinaryMatrix*> samples;
        for (const auto& f : calib)
            samples.push_back(&f.gemmActs[l]);
        pipe.addLayer("layer" + std::to_string(l), samples);
    }

    // Decompose-only layers compile to weightless CompiledLayers.
    const CompiledModel model = pipe.compile();
    for (size_t l = 0; l < num_layers; ++l) {
        const BinaryMatrix& acts = test.gemmActs[l];
        if (acts.popcount() == 0)
            continue; // nothing to verify on a silent layer
        LayerDecomposition dec = model.layer(l).decompose(acts);
        BinaryMatrix rebuilt =
            reconstructActivations(dec, model.layer(l).table());
        EXPECT_TRUE(rebuilt == acts) << "layer " << l;

        // Exact product with integer weights.
        Rng qrng(300 + l);
        Matrix<int16_t> w(acts.cols(), 8);
        for (size_t r = 0; r < w.rows(); ++r)
            for (size_t c = 0; c < w.cols(); ++c)
                w(r, c) = static_cast<int16_t>(qrng.uniformInt(-20, 20));
        EXPECT_EQ(phiGemm(dec, model.layer(l).table(), w),
                  spikeGemm(acts, w))
            << "layer " << l;
    }
}

TEST(Integration, FullModelTraceThroughAllSimulators)
{
    // A reduced Spikformer trace through Phi and all baselines:
    // every simulator must produce consistent OP counts and the
    // paper's efficiency ordering (Phi fastest, Eyeriss slowest).
    ModelSpec spec = makeModel(ModelId::Spikformer, DatasetId::CIFAR10);
    // Shrink for test runtime: keep attention block + head shapes.
    spec.layers = {spec.layers[4], spec.layers[5], spec.layers[6],
                   spec.layers[10]};
    ModelTrace trace = buildModelTrace(spec);

    PhiSimulator phi_sim;
    SimResult phi = phi_sim.run(trace);
    auto baselines = makeBaselines();
    SimResult eyeriss = baselines[0]->run(trace);

    EXPECT_DOUBLE_EQ(phi.bitOps, eyeriss.bitOps);
    EXPECT_LT(phi.cycles, eyeriss.cycles);
    for (auto& b : baselines) {
        SimResult r = b->run(trace);
        EXPECT_LE(phi.cycles, r.cycles) << b->name();
        EXPECT_GT(phi.gopsPerJoule(), r.gopsPerJoule()) << b->name();
    }
}

TEST(Integration, PaftImprovesSimulatedRuntime)
{
    ModelSpec spec = makeModel(ModelId::VGG16, DatasetId::CIFAR100);
    spec.layers = {{"conv", 1024, 256, 64, 1}};
    TraceOptions base;
    TraceOptions paft = base;
    paft.paft = true;
    paft.paftStrength = 0.7;

    ModelTrace t0 = buildModelTrace(spec, base);
    ModelTrace t1 = buildModelTrace(spec, paft);
    PhiSimulator sim;
    // PAFT shrinks the L2 correction stream; on this small layer the
    // L1 window-scan floor dominates total compute, so the improvement
    // is asserted on the L2 processor cycles it actually targets.
    double c0 = 0;
    double c1 = 0;
    for (const auto& l : sim.run(t0).layers)
        c0 += l.breakdown.l2;
    for (const auto& l : sim.run(t1).layers)
        c1 += l.breakdown.l2;
    EXPECT_LT(c1, c0);
}

TEST(Integration, DatapathEmulationOnRealNetworkActivations)
{
    // The hardware datapath (packs + reconfigurable adder tree + PWP
    // gather) reproduces the exact product on activations from real
    // LIF dynamics, not just on synthetic draws.
    SpikingNetwork net(1, 8, 4);
    net.addConv(8);
    net.addFc(12);
    Rng wrng(7);
    net.randomizeWeights(wrng, 3.0);
    Rng irng(8);
    std::vector<float> img(64);
    for (auto& v : img)
        v = static_cast<float>(irng.uniform());
    Rng frng(9);
    auto fwd = net.forward(img, frng);

    const BinaryMatrix& acts = fwd.gemmActs[0];
    ASSERT_GT(acts.popcount(), 0u);

    LayerTrace lt;
    lt.spec = {"conv0", acts.rows(), acts.cols(), 16, 1};
    lt.acts = acts;
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 16;
    lt.table = calibrateLayer(acts, cfg);
    lt.dec = decomposeLayer(acts, lt.table);
    lt.stats = computeBreakdown(acts, lt.dec, lt.table);
    Rng qrng(10);
    lt.weights = Matrix<int16_t>(acts.cols(), 16);
    for (size_t r = 0; r < lt.weights.rows(); ++r)
        for (size_t c = 0; c < lt.weights.cols(); ++c)
            lt.weights(r, c) =
                static_cast<int16_t>(qrng.uniformInt(-15, 15));

    EXPECT_EQ(emulateDatapath(lt), spikeGemm(acts, lt.weights));
}

} // namespace
} // namespace phi
