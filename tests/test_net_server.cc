/**
 * @file
 * PhiServer tests over live loopback sockets: bit-exact serving
 * through the wire, concurrent connections, hot-swap mid-traffic,
 * protocol hardening (truncated/lying/oversized frames, mid-request
 * disconnects), slow-client write bounds, timeouts, the STATS verb,
 * and graceful drain semantics.
 *
 * The hostile-reality contract pinned throughout: every malformed or
 * hostile interaction yields a typed wire error or a clean close —
 * never a hang, a crash, a poisoned neighbour connection, or a leaked
 * file descriptor (asserted by counting /proc/self/fd before and
 * after).
 */

#ifdef __linux__

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/rng.hh"
#include "core/pipeline.hh"
#include "io/model_io.hh"
#include "io/session_io.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "numeric/gemm.hh"
#include "snn/lif.hh"
#include "test_support.hh"

namespace phi::net
{
namespace
{

/** Open fds of this process — the leak detector. */
size_t
openFdCount()
{
    size_t n = 0;
    for ([[maybe_unused]] const auto& e :
         std::filesystem::directory_iterator("/proc/self/fd"))
        ++n;
    return n;
}

CompiledModel
makeModel(size_t k, const Matrix<int16_t>& weights, uint64_t seed)
{
    Rng rng(seed);
    BinaryMatrix train = BinaryMatrix::random(256, k, 0.15, rng);
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 24;
    cfg.kmeans.maxIters = 8;
    Pipeline pipe(cfg);
    pipe.addLayer("l0", {&train}).bindWeights(weights);
    return pipe.compile();
}

class PhiServerTest : public ::testing::Test
{
  protected:
    static constexpr size_t kK = 96;

    void
    SetUp() override
    {
        weights = test::randomWeights(kK, 24, 5);
        registry = std::make_shared<ModelRegistry>();
        registry->load("m", makeModel(kK, weights, 3));
    }

    /** Start a server on an ephemeral loopback port. */
    std::unique_ptr<PhiServer>
    startServer(PhiServerConfig cfg = {})
    {
        AsyncEngineConfig engineCfg;
        engineCfg.maxLingerMicros = 0;
        engineCfg.backpressure =
            AsyncEngineConfig::Backpressure::Reject;
        auto server = std::make_unique<PhiServer>(
            registry, ExecutionConfig{}, engineCfg, cfg);
        server->start();
        return server;
    }

    BinaryMatrix
    makeActs(size_t rows, uint64_t seed) const
    {
        Rng rng(seed);
        return BinaryMatrix::random(rows, kK, 0.2, rng);
    }

    Matrix<int16_t> weights;
    std::shared_ptr<ModelRegistry> registry;
};

TEST_F(PhiServerTest, ServesBitExactOverTheWire)
{
    auto server = startServer();
    PhiClient client("127.0.0.1", server->port());
    const BinaryMatrix acts = makeActs(20, 17);
    const WireResponse resp = client.request("m", 0, acts);
    EXPECT_EQ(resp.model, "m");
    EXPECT_EQ(resp.version, 1u);
    EXPECT_TRUE(resp.out == spikeGemm(acts, weights));
}

TEST_F(PhiServerTest, ConcurrentConnectionsAllServeCorrectly)
{
    auto server = startServer();
    constexpr size_t kClients = 8;
    constexpr size_t kPerClient = 16;
    std::vector<std::thread> threads;
    std::atomic<size_t> exact{0};
    for (size_t t = 0; t < kClients; ++t) {
        threads.emplace_back([&, t] {
            PhiClient client("127.0.0.1", server->port());
            for (size_t i = 0; i < kPerClient; ++i) {
                const BinaryMatrix acts = makeActs(8, 100 + t * 31 + i);
                const WireResponse resp = client.request("m", 0, acts);
                if (resp.out == spikeGemm(acts, weights))
                    ++exact;
            }
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(exact.load(), kClients * kPerClient);
    const ServerCounters c = server->counters();
    EXPECT_EQ(c.requests, kClients * kPerClient);
    EXPECT_EQ(c.responses, kClients * kPerClient);
    EXPECT_EQ(c.wireErrors, 0u);
}

TEST_F(PhiServerTest, PipelinedRequestsComeBackInOrder)
{
    auto server = startServer();
    PhiClient client("127.0.0.1", server->port());
    constexpr size_t kDepth = 24;
    std::vector<BinaryMatrix> acts;
    std::vector<uint32_t> ids;
    for (size_t i = 0; i < kDepth; ++i) {
        acts.push_back(makeActs(4 + i % 5, 300 + i));
        WireRequest req;
        req.model = "m";
        req.acts = acts.back();
        ids.push_back(client.sendRequest(req));
    }
    for (size_t i = 0; i < kDepth; ++i) {
        const WireReply reply = client.readReply();
        ASSERT_TRUE(reply.ok);
        // One connection's replies come back in submission order (the
        // completion thread consumes futures FIFO).
        EXPECT_EQ(reply.response.id, ids[i]);
        EXPECT_TRUE(reply.response.out == spikeGemm(acts[i], weights));
    }
}

TEST_F(PhiServerTest, EngineErrorsCrossTheWireTyped)
{
    auto server = startServer();
    PhiClient client("127.0.0.1", server->port());

    // Unknown model -> EngineError(UnknownModel), exactly as
    // in-process.
    try {
        client.request("ghost", 0, makeActs(4, 1));
        FAIL() << "unknown model was served";
    } catch (const EngineError& e) {
        EXPECT_EQ(e.code(), EngineError::Code::UnknownModel);
    }

    // Wrong activation width -> ShapeMismatch.
    Rng rng(2);
    try {
        WireRequest req;
        req.model = "m";
        req.acts = BinaryMatrix::random(4, 32, 0.2, rng);
        client.request(req);
        FAIL() << "mismatched K was served";
    } catch (const EngineError& e) {
        EXPECT_EQ(e.code(), EngineError::Code::ShapeMismatch);
    }

    // Invalid layer -> InvalidLayer.
    try {
        client.request("m", 7, makeActs(4, 3));
        FAIL() << "invalid layer was served";
    } catch (const EngineError& e) {
        EXPECT_EQ(e.code(), EngineError::Code::InvalidLayer);
    }

    // Expired deadline -> DeadlineExceeded... but a 1ms budget may
    // also be met; use the enormous-lateness path instead: deadlineMs
    // is unsigned, so the smallest budget is 1ms — submit under heavy
    // queue pressure is timing-dependent. Skip exactness here; the
    // resilience suite owns deadline semantics. The wire mapping
    // itself is covered by the code-mapping tests.

    // The connection survives every typed rejection.
    const BinaryMatrix acts = makeActs(6, 4);
    EXPECT_TRUE(client.request("m", 0, acts).out ==
                spikeGemm(acts, weights));
}

TEST_F(PhiServerTest, HotSwapOverTheWireIsSeamless)
{
    auto server = startServer();
    PhiClient client("127.0.0.1", server->port());

    const BinaryMatrix acts = makeActs(10, 21);
    EXPECT_EQ(client.request("m", 0, acts).version, 1u);
    EXPECT_TRUE(client.request("m", 0, acts).out ==
                spikeGemm(acts, weights));

    // Swap to new weights while the connection stays up.
    const Matrix<int16_t> weights2 = test::randomWeights(kK, 24, 99);
    registry->swap("m", makeModel(kK, weights2, 4));

    const WireResponse after = client.request("m", 0, acts);
    EXPECT_EQ(after.version, 2u);
    EXPECT_TRUE(after.out == spikeGemm(acts, weights2));
}

TEST_F(PhiServerTest, CorruptArtifactSwapRejectsWhileServingOverWire)
{
    auto server = startServer();
    PhiClient client("127.0.0.1", server->port());

    // A corrupted .phim swap attempt fails typed and leaves the wire
    // serving the old version, bit-exact.
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("phi_net_swap_" + std::to_string(::getpid()) + ".phim"))
            .string();
    std::vector<uint8_t> bytes =
        io::serializeModel(makeModel(kK, weights, 3));
    bytes[bytes.size() - 16] ^= 0x20;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_THROW(registry->swapFromFile("m", path), io::IoError);
    std::filesystem::remove(path);

    ASSERT_TRUE(registry->current("m").has_value());
    EXPECT_EQ(registry->current("m")->version, 1u);
    const BinaryMatrix acts = makeActs(5, 33);
    EXPECT_TRUE(client.request("m", 0, acts).out ==
                spikeGemm(acts, weights));
}

// ---- protocol hardening over live sockets ---------------------------

TEST_F(PhiServerTest, MalformedFrameGetsTypedErrorAndKeepsPoolAlive)
{
    auto server = startServer();
    PhiClient healthy("127.0.0.1", server->port());
    PhiClient hostile("127.0.0.1", server->port());

    // A cleanly-framed Request whose body is garbage: typed
    // MalformedFrame, connection survives.
    const std::vector<uint8_t> junkBody = {0x01, 0x02, 0x03};
    const std::vector<uint8_t> frame =
        encodeFrame(FrameType::Request, junkBody);
    hostile.sendRaw(frame.data(), frame.size());
    const WireReply reply = [&] {
        try {
            return hostile.readReply();
        } catch (const NetError&) {
            return WireReply{};
        }
    }();
    EXPECT_FALSE(reply.ok);

    // The hostile connection still serves after the rejection...
    const BinaryMatrix acts = makeActs(4, 50);
    EXPECT_TRUE(hostile.request("m", 0, acts).out ==
                spikeGemm(acts, weights));
    // ...and the neighbour never noticed.
    EXPECT_TRUE(healthy.request("m", 0, acts).out ==
                spikeGemm(acts, weights));
}

TEST_F(PhiServerTest, BadMagicClosesOnlyTheGuiltyConnection)
{
    auto server = startServer();
    PhiClient healthy("127.0.0.1", server->port());
    PhiClient hostile("127.0.0.1", server->port());

    const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
    hostile.sendRaw(garbage, sizeof(garbage) - 1);
    // The server reports BadMagic (typed) and closes; either surfaces
    // as an exception on the next exchange, never a hang.
    EXPECT_THROW(
        {
            try {
                hostile.request("m", 0, makeActs(4, 51));
            } catch (const NetError& e) {
                EXPECT_TRUE(e.code() == WireErrorCode::BadMagic ||
                            e.code() == WireErrorCode::ConnectionLost)
                    << e.what();
                throw;
            }
        },
        NetError);

    const BinaryMatrix acts = makeActs(4, 52);
    EXPECT_TRUE(healthy.request("m", 0, acts).out ==
                spikeGemm(acts, weights));
}

TEST_F(PhiServerTest, LyingLengthFieldIsRejectedTyped)
{
    auto server = startServer();
    PhiClient client("127.0.0.1", server->port());

    // Header claims a body far over the server's limit.
    io::ByteWriter w;
    w.u32(kMagic);
    w.u32(static_cast<uint32_t>(FrameType::Request));
    w.u32(0x7FFF'FFFFu);
    client.sendRaw(w.buffer().data(), w.buffer().size());

    try {
        client.readReply();
        FAIL() << "oversized frame was not rejected";
    } catch (const NetError& e) {
        EXPECT_TRUE(e.code() == WireErrorCode::FrameTooLarge ||
                    e.code() == WireErrorCode::ConnectionLost)
            << e.what();
    }
}

TEST_F(PhiServerTest, MidRequestDisconnectIsAbsorbed)
{
    auto server = startServer();
    const size_t fdsBefore = openFdCount();
    {
        PhiClient dropper("127.0.0.1", server->port());
        // Send half a valid request frame, then vanish.
        io::ByteWriter body;
        WireRequest req;
        req.model = "m";
        req.acts = makeActs(16, 60);
        encodeRequest(body, req);
        const std::vector<uint8_t> frame =
            encodeFrame(FrameType::Request, body.buffer());
        dropper.sendRaw(frame.data(), frame.size() / 2);
        dropper.close();
    }
    {
        // And one that vanishes with a request *in flight*.
        PhiClient dropper("127.0.0.1", server->port());
        WireRequest req;
        req.model = "m";
        req.acts = makeActs(16, 61);
        dropper.sendRequest(req);
        dropper.close();
    }

    // The server keeps serving; its dropped-peer bookkeeping must
    // converge (responses for dead connections are consumed+dropped).
    PhiClient client("127.0.0.1", server->port());
    const BinaryMatrix acts = makeActs(4, 62);
    EXPECT_TRUE(client.request("m", 0, acts).out ==
                spikeGemm(acts, weights));
    client.close();

    // Connection close is observed by epoll asynchronously; poll until
    // the server has reaped both droppers (and our client).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server->connectionCount() > 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(server->connectionCount(), 0u);

    // No leaked fds once every connection is reaped.
    const size_t fdsAfter = openFdCount();
    EXPECT_EQ(fdsAfter, fdsBefore);
}

TEST_F(PhiServerTest, SlowClientHitsWriteBoundAndIsDropped)
{
    PhiServerConfig cfg;
    cfg.maxWriteBufferBytes = 4096; // tiny: a few responses overflow
    cfg.writeTimeoutMs = 0;         // isolate the byte bound
    auto server = startServer(cfg);

    PhiClient slow("127.0.0.1", server->port());
    // Pipeline many large-output requests without ever reading, while
    // shrinking our kernel-side receive window to stall the server's
    // sends quickly.
    const int tiny = 1;
    ::setsockopt(slow.fd(), SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
    try {
        for (size_t i = 0; i < 64; ++i) {
            WireRequest req;
            req.model = "m";
            req.acts = makeActs(64, 70 + i);
            slow.sendRequest(req);
        }
    } catch (const NetError& e) {
        // The server may sever us mid-loop — the very behaviour under
        // test — which surfaces here as a typed ConnectionLost (EPIPE).
        EXPECT_EQ(e.code(), WireErrorCode::ConnectionLost);
    }

    // The server must disconnect us rather than buffer without bound.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    bool dropped = false;
    while (!dropped && std::chrono::steady_clock::now() < deadline) {
        if (server->counters().slowClientDrops > 0)
            dropped = true;
        else
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(dropped);

    // And the pool keeps serving.
    PhiClient healthy("127.0.0.1", server->port());
    const BinaryMatrix acts = makeActs(4, 80);
    EXPECT_TRUE(healthy.request("m", 0, acts).out ==
                spikeGemm(acts, weights));
}

TEST_F(PhiServerTest, StalledPartialFrameHitsReadTimeout)
{
    PhiServerConfig cfg;
    cfg.readTimeoutMs = 100;
    auto server = startServer(cfg);

    PhiClient staller("127.0.0.1", server->port());
    const uint8_t half[6] = {'P', 'H', 'I', 'W', 1, 0}; // header cut
    staller.sendRaw(half, sizeof(half));

    // The server times the stalled frame out: we observe a typed
    // Timeout error frame or a close, within a bounded wait.
    try {
        staller.readReply();
        FAIL() << "stalled frame did not time out";
    } catch (const NetError& e) {
        EXPECT_TRUE(e.code() == WireErrorCode::Timeout ||
                    e.code() == WireErrorCode::ConnectionLost)
            << e.what();
    }
    EXPECT_GE(server->counters().timeouts, 1u);
}

TEST_F(PhiServerTest, IdleConnectionIsReaped)
{
    PhiServerConfig cfg;
    cfg.idleTimeoutMs = 100;
    auto server = startServer(cfg);

    PhiClient idler("127.0.0.1", server->port());
    // One healthy exchange, then silence.
    const BinaryMatrix acts = makeActs(4, 90);
    EXPECT_TRUE(idler.request("m", 0, acts).out ==
                spikeGemm(acts, weights));

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (server->connectionCount() > 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(server->connectionCount(), 0u);
}

TEST_F(PhiServerTest, ConnectionCapRefusesExtrasTyped)
{
    PhiServerConfig cfg;
    cfg.maxConnections = 2;
    auto server = startServer(cfg);

    PhiClient a("127.0.0.1", server->port());
    PhiClient b("127.0.0.1", server->port());
    // Ensure both are registered server-side before the third knocks.
    const BinaryMatrix acts = makeActs(4, 95);
    a.request("m", 0, acts);
    b.request("m", 0, acts);

    PhiClient c("127.0.0.1", server->port());
    try {
        c.request("m", 0, acts);
        FAIL() << "third connection was admitted past the cap";
    } catch (const NetError& e) {
        EXPECT_TRUE(e.code() == WireErrorCode::TooManyConnections ||
                    e.code() == WireErrorCode::ConnectionLost)
            << e.what();
    }
    // The admitted pair keeps serving.
    EXPECT_TRUE(a.request("m", 0, acts).out ==
                spikeGemm(acts, weights));
}

// ---- STATS ----------------------------------------------------------

TEST_F(PhiServerTest, StatsVerbServesPerModelCounters)
{
    auto server = startServer();
    PhiClient client("127.0.0.1", server->port());
    const BinaryMatrix acts = makeActs(4, 110);
    client.request("m", 0, acts);
    client.request("m", 0, acts);

    const std::string text = client.statsText();
    EXPECT_NE(text.find("phi-server"), std::string::npos);
    EXPECT_NE(text.find("requests 2"), std::string::npos) << text;
    EXPECT_NE(text.find("model m "), std::string::npos) << text;
    EXPECT_GE(server->counters().statsServed, 1u);
}

TEST_F(PhiServerTest, PlaintextStatsVerbWorksWithoutAPhiClient)
{
    auto server = startServer();
    PhiClient raw("127.0.0.1", server->port());
    raw.sendRaw("STATS\n", 6);
    // The reply is plaintext, not a frame — read bytes straight off
    // the socket until the server closes.
    std::string reply;
    char buf[512];
    while (true) {
        const ssize_t n = ::recv(raw.fd(), buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        reply.append(buf, static_cast<size_t>(n));
    }
    EXPECT_NE(reply.find("phi-server"), std::string::npos);
    EXPECT_NE(reply.find("end"), std::string::npos);
}

// ---- graceful drain -------------------------------------------------

TEST_F(PhiServerTest, DrainServesInFlightAndRejectsNewTyped)
{
    auto server = startServer();
    PhiClient client("127.0.0.1", server->port());

    // Pipeline a burst, then drain while it is being served.
    constexpr size_t kBurst = 16;
    std::vector<BinaryMatrix> acts;
    for (size_t i = 0; i < kBurst; ++i) {
        acts.push_back(makeActs(32, 200 + i));
        WireRequest req;
        req.model = "m";
        req.acts = acts.back();
        client.sendRequest(req);
    }
    // Wait until the server has *admitted* the whole burst (the drain
    // guarantee covers submitted requests; frames still unparsed when
    // the drain lands are rejected typed instead).
    const auto admitDeadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server->counters().requests < kBurst &&
           std::chrono::steady_clock::now() < admitDeadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server->counters().requests, kBurst);
    server->requestDrain();

    // Every pre-drain request is served, bit-exact — drain never
    // drops work it already accepted.
    size_t served = 0;
    for (size_t i = 0; i < kBurst; ++i) {
        const WireReply reply = client.readReply();
        if (reply.ok && reply.response.out == spikeGemm(acts[i], weights))
            ++served;
    }
    EXPECT_EQ(served, kBurst);

    server->waitUntilStopped();
    EXPECT_FALSE(server->running());

    // Post-drain connects are refused outright (listener is gone).
    EXPECT_THROW(PhiClient("127.0.0.1", server->port()), NetError);
}

TEST_F(PhiServerTest, RequestSentAfterDrainGetsServerDraining)
{
    PhiServerConfig cfg;
    cfg.drainTimeoutMs = 5000;
    auto server = startServer(cfg);
    PhiClient client("127.0.0.1", server->port());
    // Prime the connection so it exists server-side.
    client.request("m", 0, makeActs(4, 300));

    server->requestDrain();

    // A request racing in after the drain request: either typed
    // ServerDraining, or the drain already closed us — never served,
    // never hung.
    try {
        client.request("m", 0, makeActs(4, 301));
        FAIL() << "post-drain request was served";
    } catch (const NetError& e) {
        EXPECT_TRUE(e.code() == WireErrorCode::ServerDraining ||
                    e.code() == WireErrorCode::ConnectionLost)
            << e.what();
    } catch (const EngineError& e) {
        FAIL() << "engine saw a post-drain request: " << e.what();
    }
    server->waitUntilStopped();
}

TEST_F(PhiServerTest, DrainCompletesWithNoTrafficAndReleasesFds)
{
    const size_t fdsBefore = openFdCount();
    {
        auto server = startServer();
        server->requestDrain();
        server->waitUntilStopped();
        EXPECT_FALSE(server->running());
    }
    EXPECT_EQ(openFdCount(), fdsBefore);
}

// ---- stateful sessions over the wire --------------------------------

/** Copy one row of @p src into row @p dstRow of @p dst. */
void
copyRow(const BinaryMatrix& src, size_t srcRow, BinaryMatrix& dst,
        size_t dstRow)
{
    for (size_t c = 0; c < src.cols(); c += 64) {
        const int len =
            static_cast<int>(std::min<size_t>(64, src.cols() - c));
        dst.deposit(dstRow, c, len, src.extract(srcRow, c, len));
    }
}

/** Offline reference for the fixture's one-layer model: spikeGemm
 *  into a persistent LifPopulation, one timestep at a time. */
BinaryMatrix
referenceSteps(const BinaryMatrix& frames,
               const Matrix<int16_t>& weights, LifPopulation& pop)
{
    BinaryMatrix out(frames.rows(), weights.cols());
    for (size_t t = 0; t < frames.rows(); ++t) {
        BinaryMatrix cur(1, frames.cols());
        copyRow(frames, t, cur, 0);
        const Matrix<int32_t> acc = spikeGemm(cur, weights);
        pop.stepInto(acc.rowPtr(0), out, t);
    }
    return out;
}

TEST_F(PhiServerTest, SessionStreamOverTheWireIsBitExact)
{
    auto server = startServer();
    PhiClient client("127.0.0.1", server->port());

    const WireSessionOpened opened = client.openSession("m");
    EXPECT_EQ(opened.model, "m");
    EXPECT_EQ(opened.version, 1u);
    EXPECT_EQ(opened.layers, 1u);

    LifPopulation ref(weights.cols());
    uint64_t at = 0;
    for (size_t chunk : {3u, 1u, 5u}) {
        const BinaryMatrix frames = makeActs(chunk, 600 + chunk);
        const BinaryMatrix expected =
            referenceSteps(frames, weights, ref);
        const WireSessionStepped got =
            client.stepSession(opened.sessionId, frames);
        EXPECT_EQ(got.sessionId, opened.sessionId);
        EXPECT_EQ(got.firstStep, at);
        EXPECT_TRUE(got.spikes == expected)
            << "wire session diverged at step " << at;
        at += chunk;
    }

    const WireSessionClosed closed =
        client.closeSession(opened.sessionId);
    EXPECT_EQ(closed.steps, at);

    const ServerCounters c = server->counters();
    EXPECT_EQ(c.sessionOpens, 1u);
    EXPECT_EQ(c.sessionCloses, 1u);
    EXPECT_EQ(c.sessionStepFrames, 3u);
    EXPECT_EQ(c.wireErrors, 0u);
}

TEST_F(PhiServerTest, SessionSurvivesReconnectBecauseIdsAreServerScoped)
{
    auto server = startServer();
    LifPopulation ref(weights.cols());
    uint64_t sid = 0;
    const BinaryMatrix half1 = makeActs(4, 700);
    const BinaryMatrix half2 = makeActs(4, 701);
    const BinaryMatrix want1 = referenceSteps(half1, weights, ref);
    const BinaryMatrix want2 = referenceSteps(half2, weights, ref);
    {
        PhiClient client("127.0.0.1", server->port());
        sid = client.openSession("m").sessionId;
        EXPECT_TRUE(client.stepSession(sid, half1).spikes == want1);
    } // drop the connection mid-stream
    PhiClient again("127.0.0.1", server->port());
    const WireSessionStepped got = again.stepSession(sid, half2);
    EXPECT_EQ(got.firstStep, 4u);
    EXPECT_TRUE(got.spikes == want2)
        << "session state was lost across the reconnect";
    EXPECT_EQ(again.closeSession(sid).steps, 8u);
}

TEST_F(PhiServerTest, SessionErrorsCrossTheWireTyped)
{
    auto server = startServer();
    PhiClient client("127.0.0.1", server->port());

    try {
        client.stepSession(12345, makeActs(1, 800));
        FAIL() << "step on an unknown session was served";
    } catch (const EngineError& e) {
        EXPECT_EQ(e.code(), EngineError::Code::SessionNotFound);
    }
    try {
        client.openSession("no-such-model");
        FAIL() << "open against an unknown model succeeded";
    } catch (const EngineError& e) {
        EXPECT_EQ(e.code(), EngineError::Code::UnknownModel);
    }
    // The connection survived both typed failures.
    const BinaryMatrix acts = makeActs(4, 801);
    EXPECT_TRUE(client.request("m", 0, acts).out ==
                spikeGemm(acts, weights));
}

TEST_F(PhiServerTest, DrainSnapshotsSessionsAndRestoreResumesExactly)
{
    const std::string path =
        ::testing::TempDir() + "drain_sessions.phis";
    std::remove(path.c_str());

    LifPopulation ref(weights.cols());
    const BinaryMatrix half1 = makeActs(5, 810);
    const BinaryMatrix half2 = makeActs(5, 811);
    const BinaryMatrix want1 = referenceSteps(half1, weights, ref);
    const BinaryMatrix want2 = referenceSteps(half2, weights, ref);

    uint64_t sid = 0;
    {
        PhiServerConfig cfg;
        cfg.sessionSnapshotPath = path;
        auto server = startServer(cfg);
        PhiClient client("127.0.0.1", server->port());
        sid = client.openSession("m").sessionId;
        EXPECT_TRUE(client.stepSession(sid, half1).spikes == want1);
        server->requestDrain();
        server->waitUntilStopped();
        EXPECT_EQ(server->counters().sessionsSnapshotted, 1u);
    }

    // A fresh server — the "restarted" process — restores the .phis
    // and the stream resumes exactly where SIGTERM cut it.
    auto server = startServer();
    ASSERT_EQ(server->sessions().restore(io::loadSessions(path)), 1u);
    PhiClient client("127.0.0.1", server->port());
    const WireSessionStepped got = client.stepSession(sid, half2);
    EXPECT_EQ(got.firstStep, 5u);
    EXPECT_TRUE(got.spikes == want2)
        << "restored stream diverged from the uninterrupted reference";
    EXPECT_EQ(client.closeSession(sid).steps, 10u);
    std::remove(path.c_str());
}

TEST_F(PhiServerTest, SessionVerbsAreRejectedTypedDuringDrain)
{
    PhiServerConfig cfg;
    cfg.drainTimeoutMs = 5000;
    auto server = startServer(cfg);
    PhiClient client("127.0.0.1", server->port());
    const uint64_t sid = client.openSession("m").sessionId;

    server->requestDrain();

    // Session verbs racing the drain: typed ServerDraining, or the
    // drain already closed the socket — never served, never hung.
    try {
        client.stepSession(sid, makeActs(1, 820));
        FAIL() << "post-drain step was served";
    } catch (const NetError& e) {
        EXPECT_TRUE(e.code() == WireErrorCode::ServerDraining ||
                    e.code() == WireErrorCode::ConnectionLost)
            << e.what();
    }
    server->waitUntilStopped();
}

TEST_F(PhiServerTest, StopIsIdempotentAndDestructorIsClean)
{
    auto server = startServer();
    PhiClient client("127.0.0.1", server->port());
    client.request("m", 0, makeActs(4, 400));
    server->stop();
    server->stop();
    EXPECT_FALSE(server->running());
    // Destructor after stop() must be a no-op (no double-join/close).
}

TEST_F(PhiServerTest, ServerLifecycleLeaksNoFds)
{
    const size_t fdsBefore = openFdCount();
    {
        auto server = startServer();
        {
            PhiClient c1("127.0.0.1", server->port());
            PhiClient c2("127.0.0.1", server->port());
            c1.request("m", 0, makeActs(4, 500));
            c2.request("m", 0, makeActs(4, 501));
        }
        server->stop();
    }
    EXPECT_EQ(openFdCount(), fdsBefore);
}

} // namespace
} // namespace phi::net

#endif // __linux__
