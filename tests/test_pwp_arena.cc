/**
 * @file
 * PwpArena tests: the tiled-contiguous serving path (with and without
 * the pattern-locality permutation, at every quantization tier) must
 * be bit-identical to the legacy per-partition path and to spikeGemm,
 * on every compiled-in SIMD backend; tier selection must be provably
 * lossless (narrower only when every value round-trips, silent
 * fallback otherwise); and the bandwidth accounting must match the
 * layout.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hh"
#include "core/calibration.hh"
#include "core/pwp.hh"
#include "numeric/simd.hh"
#include "test_support.hh"

namespace phi
{
namespace
{

const PwpTier kAllTiers[] = {PwpTier::Int32, PwpTier::Int16,
                             PwpTier::Int8};

/** One hand-made single-row partition holding the given values. */
std::vector<Matrix<int32_t>>
onePartition(std::initializer_list<int32_t> values)
{
    Matrix<int32_t> m(1, values.size());
    size_t c = 0;
    for (int32_t v : values)
        m(0, c++) = v;
    std::vector<Matrix<int32_t>> pwps;
    pwps.push_back(std::move(m));
    return pwps;
}

TEST(PwpArena, PicksNarrowestExactTierAtOrAboveRequest)
{
    // Values in int8 range: every request is reachable.
    const auto small = onePartition({-128, 0, 127});
    EXPECT_EQ(PwpArena(small, 3, PwpTier::Int32).tier(), PwpTier::Int32);
    EXPECT_EQ(PwpArena(small, 3, PwpTier::Int16).tier(), PwpTier::Int16);
    EXPECT_EQ(PwpArena(small, 3, PwpTier::Int8).tier(), PwpTier::Int8);

    // 128 overflows int8: an Int8 request must fall back to Int16,
    // never clamp.
    const auto mid = onePartition({-32768, 128, 32767});
    EXPECT_EQ(PwpArena(mid, 3, PwpTier::Int8).tier(), PwpTier::Int16);
    EXPECT_EQ(PwpArena(mid, 3, PwpTier::Int16).tier(), PwpTier::Int16);

    // 32768 overflows int16 too: every narrow request lands on int32.
    const auto wide = onePartition({32768, -5, 2});
    EXPECT_EQ(PwpArena(wide, 3, PwpTier::Int8).tier(), PwpTier::Int32);
    EXPECT_EQ(PwpArena(wide, 3, PwpTier::Int16).tier(), PwpTier::Int32);
    EXPECT_EQ(PwpArena(wide, 3, PwpTier::Int32).tier(), PwpTier::Int32);
}

TEST(PwpArena, MaterializeRoundTripsEveryTier)
{
    Rng rng(11);
    std::vector<Matrix<int32_t>> pwps;
    for (size_t p = 0; p < 3; ++p) {
        Matrix<int32_t> m(2 + p, 5);
        for (size_t r = 0; r < m.rows(); ++r)
            for (size_t c = 0; c < 5; ++c)
                m(r, c) = static_cast<int32_t>(rng.uniformInt(-100, 100));
        pwps.push_back(std::move(m));
    }
    for (PwpTier tier : kAllTiers) {
        PwpArena arena(pwps, 5, tier);
        const auto back = arena.materialize();
        ASSERT_EQ(back.size(), pwps.size()) << pwpTierName(tier);
        for (size_t p = 0; p < pwps.size(); ++p)
            EXPECT_EQ(back[p], pwps[p])
                << pwpTierName(tier) << " partition " << p;
    }
}

TEST(PwpArena, AccountsRowsStrideAndBytes)
{
    const auto pwps = onePartition({1, 2, 3});
    PwpArena a8(pwps, 3, PwpTier::Int8);
    EXPECT_EQ(a8.tier(), PwpTier::Int8);
    EXPECT_EQ(a8.rows(), 1u);
    EXPECT_EQ(a8.cols(), 3u);
    EXPECT_EQ(a8.numPartitions(), 1u);
    EXPECT_EQ(a8.rowsInPartition(0), 1u);
    // Stride is padded to whole cache lines at the element width.
    EXPECT_EQ(a8.stride() * pwpTierBytes(a8.tier()) % 64, 0u);
    EXPECT_EQ(a8.bytes(), a8.rows() * a8.stride());
    EXPECT_FALSE(a8.empty());

    PwpArena empty({}, 0);
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.bytes(), 0u);
}

TEST(PwpArena, TierFootprintScalesWithElementWidth)
{
    PatternTable table(16, {PatternSet(16, {1, 2}),
                            PatternSet(16, {3})});
    const PwpTierFootprint fp = pwpTierFootprint(table, 32);
    EXPECT_EQ(fp.at(PwpTier::Int32), 3u * 32u * 4u);
    EXPECT_EQ(fp.at(PwpTier::Int16), 3u * 32u * 2u);
    EXPECT_EQ(fp.at(PwpTier::Int8), 3u * 32u * 1u);
    EXPECT_EQ(fp.at(PwpTier::Int32), pwpBytes(table, 32, 4));
}

TEST(ServeOrder, IsADeterministicPermutation)
{
    Rng rng(23);
    BinaryMatrix acts = BinaryMatrix::random(90, 48, 0.2, rng);
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 16;
    PatternTable table = calibrateLayer(acts, cfg);
    LayerDecomposition dec = decomposeLayer(acts, table);
    ASSERT_TRUE(dec.hasServeOrder());

    std::vector<uint32_t> sorted = dec.serveOrder;
    std::sort(sorted.begin(), sorted.end());
    std::vector<uint32_t> iota(dec.m);
    std::iota(iota.begin(), iota.end(), 0u);
    EXPECT_EQ(sorted, iota) << "serveOrder is not a permutation";

    // Pure function of the decomposition: a rebuild reproduces it.
    LayerDecomposition again = decomposeLayer(acts, table);
    EXPECT_EQ(again.serveOrder, dec.serveOrder);
}

TEST(ServeOrder, SinglePatternLayerStaysInNaturalOrder)
{
    // Every row gets the same signature; the stable sort must keep
    // the original order (ties never reorder).
    Rng rng(29);
    BinaryMatrix acts = BinaryMatrix::random(40, 16, 0.9, rng);
    PatternTable table(16, {PatternSet(16, {0xFFFF})});
    LayerDecomposition dec = decomposeLayer(acts, table);
    bool allSame = true;
    for (uint16_t id : dec.tiles[0].patternIds)
        allSame = allSame && id == dec.tiles[0].patternIds[0];
    if (allSame) {
        std::vector<uint32_t> iota(dec.m);
        std::iota(iota.begin(), iota.end(), 0u);
        EXPECT_EQ(dec.serveOrder, iota);
    }
}

TEST(ServeOrder, CachedTileMaximaMatchTheTiles)
{
    Rng rng(31);
    BinaryMatrix acts = BinaryMatrix::random(60, 33, 0.25, rng);
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 8;
    PatternTable table = calibrateLayer(acts, cfg);
    LayerDecomposition dec = decomposeLayer(acts, table);
    ASSERT_TRUE(dec.hasTileMaxima());
    for (size_t t = 0; t < dec.tiles.size(); ++t) {
        uint16_t maxId = 0, maxCol = 0;
        for (uint16_t id : dec.tiles[t].patternIds)
            maxId = std::max(maxId, id);
        for (const L2Entry& e : dec.tiles[t].l2Entries)
            maxCol = std::max(maxCol, e.col);
        EXPECT_EQ(dec.tileMaxPatternId[t], maxId) << "tile " << t;
        EXPECT_EQ(dec.tileMaxL2Col[t], maxCol) << "tile " << t;
    }
}

struct ArenaShape
{
    size_t m, k_total, n;
    double density;
    int k, q;
    int wmax; // weight magnitude: small values make int8 reachable
};

class PwpArenaSweep : public ::testing::TestWithParam<ArenaShape>
{
};

TEST_P(PwpArenaSweep, ArenaServingIsBitIdenticalToLegacyAndReference)
{
    const auto p = GetParam();
    Rng rng(p.m * 13 + p.k_total * 5 + p.n);
    BinaryMatrix acts =
        BinaryMatrix::random(p.m, p.k_total, p.density, rng);
    Rng wr(p.m + p.n);
    Matrix<int16_t> w(p.k_total, p.n);
    for (size_t r = 0; r < w.rows(); ++r)
        for (size_t c = 0; c < p.n; ++c)
            w(r, c) = static_cast<int16_t>(
                wr.uniformInt(-p.wmax, p.wmax));

    CalibrationConfig cfg;
    cfg.k = p.k;
    cfg.q = p.q;
    PatternTable table = calibrateLayer(acts, cfg);
    LayerDecomposition dec = decomposeLayer(acts, table);
    LayerDecomposition natural = dec;
    natural.serveOrder.clear();

    ExecutionConfig scalar;
    scalar.threads = 1;
    scalar.isa = SimdIsa::Scalar;
    const Matrix<int32_t> ref = spikeGemm(acts, w, scalar);
    const auto pwps = computeLayerPwps(table, w, scalar);
    EXPECT_EQ(phiGemmWithPwps(dec, pwps, w, scalar), ref);

    for (PwpTier tier : kAllTiers) {
        PwpArena arena(pwps, p.n, tier);
        for (SimdIsa isa : simd::availableIsas()) {
            ExecutionConfig exec;
            exec.threads = 3; // exercise the parallel chunking too
            exec.isa = isa;
            EXPECT_EQ(phiGemmWithArena(dec, arena, w, exec), ref)
                << pwpTierName(tier) << " permuted on "
                << simdIsaName(isa);
            EXPECT_EQ(phiGemmWithArena(natural, arena, w, exec), ref)
                << pwpTierName(tier) << " natural on "
                << simdIsaName(isa);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PwpArenaSweep,
    ::testing::Values(
        // Ragged everything: K not a multiple of k, odd n.
        ArenaShape{100, 17, 3, 0.3, 16, 8, 40},
        // Vector-friendly, wide n crossing the 512-column tile.
        ArenaShape{64, 64, 600, 0.15, 16, 32, 40},
        // Tiny weights: the Int8 request genuinely lands on int8.
        ArenaShape{80, 48, 20, 0.2, 16, 16, 2},
        // Single row, single column.
        ArenaShape{1, 16, 1, 0.5, 16, 4, 40},
        // Dense activations, several partitions.
        ArenaShape{50, 96, 33, 0.6, 16, 12, 10}));

TEST(PwpArenaServe, EmptyPatternTableServesPureL2)
{
    // With no patterns anywhere the arena is empty and serving is all
    // Level 2 corrections; the gather kernels must handle the
    // zero-row arena without touching it.
    Rng rng(43);
    BinaryMatrix acts = BinaryMatrix::random(30, 32, 0.3, rng);
    Matrix<int16_t> w = test::randomWeights(32, 9, 44);
    PatternTable table(16, {PatternSet(16, {}), PatternSet(16, {})});
    LayerDecomposition dec = decomposeLayer(acts, table);
    const auto pwps = computeLayerPwps(table, w);
    for (PwpTier tier : kAllTiers) {
        PwpArena arena(pwps, 9, tier);
        EXPECT_TRUE(arena.empty());
        EXPECT_EQ(phiGemmWithArena(dec, arena, w), spikeGemm(acts, w))
            << pwpTierName(tier);
    }
}

TEST(PwpArenaServe, PrefetchKnobNeverChangesResults)
{
    Rng rng(47);
    BinaryMatrix acts = BinaryMatrix::random(70, 48, 0.2, rng);
    Matrix<int16_t> w = test::randomWeights(48, 40, 48);
    CalibrationConfig cfg;
    cfg.k = 16;
    cfg.q = 16;
    PatternTable table = calibrateLayer(acts, cfg);
    LayerDecomposition dec = decomposeLayer(acts, table);
    const auto pwps = computeLayerPwps(table, w);
    PwpArena arena(pwps, 40, PwpTier::Int16);

    ExecutionConfig off;
    ExecutionConfig on;
    on.prefetchPwp = true;
    EXPECT_EQ(phiGemmWithArena(dec, arena, w, on),
              phiGemmWithArena(dec, arena, w, off));
}

} // namespace
} // namespace phi
