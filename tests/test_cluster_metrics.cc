/**
 * @file
 * Tests for cluster metrics (the quantitative backing of Fig. 9).
 */

#include <gtest/gtest.h>

#include "analysis/cluster_metrics.hh"
#include "common/rng.hh"
#include "core/calibration.hh"
#include "core/paft.hh"
#include "snn/activation_gen.hh"

namespace phi
{
namespace
{

TEST(ClusterMetrics, PerfectClustersScoreWell)
{
    // Rows identical to patterns: distance 0, silhouette positive.
    BinaryMatrix acts(32, 16);
    for (size_t r = 0; r < 32; ++r)
        acts.deposit(r, 0, 16, (r % 2) ? 0xFF00 : 0x00FF);
    PatternSet ps(16, {0xFF00, 0x00FF});
    ClusterMetrics m = computeClusterMetrics(acts, 0, ps);
    EXPECT_DOUBLE_EQ(m.meanDistance, 0.0);
    EXPECT_DOUBLE_EQ(m.assignedFraction, 1.0);
    EXPECT_GT(m.silhouette, 0.9);
    EXPECT_NEAR(m.effectiveClusters, 2.0, 0.01);
}

TEST(ClusterMetrics, EmptyPatternSet)
{
    Rng rng(1);
    BinaryMatrix acts = BinaryMatrix::random(16, 16, 0.3, rng);
    ClusterMetrics m = computeClusterMetrics(acts, 0, PatternSet(16, {}));
    EXPECT_DOUBLE_EQ(m.assignedFraction, 0.0);
}

TEST(ClusterMetrics, UsageHistogramSumsToOne)
{
    Rng rng(2);
    BinaryMatrix acts = BinaryMatrix::random(128, 16, 0.25, rng);
    PatternSet ps(16, {0xF0F0, 0x0F0F, 0x00FF});
    auto usage = patternUsage(acts, 0, ps);
    ASSERT_EQ(usage.size(), 4u); // 3 patterns + unassigned slot
    double total = 0;
    for (double u : usage)
        total += u;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ClusterMetrics, TotalVariationProperties)
{
    std::vector<double> a{0.5, 0.5, 0.0};
    std::vector<double> b{0.0, 0.5, 0.5};
    EXPECT_NEAR(totalVariation(a, a), 0.0, 1e-12);
    EXPECT_NEAR(totalVariation(a, b), 0.5, 1e-12);
    std::vector<double> c{1.0, 0.0, 0.0};
    std::vector<double> d{0.0, 0.0, 1.0};
    EXPECT_NEAR(totalVariation(c, d), 1.0, 1e-12);
}

TEST(ClusterMetrics, TrainTestUsageIsConsistent)
{
    // The Fig. 9a property, quantified: usage histograms of two
    // independent draws from the same generator nearly coincide.
    ClusterGenConfig cfg;
    cfg.bitDensity = 0.12;
    cfg.l2DensityTarget = 0.02;
    ClusteredSpikeGenerator gen(cfg, 16, 9);
    Rng r1(3);
    Rng r2(4);
    BinaryMatrix train = gen.generate(3000, r1);
    BinaryMatrix test = gen.generate(3000, r2);

    CalibrationConfig ccfg;
    ccfg.k = 16;
    ccfg.q = 32;
    PatternTable table = calibrateLayer(train, ccfg);
    auto u_train = patternUsage(train, 0, table.partition(0));
    auto u_test = patternUsage(test, 0, table.partition(0));
    EXPECT_LT(totalVariation(u_train, u_test), 0.08);
}

TEST(ClusterMetrics, PaftShrinksDistanceAndClusterCount)
{
    // The Fig. 9c property: PAFT yields denser (lower mean distance)
    // and fewer effective clusters.
    ClusterGenConfig cfg;
    cfg.bitDensity = 0.15;
    cfg.l2DensityTarget = 0.04;
    ClusteredSpikeGenerator gen(cfg, 16, 11);
    Rng rng(5);
    BinaryMatrix acts = gen.generate(3000, rng);

    CalibrationConfig ccfg;
    ccfg.k = 16;
    ccfg.q = 64;
    PatternTable table = calibrateLayer(acts, ccfg);
    ClusterMetrics before =
        computeClusterMetrics(acts, 0, table.partition(0));

    PaftConfig pc;
    pc.alignStrength = 0.9;
    Rng prng(6);
    applyPaft(acts, table, pc, prng);
    ClusterMetrics after =
        computeClusterMetrics(acts, 0, table.partition(0));

    EXPECT_LT(after.meanDistance, before.meanDistance);
    EXPECT_GE(after.silhouette, before.silhouette);
}

TEST(ClusterMetrics, MismatchedHistogramsPanic)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(totalVariation({0.5}, {0.5, 0.5}), std::logic_error);
    detail::setThrowOnError(false);
}

} // namespace
} // namespace phi
