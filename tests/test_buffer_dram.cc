/**
 * @file
 * Tests for the SRAM buffer and DRAM models.
 */

#include <gtest/gtest.h>

#include "arch/buffer.hh"
#include "arch/dram.hh"
#include "common/logging.hh"

namespace phi
{
namespace
{

TEST(Sram, EnergyGrowsWithCapacity)
{
    EXPECT_LT(SramModel::energyPerBytePj(4),
              SramModel::energyPerBytePj(64));
    EXPECT_LT(SramModel::energyPerBytePj(64),
              SramModel::energyPerBytePj(512));
}

TEST(Sram, AreaMatchesTable3Calibration)
{
    // 240 KiB buffer complement -> ~0.452 mm^2 (Table 3).
    EXPECT_NEAR(SramModel::areaMm2(240.0), 0.452, 0.01);
}

TEST(Sram, BufferAccountsAccesses)
{
    SramBuffer buf("test", 16 * 1024);
    buf.read(1000);
    buf.write(500);
    EXPECT_EQ(buf.totalReadBytes(), 1000u);
    EXPECT_EQ(buf.totalWriteBytes(), 500u);
    EXPECT_GT(buf.dynamicEnergyPj(), 0.0);
    buf.resetCounters();
    EXPECT_EQ(buf.dynamicEnergyPj(), 0.0);
}

TEST(Sram, LeakageScalesWithTime)
{
    SramBuffer buf("test", 64 * 1024);
    EXPECT_NEAR(buf.leakageEnergyPj(2.0),
                2.0 * buf.leakageEnergyPj(1.0), 1e-6);
}

TEST(Sram, ZeroCapacityPanics)
{
    detail::setThrowOnError(true);
    EXPECT_THROW(SramBuffer("bad", 0), std::logic_error);
    detail::setThrowOnError(false);
}

TEST(Dram, BandwidthMatchesTable1)
{
    DramModel dram;
    // 64 GB/s at 500 MHz = 128 B/cycle.
    EXPECT_NEAR(dram.bytesPerCycle(500e6), 128.0, 1e-9);
    EXPECT_NEAR(dram.transferCycles(1280.0, 500e6), 10.0, 1e-9);
}

TEST(Dram, EnergyProportionalToBytes)
{
    DramModel dram;
    EXPECT_NEAR(dram.dynamicEnergyPj(2000.0),
                2.0 * dram.dynamicEnergyPj(1000.0), 1e-9);
    EXPECT_GT(dram.staticEnergyPj(1e-3), 0.0);
}

TEST(Dram, TrafficAggregation)
{
    DramTraffic a;
    a.weightBytes = 10;
    a.pwpBytes = 20;
    DramTraffic b;
    b.activationBytes = 5;
    b.outputBytes = 1;
    a += b;
    EXPECT_DOUBLE_EQ(a.totalBytes(), 36.0);
}

} // namespace
} // namespace phi
